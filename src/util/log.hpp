// Minimal leveled logging to stderr. The synthesis pipeline is long-running;
// INFO-level progress lines let a user watch the refinement loop converge.
//
// The minimum level defaults to Warn (tests and benches stay quiet) and can
// be set at startup with ABG_LOG_LEVEL=debug|info|warn|error|off (a bare
// integer 0-4 also works). set_log_level() overrides both.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

// Compile-time printf-format checking for the logging entry points: a
// mismatched specifier/argument pair is a -Wformat warning at the call site
// instead of garbage (or UB) at runtime.
#if defined(__GNUC__) || defined(__clang__)
#define ABG_PRINTF_FORMAT(fmt_idx, va_idx) __attribute__((format(printf, fmt_idx, va_idx)))
#else
#define ABG_PRINTF_FORMAT(fmt_idx, va_idx)
#endif

namespace abg::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide minimum level; initialized from ABG_LOG_LEVEL (default Warn).
void set_log_level(LogLevel level);
LogLevel log_level();
// True when ABG_LOG_LEVEL supplied the startup level (callers that would
// otherwise force a level, like the CLI, leave an explicit choice alone).
bool log_level_from_env();

// printf-style formatted log line. Messages longer than the stack buffer are
// heap-formatted rather than truncated.
void logf(LogLevel level, const char* fmt, ...) ABG_PRINTF_FORMAT(2, 3);

namespace detail {
void log_line(LogLevel level, const std::string& msg);

// Rate-limiting predicates backing the macros below. should_log_every_n
// bumps the per-call-site counter and is true on the 1st, n+1-th, 2n+1-th...
// call; should_log_once is true only the first time `key` is seen
// process-wide (later calls with the same key are dropped).
bool should_log_every_n(std::atomic<std::uint64_t>& site_count, std::uint64_t n);
bool should_log_once(const std::string& key);
}  // namespace detail

#define ABG_DEBUG(...) ::abg::util::logf(::abg::util::LogLevel::kDebug, __VA_ARGS__)
#define ABG_INFO(...) ::abg::util::logf(::abg::util::LogLevel::kInfo, __VA_ARGS__)
#define ABG_WARN(...) ::abg::util::logf(::abg::util::LogLevel::kWarn, __VA_ARGS__)
#define ABG_ERROR(...) ::abg::util::logf(::abg::util::LogLevel::kError, __VA_ARGS__)

// Rate-limited variants, for per-row/per-ACK diagnostics that would
// otherwise flood stderr on large traces. ABG_LOG_EVERY_N logs the first
// occurrence at this call site and then every n-th; the site counter is a
// relaxed atomic, so suppressed calls cost one fetch_add.
#define ABG_LOG_EVERY_N(level, n, ...)                                              \
  do {                                                                              \
    static ::std::atomic<::std::uint64_t> abg_logsite_count_{0};                    \
    if (::abg::util::detail::should_log_every_n(abg_logsite_count_, (n))) {         \
      ::abg::util::logf((level), __VA_ARGS__);                                      \
    }                                                                               \
  } while (0)
#define ABG_WARN_EVERY_N(n, ...) \
  ABG_LOG_EVERY_N(::abg::util::LogLevel::kWarn, (n), __VA_ARGS__)

// Logs at most once per distinct runtime key (e.g. once per trace file),
// process-wide.
#define ABG_WARN_ONCE(key, ...)                                                     \
  do {                                                                              \
    if (::abg::util::detail::should_log_once(key)) {                                \
      ::abg::util::logf(::abg::util::LogLevel::kWarn, __VA_ARGS__);                 \
    }                                                                               \
  } while (0)

}  // namespace abg::util
