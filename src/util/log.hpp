// Minimal leveled logging to stderr. The synthesis pipeline is long-running;
// INFO-level progress lines let a user watch the refinement loop converge.
//
// The minimum level defaults to Warn (tests and benches stay quiet) and can
// be set at startup with ABG_LOG_LEVEL=debug|info|warn|error|off (a bare
// integer 0-4 also works). set_log_level() overrides both.
#pragma once

#include <string>

// Compile-time printf-format checking for the logging entry points: a
// mismatched specifier/argument pair is a -Wformat warning at the call site
// instead of garbage (or UB) at runtime.
#if defined(__GNUC__) || defined(__clang__)
#define ABG_PRINTF_FORMAT(fmt_idx, va_idx) __attribute__((format(printf, fmt_idx, va_idx)))
#else
#define ABG_PRINTF_FORMAT(fmt_idx, va_idx)
#endif

namespace abg::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide minimum level; initialized from ABG_LOG_LEVEL (default Warn).
void set_log_level(LogLevel level);
LogLevel log_level();
// True when ABG_LOG_LEVEL supplied the startup level (callers that would
// otherwise force a level, like the CLI, leave an explicit choice alone).
bool log_level_from_env();

// printf-style formatted log line. Messages longer than the stack buffer are
// heap-formatted rather than truncated.
void logf(LogLevel level, const char* fmt, ...) ABG_PRINTF_FORMAT(2, 3);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

#define ABG_DEBUG(...) ::abg::util::logf(::abg::util::LogLevel::kDebug, __VA_ARGS__)
#define ABG_INFO(...) ::abg::util::logf(::abg::util::LogLevel::kInfo, __VA_ARGS__)
#define ABG_WARN(...) ::abg::util::logf(::abg::util::LogLevel::kWarn, __VA_ARGS__)
#define ABG_ERROR(...) ::abg::util::logf(::abg::util::LogLevel::kError, __VA_ARGS__)

}  // namespace abg::util
