// Minimal leveled logging to stderr. The synthesis pipeline is long-running;
// INFO-level progress lines let a user watch the refinement loop converge.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>

namespace abg::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide minimum level; default Warn so tests and benches stay quiet.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

template <typename... Args>
void logf(LogLevel level, const char* fmt, Args... args) {
  if (level < log_level()) return;
  char buf[1024];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  detail::log_line(level, buf);
}

#define ABG_DEBUG(...) ::abg::util::logf(::abg::util::LogLevel::kDebug, __VA_ARGS__)
#define ABG_INFO(...) ::abg::util::logf(::abg::util::LogLevel::kInfo, __VA_ARGS__)
#define ABG_WARN(...) ::abg::util::logf(::abg::util::LogLevel::kWarn, __VA_ARGS__)
#define ABG_ERROR(...) ::abg::util::logf(::abg::util::LogLevel::kError, __VA_ARGS__)

}  // namespace abg::util
