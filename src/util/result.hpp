// Result<T>: a value or a non-ok Status. The pipeline's replacement for
// std::optional returns on fallible paths — the failure carries a diagnostic
// instead of silently collapsing to nullopt.
//
//   util::Result<Trace> r = trace::load_csv(path);
//   if (!r.ok()) return r.status().with_context(path);
//   use(*r);
#pragma once

#include <optional>
#include <utility>

#include "util/status.hpp"

namespace abg::util {

template <typename T>
class Result {
 public:
  // Implicit from a value (success) or a Status (failure). Constructing from
  // an ok Status is a caller bug; it is coerced to kUnknown so a Result
  // without a value never claims to be ok.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    if (status_.is_ok()) status_ = Status(StatusCode::kUnknown, "error Result with ok Status");
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  // Ok Results report an ok Status.
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T&& operator*() && { return std::move(*value_); }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  // Prefix the error message (no-op on ok Results).
  Result with_context(std::string_view context) && {
    if (!ok()) status_ = status_.with_context(context);
    return std::move(*this);
  }

 private:
  Status status_;  // ok iff value_ present
  std::optional<T> value_;
};

}  // namespace abg::util
