// Crash-durable file primitives for the serve/checkpoint layers. tmp+rename
// alone is *atomic* (a reader never sees a half-written file) but not
// *durable*: after a power loss the rename can survive while the data blocks
// do not, leaving a named-but-torn file. The durable recipe is
//
//   write tmp -> fsync(tmp) -> rename(tmp, path) -> fsync(parent dir)
//
// which these helpers implement once so every durable writer (synthesis
// checkpoints, the serve WAL and its snapshots, persisted job specs/results)
// agrees on the ordering.
#pragma once

#include <string>

#include "util/status.hpp"

namespace abg::util {

// fsync a file by path. kIoError if it cannot be opened or synced.
Status fsync_path(const std::string& path);

// fsync the directory containing `path`, making a rename/create of `path`
// itself durable. "x.txt" with no slash syncs ".".
Status fsync_parent_dir(const std::string& path);

// The full durable recipe: write `content` to `path + ".tmp"`, fsync it,
// rename over `path`, fsync the parent directory. On any failure the tmp
// file is removed and the previous `path` content is intact.
// With durable=false the two fsyncs are skipped (atomic-only, for callers
// on a fast path that explicitly accept losing the tail on power loss).
Status atomic_write_file(const std::string& path, const std::string& content,
                         bool durable = true);

}  // namespace abg::util
