#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace abg::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              std::numeric_limits<std::uint64_t>::max() % range;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::exponential(double rate) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  shuffle(idx);
  if (k < n) idx.resize(k);
  return idx;
}

Rng Rng::fork() { return Rng(next_u64()); }

Rng::State Rng::state() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.have_cached_normal = have_cached_normal_;
  st.cached_normal = cached_normal_;
  return st;
}

void Rng::set_state(const State& st) {
  for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  have_cached_normal_ = st.have_cached_normal;
  cached_normal_ = st.cached_normal;
}

}  // namespace abg::util
