#include "util/cancellation.hpp"

#include <chrono>
#include <cmath>

namespace abg::util {

DeadlineWatchdog::DeadlineWatchdog(CancellationToken* token, double deadline_s) {
  if (token == nullptr || !std::isfinite(deadline_s)) return;
  if (deadline_s < 0.0) deadline_s = 0.0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(deadline_s));
  thread_ = std::thread([this, token, deadline] {
    std::unique_lock lk(mu_);
    if (cv_.wait_until(lk, deadline, [this] { return stop_; })) return;
    token->cancel(StatusCode::kTimeout);
  });
}

DeadlineWatchdog::~DeadlineWatchdog() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

}  // namespace abg::util
