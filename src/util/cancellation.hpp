// Cooperative cancellation for the synthesis runtime. A CancellationToken is
// a flag shared between a controller (deadline watchdog, fault injector, an
// embedding application) and the long-running loops in refine()/the
// enumerator/the scoring pool, which poll it at safe points and unwind with
// their best-so-far state instead of running unbounded.
//
// cancelled() is two relaxed atomic loads on the hot path — cheap enough to
// poll per candidate evaluation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/status.hpp"

namespace abg::util {

class CancellationToken {
 public:
  CancellationToken() = default;
  // A linked token also reports cancelled when `parent` is cancelled, so a
  // callee-local deadline token can observe a caller-supplied one. `parent`
  // must outlive this token.
  explicit CancellationToken(const CancellationToken* parent) : parent_(parent) {}

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  // First cancel wins; later calls keep the original reason.
  void cancel(StatusCode reason = StatusCode::kCancelled) {
    bool expected = false;
    if (flag_.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
      reason_.store(static_cast<int>(reason), std::memory_order_release);
    }
  }

  bool cancelled() const {
    if (flag_.load(std::memory_order_relaxed)) return true;
    return parent_ != nullptr && parent_->cancelled();
  }

  // kOk while not cancelled; the winning reason (own, else parent's) after.
  StatusCode reason() const {
    if (flag_.load(std::memory_order_acquire)) {
      return static_cast<StatusCode>(reason_.load(std::memory_order_acquire));
    }
    return parent_ != nullptr ? parent_->reason() : StatusCode::kOk;
  }

 private:
  std::atomic<bool> flag_{false};
  std::atomic<int> reason_{static_cast<int>(StatusCode::kOk)};
  const CancellationToken* parent_ = nullptr;
};

// Cancels `token` with kTimeout once `deadline_s` of wall-clock time passes.
// The watchdog thread sleeps on a condition variable, so destruction (scope
// exit before the deadline) is immediate. A non-finite or negative-infinite
// deadline spawns no thread at all.
class DeadlineWatchdog {
 public:
  DeadlineWatchdog(CancellationToken* token, double deadline_s);
  ~DeadlineWatchdog();

  DeadlineWatchdog(const DeadlineWatchdog&) = delete;
  DeadlineWatchdog& operator=(const DeadlineWatchdog&) = delete;

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace abg::util
