#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace abg::util {

namespace {

bool g_level_from_env = false;

LogLevel level_from_env() {
  const char* s = std::getenv("ABG_LOG_LEVEL");
  if (s == nullptr || *s == '\0') return LogLevel::kWarn;
  std::string v;
  for (const char* p = s; *p != '\0'; ++p) {
    v += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  g_level_from_env = true;
  if (v == "debug" || v == "0") return LogLevel::kDebug;
  if (v == "info" || v == "1") return LogLevel::kInfo;
  if (v == "warn" || v == "warning" || v == "2") return LogLevel::kWarn;
  if (v == "error" || v == "3") return LogLevel::kError;
  if (v == "off" || v == "none" || v == "4") return LogLevel::kOff;
  g_level_from_env = false;
  std::fprintf(stderr, "[abg WARN ] unrecognized ABG_LOG_LEVEL '%s'; using warn\n", s);
  return LogLevel::kWarn;
}

// Static-initialized from the environment, so the very first log statement
// already honors ABG_LOG_LEVEL.
std::atomic<LogLevel> g_level{level_from_env()};
std::mutex g_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
bool log_level_from_env() { return g_level_from_env; }

void logf(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n >= 0 && static_cast<std::size_t>(n) < sizeof(buf)) {
    va_end(ap2);
    detail::log_line(level, buf);
    return;
  }
  // Didn't fit (or encoding error, n < 0 — log the literal format string
  // rather than nothing). Reformat into an exact-size heap buffer so long
  // handler expressions are never silently truncated.
  if (n < 0) {
    va_end(ap2);
    detail::log_line(level, fmt);
    return;
  }
  std::vector<char> big(static_cast<std::size_t>(n) + 1);
  std::vsnprintf(big.data(), big.size(), fmt, ap2);
  va_end(ap2);
  detail::log_line(level, big.data());
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::lock_guard lk(g_mu);
  std::fprintf(stderr, "[abg %-5s] %s\n", level_name(level), msg.c_str());
}

bool should_log_every_n(std::atomic<std::uint64_t>& site_count, std::uint64_t n) {
  const std::uint64_t seen = site_count.fetch_add(1, std::memory_order_relaxed);
  return n == 0 || seen % n == 0;
}

bool should_log_once(const std::string& key) {
  static std::mutex* mu = new std::mutex;  // leaked: usable during shutdown
  static auto* seen = new std::unordered_set<std::string>;
  std::lock_guard lk(*mu);
  return seen->insert(key).second;
}
}  // namespace detail

}  // namespace abg::util
