#include "util/log.hpp"

#include <atomic>

namespace abg::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::lock_guard lk(g_mu);
  std::fprintf(stderr, "[abg %-5s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace abg::util
