// Structured error reporting for the pipeline's fallible boundaries (trace
// ingestion, checkpoint I/O, long-running synthesis). A Status is a cheap
// (code, message) pair; Result<T> (result.hpp) carries either a value or a
// non-ok Status. Every failure path returns one of these instead of a bare
// std::optional, so the CLI and run scripts can tell *which class* of thing
// went wrong (and exit with a distinct code per class).
#pragma once

#include <string>
#include <string_view>

namespace abg::util {

// Error taxonomy. Keep in sync with status_code_name() and exit_code().
enum class StatusCode {
  kOk = 0,
  kUnknown,          // unclassified failure
  kParseError,       // malformed text: CSV header, numeric field, handler expr
  kInvalidTrace,     // well-formed but semantically bad trace data
  kTimeout,          // deadline expired (cooperative preemption)
  kCancelled,        // explicit cancellation (token, fault injector)
  kIoError,          // file open/read/write/rename failure
  kNumericError,     // non-finite value where a finite one is required
  kInvalidArgument,  // caller-supplied options/spec rejected by validation
};

// Stable short name, e.g. "parse-error".
const char* status_code_name(StatusCode code);

// Distinct process exit code per class, for the CLI and run_all.sh:
// ok=0, unknown=1 (2 is reserved for usage errors), parse-error=3,
// invalid-trace=4, timeout=5, cancelled=6, io-error=7, numeric-error=8,
// invalid-argument=9.
int exit_code(StatusCode code);

class Status {
 public:
  Status() = default;  // ok
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Context chaining: `st.with_context("loading x.csv")` reads
  // "loading x.csv: <original message>". Code is preserved.
  Status with_context(std::string_view context) const {
    if (is_ok()) return *this;
    return Status(code_, std::string(context) + ": " + message_);
  }

  // "parse-error: loading x.csv: row 7: bad field 'nan'".
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace abg::util
