// Work-stealing thread pool shared by the synthesis runtime (§4.4 of the
// paper parallelizes the refinement loop across buckets with Ray; we use a
// local pool instead). One pool instance can serve many concurrent jobs:
// submissions are spread round-robin over per-worker deques, owners pop
// newest-first (cache-hot), and idle workers steal oldest-first from their
// peers — so bucket-scoring tasks from several in-flight synthesis jobs
// interleave instead of queueing behind one job's burst.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/span.hpp"

namespace abg::util {

namespace detail {
// Out-of-line so the template submit() stays free of obs includes; bumps the
// pool.tasks_queued counter.
void note_task_queued();
}  // namespace detail

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task. Safe to call from multiple threads, including from
  // worker threads themselves (tasks must not block on futures of tasks
  // that cannot be scheduled, i.e. avoid nested blocking waits that exceed
  // the worker count; parallel_for is safe anywhere because the caller
  // participates).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue([task]() { (*task)(); });
    return fut;
  }

  // Run fn(i) for i in [0, n) across the pool and wait for completion.
  //
  // Templated on the callable, so the per-index hot path is a direct call —
  // no per-index std::function construction, heap allocation, or futures.
  // Indices are claimed from one shared atomic counter by at most
  // min(n - 1, size()) queued helper tasks *and the calling thread itself*
  // (caller-runs): the caller always makes progress even when every worker
  // is busy with other jobs, so nested use can never deadlock the pool.
  // The first exception thrown by any fn(i) is rethrown on the caller after
  // all indices finish.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    if (n == 1) {
      fn(std::size_t{0});
      return;
    }
    struct Ctl {
      std::atomic<std::size_t> next{0};
      std::atomic<std::size_t> done{0};
      std::mutex mu;
      std::condition_variable cv;
      std::exception_ptr error;  // first failure, guarded by mu
    };
    auto ctl = std::make_shared<Ctl>();
    // fn outlives the loop: the caller blocks below until done == n, and a
    // helper that starts after that can only observe next >= n, so it never
    // touches this pointer.
    auto* f = std::addressof(fn);
    const std::size_t total = n;
    auto drain = [ctl, f, total] {
      std::size_t i;
      while ((i = ctl->next.fetch_add(1, std::memory_order_relaxed)) < total) {
        try {
          (*f)(i);
        } catch (...) {
          std::lock_guard lk(ctl->mu);
          if (!ctl->error) ctl->error = std::current_exception();
        }
        if (ctl->done.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
          std::lock_guard lk(ctl->mu);
          ctl->cv.notify_all();
        }
      }
    };
    const std::size_t helpers = std::min(n - 1, size());
    for (std::size_t h = 0; h < helpers; ++h) enqueue(drain);
    drain();
    std::unique_lock lk(ctl->mu);
    ctl->cv.wait(lk, [&] { return ctl->done.load(std::memory_order_acquire) >= total; });
    if (ctl->error) std::rethrow_exception(ctl->error);
  }

  std::size_t size() const { return workers_.size(); }

 private:
  // A queued callable plus its enqueue instant, so the worker can feed the
  // pool.queue_wait_us histogram when it picks the task up. The submitter's
  // span context rides along explicitly: whichever worker claims the task —
  // including a thief claiming it from another worker's deque — installs it
  // for the duration of the task, so trace events attribute to the
  // submitting job's lane rather than to whatever the worker ran last.
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
    obs::SpanContext ctx;
  };
  // One deque per worker, individually locked: the owner pushes/pops at the
  // back, thieves take from the front. External submissions round-robin
  // across deques so no single worker becomes the bottleneck producer.
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> deque;
  };

  void enqueue(std::function<void()> fn);
  bool try_claim(std::size_t self, Task* out);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> next_queue_{0};  // round-robin submission cursor

  // Sleep/wake machinery. pending_ counts enqueued-but-unclaimed tasks and
  // is only modified under sleep_mu_, so a worker can never miss the wakeup
  // for a task enqueued between its empty scan and its cv wait.
  std::mutex sleep_mu_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
  bool stop_ = false;
};

}  // namespace abg::util
