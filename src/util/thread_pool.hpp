// Fixed-size thread pool used to parallelize bucket scoring (§4.4 of the
// paper parallelizes the refinement loop across buckets with Ray; we use a
// local pool instead).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace abg::util {

namespace detail {
// Out-of-line so the template submit() stays free of obs includes; bumps the
// pool.tasks_queued counter.
void note_task_queued();
}  // namespace detail

// A minimal work-stealing-free thread pool. Tasks are arbitrary callables;
// submit() returns a future for the callable's result. The pool joins all
// workers on destruction after draining the queue.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task. Safe to call from multiple threads, including from
  // worker threads themselves (tasks must not block on futures of tasks
  // that cannot be scheduled, i.e. avoid nested blocking waits that exceed
  // the worker count).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    detail::note_task_queued();
    {
      std::lock_guard lk(mu_);
      queue_.push_back(Task{[task]() { (*task)(); }, std::chrono::steady_clock::now()});
    }
    cv_.notify_one();
    return fut;
  }

  // Run fn(i) for i in [0, n) across the pool and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t size() const { return workers_.size(); }

 private:
  // A queued callable plus its enqueue instant, so the worker can feed the
  // pool.queue_wait_us histogram when it picks the task up.
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace abg::util
