// Minimal recursive-descent JSON reader, the input-side counterpart of
// obs::JsonWriter. Exists for the batch-manifest format consumed by
// abg::api (and abagnale_cli --batch): no external JSON dependency, strict
// parsing (trailing garbage, bare NaN/Inf, and unterminated containers are
// kParseError with a line number), and a small DOM good enough for
// configuration files — not a streaming parser for bulk data.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace abg::util {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool(bool fallback = false) const { return is_bool() ? bool_ : fallback; }
  double as_double(double fallback = 0.0) const { return is_number() ? num_ : fallback; }
  std::int64_t as_int(std::int64_t fallback = 0) const {
    return is_number() ? static_cast<std::int64_t>(num_) : fallback;
  }
  const std::string& as_string() const { return str_; }  // empty unless kString

  const std::vector<JsonValue>& items() const { return arr_; }  // empty unless kArray
  // Insertion-ordered object members.
  const std::vector<std::pair<std::string, JsonValue>>& members() const { return obj_; }

  // Object member by key, or nullptr (also nullptr for non-objects).
  const JsonValue* find(std::string_view key) const;

  // Construction (used by the parser and by tests).
  static JsonValue null();
  static JsonValue boolean(bool b);
  static JsonValue number(double d);
  static JsonValue string(std::string s);
  static JsonValue array(std::vector<JsonValue> items);
  static JsonValue object(std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

// Parse a complete JSON document. Exactly one top-level value; anything but
// trailing whitespace after it is an error. Errors carry "line N:" context.
Result<JsonValue> parse_json(std::string_view text);

// parse_json over a whole file; I/O failures are kIoError, syntax failures
// kParseError with the path in context.
Result<JsonValue> load_json(const std::string& path);

}  // namespace abg::util
