#include "util/fault_injection.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <string>

#include "obs/registry.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace abg::util::fault {

namespace {

struct State {
  std::mutex mu;
  Config cfg;
  Rng rng{1};
  bool initialized = false;
};

State& state() {
  static State s;
  return s;
}

std::atomic<bool>& active_flag() {
  static std::atomic<bool> f{false};
  return f;
}

void init_from_env_locked(State& s) {
  if (s.initialized) return;
  s.initialized = true;
  const char* spec = std::getenv("ABG_FAULT_INJECT");
  if (spec == nullptr || *spec == '\0') return;
  s.cfg = parse_spec(spec);
  s.rng = Rng(s.cfg.seed);
  active_flag().store(s.cfg.any(), std::memory_order_relaxed);
  if (s.cfg.any()) {
    ABG_WARN("fault injection active: io=%.3f nan=%.3f cancel_after=%d seed=%llu",
             s.cfg.io_fail_prob, s.cfg.nan_prob, s.cfg.cancel_after_iterations,
             static_cast<unsigned long long>(s.cfg.seed));
  }
}

}  // namespace

Config parse_spec(const char* spec) {
  Config cfg;
  if (spec == nullptr) return cfg;
  std::string entry;
  const char* p = spec;
  auto consume = [&cfg](const std::string& e) {
    const auto eq = e.find('=');
    if (eq == std::string::npos) return;
    const std::string key = e.substr(0, eq);
    const std::string val = e.substr(eq + 1);
    double d = 0.0;
    std::uint64_t u = 0;
    if (key == "io" && parse_double(val, &d)) {
      cfg.io_fail_prob = d;
    } else if (key == "nan" && parse_double(val, &d)) {
      cfg.nan_prob = d;
    } else if (key == "cancel_after" && parse_u64(val, &u) &&
               u <= static_cast<std::uint64_t>(std::numeric_limits<int>::max())) {
      cfg.cancel_after_iterations = static_cast<int>(u);
    } else if (key == "seed" && parse_u64(val, &u)) {
      cfg.seed = u;
    }
  };
  for (;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!entry.empty()) consume(entry);
      entry.clear();
      if (*p == '\0') break;
    } else if (*p != ' ') {
      entry += *p;
    }
  }
  return cfg;
}

Config config() {
  State& s = state();
  std::lock_guard lk(s.mu);
  init_from_env_locked(s);
  return s.cfg;
}

void set_config(const Config& cfg) {
  State& s = state();
  std::lock_guard lk(s.mu);
  s.initialized = true;  // explicit config overrides the env
  s.cfg = cfg;
  s.rng = Rng(cfg.seed);
  active_flag().store(cfg.any(), std::memory_order_relaxed);
}

bool active() { return active_flag().load(std::memory_order_relaxed); }

bool io_fail(const char* site) {
  if (!active()) return false;
  State& s = state();
  std::lock_guard lk(s.mu);
  if (s.cfg.io_fail_prob <= 0.0 || !s.rng.chance(s.cfg.io_fail_prob)) return false;
  static auto& c = obs::counter("fault.io_injected");
  c.add();
  ABG_DEBUG("fault: injected I/O failure at %s", site);
  return true;
}

bool corrupt(double* value, const char* site) {
  if (!active()) return false;
  State& s = state();
  std::lock_guard lk(s.mu);
  if (s.cfg.nan_prob <= 0.0 || !s.rng.chance(s.cfg.nan_prob)) return false;
  *value = std::numeric_limits<double>::quiet_NaN();
  static auto& c = obs::counter("fault.nan_injected");
  c.add();
  ABG_DEBUG("fault: injected NaN at %s", site);
  return true;
}

bool cancel_at(int iteration) {
  if (!active()) return false;
  State& s = state();
  std::lock_guard lk(s.mu);
  if (s.cfg.cancel_after_iterations < 0 || iteration < s.cfg.cancel_after_iterations) {
    return false;
  }
  static auto& c = obs::counter("fault.cancel_injected");
  c.add();
  ABG_DEBUG("fault: forced cancellation at iteration %d", iteration);
  return true;
}

}  // namespace abg::util::fault
