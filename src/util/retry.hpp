// Generic retry with jittered exponential backoff, for transient-failure
// boundaries (state-dir I/O in the serve layer, empty-draw trace collection
// in the examples). The operation reports success/failure as util::Status;
// retryable codes default to kIoError and kUnknown, the transient classes.
//
//   util::Retry retry({.max_attempts = 4, .initial_backoff_s = 0.05});
//   util::Status st = retry.run([&] { return write_thing(path); });
//
// The backoff schedule is initial * multiplier^attempt, capped at
// max_backoff_s, each delay scaled by a uniform jitter draw in
// [1 - jitter_frac, 1 + jitter_frac] so a thundering herd of retriers
// decorrelates. The sleep function is injectable, which is how the unit
// tests pin the whole schedule under a deterministic clock.
#pragma once

#include <functional>
#include <initializer_list>
#include <vector>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace abg::util {

struct RetryPolicy {
  int max_attempts = 3;            // total tries, including the first
  double initial_backoff_s = 0.05; // delay before attempt 2
  double multiplier = 2.0;         // exponential growth per attempt
  double max_backoff_s = 2.0;      // cap on any single delay
  double jitter_frac = 0.5;        // uniform in [1-j, 1+j]; 0 = deterministic
  std::uint64_t seed = 11;         // jitter RNG seed
  // Status codes worth retrying; anything else fails immediately.
  std::vector<StatusCode> retryable = {StatusCode::kIoError, StatusCode::kUnknown};
};

class Retry {
 public:
  using SleepFn = std::function<void(double seconds)>;

  explicit Retry(RetryPolicy policy = {});
  // Injectable sleep (tests pass a recorder; default really sleeps).
  Retry(RetryPolicy policy, SleepFn sleep);

  // Run `op` up to max_attempts times, sleeping the backoff schedule between
  // attempts. Returns the first ok() Status, or the last failure once the
  // attempt budget is exhausted (with the attempt count in the message) or a
  // non-retryable code appears.
  Status run(const std::function<Status()>& op);

  // The delay that precedes attempt `attempt` (attempt 1 = first retry),
  // jitter included — exposed so tests can assert the schedule and callers
  // can surface "retrying in N ms" messages.
  double backoff_s(int attempt);

  const RetryPolicy& policy() const { return policy_; }

 private:
  bool retryable(StatusCode code) const;

  RetryPolicy policy_;
  SleepFn sleep_;
  Rng rng_;
};

}  // namespace abg::util
