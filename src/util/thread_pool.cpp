#include "util/thread_pool.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "obs/trace_events.hpp"

namespace abg::util {

namespace detail {
void note_task_queued() {
  static auto& c_queued = obs::counter("pool.tasks_queued");
  c_queued.add();
}
}  // namespace detail

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(sleep_mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::enqueue(std::function<void()> fn) {
  detail::note_task_queued();
  Task task{std::move(fn), std::chrono::steady_clock::now(), obs::current_context()};
  const std::size_t victim =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard lk(queues_[victim]->mu);
    queues_[victim]->deque.push_back(std::move(task));
  }
  {
    std::lock_guard lk(sleep_mu_);
    ++pending_;
  }
  cv_.notify_one();
}

bool ThreadPool::try_claim(std::size_t self, Task* out) {
  bool claimed = false;
  {
    // Own deque first, newest task (back): it is the most cache-hot and, for
    // parallel_for helpers, the most likely to still have unclaimed indices.
    auto& q = *queues_[self];
    std::lock_guard lk(q.mu);
    if (!q.deque.empty()) {
      *out = std::move(q.deque.back());
      q.deque.pop_back();
      claimed = true;
    }
  }
  // Steal oldest-first (front) from peers: FIFO stealing drains the
  // longest-waiting job's tasks first, which is what keeps a batch of
  // concurrent synthesis jobs roughly fair.
  for (std::size_t off = 1; !claimed && off < queues_.size(); ++off) {
    auto& q = *queues_[(self + off) % queues_.size()];
    std::lock_guard lk(q.mu);
    if (!q.deque.empty()) {
      *out = std::move(q.deque.front());
      q.deque.pop_front();
      claimed = true;
    }
  }
  if (claimed) {
    std::lock_guard lk(sleep_mu_);
    --pending_;
    // Shutdown edge: the worker that claims the last task releases any
    // peers parked on the cv so they can observe stop_ && pending_ == 0.
    if (stop_ && pending_ == 0) cv_.notify_all();
  }
  return claimed;
}

void ThreadPool::worker_loop(std::size_t self) {
  static auto& c_executed = obs::counter("pool.tasks_executed");
  static auto& h_wait = obs::histogram("pool.queue_wait_us");
  for (;;) {
    Task task;
    if (try_claim(self, &task)) {
      h_wait.observe(std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - task.enqueued)
                         .count());
      c_executed.add();
      // Install the submitter's context (stolen tasks included), then open
      // the pool.task span inside it so it nests under the submitting span
      // on the submitting job's lane.
      obs::ContextScope scope(task.ctx);
      obs::TraceSpan span("pool.task", "pool");
      task.fn();
      continue;
    }
    std::unique_lock lk(sleep_mu_);
    if (stop_ && pending_ == 0) return;
    // pending_ > 0 with an empty scan means a task landed (or a claim is
    // mid-flight) since we looked: rescan instead of sleeping.
    if (pending_ > 0) continue;
    cv_.wait(lk, [this] { return stop_ || pending_ > 0; });
    if (stop_ && pending_ == 0) return;
  }
}

}  // namespace abg::util
