#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "obs/registry.hpp"
#include "obs/trace_events.hpp"

namespace abg::util {

namespace detail {
void note_task_queued() {
  static auto& c_queued = obs::counter("pool.tasks_queued");
  c_queued.add();
}
}  // namespace detail

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::worker_loop() {
  static auto& c_executed = obs::counter("pool.tasks_executed");
  static auto& h_wait = obs::histogram("pool.queue_wait_us");
  for (;;) {
    Task task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    h_wait.observe(std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - task.enqueued)
                       .count());
    c_executed.add();
    obs::TraceSpan span("pool.task", "pool");
    task.fn();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futs.push_back(submit([i, &fn] { fn(i); }));
  }
  for (auto& f : futs) f.get();
}

}  // namespace abg::util
