// Tiny CSV reader/writer used for trace persistence and benchmark output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace abg::util {

// Writes rows of string fields, quoting fields that contain separators.
class CsvWriter {
 public:
  explicit CsvWriter(char sep = ',') : sep_(sep) {}

  void add_row(const std::vector<std::string>& fields);
  // Convenience: formats doubles with enough precision to round-trip.
  void add_row_numeric(const std::vector<double>& values);

  // Serialized CSV body.
  std::string str() const;
  // Write to a file; returns false on I/O failure.
  bool save(const std::string& path) const;

 private:
  char sep_;
  std::vector<std::vector<std::string>> rows_;
};

// Parses CSV content into rows of fields. Handles quoted fields with embedded
// separators and doubled quotes. Newlines inside quotes are not supported
// (traces never need them).
std::vector<std::vector<std::string>> parse_csv(const std::string& content, char sep = ',');

// Checked numeric parsing: the whole field must be consumed (no trailing
// garbage) and must be non-empty. Unlike std::atof, "banana" and "" are
// rejected instead of silently producing 0. "nan"/"inf" parse successfully —
// rejecting non-finite values is a *validation* decision (trace/validate),
// not a lexical one.
bool parse_double(const std::string& field, double* out);
bool parse_u64(const std::string& field, std::uint64_t* out);

// Reads an entire file; returns empty string on failure.
std::string read_file(const std::string& path);

// Checked variant: distinguishes an unreadable file (false) from an empty
// one (true with *out empty).
bool read_file(const std::string& path, std::string* out);

}  // namespace abg::util
