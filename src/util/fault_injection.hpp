// Env/flag-driven fault injector (CC-Fuzz-style adversarial stress, applied
// to our own runtime): probabilistic I/O failure, NaN signal corruption, and
// forced mid-run cancellation, so the chaos tests can prove every
// degradation path returns a tagged Result instead of crashing or hanging.
//
// Configuration comes from the ABG_FAULT_INJECT environment variable
// ("io=0.1,nan=0.05,cancel_after=2,seed=9") or programmatically via
// set_config() (tests). With no faults configured, every hook is a single
// relaxed atomic-bool load — safe to leave compiled into the hot paths.
//
// Injections are counted in the obs registry: "fault.io_injected",
// "fault.nan_injected", "fault.cancel_injected".
#pragma once

#include <cstdint>

namespace abg::util::fault {

struct Config {
  double io_fail_prob = 0.0;        // io=<p>   : save/load calls fail with kIoError
  double nan_prob = 0.0;            // nan=<p>  : replayed signal values become NaN
  int cancel_after_iterations = -1; // cancel_after=<n> : cancel refinement at iter n
  std::uint64_t seed = 1;           // seed=<s> : injector RNG seed

  bool any() const {
    return io_fail_prob > 0.0 || nan_prob > 0.0 || cancel_after_iterations >= 0;
  }
};

// Parse an ABG_FAULT_INJECT-style spec. Unknown or malformed entries are
// ignored (the injector must never itself be a crash source).
Config parse_spec(const char* spec);

// Current config; first call reads ABG_FAULT_INJECT.
Config config();

// Replace the config (tests). Resets the injector RNG to cfg.seed.
void set_config(const Config& cfg);

// True when any fault class is enabled (one relaxed load).
bool active();

// Probabilistic hooks. `site` names the call site for log messages.
bool io_fail(const char* site);          // true => caller must fail with kIoError
bool corrupt(double* value, const char* site);  // true => *value was set to NaN
bool cancel_at(int iteration);           // true => caller should cancel now

}  // namespace abg::util::fault
