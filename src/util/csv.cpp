#include "util/csv.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace abg::util {

namespace {

bool needs_quoting(const std::string& field, char sep) {
  return field.find(sep) != std::string::npos || field.find('"') != std::string::npos ||
         field.find('\n') != std::string::npos;
}

std::string quote(const std::string& field) {
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::add_row(const std::vector<std::string>& fields) { rows_.push_back(fields); }

void CsvWriter::add_row_numeric(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    fields.emplace_back(buf);
  }
  add_row(fields);
}

std::string CsvWriter::str() const {
  std::string out;
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += sep_;
      out += needs_quoting(row[i], sep_) ? quote(row[i]) : row[i];
    }
    out += '\n';
  }
  return out;
}

bool CsvWriter::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << str();
  return static_cast<bool>(f);
}

std::vector<std::vector<std::string>> parse_csv(const std::string& content, char sep) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == sep) {
      row.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      row.push_back(std::move(field));
      field.clear();
      rows.push_back(std::move(row));
      row.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  if (!field.empty() || !row.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

bool parse_double(const std::string& field, double* out) {
  if (field.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (end != field.c_str() + field.size()) return false;  // trailing garbage / empty
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) return false;
  *out = v;
  return true;
}

bool parse_u64(const std::string& field, std::uint64_t* out) {
  if (field.empty() || field[0] == '-' || field[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(field.c_str(), &end, 10);
  if (end != field.c_str() + field.size()) return false;
  if (errno == ERANGE) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

std::string read_file(const std::string& path) {
  std::string out;
  return read_file(path, &out) ? out : std::string{};
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  if (f.bad()) return false;
  *out = ss.str();
  return true;
}

}  // namespace abg::util
