// Deterministic, seedable random number generation. Every stochastic step in
// the pipeline (trace noise, constant sampling, segment selection, bucket
// sampling) draws from an explicitly threaded Rng so that experiments are
// reproducible run-to-run.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace abg::util {

// xoshiro256** seeded via SplitMix64; small, fast, and good enough for
// simulation-grade randomness.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Standard normal via Box-Muller.
  double normal(double mean = 0.0, double stddev = 1.0);
  // Bernoulli trial.
  bool chance(double p);
  // Exponential with the given rate (lambda). Requires rate > 0.
  double exponential(double rate);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i)));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  // Pick k distinct indices out of [0, n) (k capped at n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  // Derive an independent child stream (for per-task determinism regardless
  // of thread scheduling).
  Rng fork();

  // Full generator state, for checkpoint/resume: restoring a saved state
  // reproduces the exact draw sequence the original stream would have made.
  struct State {
    std::uint64_t s[4] = {};
    bool have_cached_normal = false;
    double cached_normal = 0.0;
  };
  State state() const;
  void set_state(const State& st);

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace abg::util
