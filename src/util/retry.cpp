#include "util/retry.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/registry.hpp"
#include "util/log.hpp"

namespace abg::util {

Retry::Retry(RetryPolicy policy)
    : Retry(std::move(policy), [](double seconds) {
        std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
      }) {}

Retry::Retry(RetryPolicy policy, SleepFn sleep)
    : policy_(std::move(policy)), sleep_(std::move(sleep)), rng_(policy_.seed) {}

bool Retry::retryable(StatusCode code) const {
  return std::find(policy_.retryable.begin(), policy_.retryable.end(), code) !=
         policy_.retryable.end();
}

double Retry::backoff_s(int attempt) {
  double delay = policy_.initial_backoff_s;
  for (int i = 1; i < attempt; ++i) delay *= policy_.multiplier;
  delay = std::min(delay, policy_.max_backoff_s);
  if (policy_.jitter_frac > 0.0) {
    delay *= rng_.uniform(1.0 - policy_.jitter_frac, 1.0 + policy_.jitter_frac);
  }
  return std::max(delay, 0.0);
}

Status Retry::run(const std::function<Status()>& op) {
  static auto& c_retries = obs::counter("util.retry_attempts");
  static auto& c_gave_up = obs::counter("util.retry_exhausted");
  Status last = Status(StatusCode::kUnknown, "retry ran zero attempts");
  const int attempts = std::max(policy_.max_attempts, 1);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    last = op();
    if (last.is_ok()) return last;
    if (!retryable(last.code())) return last;
    if (attempt == attempts) break;
    const double delay = backoff_s(attempt);
    ABG_WARN("attempt %d/%d failed (%s); retrying in %.0f ms", attempt, attempts,
             last.to_string().c_str(), delay * 1e3);
    c_retries.add();
    sleep_(delay);
  }
  c_gave_up.add();
  return last.with_context("after " + std::to_string(attempts) + " attempts");
}

}  // namespace abg::util
