#include "util/json_parse.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace abg::util {

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue JsonValue::null() { return JsonValue(); }

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.arr_ = std::move(items);
  return v;
}

JsonValue JsonValue::object(std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.obj_ = std::move(members);
  return v;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> parse() {
    auto v = parse_value(0);
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) return error("trailing characters after JSON value");
    return v;
  }

 private:
  Status error(const std::string& msg) const {
    return Status(StatusCode::kParseError, "line " + std::to_string(line_) + ": " + msg);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == '\n') ++line_;
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Result<JsonValue> parse_value(int depth) {
    if (depth > kMaxDepth) return error("nesting too deep");
    skip_ws();
    if (eof()) return error("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        auto s = parse_string();
        if (!s.ok()) return s.status();
        return JsonValue::string(std::move(*s));
      }
      case 't':
        if (consume_literal("true")) return JsonValue::boolean(true);
        return error("bad literal (expected 'true')");
      case 'f':
        if (consume_literal("false")) return JsonValue::boolean(false);
        return error("bad literal (expected 'false')");
      case 'n':
        if (consume_literal("null")) return JsonValue::null();
        return error("bad literal (expected 'null')");
      default: return parse_number();
    }
  }

  Result<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '.' ||
                      peek() == 'e' || peek() == 'E' || peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) return error(std::string("unexpected character '") + peek() + "'");
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE) {
      return error("bad number '" + token + "'");
    }
    return JsonValue::number(d);
  }

  Result<std::string> parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (eof()) return error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\n') return error("raw newline in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) return error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return error("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (manifests are config files;
          // surrogate pairs outside the BMP are not supported).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return error(std::string("bad escape '\\") + esc + "'");
      }
    }
  }

  Result<JsonValue> parse_array(int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return JsonValue::array(std::move(items));
    }
    while (true) {
      auto v = parse_value(depth + 1);
      if (!v.ok()) return v;
      items.push_back(std::move(*v));
      skip_ws();
      if (eof()) return error("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return JsonValue::array(std::move(items));
      if (c != ',') return error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> parse_object(int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return JsonValue::object(std::move(members));
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return error("expected string key in object");
      auto key = parse_string();
      if (!key.ok()) return key.status();
      skip_ws();
      if (eof() || text_[pos_++] != ':') return error("expected ':' after object key");
      auto v = parse_value(depth + 1);
      if (!v.ok()) return v;
      members.emplace_back(std::move(*key), std::move(*v));
      skip_ws();
      if (eof()) return error("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return JsonValue::object(std::move(members));
      if (c != ',') return error("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

}  // namespace

Result<JsonValue> parse_json(std::string_view text) { return Parser(text).parse(); }

Result<JsonValue> load_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status(StatusCode::kIoError, "cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status(StatusCode::kIoError, "read failed for " + path);
  return parse_json(buf.str()).with_context(path);
}

}  // namespace abg::util
