#include "util/status.hpp"

namespace abg::util {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kUnknown: return "unknown";
    case StatusCode::kParseError: return "parse-error";
    case StatusCode::kInvalidTrace: return "invalid-trace";
    case StatusCode::kTimeout: return "timeout";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kIoError: return "io-error";
    case StatusCode::kNumericError: return "numeric-error";
    case StatusCode::kInvalidArgument: return "invalid-argument";
  }
  return "unknown";
}

int exit_code(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kUnknown: return 1;
    case StatusCode::kParseError: return 3;
    case StatusCode::kInvalidTrace: return 4;
    case StatusCode::kTimeout: return 5;
    case StatusCode::kCancelled: return 6;
    case StatusCode::kIoError: return 7;
    case StatusCode::kNumericError: return 8;
    case StatusCode::kInvalidArgument: return 9;
  }
  return 1;
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace abg::util
