#include "util/durable_io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/fault_injection.hpp"

namespace abg::util {

namespace {

Status io_error(const std::string& what) {
  return Status(StatusCode::kIoError, what + ": " + std::strerror(errno));
}

Status fsync_fd(int fd, const std::string& label) {
  if (::fsync(fd) != 0) return io_error("fsync " + label);
  return Status::ok();
}

}  // namespace

Status fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return io_error("open " + path);
  const Status st = fsync_fd(fd, path);
  ::close(fd);
  return st;
}

Status fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return io_error("open dir " + dir);
  const Status st = fsync_fd(fd, dir);
  ::close(fd);
  return st;
}

Status atomic_write_file(const std::string& path, const std::string& content,
                         bool durable) {
  if (fault::io_fail("durable_io.write")) {
    return Status(StatusCode::kIoError, "injected I/O fault writing " + path);
  }
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return io_error("cannot open " + tmp + " for writing");
  const bool wrote = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  bool synced = true;
  if (wrote && durable) {
    // Flush stdio buffers first so fsync sees every byte.
    synced = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  }
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !synced || !closed) {
    std::remove(tmp.c_str());
    return Status(StatusCode::kIoError, "short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status st = io_error("cannot rename " + tmp + " over " + path);
    std::remove(tmp.c_str());
    return st;
  }
  if (durable) {
    if (auto st = fsync_parent_dir(path); !st.is_ok()) return st;
  }
  return Status::ok();
}

}  // namespace abg::util
