#include "dsl/known_handlers.hpp"

#include <stdexcept>

namespace abg::dsl {

namespace {

ExprPtr S(Signal s) { return sig(s); }
ExprPtr C(double v) { return constant(v); }

std::vector<KnownHandlers> build() {
  std::vector<KnownHandlers> v;

  // --- Reno -------------------------------------------------------------
  // Our ground-truth Reno adds one full MSS per RTT (coefficient 1.0; the
  // paper's testbed traces gave 0.7).
  v.push_back({
      "reno",
      add(S(Signal::kCwnd), S(Signal::kRenoInc)),
      add(S(Signal::kCwnd), S(Signal::kRenoInc)),
      "reno",
  });

  // --- Westwood -----------------------------------------------------------
  // Identical increase to Reno; Westwood differs only in its loss response,
  // which the cwnd-ack handler cannot see.
  v.push_back({
      "westwood",
      add(S(Signal::kCwnd), S(Signal::kRenoInc)),
      add(S(Signal::kCwnd), S(Signal::kRenoInc)),
      "reno",
  });

  // --- Scalable -----------------------------------------------------------
  // cwnd += 0.01 * acked per ACK (multiplicative-increase flavour).
  v.push_back({
      "scalable",
      add(S(Signal::kCwnd), mul(C(0.01), S(Signal::kAckedBytes))),
      add(S(Signal::kCwnd), mul(C(0.01), S(Signal::kAckedBytes))),
      "reno",
  });

  // --- LP -----------------------------------------------------------------
  // Reno increase plus an early-backoff mode once queueing delay builds.
  v.push_back({
      "lp",
      add(mul(S(Signal::kCwnd), cond(gt(S(Signal::kHtcpDiff), C(0.15)), C(0.5), C(1.0))),
          S(Signal::kRenoInc)),
      add(S(Signal::kCwnd), S(Signal::kRenoInc)),
      "rate-delay",
  });

  // --- Hybla ---------------------------------------------------------------
  // cwnd += rho^2 * reno-inc with rho = rtt / 25ms, i.e. 1600 * rtt^2 *
  // reno-inc (the 1600 constant absorbs 1/seconds^2).
  v.push_back({
      "hybla",
      add(S(Signal::kCwnd),
          mul(C(1600.0), mul(S(Signal::kRtt), mul(S(Signal::kRtt), S(Signal::kRenoInc))))),
      add(S(Signal::kCwnd),
          mul(C(1600.0), mul(S(Signal::kRtt), mul(S(Signal::kRtt), S(Signal::kRenoInc))))),
      "rate-delay",
  });

  // --- HTCP ----------------------------------------------------------------
  // alpha ramps ~10x with time since loss past the 1-second low-speed mode
  // (the in-DSL linearization of H-TCP's quadratic; the 10 absorbs 1/s).
  v.push_back({
      "htcp",
      add(S(Signal::kCwnd),
          mul(S(Signal::kRenoInc),
              cond(gt(S(Signal::kTimeSinceLoss), C(1.0)),
                   mul(C(10.0), S(Signal::kTimeSinceLoss)), C(1.0)))),
      add(S(Signal::kCwnd), S(Signal::kRenoInc)),
      "rate-delay",
  });

  // --- Illinois --------------------------------------------------------------
  // alpha = 10 while queueing delay is low, 0.3 once it builds.
  v.push_back({
      "illinois",
      add(S(Signal::kCwnd),
          mul(S(Signal::kRenoInc),
              cond(lt(S(Signal::kHtcpDiff), C(0.1)), C(10.0), C(0.3)))),
      add(S(Signal::kCwnd), mul(C(1.3), S(Signal::kRenoInc))),
      "rate-delay",
  });

  // --- Vegas ----------------------------------------------------------------
  // alpha = 2, beta = 4 on the queue estimate: grow below, hold inside,
  // shrink above.
  v.push_back({
      "vegas",
      add(S(Signal::kCwnd),
          cond(lt(S(Signal::kVegasDiff), C(2.0)), S(Signal::kRenoInc),
               cond(gt(S(Signal::kVegasDiff), C(4.0)), mul(C(-1.0), S(Signal::kRenoInc)),
                    C(0.0)))),
      add(S(Signal::kCwnd),
          cond(lt(S(Signal::kVegasDiff), C(2.0)), S(Signal::kRenoInc), C(0.0))),
      "vegas",
  });

  // --- Veno -----------------------------------------------------------------
  // Full Reno speed while the queue is short, half speed past 3 packets.
  v.push_back({
      "veno",
      add(S(Signal::kCwnd),
          mul(S(Signal::kRenoInc),
              cond(lt(S(Signal::kVegasDiff), C(3.0)), C(1.0), C(0.5)))),
      add(S(Signal::kCwnd),
          mul(S(Signal::kRenoInc),
              cond(lt(S(Signal::kVegasDiff), C(3.0)), C(1.0), C(0.5)))),
      "vegas",
  });

  // --- NV -------------------------------------------------------------------
  // Same fundamental logic as Vegas (thresholds 2/4); NV's once-per-RTT
  // update cadence is hidden state the handler model ignores (S5.4).
  v.push_back({
      "nv",
      add(S(Signal::kCwnd),
          cond(lt(S(Signal::kVegasDiff), C(2.0)), S(Signal::kRenoInc),
               cond(gt(S(Signal::kVegasDiff), C(4.0)), mul(C(-1.0), S(Signal::kRenoInc)),
                    C(0.0)))),
      add(S(Signal::kCwnd),
          cond(lt(S(Signal::kVegasDiff), C(2.0)), S(Signal::kRenoInc), C(0.0))),
      "vegas",
  });

  // --- YeAH -----------------------------------------------------------------
  // Scalable-style fast mode under the queue threshold; Reno + decongestion
  // above it ((1 - queued) * reno-inc goes negative as the queue grows).
  v.push_back({
      "yeah",
      add(S(Signal::kCwnd),
          cond(lt(S(Signal::kVegasDiff), C(8.0)), mul(C(0.01), S(Signal::kAckedBytes)),
               mul(sub(C(1.0), S(Signal::kVegasDiff)), S(Signal::kRenoInc)))),
      add(S(Signal::kCwnd),
          mul(S(Signal::kRenoInc), cond(gt(S(Signal::kVegasDiff), C(8.0)), C(0.3), C(1.0)))),
      "vegas",
  });

  // --- BBR ------------------------------------------------------------------
  // fine-tuned: minRTT * ack-rate * ({rtts-since-loss % 8 = 0} ? 2.6 : 2.05)
  // (our PROBE_BW gain cycle advances one phase per min_rtt with a 1.25x
  // probe every 8 phases; cwnd_gain = 2).
  // synthesized (paper): 2*ack-rate*minRTT + ({cwnd % 2.7 = 0} ? 2.05*cwnd : mss)
  v.push_back({
      "bbr",
      mul(mul(S(Signal::kMinRtt), S(Signal::kAckRate)),
          cond(mod_eq(S(Signal::kRttsSinceLoss), C(8.0)), C(2.6), C(2.05))),
      add(mul(C(2.0), mul(S(Signal::kAckRate), S(Signal::kMinRtt))),
          cond(mod_eq(S(Signal::kCwnd), C(2.7)), mul(C(2.05), S(Signal::kCwnd)),
               S(Signal::kMss))),
      "bbr",
  });

  // --- Cubic ----------------------------------------------------------------
  // Our Cubic: W(t) = 0.4*(t - K)^3 + wmax packets, K = cbrt(0.75 * wmax).
  // Byte-correct encoding: wmax + mss*(cbrt(0.4)*t - cbrt(0.75*wmax/mss))^3,
  // cbrt(0.4) ~= 0.737.
  v.push_back({
      "cubic",
      add(S(Signal::kWMax),
          mul(S(Signal::kMss),
              cube(sub(mul(C(0.737), S(Signal::kTimeSinceLoss)),
                       cbrt(mul(C(0.75), div(S(Signal::kWMax), S(Signal::kMss)))))))),
      // synthesized (units disabled, S5.5): cwnd + t^3, byte-scaled via mss
      add(S(Signal::kCwnd), mul(S(Signal::kMss), cube(S(Signal::kTimeSinceLoss)))),
      "cubic",
  });

  // --- BIC / CDG / HighSpeed: no usable handler in the paper -----------------
  v.push_back({"bic", nullptr, nullptr, "cubic"});
  v.push_back({"cdg", nullptr, nullptr, "vegas"});
  v.push_back({"highspeed", nullptr, nullptr, "reno"});

  // --- Students (Table 2, second column only) --------------------------------
  v.push_back({"student1", nullptr, mul(C(88.0), S(Signal::kMss)), "vegas11"});
  v.push_back({"student2", nullptr,
               cond(lt(S(Signal::kVegasDiff), C(5.0)),
                    add(S(Signal::kCwnd), S(Signal::kMss)), S(Signal::kMss)),
               "vegas11"});
  v.push_back({"student3", nullptr,
               mul(C(0.8), mul(S(Signal::kAckRate), S(Signal::kMinRtt))), "delay11"});
  v.push_back({"student4", nullptr, mul(C(2.0), S(Signal::kMss)), "vegas11"});
  v.push_back({"student5", nullptr, mul(C(2.0), S(Signal::kMss)), "vegas11"});
  v.push_back({"student6", nullptr,
               cond(gt(S(Signal::kRttGradient), C(0.0)),
                    mul(C(0.8), S(Signal::kCwnd)),
                    add(S(Signal::kCwnd), mul(C(150.0), S(Signal::kRenoInc)))),
               "vegas11"});
  v.push_back({"student7", nullptr,
               add(S(Signal::kCwnd),
                   mul(C(0.04), div(mul(S(Signal::kRenoInc), S(Signal::kMinRtt)),
                                    mul(S(Signal::kRtt), S(Signal::kRtt))))),
               "delay11"});
  return v;
}

}  // namespace

const std::vector<KnownHandlers>& all_known_handlers() {
  static const std::vector<KnownHandlers> kAll = build();
  return kAll;
}

const KnownHandlers& known_handlers(const std::string& cca_name) {
  for (const auto& k : all_known_handlers()) {
    if (k.cca == cca_name) return k;
  }
  throw std::invalid_argument("no known handlers for CCA: " + cca_name);
}

}  // namespace abg::dsl
