// Parser for the handler-expression syntax emitted by to_string(), so
// handlers can round-trip through logs/CLIs and users can score their own
// expressions against traces:
//
//   cwnd + 0.7 * reno-inc
//   {vegas-diff < 1} ? 0.7 * reno-inc : 0
//   min-rtt * ack-rate * ({rtts-since-loss % 8 = 0} ? 2.6 : 2.05)
//   wmax + mss * (0.737 * time-since-loss - cbrt(0.75 * (wmax / mss)))^3
//
// Standard precedence (unary minus > ^3 > * / > + - > comparisons), left
// associative; conditionals are written `{bool} ? num : num`; holes are
// `c0`, `c1`, ...
#pragma once

#include <optional>
#include <string>

#include "dsl/expr.hpp"

namespace abg::dsl {

struct ParseResult {
  ExprPtr expr;        // null on failure
  std::string error;   // human-readable diagnostic on failure

  explicit operator bool() const { return expr != nullptr; }
};

ParseResult parse(const std::string& text);

}  // namespace abg::dsl
