// Arithmetic-simplifiability rejection: the paper filters out sketches that
// sympy can reduce (§4.1) so the search never wastes distance evaluations on
// redundant shapes. We implement the equivalent as a syntactic rule set plus
// a canonicalizer for commutative operators (used to deduplicate sketches
// that differ only by operand order).
#pragma once

#include "dsl/expr.hpp"

namespace abg::dsl {

// True if the sketch is arithmetically reducible and should be rejected:
//   * any operator whose operands are all constants/holes (c1 + c2 == c3),
//   * x - x, x / x, x + x (== 2x), comparisons x < x, x > x, x % x,
//   * a conditional with structurally identical branches,
//   * cube(cbrt(x)) or cbrt(cube(x)),
//   * nested division (a/b)/c or a/(b/c) — rewritable with one division,
//   * right-leaning (a + (b + c)) / (a * (b * c)) chains — the left-leaning
//     associativity canonical form is kept instead.
bool is_simplifiable(const Expr& e);

// Order-canonical form: commutative operands (kAdd, kMul) sorted by a
// deterministic structural key. Two sketches equal up to commutativity map
// to the same canonical tree.
ExprPtr canonicalize(const ExprPtr& e);

// Total order on expressions used by canonicalize (exposed for tests).
int compare(const Expr& a, const Expr& b);

// hash_expr of the canonical form: two expressions equal up to commutativity
// hash identically. This is the handler half of the evaluation memo-cache key
// (synth::EvalCache) — safe because IEEE add/mul are commutative, so
// commutative variants replay to bit-identical CWND series.
std::size_t canonical_hash(const ExprPtr& e);

}  // namespace abg::dsl
