// The domain-expert handlers of Table 2. For each CCA we encode:
//   * the fine-tuned cwnd-ack handler (Table 2, third column) — the
//     expression a domain expert wrote from the CCA's source, used as the
//     accuracy yardstick in §6.2 and as the expert expressions of Figure 3;
//   * the expected synthesized handler (Table 2, second column) — the
//     expression Abagnale returned in the paper, used to validate that our
//     search lands on the same structure.
//
// Window-valued subexpressions are in bytes. Where the paper's expression is
// written in packet units (Cubic's polynomial), an explicit mss factor makes
// the handler scale-correct; distances are always computed over
// packet-normalized CWND series so reported magnitudes match the paper's.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dsl/expr.hpp"

namespace abg::dsl {

struct KnownHandlers {
  std::string cca;                  // registry name, e.g. "reno"
  ExprPtr fine_tuned;               // nullptr if the paper has none (students)
  ExprPtr expected_synthesized;     // nullptr if out of scope (cdg, highspeed, bic)
  std::string dsl_hint;             // curated DSL this CCA belongs to
};

// Lookup by CCA registry name; throws std::invalid_argument if unknown.
const KnownHandlers& known_handlers(const std::string& cca_name);

// All entries (kernel CCAs then students), stable order.
const std::vector<KnownHandlers>& all_known_handlers();

}  // namespace abg::dsl
