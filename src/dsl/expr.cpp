#include "dsl/expr.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <functional>

namespace abg::dsl {

const char* signal_name(Signal s) {
  switch (s) {
    case Signal::kMss: return "mss";
    case Signal::kAckedBytes: return "acked";
    case Signal::kTimeSinceLoss: return "time-since-loss";
    case Signal::kRtt: return "rtt";
    case Signal::kMinRtt: return "min-rtt";
    case Signal::kMaxRtt: return "max-rtt";
    case Signal::kAckRate: return "ack-rate";
    case Signal::kRttGradient: return "rtt-gradient";
    case Signal::kCwnd: return "cwnd";
    case Signal::kWMax: return "wmax";
    case Signal::kRenoInc: return "reno-inc";
    case Signal::kVegasDiff: return "vegas-diff";
    case Signal::kHtcpDiff: return "htcp-diff";
    case Signal::kRttsSinceLoss: return "rtts-since-loss";
  }
  return "?";
}

const char* op_name(Op o) {
  switch (o) {
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kMul: return "*";
    case Op::kDiv: return "/";
    case Op::kCond: return "?:";
    case Op::kCube: return "^3";
    case Op::kCbrt: return "cbrt";
    case Op::kLt: return "<";
    case Op::kGt: return ">";
    case Op::kModEq: return "%=0";
  }
  return "?";
}

bool op_returns_bool(Op o) { return o == Op::kLt || o == Op::kGt || o == Op::kModEq; }

int op_arity(Op o) {
  switch (o) {
    case Op::kCube:
    case Op::kCbrt: return 1;
    case Op::kCond: return 3;
    default: return 2;
  }
}

bool signal_is_macro(Signal s) {
  return s == Signal::kRenoInc || s == Signal::kVegasDiff || s == Signal::kHtcpDiff ||
         s == Signal::kRttsSinceLoss;
}

// --- Builders -------------------------------------------------------------

ExprPtr sig(Signal s) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kSignal;
  e->signal = s;
  return e;
}

ExprPtr constant(double v) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kConst;
  e->value = v;
  return e;
}

ExprPtr hole(int id) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kHole;
  e->hole_id = id;
  return e;
}

ExprPtr node(Op o, std::vector<ExprPtr> children) {
  assert(static_cast<int>(children.size()) == op_arity(o));
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kOp;
  e->op = o;
  e->children = std::move(children);
  return e;
}

ExprPtr add(ExprPtr a, ExprPtr b) { return node(Op::kAdd, {std::move(a), std::move(b)}); }
ExprPtr sub(ExprPtr a, ExprPtr b) { return node(Op::kSub, {std::move(a), std::move(b)}); }
ExprPtr mul(ExprPtr a, ExprPtr b) { return node(Op::kMul, {std::move(a), std::move(b)}); }
ExprPtr div(ExprPtr a, ExprPtr b) { return node(Op::kDiv, {std::move(a), std::move(b)}); }
ExprPtr cond(ExprPtr c, ExprPtr then_e, ExprPtr else_e) {
  return node(Op::kCond, {std::move(c), std::move(then_e), std::move(else_e)});
}
ExprPtr cube(ExprPtr a) { return node(Op::kCube, {std::move(a)}); }
ExprPtr cbrt(ExprPtr a) { return node(Op::kCbrt, {std::move(a)}); }
ExprPtr lt(ExprPtr a, ExprPtr b) { return node(Op::kLt, {std::move(a), std::move(b)}); }
ExprPtr gt(ExprPtr a, ExprPtr b) { return node(Op::kGt, {std::move(a), std::move(b)}); }
ExprPtr mod_eq(ExprPtr a, ExprPtr b) { return node(Op::kModEq, {std::move(a), std::move(b)}); }

// --- Structure ------------------------------------------------------------

int depth(const Expr& e) {
  if (e.kind != Expr::Kind::kOp) return 1;
  int d = 0;
  for (const auto& c : e.children) d = std::max(d, depth(*c));
  return d + 1;
}

int node_count(const Expr& e) {
  if (e.kind != Expr::Kind::kOp) return 1;
  int n = 1;
  for (const auto& c : e.children) n += node_count(*c);
  return n;
}

std::vector<int> hole_ids(const Expr& e) {
  std::vector<int> ids;
  std::function<void(const Expr&)> walk = [&](const Expr& x) {
    if (x.kind == Expr::Kind::kHole) {
      if (std::find(ids.begin(), ids.end(), x.hole_id) == ids.end()) ids.push_back(x.hole_id);
    }
    for (const auto& c : x.children) walk(*c);
  };
  walk(e);
  return ids;
}

int hole_count(const Expr& e) { return static_cast<int>(hole_ids(e).size()); }

bool equal(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Expr::Kind::kSignal: return a.signal == b.signal;
    case Expr::Kind::kConst: return a.value == b.value;
    case Expr::Kind::kHole: return a.hole_id == b.hole_id;
    case Expr::Kind::kOp: {
      if (a.op != b.op || a.children.size() != b.children.size()) return false;
      for (std::size_t i = 0; i < a.children.size(); ++i) {
        if (!equal(*a.children[i], *b.children[i])) return false;
      }
      return true;
    }
  }
  return false;
}

std::size_t hash_expr(const Expr& e) {
  auto combine = [](std::size_t h, std::size_t v) {
    return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
  };
  std::size_t h = static_cast<std::size_t>(e.kind) * 1315423911u;
  switch (e.kind) {
    case Expr::Kind::kSignal: h = combine(h, static_cast<std::size_t>(e.signal)); break;
    case Expr::Kind::kConst: h = combine(h, std::hash<double>{}(e.value)); break;
    case Expr::Kind::kHole: h = combine(h, static_cast<std::size_t>(e.hole_id) + 77); break;
    case Expr::Kind::kOp:
      h = combine(h, static_cast<std::size_t>(e.op) + 101);
      for (const auto& c : e.children) h = combine(h, hash_expr(*c));
      break;
  }
  return h;
}

ExprPtr fill_holes(const ExprPtr& e, const std::vector<double>& values) {
  const auto ids = hole_ids(*e);
  std::function<ExprPtr(const ExprPtr&)> walk = [&](const ExprPtr& x) -> ExprPtr {
    switch (x->kind) {
      case Expr::Kind::kHole: {
        const auto it = std::find(ids.begin(), ids.end(), x->hole_id);
        const auto pos = static_cast<std::size_t>(it - ids.begin());
        const double v = values.empty()
                             ? 1.0
                             : values[std::min(pos, values.size() - 1)];
        return constant(v);
      }
      case Expr::Kind::kOp: {
        std::vector<ExprPtr> kids;
        kids.reserve(x->children.size());
        for (const auto& c : x->children) kids.push_back(walk(c));
        return node(x->op, std::move(kids));
      }
      default:
        return x;
    }
  };
  return walk(e);
}

ExprPtr to_sketch(const ExprPtr& e) {
  int next_id = 0;
  std::function<ExprPtr(const ExprPtr&)> walk = [&](const ExprPtr& x) -> ExprPtr {
    switch (x->kind) {
      case Expr::Kind::kConst: return hole(next_id++);
      case Expr::Kind::kOp: {
        std::vector<ExprPtr> kids;
        kids.reserve(x->children.size());
        for (const auto& c : x->children) kids.push_back(walk(c));
        return node(x->op, std::move(kids));
      }
      default:
        return x;
    }
  };
  return walk(e);
}

namespace {

void print(const Expr& e, std::string& out) {
  switch (e.kind) {
    case Expr::Kind::kSignal:
      out += signal_name(e.signal);
      return;
    case Expr::Kind::kConst: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", e.value);
      out += buf;
      return;
    }
    case Expr::Kind::kHole: {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "c%d", e.hole_id);
      out += buf;
      return;
    }
    case Expr::Kind::kOp:
      break;
  }
  auto paren = [&out](const Expr& c) {
    const bool need = c.kind == Expr::Kind::kOp && op_arity(c.op) != 1;
    if (need) out += '(';
    print(c, out);
    if (need) out += ')';
  };
  switch (e.op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kLt:
    case Op::kGt:
      paren(*e.children[0]);
      out += ' ';
      out += op_name(e.op);
      out += ' ';
      paren(*e.children[1]);
      return;
    case Op::kModEq:
      paren(*e.children[0]);
      out += " % ";
      paren(*e.children[1]);
      out += " = 0";
      return;
    case Op::kCond:
      out += '{';
      print(*e.children[0], out);
      out += "} ? ";
      paren(*e.children[1]);
      out += " : ";
      paren(*e.children[2]);
      return;
    case Op::kCube:
      paren(*e.children[0]);
      out += "^3";
      return;
    case Op::kCbrt:
      out += "cbrt(";
      print(*e.children[0], out);
      out += ')';
      return;
  }
}

}  // namespace

std::string to_string(const Expr& e) {
  std::string out;
  print(e, out);
  return out;
}

std::vector<Signal> signals_used(const Expr& e) {
  std::vector<Signal> out;
  std::function<void(const Expr&)> walk = [&](const Expr& x) {
    if (x.kind == Expr::Kind::kSignal &&
        std::find(out.begin(), out.end(), x.signal) == out.end()) {
      out.push_back(x.signal);
    }
    for (const auto& c : x.children) walk(*c);
  };
  walk(e);
  return out;
}

std::vector<Op> ops_used(const Expr& e) {
  std::vector<Op> out;
  std::function<void(const Expr&)> walk = [&](const Expr& x) {
    if (x.kind == Expr::Kind::kOp && std::find(out.begin(), out.end(), x.op) == out.end()) {
      out.push_back(x.op);
    }
    for (const auto& c : x.children) walk(*c);
  };
  walk(e);
  return out;
}

}  // namespace abg::dsl
