#include "dsl/simplify.hpp"

namespace abg::dsl {

namespace {

bool is_leaf_constant(const Expr& e) {
  return e.kind == Expr::Kind::kConst || e.kind == Expr::Kind::kHole;
}

// True if the subtree contains no signal leaf at all — it folds to a single
// constant.
bool constant_only(const Expr& e) {
  if (e.kind == Expr::Kind::kSignal) return false;
  for (const auto& c : e.children) {
    if (!constant_only(*c)) return false;
  }
  return true;
}

// Flatten a +/- chain into its leaf terms (ignoring signs). If any two
// terms of the same chain are structurally equal, the chain is reducible:
// x + x folds to 2x and x ... - x cancels — including across nesting, e.g.
// (a + b) - (a - c).
void collect_chain_terms(const Expr& e, std::vector<const Expr*>& terms) {
  if (e.kind == Expr::Kind::kOp && (e.op == Op::kAdd || e.op == Op::kSub)) {
    collect_chain_terms(*e.children[0], terms);
    collect_chain_terms(*e.children[1], terms);
  } else {
    terms.push_back(&e);
  }
}

bool chain_has_duplicate_terms(const Expr& e) {
  if (e.kind != Expr::Kind::kOp || (e.op != Op::kAdd && e.op != Op::kSub)) return false;
  std::vector<const Expr*> terms;
  collect_chain_terms(e, terms);
  std::size_t constant_terms = 0;
  for (const Expr* t : terms) {
    if (constant_only(*t)) ++constant_terms;
  }
  if (constant_terms >= 2) return true;  // c1 ... c2 folds into one constant
  for (std::size_t i = 0; i < terms.size(); ++i) {
    for (std::size_t j = i + 1; j < terms.size(); ++j) {
      if (equal(*terms[i], *terms[j])) return true;
    }
  }
  return false;
}

}  // namespace

bool is_simplifiable(const Expr& e) {
  if (e.kind != Expr::Kind::kOp) return false;
  for (const auto& c : e.children) {
    if (is_simplifiable(*c)) return true;
  }
  // Any operator over constants only folds away.
  if (constant_only(e)) return true;

  const Expr& a = *e.children[0];
  const Expr* b = e.children.size() > 1 ? e.children[1].get() : nullptr;

  switch (e.op) {
    case Op::kAdd:
      if (chain_has_duplicate_terms(e)) return true;  // x + x, (a+b)-(a-c), ...
      if (b->kind == Expr::Kind::kOp && b->op == Op::kAdd) return true;  // right-leaning chain
      break;
    case Op::kSub:
      if (chain_has_duplicate_terms(e)) return true;  // x - x and chain cancellations
      break;
    case Op::kMul:
      if (b->kind == Expr::Kind::kOp && b->op == Op::kMul) return true;  // right-leaning chain
      // c1 * (c2 * x) etc. — constant can be folded through the product.
      if (is_leaf_constant(a) && b->kind == Expr::Kind::kOp && b->op == Op::kMul) return true;
      break;
    case Op::kDiv:
      if (equal(a, *b)) return true;  // x / x = 1
      if (a.kind == Expr::Kind::kOp && a.op == Op::kDiv) return true;   // (a/b)/c
      if (b->kind == Expr::Kind::kOp && b->op == Op::kDiv) return true;  // a/(b/c)
      if (is_leaf_constant(*b) && a.kind != Expr::Kind::kOp) {
        // x / c == (1/c) * x; keep the multiplicative form only.
        return true;
      }
      break;
    case Op::kCond:
      if (equal(*e.children[1], *e.children[2])) return true;  // same branches
      break;
    case Op::kCube:
      if (a.kind == Expr::Kind::kOp && a.op == Op::kCbrt) return true;  // (x^(1/3))^3
      break;
    case Op::kCbrt:
      if (a.kind == Expr::Kind::kOp && a.op == Op::kCube) return true;  // (x^3)^(1/3)
      break;
    case Op::kLt:
    case Op::kGt:
    case Op::kModEq:
      if (equal(a, *b)) return true;  // trivially constant condition
      break;
  }
  return false;
}

int compare(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return static_cast<int>(a.kind) < static_cast<int>(b.kind) ? -1 : 1;
  switch (a.kind) {
    case Expr::Kind::kSignal:
      if (a.signal != b.signal) return a.signal < b.signal ? -1 : 1;
      return 0;
    case Expr::Kind::kConst:
      if (a.value != b.value) return a.value < b.value ? -1 : 1;
      return 0;
    case Expr::Kind::kHole:
      if (a.hole_id != b.hole_id) return a.hole_id < b.hole_id ? -1 : 1;
      return 0;
    case Expr::Kind::kOp: {
      if (a.op != b.op) return a.op < b.op ? -1 : 1;
      if (a.children.size() != b.children.size()) {
        return a.children.size() < b.children.size() ? -1 : 1;
      }
      for (std::size_t i = 0; i < a.children.size(); ++i) {
        const int c = compare(*a.children[i], *b.children[i]);
        if (c != 0) return c;
      }
      return 0;
    }
  }
  return 0;
}

std::size_t canonical_hash(const ExprPtr& e) { return hash_expr(*canonicalize(e)); }

ExprPtr canonicalize(const ExprPtr& e) {
  if (e->kind != Expr::Kind::kOp) return e;
  std::vector<ExprPtr> kids;
  kids.reserve(e->children.size());
  for (const auto& c : e->children) kids.push_back(canonicalize(c));
  if ((e->op == Op::kAdd || e->op == Op::kMul) && compare(*kids[0], *kids[1]) > 0) {
    std::swap(kids[0], kids[1]);
  }
  return node(e->op, std::move(kids));
}

}  // namespace abg::dsl
