#include "dsl/units.hpp"

#include <functional>
#include <vector>

namespace abg::dsl {

UnitVec signal_unit(Signal s) {
  switch (s) {
    case Signal::kMss:
    case Signal::kAckedBytes:
    case Signal::kCwnd:
    case Signal::kWMax:
    case Signal::kRenoInc:
      return {1, 0};
    case Signal::kTimeSinceLoss:
    case Signal::kRtt:
    case Signal::kMinRtt:
    case Signal::kMaxRtt:
      return {0, 1};
    case Signal::kAckRate:
      return {1, -1};
    case Signal::kRttGradient:     // seconds/second
    case Signal::kVegasDiff:       // packets (dimensionless count)
    case Signal::kHtcpDiff:
    case Signal::kRttsSinceLoss:
      return {0, 0};
  }
  return {0, 0};
}

namespace {

// Unit inference for a fixed assignment of hole units. Returns nullopt on
// dimensional inconsistency. Bool nodes "have" no unit; they require their
// operands to agree and report kDimensionless to the parent (only kCond
// consumes them).
std::optional<UnitVec> infer(const Expr& e, const std::vector<int>& ids,
                             const std::vector<UnitVec>& hole_units) {
  switch (e.kind) {
    case Expr::Kind::kSignal: return signal_unit(e.signal);
    case Expr::Kind::kConst: return kDimensionless;
    case Expr::Kind::kHole: {
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (ids[i] == e.hole_id) return hole_units[i];
      }
      return kDimensionless;
    }
    case Expr::Kind::kOp: break;
  }
  auto child = [&](std::size_t i) { return infer(*e.children[i], ids, hole_units); };
  switch (e.op) {
    case Op::kAdd:
    case Op::kSub: {
      const auto a = child(0), b = child(1);
      if (!a || !b || !(*a == *b)) return std::nullopt;
      return a;
    }
    case Op::kMul: {
      const auto a = child(0), b = child(1);
      if (!a || !b) return std::nullopt;
      return UnitVec{a->bytes + b->bytes, a->secs + b->secs};
    }
    case Op::kDiv: {
      const auto a = child(0), b = child(1);
      if (!a || !b) return std::nullopt;
      return UnitVec{a->bytes - b->bytes, a->secs - b->secs};
    }
    case Op::kCond: {
      const auto c = child(0);
      if (!c) return std::nullopt;  // condition internally inconsistent
      const auto a = child(1), b = child(2);
      if (!a || !b || !(*a == *b)) return std::nullopt;
      return a;
    }
    case Op::kCube: {
      const auto a = child(0);
      if (!a) return std::nullopt;
      return UnitVec{3 * a->bytes, 3 * a->secs};
    }
    case Op::kCbrt: {
      const auto a = child(0);
      if (!a || a->bytes % 3 != 0 || a->secs % 3 != 0) return std::nullopt;
      return UnitVec{a->bytes / 3, a->secs / 3};
    }
    case Op::kLt:
    case Op::kGt:
    case Op::kModEq: {
      const auto a = child(0), b = child(1);
      if (!a || !b || !(*a == *b)) return std::nullopt;
      return kDimensionless;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<UnitVec> infer_unit_concrete(const Expr& e) {
  if (e.is_bool()) return std::nullopt;
  return infer(e, {}, {});
}

bool unit_check(const Expr& e, UnitVec expected) {
  if (e.is_bool()) return false;
  const auto ids = hole_ids(e);
  std::vector<UnitVec> assignment(ids.size());
  // DFS over hole unit assignments; each hole has (2R+1)^2 options. With
  // <= ~5 holes this is bounded by ~10M inferences worst-case, but typical
  // sketches have <= 3 holes (~15k). Abort early on success.
  std::function<bool(std::size_t)> dfs = [&](std::size_t i) -> bool {
    if (i == ids.size()) {
      const auto u = infer(e, ids, assignment);
      return u && *u == expected;
    }
    for (int b = -kHoleUnitRange; b <= kHoleUnitRange; ++b) {
      for (int s = -kHoleUnitRange; s <= kHoleUnitRange; ++s) {
        assignment[i] = UnitVec{b, s};
        if (dfs(i + 1)) return true;
      }
    }
    return false;
  };
  return dfs(0);
}

}  // namespace abg::dsl
