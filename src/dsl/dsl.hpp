// Sub-DSL curation (§3.3). A Dsl bundles the signal leaves, operators, size
// bounds, and constant pool that frame one synthesis search space. Curated
// instances mirror Listing 1: the base Reno-DSL, the Cubic-DSL extension
// (cube / cube-root), and the rate/delay-DSL extension (RTT and rate
// signals), plus the Vegas-DSL which adds the vegas-diff macro, and the
// size-bounded Delay-7 / Delay-11 / Vegas-11 variants used in §6.3.
#pragma once

#include <string>
#include <vector>

#include "dsl/expr.hpp"

namespace abg::dsl {

struct Dsl {
  std::string name;
  std::vector<Signal> signals;  // allowed leaves, including macros
  std::vector<Op> ops;          // allowed operators
  bool allow_constants = true;  // whether hole leaves may appear
  int max_depth = 4;
  int max_nodes = 15;
  // Values a hole may take during approximate concretization (§4.2) —
  // constants observed in known CCAs.
  std::vector<double> constant_pool;

  bool has_signal(Signal s) const;
  bool has_op(Op o) const;
  // Number of grammar elements (signals + operators [+ constant]), the
  // "11 elements" count of §6.1.
  std::size_t element_count() const;
};

// The default constant pool used by every curated DSL.
std::vector<double> default_constant_pool();

// --- Curated sub-DSLs (Listing 1) ------------------------------------------
Dsl reno_dsl();        // black elements only + reno-inc macro
Dsl cubic_dsl();       // reno + cube/cbrt + wmax
Dsl rate_delay_dsl();  // reno + rtt/min-rtt/max-rtt/ack-rate/rtt-gradient
                       // + htcp-diff & rtts-since-loss macros
Dsl vegas_dsl();       // rate/delay + vegas-diff macro
Dsl bbr_dsl();         // alias of rate_delay with mod-pulse emphasis

// §6.3 size-bounded variants: depth 4, node budgets 7 and 11; Vegas-11 at
// depth 5 with the vegas-diff macro.
Dsl delay7_dsl();
Dsl delay11_dsl();
Dsl vegas11_dsl();

// All curated DSLs by name ("reno", "cubic", "rate-delay", "vegas", "bbr",
// "delay7", "delay11", "vegas11"); throws std::invalid_argument otherwise.
Dsl dsl_by_name(const std::string& name);
std::vector<std::string> curated_dsl_names();

// --- Search-space accounting (§4.1, §6.1) -----------------------------------
// Number of syntactically well-typed sketches of depth exactly <= max_depth
// buildable from the DSL, ignoring all pruning. Computed by dynamic
// programming over (depth, type); returned as double because the counts
// overflow 64 bits quickly (the paper's 10^150).
double sketch_space_size(const Dsl& dsl, int max_depth);

// True iff expr only uses leaves/operators present in the DSL and respects
// its size bounds.
bool within_dsl(const Expr& e, const Dsl& dsl);

}  // namespace abg::dsl
