// The expression AST for cwnd-on-ack handlers (Listing 1 of the paper):
//
//   cong-signal : mss | acked-bytes | time-since-loss
//                 | rtt | min-rtt | max-rtt | ack-rate | rtt-gradient
//   num  : cwnd | cong-signal | constant
//        | num + num | num - num | num * num | num / num
//        | bool ? num : num | num^3 | cbrt(num)
//   bool : num < num | num > num | num % num = 0
//
// plus the four pre-defined macros of Table 1 (reno-inc, vegas-diff,
// htcp-diff, RTTs-since-loss), which enter the grammar as extra signal
// leaves so that they cost a single level of depth (§6.1).
//
// A *sketch* is an expression whose constant leaves are unfilled Holes; a
// *handler* is a fully concrete expression (§4.1-4.2).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace abg::dsl {

// Leaf congestion signals and macros. Order is stable; used as array index.
enum class Signal : std::uint8_t {
  kMss,
  kAckedBytes,
  kTimeSinceLoss,
  kRtt,
  kMinRtt,
  kMaxRtt,
  kAckRate,
  kRttGradient,
  kCwnd,
  kWMax,  // window held at the last loss event (Cubic's "wmax", Table 2)
  // Macros (Table 1):
  kRenoInc,        // acked * mss / cwnd
  kVegasDiff,      // (rtt - min_rtt) * ack_rate / mss
  kHtcpDiff,       // (rtt - min_rtt) / max_rtt
  kRttsSinceLoss,  // time_since_loss / rtt
};
inline constexpr std::size_t kSignalCount = 14;

// Operators. kAdd..kCbrt produce num; kLt..kModEq produce bool.
enum class Op : std::uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kCond,  // bool ? num : num
  kCube,  // num^3
  kCbrt,  // cbrt(num)
  kLt,    // num < num
  kGt,    // num > num
  kModEq, // num % num == 0
};
inline constexpr std::size_t kOpCount = 10;

const char* signal_name(Signal s);
const char* op_name(Op o);
bool op_returns_bool(Op o);
int op_arity(Op o);
// True for macros (kRenoInc..kRttsSinceLoss).
bool signal_is_macro(Signal s);

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  enum class Kind : std::uint8_t { kSignal, kConst, kHole, kOp };

  Kind kind = Kind::kConst;
  Signal signal = Signal::kMss;  // kSignal
  double value = 0.0;            // kConst
  int hole_id = 0;               // kHole
  Op op = Op::kAdd;              // kOp
  std::vector<ExprPtr> children; // kOp

  bool is_num() const { return kind != Kind::kOp || !op_returns_bool(op); }
  bool is_bool() const { return kind == Kind::kOp && op_returns_bool(op); }
};

// --- Builders -------------------------------------------------------------
ExprPtr sig(Signal s);
ExprPtr constant(double v);
ExprPtr hole(int id);
ExprPtr node(Op o, std::vector<ExprPtr> children);
ExprPtr add(ExprPtr a, ExprPtr b);
ExprPtr sub(ExprPtr a, ExprPtr b);
ExprPtr mul(ExprPtr a, ExprPtr b);
ExprPtr div(ExprPtr a, ExprPtr b);
ExprPtr cond(ExprPtr c, ExprPtr then_e, ExprPtr else_e);
ExprPtr cube(ExprPtr a);
ExprPtr cbrt(ExprPtr a);
ExprPtr lt(ExprPtr a, ExprPtr b);
ExprPtr gt(ExprPtr a, ExprPtr b);
ExprPtr mod_eq(ExprPtr a, ExprPtr b);

// --- Structure ------------------------------------------------------------
// Tree depth; leaves (signals, constants, holes, macros) have depth 1.
int depth(const Expr& e);
// Total node count.
int node_count(const Expr& e);
// Number of distinct hole ids.
int hole_count(const Expr& e);
// Collect distinct hole ids in first-appearance order.
std::vector<int> hole_ids(const Expr& e);
// Structural equality.
bool equal(const Expr& a, const Expr& b);
// Structural hash (for dedup sets).
std::size_t hash_expr(const Expr& e);
// Replace every hole with the value assigned to its id; ids beyond the span
// map to the last value. `values` indexed by position in hole_ids(e).
ExprPtr fill_holes(const ExprPtr& e, const std::vector<double>& values);
// Replace every constant with a hole (inverse of fill_holes; used to recover
// a handler's sketch).
ExprPtr to_sketch(const ExprPtr& e);

// Human-readable rendering, e.g. "cwnd + 0.7*reno-inc".
std::string to_string(const Expr& e);

// Every signal used in the expression (deduplicated, stable order).
std::vector<Signal> signals_used(const Expr& e);
// Every operator used in the expression (deduplicated, stable order).
std::vector<Op> ops_used(const Expr& e);

}  // namespace abg::dsl
