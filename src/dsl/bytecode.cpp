#include "dsl/bytecode.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "dsl/eval.hpp"

namespace abg::dsl {

namespace {

// Operand-stack capacity the interpreters keep on the C stack. The DSL's
// enumerator caps expressions far below this; compile() reports the true
// high-water mark and the interpreters fall back to a heap stack above it.
constexpr std::size_t kBcStackCap = 64;

struct Compiler {
  Program prog;
  std::size_t depth = 0;
  // Slot numbering comes from hole_ids() (first-appearance order over the
  // WHOLE expression), not from emission order: a hole inside a statically
  // false conditional guard is never emitted but still owns its slot, and
  // fill_holes indexes bindings by hole_ids position.
  std::unordered_map<int, std::uint16_t> slot_of;

  void push_effect() {
    if (++depth > prog.max_stack) prog.max_stack = depth;
  }

  void emit(BcOp op, std::uint16_t arg, int stack_delta) {
    prog.code.push_back({op, arg});
    if (stack_delta > 0) {
      push_effect();
    } else {
      depth -= static_cast<std::size_t>(-stack_delta);
    }
  }

  void lower(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kSignal:
        emit(BcOp::kPushSignal, static_cast<std::uint16_t>(e.signal), +1);
        return;
      case Expr::Kind::kConst:
        prog.consts.push_back(e.value);
        emit(BcOp::kPushConst, static_cast<std::uint16_t>(prog.consts.size() - 1), +1);
        return;
      case Expr::Kind::kHole:
        emit(BcOp::kPushHole, slot_of.at(e.hole_id), +1);
        return;
      case Expr::Kind::kOp:
        break;
    }
    switch (e.op) {
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kLt:
      case Op::kGt:
      case Op::kModEq: {
        lower(*e.children[0]);
        lower(*e.children[1]);
        static constexpr BcOp kBin[] = {BcOp::kAdd, BcOp::kSub,  BcOp::kMul, BcOp::kDivGuard,
                                        BcOp::kLt,  BcOp::kGt,   BcOp::kModEq};
        const std::size_t i = e.op <= Op::kDiv
                                  ? static_cast<std::size_t>(e.op)
                                  : 4 + static_cast<std::size_t>(e.op) -
                                        static_cast<std::size_t>(Op::kLt);
        emit(kBin[i], 0, -1);
        return;
      }
      case Op::kCube:
        lower(*e.children[0]);
        emit(BcOp::kCube, 0, 0);
        return;
      case Op::kCbrt:
        lower(*e.children[0]);
        emit(BcOp::kCbrt, 0, 0);
        return;
      case Op::kCond:
        // eval_bool statically rejects any guard that is not a boolean
        // operator (it returns false without evaluating the child), so such
        // guards lower to a pushed 0.0 and the child is not compiled.
        if (e.children[0]->is_bool()) {
          lower(*e.children[0]);
        } else {
          emit(BcOp::kPushFalse, 0, +1);
        }
        lower(*e.children[1]);
        lower(*e.children[2]);
        emit(BcOp::kSelect, 0, -2);
        return;
    }
  }
};

inline double hole_binding(std::span<const double> holes, std::size_t slot) {
  // fill_holes's clamp: an empty binding vector means 1.0, a short one
  // repeats its last element.
  if (holes.empty()) return 1.0;
  return holes[std::min(slot, holes.size() - 1)];
}

inline double mod_eq_pred(double a, double b) {
  const double fa = std::fabs(a);
  const double fb = std::fabs(b);
  if (fb <= 0 || !std::isfinite(fa) || !std::isfinite(fb)) return 0.0;
  const double r = std::fmod(fa, fb);
  return (r <= kModTolerance * fb || r >= fb * (1.0 - kModTolerance)) ? 1.0 : 0.0;
}

double exec(const Program& p, const cca::Signals& sig, std::span<const double> holes,
            double* stack) {
  double* sp = stack;  // points one past the top
  for (const BcInst inst : p.code) {
    switch (inst.op) {
      case BcOp::kPushSignal:
        *sp++ = signal_value(static_cast<Signal>(inst.arg), sig);
        break;
      case BcOp::kPushConst:
        *sp++ = p.consts[inst.arg];
        break;
      case BcOp::kPushHole:
        *sp++ = hole_binding(holes, inst.arg);
        break;
      case BcOp::kAdd:
        sp[-2] = sp[-2] + sp[-1];
        --sp;
        break;
      case BcOp::kSub:
        sp[-2] = sp[-2] - sp[-1];
        --sp;
        break;
      case BcOp::kMul:
        sp[-2] = sp[-2] * sp[-1];
        --sp;
        break;
      case BcOp::kDivGuard:
        sp[-2] = sp[-1] != 0.0 ? sp[-2] / sp[-1] : 0.0;
        --sp;
        break;
      case BcOp::kCube: {
        const double v = sp[-1];
        sp[-1] = v * v * v;
        break;
      }
      case BcOp::kCbrt:
        sp[-1] = std::cbrt(sp[-1]);
        break;
      case BcOp::kLt:
        sp[-2] = sp[-2] < sp[-1] ? 1.0 : 0.0;
        --sp;
        break;
      case BcOp::kGt:
        sp[-2] = sp[-2] > sp[-1] ? 1.0 : 0.0;
        --sp;
        break;
      case BcOp::kModEq:
        sp[-2] = mod_eq_pred(sp[-2], sp[-1]);
        --sp;
        break;
      case BcOp::kSelect:
        sp[-3] = sp[-3] != 0.0 ? sp[-2] : sp[-1];
        sp -= 2;
        break;
      case BcOp::kPushFalse:
        *sp++ = 0.0;
        break;
    }
  }
  return sp == stack ? 0.0 : sp[-1];
}

// Lane-strided variant: slot i of the operand stack occupies
// stacks[i * kBatchLanes .. +n_lanes). Every opcode applies elementwise, so
// lane L's value stream is exactly the stream exec() would produce for the
// same program with lane L's cwnd and bindings — bit-identical by
// construction (same ops, same order, no cross-lane arithmetic).
void exec_batch(const Program& p, const cca::Signals& sig, std::span<const double> lane_cwnd,
                std::span<const double> holes, std::size_t n_lanes, double* stacks,
                double* out) {
  std::size_t top = 0;  // stack depth in slots
  auto slot = [&](std::size_t i) { return stacks + i * kBatchLanes; };
  for (const BcInst inst : p.code) {
    switch (inst.op) {
      case BcOp::kPushSignal: {
        double* s = slot(top++);
        const auto sgn = static_cast<Signal>(inst.arg);
        if (sgn == Signal::kCwnd) {
          for (std::size_t l = 0; l < n_lanes; ++l) s[l] = lane_cwnd[l];
        } else if (sgn == Signal::kRenoInc) {
          // eval computes acked*mss/cwnd left-to-right; hoisting the lane-
          // invariant product keeps the rounding sequence identical.
          const double am = sig.acked_bytes * sig.mss;
          for (std::size_t l = 0; l < n_lanes; ++l) {
            s[l] = lane_cwnd[l] > 0 ? am / lane_cwnd[l] : 0.0;
          }
        } else {
          const double v = signal_value(sgn, sig);
          for (std::size_t l = 0; l < n_lanes; ++l) s[l] = v;
        }
        break;
      }
      case BcOp::kPushConst: {
        double* s = slot(top++);
        const double v = p.consts[inst.arg];
        for (std::size_t l = 0; l < n_lanes; ++l) s[l] = v;
        break;
      }
      case BcOp::kPushHole: {
        double* s = slot(top++);
        const double* h = holes.data() + static_cast<std::size_t>(inst.arg) * n_lanes;
        for (std::size_t l = 0; l < n_lanes; ++l) s[l] = h[l];
        break;
      }
      case BcOp::kAdd: {
        double* a = slot(top - 2);
        const double* b = slot(top - 1);
        for (std::size_t l = 0; l < n_lanes; ++l) a[l] = a[l] + b[l];
        --top;
        break;
      }
      case BcOp::kSub: {
        double* a = slot(top - 2);
        const double* b = slot(top - 1);
        for (std::size_t l = 0; l < n_lanes; ++l) a[l] = a[l] - b[l];
        --top;
        break;
      }
      case BcOp::kMul: {
        double* a = slot(top - 2);
        const double* b = slot(top - 1);
        for (std::size_t l = 0; l < n_lanes; ++l) a[l] = a[l] * b[l];
        --top;
        break;
      }
      case BcOp::kDivGuard: {
        double* a = slot(top - 2);
        const double* b = slot(top - 1);
        for (std::size_t l = 0; l < n_lanes; ++l) a[l] = b[l] != 0.0 ? a[l] / b[l] : 0.0;
        --top;
        break;
      }
      case BcOp::kCube: {
        double* a = slot(top - 1);
        for (std::size_t l = 0; l < n_lanes; ++l) a[l] = a[l] * a[l] * a[l];
        break;
      }
      case BcOp::kCbrt: {
        double* a = slot(top - 1);
        for (std::size_t l = 0; l < n_lanes; ++l) a[l] = std::cbrt(a[l]);
        break;
      }
      case BcOp::kLt: {
        double* a = slot(top - 2);
        const double* b = slot(top - 1);
        for (std::size_t l = 0; l < n_lanes; ++l) a[l] = a[l] < b[l] ? 1.0 : 0.0;
        --top;
        break;
      }
      case BcOp::kGt: {
        double* a = slot(top - 2);
        const double* b = slot(top - 1);
        for (std::size_t l = 0; l < n_lanes; ++l) a[l] = a[l] > b[l] ? 1.0 : 0.0;
        --top;
        break;
      }
      case BcOp::kModEq: {
        double* a = slot(top - 2);
        const double* b = slot(top - 1);
        for (std::size_t l = 0; l < n_lanes; ++l) a[l] = mod_eq_pred(a[l], b[l]);
        --top;
        break;
      }
      case BcOp::kSelect: {
        double* c = slot(top - 3);
        const double* t = slot(top - 2);
        const double* e = slot(top - 1);
        for (std::size_t l = 0; l < n_lanes; ++l) c[l] = c[l] != 0.0 ? t[l] : e[l];
        top -= 2;
        break;
      }
      case BcOp::kPushFalse: {
        double* s = slot(top++);
        for (std::size_t l = 0; l < n_lanes; ++l) s[l] = 0.0;
        break;
      }
    }
  }
  const double* r = top == 0 ? nullptr : slot(top - 1);
  for (std::size_t l = 0; l < n_lanes; ++l) out[l] = r == nullptr ? 0.0 : r[l];
}

}  // namespace

Program compile(const Expr& e) {
  Compiler c;
  const auto ids = hole_ids(e);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    c.slot_of[ids[i]] = static_cast<std::uint16_t>(i);
  }
  c.prog.hole_slots = ids.size();
  c.lower(e);
  return std::move(c.prog);
}

double run(const Program& p, const cca::Signals& sig, std::span<const double> holes) {
  if (p.max_stack <= kBcStackCap) {
    double stack[kBcStackCap];
    return exec(p, sig, holes, stack);
  }
  std::vector<double> stack(p.max_stack);
  return exec(p, sig, holes, stack.data());
}

void run_batch(const Program& p, const cca::Signals& sig, std::span<const double> lane_cwnd,
               std::span<const double> holes, std::size_t n_lanes, double* out) {
  if (p.max_stack <= kBcStackCap) {
    double stacks[kBcStackCap * kBatchLanes];
    exec_batch(p, sig, lane_cwnd, holes, n_lanes, stacks, out);
    return;
  }
  std::vector<double> stacks(p.max_stack * kBatchLanes);
  exec_batch(p, sig, lane_cwnd, holes, n_lanes, stacks.data(), out);
}

}  // namespace abg::dsl
