#include "dsl/parse.hpp"

#include <cctype>
#include <cstdlib>

namespace abg::dsl {

namespace {

// Recursive-descent parser over a simple cursor.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  ParseResult run() {
    auto e = parse_num();
    skip_ws();
    if (!e) return {nullptr, error_};
    if (pos_ != text_.size()) {
      return {nullptr, "trailing input at offset " + std::to_string(pos_)};
    }
    return {e, {}};
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool eat_word(const char* w) {
    skip_ws();
    const std::size_t n = std::string(w).size();
    if (text_.compare(pos_, n, w) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  ExprPtr fail(const std::string& msg) {
    if (error_.empty()) error_ = msg + " at offset " + std::to_string(pos_);
    return nullptr;
  }

  // num := sum; bool-in-braces handled by parse_primary/cond.
  ExprPtr parse_num() { return parse_sum(); }

  ExprPtr parse_sum() {
    auto lhs = parse_term();
    if (!lhs) return nullptr;
    for (;;) {
      skip_ws();
      // Don't confuse `- 3` continuation with nothing left.
      if (eat('+')) {
        auto rhs = parse_term();
        if (!rhs) return nullptr;
        lhs = add(std::move(lhs), std::move(rhs));
      } else if (peek() == '-' ) {
        ++pos_;
        auto rhs = parse_term();
        if (!rhs) return nullptr;
        lhs = sub(std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_term() {
    auto lhs = parse_postfix();
    if (!lhs) return nullptr;
    for (;;) {
      if (eat('*')) {
        auto rhs = parse_postfix();
        if (!rhs) return nullptr;
        lhs = mul(std::move(lhs), std::move(rhs));
      } else if (eat('/')) {
        auto rhs = parse_postfix();
        if (!rhs) return nullptr;
        lhs = div(std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_postfix() {
    auto e = parse_primary();
    if (!e) return nullptr;
    while (eat('^')) {
      if (!eat('3')) return fail("only ^3 is supported");
      e = cube(std::move(e));
    }
    return e;
  }

  // bool := num ('<' | '>') num | num '%' num '=' '0'
  ExprPtr parse_bool() {
    auto lhs = parse_num();
    if (!lhs) return nullptr;
    if (eat('<')) {
      auto rhs = parse_num();
      return rhs ? lt(std::move(lhs), std::move(rhs)) : nullptr;
    }
    if (eat('>')) {
      auto rhs = parse_num();
      return rhs ? gt(std::move(lhs), std::move(rhs)) : nullptr;
    }
    if (eat('%')) {
      auto rhs = parse_num();
      if (!rhs) return nullptr;
      if (!eat('=') || !eat('0')) return fail("modulo condition must end in '= 0'");
      return mod_eq(std::move(lhs), std::move(rhs));
    }
    return fail("expected comparison in condition");
  }

  ExprPtr parse_cond() {
    // '{' already consumed.
    auto c = parse_bool();
    if (!c) return nullptr;
    if (!eat('}')) return fail("expected '}'");
    if (!eat('?')) return fail("expected '?' after condition");
    auto then_e = parse_num();
    if (!then_e) return nullptr;
    if (!eat(':')) return fail("expected ':' in conditional");
    auto else_e = parse_num();
    if (!else_e) return nullptr;
    return cond(std::move(c), std::move(then_e), std::move(else_e));
  }

  ExprPtr parse_primary() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      auto e = parse_num();
      if (!e) return nullptr;
      if (!eat(')')) return fail("expected ')'");
      return e;
    }
    if (c == '{') {
      ++pos_;
      return parse_cond();
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return parse_number();
    }
    return parse_ident();
  }

  ExprPtr parse_number() {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return fail("expected number");
    pos_ += static_cast<std::size_t>(end - start);
    return constant(v);
  }

  ExprPtr parse_ident() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_') {
        // A '-' only continues the identifier if followed by a letter
        // (signal names like min-rtt), not a number (subtraction).
        if (c == '-' && (pos_ + 1 >= text_.size() ||
                         !std::isalpha(static_cast<unsigned char>(text_[pos_ + 1])))) {
          break;
        }
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected identifier");
    const std::string word = text_.substr(start, pos_ - start);
    // cbrt(...) function form.
    if (word == "cbrt") {
      if (!eat('(')) return fail("expected '(' after cbrt");
      auto e = parse_num();
      if (!e) return nullptr;
      if (!eat(')')) return fail("expected ')'");
      return cbrt(std::move(e));
    }
    // Hole: c<digits>.
    if (word.size() >= 2 && word[0] == 'c' &&
        std::isdigit(static_cast<unsigned char>(word[1]))) {
      bool all_digits = true;
      for (std::size_t i = 1; i < word.size(); ++i) {
        all_digits = all_digits && std::isdigit(static_cast<unsigned char>(word[i]));
      }
      if (all_digits) return hole(std::atoi(word.c_str() + 1));
    }
    // Signal by printed name.
    for (std::size_t s = 0; s < kSignalCount; ++s) {
      if (word == signal_name(static_cast<Signal>(s))) return sig(static_cast<Signal>(s));
    }
    return fail("unknown identifier '" + word + "'");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

ParseResult parse(const std::string& text) { return Parser(text).run(); }

}  // namespace abg::dsl
