// Dimensional analysis over expressions (§4.1: "the output should have the
// correct units (in this case bytes)"). Units are integer exponent vectors
// over two base dimensions, bytes and seconds — integer-valued only, exactly
// the design decision the paper makes so the enumerator formula stays in a
// quantifier-free finite domain (§5.5). Constants/holes are
// unit-polymorphic: each hole carries free integer exponents (this is how
// Hybla's `8 * rtt * reno-inc` unit-checks — the 8 absorbs 1/seconds).
#pragma once

#include <optional>

#include "dsl/expr.hpp"

namespace abg::dsl {

struct UnitVec {
  int bytes = 0;
  int secs = 0;
  bool operator==(const UnitVec&) const = default;
};

// The fixed unit of each signal leaf.
UnitVec signal_unit(Signal s);

// Unit of the handler output: bytes (a congestion window).
inline constexpr UnitVec kBytesUnit{1, 0};
inline constexpr UnitVec kDimensionless{0, 0};

// Exponent range allowed for a hole's polymorphic unit.
inline constexpr int kHoleUnitRange = 2;  // each exponent in [-2, 2]

// True iff there is an assignment of integer units (within +/-
// kHoleUnitRange) to every hole and constant such that the expression's
// unit works out to `expected`. Exhaustive search with bottom-up pruning;
// expressions in this DSL have <= ~6 holes so the search is small. Returns
// false for bool-rooted expressions (they have no unit).
bool unit_check(const Expr& e, UnitVec expected = kBytesUnit);

// Infers the unit of a hole-free expression, or nullopt if the expression
// is dimensionally inconsistent (e.g. rtt + cwnd) or bool-rooted. Constants
// are treated as dimensionless here.
std::optional<UnitVec> infer_unit_concrete(const Expr& e);

}  // namespace abg::dsl
