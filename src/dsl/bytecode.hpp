// Flat bytecode form of handler expressions (ISSUE 7). The tree-walking
// dsl::eval is the semantic oracle; compile() lowers an expression to a
// postfix program whose single-lane interpreter run() is instruction-for-
// instruction equivalent to eval, and whose batched interpreter run_batch()
// evaluates the same program for kBatchLanes hole-assignments in lockstep.
//
// Why this preserves bit-exactness: every opcode performs exactly the
// arithmetic eval performs, in the same order, on the same doubles. The only
// structural deviations are evaluation-completeness ones — run() evaluates
// both sides of a guarded division and both arms of a conditional where eval
// short-circuits — and those cannot change the result because eval is pure
// and total (no side effects, every subexpression defined on every input).
// The selected value is computed by the identical expression either way.
//
// Holes compile to lane-varying input slots instead of being substituted, so
// one compiled sketch serves every concretization. Slot numbering matches
// hole_ids()/fill_holes(): slot = position of the hole id in first-
// appearance order, and a binding vector shorter than the slot count repeats
// its last element (fill_holes's clamp), with the empty vector meaning 1.0.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cca/signals.hpp"
#include "dsl/expr.hpp"

namespace abg::dsl {

enum class BcOp : std::uint8_t {
  kPushSignal,  // arg = Signal; push signal_value(arg, sig)
  kPushConst,   // arg = index into Program::consts
  kPushHole,    // arg = hole slot; push the lane's binding
  kAdd,         // pop b, a; push a + b
  kSub,         // pop b, a; push a - b
  kMul,         // pop b, a; push a * b
  kDivGuard,    // pop b, a; push b != 0 ? a / b : 0   (eval's kDiv)
  kCube,        // pop v; push v * v * v
  kCbrt,        // pop v; push cbrt(v)
  kLt,          // pop b, a; push a < b ? 1.0 : 0.0
  kGt,          // pop b, a; push a > b ? 1.0 : 0.0
  kModEq,       // pop b, a; push eval_bool's kModEq predicate as 1.0/0.0
  kSelect,      // pop else_v, then_v, cond; push cond != 0 ? then_v : else_v
  kPushFalse,   // push 0.0 (a kCond condition eval_bool rejects statically)
};

struct BcInst {
  BcOp op;
  std::uint16_t arg = 0;
};

struct Program {
  std::vector<BcInst> code;    // postfix order
  std::vector<double> consts;  // kPushConst pool
  std::size_t max_stack = 0;   // operand-stack high-water mark
  std::size_t hole_slots = 0;  // distinct holes (kPushHole args are < this)
};

// Number of hole-assignment lanes run_batch evaluates in lockstep. Eight
// doubles = one cache line of per-lane state; wide enough for the compiler
// to vectorize the elementwise opcode loops, small enough that a partially
// filled final batch wastes little work.
inline constexpr std::size_t kBatchLanes = 8;

// Lower an expression (holes allowed) to bytecode.
Program compile(const Expr& e);

// Evaluate one lane. `holes[slot]` binds hole slot `slot`; pass an empty
// span for the hole-free case (any residual hole then reads 1.0, matching
// eval's defensive default). Bit-identical to
// eval(*fill_holes(e, values), sig).
double run(const Program& p, const cca::Signals& sig, std::span<const double> holes);

// Evaluate `n_lanes` (<= kBatchLanes) assignments of the same program in
// lockstep. Signals broadcast across lanes except the window: lane L reads
// cwnd = lane_cwnd[L] (and the kRenoInc macro re-derives from it). Hole
// bindings are slot-major: holes[slot * n_lanes + lane]. out[L] receives
// lane L's value and is bit-identical to a run() of that lane alone.
void run_batch(const Program& p, const cca::Signals& sig,
               std::span<const double> lane_cwnd, std::span<const double> holes,
               std::size_t n_lanes, double* out);

}  // namespace abg::dsl
