#include <functional>
#include "dsl/dsl.hpp"

#include <algorithm>
#include <stdexcept>

namespace abg::dsl {

bool Dsl::has_signal(Signal s) const {
  return std::find(signals.begin(), signals.end(), s) != signals.end();
}

bool Dsl::has_op(Op o) const { return std::find(ops.begin(), ops.end(), o) != ops.end(); }

std::size_t Dsl::element_count() const {
  return signals.size() + ops.size() + (allow_constants ? 1 : 0);
}

std::vector<double> default_constant_pool() {
  // Coefficients, thresholds and gains observed across the kernel CCAs
  // (§4.2: "we limit the values constants can take to a small set of values
  // observed in known CCAs").
  return {0.0, 0.16, 0.2, 0.25, 0.3, 0.35, 0.37, 0.5, 0.68, 0.7, 0.8,
          1.0, 1.3,  2.0, 2.05, 2.15, 2.6, 2.7,  3.0, 5.0,  8.0};
}

namespace {

Dsl base_dsl() {
  Dsl d;
  d.signals = {Signal::kMss, Signal::kAckedBytes, Signal::kTimeSinceLoss, Signal::kCwnd,
               Signal::kRenoInc};
  d.ops = {Op::kAdd, Op::kSub, Op::kMul, Op::kDiv, Op::kCond, Op::kLt, Op::kGt, Op::kModEq};
  d.allow_constants = true;
  d.max_depth = 4;
  d.max_nodes = 15;
  d.constant_pool = default_constant_pool();
  return d;
}

void add_rate_delay_signals(Dsl& d) {
  d.signals.insert(d.signals.end(),
                   {Signal::kRtt, Signal::kMinRtt, Signal::kMaxRtt, Signal::kAckRate,
                    Signal::kRttGradient, Signal::kHtcpDiff, Signal::kRttsSinceLoss});
}

}  // namespace

Dsl reno_dsl() {
  Dsl d = base_dsl();
  d.name = "reno";
  return d;
}

Dsl cubic_dsl() {
  Dsl d = base_dsl();
  d.name = "cubic";
  d.signals.push_back(Signal::kWMax);
  // Window-curve CCAs are purely arithmetic: polynomial in time-since-loss
  // anchored at wmax; no conditionals needed at this granularity.
  d.ops = {Op::kAdd, Op::kSub, Op::kMul, Op::kDiv, Op::kCube, Op::kCbrt};
  d.max_depth = 5;
  return d;
}

Dsl rate_delay_dsl() {
  Dsl d = base_dsl();
  d.name = "rate-delay";
  add_rate_delay_signals(d);
  return d;
}

Dsl vegas_dsl() {
  Dsl d = rate_delay_dsl();
  d.name = "vegas";
  // Lead with the family's signature signals: enumeration order follows
  // production ids, so sampled sketches are biased toward the signals this
  // family actually uses (the same prior the curated DSL encodes).
  d.signals = {Signal::kVegasDiff, Signal::kRenoInc, Signal::kCwnd,   Signal::kMss,
               Signal::kAckedBytes, Signal::kTimeSinceLoss, Signal::kRtt,
               Signal::kMinRtt,     Signal::kMaxRtt,         Signal::kAckRate,
               Signal::kRttGradient, Signal::kHtcpDiff,      Signal::kRttsSinceLoss};
  // Family-specific operator curation (§3.3): Vegas-style CCAs branch on a
  // delay threshold and scale additive terms; they use no modulo and no
  // division (the vegas-diff macro already encapsulates the only quotient).
  d.ops = {Op::kAdd, Op::kSub, Op::kMul, Op::kCond, Op::kLt, Op::kGt};
  d.max_depth = 5;
  return d;
}

Dsl bbr_dsl() {
  Dsl d = rate_delay_dsl();
  d.name = "bbr";
  // Rate-based pulsing CCAs: products of rate and delay signals plus a
  // modulo-driven pulse condition; subtraction/division are not used.
  d.ops = {Op::kAdd, Op::kMul, Op::kCond, Op::kLt, Op::kGt, Op::kModEq};
  d.max_depth = 5;
  return d;
}

Dsl delay7_dsl() {
  Dsl d = rate_delay_dsl();
  d.name = "delay7";
  d.max_depth = 4;
  d.max_nodes = 7;
  return d;
}

Dsl delay11_dsl() {
  Dsl d = rate_delay_dsl();
  d.name = "delay11";
  d.max_depth = 4;
  d.max_nodes = 11;
  return d;
}

Dsl vegas11_dsl() {
  Dsl d = vegas_dsl();
  d.name = "vegas11";
  d.max_depth = 5;
  d.max_nodes = 11;
  return d;
}

Dsl dsl_by_name(const std::string& name) {
  if (name == "reno") return reno_dsl();
  if (name == "cubic") return cubic_dsl();
  if (name == "rate-delay") return rate_delay_dsl();
  if (name == "vegas") return vegas_dsl();
  if (name == "bbr") return bbr_dsl();
  if (name == "delay7") return delay7_dsl();
  if (name == "delay11") return delay11_dsl();
  if (name == "vegas11") return vegas11_dsl();
  throw std::invalid_argument("unknown DSL: " + name);
}

std::vector<std::string> curated_dsl_names() {
  return {"reno", "cubic", "rate-delay", "vegas", "bbr", "delay7", "delay11", "vegas11"};
}

double sketch_space_size(const Dsl& dsl, int max_depth) {
  // num[d] / boo[d]: number of num- / bool-typed trees of depth <= d.
  std::vector<double> num(static_cast<std::size_t>(max_depth) + 1, 0.0);
  std::vector<double> boo(static_cast<std::size_t>(max_depth) + 1, 0.0);
  const double leaves = static_cast<double>(dsl.signals.size()) + (dsl.allow_constants ? 1 : 0);
  for (int d = 1; d <= max_depth; ++d) {
    const auto di = static_cast<std::size_t>(d);
    double n = leaves;
    double b = 0.0;
    if (d > 1) {
      const double cn = num[di - 1];
      const double cb = boo[di - 1];
      for (Op o : dsl.ops) {
        switch (o) {
          case Op::kAdd:
          case Op::kSub:
          case Op::kMul:
          case Op::kDiv: n += cn * cn; break;
          case Op::kCond: n += cb * cn * cn; break;
          case Op::kCube:
          case Op::kCbrt: n += cn; break;
          case Op::kLt:
          case Op::kGt:
          case Op::kModEq: b += cn * cn; break;
        }
      }
    }
    num[di] = n;
    boo[di] = b;
  }
  return num[static_cast<std::size_t>(max_depth)];
}

bool within_dsl(const Expr& e, const Dsl& dsl) {
  if (depth(e) > dsl.max_depth || node_count(e) > dsl.max_nodes) return false;
  bool ok = true;
  std::function<void(const Expr&)> walk = [&](const Expr& x) {
    if (!ok) return;
    switch (x.kind) {
      case Expr::Kind::kSignal:
        if (!dsl.has_signal(x.signal)) ok = false;
        break;
      case Expr::Kind::kConst:
      case Expr::Kind::kHole:
        if (!dsl.allow_constants) ok = false;
        break;
      case Expr::Kind::kOp:
        if (!dsl.has_op(x.op)) ok = false;
        break;
    }
    for (const auto& c : x.children) walk(*c);
  };
  walk(e);
  return ok;
}

}  // namespace abg::dsl
