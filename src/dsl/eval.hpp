// Expression evaluation over a per-ACK signal snapshot. The evaluator is
// total: division by zero yields 0, non-finite results are clamped by the
// caller (replay), and the modulo test uses a tolerance band so that it is
// meaningful over continuous-valued signals (this is what lets a synthesized
// `cwnd % 2.7 = 0` produce the sporadic pulses of Figure 4).
#pragma once

#include "cca/signals.hpp"
#include "dsl/expr.hpp"

namespace abg::dsl {

// Value of a signal leaf (including macros) given a measurement snapshot.
double signal_value(Signal s, const cca::Signals& sig);

// Evaluate a numeric expression. The expression must contain no holes
// (fill_holes first); holes evaluate as 1.0 defensively.
double eval(const Expr& e, const cca::Signals& sig);

// Evaluate a boolean expression (kLt/kGt/kModEq root).
bool eval_bool(const Expr& e, const cca::Signals& sig);

// Relative tolerance of the `a % b = 0` test: true iff a is within
// kModTolerance * b of a multiple of b.
inline constexpr double kModTolerance = 0.05;

}  // namespace abg::dsl
