#include "dsl/eval.hpp"

#include <cmath>

namespace abg::dsl {

double signal_value(Signal s, const cca::Signals& sig) {
  switch (s) {
    case Signal::kMss: return sig.mss;
    case Signal::kAckedBytes: return sig.acked_bytes;
    case Signal::kTimeSinceLoss: return sig.time_since_loss;
    case Signal::kRtt: return sig.rtt;
    case Signal::kMinRtt: return sig.min_rtt;
    case Signal::kMaxRtt: return sig.max_rtt;
    case Signal::kAckRate: return sig.ack_rate;
    case Signal::kRttGradient: return sig.rtt_gradient;
    case Signal::kCwnd: return sig.cwnd;
    case Signal::kWMax: return sig.cwnd_at_loss;
    case Signal::kRenoInc:
      // Reno's increment of one MSS per window's worth of ACKs (Table 1).
      return sig.cwnd > 0 ? sig.acked_bytes * sig.mss / sig.cwnd : 0.0;
    case Signal::kVegasDiff:
      // Vegas's estimate of packets queued at the bottleneck (Table 1).
      return sig.mss > 0 ? (sig.rtt - sig.min_rtt) * sig.ack_rate / sig.mss : 0.0;
    case Signal::kHtcpDiff:
      // H-TCP's normalized RTT variation (Table 1).
      return sig.max_rtt > 0 ? (sig.rtt - sig.min_rtt) / sig.max_rtt : 0.0;
    case Signal::kRttsSinceLoss:
      // Time since loss scaled by the RTT estimate (Table 1).
      return sig.rtt > 0 ? sig.time_since_loss / sig.rtt : 0.0;
  }
  return 0.0;
}

bool eval_bool(const Expr& e, const cca::Signals& sig) {
  if (e.kind != Expr::Kind::kOp) return false;
  switch (e.op) {
    case Op::kLt: return eval(*e.children[0], sig) < eval(*e.children[1], sig);
    case Op::kGt: return eval(*e.children[0], sig) > eval(*e.children[1], sig);
    case Op::kModEq: {
      const double a = std::fabs(eval(*e.children[0], sig));
      const double b = std::fabs(eval(*e.children[1], sig));
      if (b <= 0 || !std::isfinite(a) || !std::isfinite(b)) return false;
      const double r = std::fmod(a, b);
      return r <= kModTolerance * b || r >= b * (1.0 - kModTolerance);
    }
    default: return false;
  }
}

double eval(const Expr& e, const cca::Signals& sig) {
  switch (e.kind) {
    case Expr::Kind::kSignal: return signal_value(e.signal, sig);
    case Expr::Kind::kConst: return e.value;
    case Expr::Kind::kHole: return 1.0;  // defensive; sketches should be filled
    case Expr::Kind::kOp: break;
  }
  switch (e.op) {
    case Op::kAdd: return eval(*e.children[0], sig) + eval(*e.children[1], sig);
    case Op::kSub: return eval(*e.children[0], sig) - eval(*e.children[1], sig);
    case Op::kMul: return eval(*e.children[0], sig) * eval(*e.children[1], sig);
    case Op::kDiv: {
      const double denom = eval(*e.children[1], sig);
      return denom != 0.0 ? eval(*e.children[0], sig) / denom : 0.0;
    }
    case Op::kCond:
      return eval_bool(*e.children[0], sig) ? eval(*e.children[1], sig)
                                            : eval(*e.children[2], sig);
    case Op::kCube: {
      const double v = eval(*e.children[0], sig);
      return v * v * v;
    }
    case Op::kCbrt: return std::cbrt(eval(*e.children[0], sig));
    case Op::kLt:
    case Op::kGt:
    case Op::kModEq:
      return eval_bool(e, sig) ? 1.0 : 0.0;
  }
  return 0.0;
}

}  // namespace abg::dsl
