#include "dist/http_client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "util/stopwatch.hpp"

namespace abg::dist {

namespace {

util::Status io_error(const std::string& msg) {
  return util::Status(util::StatusCode::kIoError, msg);
}

// Milliseconds left of the budget; <= 0 means expired.
int budget_ms(const util::Stopwatch& clock, double timeout_s) {
  const double left = (timeout_s - clock.elapsed_seconds()) * 1000.0;
  if (left <= 0.0) return 0;
  return left > 60000.0 ? 60000 : static_cast<int>(left) + 1;
}

// Wait for the fd to become readable/writable within the remaining budget.
util::Status wait_fd(int fd, short events, const util::Stopwatch& clock, double timeout_s,
                     const char* what) {
  const int ms = budget_ms(clock, timeout_s);
  if (ms <= 0) return io_error(std::string("timed out during ") + what);
  pollfd p{};
  p.fd = fd;
  p.events = events;
  const int r = ::poll(&p, 1, ms);
  if (r < 0) return io_error(std::string("poll failed during ") + what);
  if (r == 0) return io_error(std::string("timed out during ") + what);
  return util::Status::ok();
}

}  // namespace

util::Result<HttpReply> http_request(const std::string& host, std::uint16_t port,
                                     const std::string& method, const std::string& path,
                                     const std::string& body, double timeout_s) {
  util::Stopwatch clock;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return util::Status(util::StatusCode::kInvalidArgument, "bad host address " + host);
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return io_error("socket() failed");
  struct FdGuard {
    int fd;
    ~FdGuard() { ::close(fd); }
  } guard{fd};

  // Non-blocking connect so the budget applies to a black-holed peer too.
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      return io_error("connect to " + host + ":" + std::to_string(port) + " failed: " +
                      std::strerror(errno));
    }
    if (auto st = wait_fd(fd, POLLOUT, clock, timeout_s, "connect"); !st.is_ok()) return st;
    int soerr = 0;
    socklen_t len = sizeof soerr;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 || soerr != 0) {
      return io_error("connect to " + host + ":" + std::to_string(port) + " failed: " +
                      std::strerror(soerr != 0 ? soerr : errno));
    }
  }

  std::string req = method + " " + path + " HTTP/1.1\r\nHost: " + host +
                    "\r\nConnection: close\r\n";
  if (!body.empty() || method == "POST") {
    req += "Content-Type: application/json\r\nContent-Length: " +
           std::to_string(body.size()) + "\r\n";
  }
  req += "\r\n" + body;

  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (auto st = wait_fd(fd, POLLOUT, clock, timeout_s, "send"); !st.is_ok()) return st;
      continue;
    }
    return io_error(std::string("send failed: ") + std::strerror(errno));
  }

  // Read to EOF (the server closes after one response).
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n > 0) {
      raw.append(buf, static_cast<std::size_t>(n));
      if (raw.size() > (64u << 20)) return io_error("response exceeds 64 MiB");
      continue;
    }
    if (n == 0) break;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (auto st = wait_fd(fd, POLLIN, clock, timeout_s, "recv"); !st.is_ok()) return st;
      continue;
    }
    return io_error(std::string("recv failed: ") + std::strerror(errno));
  }

  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return util::Status(util::StatusCode::kParseError, "malformed HTTP response (no header end)");
  }
  // Status line: "HTTP/1.1 200 OK".
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size() || raw.compare(0, 5, "HTTP/") != 0) {
    return util::Status(util::StatusCode::kParseError, "malformed HTTP status line");
  }
  HttpReply reply;
  reply.code = std::atoi(raw.c_str() + sp + 1);
  if (reply.code < 100 || reply.code > 599) {
    return util::Status(util::StatusCode::kParseError, "malformed HTTP status code");
  }
  reply.head = raw.substr(0, head_end + 2);
  reply.body = raw.substr(head_end + 4);
  return reply;
}

}  // namespace abg::dist
