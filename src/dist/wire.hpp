// Wire codecs for the coordinator<->worker shard protocol (ISSUE 9). The
// protocol is JSON over the same dependency-free HTTP plumbing the status
// surface uses, but the payloads carry search state whose doubles must
// round-trip bit-exactly (a distance that gains an ULP in transit breaks the
// bit-identity guarantee). So:
//
//   - doubles travel as C99 hex-float strings ("%a", like the checkpoint
//     file format), parsed back with strtod; inf/nan spell themselves.
//   - u64s travel as decimal strings (JSON numbers are doubles; RNG state
//     words do not survive a double round-trip).
//
// The unit of exchange is synth::BucketCheckpoint — the same record the
// single-process checkpoint file stores per bucket — so worker results,
// reassignment payloads, and the coordinator's durable checkpoint are all
// one representation.
#pragma once

#include <string>

#include "obs/json.hpp"
#include "synth/checkpoint.hpp"
#include "util/json_parse.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace abg::dist {

// "%a" rendering; "inf"/"-inf"/"nan" for non-finite (strtod-parseable).
std::string hex_double(double v);
// Inverse of hex_double (accepts any strtod spelling). False on garbage.
bool parse_hex_double(const std::string& s, double* out);

// JSON value writers (the caller owns surrounding object/array structure).
void write_u64(obs::JsonWriter& w, std::uint64_t v);          // decimal string
void write_double(obs::JsonWriter& w, double v);              // hex-float string
void write_rng_state(obs::JsonWriter& w, const util::Rng::State& st);
void write_bucket_checkpoint(obs::JsonWriter& w, const synth::BucketCheckpoint& ck);

// JSON value readers. kParseError naming the field on any malformed input —
// a truncated or hand-mangled message must reject cleanly, never wedge.
util::Status u64_from_json(const util::JsonValue& j, const char* field, std::uint64_t* out);
util::Status double_from_json(const util::JsonValue& j, const char* field, double* out);
util::Status rng_state_from_json(const util::JsonValue& j, util::Rng::State* out);
util::Status bucket_checkpoint_from_json(const util::JsonValue& j, synth::BucketCheckpoint* out);

}  // namespace abg::dist
