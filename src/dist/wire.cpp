#include "dist/wire.hpp"

#include <cmath>
#include <cstdio>

#include "util/csv.hpp"

namespace abg::dist {

std::string hex_double(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

bool parse_hex_double(const std::string& s, double* out) { return util::parse_double(s, out); }

void write_u64(obs::JsonWriter& w, std::uint64_t v) { w.value(std::to_string(v)); }

void write_double(obs::JsonWriter& w, double v) { w.value(hex_double(v)); }

void write_rng_state(obs::JsonWriter& w, const util::Rng::State& st) {
  w.begin_array();
  for (std::uint64_t word : st.s) write_u64(w, word);
  w.value(st.have_cached_normal ? "1" : "0");
  write_double(w, st.cached_normal);
  w.end_array();
}

void write_bucket_checkpoint(obs::JsonWriter& w, const synth::BucketCheckpoint& ck) {
  w.begin_object();
  w.key("label");
  w.value(ck.label);
  w.key("sketches");
  w.value(static_cast<std::uint64_t>(ck.sketches));
  w.key("handlers_scored");
  w.value(static_cast<std::uint64_t>(ck.handlers_scored));
  w.key("exhausted");
  w.value(ck.exhausted);
  w.key("rng");
  write_rng_state(w, ck.rng);
  w.key("best_distance");
  write_double(w, ck.best_distance);
  w.key("best_sketch");
  w.value(ck.best_sketch);
  w.key("best_handler");
  w.value(ck.best_handler);
  w.end_object();
}

namespace {
util::Status bad(const std::string& msg) {
  return util::Status(util::StatusCode::kParseError, msg);
}
}  // namespace

util::Status u64_from_json(const util::JsonValue& j, const char* field, std::uint64_t* out) {
  if (!j.is_string() || !util::parse_u64(j.as_string(), out)) {
    return bad(std::string("'") + field + "' must be a decimal-string u64");
  }
  return util::Status::ok();
}

util::Status double_from_json(const util::JsonValue& j, const char* field, double* out) {
  if (!j.is_string() || !parse_hex_double(j.as_string(), out)) {
    return bad(std::string("'") + field + "' must be a hex-float string");
  }
  return util::Status::ok();
}

util::Status rng_state_from_json(const util::JsonValue& j, util::Rng::State* out) {
  if (!j.is_array() || j.items().size() != 6) {
    return bad("'rng' must be a 6-element array");
  }
  util::Rng::State st;
  for (int i = 0; i < 4; ++i) {
    if (auto s = u64_from_json(j.items()[static_cast<std::size_t>(i)], "rng", &st.s[i]);
        !s.is_ok()) {
      return s;
    }
  }
  const auto& flag = j.items()[4];
  if (!flag.is_string() || (flag.as_string() != "0" && flag.as_string() != "1")) {
    return bad("'rng' cached-normal flag must be \"0\" or \"1\"");
  }
  st.have_cached_normal = flag.as_string() == "1";
  if (auto s = double_from_json(j.items()[5], "rng", &st.cached_normal); !s.is_ok()) return s;
  *out = st;
  return util::Status::ok();
}

util::Status bucket_checkpoint_from_json(const util::JsonValue& j, synth::BucketCheckpoint* out) {
  if (!j.is_object()) return bad("bucket checkpoint must be an object");
  synth::BucketCheckpoint ck;

  const auto* label = j.find("label");
  if (label == nullptr || !label->is_string() || label->as_string().empty()) {
    return bad("'label' must be a non-empty string");
  }
  ck.label = label->as_string();

  auto read_count = [&](const char* key, std::size_t* out_count) -> util::Status {
    const auto* v = j.find(key);
    if (v == nullptr || !v->is_number() || v->as_double() < 0.0) {
      return bad(std::string("'") + key + "' must be a non-negative count");
    }
    *out_count = static_cast<std::size_t>(v->as_int());
    return util::Status::ok();
  };
  if (auto s = read_count("sketches", &ck.sketches); !s.is_ok()) return s;
  if (auto s = read_count("handlers_scored", &ck.handlers_scored); !s.is_ok()) return s;

  const auto* exhausted = j.find("exhausted");
  if (exhausted == nullptr || !exhausted->is_bool()) return bad("'exhausted' must be a bool");
  ck.exhausted = exhausted->as_bool();

  const auto* rng = j.find("rng");
  if (rng == nullptr) return bad("missing 'rng'");
  if (auto s = rng_state_from_json(*rng, &ck.rng); !s.is_ok()) return s;

  const auto* bd = j.find("best_distance");
  if (bd == nullptr) return bad("missing 'best_distance'");
  if (auto s = double_from_json(*bd, "best_distance", &ck.best_distance); !s.is_ok()) return s;

  const auto* bs = j.find("best_sketch");
  const auto* bh = j.find("best_handler");
  if (bs == nullptr || !bs->is_string() || bh == nullptr || !bh->is_string()) {
    return bad("'best_sketch'/'best_handler' must be strings");
  }
  ck.best_sketch = bs->as_string();
  ck.best_handler = bh->as_string();

  *out = std::move(ck);
  return util::Status::ok();
}

}  // namespace abg::dist
