// The worker half of distributed refinement search (ISSUE 9). One Worker
// owns a synth::ShardEngine for its assigned buckets and exposes it over the
// StatusServer's HTTP plumbing:
//
//   POST /shard/load     {epoch, spec, buckets, states}  build the engine:
//                        load the spec's traces, trim + segment them exactly
//                        as the single-process pipeline would, adopt the
//                        given bucket states. Replies with the segment-pool
//                        fingerprint so the coordinator can verify both
//                        sides derived the same pool.
//   POST /shard/iterate  {epoch, pass_id, target, buckets, working}  start
//                        one refinement pass in the background; replies 202
//                        immediately (the status server is single-threaded,
//                        so a pass must never run inline). 409 while busy.
//   GET  /shard/status   heartbeat + pass outcome: state machine
//                        empty -> idle -> busy -> done, the finished pass's
//                        post-pass bucket checkpoints, and cache tallies.
//   POST /shard/restore  {epoch, states}  adopt buckets mid-search (shard
//                        reassignment after a peer died). Idempotent.
//   POST /shard/quit     fire the quit latch (the worker main exits).
//
// Every malformed or out-of-order message answers with the one JSON error
// envelope and leaves the worker serviceable — a truncated body must never
// wedge the process (tested in tests/test_dist.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/status_server.hpp"
#include "synth/shard.hpp"
#include "util/cancellation.hpp"

namespace abg::dist {

class Worker {
 public:
  Worker();
  ~Worker();  // cancels + joins any in-flight pass

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  // Register the /shard/* routes. Call before server.start().
  void mount(obs::StatusServer& server);

  // Latch fired by POST /shard/quit; the worker binary waits on this.
  bool quit_requested() const { return quit_.load(std::memory_order_acquire); }

 private:
  obs::HttpResponse handle_load(const obs::HttpRequest& req);
  obs::HttpResponse handle_iterate(const obs::HttpRequest& req);
  obs::HttpResponse handle_status(const obs::HttpRequest& req);
  obs::HttpResponse handle_restore(const obs::HttpRequest& req);
  obs::HttpResponse handle_quit(const obs::HttpRequest& req);

  // Join the finished pass thread if any (mu_ must be held by caller logic
  // that guarantees the pass is not running).
  void join_pass_locked();

  enum class State { kEmpty, kIdle, kBusy, kDone };

  mutable std::mutex mu_;
  State state_ = State::kEmpty;
  std::uint64_t epoch_ = 0;
  std::uint64_t pass_id_ = 0;
  std::unique_ptr<synth::ShardEngine> engine_;
  std::thread pass_thread_;
  bool pass_joinable_ = false;
  // Outcome of the last completed pass (valid in kDone).
  std::vector<synth::BucketCheckpoint> pass_result_;
  util::Status pass_status_;

  util::CancellationToken cancel_;
  std::atomic<bool> quit_{false};
};

}  // namespace abg::dist
