#include "dist/worker.hpp"

#include <utility>

#include "api/manifest.hpp"
#include "dist/wire.hpp"
#include "dsl/dsl.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"
#include "util/json_parse.hpp"
#include "util/log.hpp"

namespace abg::dist {

namespace {

obs::HttpResponse status_error(int http_code, const util::Status& st) {
  return obs::error_response(http_code, util::status_code_name(st.code()), st.to_string());
}

obs::HttpResponse parse_error(const std::string& msg) {
  return obs::error_response(400, "parse-error", msg);
}

// Read a JSON object body; nullopt (with *resp filled) when malformed.
bool parse_body(const obs::HttpRequest& req, util::JsonValue* doc, obs::HttpResponse* resp) {
  auto parsed = util::parse_json(req.body);
  if (!parsed.ok()) {
    *resp = status_error(400, parsed.status());
    return false;
  }
  if (!parsed->is_object()) {
    *resp = parse_error("request body must be a JSON object");
    return false;
  }
  *doc = std::move(*parsed);
  return true;
}

bool read_u64_field(const util::JsonValue& doc, const char* key, std::uint64_t* out,
                    obs::HttpResponse* resp) {
  const auto* v = doc.find(key);
  if (v == nullptr || !v->is_number() || v->as_double() < 0.0) {
    *resp = parse_error(std::string("'") + key + "' must be a non-negative number");
    return false;
  }
  *out = static_cast<std::uint64_t>(v->as_int());
  return true;
}

bool read_label_array(const util::JsonValue& doc, const char* key,
                      std::vector<std::string>* out, obs::HttpResponse* resp) {
  const auto* v = doc.find(key);
  if (v == nullptr || !v->is_array()) {
    *resp = parse_error(std::string("'") + key + "' must be an array of bucket labels");
    return false;
  }
  out->clear();
  for (const auto& item : v->items()) {
    if (!item.is_string() || item.as_string().empty()) {
      *resp = parse_error(std::string("'") + key + "' entries must be non-empty strings");
      return false;
    }
    out->push_back(item.as_string());
  }
  return true;
}

}  // namespace

Worker::Worker() = default;

Worker::~Worker() {
  cancel_.cancel();
  if (pass_joinable_ && pass_thread_.joinable()) pass_thread_.join();
}

void Worker::mount(obs::StatusServer& server) {
  server.route("POST", "/shard/load",
               [this](const obs::HttpRequest& req) { return handle_load(req); });
  server.route("POST", "/shard/iterate",
               [this](const obs::HttpRequest& req) { return handle_iterate(req); });
  server.route("GET", "/shard/status",
               [this](const obs::HttpRequest& req) { return handle_status(req); });
  server.route("POST", "/shard/restore",
               [this](const obs::HttpRequest& req) { return handle_restore(req); });
  server.route("POST", "/shard/quit",
               [this](const obs::HttpRequest& req) { return handle_quit(req); });
}

void Worker::join_pass_locked() {
  if (pass_joinable_ && pass_thread_.joinable()) {
    pass_thread_.join();
    pass_joinable_ = false;
  }
}

obs::HttpResponse Worker::handle_load(const obs::HttpRequest& req) {
  util::JsonValue doc;
  obs::HttpResponse err;
  if (!parse_body(req, &doc, &err)) return err;

  std::uint64_t epoch = 0;
  if (!read_u64_field(doc, "epoch", &epoch, &err)) return err;

  const auto* spec_json = doc.find("spec");
  if (spec_json == nullptr || !spec_json->is_object()) {
    return parse_error("'spec' must be a job-spec object");
  }
  api::JobSpec spec;
  if (auto st = api::spec_from_json(*spec_json, &spec); !st.is_ok()) {
    return status_error(400, st);
  }
  if (auto st = spec.validate(); !st.is_ok()) return status_error(400, st);
  if (!spec.pipeline.dsl_override) {
    // The coordinator classifies; a worker never guesses the search space.
    return obs::error_response(400, "invalid-argument",
                               "shard spec must carry a resolved 'dsl'");
  }

  std::vector<std::string> labels;
  if (!read_label_array(doc, "buckets", &labels, &err)) return err;

  std::vector<synth::BucketCheckpoint> states;
  if (const auto* sv = doc.find("states"); sv != nullptr) {
    if (!sv->is_array()) return parse_error("'states' must be an array");
    for (const auto& item : sv->items()) {
      synth::BucketCheckpoint ck;
      if (auto st = bucket_checkpoint_from_json(item, &ck); !st.is_ok()) {
        return status_error(400, st);
      }
      states.push_back(std::move(ck));
    }
  }

  std::lock_guard lk(mu_);
  if (state_ == State::kBusy) {
    return obs::error_response(409, "busy", "a pass is running; cannot reload");
  }
  join_pass_locked();

  // Rebuild the segment pool exactly as the single-process pipeline front
  // half does: load, trim warm-up, segment, pool (core::Abagnale order).
  std::vector<trace::Trace> traces;
  for (const auto& path : spec.trace_paths) {
    auto t = trace::load_csv(path, spec.load);
    if (!t.ok()) return status_error(400, t.status().with_context(path));
    traces.push_back(std::move(*t));
  }
  std::vector<trace::Trace> steady;
  steady.reserve(traces.size());
  for (const auto& t : traces) steady.push_back(trace::trim_warmup(t, spec.pipeline.warmup_s));
  std::vector<trace::Segment> segments = trace::segment_all(
      steady, spec.pipeline.min_segment_samples, spec.pipeline.skip_first_segment);

  synth::SynthesisOptions opts = spec.pipeline.synth;
  opts.checkpoint_path.clear();  // the coordinator owns durability
  opts.resume = false;

  engine_ = std::make_unique<synth::ShardEngine>(dsl::dsl_by_name(*spec.pipeline.dsl_override),
                                                 std::move(segments), opts);
  for (const auto& label : labels) {
    // Fresh start unless the coordinator supplied a state for this label.
    bool adopted = false;
    for (const auto& ck : states) {
      if (ck.label == label) {
        if (auto st = engine_->adopt_bucket(ck); !st.is_ok()) return status_error(400, st);
        adopted = true;
        break;
      }
    }
    if (!adopted) {
      if (auto st = engine_->add_bucket(label); !st.is_ok()) return status_error(400, st);
    }
  }

  epoch_ = epoch;
  pass_id_ = 0;
  pass_result_.clear();
  pass_status_ = util::Status::ok();
  state_ = State::kIdle;

  static auto& c_loads = obs::counter("dist.worker.loads");
  c_loads.add();
  ABG_INFO("shard loaded: epoch=%llu, %zu buckets, %zu segments",
           static_cast<unsigned long long>(epoch_), labels.size(), engine_->segment_count());

  obs::JsonWriter w;
  w.begin_object();
  w.key("pool_fingerprint");
  write_u64(w, engine_->pool_fingerprint());
  w.key("segments");
  w.value(static_cast<std::uint64_t>(engine_->segment_count()));
  w.key("epoch");
  w.value(epoch_);
  w.end_object();
  return obs::HttpResponse::json(200, w.take());
}

obs::HttpResponse Worker::handle_iterate(const obs::HttpRequest& req) {
  util::JsonValue doc;
  obs::HttpResponse err;
  if (!parse_body(req, &doc, &err)) return err;

  std::uint64_t epoch = 0, pass_id = 0, target = 0;
  if (!read_u64_field(doc, "epoch", &epoch, &err)) return err;
  if (!read_u64_field(doc, "pass_id", &pass_id, &err)) return err;
  if (!read_u64_field(doc, "target", &target, &err)) return err;
  std::vector<std::string> labels;
  if (!read_label_array(doc, "buckets", &labels, &err)) return err;

  std::vector<std::size_t> working;
  if (const auto* wv = doc.find("working"); wv != nullptr) {
    if (!wv->is_array()) return parse_error("'working' must be an array of segment indices");
    for (const auto& item : wv->items()) {
      if (!item.is_number() || item.as_double() < 0.0) {
        return parse_error("'working' entries must be non-negative indices");
      }
      working.push_back(static_cast<std::size_t>(item.as_int()));
    }
  }

  std::lock_guard lk(mu_);
  if (state_ == State::kEmpty) {
    return obs::error_response(409, "conflict", "no shard loaded; POST /shard/load first");
  }
  if (state_ == State::kBusy) {
    return obs::error_response(409, "busy",
                               "pass " + std::to_string(pass_id_) + " still running");
  }
  if (epoch != epoch_) {
    return obs::error_response(409, "conflict",
                               "epoch mismatch: have " + std::to_string(epoch_) + ", got " +
                                   std::to_string(epoch));
  }
  for (const auto& label : labels) {
    if (!engine_->has_bucket(label)) {
      return obs::error_response(409, "conflict", "bucket " + label + " not owned by this shard");
    }
  }
  join_pass_locked();

  state_ = State::kBusy;
  pass_id_ = pass_id;
  pass_result_.clear();
  pass_status_ = util::Status::ok();
  pass_thread_ = std::thread([this, labels = std::move(labels), target,
                              working = std::move(working)] {
    auto r = engine_->run_pass(labels, static_cast<std::size_t>(target), working, &cancel_);
    std::lock_guard inner(mu_);
    if (r.ok()) {
      pass_result_ = std::move(*r);
      pass_status_ = util::Status::ok();
    } else {
      pass_status_ = r.status();
    }
    state_ = State::kDone;
  });
  pass_joinable_ = true;

  static auto& c_passes = obs::counter("dist.worker.passes");
  c_passes.add();

  obs::JsonWriter w;
  w.begin_object();
  w.key("pass_id");
  w.value(pass_id);
  w.end_object();
  return obs::HttpResponse::json(202, w.take());
}

obs::HttpResponse Worker::handle_status(const obs::HttpRequest&) {
  std::lock_guard lk(mu_);
  obs::JsonWriter w;
  w.begin_object();
  w.key("state");
  switch (state_) {
    case State::kEmpty:
      w.value("empty");
      break;
    case State::kIdle:
      w.value("idle");
      break;
    case State::kBusy:
      w.value("busy");
      break;
    case State::kDone:
      w.value("done");
      break;
  }
  w.key("epoch");
  w.value(epoch_);
  w.key("pass_id");
  w.value(pass_id_);
  if (engine_ != nullptr) {
    w.key("cache_hits");
    write_u64(w, engine_->cache_hits());
    w.key("cache_misses");
    write_u64(w, engine_->cache_misses());
  }
  if (state_ == State::kDone) {
    if (pass_status_.is_ok()) {
      w.key("checkpoints");
      w.begin_array();
      for (const auto& ck : pass_result_) write_bucket_checkpoint(w, ck);
      w.end_array();
    } else {
      w.key("pass_error");
      w.value(pass_status_.to_string());
    }
  }
  w.end_object();
  return obs::HttpResponse::json(200, w.take());
}

obs::HttpResponse Worker::handle_restore(const obs::HttpRequest& req) {
  util::JsonValue doc;
  obs::HttpResponse err;
  if (!parse_body(req, &doc, &err)) return err;

  std::uint64_t epoch = 0;
  if (!read_u64_field(doc, "epoch", &epoch, &err)) return err;
  const auto* sv = doc.find("states");
  if (sv == nullptr || !sv->is_array()) return parse_error("'states' must be an array");
  std::vector<synth::BucketCheckpoint> states;
  for (const auto& item : sv->items()) {
    synth::BucketCheckpoint ck;
    if (auto st = bucket_checkpoint_from_json(item, &ck); !st.is_ok()) {
      return status_error(400, st);
    }
    states.push_back(std::move(ck));
  }

  std::lock_guard lk(mu_);
  if (state_ == State::kEmpty) {
    return obs::error_response(409, "conflict", "no shard loaded; POST /shard/load first");
  }
  if (state_ == State::kBusy) {
    return obs::error_response(409, "busy", "a pass is running; cannot restore");
  }
  if (epoch != epoch_) {
    return obs::error_response(409, "conflict", "epoch mismatch");
  }
  join_pass_locked();
  for (const auto& ck : states) {
    if (auto st = engine_->adopt_bucket(ck); !st.is_ok()) return status_error(400, st);
  }
  static auto& c_adopted = obs::counter("dist.worker.buckets_adopted");
  c_adopted.add(states.size());

  obs::JsonWriter w;
  w.begin_object();
  w.key("adopted");
  w.value(static_cast<std::uint64_t>(states.size()));
  w.end_object();
  return obs::HttpResponse::json(200, w.take());
}

obs::HttpResponse Worker::handle_quit(const obs::HttpRequest&) {
  cancel_.cancel();
  quit_.store(true, std::memory_order_release);
  return obs::HttpResponse::json(200, "{\"quitting\":true}\n");
}

}  // namespace abg::dist
