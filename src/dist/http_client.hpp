// Minimal blocking HTTP/1.1 client for the shard protocol — the request-side
// counterpart of obs::StatusServer, with the same no-dependency stance. One
// request per connection (the server answers Connection: close), bounded by
// a wall-clock budget across connect + send + receive, so a dead worker costs
// the coordinator `timeout_s`, never a hang.
//
// Failure taxonomy matches the rest of the codebase: kIoError for anything
// network-shaped (refused, timed out, reset), kParseError for a response the
// peer produced but this client cannot understand. Callers treat a streak of
// kIoError as worker death.
#pragma once

#include <cstdint>
#include <string>

#include "util/result.hpp"

namespace abg::dist {

struct HttpReply {
  int code = 0;
  // The raw header block (status line + header lines, CRLF-terminated), for
  // callers that inspect response headers (tests assert Deprecation here).
  std::string head;
  std::string body;
};

// `host` is an IPv4 dotted quad ("127.0.0.1"); the shard protocol never
// needs name resolution. An empty body with method GET sends no body.
util::Result<HttpReply> http_request(const std::string& host, std::uint16_t port,
                                     const std::string& method, const std::string& path,
                                     const std::string& body, double timeout_s);

}  // namespace abg::dist
