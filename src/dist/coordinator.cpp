#include "dist/coordinator.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <thread>
#include <utility>

#include "api/manifest.hpp"
#include "classify/classifier.hpp"
#include "core/abagnale.hpp"
#include "dist/http_client.hpp"
#include "dist/wire.hpp"
#include "dsl/dsl.hpp"
#include "dsl/parse.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "synth/buckets.hpp"
#include "synth/checkpoint.hpp"
#include "synth/eval_cache.hpp"
#include "synth/replay.hpp"
#include "synth/shard.hpp"
#include "trace/sampler.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"
#include "util/csv.hpp"
#include "util/json_parse.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace abg::dist {

namespace {

util::Status invalid(const std::string& msg) {
  return util::Status(util::StatusCode::kInvalidArgument, msg);
}

// Coordinator-side view of one worker process.
struct WorkerView {
  WorkerEndpoint ep;
  bool alive = true;
  bool busy = false;
  int failures = 0;  // consecutive RPC failures; reset on any success
  // Labels of the pass group in flight on this worker.
  std::vector<std::string> inflight;
  // Labels queued for this worker but not yet issued this pass; entries
  // flagged true must be restored from committed state first (reassignment).
  std::vector<std::pair<std::string, bool>> queue;
};

std::string endpoint_name(const WorkerEndpoint& ep) {
  return ep.host + ":" + std::to_string(ep.port);
}

// The whole distributed-run state, so helpers can share it without a
// ten-argument signature.
struct Run {
  explicit Run(const CoordinatorOptions& c) : copts(c) {}

  const CoordinatorOptions& copts;
  synth::SynthesisOptions opts;  // dopts already folded
  dsl::Dsl dsl;
  std::vector<trace::Segment> segments;
  std::uint64_t pool_fingerprint = 0;
  std::string spec_json;  // codec-serialized spec shipped to every worker

  std::vector<WorkerView> workers;
  std::vector<synth::Bucket> buckets;              // make_buckets order
  std::map<std::string, std::size_t> bucket_index;  // label -> index
  std::vector<synth::BucketCheckpoint> committed;  // last completed pass, per bucket
  std::vector<std::size_t> owner;                  // bucket index -> worker index
  std::uint64_t epoch = 1;
  std::uint64_t next_pass_id = 1;

  util::CancellationToken* tok = nullptr;
  std::size_t reassigned = 0;
};

std::size_t alive_count(const Run& run) {
  std::size_t n = 0;
  for (const auto& w : run.workers) n += w.alive ? 1 : 0;
  return n;
}

void mark_dead(Run& run, std::size_t wi, const char* why) {
  if (!run.workers[wi].alive) return;
  run.workers[wi].alive = false;
  run.workers[wi].busy = false;
  static auto& c_lost = obs::counter("dist.workers_lost");
  c_lost.add();
  ABG_WARN("worker %s declared dead (%s); %zu still alive",
           endpoint_name(run.workers[wi].ep).c_str(), why, alive_count(run));
}

// The alive worker with the fewest queued + in-flight labels.
std::size_t least_loaded_alive(const Run& run) {
  std::size_t best = run.workers.size();
  std::size_t best_load = 0;
  for (std::size_t i = 0; i < run.workers.size(); ++i) {
    if (!run.workers[i].alive) continue;
    const std::size_t load = run.workers[i].queue.size() + run.workers[i].inflight.size();
    if (best == run.workers.size() || load < best_load) {
      best = i;
      best_load = load;
    }
  }
  return best;  // == workers.size() when none alive
}

util::Result<HttpReply> rpc(Run& run, std::size_t wi, const std::string& method,
                            const std::string& path, const std::string& body) {
  auto r = http_request(run.workers[wi].ep.host, run.workers[wi].ep.port, method, path, body,
                        run.copts.rpc_timeout_s);
  if (r.ok()) {
    run.workers[wi].failures = 0;
  } else {
    ++run.workers[wi].failures;
  }
  return r;
}

// Move every queued/in-flight label of a dead worker to a surviving one,
// flagged for restore (the survivor must adopt the committed state before
// re-running the pass). Also repoints the owner map so later passes land on
// the adopter directly.
util::Status reassign_from(Run& run, std::size_t dead_wi) {
  WorkerView& dead = run.workers[dead_wi];
  std::vector<std::pair<std::string, bool>> orphans = std::move(dead.queue);
  for (const auto& label : dead.inflight) orphans.emplace_back(label, true);
  dead.queue.clear();
  dead.inflight.clear();
  if (orphans.empty()) return util::Status::ok();

  static auto& c_reassigned = obs::counter("dist.shards_reassigned");
  for (auto& [label, _] : orphans) {
    const std::size_t target = least_loaded_alive(run);
    if (target == run.workers.size()) {
      return util::Status(util::StatusCode::kIoError,
                          "all workers lost; cannot reassign bucket " + label);
    }
    run.workers[target].queue.emplace_back(label, true);
    run.owner[run.bucket_index.at(label)] = target;
    ++run.reassigned;
    c_reassigned.add();
    ABG_INFO("bucket %s reassigned to %s", label.c_str(),
             endpoint_name(run.workers[target].ep).c_str());
  }
  return util::Status::ok();
}

// POST /shard/load to worker `wi` with its currently-owned buckets and their
// committed states. Used at job start and never after (mid-run adoption goes
// through /shard/restore, which preserves the worker's other buckets).
util::Status load_worker(Run& run, std::size_t wi) {
  std::vector<std::size_t> owned;
  for (std::size_t b = 0; b < run.buckets.size(); ++b) {
    if (run.owner[b] == wi) owned.push_back(b);
  }
  obs::JsonWriter w;
  w.begin_object();
  w.key("epoch");
  w.value(run.epoch);
  w.key("spec");
  w.raw(run.spec_json);
  w.key("buckets");
  w.begin_array();
  for (std::size_t b : owned) w.value(run.buckets[b].label);
  w.end_array();
  w.key("states");
  w.begin_array();
  for (std::size_t b : owned) write_bucket_checkpoint(w, run.committed[b]);
  w.end_array();
  w.end_object();

  auto r = rpc(run, wi, "POST", "/shard/load", w.take());
  if (!r.ok()) return r.status();
  if (r->code != 200) {
    return util::Status(util::StatusCode::kUnknown,
                        "worker " + endpoint_name(run.workers[wi].ep) + " rejected load: " +
                            r->body);
  }
  auto doc = util::parse_json(r->body);
  if (!doc.ok()) return doc.status().with_context("load reply");
  const auto* fp = doc->find("pool_fingerprint");
  std::uint64_t worker_fp = 0;
  if (fp == nullptr || !u64_from_json(*fp, "pool_fingerprint", &worker_fp).is_ok()) {
    return util::Status(util::StatusCode::kParseError, "malformed load reply");
  }
  if (worker_fp != run.pool_fingerprint) {
    // The worker derived a different segment pool from the same spec —
    // mismatched trace files on its filesystem. Running it would silently
    // search a different problem.
    return util::Status(util::StatusCode::kInvalidTrace,
                        "worker " + endpoint_name(run.workers[wi].ep) +
                            " segment-pool fingerprint mismatch (different trace data?)");
  }
  return util::Status::ok();
}

// Run one distributed pass over `labels` (in live order): issue per-worker
// iterate RPCs, poll, reassign on death, and return the post-pass
// checkpoints keyed by label. Cancellation aborts with the token's reason.
util::Status run_pass(Run& run, const std::vector<std::string>& labels, std::size_t target,
                      const std::vector<std::size_t>& working,
                      std::map<std::string, synth::BucketCheckpoint>* out) {
  static auto& c_passes = obs::counter("dist.passes");
  c_passes.add();

  // Queue every label on its owner, initially without restore (the owner
  // already holds the bucket from load or an earlier pass).
  for (const auto& label : labels) {
    const std::size_t wi = run.owner.at(run.bucket_index.at(label));
    if (!run.workers[wi].alive) {
      // Owner died in an earlier pass and this bucket was not live then;
      // route it like any orphan.
      const std::size_t t = least_loaded_alive(run);
      if (t == run.workers.size()) {
        return util::Status(util::StatusCode::kIoError, "all workers lost");
      }
      run.owner[run.bucket_index.at(label)] = t;
      run.workers[t].queue.emplace_back(label, true);
      ++run.reassigned;
      obs::counter("dist.shards_reassigned").add();
    } else {
      run.workers[wi].queue.emplace_back(label, false);
    }
  }

  const std::string working_json = [&] {
    obs::JsonWriter w;
    w.begin_array();
    for (std::size_t idx : working) w.value(static_cast<std::uint64_t>(idx));
    w.end_array();
    return w.take();
  }();

  std::size_t collected = 0;
  while (collected < labels.size()) {
    if (run.tok->cancelled()) {
      return util::Status(run.tok->reason(), "distributed pass interrupted");
    }

    // Issue queued groups to every idle alive worker.
    for (std::size_t wi = 0; wi < run.workers.size(); ++wi) {
      WorkerView& wv = run.workers[wi];
      if (!wv.alive || wv.busy || wv.queue.empty()) continue;

      // Restore first where needed (adopting a dead peer's committed state).
      std::vector<std::size_t> restore;
      for (const auto& [label, needs_restore] : wv.queue) {
        if (needs_restore) restore.push_back(run.bucket_index.at(label));
      }
      if (!restore.empty()) {
        obs::JsonWriter w;
        w.begin_object();
        w.key("epoch");
        w.value(run.epoch);
        w.key("states");
        w.begin_array();
        for (std::size_t b : restore) write_bucket_checkpoint(w, run.committed[b]);
        w.end_array();
        w.end_object();
        auto r = rpc(run, wi, "POST", "/shard/restore", w.take());
        if (!r.ok() || r->code != 200) {
          if (run.workers[wi].failures >= run.copts.max_rpc_failures || (r.ok() && r->code != 200)) {
            mark_dead(run, wi, "restore failed");
            if (auto st = reassign_from(run, wi); !st.is_ok()) return st;
          }
          continue;
        }
      }

      obs::JsonWriter w;
      w.begin_object();
      w.key("epoch");
      w.value(run.epoch);
      w.key("pass_id");
      w.value(run.next_pass_id);
      w.key("target");
      w.value(static_cast<std::uint64_t>(target));
      w.key("buckets");
      w.begin_array();
      for (const auto& [label, _] : wv.queue) w.value(label);
      w.end_array();
      w.key("working");
      w.raw(working_json);
      w.end_object();
      auto r = rpc(run, wi, "POST", "/shard/iterate", w.take());
      if (!r.ok()) {
        if (wv.failures >= run.copts.max_rpc_failures) {
          mark_dead(run, wi, "iterate failed");
          if (auto st = reassign_from(run, wi); !st.is_ok()) return st;
        }
        continue;
      }
      if (r->code != 202) {
        mark_dead(run, wi, ("iterate rejected: " + r->body).c_str());
        if (auto st = reassign_from(run, wi); !st.is_ok()) return st;
        continue;
      }
      wv.inflight.clear();
      for (const auto& [label, _] : wv.queue) wv.inflight.push_back(label);
      wv.queue.clear();
      wv.busy = true;
      ++run.next_pass_id;
    }

    bool any_busy = false;
    for (const auto& wv : run.workers) any_busy = any_busy || wv.busy;
    if (!any_busy) {
      // Nothing in flight and nothing issuable; if labels remain, every
      // carrier died without a survivor to take over.
      bool pending = false;
      for (const auto& wv : run.workers) pending = pending || !wv.queue.empty();
      if (!pending && collected < labels.size()) {
        return util::Status(util::StatusCode::kIoError, "all workers lost mid-pass");
      }
      if (pending && alive_count(run) == 0) {
        return util::Status(util::StatusCode::kIoError, "all workers lost mid-pass");
      }
      continue;
    }

    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<long>(run.copts.poll_interval_s * 1e6)));

    // Poll the busy workers.
    for (std::size_t wi = 0; wi < run.workers.size(); ++wi) {
      WorkerView& wv = run.workers[wi];
      if (!wv.alive || !wv.busy) continue;
      auto r = rpc(run, wi, "GET", "/shard/status", "");
      if (!r.ok()) {
        if (wv.failures >= run.copts.max_rpc_failures) {
          mark_dead(run, wi, "status poll failed");
          if (auto st = reassign_from(run, wi); !st.is_ok()) return st;
        }
        continue;
      }
      auto doc = util::parse_json(r->body);
      if (!doc.ok() || !doc->is_object()) {
        mark_dead(run, wi, "malformed status reply");
        if (auto st = reassign_from(run, wi); !st.is_ok()) return st;
        continue;
      }
      const auto* state = doc->find("state");
      const std::string s = state != nullptr && state->is_string() ? state->as_string() : "";
      if (s == "busy") continue;
      if (s != "done") {
        mark_dead(run, wi, ("unexpected worker state '" + s + "'").c_str());
        if (auto st = reassign_from(run, wi); !st.is_ok()) return st;
        continue;
      }
      if (const auto* pe = doc->find("pass_error"); pe != nullptr) {
        // The pass itself failed on an intact worker (e.g. a corrupt restore
        // payload): a real error, not a death to route around.
        return util::Status(util::StatusCode::kUnknown,
                            "worker " + endpoint_name(wv.ep) + " pass failed: " +
                                (pe->is_string() ? pe->as_string() : "?"));
      }
      const auto* cks = doc->find("checkpoints");
      if (cks == nullptr || !cks->is_array() || cks->items().size() != wv.inflight.size()) {
        mark_dead(run, wi, "malformed pass result");
        if (auto st = reassign_from(run, wi); !st.is_ok()) return st;
        continue;
      }
      bool ok = true;
      for (const auto& item : cks->items()) {
        synth::BucketCheckpoint ck;
        if (auto st = bucket_checkpoint_from_json(item, &ck); !st.is_ok()) {
          mark_dead(run, wi, ("undecodable checkpoint: " + st.to_string()).c_str());
          if (auto rst = reassign_from(run, wi); !rst.is_ok()) return rst;
          ok = false;
          break;
        }
        (*out)[ck.label] = std::move(ck);
      }
      if (!ok) continue;
      collected += wv.inflight.size();
      wv.inflight.clear();
      wv.busy = false;
    }
  }
  return util::Status::ok();
}

// Sum the workers' cumulative cache tallies (best effort: a dead worker's
// counts are simply absent — the stats are observability, not results).
void poll_cache_tallies(Run& run, std::uint64_t* hits, std::uint64_t* misses) {
  *hits = 0;
  *misses = 0;
  for (std::size_t wi = 0; wi < run.workers.size(); ++wi) {
    if (!run.workers[wi].alive) continue;
    auto r = rpc(run, wi, "GET", "/shard/status", "");
    if (!r.ok()) continue;
    auto doc = util::parse_json(r->body);
    if (!doc.ok()) continue;
    std::uint64_t h = 0, m = 0;
    if (const auto* v = doc->find("cache_hits"); v != nullptr) {
      (void)u64_from_json(*v, "cache_hits", &h);
    }
    if (const auto* v = doc->find("cache_misses"); v != nullptr) {
      (void)u64_from_json(*v, "cache_misses", &m);
    }
    *hits += h;
    *misses += m;
  }
}

std::string expr_text(const dsl::ExprPtr& e) { return e ? dsl::to_string(*e) : std::string(); }

// The distributed twin of synth::synthesize(): same control flow, with the
// per-bucket passes executed by workers and merged from their checkpoints.
synth::SynthesisResult distributed_synthesize(Run& run, const api::JobSpec& spec) {
  util::Stopwatch total_clock;
  synth::SynthesisResult result;
  const synth::SynthesisOptions& opts = run.opts;

  util::DeadlineWatchdog watchdog(run.tok, opts.timeout_s);
  auto interrupted = [&] { return run.tok->cancelled(); };
  auto mark_interrupted = [&] {
    result.partial = true;
    result.timed_out = run.tok->reason() == util::StatusCode::kTimeout;
    result.status =
        util::Status(run.tok->reason(), "synthesis interrupted; returning best-so-far");
  };

  result.initial_buckets = run.buckets.size();

  const auto seg_distance = [&](const trace::Segment& a, const trace::Segment& b) {
    return distance::compute(opts.metric, synth::observed_series_pkts(a),
                             synth::observed_series_pkts(b), opts.dopts);
  };
  trace::SegmentSampler sampler(&run.segments, seg_distance, opts.seed ^ 0x5e95a1d3);

  std::vector<synth::ScoredHandler> candidates;
  synth::ScoredHandler best;

  int n = opts.initial_samples;
  int k = opts.initial_keep;
  std::vector<std::size_t> live(run.buckets.size());
  for (std::size_t i = 0; i < live.size(); ++i) live[i] = i;

  // --- Checkpoint restore (single-process file format, so a job resumes
  // interchangeably under synthesize() or the coordinator). ----------------
  int start_iter = 0;
  bool resumed = false;
  if (opts.resume && !opts.checkpoint_path.empty()) {
    auto loaded = synth::load_checkpoint(opts.checkpoint_path);
    if (!loaded.ok() && loaded.status().code() == util::StatusCode::kIoError) {
      ABG_INFO("no checkpoint at %s; starting fresh", opts.checkpoint_path.c_str());
    } else if (!loaded.ok()) {
      result.status = loaded.status().with_context("resume");
      return result;
    } else {
      const synth::Checkpoint& ck = *loaded;
      if (ck.pool_fingerprint != run.pool_fingerprint || ck.seed != opts.seed) {
        result.status = util::Status(util::StatusCode::kInvalidTrace,
                                     "checkpoint was written for a different segment pool or seed");
        return result;
      }
      bool consistent = ck.buckets.size() == run.buckets.size();
      for (std::size_t idx : ck.live) consistent = consistent && idx < run.buckets.size();
      auto restore_scored = [&](const synth::ScoredHandlerCheckpoint& c) {
        auto r = synth::parse_scored_handler(c.distance, c.sketch, c.handler);
        if (!r.ok()) {
          consistent = false;
          return synth::ScoredHandler{};
        }
        return *r;
      };
      for (const auto& bc : ck.buckets) {
        auto it = run.bucket_index.find(bc.label);
        if (it == run.bucket_index.end()) {
          consistent = false;
          break;
        }
        run.committed[it->second] = bc;
      }
      best = restore_scored(ck.best);
      for (const auto& c : ck.candidates) candidates.push_back(restore_scored(c));
      if (!consistent) {
        result.status = util::Status(util::StatusCode::kParseError,
                                     "corrupted checkpoint " + opts.checkpoint_path);
        return result;
      }
      start_iter = ck.next_iter;
      n = ck.n;
      k = ck.k;
      live = ck.live;
      result.iterations = ck.iterations;
      sampler.restore(ck.sampler_selected, ck.sampler_rng);
      resumed = true;
      ABG_INFO("resumed from %s at iteration %d (%zu live buckets)",
               opts.checkpoint_path.c_str(), start_iter, live.size());
    }
  }
  if (!resumed) sampler.grow_to(static_cast<std::size_t>(opts.initial_segments));

  auto save_state = [&](int next_iter) {
    synth::Checkpoint ck;
    ck.pool_fingerprint = run.pool_fingerprint;
    ck.seed = opts.seed;
    ck.next_iter = next_iter;
    ck.n = n;
    ck.k = k;
    ck.best = {best.distance, expr_text(best.sketch), expr_text(best.handler)};
    ck.sampler_rng = sampler.rng_state();
    ck.sampler_selected = sampler.selected();
    ck.live = live;
    ck.buckets = run.committed;
    for (const auto& c : candidates) {
      ck.candidates.push_back({c.distance, expr_text(c.sketch), expr_text(c.handler)});
    }
    ck.iterations = result.iterations;
    if (auto st = synth::save_checkpoint(ck, opts.checkpoint_path); !st.is_ok()) {
      ABG_WARN("checkpoint save failed: %s", st.to_string().c_str());
    }
  };

  // --- Ship the job to the workers. ----------------------------------------
  for (std::size_t wi = 0; wi < run.workers.size(); ++wi) {
    if (auto st = load_worker(run, wi); !st.is_ok()) {
      if (st.code() == util::StatusCode::kInvalidTrace ||
          st.code() == util::StatusCode::kUnknown || st.code() == util::StatusCode::kParseError) {
        // A worker that answers wrongly is a configuration error, not a
        // crash to route around.
        result.status = st;
        return result;
      }
      mark_dead(run, wi, "load failed");
    }
  }
  if (alive_count(run) == 0) {
    result.status = util::Status(util::StatusCode::kIoError, "no worker accepted the job");
    return result;
  }
  // Buckets owned by workers that died during load move to survivors (the
  // committed state is still fresh, so restore-at-iterate is cheap).
  for (std::size_t b = 0; b < run.buckets.size(); ++b) {
    if (!run.workers[run.owner[b]].alive) {
      run.owner[b] = least_loaded_alive(run);
    }
  }
  obs::gauge("dist.workers").set(static_cast<double>(alive_count(run)));

  // Merge one pass's checkpoints: commit, fold bucket bests into candidates
  // and the global best. Processed in the caller's label order (live order),
  // which the strict-< update makes deterministic.
  auto merge = [&](const std::vector<std::string>& labels,
                   const std::map<std::string, synth::BucketCheckpoint>& outcome) -> util::Status {
    for (const auto& label : labels) {
      const auto it = outcome.find(label);
      if (it == outcome.end()) {
        return util::Status(util::StatusCode::kUnknown, "pass result missing bucket " + label);
      }
      const synth::BucketCheckpoint& ck = it->second;
      run.committed[run.bucket_index.at(label)] = ck;
      if (!ck.best_handler.empty()) {
        auto parsed = synth::parse_scored_handler(ck.best_distance, ck.best_sketch,
                                                  ck.best_handler);
        if (!parsed.ok()) return parsed.status().with_context("bucket " + label);
        if (parsed->valid()) {
          if (parsed->distance < best.distance) best = *parsed;
          candidates.push_back(*parsed);
        }
      }
    }
    return util::Status::ok();
  };

  static auto& c_iters = obs::counter("synth.iterations");

  // --- The refinement loop (Algorithm 1), pass execution remoted. ----------
  for (int iter = start_iter; iter < opts.max_iterations; ++iter) {
    if (live.empty()) break;
    if (iter > start_iter && interrupted()) {
      mark_interrupted();
      break;
    }
    util::Stopwatch iter_clock;
    c_iters.add();

    std::vector<std::size_t> working = sampler.selected();
    // Tiny pools: the single-process loop falls back to the whole pool; an
    // empty index list means exactly that to ShardEngine::run_pass.

    std::vector<std::string> live_labels;
    for (std::size_t idx : live) live_labels.push_back(run.buckets[idx].label);
    std::map<std::string, synth::BucketCheckpoint> outcome;
    if (auto st = run_pass(run, live_labels, static_cast<std::size_t>(n), working, &outcome);
        !st.is_ok()) {
      if (st.code() == util::StatusCode::kCancelled || st.code() == util::StatusCode::kTimeout) {
        mark_interrupted();
        break;
      }
      result.status = st;
      return result;
    }
    if (auto st = merge(live_labels, outcome); !st.is_ok()) {
      result.status = st;
      return result;
    }

    // Rank buckets by score — same comparator over the same values as the
    // single-process sort (distances round-trip bit-exactly over the wire).
    std::sort(live.begin(), live.end(), [&](std::size_t a, std::size_t b) {
      return run.committed[a].best_distance < run.committed[b].best_distance;
    });

    synth::IterationReport report;
    report.n_target = n;
    report.keep = k;
    report.segments_used = working.empty() ? run.segments.size() : working.size();
    for (std::size_t idx : live) {
      synth::BucketReport br;
      br.label = run.buckets[idx].label;
      br.score = run.committed[idx].best_distance;
      br.sketches_enumerated = run.committed[idx].sketches;
      br.handlers_scored = run.committed[idx].handlers_scored;
      br.exhausted = run.committed[idx].exhausted;
      report.buckets.push_back(std::move(br));
    }

    if (static_cast<std::size_t>(k) < live.size()) {
      const double kth = run.committed[live[static_cast<std::size_t>(k) - 1]].best_distance;
      std::size_t cut = live.size();
      for (std::size_t i = static_cast<std::size_t>(k); i < live.size(); ++i) {
        if (run.committed[live[i]].best_distance > kth) {
          cut = i;
          break;
        }
      }
      live.resize(cut);
    }
    for (auto& br : report.buckets) {
      br.retained = std::any_of(live.begin(), live.end(), [&](std::size_t idx) {
        return run.buckets[idx].label == br.label;
      });
    }
    report.seconds = iter_clock.elapsed_seconds();
    report.best_distance = best.distance;
    poll_cache_tallies(run, &report.cache_hits, &report.cache_misses);
    result.iterations.push_back(std::move(report));
    if (spec.on_iteration) spec.on_iteration(result.iterations.back());

    ABG_INFO("dist iter %d: %zu buckets live, N=%d, best=%.3f (%zu workers, %zu reassigned)",
             iter, live.size(), n, best.distance, alive_count(run), run.reassigned);

    if (interrupted()) {
      mark_interrupted();
      break;
    }

    const bool all_done = std::all_of(live.begin(), live.end(), [&](std::size_t idx) {
      return run.committed[idx].exhausted;
    });
    if (all_done) break;

    // Terminal exhaustive phase: one bucket left (§4.4).
    if (live.size() == 1) {
      std::map<std::string, synth::BucketCheckpoint> final_outcome;
      const std::vector<std::string> final_labels{run.buckets[live[0]].label};
      if (auto st = run_pass(run, final_labels, opts.exhaustive_cap, sampler.selected(),
                             &final_outcome);
          !st.is_ok()) {
        if (st.code() == util::StatusCode::kCancelled ||
            st.code() == util::StatusCode::kTimeout) {
          mark_interrupted();
          break;
        }
        result.status = st;
        return result;
      }
      if (auto st = merge(final_labels, final_outcome); !st.is_ok()) {
        result.status = st;
        return result;
      }
      break;
    }

    n *= opts.sample_growth;
    k = std::max(k / 2, 1);
    sampler.grow_to(sampler.selected().size() + 2);

    if (!opts.checkpoint_path.empty()) save_state(iter + 1);
  }

  result.best = best;

  // --- Final validation (§3.2), coordinator-local. Sequential, but the
  // winner matches the single-process parallel version: a candidate
  // abandoned against the running winner's distance is at or above the final
  // minimum either way. -----------------------------------------------------
  if (!result.partial && !candidates.empty() && !run.segments.empty()) {
    static auto& c_validated = obs::counter("synth.candidates_validated");
    sampler.grow_to(opts.final_validation_segments);
    std::vector<trace::Segment> validation;
    for (std::size_t idx : sampler.selected()) validation.push_back(run.segments[idx]);
    std::vector<synth::ScoredHandler> unique;
    std::vector<std::size_t> hashes;
    for (const auto& c : candidates) {
      if (!c.handler) continue;
      const std::size_t h = dsl::hash_expr(*c.handler);
      if (std::find(hashes.begin(), hashes.end(), h) != hashes.end()) continue;
      hashes.push_back(h);
      unique.push_back(c);
    }
    result.candidates_validated = unique.size();
    c_validated.add(unique.size());
    synth::ScoredHandler winner;
    for (const auto& cand : unique) {
      const double cutoff =
          opts.early_abandon ? winner.distance : std::numeric_limits<double>::infinity();
      const double d =
          synth::total_distance(*cand.handler, validation, opts.metric, opts.dopts, {}, cutoff);
      if (d < winner.distance) {
        winner = cand;
        winner.distance = d;
      }
    }
    if (winner.valid()) result.best = winner;
  }

  for (const auto& ck : run.committed) {
    result.total_sketches += ck.sketches;
    result.total_handlers_scored += ck.handlers_scored;
  }
  poll_cache_tallies(run, &result.cache_hits, &result.cache_misses);
  result.seconds = total_clock.elapsed_seconds();
  return result;
}

}  // namespace

util::Result<std::vector<WorkerEndpoint>> parse_worker_endpoints(const std::string& list) {
  std::vector<WorkerEndpoint> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    std::string item = list.substr(start, comma - start);
    const bool last = comma == list.size();
    start = comma + 1;
    // Tolerate surrounding whitespace ("7001, 7002") but treat an empty
    // token as a typo, not a no-op — a silently shrunk fleet is worse.
    while (!item.empty() && std::isspace(static_cast<unsigned char>(item.front()))) {
      item.erase(item.begin());
    }
    while (!item.empty() && std::isspace(static_cast<unsigned char>(item.back()))) {
      item.pop_back();
    }
    if (item.empty()) {
      if (last && out.empty() && start > list.size()) break;  // whole list empty
      return invalid("empty worker endpoint in list '" + list + "'");
    }
    WorkerEndpoint ep;
    const std::size_t colon = item.rfind(':');
    std::string port_str = item;
    if (colon != std::string::npos) {
      ep.host = item.substr(0, colon);
      if (ep.host.empty()) {
        return invalid("bad worker endpoint '" + item + "' (empty host)");
      }
      port_str = item.substr(colon + 1);
    }
    std::uint64_t port = 0;
    if (!util::parse_u64(port_str, &port) || port == 0 || port > 65535) {
      return invalid("bad worker endpoint '" + item + "' (want host:port)");
    }
    ep.port = static_cast<std::uint16_t>(port);
    out.push_back(std::move(ep));
  }
  if (out.empty()) return invalid("empty worker list");
  return out;
}

bool spec_is_distributable(const api::JobSpec& spec) {
  return spec.kind == api::JobSpec::Kind::kPipeline && !spec.trace_paths.empty() &&
         spec.segments.empty() && spec.traces.empty() && !spec.custom_dsl;
}

Coordinator::Coordinator(CoordinatorOptions opts) : opts_(std::move(opts)) {}

api::JobResult Coordinator::run(const api::JobSpec& spec,
                                const util::CancellationToken* cancel) {
  util::Stopwatch clock;
  api::JobResult out;
  out.name = spec.name;
  out.kind = spec.kind;

  auto fail = [&](util::Status st) {
    out.status = std::move(st);
    out.seconds = clock.elapsed_seconds();
    return out;
  };

  if (opts_.workers.empty()) return fail(invalid("no workers configured"));
  if (spec.kind != api::JobSpec::Kind::kPipeline) {
    return fail(invalid("distributed mode supports pipeline jobs only"));
  }
  if (!spec.segments.empty() || !spec.traces.empty() || spec.custom_dsl) {
    return fail(invalid(
        "distributed mode needs trace paths (pre-segmented input, in-memory traces, and "
        "custom DSL objects cannot be shipped to workers)"));
  }
  if (auto st = spec.validate(); !st.is_ok()) return fail(st);

  // --- Front half of the pipeline, coordinator-local (mirrors
  // api::Engine::run_job + core::Abagnale::run). ----------------------------
  std::vector<trace::Trace> traces;
  for (const auto& path : spec.trace_paths) {
    auto t = trace::load_csv(path, spec.load);
    if (!t.ok()) return fail(t.status().with_context(path));
    traces.push_back(std::move(*t));
  }

  core::PipelineOptions popts = spec.pipeline;
  std::string dsl_name;
  if (popts.dsl_override) {
    dsl_name = *popts.dsl_override;
  } else {
    classify::Classifier classifier(popts.classifier);
    out.pipeline.classification = classifier.classify(traces);
    dsl_name = core::dsl_for_classification(out.pipeline.classification);
  }
  out.pipeline.dsl_name = dsl_name;

  std::vector<trace::Trace> steady;
  steady.reserve(traces.size());
  for (const auto& t : traces) steady.push_back(trace::trim_warmup(t, popts.warmup_s));
  std::vector<trace::Segment> segments =
      trace::segment_all(steady, popts.min_segment_samples, popts.skip_first_segment);
  out.pipeline.segments_total = segments.size();
  out.segments_total = segments.size();

  synth::SynthesisOptions opts = popts.synth;
  if (auto st = opts.validate(); !st.is_ok()) {
    return fail(st.with_context("SynthesisOptions"));
  }
  opts.dopts = synth::effective_distance_options(opts);

  util::CancellationToken tok(cancel);

  Run run(opts_);
  run.opts = opts;
  run.dsl = dsl::dsl_by_name(dsl_name);
  run.segments = std::move(segments);
  run.pool_fingerprint = synth::segment_set_fingerprint(run.segments);
  run.tok = &tok;
  for (const auto& ep : opts_.workers) {
    WorkerView wv;
    wv.ep = ep;
    run.workers.push_back(std::move(wv));
  }
  run.buckets = synth::make_buckets(run.dsl);
  for (std::size_t b = 0; b < run.buckets.size(); ++b) {
    run.bucket_index[run.buckets[b].label] = b;
    synth::BucketCheckpoint ck;
    ck.label = run.buckets[b].label;
    ck.rng = util::Rng(synth::bucket_rng_seed(ck.label, opts.seed)).state();
    run.committed.push_back(std::move(ck));
    run.owner.push_back(b % run.workers.size());
  }

  // Ship the spec with the DSL resolved (workers never classify) and the
  // coordinator-owned knobs stripped.
  api::JobSpec worker_spec = spec;
  worker_spec.pipeline.dsl_override = dsl_name;
  worker_spec.pipeline.synth.checkpoint_path.clear();
  worker_spec.pipeline.synth.resume = false;
  worker_spec.on_iteration = nullptr;
  worker_spec.on_complete = nullptr;
  run.spec_json = api::spec_to_json(worker_spec);

  out.pipeline.synthesis = distributed_synthesize(run, spec);
  obs::gauge("dist.workers").set(static_cast<double>(alive_count(run)));
  obs::gauge("dist.shards_reassigned_last_job").set(static_cast<double>(run.reassigned));

  out.status = out.pipeline.synthesis.status;
  out.cache_hits = out.pipeline.synthesis.cache_hits;
  out.cache_misses = out.pipeline.synthesis.cache_misses;
  out.seconds = clock.elapsed_seconds();
  // Wall-clock of the last distributed job, for scaling gates: CI runs the
  // same job on 1 worker and N workers and feeds the two metrics snapshots
  // to `abg_report --gate dist.job_seconds_last.last=0` (N-worker must not
  // be slower).
  obs::gauge("dist.job_seconds_last").set(out.seconds);

  const auto& iters = out.pipeline.synthesis.iterations;
  out.convergence.clear();
  out.convergence.reserve(iters.size());
  double wall_ms = 0.0;
  for (std::size_t i = 0; i < iters.size(); ++i) {
    wall_ms += iters[i].seconds * 1000.0;
    out.convergence.push_back({static_cast<int>(i), iters[i].best_distance, wall_ms});
  }
  return out;
}

}  // namespace abg::dist
