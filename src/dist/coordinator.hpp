// The coordinator half of distributed refinement search (ISSUE 9). Splits
// one synthesis job into bucket shards, farms the per-iteration passes to N
// abagnale_worker processes over HTTP, and merges the per-shard results with
// the exact strict-< / tie-break rules of the single-process loop, so the
// distributed winner is bit-identical to synth::synthesize() on one machine.
//
// Control flow per refinement iteration:
//   1. group the live buckets by owning worker (round-robin at job start),
//   2. POST /shard/iterate to every group's worker (202 + background pass),
//   3. poll GET /shard/status until every group reports its post-pass
//      BucketCheckpoints,
//   4. merge: update the committed per-bucket state, fold bucket bests into
//      the candidate set and the global best (strict <, bucket order),
//      rank + top-k cut + N/k growth exactly as synthesize() does.
//
// Fault tolerance: every bucket's committed state is the checkpoint from its
// last *completed* pass. When a worker stops answering (max_rpc_failures
// consecutive RPC errors — covers kill -9, hangs, and network loss), its
// live buckets are reassigned: a surviving worker adopts the committed
// states (POST /shard/restore) and re-runs the pass. Because a pass is a
// pure function of its entry state (see synth/shard.hpp), the re-run
// reproduces exactly what the dead worker would have produced, and the
// final winner is unchanged. A worker once declared dead is never reused —
// a slow-but-alive straggler holds state the coordinator no longer trusts.
//
// The coordinator also owns everything durable and everything global: trace
// loading + classification + segmentation (workers rebuild the segment pool
// from the spec and the coordinator cross-checks the fingerprint), the
// single-process-format checkpoint file (so `--resume` moves a job between
// distributed and local execution), the deadline watchdog, and the final
// validation re-ranking.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/job.hpp"
#include "util/cancellation.hpp"
#include "util/result.hpp"

namespace abg::dist {

struct WorkerEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

// Parse "host:port,host:port,..." (bare "port" means 127.0.0.1). The
// abagnale_serve --workers attach syntax.
util::Result<std::vector<WorkerEndpoint>> parse_worker_endpoints(const std::string& list);

// True when Coordinator::run accepts `spec`: a kPipeline job over trace
// *paths* only. serve::Service uses this to route each submitted job between
// the local engine and the worker fleet.
bool spec_is_distributable(const api::JobSpec& spec);

struct CoordinatorOptions {
  std::vector<WorkerEndpoint> workers;
  // Per-RPC wall-clock budget. Passes run async (202 + poll), so this bounds
  // individual requests, not search time.
  double rpc_timeout_s = 30.0;
  // Status-poll cadence while passes are in flight.
  double poll_interval_s = 0.02;
  // Consecutive RPC failures before a worker is declared dead.
  int max_rpc_failures = 3;
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions opts);

  // Run one job distributed. Mirrors api::Engine's result contract: errors
  // (ineligible spec, all workers lost, corrupt checkpoint) come back in
  // JobResult::status, interrupts as partial results. Eligible jobs are
  // kPipeline over trace *paths* — pre-segmented input, in-memory traces,
  // and custom DSL objects cannot be shipped to a worker by value and are
  // rejected with kInvalidArgument.
  api::JobResult run(const api::JobSpec& spec, const util::CancellationToken* cancel = nullptr);

  const CoordinatorOptions& options() const { return opts_; }

 private:
  CoordinatorOptions opts_;
};

}  // namespace abg::dist
