// Trace-distance metrics (§4.3). The synthesis loop scores a candidate
// handler by the distance between its replayed CWND series and the observed
// one; Figure 3 compares four metrics' tolerance to constant error and picks
// Dynamic Time Warping. All series here are plain value sequences; callers
// normalize CWND to packets first so magnitudes are comparable with the
// paper's reported distances.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "distance/simd.hpp"

namespace abg::distance {

enum class Metric {
  kDtw,          // alignment-based; tolerant of temporal shift
  kEuclidean,    // L2 over resampled series
  kManhattan,    // L1 over resampled series
  kFrechet,      // discrete Fréchet (worst-case alignment)
  kCorrelation,  // 1 - Pearson correlation (shape-only)
};

const char* metric_name(Metric m);
std::vector<Metric> all_metrics();

struct DistanceOptions {
  // Series longer than this are linearly resampled down before the O(n*m)
  // DP metrics run (fixed work per trace, as §3.2 requires).
  std::size_t max_points = 256;
  // Sakoe-Chiba band half-width for DTW as a fraction of the series length;
  // <= 0 means unconstrained.
  double dtw_band_frac = 0.0;
  // DTW kernel selection (kAuto: ABG_SIMD env, then CPU detection). Purely a
  // speed knob — every kernel is bit-identical (see simd.hpp).
  Simd simd = Simd::kAuto;
};

// Sentinel for "no early-abandon bound": evaluate the metric exactly.
inline constexpr double kNoAbandon = std::numeric_limits<double>::infinity();

// Linear-interpolation resample of `in` to exactly n >= 2 points.
std::vector<double> resample(std::span<const double> in, std::size_t n);

// Dynamic Time Warping distance with per-step cost |a_i - b_j|.
// band_frac <= 0 disables the Sakoe-Chiba band.
//
// `abandon_above` is a UCR-suite-style early-abandon bound: once it is
// certain the (normalized) distance will be >= abandon_above, the DP stops
// and +inf is returned. Three pruning levels cascade, cheapest first, all
// exact:
//   * an O(1) LB_Kim-style lower bound over the endpoint cells (every
//     warping path must include (0,0) and (n-1,m-1)), checked before any
//     DP row is allocated ("distance.lb_prunes"),
//   * an O(n+m) LB_Keogh envelope bound — each row's cheapest in-band step
//     cost, summed ("distance.lb_keogh_prunes"),
//   * an in-DP check — every cumulative cell value lower-bounds the final
//     path cost, so when the minimum of a finished row already meets the
//     bound, no extension can come back under it ("distance.early_abandons").
// With abandon_above = kNoAbandon the result is bit-identical to the
// unbounded evaluation.
//
// `simd` picks the DP kernel (see simd.hpp); the exact-or-+inf result is
// kernel-independent bit for bit, so callers may treat it as a pure speed
// knob. The resolved kernel is stamped on journal detail events and the
// per-kernel labeled distance.* counters.
double dtw(std::span<const double> a, std::span<const double> b, double band_frac = 0.0,
           double abandon_above = kNoAbandon, Simd simd = Simd::kAuto);

// Normalized LB_Keogh envelope lower bound on dtw(a, b, band_frac): for each
// a-row, the distance from a's value to the [min, max] envelope of b over
// that row's band window. Admissible in exact arithmetic AND under IEEE-754
// rounding (each row term is a single monotone subtraction below the row's
// true step cost, and both sides accumulate in the same row order), so
// lb_keogh() <= dtw() holds bitwise — the property the admissibility test
// asserts and the prune cascade relies on.
double lb_keogh(std::span<const double> a, std::span<const double> b, double band_frac = 0.0);

// L2 distance between series resampled to a common length, normalized by
// sqrt(length) so it is series-length independent.
double euclidean(std::span<const double> a, std::span<const double> b);

// L1 distance, length-normalized.
double manhattan(std::span<const double> a, std::span<const double> b);

// Discrete Fréchet distance.
double frechet(std::span<const double> a, std::span<const double> b);

// 1 - Pearson correlation coefficient, in [0, 2]; constant series are
// maximally distant from non-constant ones.
double correlation_distance(std::span<const double> a, std::span<const double> b);

// Dispatch with resampling applied per `opts`. Empty series yield +inf
// against non-empty ones and 0 against each other.
//
// `abandon_above` threads the early-abandon bound through to DTW (the only
// metric on the synthesis hot path); the other metrics evaluate exactly and
// ignore it. When the bound triggers, +inf is returned — callers that keep a
// running best under strict `<` comparison see identical selections.
double compute(Metric m, std::span<const double> a, std::span<const double> b,
               const DistanceOptions& opts = {}, double abandon_above = kNoAbandon);

}  // namespace abg::distance
