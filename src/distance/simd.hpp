// Runtime DTW-kernel dispatch (ISSUE 7). Three kernels compute the banded
// DTW dynamic program — a scalar reference (the oracle), an SSE2 2-lane and
// an AVX2 4-lane cache-blocked anti-diagonal wavefront — and all three are
// bit-identical on every input (asserted by the kernel-equivalence suite),
// so dispatch is purely a speed decision and never a correctness one.
//
// Selection precedence: an explicit Simd option on the call wins, then the
// ABG_SIMD environment variable (scalar|sse2|avx2|auto, parsed once), then
// CPU autodetection. Requesting an ISA the host lacks falls back down the
// chain (avx2 -> sse2 -> scalar) with a one-time warning; the resolved
// kernel is recorded in the metrics report meta ("simd_kernel") so perf
// comparisons are never silently cross-kernel.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace abg::distance {

// Numeric values are stable: they are written verbatim into journal records
// (JournalRecord::kernel) and must keep decoding old files.
enum class Simd : std::uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kAuto = 255,  // defer to ABG_SIMD, then CPU detection
};

// Resolved-kernel count (kAuto excluded).
inline constexpr std::size_t kSimdKernelCount = 3;

// "scalar" / "sse2" / "avx2" / "auto".
const char* simd_name(Simd s);

// Parse a kernel name (as in ABG_SIMD); nullopt on anything else.
std::optional<Simd> parse_simd(std::string_view name);

// True when the host CPU can run the kernel (kScalar/kAuto: always).
bool simd_available(Simd s);

// Apply the selection precedence and fall back to an available kernel.
// Returns one of kScalar/kSse2/kAvx2, never kAuto.
Simd resolve_simd(Simd requested = Simd::kAuto);

}  // namespace abg::distance
