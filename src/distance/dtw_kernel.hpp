// Internal interface between dtw() and its interchangeable DP kernels.
// Each kernel runs the same banded dynamic program in RAW path-cost units
// (the wrapper owns normalization, lower-bound cascades, counters, and
// journal emission) and must be bit-identical to dtw_dp_scalar: the per-cell
// recurrence is |a_i - b_j| + min(west, north, northwest) — an fabs, a
// 3-way min, and one add, all order-independent IEEE-754 operations — so a
// vectorized evaluation order cannot change a single bit of any cell.
//
// Early abandon differs only in granularity, never in outcome: row minima of
// the DP are non-decreasing (every cell adds a non-negative cost to a value
// from the row above or its own row), so "some row minimum >= cutoff" is
// equivalent to "the final row minimum >= cutoff". The scalar kernel checks
// every row, the wavefront kernels check each strip's carry row; both return
// +inf on exactly the same inputs.
#pragma once

#include <cstdint>
#include <span>

namespace abg::distance::detail {

// One banded DTW dynamic program, raw (unnormalized) units.
struct DtwRun {
  double raw = 0.0;            // D[n][m]; +inf when unreachable
  double abandon_bound = 0.0;  // the row/strip minimum that met the cutoff
  std::uint64_t cells = 0;     // band cells charged (completed rows/strips)
  bool abandoned = false;      // cutoff fired; raw is +inf
};

// Band columns per row, 1-based (index 0 unused), as dtw() computes them:
// j_lo[i] = max(1, center - band), j_hi[i] = min(m, center + band) with
// center = floor(i * m / n). Both are non-decreasing in i — the wavefront
// kernels rely on that to track each diagonal's valid row range with two
// monotone cursors.
struct BandSpec {
  std::span<const std::size_t> j_lo;
  std::span<const std::size_t> j_hi;
};

DtwRun dtw_dp_scalar(std::span<const double> a, std::span<const double> b,
                     const BandSpec& band, double raw_cutoff);
// x86-64 wavefront kernels; on other targets they forward to the scalar DP
// (resolve_simd never selects them there, but the symbols stay linkable).
DtwRun dtw_dp_sse2(std::span<const double> a, std::span<const double> b,
                   const BandSpec& band, double raw_cutoff);
DtwRun dtw_dp_avx2(std::span<const double> a, std::span<const double> b,
                   const BandSpec& band, double raw_cutoff);

}  // namespace abg::distance::detail
