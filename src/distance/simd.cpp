#include "distance/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "obs/report.hpp"
#include "util/log.hpp"

namespace abg::distance {

namespace {

Simd detect_best() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2")) return Simd::kAvx2;
  if (__builtin_cpu_supports("sse2")) return Simd::kSse2;
#endif
  return Simd::kScalar;
}

// ABG_SIMD, parsed once per process (the env does not change mid-run).
Simd env_simd() {
  static const Simd v = [] {
    const char* e = std::getenv("ABG_SIMD");
    if (e == nullptr || *e == '\0') return Simd::kAuto;
    const auto parsed = parse_simd(e);
    if (!parsed.has_value()) {
      ABG_WARN("ABG_SIMD=%s is not scalar|sse2|avx2|auto; using auto", e);
      return Simd::kAuto;
    }
    return *parsed;
  }();
  return v;
}

// One fallback step down the chain: avx2 -> sse2 -> scalar.
Simd step_down(Simd s) { return s == Simd::kAvx2 ? Simd::kSse2 : Simd::kScalar; }

}  // namespace

const char* simd_name(Simd s) {
  switch (s) {
    case Simd::kScalar: return "scalar";
    case Simd::kSse2: return "sse2";
    case Simd::kAvx2: return "avx2";
    case Simd::kAuto: return "auto";
  }
  return "?";
}

std::optional<Simd> parse_simd(std::string_view name) {
  if (name == "scalar") return Simd::kScalar;
  if (name == "sse2") return Simd::kSse2;
  if (name == "avx2") return Simd::kAvx2;
  if (name == "auto") return Simd::kAuto;
  return std::nullopt;
}

bool simd_available(Simd s) {
  switch (s) {
    case Simd::kScalar:
    case Simd::kAuto:
      return true;
    case Simd::kSse2:
#if defined(__x86_64__)
      return __builtin_cpu_supports("sse2") != 0;
#else
      return false;
#endif
    case Simd::kAvx2:
#if defined(__x86_64__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

Simd resolve_simd(Simd requested) {
  Simd want = requested == Simd::kAuto ? env_simd() : requested;
  Simd got = want == Simd::kAuto ? detect_best() : want;
  while (got != Simd::kScalar && !simd_available(got)) {
    if (want != Simd::kAuto) {
      ABG_WARN_ONCE("simd_fallback", "DTW kernel %s unavailable on this CPU; falling back",
                    simd_name(got));
    }
    got = step_down(got);
  }
  // Record the active kernel in the run report so abg_report can refuse
  // cross-kernel perf comparisons. Guarded: only on change, not per eval.
  static std::atomic<int> last{-1};
  const int gi = static_cast<int>(got);
  if (last.load(std::memory_order_relaxed) != gi) {
    last.store(gi, std::memory_order_relaxed);
    obs::set_report_meta("simd_kernel", simd_name(got));
  }
  return got;
}

}  // namespace abg::distance
