// The three interchangeable DTW DP kernels (see dtw_kernel.hpp for the
// bit-exactness argument). The wavefront kernels sweep anti-diagonals of the
// band in cache-blocked row strips: within one strip of kStripRows rows,
// cells on a diagonal depend only on the two previous diagonals, so a whole
// vector of rows is computed per instruction with no intra-diagonal
// dependency. The strip's entry row lives in a carry buffer; its exit row is
// extracted per diagonal and becomes the next strip's carry, and the minimum
// of a completed carry row is a cut every warping path must cross — the
// strip-granular early-abandon check that mirrors the scalar per-row one.
//
// Anti-diagonal indexing cheat sheet (d = i + j, slot r = i - i0):
//   west  (i,   j-1) -> diagonal d-1, slot r
//   north (i-1, j  ) -> diagonal d-1, slot r-1
//   nw    (i-1, j-1) -> diagonal d-2, slot r-1
// b is stored reversed (rb[t] = b[m-1-t]) so the per-diagonal gather of
// b[j-1] over ascending rows is a forward contiguous load: rb[m + i - d].
#include "distance/dtw_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace abg::distance::detail {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Strip height: three diagonal buffers of ~kStripRows doubles stay resident
// in L1 while a strip runs, whatever the series length.
constexpr std::size_t kStripRows = 128;

}  // namespace

DtwRun dtw_dp_scalar(std::span<const double> a, std::span<const double> b,
                     const BandSpec& band, double raw_cutoff) {
  const std::size_t n = a.size(), m = b.size();
  std::vector<double> prev(m + 1, kInf), cur(m + 1, kInf);
  prev[0] = 0.0;
  DtwRun run;
  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), kInf);
    const std::size_t j_lo = band.j_lo[i];
    const std::size_t j_hi = band.j_hi[i];
    double row_min = kInf;
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = std::fabs(a[i - 1] - b[j - 1]);
      const double best = std::min({prev[j], cur[j - 1], prev[j - 1]});
      if (best < kInf) cur[j] = cost + best;
      row_min = std::min(row_min, cur[j]);
    }
    if (j_hi >= j_lo) run.cells += j_hi - j_lo + 1;
    // Cumulative cell values only grow down/right (non-negative step costs),
    // so once a whole row meets the cutoff the final cost must too.
    if (std::isfinite(raw_cutoff) && row_min >= raw_cutoff) {
      run.abandoned = true;
      run.abandon_bound = row_min;
      run.raw = kInf;
      return run;
    }
    std::swap(prev, cur);
  }
  run.raw = prev[m];
  return run;
}

#if defined(__x86_64__)

// The two wavefront kernels are textually parallel; only the vector width
// and intrinsic spellings differ. Keep edits in lockstep.

DtwRun dtw_dp_sse2(std::span<const double> a, std::span<const double> b,
                   const BandSpec& band, double raw_cutoff) {
  constexpr std::size_t W = 2;  // doubles per XMM
  const std::size_t n = a.size(), m = b.size();
  DtwRun run;

  // Padded copies: W doubles of slack each side keep the final, partially
  // masked vector load of every diagonal in-bounds.
  std::vector<double> pa(n + 2 * W, 0.0), rb(m + 2 * W, 0.0);
  std::copy(a.begin(), a.end(), pa.begin() + W);
  for (std::size_t j = 0; j < m; ++j) rb[W + j] = b[m - 1 - j];
  const double* pa_base = pa.data() + W;
  const double* rb_base = rb.data() + W;

  // carry = D[i0][0..m]; row 0 of the matrix to start.
  std::vector<double> carry(m + 1, kInf), next_carry(m + 1, kInf);
  carry[0] = 0.0;

  // Three rotating diagonal buffers over strip rows, slot r = i - i0; slot 0
  // is the carry row's cell on that diagonal, refreshed scalar per diagonal.
  const std::size_t stride = kStripRows + W + 2;
  std::vector<double> bufs(3 * stride, kInf);

  const __m128d vinf = _mm_set1_pd(kInf);
  const __m128d sign = _mm_set1_pd(-0.0);
  const __m128d lane_step = _mm_set_pd(1.0, 0.0);

  for (std::size_t i0 = 0; i0 < n; i0 += kStripRows) {
    const std::size_t i1 = std::min(n, i0 + kStripRows);
    std::fill(bufs.begin(), bufs.end(), kInf);
    std::fill(next_carry.begin(), next_carry.end(), kInf);
    double* prev2 = bufs.data();
    double* prev = bufs.data() + stride;
    double* cur = bufs.data() + 2 * stride;

    const std::size_t dmin = (i0 + 1) + band.j_lo[i0 + 1];
    const std::size_t dmax = i1 + band.j_hi[i1];
    std::size_t lo_row = i0 + 1;  // min row with i + j_hi[i] >= d
    std::size_t hi_row = i0;      // max row with i + j_lo[i] <= d

    for (std::size_t d = dmin; d <= dmax; ++d) {
      double* t = prev2;
      prev2 = prev;
      prev = cur;
      cur = t;
      prev[0] = (d - 1 - i0 <= m) ? carry[d - 1 - i0] : kInf;
      prev2[0] = (d - 2 - i0 <= m) ? carry[d - 2 - i0] : kInf;

      // Both band edges are non-decreasing in the row index, so each
      // cursor advances monotonically (by at most one row per diagonal).
      while (hi_row < i1 && (hi_row + 1) + band.j_lo[hi_row + 1] <= d) ++hi_row;
      while (lo_row < i1 && lo_row + band.j_hi[lo_row] < d) ++lo_row;
      if (lo_row > hi_row || hi_row == i0 || lo_row + band.j_hi[lo_row] < d) {
        // Disconnected band: no cell of this strip sits on this diagonal.
        // Clear the whole buffer so no stale slot leaks downstream.
        std::fill(cur, cur + stride, kInf);
        continue;
      }

      const __m128d vhi = _mm_set1_pd(static_cast<double>(hi_row));
      for (std::size_t i = lo_row; i <= hi_row; i += W) {
        const std::size_t r = i - i0;
        const __m128d va = _mm_loadu_pd(pa_base + (i - 1));
        const __m128d vb = _mm_loadu_pd(rb_base + (m + i - d));
        const __m128d cost = _mm_andnot_pd(sign, _mm_sub_pd(va, vb));
        const __m128d west = _mm_loadu_pd(prev + r);
        const __m128d north = _mm_loadu_pd(prev + r - 1);
        const __m128d nw = _mm_loadu_pd(prev2 + r - 1);
        const __m128d best = _mm_min_pd(_mm_min_pd(west, north), nw);
        __m128d val = _mm_add_pd(cost, best);
        const __m128d lane_i = _mm_add_pd(_mm_set1_pd(static_cast<double>(i)), lane_step);
        const __m128d valid = _mm_cmple_pd(lane_i, vhi);
        val = _mm_or_pd(_mm_and_pd(valid, val), _mm_andnot_pd(valid, vinf));
        _mm_storeu_pd(cur + r, val);
      }
      // Fringe slots the next diagonal may read but this one's vector loop
      // did not write (the ranges move by at most one row per diagonal).
      cur[lo_row - i0 - 1] = kInf;
      cur[hi_row - i0 + 1] = kInf;
      if (hi_row == i1) next_carry[d - i1] = cur[i1 - i0];
    }

    for (std::size_t i = i0 + 1; i <= i1; ++i) {
      if (band.j_hi[i] >= band.j_lo[i]) run.cells += band.j_hi[i] - band.j_lo[i] + 1;
    }
    // A completed carry row is a cut every warping path crosses: its minimum
    // meeting the cutoff proves the final cost does too (see dtw_kernel.hpp).
    if (std::isfinite(raw_cutoff)) {
      double strip_min = kInf;
      for (std::size_t j = 0; j <= m; ++j) strip_min = std::min(strip_min, next_carry[j]);
      if (strip_min >= raw_cutoff) {
        run.abandoned = true;
        run.abandon_bound = strip_min;
        run.raw = kInf;
        return run;
      }
    }
    carry.swap(next_carry);
  }
  run.raw = carry[m];
  return run;
}

__attribute__((target("avx2"))) DtwRun dtw_dp_avx2(std::span<const double> a,
                                                   std::span<const double> b,
                                                   const BandSpec& band, double raw_cutoff) {
  constexpr std::size_t W = 4;  // doubles per YMM
  const std::size_t n = a.size(), m = b.size();
  DtwRun run;

  std::vector<double> pa(n + 2 * W, 0.0), rb(m + 2 * W, 0.0);
  std::copy(a.begin(), a.end(), pa.begin() + W);
  for (std::size_t j = 0; j < m; ++j) rb[W + j] = b[m - 1 - j];
  const double* pa_base = pa.data() + W;
  const double* rb_base = rb.data() + W;

  std::vector<double> carry(m + 1, kInf), next_carry(m + 1, kInf);
  carry[0] = 0.0;

  const std::size_t stride = kStripRows + W + 2;
  std::vector<double> bufs(3 * stride, kInf);

  const __m256d vinf = _mm256_set1_pd(kInf);
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256d lane_step = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);

  for (std::size_t i0 = 0; i0 < n; i0 += kStripRows) {
    const std::size_t i1 = std::min(n, i0 + kStripRows);
    std::fill(bufs.begin(), bufs.end(), kInf);
    std::fill(next_carry.begin(), next_carry.end(), kInf);
    double* prev2 = bufs.data();
    double* prev = bufs.data() + stride;
    double* cur = bufs.data() + 2 * stride;

    const std::size_t dmin = (i0 + 1) + band.j_lo[i0 + 1];
    const std::size_t dmax = i1 + band.j_hi[i1];
    std::size_t lo_row = i0 + 1;
    std::size_t hi_row = i0;

    for (std::size_t d = dmin; d <= dmax; ++d) {
      double* t = prev2;
      prev2 = prev;
      prev = cur;
      cur = t;
      prev[0] = (d - 1 - i0 <= m) ? carry[d - 1 - i0] : kInf;
      prev2[0] = (d - 2 - i0 <= m) ? carry[d - 2 - i0] : kInf;

      while (hi_row < i1 && (hi_row + 1) + band.j_lo[hi_row + 1] <= d) ++hi_row;
      while (lo_row < i1 && lo_row + band.j_hi[lo_row] < d) ++lo_row;
      if (lo_row > hi_row || hi_row == i0 || lo_row + band.j_hi[lo_row] < d) {
        std::fill(cur, cur + stride, kInf);
        continue;
      }

      const __m256d vhi = _mm256_set1_pd(static_cast<double>(hi_row));
      for (std::size_t i = lo_row; i <= hi_row; i += W) {
        const std::size_t r = i - i0;
        const __m256d va = _mm256_loadu_pd(pa_base + (i - 1));
        const __m256d vb = _mm256_loadu_pd(rb_base + (m + i - d));
        const __m256d cost = _mm256_andnot_pd(sign, _mm256_sub_pd(va, vb));
        const __m256d west = _mm256_loadu_pd(prev + r);
        const __m256d north = _mm256_loadu_pd(prev + r - 1);
        const __m256d nw = _mm256_loadu_pd(prev2 + r - 1);
        const __m256d best = _mm256_min_pd(_mm256_min_pd(west, north), nw);
        __m256d val = _mm256_add_pd(cost, best);
        const __m256d lane_i =
            _mm256_add_pd(_mm256_set1_pd(static_cast<double>(i)), lane_step);
        const __m256d valid = _mm256_cmp_pd(lane_i, vhi, _CMP_LE_OQ);
        val = _mm256_blendv_pd(vinf, val, valid);
        _mm256_storeu_pd(cur + r, val);
      }
      cur[lo_row - i0 - 1] = kInf;
      cur[hi_row - i0 + 1] = kInf;
      if (hi_row == i1) next_carry[d - i1] = cur[i1 - i0];
    }

    for (std::size_t i = i0 + 1; i <= i1; ++i) {
      if (band.j_hi[i] >= band.j_lo[i]) run.cells += band.j_hi[i] - band.j_lo[i] + 1;
    }
    if (std::isfinite(raw_cutoff)) {
      double strip_min = kInf;
      for (std::size_t j = 0; j <= m; ++j) strip_min = std::min(strip_min, next_carry[j]);
      if (strip_min >= raw_cutoff) {
        run.abandoned = true;
        run.abandon_bound = strip_min;
        run.raw = kInf;
        return run;
      }
    }
    carry.swap(next_carry);
  }
  run.raw = carry[m];
  return run;
}

#else  // !__x86_64__

DtwRun dtw_dp_sse2(std::span<const double> a, std::span<const double> b,
                   const BandSpec& band, double raw_cutoff) {
  return dtw_dp_scalar(a, b, band, raw_cutoff);
}

DtwRun dtw_dp_avx2(std::span<const double> a, std::span<const double> b,
                   const BandSpec& band, double raw_cutoff) {
  return dtw_dp_scalar(a, b, band, raw_cutoff);
}

#endif

}  // namespace abg::distance::detail
