#include "distance/distance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/journal.hpp"
#include "obs/registry.hpp"

namespace abg::distance {

namespace {

// One shared handle per DTW counter (previously three function-local-static
// registrations scattered over the prune branches), all under the distance.*
// namespace the cells/evals series already use.
struct DtwCounters {
  obs::Counter& evals;
  obs::Counter& cells;
  obs::Counter& lb_prunes;
  obs::Counter& early_abandons;
};

DtwCounters& dtw_counters() {
  static DtwCounters* c = [] {
    obs::describe("distance.dtw_evals", "DTW evaluations started (prunes included)");
    obs::describe("distance.dtw_cells", "band-aware DP cells actually visited");
    obs::describe("distance.lb_prunes", "DTW evals pruned by the LB_Kim endpoint bound");
    obs::describe("distance.early_abandons", "DTW evals abandoned before the DP completed");
    return new DtwCounters{
        obs::counter("distance.dtw_evals"), obs::counter("distance.dtw_cells"),
        obs::counter("distance.lb_prunes"), obs::counter("distance.early_abandons")};
  }();
  return *c;
}

}  // namespace

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::kDtw: return "dtw";
    case Metric::kEuclidean: return "euclidean";
    case Metric::kManhattan: return "manhattan";
    case Metric::kFrechet: return "frechet";
    case Metric::kCorrelation: return "correlation";
  }
  return "?";
}

std::vector<Metric> all_metrics() {
  return {Metric::kDtw, Metric::kEuclidean, Metric::kManhattan, Metric::kFrechet,
          Metric::kCorrelation};
}

std::vector<double> resample(std::span<const double> in, std::size_t n) {
  std::vector<double> out(n);
  if (in.empty()) return out;
  if (in.size() == 1) {
    std::fill(out.begin(), out.end(), in[0]);
    return out;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double pos = static_cast<double>(i) * static_cast<double>(in.size() - 1) /
                       static_cast<double>(n - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, in.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out[i] = in[lo] * (1.0 - frac) + in[hi] * frac;
  }
  return out;
}

double dtw(std::span<const double> a, std::span<const double> b, double band_frac,
           double abandon_above) {
  const std::size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return n == m ? 0.0 : std::numeric_limits<double>::infinity();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  DtwCounters& c = dtw_counters();
  // Raw-to-normalized scale for this pair (the return value and every bound
  // are in d / (n+m) * 2 units).
  const double norm = 2.0 / static_cast<double>(n + m);
  // The bound arrives in normalized units; the DP works in raw path-cost
  // units, so compare against the denormalized cutoff.
  const double raw_cutoff = abandon_above / norm;
  if (raw_cutoff <= 0.0) {
    // Nothing can beat a non-positive bound: costs are non-negative.
    c.evals.add();
    c.lb_prunes.add();
    c.early_abandons.add();
    if (obs::journal_enabled()) {
      obs::journal_record_distance(obs::JournalKind::kLbPrune, abandon_above, 0);
    }
    return kInf;
  }
  if (std::isfinite(raw_cutoff)) {
    // LB_Kim-style endpoint bound: every warping path includes both corner
    // cells (they coincide when n == m == 1).
    const double lb = std::fabs(a[0] - b[0]) +
                      (n + m > 2 ? std::fabs(a[n - 1] - b[m - 1]) : 0.0);
    if (lb >= raw_cutoff) {
      c.evals.add();
      c.lb_prunes.add();
      c.early_abandons.add();
      if (obs::journal_enabled()) {
        obs::journal_record_distance(obs::JournalKind::kLbPrune, lb * norm, 0);
      }
      return kInf;
    }
  }
  // Rolling two-row DP. Band half-width in columns.
  const std::size_t band =
      band_frac > 0 ? std::max<std::size_t>(
                          1, static_cast<std::size_t>(band_frac * static_cast<double>(m)))
                    : m + n;
  std::vector<double> prev(m + 1, kInf), cur(m + 1, kInf);
  prev[0] = 0.0;
  std::uint64_t cells = 0;  // DP cells actually visited (band-aware)
  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), kInf);
    // Band around the diagonal j ~ i * m / n.
    const auto center = static_cast<std::size_t>(static_cast<double>(i) *
                                                 static_cast<double>(m) / static_cast<double>(n));
    const std::size_t j_lo = center > band ? center - band : 1;
    const std::size_t j_hi = std::min(m, center + band);
    double row_min = kInf;
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = std::fabs(a[i - 1] - b[j - 1]);
      const double best = std::min({prev[j], cur[j - 1], prev[j - 1]});
      if (best < kInf) cur[j] = cost + best;
      row_min = std::min(row_min, cur[j]);
    }
    if (j_hi >= j_lo) cells += j_hi - j_lo + 1;
    // Cumulative cell values only grow down/right (non-negative step costs),
    // so once a whole row meets the cutoff the final cost must too.
    if (std::isfinite(raw_cutoff) && row_min >= raw_cutoff) {
      c.evals.add();
      c.cells.add(cells);
      c.early_abandons.add();
      if (obs::journal_enabled()) {
        obs::journal_record_distance(obs::JournalKind::kRowAbandon, row_min * norm, cells);
      }
      return kInf;
    }
    std::swap(prev, cur);
  }
  // One relaxed add per eval, not per cell: counting stays off the DP loop.
  c.evals.add();
  c.cells.add(cells);
  // Normalize by path length scale so distances are comparable across
  // segment sizes.
  const double d = prev[m];
  const double nd = std::isfinite(d) ? d * norm : kInf;
  if (obs::journal_enabled()) {
    obs::journal_record_distance(obs::JournalKind::kDtwEval, nd, cells);
  }
  return nd;
}

namespace {

// Resample both series to the shorter of (max(len_a, len_b), cap).
std::pair<std::vector<double>, std::vector<double>> common_grid(std::span<const double> a,
                                                                std::span<const double> b) {
  const std::size_t n = std::max<std::size_t>(2, std::max(a.size(), b.size()));
  return {resample(a, n), resample(b, n)};
}

}  // namespace

double euclidean(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    return a.size() == b.size() ? 0.0 : std::numeric_limits<double>::infinity();
  }
  const auto [ra, rb] = common_grid(a, b);
  double sum = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    const double d = ra[i] - rb[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(ra.size()));
}

double manhattan(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    return a.size() == b.size() ? 0.0 : std::numeric_limits<double>::infinity();
  }
  const auto [ra, rb] = common_grid(a, b);
  double sum = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) sum += std::fabs(ra[i] - rb[i]);
  return sum / static_cast<double>(ra.size());
}

double frechet(std::span<const double> a, std::span<const double> b) {
  const std::size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return n == m ? 0.0 : std::numeric_limits<double>::infinity();
  // DP over the coupling: ca(i,j) = max(|a_i-b_j|, min(ca(i-1,j), ca(i,j-1),
  // ca(i-1,j-1))). Rolling rows.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> prev(m, kInf), cur(m, kInf);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const double cost = std::fabs(a[i] - b[j]);
      double reach;
      if (i == 0 && j == 0) reach = cost;
      else if (i == 0) reach = std::max(cur[j - 1], cost);
      else if (j == 0) reach = std::max(prev[j], cost);
      else reach = std::max(std::min({prev[j], cur[j - 1], prev[j - 1]}), cost);
      cur[j] = reach;
    }
    std::swap(prev, cur);
  }
  return prev[m - 1];
}

double correlation_distance(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    return a.size() == b.size() ? 0.0 : std::numeric_limits<double>::infinity();
  }
  const auto [ra, rb] = common_grid(a, b);
  const auto n = static_cast<double>(ra.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    ma += ra[i];
    mb += rb[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    cov += (ra[i] - ma) * (rb[i] - mb);
    va += (ra[i] - ma) * (ra[i] - ma);
    vb += (rb[i] - mb) * (rb[i] - mb);
  }
  if (va <= 0.0 && vb <= 0.0) return 0.0;  // both constant: identical shape
  if (va <= 0.0 || vb <= 0.0) return 2.0;  // one constant: maximally distant
  return 1.0 - cov / std::sqrt(va * vb);
}

double compute(Metric m, std::span<const double> a, std::span<const double> b,
               const DistanceOptions& opts, double abandon_above) {
  static auto& c_evals = obs::counter("distance.evals");
  c_evals.add();
  std::vector<double> sa, sb;
  std::span<const double> ua = a, ub = b;
  if (a.size() > opts.max_points) {
    sa = resample(a, opts.max_points);
    ua = sa;
  }
  if (b.size() > opts.max_points) {
    sb = resample(b, opts.max_points);
    ub = sb;
  }
  switch (m) {
    case Metric::kDtw: return dtw(ua, ub, opts.dtw_band_frac, abandon_above);
    case Metric::kEuclidean: return euclidean(ua, ub);
    case Metric::kManhattan: return manhattan(ua, ub);
    case Metric::kFrechet: return frechet(ua, ub);
    case Metric::kCorrelation: return correlation_distance(ua, ub);
  }
  return 0.0;
}

}  // namespace abg::distance
