#include "distance/distance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "distance/dtw_kernel.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"

namespace abg::distance {

namespace {

// One shared handle per DTW counter (previously three function-local-static
// registrations scattered over the prune branches), all under the distance.*
// namespace the cells/evals series already use.
struct DtwCounters {
  obs::Counter& evals;
  obs::Counter& cells;
  obs::Counter& lb_prunes;
  obs::Counter& lb_keogh_prunes;
  obs::Counter& early_abandons;
};

DtwCounters& dtw_counters() {
  static DtwCounters* c = [] {
    obs::describe("distance.dtw_evals", "DTW evaluations started (prunes included)");
    obs::describe("distance.dtw_cells", "band-aware DP cells actually visited");
    obs::describe("distance.lb_prunes", "DTW evals pruned by the LB_Kim endpoint bound");
    obs::describe("distance.lb_keogh_prunes", "DTW evals pruned by the LB_Keogh envelope bound");
    obs::describe("distance.early_abandons", "DTW evals abandoned before the DP completed");
    return new DtwCounters{
        obs::counter("distance.dtw_evals"), obs::counter("distance.dtw_cells"),
        obs::counter("distance.lb_prunes"), obs::counter("distance.lb_keogh_prunes"),
        obs::counter("distance.early_abandons")};
  }();
  return *c;
}

// Per-kernel labeled provenance: which kernel did the DP work. Indexed by the
// resolved Simd value (never kAuto).
struct KernelCounters {
  obs::Counter& evals;
  obs::Counter& cells;
};

KernelCounters& kernel_counters(Simd k) {
  static KernelCounters* per = [] {
    static KernelCounters storage[kSimdKernelCount] = {
        {obs::counter("distance.dtw_evals", {{"kernel", "scalar"}}),
         obs::counter("distance.dtw_cells", {{"kernel", "scalar"}})},
        {obs::counter("distance.dtw_evals", {{"kernel", "sse2"}}),
         obs::counter("distance.dtw_cells", {{"kernel", "sse2"}})},
        {obs::counter("distance.dtw_evals", {{"kernel", "avx2"}}),
         obs::counter("distance.dtw_cells", {{"kernel", "avx2"}})},
    };
    return storage;
  }();
  return per[static_cast<std::size_t>(k)];
}

// Band columns for every row (1-based; [0] unused), shared by LB_Keogh and
// the DP kernels so a single definition of the band exists per call.
void fill_band(std::size_t n, std::size_t m, double band_frac, std::vector<std::size_t>* j_lo,
               std::vector<std::size_t>* j_hi) {
  const std::size_t band =
      band_frac > 0 ? std::max<std::size_t>(
                          1, static_cast<std::size_t>(band_frac * static_cast<double>(m)))
                    : m + n;
  j_lo->resize(n + 1);
  j_hi->resize(n + 1);
  for (std::size_t i = 1; i <= n; ++i) {
    // Band around the diagonal j ~ i * m / n.
    const auto center = static_cast<std::size_t>(static_cast<double>(i) *
                                                 static_cast<double>(m) / static_cast<double>(n));
    (*j_lo)[i] = center > band ? center - band : 1;
    (*j_hi)[i] = std::min(m, center + band);
  }
}

// Raw-units LB_Keogh: every warping path visits each row i at some in-band
// column j, paying at least a_i's distance to the [min, max] envelope of b
// over that window. Window edges are non-decreasing in i, so two monotonic
// deques give O(n + m) total. The partial sum is already a lower bound, so
// the scan exits as soon as it meets the cutoff.
double lb_keogh_raw(std::span<const double> a, std::span<const double> b,
                    std::span<const std::size_t> j_lo, std::span<const std::size_t> j_hi,
                    double raw_cutoff) {
  const std::size_t n = a.size();
  std::vector<std::size_t> qmin, qmax;  // deques of b indices; front = extreme
  qmin.reserve(b.size());
  qmax.reserve(b.size());
  std::size_t hmin = 0, hmax = 0;  // head offsets
  std::size_t pushed = 0;          // b[0, pushed) admitted to the deques
  double lb = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    for (; pushed < j_hi[i]; ++pushed) {
      const double v = b[pushed];
      while (qmax.size() > hmax && b[qmax.back()] <= v) qmax.pop_back();
      qmax.push_back(pushed);
      while (qmin.size() > hmin && b[qmin.back()] >= v) qmin.pop_back();
      qmin.push_back(pushed);
    }
    const std::size_t wlo = j_lo[i] - 1;
    while (qmax[hmax] < wlo) ++hmax;
    while (qmin[hmin] < wlo) ++hmin;
    const double upper = b[qmax[hmax]];
    const double lower = b[qmin[hmin]];
    const double v = a[i - 1];
    if (v > upper) {
      lb += v - upper;
    } else if (v < lower) {
      lb += lower - v;
    }
    if (lb >= raw_cutoff) return lb;
  }
  return lb;
}

}  // namespace

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::kDtw: return "dtw";
    case Metric::kEuclidean: return "euclidean";
    case Metric::kManhattan: return "manhattan";
    case Metric::kFrechet: return "frechet";
    case Metric::kCorrelation: return "correlation";
  }
  return "?";
}

std::vector<Metric> all_metrics() {
  return {Metric::kDtw, Metric::kEuclidean, Metric::kManhattan, Metric::kFrechet,
          Metric::kCorrelation};
}

std::vector<double> resample(std::span<const double> in, std::size_t n) {
  std::vector<double> out(n);
  if (in.empty()) return out;
  if (in.size() == 1) {
    std::fill(out.begin(), out.end(), in[0]);
    return out;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double pos = static_cast<double>(i) * static_cast<double>(in.size() - 1) /
                       static_cast<double>(n - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, in.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out[i] = in[lo] * (1.0 - frac) + in[hi] * frac;
  }
  return out;
}

double dtw(std::span<const double> a, std::span<const double> b, double band_frac,
           double abandon_above, Simd simd) {
  const std::size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return n == m ? 0.0 : std::numeric_limits<double>::infinity();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  DtwCounters& c = dtw_counters();
  const Simd kern = resolve_simd(simd);
  const auto kern_byte = static_cast<std::uint8_t>(kern);
  // Raw-to-normalized scale for this pair (the return value and every bound
  // are in d / (n+m) * 2 units).
  const double norm = 2.0 / static_cast<double>(n + m);
  // The bound arrives in normalized units; the DP works in raw path-cost
  // units, so compare against the denormalized cutoff.
  const double raw_cutoff = abandon_above / norm;
  if (raw_cutoff <= 0.0) {
    // Nothing can beat a non-positive bound: costs are non-negative.
    c.evals.add();
    c.lb_prunes.add();
    c.early_abandons.add();
    if (obs::journal_enabled()) {
      obs::journal_record_distance(obs::JournalKind::kLbPrune, abandon_above, 0, kern_byte);
    }
    return kInf;
  }
  if (std::isfinite(raw_cutoff)) {
    // LB_Kim-style endpoint bound: every warping path includes both corner
    // cells (they coincide when n == m == 1).
    const double lb = std::fabs(a[0] - b[0]) +
                      (n + m > 2 ? std::fabs(a[n - 1] - b[m - 1]) : 0.0);
    if (lb >= raw_cutoff) {
      c.evals.add();
      c.lb_prunes.add();
      c.early_abandons.add();
      if (obs::journal_enabled()) {
        obs::journal_record_distance(obs::JournalKind::kLbPrune, lb * norm, 0, kern_byte);
      }
      return kInf;
    }
  }
  // One band definition per call, shared by LB_Keogh and the DP kernel.
  std::vector<std::size_t> j_lo, j_hi;
  fill_band(n, m, band_frac, &j_lo, &j_hi);
  if (std::isfinite(raw_cutoff)) {
    // LB_Keogh envelope cascade: O(n+m), runs only when LB_Kim let the pair
    // through and a finite bound exists to beat.
    const double lb = lb_keogh_raw(a, b, j_lo, j_hi, raw_cutoff);
    if (lb >= raw_cutoff) {
      c.evals.add();
      c.lb_keogh_prunes.add();
      c.early_abandons.add();
      if (obs::journal_enabled()) {
        obs::journal_record_distance(obs::JournalKind::kLbKeoghPrune, lb * norm, 0, kern_byte);
      }
      return kInf;
    }
  }
  const detail::BandSpec band{j_lo, j_hi};
  detail::DtwRun run;
  switch (kern) {
    case Simd::kAvx2: run = detail::dtw_dp_avx2(a, b, band, raw_cutoff); break;
    case Simd::kSse2: run = detail::dtw_dp_sse2(a, b, band, raw_cutoff); break;
    default: run = detail::dtw_dp_scalar(a, b, band, raw_cutoff); break;
  }
  // One relaxed add per eval, not per cell: counting stays off the DP loop.
  c.evals.add();
  c.cells.add(run.cells);
  KernelCounters& kc = kernel_counters(kern);
  kc.evals.add();
  kc.cells.add(run.cells);
  if (run.abandoned) {
    c.early_abandons.add();
    if (obs::journal_enabled()) {
      obs::journal_record_distance(obs::JournalKind::kRowAbandon, run.abandon_bound * norm,
                                   run.cells, kern_byte);
    }
    return kInf;
  }
  // Normalize by path length scale so distances are comparable across
  // segment sizes.
  const double d = run.raw;
  const double nd = std::isfinite(d) ? d * norm : kInf;
  if (obs::journal_enabled()) {
    obs::journal_record_distance(obs::JournalKind::kDtwEval, nd, run.cells, kern_byte);
  }
  return nd;
}

double lb_keogh(std::span<const double> a, std::span<const double> b, double band_frac) {
  const std::size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return 0.0;
  std::vector<std::size_t> j_lo, j_hi;
  fill_band(n, m, band_frac, &j_lo, &j_hi);
  const double norm = 2.0 / static_cast<double>(n + m);
  return lb_keogh_raw(a, b, j_lo, j_hi, std::numeric_limits<double>::infinity()) * norm;
}

namespace {

// Resample both series to the shorter of (max(len_a, len_b), cap).
std::pair<std::vector<double>, std::vector<double>> common_grid(std::span<const double> a,
                                                                std::span<const double> b) {
  const std::size_t n = std::max<std::size_t>(2, std::max(a.size(), b.size()));
  return {resample(a, n), resample(b, n)};
}

}  // namespace

double euclidean(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    return a.size() == b.size() ? 0.0 : std::numeric_limits<double>::infinity();
  }
  const auto [ra, rb] = common_grid(a, b);
  double sum = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    const double d = ra[i] - rb[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(ra.size()));
}

double manhattan(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    return a.size() == b.size() ? 0.0 : std::numeric_limits<double>::infinity();
  }
  const auto [ra, rb] = common_grid(a, b);
  double sum = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) sum += std::fabs(ra[i] - rb[i]);
  return sum / static_cast<double>(ra.size());
}

double frechet(std::span<const double> a, std::span<const double> b) {
  const std::size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return n == m ? 0.0 : std::numeric_limits<double>::infinity();
  // DP over the coupling: ca(i,j) = max(|a_i-b_j|, min(ca(i-1,j), ca(i,j-1),
  // ca(i-1,j-1))). Rolling rows.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> prev(m, kInf), cur(m, kInf);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const double cost = std::fabs(a[i] - b[j]);
      double reach;
      if (i == 0 && j == 0) reach = cost;
      else if (i == 0) reach = std::max(cur[j - 1], cost);
      else if (j == 0) reach = std::max(prev[j], cost);
      else reach = std::max(std::min({prev[j], cur[j - 1], prev[j - 1]}), cost);
      cur[j] = reach;
    }
    std::swap(prev, cur);
  }
  return prev[m - 1];
}

double correlation_distance(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    return a.size() == b.size() ? 0.0 : std::numeric_limits<double>::infinity();
  }
  const auto [ra, rb] = common_grid(a, b);
  const auto n = static_cast<double>(ra.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    ma += ra[i];
    mb += rb[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    cov += (ra[i] - ma) * (rb[i] - mb);
    va += (ra[i] - ma) * (ra[i] - ma);
    vb += (rb[i] - mb) * (rb[i] - mb);
  }
  if (va <= 0.0 && vb <= 0.0) return 0.0;  // both constant: identical shape
  if (va <= 0.0 || vb <= 0.0) return 2.0;  // one constant: maximally distant
  return 1.0 - cov / std::sqrt(va * vb);
}

double compute(Metric m, std::span<const double> a, std::span<const double> b,
               const DistanceOptions& opts, double abandon_above) {
  static auto& c_evals = obs::counter("distance.evals");
  c_evals.add();
  std::vector<double> sa, sb;
  std::span<const double> ua = a, ub = b;
  if (a.size() > opts.max_points) {
    sa = resample(a, opts.max_points);
    ua = sa;
  }
  if (b.size() > opts.max_points) {
    sb = resample(b, opts.max_points);
    ub = sb;
  }
  switch (m) {
    case Metric::kDtw: return dtw(ua, ub, opts.dtw_band_frac, abandon_above, opts.simd);
    case Metric::kEuclidean: return euclidean(ua, ub);
    case Metric::kManhattan: return manhattan(ua, ub);
    case Metric::kFrechet: return frechet(ua, ub);
    case Metric::kCorrelation: return correlation_distance(ua, ub);
  }
  return 0.0;
}

}  // namespace abg::distance
