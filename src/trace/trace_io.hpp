// CSV persistence for traces, so collected trace banks can be saved and
// reloaded by examples/benchmarks without re-running the simulator.
//
// Ingestion is strict (ISSUE 3): numeric fields are parsed with
// full-consumption checks (no atof silent zeros), the column header must
// match, and the parsed trace passes trace/validate before it is returned.
// Failures come back as a tagged util::Result instead of std::nullopt, and
// LoadOptions::repair turns recoverably-bad rows into counted drops/clamps.
#pragma once

#include <string>

#include "trace/trace.hpp"
#include "trace/validate.hpp"
#include "util/result.hpp"

namespace abg::trace {

struct LoadOptions {
  // Forwarded to validate_trace: drop/clamp bad samples (counting them in
  // "trace.rows_dropped"/"trace.rows_repaired") instead of failing the load.
  bool repair = false;
};

// CSV layout: two header lines (metadata, column names) then one row per
// ACK sample.
std::string to_csv(const Trace& trace);
util::Result<Trace> from_csv(const std::string& csv, const LoadOptions& opts = {});

util::Status save_csv(const Trace& trace, const std::string& path);
util::Result<Trace> load_csv(const std::string& path, const LoadOptions& opts = {});

}  // namespace abg::trace
