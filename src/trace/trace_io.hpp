// CSV persistence for traces, so collected trace banks can be saved and
// reloaded by examples/benchmarks without re-running the simulator.
#pragma once

#include <optional>
#include <string>

#include "trace/trace.hpp"

namespace abg::trace {

// CSV layout: two header lines (metadata, column names) then one row per
// ACK sample.
std::string to_csv(const Trace& trace);
std::optional<Trace> from_csv(const std::string& csv);

bool save_csv(const Trace& trace, const std::string& path);
std::optional<Trace> load_csv(const std::string& path);

}  // namespace abg::trace
