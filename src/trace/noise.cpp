#include "trace/noise.hpp"

#include <algorithm>

namespace abg::trace {

Trace add_noise(const Trace& clean, const NoiseConfig& cfg, util::Rng& rng) {
  Trace noisy;
  noisy.cca_name = clean.cca_name;
  noisy.env = clean.env;
  noisy.samples.reserve(clean.samples.size());
  double prev_time = -1.0;
  for (const auto& s : clean.samples) {
    if (cfg.drop_sample_prob > 0 && rng.chance(cfg.drop_sample_prob)) continue;
    AckSample n = s;
    if (cfg.rtt_jitter_frac > 0) {
      const double f = 1.0 + rng.uniform(-cfg.rtt_jitter_frac, cfg.rtt_jitter_frac);
      n.sig.rtt = std::max(n.sig.rtt * f, 1e-6);
    }
    if (cfg.cwnd_noise_frac > 0) {
      const double f = 1.0 + rng.uniform(-cfg.cwnd_noise_frac, cfg.cwnd_noise_frac);
      n.cwnd_after = std::max(n.cwnd_after * f, n.sig.mss);
    }
    if (cfg.time_jitter_s > 0) {
      n.sig.now += rng.uniform(-cfg.time_jitter_s, cfg.time_jitter_s);
      n.sig.now = std::max(n.sig.now, prev_time + 1e-9);
    }
    prev_time = n.sig.now;
    noisy.samples.push_back(n);
  }
  return noisy;
}

}  // namespace abg::trace
