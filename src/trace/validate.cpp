#include "trace/validate.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "obs/registry.hpp"
#include "util/log.hpp"

namespace abg::trace {

namespace {

using util::Status;
using util::StatusCode;

Status invalid(std::size_t row, const char* what) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "sample %zu: %s", row, what);
  return Status(StatusCode::kInvalidTrace, buf);
}

bool all_finite(const AckSample& s) {
  // Enumerated explicitly so a future non-double member cannot be silently
  // swept by pointer arithmetic over the struct.
  const cca::Signals& g = s.sig;
  const double fields[] = {g.now,      g.mss,          g.cwnd,       g.inflight, g.acked_bytes,
                           g.rtt,      g.srtt,         g.min_rtt,    g.max_rtt,  g.ack_rate,
                           g.rtt_gradient, g.time_since_loss, g.cwnd_at_loss, s.cwnd_after,
                           s.ack_seq};
  for (double f : fields) {
    if (!std::isfinite(f)) return false;
  }
  return true;
}

// Fields that must be non-negative; corruption here makes the whole sample
// untrustworthy (window state, clocks, RTT estimates).
bool core_fields_nonnegative(const AckSample& s) {
  const cca::Signals& g = s.sig;
  return g.now >= 0 && g.mss >= 0 && g.cwnd >= 0 && g.inflight >= 0 && g.rtt >= 0 &&
         g.srtt >= 0 && g.min_rtt >= 0 && g.max_rtt >= 0 && g.cwnd_at_loss >= 0 &&
         s.cwnd_after >= 0;
}

// Byte/rate counters that plausibly jitter below zero under measurement
// noise: repair mode clamps these to 0 instead of dropping the sample.
// (rtt_gradient is legitimately signed and is not checked.)
bool clampable_fields_nonnegative(const AckSample& s) {
  return s.sig.acked_bytes >= 0 && s.sig.ack_rate >= 0 && s.sig.time_since_loss >= 0 &&
         s.ack_seq >= 0;
}

void clamp_fields(AckSample& s) {
  if (s.sig.acked_bytes < 0) s.sig.acked_bytes = 0;
  if (s.sig.ack_rate < 0) s.sig.ack_rate = 0;
  if (s.sig.time_since_loss < 0) s.sig.time_since_loss = 0;
  if (s.ack_seq < 0) s.ack_seq = 0;
}

Status validate_environment(const Environment& env) {
  const double fields[] = {env.bandwidth_bps, env.rtt_s,      env.buffer_bytes,
                           env.random_loss,   env.duration_s, env.cross_traffic_bps};
  for (double f : fields) {
    if (!std::isfinite(f)) {
      return Status(StatusCode::kNumericError, "environment metadata is non-finite");
    }
  }
  if (env.bandwidth_bps <= 0) {
    return Status(StatusCode::kInvalidTrace, "environment bandwidth must be positive");
  }
  if (env.rtt_s <= 0) {
    return Status(StatusCode::kInvalidTrace, "environment RTT must be positive");
  }
  if (env.buffer_bytes < 0 || env.duration_s < 0 || env.cross_traffic_bps < 0) {
    return Status(StatusCode::kInvalidTrace, "environment sizes must be non-negative");
  }
  if (env.random_loss < 0 || env.random_loss > 1) {
    return Status(StatusCode::kInvalidTrace, "environment loss probability outside [0,1]");
  }
  return Status::ok();
}

}  // namespace

util::Status validate_trace(Trace& t, const ValidateOptions& opts, ValidateStats* stats) {
  static auto& c_dropped = obs::counter("trace.rows_dropped");
  static auto& c_repaired = obs::counter("trace.rows_repaired");

  if (auto st = validate_environment(t.env); !st.is_ok()) return st;
  if (t.samples.empty()) {
    return Status(StatusCode::kInvalidTrace, "trace has no samples");
  }

  std::vector<AckSample> kept;
  if (opts.repair) kept.reserve(t.samples.size());
  double prev_now = -std::numeric_limits<double>::infinity();
  std::size_t dropped = 0, repaired = 0;

  for (std::size_t i = 0; i < t.samples.size(); ++i) {
    AckSample s = t.samples[i];
    const char* reason = nullptr;
    StatusCode code = StatusCode::kInvalidTrace;
    if (!all_finite(s)) {
      reason = "non-finite field";
      code = StatusCode::kNumericError;
    } else if (!core_fields_nonnegative(s)) {
      reason = "negative window/clock/RTT field";
    } else if (s.sig.now < prev_now) {
      reason = "non-monotonic timestamp";
    }
    if (reason != nullptr) {
      if (!opts.repair) return Status(code, invalid(i, reason).message());
      // Rate-limited: a thoroughly corrupted multi-MB trace would otherwise
      // emit one warning per ACK row.
      ABG_WARN_EVERY_N(1000, "repair: dropping sample %zu (%s)", i, reason);
      ++dropped;
      continue;
    }
    if (!clampable_fields_nonnegative(s)) {
      if (!opts.repair) return invalid(i, "negative byte/rate counter");
      ABG_WARN_EVERY_N(1000, "repair: clamping negative byte/rate counter at sample %zu", i);
      clamp_fields(s);
      ++repaired;
    }
    prev_now = s.sig.now;
    if (opts.repair) kept.push_back(std::move(s));
  }

  if (opts.repair) {
    t.samples = std::move(kept);
    c_dropped.add(dropped);
    c_repaired.add(repaired);
    if (stats != nullptr) {
      stats->rows_dropped += dropped;
      stats->rows_repaired += repaired;
    }
    if (t.samples.empty()) {
      return Status(StatusCode::kInvalidTrace, "no valid samples after repair");
    }
  }
  return Status::ok();
}

}  // namespace abg::trace
