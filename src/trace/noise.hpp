// Measurement-noise injection. Traces collected "in the wild" differ from
// clean simulator output: the vantage point misses ACKs, delays are jittered,
// and the inferred CWND is only approximate (§2.2, "Noise"). This module
// perturbs clean traces so the pipeline's noise tolerance can be evaluated —
// the setting where a decision-problem synthesizer (Mister880) breaks down.
#pragma once

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace abg::trace {

struct NoiseConfig {
  double drop_sample_prob = 0.0;   // fraction of ACK samples unobserved
  double rtt_jitter_frac = 0.0;    // multiplicative RTT noise, uniform +/- frac
  double cwnd_noise_frac = 0.0;    // multiplicative CWND estimate noise
  double time_jitter_s = 0.0;      // additive timestamp jitter (uniform +/-)
};

// Returns a perturbed copy of the trace. Monotonicity of timestamps is
// preserved (jitter is clamped against the previous sample).
Trace add_noise(const Trace& clean, const NoiseConfig& cfg, util::Rng& rng);

}  // namespace abg::trace
