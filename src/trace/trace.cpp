#include "trace/trace.hpp"

#include <cstdio>

namespace abg::trace {

std::string Environment::label() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.1fMbps_%.0fms_loss%.3f_seed%llu", bandwidth_bps / 1e6,
                rtt_s * 1e3, random_loss, static_cast<unsigned long long>(seed));
  return buf;
}

std::vector<double> Trace::cwnd_series() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.cwnd_after);
  return out;
}

std::vector<double> Trace::time_series() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.sig.now);
  return out;
}

std::vector<double> Segment::cwnd_series() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.cwnd_after);
  return out;
}

std::vector<double> Segment::time_series() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.sig.now);
  return out;
}

Trace trim_warmup(const Trace& t, double warmup_s) {
  Trace out;
  out.cca_name = t.cca_name;
  out.env = t.env;
  for (const auto& s : t.samples) {
    if (s.sig.now >= warmup_s) out.samples.push_back(s);
  }
  return out;
}

std::vector<std::size_t> infer_loss_events(const Trace& trace) {
  std::vector<std::size_t> events;
  int dup_run = 0;
  for (std::size_t i = 0; i < trace.samples.size(); ++i) {
    const auto& s = trace.samples[i];
    if (s.is_dup) {
      ++dup_run;
      if (dup_run == 3) events.push_back(i);  // triple-duplicate-ACK
    } else {
      dup_run = 0;
    }
  }
  return events;
}

namespace {

std::vector<std::size_t> loss_points(const Trace& trace, bool use_recorded) {
  if (!use_recorded) return infer_loss_events(trace);
  std::vector<std::size_t> events;
  for (std::size_t i = 0; i < trace.samples.size(); ++i) {
    if (trace.samples[i].loss_event) events.push_back(i);
  }
  return events;
}

}  // namespace

std::vector<Segment> segment_trace(const Trace& trace, std::size_t min_samples,
                                   bool use_recorded_events) {
  std::vector<Segment> segments;
  const auto events = loss_points(trace, use_recorded_events);
  std::size_t start = 0;
  auto flush = [&](std::size_t end) {  // [start, end)
    if (end - start >= min_samples) {
      Segment seg;
      seg.cca_name = trace.cca_name;
      seg.env = trace.env;
      seg.first_index = start;
      seg.samples.assign(trace.samples.begin() + static_cast<std::ptrdiff_t>(start),
                         trace.samples.begin() + static_cast<std::ptrdiff_t>(end));
      segments.push_back(std::move(seg));
    }
  };
  for (std::size_t e : events) {
    flush(e);
    start = e + 1;
  }
  flush(trace.samples.size());
  return segments;
}

std::vector<Segment> segment_all(const std::vector<Trace>& traces, std::size_t min_samples,
                                 bool skip_first) {
  std::vector<Segment> all;
  for (const auto& t : traces) {
    auto segs = segment_trace(t, min_samples);
    for (std::size_t i = skip_first && segs.size() > 1 ? 1 : 0; i < segs.size(); ++i) {
      all.push_back(std::move(segs[i]));
    }
  }
  return all;
}

}  // namespace abg::trace
