// Strict ingestion validation (and opt-in repair) for traces arriving from
// outside the simulator — CSV files, externally converted pcaps, fuzzed
// inputs. The synthesis core assumes finite, positively-sized windows and a
// monotonic clock; this is where that contract is enforced, so a corrupted
// vantage-point capture degrades into a tagged error (or a repaired trace
// with counted drops) instead of a silently mis-synthesized handler.
#pragma once

#include <cstddef>

#include "trace/trace.hpp"
#include "util/status.hpp"

namespace abg::trace {

struct ValidateOptions {
  // Strict mode (false): the first bad sample fails the whole trace with
  // kInvalidTrace/kNumericError. Repair mode (true): bad samples are dropped
  // (non-finite fields, non-positive windows, clock regressions) or clamped
  // (negative byte/rate counts -> 0), and the trace survives if any samples
  // remain. Counts are reported via `stats` and the obs counters
  // "trace.rows_dropped" / "trace.rows_repaired".
  bool repair = false;
};

struct ValidateStats {
  std::size_t rows_dropped = 0;
  std::size_t rows_repaired = 0;
};

// Validates (and in repair mode rewrites) `t` in place.
util::Status validate_trace(Trace& t, const ValidateOptions& opts = {},
                            ValidateStats* stats = nullptr);

}  // namespace abg::trace
