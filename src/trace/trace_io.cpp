#include "trace/trace_io.hpp"

#include <cstdio>

#include "obs/registry.hpp"
#include "util/csv.hpp"
#include "util/fault_injection.hpp"

namespace abg::trace {

namespace {

using util::Result;
using util::Status;
using util::StatusCode;

constexpr const char* kColumns =
    "now,mss,cwnd,inflight,acked_bytes,rtt,srtt,min_rtt,max_rtt,ack_rate,rtt_gradient,"
    "time_since_loss,cwnd_after,ack_seq,is_dup,loss_event";
constexpr std::size_t kNumColumns = 16;

Status parse_error(const char* what, const std::string& field) {
  return Status(StatusCode::kParseError, std::string(what) + " '" + field + "'");
}

Status row_error(std::size_t row, const char* what, const std::string& field) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "row %zu: ", row);
  return Status(StatusCode::kParseError, buf + std::string(what) + " '" + field + "'");
}

}  // namespace

std::string to_csv(const Trace& trace) {
  util::CsvWriter w;
  {
    char meta[256];
    std::snprintf(meta, sizeof(meta),
                  "#cca=%s bw=%.17g rtt=%.17g buf=%.17g loss=%.17g seed=%llu dur=%.17g xt=%.17g",
                  trace.cca_name.c_str(), trace.env.bandwidth_bps, trace.env.rtt_s,
                  trace.env.buffer_bytes, trace.env.random_loss,
                  static_cast<unsigned long long>(trace.env.seed), trace.env.duration_s,
                  trace.env.cross_traffic_bps);
    w.add_row({meta});
  }
  w.add_row({kColumns});
  for (const auto& s : trace.samples) {
    w.add_row_numeric({s.sig.now, s.sig.mss, s.sig.cwnd, s.sig.inflight, s.sig.acked_bytes,
                       s.sig.rtt, s.sig.srtt, s.sig.min_rtt, s.sig.max_rtt, s.sig.ack_rate,
                       s.sig.rtt_gradient, s.sig.time_since_loss, s.cwnd_after, s.ack_seq,
                       s.is_dup ? 1.0 : 0.0, s.loss_event ? 1.0 : 0.0});
  }
  return w.str();
}

util::Result<Trace> from_csv(const std::string& csv, const LoadOptions& opts) {
  const auto rows = util::parse_csv(csv);
  if (rows.size() < 2 || rows[0].empty() || rows[0][0].empty() || rows[0][0][0] != '#') {
    return Status(StatusCode::kParseError, "missing '#cca=...' metadata header");
  }
  Trace t;
  {
    // Parse "#cca=NAME bw=... rtt=... buf=... loss=... seed=... dur=... xt=...".
    // Every field written by to_csv must be present and parse cleanly — a
    // corrupted header used to fabricate bw=0 via atof; now it is rejected.
    const std::string& meta = rows[0][0];
    auto field = [&meta](const std::string& key) -> std::optional<std::string> {
      const auto pos = meta.find(key + "=");
      if (pos == std::string::npos) return std::nullopt;
      const auto start = pos + key.size() + 1;
      const auto end = meta.find(' ', start);
      return meta.substr(start, end == std::string::npos ? std::string::npos : end - start);
    };
    auto num = [&field](const std::string& key, double* out) -> Status {
      const auto f = field(key);
      if (!f) return Status(StatusCode::kParseError, "metadata missing field '" + key + "'");
      if (!util::parse_double(*f, out)) {
        return parse_error(("metadata " + key + ": bad number").c_str(), *f);
      }
      return Status::ok();
    };
    const auto cca = field("cca");
    if (!cca || cca->empty()) {
      return Status(StatusCode::kParseError, "metadata missing field 'cca'");
    }
    t.cca_name = *cca;
    for (const auto& [key, dst] : std::initializer_list<std::pair<const char*, double*>>{
             {"bw", &t.env.bandwidth_bps},
             {"rtt", &t.env.rtt_s},
             {"buf", &t.env.buffer_bytes},
             {"loss", &t.env.random_loss},
             {"dur", &t.env.duration_s},
             {"xt", &t.env.cross_traffic_bps}}) {
      if (auto st = num(key, dst); !st.is_ok()) return st;
    }
    const auto seed = field("seed");
    if (!seed || !util::parse_u64(*seed, &t.env.seed)) {
      return parse_error("metadata seed: bad integer", seed ? *seed : "");
    }
  }
  // The column-name row is written as one quoted field; it must match the
  // current schema exactly.
  if (rows[1].size() != 1 || rows[1][0] != kColumns) {
    return Status(StatusCode::kParseError, "column header mismatch (corrupted file?)");
  }
  ValidateStats stats;
  static auto& c_dropped = obs::counter("trace.rows_dropped");
  for (std::size_t i = 2; i < rows.size(); ++i) {
    const auto& r = rows[i];
    if (r.size() != kNumColumns) {
      if (opts.repair) {
        ++stats.rows_dropped;
        c_dropped.add();
        continue;
      }
      char buf[96];
      std::snprintf(buf, sizeof(buf), "row %zu: %zu fields (want %zu) — truncated?", i, r.size(),
                    kNumColumns);
      return Status(StatusCode::kParseError, buf);
    }
    AckSample s;
    double flags[2] = {0.0, 0.0};
    double* const dests[kNumColumns] = {
        &s.sig.now,      &s.sig.mss,          &s.sig.cwnd,    &s.sig.inflight,
        &s.sig.acked_bytes, &s.sig.rtt,       &s.sig.srtt,    &s.sig.min_rtt,
        &s.sig.max_rtt,  &s.sig.ack_rate,     &s.sig.rtt_gradient, &s.sig.time_since_loss,
        &s.cwnd_after,   &s.ack_seq,          &flags[0],      &flags[1]};
    bool bad = false;
    for (std::size_t c = 0; c < kNumColumns; ++c) {
      if (!util::parse_double(r[c], dests[c])) {
        if (!opts.repair) return row_error(i, "bad numeric field", r[c]);
        bad = true;
        break;
      }
    }
    if (bad) {
      ++stats.rows_dropped;
      c_dropped.add();
      continue;
    }
    s.is_dup = flags[0] != 0.0;
    s.loss_event = flags[1] != 0.0;
    t.samples.push_back(s);
  }
  ValidateOptions vopts;
  vopts.repair = opts.repair;
  if (auto st = validate_trace(t, vopts, &stats); !st.is_ok()) return st;
  return t;
}

util::Status save_csv(const Trace& trace, const std::string& path) {
  if (util::fault::io_fail("trace_io.save_csv")) {
    return Status(StatusCode::kIoError, "injected I/O fault writing " + path);
  }
  const std::string body = to_csv(trace);
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status(StatusCode::kIoError, "cannot open " + path + " for writing");
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) return Status(StatusCode::kIoError, "short write to " + path);
  return Status::ok();
}

util::Result<Trace> load_csv(const std::string& path, const LoadOptions& opts) {
  if (util::fault::io_fail("trace_io.load_csv")) {
    return Status(StatusCode::kIoError, "injected I/O fault reading " + path);
  }
  std::string content;
  if (!util::read_file(path, &content)) {
    return Status(StatusCode::kIoError, "cannot read " + path);
  }
  return from_csv(content, opts).with_context(path);
}

}  // namespace abg::trace
