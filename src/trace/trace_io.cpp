#include "trace/trace_io.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/csv.hpp"

namespace abg::trace {

namespace {
constexpr const char* kColumns =
    "now,mss,cwnd,inflight,acked_bytes,rtt,srtt,min_rtt,max_rtt,ack_rate,rtt_gradient,"
    "time_since_loss,cwnd_after,ack_seq,is_dup,loss_event";
}

std::string to_csv(const Trace& trace) {
  util::CsvWriter w;
  {
    char meta[256];
    std::snprintf(meta, sizeof(meta),
                  "#cca=%s bw=%.17g rtt=%.17g buf=%.17g loss=%.17g seed=%llu dur=%.17g xt=%.17g",
                  trace.cca_name.c_str(), trace.env.bandwidth_bps, trace.env.rtt_s,
                  trace.env.buffer_bytes, trace.env.random_loss,
                  static_cast<unsigned long long>(trace.env.seed), trace.env.duration_s,
                  trace.env.cross_traffic_bps);
    w.add_row({meta});
  }
  w.add_row({kColumns});
  for (const auto& s : trace.samples) {
    w.add_row_numeric({s.sig.now, s.sig.mss, s.sig.cwnd, s.sig.inflight, s.sig.acked_bytes,
                       s.sig.rtt, s.sig.srtt, s.sig.min_rtt, s.sig.max_rtt, s.sig.ack_rate,
                       s.sig.rtt_gradient, s.sig.time_since_loss, s.cwnd_after, s.ack_seq,
                       s.is_dup ? 1.0 : 0.0, s.loss_event ? 1.0 : 0.0});
  }
  return w.str();
}

std::optional<Trace> from_csv(const std::string& csv) {
  const auto rows = util::parse_csv(csv);
  if (rows.size() < 2 || rows[0].empty() || rows[0][0].empty() || rows[0][0][0] != '#') {
    return std::nullopt;
  }
  Trace t;
  {
    // Parse "#cca=NAME bw=... rtt=... buf=... loss=... seed=... dur=..."
    const std::string& meta = rows[0][0];
    auto field = [&meta](const std::string& key) -> std::string {
      const auto pos = meta.find(key + "=");
      if (pos == std::string::npos) return {};
      const auto start = pos + key.size() + 1;
      const auto end = meta.find(' ', start);
      return meta.substr(start, end == std::string::npos ? std::string::npos : end - start);
    };
    t.cca_name = field("cca");
    t.env.bandwidth_bps = std::atof(field("bw").c_str());
    t.env.rtt_s = std::atof(field("rtt").c_str());
    t.env.buffer_bytes = std::atof(field("buf").c_str());
    t.env.random_loss = std::atof(field("loss").c_str());
    t.env.seed = std::strtoull(field("seed").c_str(), nullptr, 10);
    t.env.duration_s = std::atof(field("dur").c_str());
    t.env.cross_traffic_bps = std::atof(field("xt").c_str());  // "" -> 0
  }
  for (std::size_t i = 2; i < rows.size(); ++i) {
    const auto& r = rows[i];
    if (r.size() < 16) continue;
    AckSample s;
    s.sig.now = std::atof(r[0].c_str());
    s.sig.mss = std::atof(r[1].c_str());
    s.sig.cwnd = std::atof(r[2].c_str());
    s.sig.inflight = std::atof(r[3].c_str());
    s.sig.acked_bytes = std::atof(r[4].c_str());
    s.sig.rtt = std::atof(r[5].c_str());
    s.sig.srtt = std::atof(r[6].c_str());
    s.sig.min_rtt = std::atof(r[7].c_str());
    s.sig.max_rtt = std::atof(r[8].c_str());
    s.sig.ack_rate = std::atof(r[9].c_str());
    s.sig.rtt_gradient = std::atof(r[10].c_str());
    s.sig.time_since_loss = std::atof(r[11].c_str());
    s.cwnd_after = std::atof(r[12].c_str());
    s.ack_seq = std::atof(r[13].c_str());
    s.is_dup = std::atof(r[14].c_str()) != 0.0;
    s.loss_event = std::atof(r[15].c_str()) != 0.0;
    t.samples.push_back(s);
  }
  return t;
}

bool save_csv(const Trace& trace, const std::string& path) {
  const std::string body = to_csv(trace);
  FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

std::optional<Trace> load_csv(const std::string& path) {
  const std::string content = util::read_file(path);
  if (content.empty()) return std::nullopt;
  return from_csv(content);
}

}  // namespace abg::trace
