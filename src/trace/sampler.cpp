#include "trace/sampler.hpp"

#include <algorithm>

namespace abg::trace {

SegmentSampler::SegmentSampler(const std::vector<Segment>* segments, SegmentDistance dist,
                               std::uint64_t seed)
    : segments_(segments), dist_(std::move(dist)), rng_(seed) {}

bool SegmentSampler::is_selected(std::size_t idx) const {
  return std::find(selected_.begin(), selected_.end(), idx) != selected_.end();
}

std::vector<std::size_t> SegmentSampler::unselected() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < segments_->size(); ++i) {
    if (!is_selected(i)) out.push_back(i);
  }
  return out;
}

void SegmentSampler::grow_to(std::size_t count) {
  count = std::min(count, segments_->size());
  while (selected_.size() < count) {
    auto pool = unselected();
    if (pool.empty()) return;
    // Random pick.
    const std::size_t r =
        pool[static_cast<std::size_t>(rng_.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
    selected_.push_back(r);
    if (selected_.size() >= count) return;
    // Farthest-from-r pick among the remaining pool.
    pool = unselected();
    if (pool.empty()) return;
    std::size_t best = pool.front();
    double best_d = -1.0;
    for (std::size_t cand : pool) {
      const double d = dist_((*segments_)[r], (*segments_)[cand]);
      if (d > best_d) {
        best_d = d;
        best = cand;
      }
    }
    selected_.push_back(best);
  }
}

std::vector<std::size_t> select_diverse_segments(const std::vector<Segment>& segments,
                                                 std::size_t count, const SegmentDistance& dist,
                                                 util::Rng& rng) {
  SegmentSampler sampler(&segments, dist, rng.next_u64());
  sampler.grow_to(count);
  return sampler.selected();
}

}  // namespace abg::trace
