// Diversity-greedy segment selection (§3.2): given the pool of trace
// segments, pick half the requested count uniformly at random, then for each
// random pick add the unpicked segment *farthest* from it under the supplied
// distance. This biases the working set toward covering distinct network
// conditions, which is what prevents handlers that overfit a single trace
// (e.g. the constant-BDP handler).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace abg::trace {

using SegmentDistance = std::function<double(const Segment&, const Segment&)>;

// Returns indices into `segments` of the selected working set, size
// min(count, segments.size()). Deterministic given the Rng state.
std::vector<std::size_t> select_diverse_segments(const std::vector<Segment>& segments,
                                                 std::size_t count, const SegmentDistance& dist,
                                                 util::Rng& rng);

// Incremental version used by the refinement loop: keeps previously selected
// indices and grows the set to `count` with the same half-random /
// half-farthest policy applied to the new picks only.
class SegmentSampler {
 public:
  SegmentSampler(const std::vector<Segment>* segments, SegmentDistance dist, std::uint64_t seed);

  // Grow the selection to `count` segments (no-op if already that large).
  void grow_to(std::size_t count);

  const std::vector<std::size_t>& selected() const { return selected_; }

  // Checkpoint/resume support: restoring (selected, rng state) reproduces
  // the exact picks future grow_to calls would have made.
  util::Rng::State rng_state() const { return rng_.state(); }
  void restore(std::vector<std::size_t> selected, const util::Rng::State& rng) {
    selected_ = std::move(selected);
    rng_.set_state(rng);
  }

 private:
  bool is_selected(std::size_t idx) const;
  std::vector<std::size_t> unselected() const;

  const std::vector<Segment>* segments_;
  SegmentDistance dist_;
  util::Rng rng_;
  std::vector<std::size_t> selected_;
};

}  // namespace abg::trace
