// Packet-trace representation. A Trace is the time series of per-ACK
// measurements collected from a connection (our analogue of a pcap processed
// into CWND/RTT/rate series, the input format of §3.1), plus the metadata of
// the network environment it was collected under.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cca/signals.hpp"

namespace abg::trace {

// One ACK arrival as seen from the measurement vantage point.
struct AckSample {
  cca::Signals sig;           // signal snapshot fed to the handler
  double cwnd_after = 0.0;    // CWND after the CCA's update (the observable)
  double ack_seq = 0.0;       // cumulative ACK number, bytes
  bool is_dup = false;        // duplicate ACK (no new data acknowledged)
  bool loss_event = false;    // sender-side loss determination at this ACK
};

// Network environment a trace was collected under (the testbed knobs of
// §3.2: RTT 10-100ms, bandwidth 5-15Mbps).
struct Environment {
  double bandwidth_bps = 10e6;    // bottleneck rate
  double rtt_s = 0.05;            // two-way propagation delay
  double buffer_bytes = 0.0;      // bottleneck buffer (0 => 1 BDP default)
  double random_loss = 0.0;       // iid loss probability on the data path
  double cross_traffic_bps = 0.0; // Poisson cross traffic sharing the link
  std::uint64_t seed = 1;         // simulator RNG seed
  double duration_s = 30.0;       // connection length

  std::string label() const;
};

struct Trace {
  std::string cca_name;
  Environment env;
  std::vector<AckSample> samples;

  bool empty() const { return samples.empty(); }
  std::size_t size() const { return samples.size(); }

  // The observable CWND time series (cwnd_after per sample).
  std::vector<double> cwnd_series() const;
  // Sample timestamps, parallel to cwnd_series().
  std::vector<double> time_series() const;
};

// A contiguous slice of a trace between loss events (§3.2 "trace segments").
// Owns copies of its samples so segments outlive their source trace.
struct Segment {
  std::string cca_name;
  Environment env;
  std::size_t first_index = 0;  // index of the first sample in the source trace
  std::vector<AckSample> samples;

  std::vector<double> cwnd_series() const;
  std::vector<double> time_series() const;
};

// Drop the first `warmup_s` seconds of a trace (connection ramp-up / initial
// slow start), which would otherwise dominate distance scoring for CCAs
// whose steady state is loss-free (Vegas converges and never loses).
Trace trim_warmup(const Trace& t, double warmup_s);

// Loss inference from the ACK stream alone: a run of >= 3 duplicate ACKs
// (same cumulative ACK number, no new data) marks a loss event, mirroring
// the triple-dup-ACK heuristic of §3.2. Returns sample indices at which a
// loss event is inferred.
std::vector<std::size_t> infer_loss_events(const Trace& trace);

// Split a trace at its loss events. Segments shorter than min_samples are
// dropped (they carry almost no behavioural signal). When
// use_recorded_events is false, loss points are inferred with
// infer_loss_events instead of trusting sender-side annotations.
std::vector<Segment> segment_trace(const Trace& trace, std::size_t min_samples = 20,
                                   bool use_recorded_events = true);

// Convenience: segment every trace in a set and pool the segments. With
// skip_first, the pre-first-loss segment of each trace (connection warm-up /
// initial slow start) is excluded — the handler model targets steady-state
// congestion-avoidance behaviour.
std::vector<Segment> segment_all(const std::vector<Trace>& traces,
                                 std::size_t min_samples = 20, bool skip_first = false);

}  // namespace abg::trace
