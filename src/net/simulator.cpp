#include "net/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "obs/registry.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace abg::net {

namespace {

// Sender-side connection state machine. Sequence numbers count MSS-sized
// segments; window arithmetic is in bytes.
class Connection {
 public:
  Connection(cca::CcaInterface& cca, const trace::Environment& env, const SimOptions& opts)
      : cca_(cca),
        opts_(opts),
        env_(env),
        rng_(env.seed),
        data_link_(env.bandwidth_bps, env.rtt_s / 2.0, effective_buffer(env), env.random_loss),
        ack_link_(std::max(env.bandwidth_bps * 10.0, 100e6), env.rtt_s / 2.0,
                  /*buffer=*/0.0, /*loss=*/0.0) {
    cwnd_ = opts.initial_cwnd_pkts * opts.mss_bytes;
    cca_.init(opts.mss_bytes, cwnd_);
  }

  trace::Trace run() {
    trace_.cca_name = cca_.name();
    trace_.env = env_;
    try_send();
    schedule_rto_check();
    if (env_.cross_traffic_bps > 0) schedule_cross_traffic();
    queue_.run_until(env_.duration_s);
    return std::move(trace_);
  }

 private:
  static double effective_buffer(const trace::Environment& env) {
    if (env.buffer_bytes > 0) return env.buffer_bytes;
    // Default: one bandwidth-delay product of buffering.
    return env.bandwidth_bps / 8.0 * env.rtt_s;
  }

  double inflight_bytes() const {
    return static_cast<double>(next_seq_ - last_ack_) * opts_.mss_bytes;
  }

  void try_send() {
    while (inflight_bytes() + opts_.mss_bytes <= cwnd_) {
      send_segment(next_seq_++, /*retransmit=*/false);
    }
  }

  void send_segment(std::int64_t seq, bool retransmit) {
    static auto& c_sent = obs::counter("sim.packets_sent");
    static auto& c_dropped = obs::counter("sim.packets_dropped");
    static auto& g_queue = obs::gauge("sim.queue_depth_pkts");
    const double now = queue_.now();
    if (!retransmit) send_time_[seq] = now;
    else send_time_.erase(seq);  // Karn: never RTT-sample a retransmit
    last_send_time_ = now;
    c_sent.add();
    auto delivery = data_link_.transmit(opts_.mss_bytes, now, rng_);
    g_queue.set(data_link_.backlog_bytes(now) / opts_.mss_bytes);
    if (!delivery) {
      c_dropped.add();
      return;  // dropped; recovered via dup ACKs or RTO
    }
    queue_.schedule(*delivery, [this, seq] { deliver_to_receiver(seq); });
  }

  void deliver_to_receiver(std::int64_t seq) {
    const std::int64_t ack = receiver_.on_segment(seq);
    auto delivery = ack_link_.transmit(40.0, queue_.now(), rng_);
    if (!delivery) return;
    queue_.schedule(*delivery, [this, ack] { on_ack(ack); });
  }

  cca::Signals make_signals(double acked_bytes) {
    cca::Signals sig;
    sig.mss = opts_.mss_bytes;
    sig.cwnd = cwnd_;
    sig.inflight = inflight_bytes();
    sig.acked_bytes = acked_bytes;
    tracker_.fill(sig, queue_.now());
    return sig;
  }

  void record(const cca::Signals& sig, std::int64_t ack, bool is_dup, bool loss_event) {
    trace::AckSample sample;
    sample.sig = sig;
    sample.cwnd_after = cwnd_;
    sample.ack_seq = static_cast<double>(ack) * opts_.mss_bytes;
    sample.is_dup = is_dup;
    sample.loss_event = loss_event;
    trace_.samples.push_back(sample);
  }

  void on_ack(std::int64_t ack) {
    static auto& c_acked = obs::counter("sim.packets_acked");
    static auto& c_dup = obs::counter("sim.dup_acks");
    const double now = queue_.now();
    if (ack > last_ack_) {
      // New data acknowledged.
      c_acked.add(static_cast<std::uint64_t>(ack - last_ack_));
      const double acked_bytes = static_cast<double>(ack - last_ack_) * opts_.mss_bytes;
      // RTT sample from the most recent newly-acked, never-retransmitted
      // segment.
      for (std::int64_t s = ack - 1; s >= last_ack_; --s) {
        auto it = send_time_.find(s);
        if (it != send_time_.end()) {
          tracker_.on_rtt_sample(now - it->second, now);
          break;
        }
      }
      for (std::int64_t s = last_ack_; s < ack; ++s) send_time_.erase(s);
      tracker_.on_delivery(acked_bytes, now);
      last_ack_ = ack;
      last_progress_time_ = now;
      dup_count_ = 0;
      if (in_recovery_ && ack >= recover_seq_) in_recovery_ = false;

      if (in_recovery_) {
        // NewReno partial ACK: the cumulative ACK advanced but did not reach
        // the recovery point, so another segment from the same loss episode
        // is missing. Retransmit it immediately and hold the window — only
        // one window reduction per loss episode.
        cca::Signals sig = make_signals(acked_bytes);
        record(sig, ack, /*is_dup=*/false, /*loss_event=*/false);
        send_segment(last_ack_, /*retransmit=*/true);
      } else {
        cca::Signals sig = make_signals(acked_bytes);
        cwnd_ = std::max(cca_.on_ack(sig), opts_.mss_bytes);
        record(sig, ack, /*is_dup=*/false, /*loss_event=*/false);
      }
    } else {
      // Duplicate ACK.
      c_dup.add();
      ++dup_count_;
      bool loss = false;
      if (dup_count_ == 3 && !in_recovery_) {
        loss = true;
        in_recovery_ = true;
        recover_seq_ = next_seq_;
        tracker_.on_loss(now, cwnd_);
        cca::Signals sig = make_signals(0.0);
        cwnd_ = std::max(cca_.on_loss(sig), opts_.mss_bytes);
        record(sig, ack, /*is_dup=*/true, /*loss_event=*/true);
        send_segment(last_ack_, /*retransmit=*/true);  // fast retransmit
      } else {
        cca::Signals sig = make_signals(0.0);
        record(sig, ack, /*is_dup=*/true, /*loss_event=*/false);
      }
      (void)loss;
    }
    try_send();
  }

  // Competing Poisson traffic occupying the bottleneck queue: packets enter
  // the same drop-tail link but are not delivered to our receiver. Raises
  // the flow's experienced queueing delay and loss, diversifying traces the
  // way real cross traffic on a measurement path does.
  void schedule_cross_traffic() {
    const double mean_interval = opts_.mss_bytes * 8.0 / env_.cross_traffic_bps;
    queue_.schedule_in(rng_.exponential(1.0 / mean_interval), [this] {
      (void)data_link_.transmit(opts_.mss_bytes, queue_.now(), rng_);
      if (queue_.now() < env_.duration_s) schedule_cross_traffic();
    });
  }

  void schedule_rto_check() {
    const double interval = std::max(opts_.rto_floor_s, opts_.rto_srtt_multiplier *
                                                            std::max(tracker_.srtt(), 0.05));
    queue_.schedule_in(interval, [this] {
      maybe_timeout();
      if (queue_.now() < env_.duration_s) schedule_rto_check();
    });
  }

  void maybe_timeout() {
    const double now = queue_.now();
    const double rto = std::max(opts_.rto_floor_s,
                                opts_.rto_srtt_multiplier * std::max(tracker_.srtt(), 0.05));
    const bool stalled = inflight_bytes() > 0 && now - last_progress_time_ > rto &&
                         now - last_send_time_ > rto;
    if (!stalled) return;
    // Retransmission timeout: treat as a loss event and go back to the
    // cumulative frontier.
    tracker_.on_loss(now, cwnd_);
    cca::Signals sig = make_signals(0.0);
    cwnd_ = std::max(cca_.on_loss(sig), opts_.mss_bytes);
    record(sig, last_ack_, /*is_dup=*/false, /*loss_event=*/true);
    in_recovery_ = true;
    recover_seq_ = next_seq_;
    next_seq_ = last_ack_;  // go-back-N resend
    send_time_.clear();
    last_progress_time_ = now;
    try_send();
  }

  cca::CcaInterface& cca_;
  SimOptions opts_;
  trace::Environment env_;
  util::Rng rng_;
  EventQueue queue_;
  Link data_link_;
  Link ack_link_;
  Receiver receiver_;
  SignalTracker tracker_;
  trace::Trace trace_;

  double cwnd_ = 0.0;
  std::int64_t next_seq_ = 0;
  std::int64_t last_ack_ = 0;
  std::map<std::int64_t, double> send_time_;
  int dup_count_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_seq_ = 0;
  double last_progress_time_ = 0.0;
  double last_send_time_ = 0.0;
};

}  // namespace

trace::Trace run_connection(cca::CcaInterface& cca, const trace::Environment& env,
                            const SimOptions& opts) {
  static auto& c_conns = obs::counter("sim.connections");
  c_conns.add();
  Connection conn(cca, env, opts);
  return conn.run();
}

trace::Trace run_connection(const std::string& cca_name, const trace::Environment& env,
                            const SimOptions& opts) {
  auto cca = cca::make_cca(cca_name);
  return run_connection(*cca, env, opts);
}

std::vector<trace::Environment> default_environments(std::size_t count, std::uint64_t seed) {
  std::vector<trace::Environment> envs;
  envs.reserve(count);
  // Diagonal sweep across the paper's testbed ranges: RTT 10-100 ms,
  // bandwidth 5-15 Mbps.
  for (std::size_t i = 0; i < count; ++i) {
    const double f = count > 1 ? static_cast<double>(i) / static_cast<double>(count - 1) : 0.5;
    trace::Environment env;
    env.rtt_s = 0.010 + f * 0.090;
    env.bandwidth_bps = 5e6 + (1.0 - f) * 10e6;
    env.seed = seed + i;
    env.duration_s = 30.0;
    envs.push_back(env);
  }
  return envs;
}

std::vector<trace::Trace> collect_traces(const std::string& cca_name,
                                         const std::vector<trace::Environment>& envs,
                                         const SimOptions& opts) {
  std::vector<trace::Trace> traces;
  traces.reserve(envs.size());
  for (const auto& env : envs) {
    traces.push_back(run_connection(cca_name, env, opts));
    ABG_DEBUG("collected %s @ %s: %zu samples", cca_name.c_str(), env.label().c_str(),
              traces.back().samples.size());
  }
  return traces;
}

}  // namespace abg::net
