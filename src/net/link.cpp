#include "net/link.hpp"

#include <algorithm>

namespace abg::net {

Link::Link(double rate_bps, double prop_delay_s, double buffer_bytes, double loss_prob)
    : rate_bps_(rate_bps),
      prop_delay_s_(prop_delay_s),
      buffer_bytes_(buffer_bytes),
      loss_prob_(loss_prob) {}

double Link::backlog_bytes(double t) const {
  return std::max(busy_until_ - t, 0.0) * rate_bps_ / 8.0;
}

double Link::queueing_delay(double t) const { return std::max(busy_until_ - t, 0.0); }

std::optional<double> Link::transmit(double bytes, double arrival_time, util::Rng& rng) {
  if (loss_prob_ > 0 && rng.chance(loss_prob_)) {
    ++drops_;
    return std::nullopt;
  }
  if (buffer_bytes_ > 0 && backlog_bytes(arrival_time) + bytes > buffer_bytes_) {
    ++drops_;
    return std::nullopt;  // tail drop
  }
  const double start = std::max(busy_until_, arrival_time);
  const double serialization = bytes * 8.0 / rate_bps_;
  busy_until_ = start + serialization;
  return busy_until_ + prop_delay_s_;
}

}  // namespace abg::net
