// Two flows sharing one bottleneck — the analysis the paper motivates (§2.1:
// new CCAs "may improve or harm ... the Internet's fairness landscape").
// Once Abagnale produces a handler for an unknown CCA, wrapping it in
// core::HandlerCca and dueling it against Reno/Cubic here answers the
// question the reverse-engineering was for: how aggressive is this thing?
#pragma once

#include "cca/cca.hpp"
#include "net/simulator.hpp"
#include "trace/trace.hpp"

namespace abg::net {

struct DuelResult {
  trace::Trace flow_a;
  trace::Trace flow_b;
  double throughput_a_bps = 0.0;
  double throughput_b_bps = 0.0;

  // Jain's fairness index over the two throughputs: 1.0 = perfectly fair,
  // 0.5 = one flow starved.
  double jain_index() const;
  // Flow A's share of the combined goodput, in [0, 1].
  double share_a() const;
};

// Run both CCAs through the same bottleneck link for env.duration_s. Flow B
// starts after `stagger_s` so the duel also exercises convergence from an
// occupied link.
DuelResult run_two_flows(cca::CcaInterface& cca_a, cca::CcaInterface& cca_b,
                         const trace::Environment& env, double stagger_s = 0.0,
                         const SimOptions& opts = {});

// Registry-name convenience.
DuelResult run_two_flows(const std::string& cca_a, const std::string& cca_b,
                         const trace::Environment& env, double stagger_s = 0.0,
                         const SimOptions& opts = {});

}  // namespace abg::net
