// Discrete-event engine: a time-ordered queue of closures. Ties are broken
// by insertion order so simulations are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace abg::net {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  double now() const { return now_; }

  // Schedule cb at absolute time `when` (clamped to now).
  void schedule(double when, Callback cb);
  // Schedule cb `delay` seconds from now.
  void schedule_in(double delay, Callback cb) { schedule(now_ + delay, std::move(cb)); }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  // Pop and run the earliest event. Returns false if the queue is empty.
  bool step();

  // Run events until the clock passes `t_end` or the queue drains.
  void run_until(double t_end);

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // insertion order, for deterministic tie-breaking
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace abg::net
