#include "net/duel.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "net/event_queue.hpp"
#include "net/link.hpp"
#include "net/receiver.hpp"
#include "net/signal_tracker.hpp"

namespace abg::net {

namespace {

// Per-flow sender state: the same NewReno-style machinery as the single-flow
// Connection, against a *shared* bottleneck link.
class Flow {
 public:
  Flow(cca::CcaInterface& cca, EventQueue& queue, Link& data_link, Link& ack_link,
       util::Rng& rng, const SimOptions& opts)
      : cca_(cca), queue_(queue), data_link_(data_link), ack_link_(ack_link), rng_(rng),
        opts_(opts) {
    cwnd_ = opts.initial_cwnd_pkts * opts.mss_bytes;
    cca_.init(opts.mss_bytes, cwnd_);
  }

  void start(const trace::Environment& env) {
    trace_.cca_name = cca_.name();
    trace_.env = env;
    try_send();
    schedule_rto_check(env.duration_s);
  }

  trace::Trace take_trace() { return std::move(trace_); }

  double delivered_bytes() const {
    return static_cast<double>(last_ack_) * opts_.mss_bytes;
  }

 private:
  double inflight_bytes() const {
    return static_cast<double>(next_seq_ - last_ack_) * opts_.mss_bytes;
  }

  void try_send() {
    while (inflight_bytes() + opts_.mss_bytes <= cwnd_) {
      send_segment(next_seq_++, false);
    }
  }

  void send_segment(std::int64_t seq, bool retransmit) {
    const double now = queue_.now();
    if (!retransmit) send_time_[seq] = now;
    else send_time_.erase(seq);
    last_send_time_ = now;
    auto delivery = data_link_.transmit(opts_.mss_bytes, now, rng_);
    if (!delivery) return;
    queue_.schedule(*delivery, [this, seq] {
      const std::int64_t ack = receiver_.on_segment(seq);
      auto back = ack_link_.transmit(40.0, queue_.now(), rng_);
      if (back) queue_.schedule(*back, [this, ack] { on_ack(ack); });
    });
  }

  cca::Signals make_signals(double acked_bytes) {
    cca::Signals sig;
    sig.mss = opts_.mss_bytes;
    sig.cwnd = cwnd_;
    sig.inflight = inflight_bytes();
    sig.acked_bytes = acked_bytes;
    tracker_.fill(sig, queue_.now());
    return sig;
  }

  void record(const cca::Signals& sig, std::int64_t ack, bool is_dup, bool loss) {
    trace::AckSample sample;
    sample.sig = sig;
    sample.cwnd_after = cwnd_;
    sample.ack_seq = static_cast<double>(ack) * opts_.mss_bytes;
    sample.is_dup = is_dup;
    sample.loss_event = loss;
    trace_.samples.push_back(sample);
  }

  void on_ack(std::int64_t ack) {
    const double now = queue_.now();
    if (ack > last_ack_) {
      const double acked = static_cast<double>(ack - last_ack_) * opts_.mss_bytes;
      for (std::int64_t s = ack - 1; s >= last_ack_; --s) {
        auto it = send_time_.find(s);
        if (it != send_time_.end()) {
          tracker_.on_rtt_sample(now - it->second, now);
          break;
        }
      }
      for (std::int64_t s = last_ack_; s < ack; ++s) send_time_.erase(s);
      tracker_.on_delivery(acked, now);
      last_ack_ = ack;
      last_progress_time_ = now;
      dup_count_ = 0;
      if (in_recovery_ && ack >= recover_seq_) in_recovery_ = false;
      cca::Signals sig = make_signals(acked);
      if (in_recovery_) {
        record(sig, ack, false, false);
        send_segment(last_ack_, true);  // NewReno partial-ACK repair
      } else {
        cwnd_ = std::max(cca_.on_ack(sig), opts_.mss_bytes);
        record(sig, ack, false, false);
      }
    } else {
      ++dup_count_;
      if (dup_count_ == 3 && !in_recovery_) {
        in_recovery_ = true;
        recover_seq_ = next_seq_;
        tracker_.on_loss(now, cwnd_);
        cca::Signals sig = make_signals(0.0);
        cwnd_ = std::max(cca_.on_loss(sig), opts_.mss_bytes);
        record(sig, ack, true, true);
        send_segment(last_ack_, true);
      } else {
        cca::Signals sig = make_signals(0.0);
        record(sig, ack, true, false);
      }
    }
    try_send();
  }

  void schedule_rto_check(double duration) {
    const double interval =
        std::max(opts_.rto_floor_s, opts_.rto_srtt_multiplier * std::max(tracker_.srtt(), 0.05));
    queue_.schedule_in(interval, [this, duration] {
      maybe_timeout();
      if (queue_.now() < duration) schedule_rto_check(duration);
    });
  }

  void maybe_timeout() {
    const double now = queue_.now();
    const double rto =
        std::max(opts_.rto_floor_s, opts_.rto_srtt_multiplier * std::max(tracker_.srtt(), 0.05));
    if (inflight_bytes() <= 0 || now - last_progress_time_ <= rto ||
        now - last_send_time_ <= rto) {
      return;
    }
    tracker_.on_loss(now, cwnd_);
    cca::Signals sig = make_signals(0.0);
    cwnd_ = std::max(cca_.on_loss(sig), opts_.mss_bytes);
    record(sig, last_ack_, false, true);
    in_recovery_ = true;
    recover_seq_ = next_seq_;
    next_seq_ = last_ack_;
    send_time_.clear();
    last_progress_time_ = now;
    try_send();
  }

  cca::CcaInterface& cca_;
  EventQueue& queue_;
  Link& data_link_;
  Link& ack_link_;
  util::Rng& rng_;
  SimOptions opts_;
  Receiver receiver_;
  SignalTracker tracker_;
  trace::Trace trace_;
  double cwnd_ = 0.0;
  std::int64_t next_seq_ = 0;
  std::int64_t last_ack_ = 0;
  std::map<std::int64_t, double> send_time_;
  int dup_count_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_seq_ = 0;
  double last_progress_time_ = 0.0;
  double last_send_time_ = 0.0;
};

}  // namespace

double DuelResult::jain_index() const {
  const double a = throughput_a_bps, b = throughput_b_bps;
  if (a + b <= 0) return 1.0;
  return (a + b) * (a + b) / (2.0 * (a * a + b * b));
}

double DuelResult::share_a() const {
  const double total = throughput_a_bps + throughput_b_bps;
  return total > 0 ? throughput_a_bps / total : 0.5;
}

DuelResult run_two_flows(cca::CcaInterface& cca_a, cca::CcaInterface& cca_b,
                         const trace::Environment& env, double stagger_s,
                         const SimOptions& opts) {
  EventQueue queue;
  util::Rng rng(env.seed);
  const double buffer =
      env.buffer_bytes > 0 ? env.buffer_bytes : env.bandwidth_bps / 8.0 * env.rtt_s;
  Link data_link(env.bandwidth_bps, env.rtt_s / 2.0, buffer, env.random_loss);
  Link ack_link(std::max(env.bandwidth_bps * 10.0, 100e6), env.rtt_s / 2.0, 0.0, 0.0);

  Flow flow_a(cca_a, queue, data_link, ack_link, rng, opts);
  Flow flow_b(cca_b, queue, data_link, ack_link, rng, opts);
  flow_a.start(env);
  queue.schedule(stagger_s, [&flow_b, &env] { flow_b.start(env); });
  queue.run_until(env.duration_s);

  DuelResult result;
  const double active_b = std::max(env.duration_s - stagger_s, 1e-9);
  result.throughput_a_bps = flow_a.delivered_bytes() * 8.0 / env.duration_s;
  result.throughput_b_bps = flow_b.delivered_bytes() * 8.0 / active_b;
  result.flow_a = flow_a.take_trace();
  result.flow_b = flow_b.take_trace();
  return result;
}

DuelResult run_two_flows(const std::string& cca_a, const std::string& cca_b,
                         const trace::Environment& env, double stagger_s,
                         const SimOptions& opts) {
  auto a = cca::make_cca(cca_a);
  auto b = cca::make_cca(cca_b);
  return run_two_flows(*a, *b, env, stagger_s, opts);
}

}  // namespace abg::net
