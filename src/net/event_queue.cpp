#include "net/event_queue.hpp"

#include <algorithm>

#include "obs/registry.hpp"

namespace abg::net {

void EventQueue::schedule(double when, Callback cb) {
  heap_.push(Event{std::max(when, now_), next_seq_++, std::move(cb)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  static auto& c_events = obs::counter("sim.events");
  c_events.add();
  // priority_queue::top returns const&; the callback must be moved out, so
  // copy the POD parts first and const_cast the closure (safe: popped next).
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.time;
  ev.cb();
  return true;
}

void EventQueue::run_until(double t_end) {
  while (!heap_.empty() && heap_.top().time <= t_end) {
    step();
  }
  now_ = std::max(now_, t_end);
}

}  // namespace abg::net
