#include "net/receiver.hpp"

namespace abg::net {

std::int64_t Receiver::on_segment(std::int64_t seq) {
  if (seq == expected_) {
    ++expected_;
    // Absorb any buffered contiguous segments.
    auto it = out_of_order_.begin();
    while (it != out_of_order_.end() && *it == expected_) {
      ++expected_;
      it = out_of_order_.erase(it);
    }
  } else if (seq > expected_) {
    out_of_order_.insert(seq);
  }
  // seq < expected_: spurious retransmission; re-ACK the frontier.
  return expected_;
}

}  // namespace abg::net
