// Sender-side signal measurement: smoothed RTT, min/max RTT, EWMA delivery
// rate, and smoothed RTT gradient. One tracker instance is shared by the
// ground-truth CCA and the recorded trace, matching the paper's stance that
// Abagnale supplies its own congestion-signal definitions (§5.4).
#pragma once

#include "cca/signals.hpp"

namespace abg::net {

class SignalTracker {
 public:
  // Record an RTT sample taken at time `now`.
  void on_rtt_sample(double rtt, double now);
  // Record `acked_bytes` of newly acknowledged data at time `now`.
  void on_delivery(double acked_bytes, double now);
  // Record a loss determination at time `now`, with the window held at the
  // moment of loss (becomes the "wmax" signal).
  void on_loss(double now, double cwnd_at_loss = 0.0);

  // Fill the measurement-derived fields of a Signals snapshot.
  void fill(cca::Signals& sig, double now) const;

  double srtt() const { return srtt_; }
  double min_rtt() const { return min_rtt_; }
  double ack_rate() const { return ack_rate_; }

 private:
  static constexpr double kSrttAlpha = 1.0 / 8.0;
  static constexpr double kRateAlpha = 0.1;
  static constexpr double kGradAlpha = 0.2;

  double last_rtt_ = 0.0;
  double srtt_ = 0.0;
  double min_rtt_ = 0.0;
  double max_rtt_ = 0.0;
  double prev_rtt_ = 0.0;
  double prev_rtt_time_ = -1.0;
  double rtt_gradient_ = 0.0;

  double ack_rate_ = 0.0;
  double last_delivery_time_ = -1.0;

  double last_loss_time_ = 0.0;
  double cwnd_at_loss_ = 0.0;
};

}  // namespace abg::net
