// Single-flow connection simulator: a CWND-driven sender behind a bottleneck
// link, a cumulative-ACK receiver, fast retransmit on triple duplicate ACKs,
// and a coarse retransmission timeout. This is the trace-collection testbed
// substitute (§3.2): RTT and bandwidth are the Environment knobs, and every
// ACK arrival at the sender is recorded as an AckSample.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "cca/cca.hpp"
#include "net/event_queue.hpp"
#include "net/link.hpp"
#include "net/receiver.hpp"
#include "net/signal_tracker.hpp"
#include "trace/trace.hpp"

namespace abg::net {

struct SimOptions {
  double mss_bytes = 1448.0;
  double initial_cwnd_pkts = 10.0;
  // RTO as a multiple of SRTT (floor 200 ms): crude but prevents deadlock
  // when an entire window is lost.
  double rto_srtt_multiplier = 2.0;
  double rto_floor_s = 0.2;
};

// Run one connection of `env.duration_s` seconds with the given CCA and
// return the collected trace. Deterministic given env.seed.
trace::Trace run_connection(cca::CcaInterface& cca, const trace::Environment& env,
                            const SimOptions& opts = {});

// Convenience: instantiate the CCA by name from the registry.
trace::Trace run_connection(const std::string& cca_name, const trace::Environment& env,
                            const SimOptions& opts = {});

// The paper's testbed sweep: `count` environments spanning RTT 10-100 ms and
// bandwidth 5-15 Mbps (grid order, seeds derived from `seed`).
std::vector<trace::Environment> default_environments(std::size_t count = 6,
                                                     std::uint64_t seed = 1);

// Collect one trace per environment for the named CCA.
std::vector<trace::Trace> collect_traces(const std::string& cca_name,
                                         const std::vector<trace::Environment>& envs,
                                         const SimOptions& opts = {});

}  // namespace abg::net
