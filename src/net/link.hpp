// Bottleneck link model: fixed service rate, drop-tail FIFO buffer, and a
// propagation delay. Queue occupancy is tracked with the standard fluid
// approximation — the backlog at time t is (busy_until - t) * rate — which
// is exact for a FIFO serving fixed-rate work.
#pragma once

#include <optional>

#include "util/rng.hpp"

namespace abg::net {

class Link {
 public:
  // rate_bps: service rate; prop_delay_s: one-way propagation after service;
  // buffer_bytes: drop-tail capacity (packets beyond this are dropped);
  // loss_prob: iid random drop applied before enqueue.
  Link(double rate_bps, double prop_delay_s, double buffer_bytes, double loss_prob = 0.0);

  // Offer a packet of `bytes` at `arrival_time`. Returns the time the packet
  // is delivered at the far end, or nullopt if dropped (buffer overflow or
  // random loss).
  std::optional<double> transmit(double bytes, double arrival_time, util::Rng& rng);

  // Bytes currently queued (not yet serialized) at time t.
  double backlog_bytes(double t) const;
  // Queueing delay a new arrival at time t would experience.
  double queueing_delay(double t) const;

  double rate_bps() const { return rate_bps_; }
  double prop_delay_s() const { return prop_delay_s_; }
  double buffer_bytes() const { return buffer_bytes_; }

  std::size_t drops() const { return drops_; }

 private:
  double rate_bps_;
  double prop_delay_s_;
  double buffer_bytes_;
  double loss_prob_;
  double busy_until_ = 0.0;
  std::size_t drops_ = 0;
};

}  // namespace abg::net
