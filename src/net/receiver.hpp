// TCP-style receiver: cumulative ACKs with duplicate ACKs on reordering or
// loss (no SACK). Sequence numbers count whole MSS-sized segments.
#pragma once

#include <cstdint>
#include <set>

namespace abg::net {

class Receiver {
 public:
  // Deliver segment `seq`; returns the cumulative ACK number to send
  // (the next expected segment).
  std::int64_t on_segment(std::int64_t seq);

  std::int64_t next_expected() const { return expected_; }

 private:
  std::int64_t expected_ = 0;
  std::set<std::int64_t> out_of_order_;
};

}  // namespace abg::net
