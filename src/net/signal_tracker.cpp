#include "net/signal_tracker.hpp"

#include <algorithm>

namespace abg::net {

void SignalTracker::on_rtt_sample(double rtt, double now) {
  last_rtt_ = rtt;
  srtt_ = srtt_ <= 0 ? rtt : (1.0 - kSrttAlpha) * srtt_ + kSrttAlpha * rtt;
  min_rtt_ = min_rtt_ <= 0 ? rtt : std::min(min_rtt_, rtt);
  max_rtt_ = std::max(max_rtt_, rtt);
  if (prev_rtt_time_ >= 0 && now > prev_rtt_time_) {
    const double g = (rtt - prev_rtt_) / (now - prev_rtt_time_);
    rtt_gradient_ = (1.0 - kGradAlpha) * rtt_gradient_ + kGradAlpha * g;
  }
  prev_rtt_ = rtt;
  prev_rtt_time_ = now;
}

void SignalTracker::on_delivery(double acked_bytes, double now) {
  if (last_delivery_time_ >= 0 && now > last_delivery_time_) {
    const double rate = acked_bytes / (now - last_delivery_time_);
    ack_rate_ = ack_rate_ <= 0 ? rate : (1.0 - kRateAlpha) * ack_rate_ + kRateAlpha * rate;
  }
  last_delivery_time_ = now;
}

void SignalTracker::on_loss(double now, double cwnd_at_loss) {
  last_loss_time_ = now;
  cwnd_at_loss_ = cwnd_at_loss;
}

void SignalTracker::fill(cca::Signals& sig, double now) const {
  sig.now = now;
  sig.rtt = last_rtt_;
  sig.srtt = srtt_;
  sig.min_rtt = min_rtt_;
  sig.max_rtt = max_rtt_;
  sig.ack_rate = ack_rate_;
  sig.rtt_gradient = rtt_gradient_;
  sig.time_since_loss = now - last_loss_time_;
  sig.cwnd_at_loss = cwnd_at_loss_;
}

}  // namespace abg::net
