// The Vegas family: CCAs whose window evolution branches on a delay-derived
// estimate of the number of packets queued at the bottleneck (paper §5.4).
// All of them compute some flavour of
//     queued = (rtt - min_rtt) * rate / mss
// and compare it against thresholds.
#pragma once

#include "cca/loss_based.hpp"
#include "util/rng.hpp"

namespace abg::cca {

// Estimated packets sitting in the bottleneck queue, the Vegas "diff":
// expected rate minus actual rate, scaled to packets.
double vegas_queue_estimate(const Signals& sig);

// TCP Vegas (Brakmo 1994): additive increase when the queue estimate is
// below alpha, additive decrease above beta, hold in between.
class Vegas final : public LossBasedCca {
 public:
  explicit Vegas(double alpha = 2.0, double beta = 4.0) : alpha_(alpha), beta_(beta) {}
  std::string name() const override { return "vegas"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;

 private:
  double alpha_, beta_;
};

// TCP Veno (Fu & Liew 2003): Reno increase at full speed while the queue is
// short, half speed when the network looks congested; loss response depends
// on whether the loss looks random (short queue) or congestive.
class Veno final : public LossBasedCca {
 public:
  std::string name() const override { return "veno"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;
};

// TCP-NV ("New Vegas", Brakmo 2010): same fundamental logic as Vegas with a
// rate-based queue measurement (delivery rate instead of cwnd/rtt) and a
// once-per-RTT update cadence — the hidden state the paper notes Abagnale
// need not model (§5.4).
class NewVegas final : public LossBasedCca {
 public:
  std::string name() const override { return "nv"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;

 private:
  double last_update_time_ = -1.0;
  double pending_delta_ = 0.0;
};

// YeAH-TCP (Baiocchi 2007): Scalable-style fast mode while the queue is
// short, Reno + precautionary decongestion once the estimated queue exceeds
// its threshold.
class Yeah final : public LossBasedCca {
 public:
  std::string name() const override { return "yeah"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;

 private:
  static constexpr double kQMax = 8.0;  // queue threshold, packets
};

// TCP Illinois (Liu 2008): loss-based AIMD whose increase coefficient alpha
// shrinks (10 -> 0.3) and decrease factor beta grows (1/8 -> 1/2) as
// queueing delay rises.
class Illinois final : public LossBasedCca {
 public:
  std::string name() const override { return "illinois"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;

 private:
  double alpha_of_delay(const Signals& sig) const;
  double beta_of_delay(const Signals& sig) const;
};

// CDG (Hayes & Armitage 2011): backs off with probability
// 1 - exp(-gradient/G) when the delay gradient is positive. Deliberately
// non-deterministic — the paper excludes it from synthesis (§5.5) but we
// implement it as ground truth so the exclusion can be demonstrated.
class Cdg final : public LossBasedCca {
 public:
  explicit Cdg(std::uint64_t seed = 42) : rng_(seed) {}
  std::string name() const override { return "cdg"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;

 private:
  static constexpr double kG = 3.0;  // backoff scale factor
  util::Rng rng_;
  double last_backoff_time_ = -1.0;
};

}  // namespace abg::cca
