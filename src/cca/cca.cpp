#include "cca/cca.hpp"

#include <functional>
#include <map>
#include <stdexcept>

#include "cca/bbr.hpp"
#include "cca/cubic_family.hpp"
#include "cca/delay_family.hpp"
#include "cca/reno_family.hpp"
#include "cca/student.hpp"

namespace abg::cca {

namespace {

using Factory = std::function<CcaPtr()>;

const std::vector<std::pair<std::string, Factory>>& registry() {
  static const std::vector<std::pair<std::string, Factory>> kRegistry = {
      {"reno", [] { return CcaPtr(std::make_unique<Reno>()); }},
      {"cubic", [] { return CcaPtr(std::make_unique<Cubic>()); }},
      {"bbr", [] { return CcaPtr(std::make_unique<Bbr>()); }},
      {"vegas", [] { return CcaPtr(std::make_unique<Vegas>()); }},
      {"bic", [] { return CcaPtr(std::make_unique<Bic>()); }},
      {"cdg", [] { return CcaPtr(std::make_unique<Cdg>()); }},
      {"highspeed", [] { return CcaPtr(std::make_unique<HighSpeed>()); }},
      {"htcp", [] { return CcaPtr(std::make_unique<Htcp>()); }},
      {"hybla", [] { return CcaPtr(std::make_unique<Hybla>()); }},
      {"illinois", [] { return CcaPtr(std::make_unique<Illinois>()); }},
      {"lp", [] { return CcaPtr(std::make_unique<LowPriority>()); }},
      {"nv", [] { return CcaPtr(std::make_unique<NewVegas>()); }},
      {"scalable", [] { return CcaPtr(std::make_unique<Scalable>()); }},
      {"veno", [] { return CcaPtr(std::make_unique<Veno>()); }},
      {"westwood", [] { return CcaPtr(std::make_unique<Westwood>()); }},
      {"yeah", [] { return CcaPtr(std::make_unique<Yeah>()); }},
      {"student1", [] { return CcaPtr(std::make_unique<Student1>()); }},
      {"student2", [] { return CcaPtr(std::make_unique<Student2>()); }},
      {"student3", [] { return CcaPtr(std::make_unique<Student3>()); }},
      {"student4", [] { return CcaPtr(std::make_unique<Student4>()); }},
      {"student5", [] { return CcaPtr(std::make_unique<Student5>()); }},
      {"student6", [] { return CcaPtr(std::make_unique<Student6>()); }},
      {"student7", [] { return CcaPtr(std::make_unique<Student7>()); }},
  };
  return kRegistry;
}

}  // namespace

CcaPtr make_cca(const std::string& name) {
  for (const auto& [key, factory] : registry()) {
    if (key == name) return factory();
  }
  throw std::invalid_argument("unknown CCA: " + name);
}

std::vector<std::string> all_cca_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [key, factory] : registry()) names.push_back(key);
  return names;
}

std::vector<std::string> kernel_cca_names() {
  std::vector<std::string> names;
  for (const auto& [key, factory] : registry()) {
    if (key.rfind("student", 0) != 0) names.push_back(key);
  }
  return names;
}

std::vector<std::string> student_cca_names() {
  std::vector<std::string> names;
  for (const auto& [key, factory] : registry()) {
    if (key.rfind("student", 0) == 0) names.push_back(key);
  }
  return names;
}

}  // namespace abg::cca
