// The Reno family: CCAs whose congestion-avoidance behaviour is an additive
// increase shaped like Reno's one-MSS-per-RTT, with per-algorithm tweaks to
// the increase coefficient or the loss response (paper §5.3).
#pragma once

#include "cca/loss_based.hpp"

namespace abg::cca {

// RFC 5681 NewReno congestion avoidance: cwnd += mss*acked/cwnd per ACK,
// halve on loss.
class Reno final : public LossBasedCca {
 public:
  std::string name() const override { return "reno"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;
};

// TCP Westwood+: Reno-style increase, but the loss response sets the window
// to the estimated bandwidth-delay product (bw_est * min_rtt) instead of
// blindly halving.
class Westwood final : public LossBasedCca {
 public:
  std::string name() const override { return "westwood"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;
};

// Scalable TCP (Kelly 2003): cwnd += a * acked (a = 0.01) per ACK — growth
// proportional to the window itself — and a gentle multiplicative decrease
// of 1/8 on loss.
class Scalable final : public LossBasedCca {
 public:
  std::string name() const override { return "scalable"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;
};

// TCP-LP (low priority): Reno increase, but backs off early when the
// one-way-delay proxy (rtt - min_rtt) crosses a fraction of the observed
// delay range, yielding to cross traffic before actual loss.
class LowPriority final : public LossBasedCca {
 public:
  std::string name() const override { return "lp"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;

 private:
  double last_backoff_time_ = -1.0;
};

// TCP Hybla: Reno increase scaled by rho^2 where rho = rtt / rtt0 (rtt0 =
// 25ms), compensating high-latency links so they grow as fast as a
// reference low-latency connection.
class Hybla final : public LossBasedCca {
 public:
  std::string name() const override { return "hybla"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;

 private:
  static constexpr double kRtt0 = 0.025;  // reference RTT, seconds
};

// HighSpeed TCP (RFC 3649): increase coefficient a(w) and decrease factor
// b(w) grow/shrink with the window according to the RFC's response function.
// The kernel implements this as a 73-row lookup table; we embed a condensed
// table with the same shape.
class HighSpeed final : public LossBasedCca {
 public:
  std::string name() const override { return "highspeed"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;

 private:
  double a_of_w(double w_pkts) const;
  double b_of_w(double w_pkts) const;
};

}  // namespace abg::cca
