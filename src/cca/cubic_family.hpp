// Window-curve CCAs: BIC's binary search, Cubic's cubic recovery curve, and
// H-TCP's time-since-loss polynomial. All three key their growth off the
// window at the time of the last loss and/or the time elapsed since it.
#pragma once

#include "cca/loss_based.hpp"

namespace abg::cca {

// BIC (Xu 2004): binary search between the post-loss window and the window
// held before the loss, followed by slow linear probing ("max probing") once
// the old maximum is exceeded. The deep conditional structure is exactly
// what makes BIC too deep for the synthesizer (paper §5.5).
class Bic final : public LossBasedCca {
 public:
  std::string name() const override { return "bic"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;

 private:
  static constexpr double kSmaxPkts = 16.0;  // max increment per RTT, packets
  static constexpr double kSminPkts = 0.01;
  static constexpr double kBeta = 0.2;
  double w_max_ = 0.0;  // window before the last loss (bytes)
};

// CUBIC (Ha 2008): after a loss at window w_max, the window follows
//   W(t) = C * (t - K)^3 + w_max    (packets; t = time since loss)
// with K = cbrt(w_max * beta / C). Includes the TCP-friendly region.
class Cubic final : public LossBasedCca {
 public:
  std::string name() const override { return "cubic"; }
  void init(double mss, double initial_cwnd) override;
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;

 private:
  static constexpr double kC = 0.4;
  static constexpr double kBeta = 0.3;  // multiplicative decrease amount
  double w_max_pkts_ = 0.0;
  double k_ = 0.0;            // time to return to w_max, seconds
  double epoch_start_ = -1.0; // time of last loss
  double tcp_cwnd_pkts_ = 0.0;
};

// H-TCP (Leith & Shorten 2004): increase coefficient grows quadratically
// with the time since the last loss once past a 1-second threshold; the
// decrease factor adapts to the RTT spread.
class Htcp final : public LossBasedCca {
 public:
  std::string name() const override { return "htcp"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;
};

}  // namespace abg::cca
