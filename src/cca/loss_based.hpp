// Shared machinery for loss-based CCAs: slow start with an ssthresh, and the
// usual cwnd floor of 2*MSS. Window arithmetic is done in double-precision
// bytes so that sub-MSS per-ACK increments (e.g. Reno's mss*acked/cwnd)
// accumulate exactly like the kernel's fractional-window counters do.
#pragma once

#include <algorithm>

#include "cca/cca.hpp"

namespace abg::cca {

class LossBasedCca : public CcaInterface {
 public:
  void init(double mss, double initial_cwnd) override {
    mss_ = mss;
    cwnd_ = initial_cwnd;
    ssthresh_ = 1e18;  // effectively infinite until the first loss
  }

  bool in_slow_start() const override { return cwnd_ < ssthresh_; }

 protected:
  // Exponential growth: one MSS per MSS acked, until ssthresh.
  // Returns true if the ACK was fully consumed by slow start.
  bool slow_start_step(const Signals& sig) {
    if (!in_slow_start()) return false;
    cwnd_ = std::min(cwnd_ + sig.acked_bytes, ssthresh_);
    return true;
  }

  double clamp_cwnd() {
    cwnd_ = std::max(cwnd_, 2.0 * mss_);
    return cwnd_;
  }

  // Classic Reno increase: grow one MSS per RTT, apportioned per ACK.
  double reno_increment(const Signals& sig) const {
    return mss_ * sig.acked_bytes / std::max(cwnd_, mss_);
  }

  double mss_ = 1448.0;
  double cwnd_ = 10 * 1448.0;
  double ssthresh_ = 1e18;
};

}  // namespace abg::cca
