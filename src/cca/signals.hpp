// Congestion signals: the per-ACK measurement snapshot that the simulator
// computes and feeds both to ground-truth CCAs (to drive their window logic)
// and into collected traces (where candidate handlers replay them).
//
// Centralizing signal measurement here mirrors the paper (§5.4): "Abagnale
// provides its own definitions of congestion signals and captures behavior
// rather than implementation details" — e.g. NV's bespoke moving-average
// delay filter is irrelevant because every CCA sees the same measured
// signals.
#pragma once

namespace abg::cca {

// All times in seconds, all window/byte quantities in bytes, rates in
// bytes/second. A value of 0 for max_rtt/min_rtt means "no sample yet".
struct Signals {
  double now = 0.0;              // simulation clock at ACK arrival
  double mss = 1448.0;           // maximum segment size (bytes)
  double cwnd = 0.0;             // congestion window *before* this update
  double inflight = 0.0;         // bytes outstanding
  double acked_bytes = 0.0;      // bytes newly acknowledged by this ACK
  double rtt = 0.0;              // latest RTT sample
  double srtt = 0.0;             // smoothed RTT (EWMA, alpha = 1/8)
  double min_rtt = 0.0;          // minimum RTT observed on the connection
  double max_rtt = 0.0;          // maximum RTT observed on the connection
  double ack_rate = 0.0;         // EWMA delivery rate (bytes acked / second)
  double rtt_gradient = 0.0;     // smoothed d(rtt)/dt, dimensionless-ish (s/s)
  double time_since_loss = 0.0;  // seconds since the last inferred loss event
  double cwnd_at_loss = 0.0;     // window held when the last loss occurred
                                 // ("wmax" in Cubic's handler, Table 2)
};

}  // namespace abg::cca
