// The congestion-control algorithm interface that ground-truth senders
// implement. The simulator owns signal measurement (signals.hpp); a CCA maps
// (signals, private state) -> new congestion window. This is the same
// event-driven model the paper adopts (§3, "Model"): handlers react to ACK
// arrivals and loss determinations.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cca/signals.hpp"

namespace abg::cca {

class CcaInterface {
 public:
  virtual ~CcaInterface() = default;

  // Stable identifier, e.g. "reno", "cubic", "student1".
  virtual std::string name() const = 0;

  // Called once before the connection starts.
  virtual void init(double mss, double initial_cwnd) {
    (void)mss;
    (void)initial_cwnd;
  }

  // ACK arrival; returns the new congestion window in bytes.
  virtual double on_ack(const Signals& sig) = 0;

  // Loss determination (triple-dup-ACK fast retransmit or RTO); returns the
  // new congestion window in bytes.
  virtual double on_loss(const Signals& sig) = 0;

  // Whether the algorithm is currently in its slow-start phase (used only
  // for reporting; the window logic itself lives in on_ack).
  virtual bool in_slow_start() const { return false; }
};

using CcaPtr = std::unique_ptr<CcaInterface>;

// Factory registry: create a CCA by its stable name. Throws
// std::invalid_argument for unknown names.
CcaPtr make_cca(const std::string& name);

// Every CCA name the registry knows, in a stable order. Kernel CCAs first,
// then the seven synthetic "student" CCAs.
std::vector<std::string> all_cca_names();
std::vector<std::string> kernel_cca_names();
std::vector<std::string> student_cca_names();

}  // namespace abg::cca
