#include "cca/cubic_family.hpp"

#include <algorithm>
#include <cmath>

namespace abg::cca {

// ----------------------------------------------------------------- BIC ----

double Bic::on_ack(const Signals& sig) {
  if (slow_start_step(sig)) return cwnd_;
  const double smax = kSmaxPkts * mss_;
  const double smin = kSminPkts * mss_;
  double inc;  // target increment per RTT, bytes
  if (w_max_ <= 0 || cwnd_ >= w_max_) {
    // Max probing: start slow, then ramp up linearly away from w_max.
    const double dist = w_max_ > 0 ? cwnd_ - w_max_ : cwnd_;
    inc = std::clamp(dist / 8.0, smin, smax);
  } else {
    // Binary search toward the midpoint between cwnd and w_max.
    const double midpoint = (cwnd_ + w_max_) / 2.0;
    inc = std::clamp(midpoint - cwnd_, smin, smax);
  }
  cwnd_ += inc * sig.acked_bytes / std::max(cwnd_, mss_);
  return cwnd_;
}

double Bic::on_loss(const Signals&) {
  // Fast convergence: a flow that lost before reaching its previous maximum
  // adopts a reduced maximum so competing flows converge.
  w_max_ = cwnd_ < w_max_ ? cwnd_ * (2.0 - kBeta) / 2.0 : cwnd_;
  ssthresh_ = std::max(cwnd_ * (1.0 - kBeta), 2.0 * mss_);
  cwnd_ = ssthresh_;
  return clamp_cwnd();
}

// --------------------------------------------------------------- CUBIC ----

void Cubic::init(double mss, double initial_cwnd) {
  LossBasedCca::init(mss, initial_cwnd);
  w_max_pkts_ = 0.0;
  k_ = 0.0;
  epoch_start_ = -1.0;
  tcp_cwnd_pkts_ = 0.0;
}

double Cubic::on_ack(const Signals& sig) {
  if (slow_start_step(sig)) return cwnd_;
  if (epoch_start_ < 0) {
    // First congestion-avoidance ACK of this epoch.
    epoch_start_ = sig.now;
    if (w_max_pkts_ <= 0) w_max_pkts_ = cwnd_ / mss_;
    const double w_pkts = cwnd_ / mss_;
    k_ = w_max_pkts_ > w_pkts ? std::cbrt((w_max_pkts_ - w_pkts) / kC) : 0.0;
    tcp_cwnd_pkts_ = w_pkts;
  }
  const double t = sig.now - epoch_start_;
  // Cubic target one RTT in the future.
  const double target_pkts =
      kC * std::pow(t + sig.srtt - k_, 3.0) + w_max_pkts_;
  const double w_pkts = cwnd_ / mss_;
  double inc_pkts;  // growth over the next RTT, packets
  if (target_pkts > w_pkts) {
    inc_pkts = std::min(target_pkts - w_pkts, w_pkts / 2.0);
  } else {
    inc_pkts = 0.01;  // minimal probing in the concave plateau
  }
  // TCP-friendly region: estimate what standard TCP would reach and never
  // grow slower than it.
  tcp_cwnd_pkts_ += 3.0 * kBeta / (2.0 - kBeta) * sig.acked_bytes / std::max(cwnd_, mss_);
  if (tcp_cwnd_pkts_ > w_pkts + inc_pkts) inc_pkts = tcp_cwnd_pkts_ - w_pkts;
  cwnd_ += inc_pkts * mss_ * sig.acked_bytes / std::max(cwnd_, mss_);
  return cwnd_;
}

double Cubic::on_loss(const Signals&) {
  const double w_pkts = cwnd_ / mss_;
  // Fast convergence.
  w_max_pkts_ = w_pkts < w_max_pkts_ ? w_pkts * (2.0 - kBeta) / 2.0 : w_pkts;
  ssthresh_ = std::max(cwnd_ * (1.0 - kBeta), 2.0 * mss_);
  cwnd_ = ssthresh_;
  epoch_start_ = -1.0;
  return clamp_cwnd();
}

// --------------------------------------------------------------- H-TCP ----

double Htcp::on_ack(const Signals& sig) {
  if (slow_start_step(sig)) return cwnd_;
  const double delta = sig.time_since_loss;
  // Low-speed regime for the first second after a loss, then the quadratic.
  double alpha = 1.0;
  if (delta > 1.0) {
    alpha = 1.0 + 10.0 * (delta - 1.0) + 0.25 * (delta - 1.0) * (delta - 1.0);
  }
  cwnd_ += alpha * reno_increment(sig);
  return cwnd_;
}

double Htcp::on_loss(const Signals& sig) {
  // Adaptive backoff: beta = min_rtt / max_rtt, clamped to [0.5, 0.8].
  double beta = 0.5;
  if (sig.max_rtt > 0) beta = std::clamp(sig.min_rtt / sig.max_rtt, 0.5, 0.8);
  ssthresh_ = std::max(cwnd_ * beta, 2.0 * mss_);
  cwnd_ = ssthresh_;
  return clamp_cwnd();
}

}  // namespace abg::cca
