// BBRv1 (Cardwell 2016): model-based control. Maintains windowed-max
// bandwidth and windowed-min RTT estimates and sets
//     cwnd = cwnd_gain * bw_est * min_rtt
// while cycling pacing gains in PROBE_BW to probe for extra bandwidth. The
// gain-cycle pulses are the hidden state variable the paper's case study
// (§5.2) centers on: Abagnale cannot model the cycle index, yet synthesizes
// a closed-form pulse via a modulo condition.
#pragma once

#include <deque>

#include "cca/cca.hpp"

namespace abg::cca {

class Bbr final : public CcaInterface {
 public:
  std::string name() const override { return "bbr"; }
  void init(double mss, double initial_cwnd) override;
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;
  bool in_slow_start() const override { return state_ == State::kStartup; }

 private:
  enum class State { kStartup, kDrain, kProbeBw };

  void update_bw_filter(const Signals& sig);
  double max_bw() const;

  static constexpr double kStartupGain = 2.885;  // 2/ln(2)
  static constexpr double kDrainGain = 1.0 / 2.885;
  static constexpr double kCwndGain = 2.0;
  static constexpr int kCycleLen = 8;
  // PROBE_BW pacing-gain cycle: one probing phase, one draining phase, six
  // cruise phases.
  static constexpr double kCycleGains[kCycleLen] = {1.25, 0.75, 1, 1, 1, 1, 1, 1};

  double mss_ = 1448.0;
  double cwnd_ = 10 * 1448.0;
  State state_ = State::kStartup;

  // Windowed max-bandwidth filter: (time, sample) pairs within ~10 RTTs.
  std::deque<std::pair<double, double>> bw_samples_;
  double full_bw_ = 0.0;  // plateau detection for STARTUP exit
  int full_bw_count_ = 0;

  int cycle_index_ = 0;
  double cycle_stamp_ = -1.0;
};

}  // namespace abg::cca
