#include "cca/reno_family.hpp"

#include <algorithm>
#include <cmath>

namespace abg::cca {

// ---------------------------------------------------------------- Reno ----

double Reno::on_ack(const Signals& sig) {
  if (slow_start_step(sig)) return cwnd_;
  cwnd_ += reno_increment(sig);
  return cwnd_;
}

double Reno::on_loss(const Signals&) {
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
  cwnd_ = ssthresh_;
  return clamp_cwnd();
}

// ------------------------------------------------------------ Westwood ----

double Westwood::on_ack(const Signals& sig) {
  if (slow_start_step(sig)) return cwnd_;
  cwnd_ += reno_increment(sig);
  return cwnd_;
}

double Westwood::on_loss(const Signals& sig) {
  // Bandwidth-delay product from the measured delivery rate. Falls back to
  // halving before any rate estimate exists.
  const double bdp = sig.ack_rate * sig.min_rtt;
  ssthresh_ = bdp > 0 ? std::max(bdp, 2.0 * mss_) : std::max(cwnd_ / 2.0, 2.0 * mss_);
  cwnd_ = ssthresh_;
  return clamp_cwnd();
}

// ------------------------------------------------------------ Scalable ----

double Scalable::on_ack(const Signals& sig) {
  if (slow_start_step(sig)) return cwnd_;
  // One extra MSS per 100 MSS acked: multiplicative-increase flavour.
  cwnd_ += 0.01 * sig.acked_bytes;
  return cwnd_;
}

double Scalable::on_loss(const Signals&) {
  ssthresh_ = std::max(cwnd_ * 0.875, 2.0 * mss_);
  cwnd_ = ssthresh_;
  return clamp_cwnd();
}

// -------------------------------------------------------------- TCP-LP ----

double LowPriority::on_ack(const Signals& sig) {
  if (slow_start_step(sig)) return cwnd_;
  // Early-congestion inference: queueing delay beyond 15% of the observed
  // delay range means cross traffic is present; yield by halving, at most
  // once per RTT.
  const double range = sig.max_rtt - sig.min_rtt;
  const double queueing = sig.rtt - sig.min_rtt;
  const bool backoff_due = range > 0 && queueing > 0.15 * range;
  const bool cooled_down = sig.now - last_backoff_time_ > sig.srtt;
  if (backoff_due && cooled_down && !in_slow_start()) {
    last_backoff_time_ = sig.now;
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
    cwnd_ = ssthresh_;
    return clamp_cwnd();
  }
  cwnd_ += reno_increment(sig);
  return cwnd_;
}

double LowPriority::on_loss(const Signals&) {
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
  cwnd_ = ssthresh_;
  return clamp_cwnd();
}

// --------------------------------------------------------------- Hybla ----

double Hybla::on_ack(const Signals& sig) {
  const double rtt = sig.srtt > 0 ? sig.srtt : kRtt0;
  const double rho = std::max(rtt / kRtt0, 1.0);
  if (in_slow_start()) {
    // Grow by 2^rho - 1 segments per segment acked (clamped for stability).
    const double gain = std::min(std::pow(2.0, rho) - 1.0, 32.0);
    cwnd_ = std::min(cwnd_ + gain * sig.acked_bytes, ssthresh_);
    return cwnd_;
  }
  cwnd_ += rho * rho * reno_increment(sig);
  return cwnd_;
}

double Hybla::on_loss(const Signals&) {
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
  cwnd_ = ssthresh_;
  return clamp_cwnd();
}

// ----------------------------------------------------------- HighSpeed ----

namespace {
// Condensed RFC 3649 response table: window (packets) -> (a, b).
struct HsRow {
  double w, a, b;
};
constexpr HsRow kHsTable[] = {
    {38, 1, 0.50},     {118, 2, 0.44},    {221, 3, 0.41},    {347, 4, 0.38},
    {495, 5, 0.37},    {663, 6, 0.35},    {851, 7, 0.34},    {1058, 8, 0.33},
    {1284, 9, 0.32},   {1529, 10, 0.31},  {2185, 12, 0.30},  {2967, 14, 0.29},
    {3875, 16, 0.28},  {5705, 20, 0.26},  {7953, 24, 0.25},  {10628, 28, 0.24},
    {13748, 32, 0.23}, {21867, 40, 0.22}, {32531, 48, 0.21}, {44961, 56, 0.20},
    {60464, 64, 0.19}, {83981, 76, 0.18}, {110415, 88, 0.17},
};
}  // namespace

double HighSpeed::a_of_w(double w_pkts) const {
  double a = 1.0;
  for (const auto& row : kHsTable) {
    if (w_pkts >= row.w) a = row.a;
  }
  return a;
}

double HighSpeed::b_of_w(double w_pkts) const {
  double b = 0.5;
  for (const auto& row : kHsTable) {
    if (w_pkts >= row.w) b = row.b;
  }
  return b;
}

double HighSpeed::on_ack(const Signals& sig) {
  if (slow_start_step(sig)) return cwnd_;
  const double w_pkts = cwnd_ / mss_;
  cwnd_ += a_of_w(w_pkts) * reno_increment(sig);
  return cwnd_;
}

double HighSpeed::on_loss(const Signals&) {
  const double w_pkts = cwnd_ / mss_;
  ssthresh_ = std::max(cwnd_ * (1.0 - b_of_w(w_pkts)), 2.0 * mss_);
  cwnd_ = ssthresh_;
  return clamp_cwnd();
}

}  // namespace abg::cca
