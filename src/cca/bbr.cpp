#include "cca/bbr.hpp"

#include <algorithm>

namespace abg::cca {

constexpr double Bbr::kCycleGains[];

void Bbr::init(double mss, double initial_cwnd) {
  mss_ = mss;
  cwnd_ = initial_cwnd;
  state_ = State::kStartup;
  bw_samples_.clear();
  full_bw_ = 0.0;
  full_bw_count_ = 0;
  cycle_index_ = 0;
  cycle_stamp_ = -1.0;
}

void Bbr::update_bw_filter(const Signals& sig) {
  if (sig.ack_rate <= 0) return;
  bw_samples_.emplace_back(sig.now, sig.ack_rate);
  const double window = 10.0 * std::max(sig.srtt, 1e-3);
  while (!bw_samples_.empty() && bw_samples_.front().first < sig.now - window) {
    bw_samples_.pop_front();
  }
}

double Bbr::max_bw() const {
  double bw = 0.0;
  for (const auto& [t, sample] : bw_samples_) bw = std::max(bw, sample);
  return bw;
}

double Bbr::on_ack(const Signals& sig) {
  update_bw_filter(sig);
  const double bw = max_bw();
  const double bdp = bw * sig.min_rtt;

  switch (state_) {
    case State::kStartup: {
      // Exponential growth until the bandwidth estimate plateaus (three
      // consecutive rounds with < 25% growth).
      cwnd_ += kStartupGain * sig.acked_bytes / 2.0;
      if (bw > full_bw_ * 1.25) {
        full_bw_ = bw;
        full_bw_count_ = 0;
      } else if (bw > 0) {
        if (++full_bw_count_ >= 3) state_ = State::kDrain;
      }
      break;
    }
    case State::kDrain: {
      // Drain the queue built during STARTUP, then settle into PROBE_BW.
      if (bdp > 0) cwnd_ = std::max(kDrainGain * cwnd_, kCwndGain * bdp * 0.9);
      if (sig.inflight <= bdp || bdp <= 0) {
        state_ = State::kProbeBw;
        cycle_stamp_ = sig.now;
        cycle_index_ = 0;
      }
      break;
    }
    case State::kProbeBw: {
      // Advance the gain cycle once per min_rtt.
      const double phase_len = std::max(sig.min_rtt, 1e-3);
      if (cycle_stamp_ < 0) cycle_stamp_ = sig.now;
      while (sig.now - cycle_stamp_ > phase_len) {
        cycle_stamp_ += phase_len;
        cycle_index_ = (cycle_index_ + 1) % kCycleLen;
      }
      if (bdp > 0) {
        cwnd_ = kCwndGain * bdp * kCycleGains[cycle_index_];
      } else {
        cwnd_ += sig.acked_bytes;  // no model yet; keep growing
      }
      break;
    }
  }
  cwnd_ = std::max(cwnd_, 4.0 * mss_);
  return cwnd_;
}

double Bbr::on_loss(const Signals& sig) {
  // BBRv1 is famously loss-agnostic: it only enforces a conservative floor
  // and otherwise keeps following its model.
  const double bdp = max_bw() * sig.min_rtt;
  if (bdp > 0) cwnd_ = std::max(cwnd_ * 0.85, bdp);
  cwnd_ = std::max(cwnd_, 4.0 * mss_);
  return cwnd_;
}

}  // namespace abg::cca
