#include "cca/delay_family.hpp"

#include <algorithm>
#include <cmath>

namespace abg::cca {

double vegas_queue_estimate(const Signals& sig) {
  if (sig.min_rtt <= 0 || sig.rtt <= 0) return 0.0;
  // expected = cwnd / min_rtt, actual = cwnd / rtt; diff scaled to packets:
  // (expected - actual) * min_rtt / mss == cwnd * (rtt - min_rtt) / (rtt * mss).
  return sig.cwnd * (sig.rtt - sig.min_rtt) / (sig.rtt * sig.mss);
}

// --------------------------------------------------------------- Vegas ----

double Vegas::on_ack(const Signals& sig) {
  if (sig.min_rtt <= 0) return cwnd_;
  if (in_slow_start()) {
    // Vegas exits slow start early once the queue builds.
    if (vegas_queue_estimate(sig) > beta_) {
      ssthresh_ = cwnd_;
    } else {
      slow_start_step(sig);
      return cwnd_;
    }
  }
  const double diff = vegas_queue_estimate(sig);
  if (diff < alpha_) {
    cwnd_ += reno_increment(sig);
  } else if (diff > beta_) {
    cwnd_ -= reno_increment(sig);
  }
  return clamp_cwnd();
}

double Vegas::on_loss(const Signals&) {
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
  cwnd_ = ssthresh_;
  return clamp_cwnd();
}

// ---------------------------------------------------------------- Veno ----

double Veno::on_ack(const Signals& sig) {
  if (slow_start_step(sig)) return cwnd_;
  const double diff = vegas_queue_estimate(sig);
  // Full Reno speed while the queue is short, half speed when congested.
  cwnd_ += (diff < 3.0 ? 1.0 : 0.5) * reno_increment(sig);
  return cwnd_;
}

double Veno::on_loss(const Signals& sig) {
  const double diff = vegas_queue_estimate(sig);
  // Random (non-congestive) losses get the gentler 0.8 multiplier.
  const double factor = diff < 3.0 ? 0.8 : 0.5;
  ssthresh_ = std::max(cwnd_ * factor, 2.0 * mss_);
  cwnd_ = ssthresh_;
  return clamp_cwnd();
}

// ------------------------------------------------------------ NewVegas ----

double NewVegas::on_ack(const Signals& sig) {
  if (slow_start_step(sig)) return cwnd_;
  if (sig.min_rtt <= 0) return cwnd_;
  // Rate-based queue estimate: bytes in flight beyond the BDP, in packets.
  const double queued = (sig.rtt - sig.min_rtt) * sig.ack_rate / sig.mss;
  // Accumulate the per-ACK decision but apply it once per RTT (NV's hidden
  // update cadence).
  if (queued < 2.0) {
    pending_delta_ += reno_increment(sig);
  } else if (queued > 4.0) {
    pending_delta_ -= reno_increment(sig);
  }
  if (last_update_time_ < 0 || sig.now - last_update_time_ >= sig.srtt) {
    cwnd_ += pending_delta_;
    pending_delta_ = 0.0;
    last_update_time_ = sig.now;
  }
  return clamp_cwnd();
}

double NewVegas::on_loss(const Signals&) {
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
  cwnd_ = ssthresh_;
  pending_delta_ = 0.0;
  return clamp_cwnd();
}

// ---------------------------------------------------------------- YeAH ----

double Yeah::on_ack(const Signals& sig) {
  if (slow_start_step(sig)) return cwnd_;
  const double queued = vegas_queue_estimate(sig);
  if (queued < kQMax) {
    // "Fast" mode: Scalable-style growth.
    cwnd_ += 0.01 * sig.acked_bytes;
  } else {
    // "Slow" mode: Reno growth plus precautionary decongestion — drain the
    // estimated excess queue over one RTT.
    cwnd_ += reno_increment(sig);
    cwnd_ -= queued * mss_ * sig.acked_bytes / std::max(cwnd_, mss_);
  }
  return clamp_cwnd();
}

double Yeah::on_loss(const Signals& sig) {
  const double queued = vegas_queue_estimate(sig);
  // Congestive loss: drop below the estimated queue. Otherwise mild backoff.
  const double factor = queued > kQMax ? 0.6 : 0.7;
  ssthresh_ = std::max(cwnd_ * factor, 2.0 * mss_);
  cwnd_ = ssthresh_;
  return clamp_cwnd();
}

// ------------------------------------------------------------ Illinois ----

double Illinois::alpha_of_delay(const Signals& sig) const {
  constexpr double kAlphaMax = 10.0, kAlphaMin = 0.3;
  const double dm = sig.max_rtt - sig.min_rtt;
  if (dm <= 0) return kAlphaMax;
  const double da = std::max(sig.srtt - sig.min_rtt, 0.0);
  const double d1 = 0.01 * dm;  // below d1 queueing delay: max aggressiveness
  if (da <= d1) return kAlphaMax;
  // Hyperbolic interpolation between (d1, alpha_max) and (dm, alpha_min).
  const double k1 = (dm - d1) * kAlphaMin * kAlphaMax / (kAlphaMax - kAlphaMin);
  const double k2 = (dm - d1) * kAlphaMin / (kAlphaMax - kAlphaMin) - d1;
  return std::clamp(k1 / (k2 + da), kAlphaMin, kAlphaMax);
}

double Illinois::beta_of_delay(const Signals& sig) const {
  constexpr double kBetaMin = 0.125, kBetaMax = 0.5;
  const double dm = sig.max_rtt - sig.min_rtt;
  if (dm <= 0) return kBetaMin;
  const double da = std::max(sig.srtt - sig.min_rtt, 0.0);
  const double d2 = 0.1 * dm, d3 = 0.8 * dm;
  if (da <= d2) return kBetaMin;
  if (da >= d3) return kBetaMax;
  return kBetaMin + (kBetaMax - kBetaMin) * (da - d2) / (d3 - d2);
}

double Illinois::on_ack(const Signals& sig) {
  if (slow_start_step(sig)) return cwnd_;
  cwnd_ += alpha_of_delay(sig) * reno_increment(sig);
  return cwnd_;
}

double Illinois::on_loss(const Signals& sig) {
  ssthresh_ = std::max(cwnd_ * (1.0 - beta_of_delay(sig)), 2.0 * mss_);
  cwnd_ = ssthresh_;
  return clamp_cwnd();
}

// ----------------------------------------------------------------- CDG ----

double Cdg::on_ack(const Signals& sig) {
  if (slow_start_step(sig)) return cwnd_;
  // Positive smoothed delay gradient => congestion building; back off with
  // probability 1 - exp(-g / G), at most once per RTT.
  const double g = sig.rtt_gradient * 1000.0;  // scale to ms/s for kG
  const bool cooled_down = last_backoff_time_ < 0 || sig.now - last_backoff_time_ > sig.srtt;
  if (g > 0 && cooled_down) {
    const double p_backoff = 1.0 - std::exp(-g / kG);
    if (rng_.chance(p_backoff)) {
      last_backoff_time_ = sig.now;
      ssthresh_ = std::max(cwnd_ * 0.7, 2.0 * mss_);
      cwnd_ = ssthresh_;
      return clamp_cwnd();
    }
  }
  cwnd_ += reno_increment(sig);
  return cwnd_;
}

double Cdg::on_loss(const Signals&) {
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
  cwnd_ = ssthresh_;
  return clamp_cwnd();
}

}  // namespace abg::cca
