#include "cca/student.hpp"

#include <algorithm>
#include <cmath>

#include "cca/delay_family.hpp"

namespace abg::cca {

// ----------------------------------------------------------- Student 1 ----

double Student1::on_ack(const Signals& sig) {
  const double target = 88.0 * mss_;
  // Ramp quickly to the target and then sit on it.
  cwnd_ = cwnd_ < target ? std::min(cwnd_ + sig.acked_bytes, target) : target;
  return cwnd_;
}

double Student1::on_loss(const Signals&) { return cwnd_; }  // ignores loss

// ----------------------------------------------------------- Student 2 ----

double Student2::on_ack(const Signals& sig) {
  const double diff = vegas_queue_estimate(sig);
  if (sig.min_rtt > 0 && diff / (sig.min_rtt * 1000.0) >= 5.0 / 1000.0 && diff > 5.0) {
    cwnd_ = mss_;  // harsh reset once the queue builds
  } else {
    cwnd_ += mss_ * sig.acked_bytes / std::max(cwnd_, mss_);
  }
  return clamp_cwnd();
}

double Student2::on_loss(const Signals&) {
  cwnd_ = mss_;
  return clamp_cwnd();
}

// ----------------------------------------------------------- Student 3 ----

double Student3::on_ack(const Signals& sig) {
  if (sig.ack_rate > 0 && sig.min_rtt > 0) {
    cwnd_ = std::max(0.8 * sig.ack_rate * sig.min_rtt, 2.0 * mss_);
  } else {
    cwnd_ += sig.acked_bytes;  // bootstrap until a rate sample exists
  }
  return cwnd_;
}

double Student3::on_loss(const Signals&) { return clamp_cwnd(); }

// ----------------------------------------------------------- Student 4 ----

double Student4::on_ack(const Signals&) {
  cwnd_ = 2.0 * mss_;  // floor keeps the connection alive; behaves as ~MSS
  return cwnd_;
}

double Student4::on_loss(const Signals&) {
  cwnd_ = 2.0 * mss_;
  return cwnd_;
}

// ----------------------------------------------------------- Student 5 ----

double Student5::on_ack(const Signals&) {
  cwnd_ = 2.0 * mss_;
  return cwnd_;
}

double Student5::on_loss(const Signals&) {
  cwnd_ = 2.0 * mss_;
  return cwnd_;
}

// ----------------------------------------------------------- Student 6 ----

double Student6::on_ack(const Signals& sig) {
  // Gradient clearly rising: multiplicative decrease, at most once per RTT
  // so measurement noise cannot pin the window to the floor.
  const bool cooled = last_backoff_ < 0 || sig.now - last_backoff_ > sig.srtt;
  if (sig.rtt_gradient > 0.05 && cooled) {
    last_backoff_ = sig.now;
    cwnd_ *= 0.8;
  } else {
    // Otherwise a very aggressive additive increase (150 MSS per RTT,
    // apportioned per ACK).
    cwnd_ += 150.0 * mss_ * sig.acked_bytes / std::max(cwnd_, mss_);
  }
  return clamp_cwnd();
}

double Student6::on_loss(const Signals&) {
  cwnd_ *= 0.5;
  return clamp_cwnd();
}

// ----------------------------------------------------------- Student 7 ----

double Student7::on_ack(const Signals& sig) {
  if (slow_start_step(sig)) return cwnd_;
  // Reno-style growth scaled by 20ms/rtt: twice as aggressive on short
  // paths, gentler on long ones.
  const double scale = sig.rtt > 0 ? std::min(2.0 * 0.02 / sig.rtt, 8.0) : 1.0;
  cwnd_ += scale * mss_ * sig.acked_bytes / std::max(cwnd_, mss_);
  return cwnd_;
}

double Student7::on_loss(const Signals&) {
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
  cwnd_ = ssthresh_;
  return clamp_cwnd();
}

}  // namespace abg::cca
