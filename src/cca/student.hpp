// Seven synthetic "student" CCAs standing in for the paper's graduate
// networking-class dataset (§5.6). The dataset itself is not redistributable,
// so each CCA here implements the *behaviour* Table 2 reverse-engineered:
// threshold-Vegas variants, constant windows, rate trackers, and one
// delay-gradient scheme. That preserves the code path Abagnale exercises —
// novel, classifier-defeating CCAs whose traces the pipeline must explain.
#pragma once

#include "cca/loss_based.hpp"

namespace abg::cca {

// Student 1: a fixed window of 88 packets (Table 2 synthesizes the literal
// constant 88) reached via an aggressive ramp.
class Student1 final : public LossBasedCca {
 public:
  std::string name() const override { return "student1"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;
};

// Student 2: Vegas-style threshold, but resets to one MSS when the queueing
// threshold is crossed (synthesized: {vegas-diff/minRTT < 5} ? CWND+MSS : MSS).
class Student2 final : public LossBasedCca {
 public:
  std::string name() const override { return "student2"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;
};

// Student 3: pure rate tracker — window pinned to a fraction of the
// measured delivery rate times the base RTT (synthesized: .8*ACKed/minRTT).
class Student3 final : public LossBasedCca {
 public:
  std::string name() const override { return "student3"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;
};

// Student 4: constant one-MSS window (synthesized: MSS).
class Student4 final : public LossBasedCca {
 public:
  std::string name() const override { return "student4"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;
};

// Student 5: constant two-MSS window (synthesized: 2*MSS).
class Student5 final : public LossBasedCca {
 public:
  std::string name() const override { return "student5"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;
};

// Student 6: delay-gradient controller — aggressive additive increase while
// the RTT gradient is flat, multiplicative decrease as it rises
// (synthesized: (cwnd + 150*MSS) / delay-gradient).
class Student6 final : public LossBasedCca {
 public:
  std::string name() const override { return "student6"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;

 private:
  double last_backoff_ = -1.0;
};

// Student 7: Reno-like increase whose aggressiveness scales inversely with
// the RTT (synthesized: CWND + 2*ACKed/RTT).
class Student7 final : public LossBasedCca {
 public:
  std::string name() const override { return "student7"; }
  double on_ack(const Signals& sig) override;
  double on_loss(const Signals& sig) override;
};

}  // namespace abg::cca
