// Canonical-handler evaluation memo cache — the reuse half of the refinement
// fast path. The refinement loop (§4.4) scores thousands of concretized
// handlers per bucket against the current segment working set; the same
// concrete handler recurs whenever
//   * an iteration re-scores previously enumerated sketches (Algorithm 1
//     line 5) and the sampler's working set has stopped growing (small
//     segment pools cap out), or
//   * the terminal exhaustive phase re-scores the surviving bucket's whole
//     sketch list under the working set it was just scored with.
// Keying on dsl::canonicalize's order-canonical form also folds handlers
// that differ only by commutative operand order — IEEE add/mul are
// commutative, so those replay to bit-identical CWND series and share one
// exact distance.
//
// The cache is sharded and mutex-striped so util::ThreadPool workers scoring
// different buckets probe it concurrently without contending on one lock.
// Entries are exact (full canonical-tree equality is verified on lookup, not
// just the hash) and never evicted: a synthesize() run owns one cache, and
// its lifetime bounds the footprint. Distances that were early-abandoned are
// never inserted — only fully evaluated values are shared.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dsl/expr.hpp"
#include "trace/trace.hpp"

namespace abg::synth {

// Content fingerprint of a segment working set (the other half of the cache
// key). Hashes every sample of every segment, so two working sets collide
// only by 64-bit accident, not by construction.
std::uint64_t segment_set_fingerprint(const std::vector<trace::Segment>& segments);

class EvalCache {
 public:
  explicit EvalCache(std::size_t shard_count = 16);

  // Exact probe for (canonical handler, working-set fingerprint).
  // `canon_hash` must be dsl::hash_expr(canon). Bumps the instance hit/miss
  // tallies and the "synth.cache_hits"/"synth.cache_misses" obs counters.
  std::optional<double> lookup(std::uint64_t fingerprint, std::size_t canon_hash,
                               const dsl::Expr& canon);

  // Record an exact (never abandoned) distance. Duplicate inserts for the
  // same key are benign: first write wins, later ones are dropped.
  void insert(std::uint64_t fingerprint, std::size_t canon_hash, dsl::ExprPtr canon,
              double distance);

  std::size_t size() const;     // entries across all shards
  std::uint64_t hits() const;   // instance-local (obs counters are global)
  std::uint64_t misses() const;

 private:
  struct Entry {
    std::uint64_t fingerprint;
    std::size_t canon_hash;
    dsl::ExprPtr canon;
    double distance;
  };
  struct Shard {
    mutable std::mutex mu;
    // Slot key is the combined 64-bit key; same-slot entries (hash
    // collisions) are disambiguated by full Entry comparison, so hits are
    // exact, never probabilistic.
    std::unordered_map<std::uint64_t, std::vector<Entry>> slots;
  };

  static std::uint64_t combined_key(std::uint64_t fingerprint, std::size_t canon_hash);
  Shard& shard_for(std::uint64_t key);

  std::vector<std::unique_ptr<Shard>> shards_;
  // Relaxed tallies: exactness is asserted in tests (hits + misses == probes).
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace abg::synth
