#include "synth/checkpoint.hpp"

#include <cstdio>
#include <cstring>

#include "util/csv.hpp"
#include "util/durable_io.hpp"
#include "util/fault_injection.hpp"

namespace abg::synth {

namespace {

using util::Result;
using util::Status;
using util::StatusCode;

constexpr const char* kMagic = "abagnale-checkpoint v1";

// %a hex-float round-trips every finite double bit-exactly and prints
// inf/nan as strtod-parseable words.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

void append_rng(std::vector<std::string>& f, const util::Rng::State& st) {
  for (std::uint64_t s : st.s) f.push_back(fmt_u64(s));
  f.push_back(st.have_cached_normal ? "1" : "0");
  f.push_back(fmt_double(st.cached_normal));
}

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  for (char c : line) {
    if (c == '\t') {
      out.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  out.push_back(std::move(field));
  return out;
}

// Line-oriented reader with tagged parse errors.
struct Reader {
  std::vector<std::string> lines;
  std::size_t pos = 0;

  Status error(const char* what) const {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "line %zu: %s", pos, what);
    return Status(StatusCode::kParseError, buf);
  }

  // Next line's tab-separated fields; fields[0] must equal `keyword` and the
  // count must be at least `min_fields` (keyword included).
  Result<std::vector<std::string>> expect(const char* keyword, std::size_t min_fields) {
    if (pos >= lines.size()) return error("unexpected end of checkpoint");
    auto fields = split_tabs(lines[pos]);
    ++pos;
    if (fields.empty() || fields[0] != keyword) return error("unexpected record");
    if (fields.size() < min_fields) return error("truncated record");
    return fields;
  }
};

bool parse_rng(const std::vector<std::string>& f, std::size_t at, util::Rng::State* out) {
  if (at + 6 > f.size()) return false;
  for (int i = 0; i < 4; ++i) {
    if (!util::parse_u64(f[at + static_cast<std::size_t>(i)], &out->s[i])) return false;
  }
  if (f[at + 4] != "0" && f[at + 4] != "1") return false;
  out->have_cached_normal = f[at + 4] == "1";
  return util::parse_double(f[at + 5], &out->cached_normal);
}

bool parse_size(const std::string& s, std::size_t* out) {
  std::uint64_t v = 0;
  if (!util::parse_u64(s, &v)) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

bool parse_int(const std::string& s, int* out) {
  std::uint64_t v = 0;
  bool neg = !s.empty() && s[0] == '-';
  if (!util::parse_u64(neg ? s.substr(1) : s, &v) || v > 1u << 30) return false;
  *out = neg ? -static_cast<int>(v) : static_cast<int>(v);
  return true;
}

}  // namespace

util::Status save_checkpoint(const Checkpoint& ck, const std::string& path) {
  if (util::fault::io_fail("checkpoint.save")) {
    return Status(StatusCode::kIoError, "injected I/O fault writing " + path);
  }
  std::string out = kMagic;
  out += '\n';
  auto line = [&out](std::vector<std::string> fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out += '\t';
      out += fields[i];
    }
    out += '\n';
  };
  line({"pool_fp", fmt_u64(ck.pool_fingerprint)});
  line({"seed", fmt_u64(ck.seed)});
  line({"next_iter", fmt_u64(static_cast<std::uint64_t>(ck.next_iter))});
  line({"n", fmt_u64(static_cast<std::uint64_t>(ck.n))});
  line({"k", fmt_u64(static_cast<std::uint64_t>(ck.k))});
  line({"best", fmt_double(ck.best.distance), ck.best.sketch, ck.best.handler});
  {
    std::vector<std::string> f{"sampler_rng"};
    append_rng(f, ck.sampler_rng);
    line(std::move(f));
  }
  {
    std::vector<std::string> f{"sampler_selected"};
    for (std::size_t idx : ck.sampler_selected) f.push_back(fmt_u64(idx));
    line(std::move(f));
  }
  {
    std::vector<std::string> f{"live"};
    for (std::size_t idx : ck.live) f.push_back(fmt_u64(idx));
    line(std::move(f));
  }
  line({"buckets", fmt_u64(ck.buckets.size())});
  for (const auto& b : ck.buckets) {
    std::vector<std::string> f{"bucket",
                               b.label,
                               fmt_u64(b.sketches),
                               fmt_u64(b.handlers_scored),
                               b.exhausted ? "1" : "0"};
    append_rng(f, b.rng);
    f.push_back(fmt_double(b.best_distance));
    f.push_back(b.best_sketch);
    f.push_back(b.best_handler);
    line(std::move(f));
  }
  line({"candidates", fmt_u64(ck.candidates.size())});
  for (const auto& c : ck.candidates) {
    line({"cand", fmt_double(c.distance), c.sketch, c.handler});
  }
  line({"iterations", fmt_u64(ck.iterations.size())});
  for (const auto& it : ck.iterations) {
    // The three trailing fields (best_distance, cumulative cache hits and
    // misses) were appended after the format shipped; the reader tolerates
    // their absence, so old checkpoints stay loadable.
    line({"iter", fmt_u64(static_cast<std::uint64_t>(it.n_target)),
          fmt_u64(static_cast<std::uint64_t>(it.keep)), fmt_u64(it.segments_used),
          fmt_double(it.seconds), fmt_u64(it.buckets.size()), fmt_double(it.best_distance),
          fmt_u64(it.cache_hits), fmt_u64(it.cache_misses)});
    for (const auto& br : it.buckets) {
      line({"ib", br.label, fmt_double(br.score), fmt_u64(br.sketches_enumerated),
            fmt_u64(br.handlers_scored), br.exhausted ? "1" : "0", br.retained ? "1" : "0"});
    }
  }

  // Durable, not just atomic: the file is fsync'd before the rename and the
  // parent directory after it, so a checkpoint the serve WAL points at can
  // never be a torn or absent file after power loss (ISSUE 8).
  return util::atomic_write_file(path, out, /*durable=*/true);
}

util::Result<Checkpoint> load_checkpoint(const std::string& path) {
  if (util::fault::io_fail("checkpoint.load")) {
    return Status(StatusCode::kIoError, "injected I/O fault reading " + path);
  }
  std::string content;
  if (!util::read_file(path, &content)) {
    return Status(StatusCode::kIoError, "cannot read " + path);
  }

  Reader r;
  {
    std::string cur;
    for (char c : content) {
      if (c == '\n') {
        r.lines.push_back(std::move(cur));
        cur.clear();
      } else {
        cur += c;
      }
    }
    if (!cur.empty()) r.lines.push_back(std::move(cur));
  }
  if (r.lines.empty() || r.lines[0] != kMagic) {
    return Status(StatusCode::kParseError, "not an abagnale checkpoint: " + path);
  }
  r.pos = 1;

  Checkpoint ck;
  auto fail = [&](const char* what) { return r.error(what).with_context(path); };

  auto u64_field = [&r](const char* key, std::uint64_t* out) -> Status {
    auto f = r.expect(key, 2);
    if (!f.ok()) return f.status();
    if (!util::parse_u64((*f)[1], out)) return r.error("bad integer");
    return Status::ok();
  };
  std::uint64_t tmp = 0;
  if (auto st = u64_field("pool_fp", &ck.pool_fingerprint); !st.is_ok()) return st;
  if (auto st = u64_field("seed", &ck.seed); !st.is_ok()) return st;
  if (auto st = u64_field("next_iter", &tmp); !st.is_ok()) return st;
  ck.next_iter = static_cast<int>(tmp);
  if (auto st = u64_field("n", &tmp); !st.is_ok()) return st;
  ck.n = static_cast<int>(tmp);
  if (auto st = u64_field("k", &tmp); !st.is_ok()) return st;
  ck.k = static_cast<int>(tmp);

  {
    auto f = r.expect("best", 4);
    if (!f.ok()) return f.status();
    if (!util::parse_double((*f)[1], &ck.best.distance)) return fail("bad best distance");
    ck.best.sketch = (*f)[2];
    ck.best.handler = (*f)[3];
  }
  {
    auto f = r.expect("sampler_rng", 7);
    if (!f.ok()) return f.status();
    if (!parse_rng(*f, 1, &ck.sampler_rng)) return fail("bad sampler rng");
  }
  {
    auto f = r.expect("sampler_selected", 1);
    if (!f.ok()) return f.status();
    for (std::size_t i = 1; i < f->size(); ++i) {
      std::size_t idx = 0;
      if (!parse_size((*f)[i], &idx)) return fail("bad sampler index");
      ck.sampler_selected.push_back(idx);
    }
  }
  {
    auto f = r.expect("live", 1);
    if (!f.ok()) return f.status();
    for (std::size_t i = 1; i < f->size(); ++i) {
      std::size_t idx = 0;
      if (!parse_size((*f)[i], &idx)) return fail("bad live index");
      ck.live.push_back(idx);
    }
  }
  {
    auto f = r.expect("buckets", 2);
    if (!f.ok()) return f.status();
    std::size_t count = 0;
    if (!parse_size((*f)[1], &count)) return fail("bad bucket count");
    for (std::size_t i = 0; i < count; ++i) {
      auto bf = r.expect("bucket", 14);
      if (!bf.ok()) return bf.status();
      BucketCheckpoint b;
      b.label = (*bf)[1];
      if (!parse_size((*bf)[2], &b.sketches)) return fail("bad sketch count");
      if (!parse_size((*bf)[3], &b.handlers_scored)) return fail("bad handler count");
      b.exhausted = (*bf)[4] == "1";
      if (!parse_rng(*bf, 5, &b.rng)) return fail("bad bucket rng");
      if (!util::parse_double((*bf)[11], &b.best_distance)) return fail("bad bucket distance");
      b.best_sketch = (*bf)[12];
      b.best_handler = (*bf)[13];
      ck.buckets.push_back(std::move(b));
    }
  }
  {
    auto f = r.expect("candidates", 2);
    if (!f.ok()) return f.status();
    std::size_t count = 0;
    if (!parse_size((*f)[1], &count)) return fail("bad candidate count");
    for (std::size_t i = 0; i < count; ++i) {
      auto cf = r.expect("cand", 4);
      if (!cf.ok()) return cf.status();
      ScoredHandlerCheckpoint c;
      if (!util::parse_double((*cf)[1], &c.distance)) return fail("bad candidate distance");
      c.sketch = (*cf)[2];
      c.handler = (*cf)[3];
      ck.candidates.push_back(std::move(c));
    }
  }
  {
    auto f = r.expect("iterations", 2);
    if (!f.ok()) return f.status();
    std::size_t count = 0;
    if (!parse_size((*f)[1], &count)) return fail("bad iteration count");
    for (std::size_t i = 0; i < count; ++i) {
      auto itf = r.expect("iter", 6);
      if (!itf.ok()) return itf.status();
      IterationReport rep;
      std::size_t nbuckets = 0;
      if (!parse_int((*itf)[1], &rep.n_target) || !parse_int((*itf)[2], &rep.keep) ||
          !parse_size((*itf)[3], &rep.segments_used) ||
          !util::parse_double((*itf)[4], &rep.seconds) || !parse_size((*itf)[5], &nbuckets)) {
        return fail("bad iteration record");
      }
      // Convergence fields, appended in a later format revision: present in
      // new checkpoints, silently defaulted for old ones.
      if (itf->size() >= 9) {
        std::size_t hits = 0, misses = 0;
        if (!util::parse_double((*itf)[6], &rep.best_distance) ||
            !parse_size((*itf)[7], &hits) || !parse_size((*itf)[8], &misses)) {
          return fail("bad iteration convergence record");
        }
        rep.cache_hits = hits;
        rep.cache_misses = misses;
      }
      for (std::size_t j = 0; j < nbuckets; ++j) {
        auto ibf = r.expect("ib", 7);
        if (!ibf.ok()) return ibf.status();
        BucketReport br;
        br.label = (*ibf)[1];
        if (!util::parse_double((*ibf)[2], &br.score) ||
            !parse_size((*ibf)[3], &br.sketches_enumerated) ||
            !parse_size((*ibf)[4], &br.handlers_scored)) {
          return fail("bad iteration bucket record");
        }
        br.exhausted = (*ibf)[5] == "1";
        br.retained = (*ibf)[6] == "1";
        rep.buckets.push_back(std::move(br));
      }
      ck.iterations.push_back(std::move(rep));
    }
  }
  return ck;
}

}  // namespace abg::synth
