#include "synth/concretize.hpp"

#include <cmath>
#include <unordered_set>

#include "obs/registry.hpp"

namespace abg::synth {

double completion_count(const dsl::Expr& sketch, std::size_t pool_size) {
  return std::pow(static_cast<double>(pool_size), dsl::hole_count(sketch));
}

std::vector<std::vector<double>> enumerate_assignments(const dsl::Expr& sketch,
                                                       const std::vector<double>& pool,
                                                       const ConcretizeOptions& opts,
                                                       util::Rng& rng) {
  const int holes = dsl::hole_count(sketch);
  std::vector<std::vector<double>> out;
  if (holes == 0 || pool.empty()) {
    out.emplace_back();
    return out;
  }
  const double total = completion_count(sketch, pool.size());
  if (total <= static_cast<double>(opts.budget)) {
    // Full cartesian product, odometer-style.
    std::vector<std::size_t> idx(static_cast<std::size_t>(holes), 0);
    for (;;) {
      std::vector<double> assign(static_cast<std::size_t>(holes));
      for (std::size_t i = 0; i < idx.size(); ++i) assign[i] = pool[idx[i]];
      out.push_back(std::move(assign));
      std::size_t pos = 0;
      while (pos < idx.size() && ++idx[pos] == pool.size()) {
        idx[pos] = 0;
        ++pos;
      }
      if (pos == idx.size()) break;
    }
    return out;
  }
  // Random sample without replacement. The completion space exceeded the
  // budget, so coverage of this sketch is partial — counted so a run report
  // shows how often §4.2's budget truncates the search.
  static auto& c_exhausted = obs::counter("synth.concretize_budget_exhausted");
  c_exhausted.add();
  std::unordered_set<std::size_t> seen;
  while (out.size() < opts.budget) {
    std::vector<double> assign(static_cast<std::size_t>(holes));
    std::size_t key = 0;
    for (auto& a : assign) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
      a = pool[pick];
      key = key * pool.size() + pick;
    }
    if (seen.insert(key).second) out.push_back(std::move(assign));
  }
  return out;
}

}  // namespace abg::synth
