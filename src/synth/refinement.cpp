#include "synth/refinement.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>

#include "dsl/parse.hpp"
#include "dsl/simplify.hpp"
#include "obs/journal.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/timer.hpp"
#include "obs/trace_events.hpp"
#include "dsl/bytecode.hpp"
#include "synth/batch_eval.hpp"
#include "synth/checkpoint.hpp"
#include "synth/replay.hpp"
#include "synth/shard.hpp"
#include "trace/sampler.hpp"
#include "util/fault_injection.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace abg::synth {

namespace {

// Per-bucket search state: the shard-able core (synth/shard.hpp, shared with
// the distributed workers) plus this loop's obs/journal caches.
struct BucketState : BucketSearchState {
  // Labeled {job=...,bucket=...} series, resolved on this bucket's first
  // scoring pass (only when the run carries obs_labels) and cached here so
  // the scoring path never re-enters the registry mutex.
  obs::Counter* labeled_scored = nullptr;
  // Interned journal id of this bucket's label, resolved on first journaled
  // scoring pass (journal_intern takes a mutex; the id is stable after).
  std::uint32_t journal_bucket = 0;
};

// One candidate of the batched scoring window (ISSUE 7). Candidates join
// the window in enumeration order; cache hits arrive with their distance,
// misses stay pending until a lane-batch flush evaluates them.
struct BatchEntry {
  const std::vector<double>* assign = nullptr;
  dsl::ExprPtr handler;
  std::uint64_t fp = 0;
  dsl::ExprPtr canon;          // only with a cache
  std::size_t canon_hash = 0;  // only with a cache
  double d = std::numeric_limits<double>::infinity();
  bool pending = false;
};

// Batched replacement for score_sketch's scalar candidate loop. Selection
// stays bit-identical to the scalar loop for every result the refinement
// loop consumes: pending candidates are evaluated against the cutoff as it
// stood when their window opened (c0), which can only make their distance
// MORE exact than the scalar path's (+inf from a tighter mid-window bound),
// and score_sketch's contract already allows exact-or-+inf above the
// caller's bound. Best/cutoff updates happen in an in-order walk at flush,
// so the winner and the cutoff entering every later window match the scalar
// loop's exactly (the golden fast-path test pins this).
ScoredHandler score_sketch_batched(const dsl::ExprPtr& sketch,
                                   const std::vector<trace::Segment>& segments,
                                   const std::vector<std::vector<double>>& assignments,
                                   const SynthesisOptions& opts,
                                   const distance::DistanceOptions& dopts,
                                   std::size_t* handlers_scored, EvalContext* ctx,
                                   bool jrn, std::uint64_t sketch_hash,
                                   std::size_t* evaluated_out) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ScoredHandler best;
  best.sketch = sketch;
  EvalCache* cache = ctx ? ctx->cache : nullptr;
  const bool abandon = opts.early_abandon;
  double cutoff = (abandon && ctx) ? ctx->abandon_above : kInf;

  // Compiled once per sketch; every lane of every window reuses it. The
  // observed series are candidate-independent, so they are shared too.
  std::optional<dsl::Program> prog;
  std::vector<std::vector<double>> observed;

  std::vector<BatchEntry> window;
  window.reserve(2 * dsl::kBatchLanes);
  std::size_t n_pending = 0;
  std::size_t evaluated = 0;

  auto flush = [&] {
    if (!window.empty() && n_pending > 0) {
      std::vector<const std::vector<double>*> lanes;
      std::vector<std::size_t> lane_entry;
      lanes.reserve(n_pending);
      lane_entry.reserve(n_pending);
      for (std::size_t i = 0; i < window.size(); ++i) {
        if (window[i].pending) {
          lanes.push_back(window[i].assign);
          lane_entry.push_back(i);
        }
      }
      if (!prog) prog.emplace(dsl::compile(*sketch));
      if (observed.empty() && !segments.empty()) {
        observed.reserve(segments.size());
        for (const auto& seg : segments) observed.push_back(observed_series_pkts(seg));
      }
      // All lanes replay under the window-entry cutoff c0: the scalar loop
      // would have tightened it mid-window, but a looser bound only turns
      // would-be +inf results exact (see the contract note above).
      const double c0 = cutoff;
      const bool bounded = std::isfinite(c0);
      std::vector<std::vector<std::vector<double>>> synth(segments.size());
      for (std::size_t s = 0; s < segments.size(); ++s) {
        replay_batch(*prog, lanes, segments[s], {}, &synth[s]);
      }
      for (std::size_t k = 0; k < lanes.size(); ++k) {
        BatchEntry& e = window[lane_entry[k]];
        // Re-open the candidate's journal bracket so this lane's DTW detail
        // events (and the cell tally) attribute to it, exactly as the
        // scalar loop's single bracket would.
        if (jrn) obs::journal_begin_candidate(sketch_hash, e.fp);
        double sum = 0.0;
        bool abandoned = false;
        for (std::size_t s = 0; s < segments.size(); ++s) {
          if (obs::journal_enabled()) obs::journal_set_segment(static_cast<std::uint32_t>(s));
          sum += distance::compute(opts.metric, synth[s][k], observed[s], dopts,
                                   bounded ? c0 - sum : distance::kNoAbandon);
          if (bounded && sum >= c0) {
            static auto& c_ab = obs::counter("synth.distance_abandons");
            c_ab.add();
            abandoned = true;
            break;
          }
        }
        const double d = abandoned ? kInf : sum;
        if (cache && d < c0) {
          cache->insert(ctx->fingerprint, e.canon_hash, std::move(e.canon), d);
        }
        if (jrn) {
          obs::journal_record_candidate(std::isfinite(d) ? obs::JournalKind::kEvaluated
                                                         : obs::JournalKind::kAbandoned,
                                        d, obs::journal_take_cells());
          obs::journal_end_candidate();
        }
        e.d = d;
        e.pending = false;
      }
    }
    // In-order walk: identical update rule (and therefore identical winner,
    // tie-breaks included) to the scalar loop.
    for (const auto& e : window) {
      if (e.d < best.distance) {
        best.distance = e.d;
        best.handler = e.handler;
        best.fingerprint = e.fp;
        if (abandon) cutoff = std::min(cutoff, e.d);
      }
    }
    window.clear();
    n_pending = 0;
  };

  for (const auto& assign : assignments) {
    if (ctx && ctx->cancel && ctx->cancel->cancelled()) {
      // Settle the in-flight window first — its candidates are already in
      // the journal funnel and must reach a terminal — then stop as soon as
      // a valid best exists, like the scalar loop's poll point.
      flush();
      if (best.valid()) break;
    }
    ++evaluated;
    std::uint64_t fp = 0;
    if (jrn) {
      fp = obs::journal_fingerprint(sketch_hash, assign);
      obs::journal_begin_candidate(sketch_hash, fp);
      obs::journal_record_candidate(obs::JournalKind::kEnumerated, cutoff, 0);
    }
    BatchEntry e;
    e.assign = &assign;
    e.handler = dsl::fill_holes(sketch, assign);
    e.fp = fp;
    bool cached = false;
    if (cache) {
      e.canon = dsl::canonicalize(e.handler);
      e.canon_hash = dsl::hash_expr(*e.canon);
      if (auto hit = cache->lookup(ctx->fingerprint, e.canon_hash, *e.canon)) {
        e.d = *hit;
        cached = true;
      }
      if (cached && ctx->cache_hit_tally) {
        ctx->cache_hit_tally->fetch_add(1, std::memory_order_relaxed);
      } else if (!cached && ctx->cache_miss_tally) {
        ctx->cache_miss_tally->fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (jrn) obs::journal_end_candidate();
    if (handlers_scored) ++*handlers_scored;
    if (!cached) {
      e.pending = true;
      ++n_pending;
    }
    window.push_back(std::move(e));
    if (n_pending >= dsl::kBatchLanes) flush();
  }
  flush();
  *evaluated_out = evaluated;
  return best;
}

}  // namespace

util::Status SynthesisOptions::validate() const {
  auto bad = [](const std::string& msg) {
    return util::Status(util::StatusCode::kInvalidArgument, msg);
  };
  auto require_min = [&](long long v, long long min, const char* field) {
    return v < min ? bad(std::string(field) + " must be >= " + std::to_string(min) + ", got " +
                         std::to_string(v))
                   : util::Status::ok();
  };
  if (auto st = require_min(initial_samples, 1, "initial_samples"); !st.is_ok()) return st;
  if (auto st = require_min(initial_keep, 1, "initial_keep"); !st.is_ok()) return st;
  if (auto st = require_min(initial_segments, 1, "initial_segments"); !st.is_ok()) return st;
  if (auto st = require_min(static_cast<long long>(final_validation_segments), 1,
                            "final_validation_segments");
      !st.is_ok()) {
    return st;
  }
  if (auto st = require_min(sample_growth, 1, "sample_growth"); !st.is_ok()) return st;
  if (auto st = require_min(static_cast<long long>(concretize_budget), 1, "concretize_budget");
      !st.is_ok()) {
    return st;
  }
  if (auto st = require_min(max_iterations, 1, "max_iterations"); !st.is_ok()) return st;
  if (auto st = require_min(static_cast<long long>(exhaustive_cap), 1, "exhaustive_cap");
      !st.is_ok()) {
    return st;
  }
  if (auto st = require_min(max_holes, 0, "max_holes"); !st.is_ok()) return st;
  if (max_depth && *max_depth < 1) return bad("max_depth must be >= 1 when set");
  if (max_nodes && *max_nodes < 1) return bad("max_nodes must be >= 1 when set");
  if (std::isnan(timeout_s) || timeout_s < 0.0) {
    return bad("timeout_s must be >= 0 (0 = expire immediately, infinity = no deadline)");
  }
  if (dopts.max_points < 2) return bad("dopts.max_points must be >= 2");
  if (std::isnan(dopts.dtw_band_frac)) return bad("dopts.dtw_band_frac must not be NaN");
  if (resume && checkpoint_path.empty()) {
    return bad("resume requires a checkpoint_path to restore from");
  }
  return util::Status::ok();
}

ScoredHandler score_sketch(const dsl::ExprPtr& sketch,
                           const std::vector<trace::Segment>& segments,
                           const std::vector<double>& constant_pool,
                           const SynthesisOptions& opts, util::Rng& rng,
                           std::size_t* handlers_scored, EvalContext* ctx) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ScoredHandler best;
  best.sketch = sketch;
  EvalCache* cache = ctx ? ctx->cache : nullptr;
  // The effective abandon bound: candidates must beat both the caller's
  // bucket-best and this sketch's own running best to matter. Tightens as
  // better candidates land; never loosens. Inert (always +inf) when the
  // option is off, so the off path does exactly the seed's work.
  const bool abandon = opts.early_abandon;
  double cutoff = (abandon && ctx) ? ctx->abandon_above : kInf;
  ConcretizeOptions copts;
  copts.budget = opts.concretize_budget;
  const auto assignments = enumerate_assignments(*sketch, constant_pool, copts, rng);
  // Journal identity: the sketch stored in BucketState is the enumerator's
  // canonical form, so hashing it directly matches the kSketch event the
  // enumerator recorded. Fingerprints then pin each hole assignment.
  const bool jrn = obs::journal_in_scope();
  const std::uint64_t sketch_hash = jrn ? dsl::hash_expr(*sketch) : 0;
  const distance::DistanceOptions dopts = effective_distance_options(opts);
  std::size_t evaluated = 0;
  if (opts.batch_replay) {
    best = score_sketch_batched(sketch, segments, assignments, opts, dopts, handlers_scored,
                                ctx, jrn, sketch_hash, &evaluated);
    static auto& c_scored = obs::counter("synth.handlers_scored");
    c_scored.add(evaluated);
    return best;
  }
  for (const auto& assign : assignments) {
    // Cancellation poll point: once a valid best exists, a fired token stops
    // this sketch immediately and the caller keeps the best-so-far.
    if (ctx && ctx->cancel && ctx->cancel->cancelled() && best.valid()) break;
    ++evaluated;
    std::uint64_t fp = 0;
    if (jrn) {
      // kEnumerated at the same point as ++evaluated, so the funnel's top
      // reconciles exactly with total_handlers_scored.
      fp = obs::journal_fingerprint(sketch_hash, assign);
      obs::journal_begin_candidate(sketch_hash, fp);
      obs::journal_record_candidate(obs::JournalKind::kEnumerated, cutoff, 0);
    }
    const auto handler = dsl::fill_holes(sketch, assign);
    double d;
    dsl::ExprPtr canon;
    std::size_t canon_hash = 0;
    bool cached = false;
    if (cache) {
      canon = dsl::canonicalize(handler);
      canon_hash = dsl::hash_expr(*canon);
      // A hit records the candidate's kCacheHit terminal inside lookup().
      if (auto hit = cache->lookup(ctx->fingerprint, canon_hash, *canon)) {
        d = *hit;
        cached = true;
      }
      // Per-run attribution (SynthesisResult::cache_hits): the cache's own
      // tallies are instance-wide, which conflates jobs once the engine
      // shares one cache across a batch.
      if (cached && ctx->cache_hit_tally) {
        ctx->cache_hit_tally->fetch_add(1, std::memory_order_relaxed);
      } else if (!cached && ctx->cache_miss_tally) {
        ctx->cache_miss_tally->fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!cached) {
      d = total_distance(*handler, segments, opts.metric, dopts, {}, cutoff);
      // Only exact values may be shared: a result at or above the cutoff can
      // be a truncated lower bound from an abandoned evaluation.
      if (cache && d < cutoff) {
        cache->insert(ctx->fingerprint, canon_hash, std::move(canon), d);
      }
      if (jrn) {
        // Terminal: exact distance, or abandoned against the bucket bound
        // (an abandoned evaluation surfaces as +inf).
        obs::journal_record_candidate(std::isfinite(d) ? obs::JournalKind::kEvaluated
                                                       : obs::JournalKind::kAbandoned,
                                      d, obs::journal_take_cells());
      }
    }
    if (jrn) obs::journal_end_candidate();
    if (handlers_scored) ++*handlers_scored;
    if (d < best.distance) {
      best.distance = d;
      best.handler = handler;
      best.fingerprint = fp;
      if (abandon) cutoff = std::min(cutoff, d);
    }
  }
  // Same site as the hand count above, so the registry and the per-bucket
  // fields cannot drift (test_obs asserts they agree).
  static auto& c_scored = obs::counter("synth.handlers_scored");
  c_scored.add(evaluated);
  return best;
}

std::optional<std::pair<std::size_t, std::size_t>> SynthesisResult::bucket_rank(
    const std::string& label, std::size_t iter) const {
  if (iter >= iterations.size()) return std::nullopt;
  const auto& buckets = iterations[iter].buckets;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].label == label) return std::make_pair(i + 1, buckets.size());
  }
  return std::nullopt;
}

SynthesisResult synthesize(const dsl::Dsl& dsl, const std::vector<trace::Segment>& segments,
                           const SynthesisOptions& opts_in) {
  util::Stopwatch total_clock;
  SynthesisResult result;

  // Eager options validation (ISSUE 4): a bad knob fails here, before any
  // enumerator, pool, or checkpoint work, with the field named in the status.
  if (auto st = opts_in.validate(); !st.is_ok()) {
    result.status = st.with_context("SynthesisOptions");
    return result;
  }

  // Fold the run-level SIMD choice into the distance options once, so every
  // downstream distance — bucket scoring and final validation alike — runs
  // the same kernel (ISSUE 7).
  SynthesisOptions opts = opts_in;
  opts.dopts = effective_distance_options(opts);

  // All interrupt sources — the deadline watchdog, a caller-supplied token,
  // and injected faults — funnel into one local token polled at every safe
  // point below. First cancel wins and carries the reason (kTimeout vs
  // kCancelled) into result.status.
  util::CancellationToken tok(opts.cancel);
  util::DeadlineWatchdog watchdog(&tok, opts.timeout_s);
  auto interrupted = [&] { return tok.cancelled(); };
  auto mark_interrupted = [&] {
    result.partial = true;
    result.timed_out = tok.reason() == util::StatusCode::kTimeout;
    result.status = util::Status(tok.reason(), "synthesis interrupted; returning best-so-far");
  };

  // --- Bucketize the space (§4.4). -----------------------------------------
  std::vector<BucketState> states;
  for (auto& b : make_buckets(dsl)) {
    BucketState st;
    st.bucket = std::move(b);
    st.rng = util::Rng(bucket_rng_seed(st.bucket.label, opts.seed));
    states.push_back(std::move(st));
  }
  result.initial_buckets = states.size();

  // --- Segment working set (§3.2). -----------------------------------------
  const auto seg_distance = [&](const trace::Segment& a, const trace::Segment& b) {
    return distance::compute(opts.metric, observed_series_pkts(a), observed_series_pkts(b),
                             opts.dopts);
  };
  trace::SegmentSampler sampler(&segments, seg_distance, opts.seed ^ 0x5e95a1d3);
  // The initial grow_to happens after the resume block below: a restored
  // sampler already contains its selection and RNG position.

  // Executor: a caller-supplied shared pool (the batch engine's), or a
  // private one sized by opts.threads for standalone runs.
  std::unique_ptr<util::ThreadPool> owned_pool;
  util::ThreadPool* pool = opts.pool;
  if (pool == nullptr) {
    owned_pool = std::make_unique<util::ThreadPool>(
        opts.threads == 0 ? std::thread::hardware_concurrency() : opts.threads);
    pool = owned_pool.get();
  }
  std::vector<ScoredHandler> candidates;  // every bucket-best ever seen
  // Set by any bucket task that completes a pass with a valid best. The
  // interrupted-skip inside score_bucket consults it during the first
  // iteration, before the post-join fold has populated result.best.
  std::atomic<bool> pass_found{false};

  // One memo cache for the whole run, shared by every bucket and iteration
  // (pool workers hit different mutex stripes concurrently). Re-scoring a
  // sketch list under an unchanged working set — the terminal exhaustive
  // phase, and every iteration once the sampler has consumed its pool —
  // reuses the exact distances instead of replaying. A caller-supplied
  // shared_cache extends the reuse across jobs; entries are exact, so this
  // never changes the result.
  EvalCache local_cache;
  EvalCache* cache = opts.shared_cache != nullptr ? opts.shared_cache : &local_cache;
  std::atomic<std::uint64_t> run_cache_hits{0};
  std::atomic<std::uint64_t> run_cache_misses{0};

  int n = opts.initial_samples;
  int k = opts.initial_keep;
  std::vector<std::size_t> live(states.size());
  for (std::size_t i = 0; i < live.size(); ++i) live[i] = i;

  // Score every enumerated sketch of `st` against the current segment set;
  // updates st.best. The caller folds bucket bests into the global best and
  // the candidate list after the pass joins, in canonical live order —
  // folding here (task-completion order) would make equal-distance ties
  // racy and diverge from the distributed coordinator's deterministic
  // merge. Respects the cancellation token:
  // once fired (deadline, caller, injected fault), stops enumerating and
  // scoring but keeps what it has (the loop always returns the best handler
  // found so far, §4.4).
  // Journal provenance (ISSUE 6): resolved once per run. The job id comes
  // from the engine's obs labels ({job=...}); a standalone run journals with
  // job id 0 (""). The scope is installed inside the scoring task body, so a
  // pool worker that steals the task self-attributes to this run.
  const bool journal_run = opts.journal && obs::journal_enabled();
  std::uint32_t journal_job = 0;
  if (journal_run) {
    for (const auto& [key, value] : opts.obs_labels) {
      if (key == "job") {
        journal_job = obs::journal_intern(value);
        break;
      }
    }
  }

  auto score_bucket = [&](BucketState& st, std::size_t target, int iter,
                          const std::vector<trace::Segment>& working) {
    obs::TraceSpan span("score " + st.bucket.label, "synth");
    std::optional<obs::JournalScope> jscope;
    if (journal_run) {
      if (st.journal_bucket == 0) st.journal_bucket = obs::journal_intern(st.bucket.label);
      jscope.emplace(journal_job, st.journal_bucket, static_cast<std::uint32_t>(iter));
    }
    if (!opts.obs_labels.empty() && st.labeled_scored == nullptr) {
      obs::Labels labels = opts.obs_labels;
      labels.emplace_back("bucket", st.bucket.label);
      st.labeled_scored = &obs::counter("synth.handlers_scored", labels);
    }
    const std::size_t scored_before = st.handlers_scored;
    // A preempted run that already has a global best skips the remaining
    // buckets outright — building their enumerators just to honor the
    // one-sketch-minimum rule below would stretch the deadline by seconds.
    if (interrupted()) {
      // result.best is only written between passes (pool joined), so the
      // read is race-free; pass_found covers bests from the current pass.
      if (result.best.valid() || pass_found.load(std::memory_order_acquire)) return;
    }
    enumerate_bucket_sketches(dsl, opts, st, target, interrupted);
    // Re-score all sketches under the (possibly grown) segment set, as
    // Algorithm 1 line 5 does. The pass itself is the shared shard core
    // (synth/shard.*) so distributed workers run character-for-character the
    // same search.
    EvalContext ctx;
    ctx.cache = opts.use_eval_cache ? cache : nullptr;
    ctx.fingerprint = opts.use_eval_cache ? segment_set_fingerprint(working) : 0;
    ctx.cancel = &tok;
    ctx.cache_hit_tally = &run_cache_hits;
    ctx.cache_miss_tally = &run_cache_misses;
    const ScoredHandler bucket_best = score_bucket_pass(dsl, opts, st, working, &ctx, interrupted);
    if (st.labeled_scored != nullptr) {
      st.labeled_scored->add(st.handlers_scored - scored_before);
    }
    if (jscope && bucket_best.valid() && bucket_best.sketch) {
      // This iteration's bucket winner (not the run winner: that event
      // carries kJournalFinal and is recorded after final validation).
      obs::journal_record_selected(dsl::hash_expr(*bucket_best.sketch),
                                   bucket_best.fingerprint, bucket_best.distance,
                                   obs::journal_intern(dsl::to_string(*bucket_best.handler)),
                                   false);
    }
    if (bucket_best.valid()) pass_found.store(true, std::memory_order_release);
  };

  // Fold one pass's bucket bests into the global best and the candidate
  // list, in the given (pre-sort) live order — the exact order the
  // distributed coordinator merges shard checkpoints in — so equal-distance
  // ties resolve identically in-process and across workers instead of by
  // task-completion order.
  auto fold_pass = [&](const std::vector<std::size_t>& order) {
    for (std::size_t idx : order) {
      const ScoredHandler& bucket_best = states[idx].best;
      if (!bucket_best.valid()) continue;
      if (bucket_best.distance < result.best.distance) result.best = bucket_best;
      candidates.push_back(bucket_best);
    }
    pass_found.store(false, std::memory_order_relaxed);
  };

  // --- Checkpoint save/restore (ISSUE 3). ----------------------------------
  auto expr_text = [](const dsl::ExprPtr& e) { return e ? dsl::to_string(*e) : std::string(); };
  // Serialize the complete loop state so a resumed run is bit-identical to
  // an uninterrupted one. Called only between iterations, when the pool has
  // joined, so no lock is needed.
  auto save_state = [&](int next_iter) {
    Checkpoint ck;
    ck.pool_fingerprint = segment_set_fingerprint(segments);
    ck.seed = opts.seed;
    ck.next_iter = next_iter;
    ck.n = n;
    ck.k = k;
    ck.best = {result.best.distance, expr_text(result.best.sketch), expr_text(result.best.handler)};
    ck.sampler_rng = sampler.rng_state();
    ck.sampler_selected = sampler.selected();
    ck.live = live;
    for (const auto& st : states) ck.buckets.push_back(bucket_state_to_checkpoint(st));
    for (const auto& c : candidates) {
      ck.candidates.push_back({c.distance, expr_text(c.sketch), expr_text(c.handler)});
    }
    ck.iterations = result.iterations;
    if (auto st = save_checkpoint(ck, opts.checkpoint_path); !st.is_ok()) {
      // A failed checkpoint write must not kill the search itself; the
      // previous checkpoint (if any) is still intact thanks to tmp+rename.
      ABG_WARN("checkpoint save failed: %s", st.to_string().c_str());
    }
  };

  int start_iter = 0;
  bool resumed = false;
  if (opts.resume && !opts.checkpoint_path.empty()) {
    auto loaded = load_checkpoint(opts.checkpoint_path);
    if (!loaded.ok() && loaded.status().code() == util::StatusCode::kIoError) {
      // Missing/unreadable file: nothing to resume from, start fresh. This is
      // the normal first run of a `--checkpoint X --resume` batch job.
      ABG_INFO("no checkpoint at %s; starting fresh", opts.checkpoint_path.c_str());
    } else if (!loaded.ok()) {
      result.status = loaded.status().with_context("resume");
      return result;
    } else {
      const Checkpoint& ck = *loaded;
      if (ck.pool_fingerprint != segment_set_fingerprint(segments) || ck.seed != opts.seed) {
        result.status = util::Status(util::StatusCode::kInvalidTrace,
                                     "checkpoint was written for a different segment pool or seed");
        return result;
      }
      bool consistent = ck.buckets.size() == states.size();
      for (std::size_t idx : ck.live) consistent = consistent && idx < states.size();
      auto restore_scored = [&](const ScoredHandlerCheckpoint& c) {
        auto r = parse_scored_handler(c.distance, c.sketch, c.handler);
        if (!r.ok()) {
          consistent = false;
          return ScoredHandler{};
        }
        return *r;
      };
      for (const auto& bc : ck.buckets) {
        auto it = std::find_if(states.begin(), states.end(), [&](const BucketState& s) {
          return s.bucket.label == bc.label;
        });
        if (it == states.end()) {
          consistent = false;
          break;
        }
        // Sketches are re-derived, not deserialized: the SMT enumerator is
        // deterministic, so pulling the recorded count reproduces the list
        // (bucket_state_from_checkpoint, shared with shard reassignment).
        if (auto st = bucket_state_from_checkpoint(dsl, opts, bc, &*it); !st.is_ok()) {
          consistent = false;
          break;
        }
      }
      result.best = restore_scored(ck.best);
      for (const auto& c : ck.candidates) candidates.push_back(restore_scored(c));
      if (!consistent) {
        result.status = util::Status(util::StatusCode::kParseError,
                                     "corrupted checkpoint " + opts.checkpoint_path);
        return result;
      }
      start_iter = ck.next_iter;
      n = ck.n;
      k = ck.k;
      live = ck.live;
      result.iterations = ck.iterations;
      sampler.restore(ck.sampler_selected, ck.sampler_rng);
      resumed = true;
      ABG_INFO("resumed from %s at iteration %d (%zu live buckets)",
               opts.checkpoint_path.c_str(), start_iter, live.size());
    }
  }
  if (!resumed) sampler.grow_to(static_cast<std::size_t>(opts.initial_segments));

  static auto& c_iters = obs::counter("synth.iterations");
  static auto& h_iter = obs::histogram("synth.iter_us");

  // Per-job labeled series (function-local statics would pin the first
  // job's labels; these are resolved once per run instead).
  obs::Counter* c_iters_job = nullptr;
  obs::Gauge* g_best_job = nullptr;
  if (!opts.obs_labels.empty()) {
    c_iters_job = &obs::counter("synth.iterations", opts.obs_labels);
    g_best_job = &obs::gauge("synth.best_distance", opts.obs_labels);
  }

  for (int iter = start_iter; iter < opts.max_iterations; ++iter) {
    if (live.empty()) break;
    // Injected-fault hook: ABG_FAULT_INJECT="cancel_after=N" fires here.
    if (util::fault::cancel_at(iter)) tok.cancel(util::StatusCode::kCancelled);
    if (iter > start_iter && interrupted()) {
      mark_interrupted();
      break;
    }
    util::Stopwatch iter_clock;
    c_iters.add();
    if (c_iters_job != nullptr) c_iters_job->add();
    obs::Timer iter_timer(h_iter);
    // One span per refinement iteration, with the loop's control variables
    // attached so a Perfetto view shows N/k/|working| shrinking.
    obs::JsonWriter iter_args;
    iter_args.begin_object();
    iter_args.key("iter");
    iter_args.value(static_cast<std::int64_t>(iter));
    iter_args.key("live_buckets");
    iter_args.value(static_cast<std::uint64_t>(live.size()));
    iter_args.key("n_target");
    iter_args.value(static_cast<std::int64_t>(n));
    iter_args.key("keep");
    iter_args.value(static_cast<std::int64_t>(k));
    iter_args.end_object();
    obs::TraceSpan iter_span("synth.iteration", "synth", iter_args.take());

    std::vector<trace::Segment> working;
    for (std::size_t idx : sampler.selected()) working.push_back(segments[idx]);
    if (working.empty()) working = segments;  // tiny pools: use everything

    // Parallel bucket scoring (line 3 of Algorithm 1).
    pool->parallel_for(live.size(), [&](std::size_t i) {
      score_bucket(states[live[i]], static_cast<std::size_t>(n), iter, working);
    });
    fold_pass(live);

    // Rank buckets by score.
    std::sort(live.begin(), live.end(), [&](std::size_t a, std::size_t b) {
      return states[a].best.distance < states[b].best.distance;
    });

    IterationReport report;
    report.n_target = n;
    report.keep = k;
    report.segments_used = working.size();
    for (std::size_t idx : live) {
      BucketReport br;
      br.label = states[idx].bucket.label;
      br.score = states[idx].best.distance;
      br.sketches_enumerated = states[idx].sketches.size();
      br.handlers_scored = states[idx].handlers_scored;
      br.exhausted = states[idx].exhausted;
      report.buckets.push_back(std::move(br));
    }

    // only-top-k with ties (§4.4): retain buckets whose score <= k-th score.
    if (static_cast<std::size_t>(k) < live.size()) {
      const double kth = states[live[static_cast<std::size_t>(k) - 1]].best.distance;
      std::size_t cut = live.size();
      for (std::size_t i = static_cast<std::size_t>(k); i < live.size(); ++i) {
        if (states[live[i]].best.distance > kth) {
          cut = i;
          break;
        }
      }
      live.resize(cut);
    }
    for (auto& br : report.buckets) {
      br.retained = std::any_of(live.begin(), live.end(), [&](std::size_t idx) {
        return states[idx].bucket.label == br.label;
      });
    }
    report.seconds = iter_clock.elapsed_seconds();
    // Convergence point: the pool has joined, so result.best is settled for
    // this iteration and the run tallies are quiescent.
    report.best_distance = result.best.distance;
    report.cache_hits = run_cache_hits.load(std::memory_order_relaxed);
    report.cache_misses = run_cache_misses.load(std::memory_order_relaxed);
    if (g_best_job != nullptr) g_best_job->set(report.best_distance);
    result.iterations.push_back(std::move(report));
    // Streamed progress for JobHandle subscribers; runs on this thread so
    // the callback may read the report without synchronization.
    if (opts.on_iteration) opts.on_iteration(result.iterations.back());
    // One funnel sample per iteration on the Perfetto counter tracks
    // (no-op unless both tracing and journaling are armed).
    if (journal_run) obs::journal_emit_trace_counters();

    ABG_INFO("iter %d: %zu buckets live, N=%d, best=%.3f (%s)", iter, live.size(), n,
             result.best.distance,
             result.best.valid() ? dsl::to_string(*result.best.handler).c_str() : "-");

    if (interrupted()) {
      mark_interrupted();
      break;
    }

    // Stop when every live bucket is already exhausted.
    const bool all_done = std::all_of(live.begin(), live.end(), [&](std::size_t idx) {
      return states[idx].exhausted;
    });
    if (all_done) break;

    // Terminal exhaustive phase: one bucket left.
    if (live.size() == 1) {
      std::vector<trace::Segment> final_working;
      for (std::size_t idx : sampler.selected()) final_working.push_back(segments[idx]);
      score_bucket(states[live[0]], opts.exhaustive_cap, iter, final_working);
      fold_pass(live);
      break;
    }

    n *= opts.sample_growth;                         // line 9
    k = std::max(k / 2, 1);                          // line 10
    sampler.grow_to(sampler.selected().size() + 2);  // "+2 traces" (§4.4)

    // State now describes the start of iteration iter+1 exactly.
    if (!opts.checkpoint_path.empty()) save_state(iter + 1);
  }

  // --- Final validation: re-rank every candidate on a larger diverse
  // segment sample, so a handler over-fit to the small working set cannot
  // win (§3.2).
  // Skipped on interruption: a preempted run must return promptly, and its
  // partial/status flags tell the caller `best` skipped this re-ranking.
  if (!result.partial && !candidates.empty() && !segments.empty()) {
    obs::TraceSpan val_span("synth.validation", "synth");
    static auto& c_validated = obs::counter("synth.candidates_validated");
    sampler.grow_to(opts.final_validation_segments);
    std::vector<trace::Segment> validation;
    for (std::size_t idx : sampler.selected()) validation.push_back(segments[idx]);
    // Deduplicate candidates by rendered handler.
    std::vector<ScoredHandler> unique;
    std::vector<std::size_t> hashes;
    for (const auto& c : candidates) {
      const std::size_t h = dsl::hash_expr(*c.handler);
      if (std::find(hashes.begin(), hashes.end(), h) != hashes.end()) continue;
      hashes.push_back(h);
      unique.push_back(c);
    }
    result.candidates_validated = unique.size();
    c_validated.add(unique.size());
    std::mutex val_mu;
    ScoredHandler winner;
    std::size_t winner_idx = unique.size();
    pool->parallel_for(unique.size(), [&](std::size_t i) {
      // Snapshot the winner's distance as the abandon bound: it only ever
      // shrinks, so a candidate abandoned against a stale value is also at
      // or above the final minimum and could never have been selected. The
      // bound sits one ULP above the incumbent so an equal-distance
      // candidate finishes scoring and reaches the index tie-break below —
      // abandonment triggers at >= the cutoff.
      double cutoff = std::numeric_limits<double>::infinity();
      if (opts.early_abandon) {
        std::lock_guard lk(val_mu);
        cutoff = std::nextafter(winner.distance, std::numeric_limits<double>::infinity());
      }
      const double d =
          total_distance(*unique[i].handler, validation, opts.metric, opts.dopts, {}, cutoff);
      std::lock_guard lk(val_mu);
      // Deterministic despite completion order: minimum by (distance,
      // candidate index), which equals the coordinator's sequential
      // first-wins fold over the same deduplicated candidate list.
      if (d < winner.distance || (d == winner.distance && i < winner_idx)) {
        winner = unique[i];
        winner.distance = d;
        winner_idx = i;
      }
    });
    if (winner.valid()) result.best = winner;
  }

  // The run winner, flagged kJournalFinal. Recorded under a fresh scope
  // (bucket 0 = none, iter = iterations completed) — validation itself is
  // not journaled, so this is the only event past the refinement loop.
  if (journal_run && result.best.valid() && result.best.sketch) {
    obs::JournalScope scope(journal_job, 0,
                            static_cast<std::uint32_t>(result.iterations.size()));
    obs::journal_record_selected(dsl::hash_expr(*result.best.sketch), result.best.fingerprint,
                                 result.best.distance,
                                 obs::journal_intern(dsl::to_string(*result.best.handler)),
                                 true);
    obs::journal_emit_trace_counters();
  }

  for (const auto& st : states) {
    result.total_sketches += st.sketches.size();
    result.total_handlers_scored += st.handlers_scored;
  }
  result.cache_hits = run_cache_hits.load(std::memory_order_relaxed);
  result.cache_misses = run_cache_misses.load(std::memory_order_relaxed);
  result.seconds = total_clock.elapsed_seconds();
  return result;
}

}  // namespace abg::synth
