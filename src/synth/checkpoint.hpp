// Checkpoint/resume for the refinement loop (ISSUE 3). After every completed
// iteration, synthesize() can serialize its full search state — iteration
// counter, N/k, per-bucket enumeration counts and RNG streams, bucket-best
// handlers, the segment sampler, every candidate seen, and the iteration
// reports — to a file via an atomic tmp+rename write. A killed batch run
// restarted with resume=true replays from the last completed iteration and
// produces bit-identical final results (golden-tested).
//
// Sketches are NOT serialized: the SMT enumerator is deterministic, so the
// checkpoint records only how many sketches each bucket had enumerated and
// resume re-derives them. Handlers round-trip as text via dsl::to_string /
// dsl::parse; doubles are serialized as C99 hex floats so distances restore
// bit-exactly.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "synth/refinement.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace abg::synth {

struct BucketCheckpoint {
  std::string label;
  std::size_t sketches = 0;  // re-enumerated on resume
  std::size_t handlers_scored = 0;
  bool exhausted = false;
  util::Rng::State rng;
  double best_distance = std::numeric_limits<double>::infinity();
  std::string best_sketch;   // empty = no valid best yet
  std::string best_handler;
};

struct ScoredHandlerCheckpoint {
  double distance = std::numeric_limits<double>::infinity();
  std::string sketch;
  std::string handler;
};

struct Checkpoint {
  // Guards against resuming over different inputs: both must match the
  // resuming run exactly.
  std::uint64_t pool_fingerprint = 0;  // segment_set_fingerprint(all segments)
  std::uint64_t seed = 0;              // SynthesisOptions::seed

  int next_iter = 0;  // first iteration the resumed loop should run
  int n = 0;          // N at next_iter
  int k = 0;          // k at next_iter

  ScoredHandlerCheckpoint best;  // running best across buckets
  util::Rng::State sampler_rng;
  std::vector<std::size_t> sampler_selected;
  std::vector<std::size_t> live;  // indices into the bucket-state vector
  std::vector<BucketCheckpoint> buckets;
  std::vector<ScoredHandlerCheckpoint> candidates;
  std::vector<IterationReport> iterations;
};

// Durable atomic write: serialize to `path + ".tmp"`, fsync, rename over
// `path`, fsync the parent directory (util::atomic_write_file). A crash
// mid-save leaves the previous checkpoint intact; after power loss the file
// is either the old checkpoint or the complete new one, never torn.
util::Status save_checkpoint(const Checkpoint& ck, const std::string& path);

// kIoError if the file cannot be read (callers treat a missing file as
// "start fresh"); kParseError on any malformed content.
util::Result<Checkpoint> load_checkpoint(const std::string& path);

}  // namespace abg::synth
