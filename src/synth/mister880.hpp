// The Mister880 baseline (Ferreira et al., HotNets 2021), re-implemented as
// the paper characterizes it (§2.2, §7): program synthesis as a *decision*
// problem. A candidate handler is accepted only if its replayed trace
// matches the observation (within a strict per-point tolerance — the
// floating-point analogue of an exact SMT equality); otherwise it is
// rejected outright. The searcher exhaustively walks the sketch space in
// enumeration order, concretizes each sketch, and returns the first accepted
// handler.
//
// This gives the pipeline a head-to-head comparator: on clean traces both
// approaches can succeed; with any measurement noise the decision
// formulation discards every candidate — including the ground-truth handler
// itself — while the optimization formulation keeps working.
#pragma once

#include <cstddef>
#include <optional>

#include "dsl/dsl.hpp"
#include "synth/enumerator.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace abg::synth {

struct Mister880Options {
  // Relative per-point tolerance for "exact" match: |synth - obs| must be
  // within this fraction of the observed value at EVERY replayed ACK.
  double match_tolerance = 0.01;
  // Enumeration bounds.
  std::optional<int> max_depth;
  std::optional<int> max_nodes;
  int max_holes = 3;
  // Work caps: the decision search is exhaustive by design, so a cap keeps
  // the baseline bounded.
  std::size_t max_sketches = 2000;
  std::size_t concretize_budget = 48;
  bool unit_check = true;
  std::uint64_t seed = 7;

  // Eager validation, same contract as SynthesisOptions::validate():
  // kInvalidArgument naming the first bad field.
  util::Status validate() const;
};

struct Mister880Result {
  dsl::ExprPtr handler;  // nullptr if no candidate matched exactly
  std::size_t sketches_tried = 0;
  std::size_t handlers_tried = 0;

  bool found() const { return handler != nullptr; }
};

// True iff the handler's replayed trace matches the segment point-for-point
// within the tolerance (the decision-problem acceptance test).
bool exact_match(const dsl::Expr& handler, const trace::Segment& segment, double tolerance);

// Exhaustive decision-problem search over the DSL.
Mister880Result mister880_synthesize(const dsl::Dsl& dsl,
                                     const std::vector<trace::Segment>& segments,
                                     const Mister880Options& opts = {});

}  // namespace abg::synth
