// Batched candidate replay (ISSUE 7): run one compiled sketch over a trace
// segment for up to dsl::kBatchLanes hole-assignments in lockstep. Each lane
// carries only its own evolving CWND; the observed signals broadcast. Lane
// L's synthesized series is bit-identical to
// replay(*fill_holes(sketch, assigns[L]), segment, opts) — asserted by the
// fuzz suite in tests/test_data_parallel.cpp — so the distance layer, the
// eval cache, and selection cannot tell the batched path from the scalar
// one.
#pragma once

#include <vector>

#include "dsl/bytecode.hpp"
#include "synth/replay.hpp"
#include "trace/trace.hpp"

namespace abg::synth {

// Replay `prog` (compiled from a sketch) over `segment` once per assignment.
// `assigns` holds one hole-binding vector per lane (at most dsl::kBatchLanes;
// bindings follow fill_holes's clamp rules). out->at(L) receives lane L's
// synthesized CWND series in packets.
void replay_batch(const dsl::Program& prog,
                  const std::vector<const std::vector<double>*>& assigns,
                  const trace::Segment& segment, const ReplayOptions& opts,
                  std::vector<std::vector<double>>* out);

}  // namespace abg::synth
