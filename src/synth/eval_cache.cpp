#include "synth/eval_cache.hpp"

#include <functional>

#include "obs/journal.hpp"
#include "obs/registry.hpp"

namespace abg::synth {

namespace {

inline std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  // FNV-1a step over the 8 bytes of v.
  h ^= v;
  return h * 0x100000001b3ull;
}

inline std::uint64_t mix_double(std::uint64_t h, double d) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return mix(h, bits);
}

}  // namespace

std::uint64_t segment_set_fingerprint(const std::vector<trace::Segment>& segments) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = mix(h, segments.size());
  for (const auto& seg : segments) {
    h = mix(h, seg.samples.size());
    for (const auto& s : seg.samples) {
      // The fields replay() and observed_series_pkts() read: anything that
      // can change a distance changes the fingerprint.
      h = mix_double(h, s.sig.now);
      h = mix_double(h, s.sig.mss);
      h = mix_double(h, s.sig.cwnd);
      h = mix_double(h, s.sig.inflight);
      h = mix_double(h, s.sig.acked_bytes);
      h = mix_double(h, s.sig.rtt);
      h = mix_double(h, s.sig.srtt);
      h = mix_double(h, s.sig.min_rtt);
      h = mix_double(h, s.sig.max_rtt);
      h = mix_double(h, s.sig.ack_rate);
      h = mix_double(h, s.sig.rtt_gradient);
      h = mix_double(h, s.sig.time_since_loss);
      h = mix_double(h, s.sig.cwnd_at_loss);
      h = mix_double(h, s.cwnd_after);
      h = mix(h, static_cast<std::uint64_t>(s.is_dup));
    }
  }
  return h;
}

EvalCache::EvalCache(std::size_t shard_count) {
  shards_.reserve(shard_count == 0 ? 1 : shard_count);
  for (std::size_t i = 0; i < (shard_count == 0 ? 1 : shard_count); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::uint64_t EvalCache::combined_key(std::uint64_t fingerprint, std::size_t canon_hash) {
  // Golden-ratio mix so fingerprint and hash bits spread across the word;
  // the shard index uses the high bits, the slot map the whole key.
  std::uint64_t k = fingerprint ^ (static_cast<std::uint64_t>(canon_hash) * 0x9e3779b97f4a7c15ull);
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  return k;
}

EvalCache::Shard& EvalCache::shard_for(std::uint64_t key) {
  return *shards_[static_cast<std::size_t>(key >> 33) % shards_.size()];
}

std::optional<double> EvalCache::lookup(std::uint64_t fingerprint, std::size_t canon_hash,
                                        const dsl::Expr& canon) {
  static auto& c_hits = obs::counter("synth.cache_hits");
  static auto& c_misses = obs::counter("synth.cache_misses");
  const std::uint64_t key = combined_key(fingerprint, canon_hash);
  Shard& sh = shard_for(key);
  {
    std::lock_guard lk(sh.mu);
    const auto it = sh.slots.find(key);
    if (it != sh.slots.end()) {
      for (const Entry& e : it->second) {
        if (e.fingerprint == fingerprint && e.canon_hash == canon_hash &&
            dsl::equal(*e.canon, canon)) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          c_hits.add();
          // Terminal lifecycle event for the probing candidate: the memo
          // cache answered, no distance evaluation will run.
          if (obs::journal_enabled()) {
            obs::journal_record_candidate(obs::JournalKind::kCacheHit, e.distance, 0);
          }
          return e.distance;
        }
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  c_misses.add();
  return std::nullopt;
}

void EvalCache::insert(std::uint64_t fingerprint, std::size_t canon_hash, dsl::ExprPtr canon,
                       double distance) {
  const std::uint64_t key = combined_key(fingerprint, canon_hash);
  Shard& sh = shard_for(key);
  std::lock_guard lk(sh.mu);
  auto& slot = sh.slots[key];
  for (const Entry& e : slot) {
    if (e.fingerprint == fingerprint && e.canon_hash == canon_hash &&
        dsl::equal(*e.canon, *canon)) {
      return;  // first write wins; the value is the same by construction
    }
  }
  slot.push_back(Entry{fingerprint, canon_hash, std::move(canon), distance});
}

std::size_t EvalCache::size() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    std::lock_guard lk(sh->mu);
    for (const auto& [key, slot] : sh->slots) n += slot.size();
  }
  return n;
}

std::uint64_t EvalCache::hits() const { return hits_.load(std::memory_order_relaxed); }
std::uint64_t EvalCache::misses() const { return misses_.load(std::memory_order_relaxed); }

}  // namespace abg::synth
