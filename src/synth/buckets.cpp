#include "synth/buckets.hpp"

#include <algorithm>

namespace abg::synth {

namespace {

bool is_comparison(dsl::Op o) {
  return o == dsl::Op::kLt || o == dsl::Op::kGt || o == dsl::Op::kModEq;
}

bool feasible(const std::vector<dsl::Op>& ops) {
  const bool has_cmp = std::any_of(ops.begin(), ops.end(), is_comparison);
  const bool has_cond =
      std::find(ops.begin(), ops.end(), dsl::Op::kCond) != ops.end();
  if (has_cmp && !has_cond) return false;
  if (has_cond && !has_cmp) return false;
  return true;
}

std::vector<dsl::Op> sorted(std::vector<dsl::Op> ops) {
  std::sort(ops.begin(), ops.end());
  return ops;
}

}  // namespace

std::string bucket_label(const std::vector<dsl::Op>& ops) {
  std::string label = "{";
  const auto s = sorted(ops);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i > 0) label += ',';
    label += dsl::op_name(s[i]);
  }
  label += '}';
  return label;
}

bool same_ops(const std::vector<dsl::Op>& a, const std::vector<dsl::Op>& b) {
  return sorted(a) == sorted(b);
}

std::vector<Bucket> make_buckets(const dsl::Dsl& dsl) {
  std::vector<Bucket> buckets;
  const auto& ops = dsl.ops;
  const std::size_t n = ops.size();
  for (std::size_t mask = 0; mask < (1ull << n); ++mask) {
    std::vector<dsl::Op> subset;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1ull << i)) subset.push_back(ops[i]);
    }
    if (!feasible(subset)) continue;
    Bucket b;
    b.label = bucket_label(subset);
    b.ops = sorted(std::move(subset));
    buckets.push_back(std::move(b));
  }
  return buckets;
}

Bucket bucket_of(const dsl::Expr& sketch) {
  Bucket b;
  b.ops = sorted(dsl::ops_used(sketch));
  b.label = bucket_label(b.ops);
  return b;
}

}  // namespace abg::synth
