#include "synth/mister880.hpp"

#include <cmath>

#include "obs/registry.hpp"
#include "synth/concretize.hpp"
#include "synth/replay.hpp"

namespace abg::synth {

util::Status Mister880Options::validate() const {
  auto bad = [](const std::string& msg) {
    return util::Status(util::StatusCode::kInvalidArgument, msg);
  };
  if (std::isnan(match_tolerance) || match_tolerance <= 0.0) {
    return bad("match_tolerance must be a positive fraction");
  }
  if (max_depth && *max_depth < 1) return bad("max_depth must be >= 1 when set");
  if (max_nodes && *max_nodes < 1) return bad("max_nodes must be >= 1 when set");
  if (max_holes < 0) return bad("max_holes must be >= 0");
  if (max_sketches < 1) return bad("max_sketches must be >= 1");
  if (concretize_budget < 1) return bad("concretize_budget must be >= 1");
  return util::Status::ok();
}

bool exact_match(const dsl::Expr& handler, const trace::Segment& segment, double tolerance) {
  const auto synth = replay(handler, segment);
  const auto observed = observed_series_pkts(segment);
  if (synth.size() != observed.size()) return false;
  for (std::size_t i = 0; i < synth.size(); ++i) {
    const double scale = std::max(std::fabs(observed[i]), 1.0);
    if (std::fabs(synth[i] - observed[i]) > tolerance * scale) return false;
  }
  return true;
}

Mister880Result mister880_synthesize(const dsl::Dsl& dsl,
                                     const std::vector<trace::Segment>& segments,
                                     const Mister880Options& opts) {
  Mister880Result result;
  EnumeratorOptions eopts;
  eopts.unit_check = opts.unit_check;
  eopts.max_depth = opts.max_depth;
  eopts.max_nodes = opts.max_nodes;
  eopts.max_holes = opts.max_holes;
  SketchEnumerator enumerator(dsl, eopts);

  util::Rng rng(opts.seed);
  ConcretizeOptions copts;
  copts.budget = opts.concretize_budget;

  // Counters advance at the same statements as the hand-counted result
  // fields; test_obs asserts the two stay equal so they cannot drift.
  static auto& c_sketches = obs::counter("mister880.sketches_tried");
  static auto& c_handlers = obs::counter("mister880.handlers_tried");
  while (result.sketches_tried < opts.max_sketches) {
    auto sketch = enumerator.next();
    if (!sketch) break;  // space exhausted: decision search failed
    ++result.sketches_tried;
    c_sketches.add();
    for (const auto& assign : enumerate_assignments(**sketch, dsl.constant_pool, copts, rng)) {
      const auto handler = dsl::fill_holes(*sketch, assign);
      ++result.handlers_tried;
      c_handlers.add();
      bool all_match = true;
      for (const auto& seg : segments) {
        if (!exact_match(*handler, seg, opts.match_tolerance)) {
          all_match = false;
          break;
        }
      }
      if (all_match) {
        result.handler = handler;
        return result;  // first exact solution wins (decision semantics)
      }
    }
  }
  return result;
}

}  // namespace abg::synth
