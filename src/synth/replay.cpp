#include "synth/replay.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dsl/eval.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"
#include "util/fault_injection.hpp"
#include "util/log.hpp"

namespace abg::synth {

std::vector<double> replay(const dsl::Expr& handler, const trace::Segment& segment,
                           const ReplayOptions& opts) {
  std::vector<double> out;
  out.reserve(segment.samples.size());
  if (segment.samples.empty()) return out;

  double cwnd = segment.samples.front().sig.cwnd;  // start from the observed window
  const double mss = segment.samples.front().sig.mss > 0 ? segment.samples.front().sig.mss : 1.0;
  // A corrupted (non-finite) starting window would poison every step of the
  // rollout through the clamp below; fall back to one packet.
  if (!std::isfinite(cwnd)) cwnd = mss;
  for (const auto& sample : segment.samples) {
    if (!sample.is_dup && sample.sig.acked_bytes > 0) {
      cca::Signals sig = sample.sig;  // observed inputs...
      sig.cwnd = cwnd;                // ...but the candidate's own state
      double next = dsl::eval(handler, sig);
      util::fault::corrupt(&next, "replay.handler_output");
      if (std::isfinite(next)) {
        cwnd = std::clamp(next, opts.min_cwnd_pkts * mss, opts.max_cwnd_pkts * mss);
      } else {
        // Hold the previous window — a candidate that divides by zero or
        // overflows must degrade, not propagate NaN into the distance layer.
        static auto& c_nonfinite = obs::counter("synth.nonfinite_cwnd");
        c_nonfinite.add();
        ABG_WARN_EVERY_N(100000,
                         "replay: candidate handler produced non-finite cwnd; holding "
                         "previous window (%llu so far)",
                         static_cast<unsigned long long>(c_nonfinite.value()));
      }
    }
    out.push_back(cwnd / mss);
  }
  return out;
}

std::vector<double> observed_series_pkts(const trace::Segment& segment) {
  std::vector<double> out;
  out.reserve(segment.samples.size());
  for (const auto& s : segment.samples) {
    const double mss = s.sig.mss > 0 ? s.sig.mss : 1.0;
    out.push_back(s.cwnd_after / mss);
  }
  return out;
}

double segment_distance(const dsl::Expr& handler, const trace::Segment& segment,
                        distance::Metric metric, const distance::DistanceOptions& dopts,
                        const ReplayOptions& ropts, double abandon_above) {
  const auto synth = replay(handler, segment, ropts);
  const auto observed = observed_series_pkts(segment);
  return distance::compute(metric, synth, observed, dopts, abandon_above);
}

double total_distance(const dsl::Expr& handler, const std::vector<trace::Segment>& segments,
                      distance::Metric metric, const distance::DistanceOptions& dopts,
                      const ReplayOptions& ropts, double abandon_above) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const bool bounded = std::isfinite(abandon_above);
  double sum = 0.0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto& seg = segments[i];
    // Stamp the segment index so the journal's DTW detail events attribute
    // cells to working-set positions (abg_inspect hotspots --by segment).
    if (obs::journal_enabled()) obs::journal_set_segment(static_cast<std::uint32_t>(i));
    // Remaining budget for this segment: if its distance alone reaches it,
    // the total cannot come in under the bound.
    sum += segment_distance(handler, seg, metric, dopts, ropts,
                            bounded ? abandon_above - sum : distance::kNoAbandon);
    if (bounded && sum >= abandon_above) {
      static auto& c_ab = obs::counter("synth.distance_abandons");
      c_ab.add();
      return kInf;
    }
  }
  return sum;
}

}  // namespace abg::synth
