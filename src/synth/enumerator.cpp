#include "synth/enumerator.hpp"

#include <z3++.h>

#include <algorithm>
#include <unordered_set>

#include "dsl/simplify.hpp"
#include "dsl/units.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"

namespace abg::synth {

namespace {

// Production ids for the per-node selector variable:
//   0                -> inactive
//   1 .. S           -> signal leaf (dsl.signals[v-1])
//   S+1              -> hole (constant)
//   S+2 .. S+1+O     -> operator (dsl.ops[v-S-2])
struct ProdIds {
  int signal_base = 1;
  int hole_id = 0;        // 0 if constants disallowed
  int op_base = 0;
  int max_id = 0;

  explicit ProdIds(const dsl::Dsl& d) {
    const int s = static_cast<int>(d.signals.size());
    hole_id = d.allow_constants ? s + 1 : 0;
    op_base = s + (d.allow_constants ? 2 : 1);
    max_id = op_base + static_cast<int>(d.ops.size()) - 1;
  }
};

}  // namespace

struct SketchEnumerator::Impl {
  dsl::Dsl dsl;
  EnumeratorOptions opts;
  ProdIds ids;
  int max_depth;
  int max_nodes;
  std::size_t node_total;  // heap size: (3^depth - 1) / 2

  z3::context ctx;
  z3::solver solver;
  std::vector<z3::expr> prod;  // per-node production selector
  std::vector<z3::expr> ub, us;  // per-node unit exponents (if unit_check)

  bool exhausted = false;
  std::size_t models = 0;
  std::size_t emitted = 0;
  std::unordered_set<std::size_t> seen_hashes;
  // Sketches are enumerated in increasing size (node count): the refinement
  // loop samples the first N of a bucket, and small expressions are both the
  // likeliest true handlers and the cheapest to score. The size target is
  // passed as a per-check assumption so blocking clauses stay permanent.
  int current_size = 1;

  // A sketch using *exactly* the operator set B needs at least
  // 1 + sum(arity(o)) nodes: >= |B| internal nodes, and a tree with those
  // internal nodes has 1 + sum(arity - 1) leaves. Starting at this bound
  // avoids grinding UNSAT proofs at impossible sizes, and buckets whose
  // bound exceeds max_nodes are empty outright.
  int min_feasible_size() const {
    if (!opts.bucket) return 1;
    int bound = 1;
    for (dsl::Op o : *opts.bucket) bound += dsl::op_arity(o);
    return bound;
  }

  Impl(const dsl::Dsl& d, EnumeratorOptions o)
      : dsl(d), opts(std::move(o)), ids(d), solver(ctx) {
    max_depth = opts.max_depth.value_or(dsl.max_depth);
    max_nodes = opts.max_nodes.value_or(dsl.max_nodes);
    current_size = min_feasible_size();
    if (current_size > max_nodes) exhausted = true;
    node_total = 1;
    std::size_t layer = 1;
    for (int i = 1; i < max_depth; ++i) {
      layer *= 3;
      node_total += layer;
    }
    build_vars();
    build_constraints();
  }

  bool is_bool_prod(int v) const {
    if (v < ids.op_base) return false;
    return dsl::op_returns_bool(dsl.ops[static_cast<std::size_t>(v - ids.op_base)]);
  }

  int prod_of_op(dsl::Op o) const {
    for (std::size_t i = 0; i < dsl.ops.size(); ++i) {
      if (dsl.ops[i] == o) return ids.op_base + static_cast<int>(i);
    }
    return -1;
  }

  // Heap children; index >= node_total means "beyond the tree" (must be
  // conceptually inactive, which bounds the parent to leaf productions).
  static std::size_t child(std::size_t i, int k) { return 3 * i + 1 + static_cast<std::size_t>(k); }

  void build_vars() {
    for (std::size_t i = 0; i < node_total; ++i) {
      prod.push_back(ctx.int_const(("p" + std::to_string(i)).c_str()));
      if (opts.unit_check) {
        ub.push_back(ctx.int_const(("ub" + std::to_string(i)).c_str()));
        us.push_back(ctx.int_const(("us" + std::to_string(i)).c_str()));
      }
    }
  }

  z3::expr active(std::size_t i) { return prod[i] != 0; }
  z3::expr inactive_beyond(std::size_t i) {
    // Virtual nodes beyond the heap are always inactive.
    return i < node_total ? !active(i) : ctx.bool_val(true);
  }
  z3::expr is_prod(std::size_t i, int v) { return prod[i] == v; }

  z3::expr is_num_node(std::size_t i) {
    // Active and not a bool-returning op.
    z3::expr e = active(i);
    for (std::size_t j = 0; j < dsl.ops.size(); ++j) {
      if (dsl::op_returns_bool(dsl.ops[j])) {
        e = e && prod[i] != ids.op_base + static_cast<int>(j);
      }
    }
    return e;
  }

  z3::expr is_bool_node(std::size_t i) {
    z3::expr e = ctx.bool_val(false);
    for (std::size_t j = 0; j < dsl.ops.size(); ++j) {
      if (dsl::op_returns_bool(dsl.ops[j])) {
        e = e || prod[i] == ids.op_base + static_cast<int>(j);
      }
    }
    return e;
  }

  z3::expr child_req(std::size_t i, int k, bool want_bool) {
    const std::size_t c = child(i, k);
    if (c >= node_total) return ctx.bool_val(false);  // child needed but no room
    return want_bool ? is_bool_node(c) : is_num_node(c);
  }

  z3::expr child_off(std::size_t i, int k) {
    const std::size_t c = child(i, k);
    return c < node_total ? !active(c) : ctx.bool_val(true);
  }

  void build_constraints() {
    // Domain of the selector.
    for (std::size_t i = 0; i < node_total; ++i) {
      solver.add(prod[i] >= 0 && prod[i] <= ids.max_id);
      if (!dsl.allow_constants) {
        // No hole production exists; ids already exclude it.
      }
    }
    // Root: active, numeric.
    solver.add(is_num_node(0));

    for (std::size_t i = 0; i < node_total; ++i) {
      // Leaves and holes have no children.
      z3::expr is_leaf = prod[i] >= 1 && prod[i] < ids.op_base;
      solver.add(z3::implies(is_leaf || prod[i] == 0,
                             child_off(i, 0) && child_off(i, 1) && child_off(i, 2)));
      // Operators constrain their children.
      for (std::size_t j = 0; j < dsl.ops.size(); ++j) {
        const dsl::Op o = dsl.ops[j];
        const z3::expr sel = prod[i] == ids.op_base + static_cast<int>(j);
        z3::expr kids = ctx.bool_val(true);
        switch (dsl::op_arity(o)) {
          case 1:
            kids = child_req(i, 0, false) && child_off(i, 1) && child_off(i, 2);
            break;
          case 2:
            kids = child_req(i, 0, false) && child_req(i, 1, false) && child_off(i, 2);
            break;
          case 3:  // cond: guard is bool, branches numeric
            kids = child_req(i, 0, true) && child_req(i, 1, false) && child_req(i, 2, false);
            break;
        }
        solver.add(z3::implies(sel, kids));
      }
    }

    // Node budget (the exact size is additionally steered per check() via an
    // assumption, see next()).
    {
      z3::expr_vector actives(ctx);
      for (std::size_t i = 0; i < node_total; ++i) {
        actives.push_back(z3::ite(active(i), ctx.int_val(1), ctx.int_val(0)));
      }
      solver.add(z3::sum(actives) <= max_nodes);
    }

    // Hole budget.
    if (dsl.allow_constants) {
      z3::expr_vector holes(ctx);
      for (std::size_t i = 0; i < node_total; ++i) {
        holes.push_back(z3::ite(prod[i] == ids.hole_id, ctx.int_val(1), ctx.int_val(0)));
      }
      solver.add(z3::sum(holes) <= opts.max_holes);
    }

    if (opts.unit_check) add_unit_constraints();
    add_anti_simplification();
    if (opts.bucket) add_bucket_constraint(*opts.bucket);
  }

  void add_unit_constraints() {
    solver.add(ub[0] == 1 && us[0] == 0);  // output in bytes
    for (std::size_t i = 0; i < node_total; ++i) {
      // Signals have fixed units.
      for (std::size_t s = 0; s < dsl.signals.size(); ++s) {
        const auto u = dsl::signal_unit(dsl.signals[s]);
        solver.add(z3::implies(prod[i] == ids.signal_base + static_cast<int>(s),
                               ub[i] == u.bytes && us[i] == u.secs));
      }
      // Holes are unit-polymorphic within bounds.
      if (dsl.allow_constants) {
        solver.add(z3::implies(prod[i] == ids.hole_id,
                               ub[i] >= -dsl::kHoleUnitRange && ub[i] <= dsl::kHoleUnitRange &&
                                   us[i] >= -dsl::kHoleUnitRange && us[i] <= dsl::kHoleUnitRange));
      }
      // Inactive nodes pinned to zero (prunes the model space).
      solver.add(z3::implies(!active(i), ub[i] == 0 && us[i] == 0));

      // Operator unit algebra.
      for (std::size_t j = 0; j < dsl.ops.size(); ++j) {
        const dsl::Op o = dsl.ops[j];
        const z3::expr sel = prod[i] == ids.op_base + static_cast<int>(j);
        const std::size_t c0 = child(i, 0), c1 = child(i, 1), c2 = child(i, 2);
        auto in_tree = [this](std::size_t c) { return c < node_total; };
        z3::expr rule = ctx.bool_val(true);
        switch (o) {
          case dsl::Op::kAdd:
          case dsl::Op::kSub:
            if (in_tree(c1)) {
              rule = ub[i] == ub[c0] && us[i] == us[c0] && ub[c0] == ub[c1] && us[c0] == us[c1];
            }
            break;
          case dsl::Op::kMul:
            if (in_tree(c1)) rule = ub[i] == ub[c0] + ub[c1] && us[i] == us[c0] + us[c1];
            break;
          case dsl::Op::kDiv:
            if (in_tree(c1)) rule = ub[i] == ub[c0] - ub[c1] && us[i] == us[c0] - us[c1];
            break;
          case dsl::Op::kCond:
            if (in_tree(c2)) {
              rule = ub[i] == ub[c1] && us[i] == us[c1] && ub[c1] == ub[c2] && us[c1] == us[c2];
            }
            break;
          case dsl::Op::kCube:
            if (in_tree(c0)) rule = ub[i] == 3 * ub[c0] && us[i] == 3 * us[c0];
            break;
          case dsl::Op::kCbrt:
            // Integer-valued units only (§5.5): the child's exponents must
            // be divisible by three.
            if (in_tree(c0)) rule = ub[c0] == 3 * ub[i] && us[c0] == 3 * us[i];
            break;
          case dsl::Op::kLt:
          case dsl::Op::kGt:
          case dsl::Op::kModEq:
            if (in_tree(c1)) {
              rule = ub[i] == 0 && us[i] == 0 && ub[c0] == ub[c1] && us[c0] == us[c1];
            }
            break;
        }
        solver.add(z3::implies(sel, rule));
      }
    }
  }

  void add_anti_simplification() {
    const int hole = ids.hole_id;
    for (std::size_t i = 0; i < node_total; ++i) {
      const std::size_t c0 = child(i, 0), c1 = child(i, 1), c2 = child(i, 2);
      if (c0 >= node_total) continue;
      auto sel = [&](dsl::Op o) {
        const int p = prod_of_op(o);
        return p >= 0 ? prod[i] == p : ctx.bool_val(false);
      };
      // Binary arithmetic/comparison over two holes folds to a constant /
      // constant truth value.
      if (dsl.allow_constants && c1 < node_total) {
        for (dsl::Op o : {dsl::Op::kAdd, dsl::Op::kSub, dsl::Op::kMul, dsl::Op::kDiv,
                          dsl::Op::kLt, dsl::Op::kGt, dsl::Op::kModEq}) {
          solver.add(z3::implies(sel(o), !(prod[c0] == hole && prod[c1] == hole)));
        }
        // Constant guard on a conditional folds the conditional away.
      }
      // Canonical left-leaning associativity for + and *.
      if (c1 < node_total) {
        const int p_add = prod_of_op(dsl::Op::kAdd);
        const int p_mul = prod_of_op(dsl::Op::kMul);
        const int p_div = prod_of_op(dsl::Op::kDiv);
        if (p_add >= 0) solver.add(z3::implies(sel(dsl::Op::kAdd), prod[c1] != p_add));
        if (p_mul >= 0) solver.add(z3::implies(sel(dsl::Op::kMul), prod[c1] != p_mul));
        if (p_div >= 0) {
          solver.add(z3::implies(sel(dsl::Op::kDiv), prod[c0] != p_div && prod[c1] != p_div));
        }
      }
      // cube(cbrt(x)) and cbrt(cube(x)) are identities.
      {
        const int p_cube = prod_of_op(dsl::Op::kCube);
        const int p_cbrt = prod_of_op(dsl::Op::kCbrt);
        if (p_cube >= 0 && p_cbrt >= 0) {
          solver.add(z3::implies(sel(dsl::Op::kCube), prod[c0] != p_cbrt));
          solver.add(z3::implies(sel(dsl::Op::kCbrt), prod[c0] != p_cube));
        }
        // cube/cbrt of a bare hole folds to a constant.
        if (dsl.allow_constants) {
          if (p_cube >= 0) solver.add(z3::implies(sel(dsl::Op::kCube), prod[c0] != hole));
          if (p_cbrt >= 0) solver.add(z3::implies(sel(dsl::Op::kCbrt), prod[c0] != hole));
        }
      }
      (void)c2;
    }
  }

  void add_bucket_constraint(const std::vector<dsl::Op>& bucket) {
    for (std::size_t j = 0; j < dsl.ops.size(); ++j) {
      const dsl::Op o = dsl.ops[j];
      const int p = ids.op_base + static_cast<int>(j);
      const bool in_bucket =
          std::find(bucket.begin(), bucket.end(), o) != bucket.end();
      if (!in_bucket) {
        for (std::size_t i = 0; i < node_total; ++i) solver.add(prod[i] != p);
      } else {
        z3::expr any = ctx.bool_val(false);
        for (std::size_t i = 0; i < node_total; ++i) any = any || prod[i] == p;
        solver.add(any);
      }
    }
  }

  dsl::ExprPtr decode(const z3::model& m, std::size_t i, int& next_hole) {
    const int v = m.eval(prod[i], true).get_numeral_int();
    if (v == 0) return nullptr;
    if (v >= 1 && v < ids.op_base) {
      if (dsl.allow_constants && v == ids.hole_id) return dsl::hole(next_hole++);
      return dsl::sig(dsl.signals[static_cast<std::size_t>(v - 1)]);
    }
    const dsl::Op o = dsl.ops[static_cast<std::size_t>(v - ids.op_base)];
    std::vector<dsl::ExprPtr> kids;
    for (int k = 0; k < dsl::op_arity(o); ++k) {
      auto c = decode(m, child(i, k), next_hole);
      if (!c) return nullptr;  // malformed model; should not happen
      kids.push_back(std::move(c));
    }
    return dsl::node(o, std::move(kids));
  }

  void block(const z3::model& m) {
    z3::expr clause = ctx.bool_val(false);
    for (std::size_t i = 0; i < node_total; ++i) {
      clause = clause || prod[i] != m.eval(prod[i], true);
    }
    solver.add(clause);
  }

  z3::expr size_assumption(int k) {
    z3::expr_vector actives(ctx);
    for (std::size_t i = 0; i < node_total; ++i) {
      actives.push_back(z3::ite(active(i), ctx.int_val(1), ctx.int_val(0)));
    }
    return z3::sum(actives) == k;
  }

  std::optional<dsl::ExprPtr> next() {
    static auto& c_models = obs::counter("synth.solver_models");
    static auto& c_emitted = obs::counter("synth.sketches_emitted");
    while (!exhausted) {
      // Smallest-first: exhaust all size-k sketches before size k+1.
      z3::expr_vector assumptions(ctx);
      assumptions.push_back(size_assumption(current_size));
      if (solver.check(assumptions) != z3::sat) {
        if (++current_size > max_nodes) {
          exhausted = true;
          return std::nullopt;
        }
        continue;
      }
      const z3::model m = solver.get_model();
      ++models;
      c_models.add();
      int next_hole = 0;
      dsl::ExprPtr sketch = decode(m, 0, next_hole);
      block(m);
      if (!sketch) continue;
      // Richer syntactic filter + commutative dedup (the post-filter half of
      // the paper's sympy-based non-simplifiability check).
      if (dsl::is_simplifiable(*sketch)) continue;
      const auto canon = dsl::canonicalize(sketch);
      const auto canon_hash = dsl::hash_expr(*canon);
      if (!seen_hashes.insert(canon_hash).second) continue;
      ++emitted;
      c_emitted.add();
      // Journal the sketch under the caller's provenance (the refinement
      // loop enumerates inside its bucket scope; no scope, no event).
      if (obs::journal_enabled()) obs::journal_record_sketch(canon_hash);
      return canon;
    }
    return std::nullopt;
  }
};

SketchEnumerator::SketchEnumerator(const dsl::Dsl& dsl, EnumeratorOptions opts)
    : impl_(std::make_unique<Impl>(dsl, std::move(opts))) {}

SketchEnumerator::~SketchEnumerator() = default;

std::optional<dsl::ExprPtr> SketchEnumerator::next() { return impl_->next(); }
bool SketchEnumerator::exhausted() const { return impl_->exhausted; }
std::size_t SketchEnumerator::models_enumerated() const { return impl_->models; }
std::size_t SketchEnumerator::sketches_emitted() const { return impl_->emitted; }

std::vector<dsl::ExprPtr> enumerate_all(const dsl::Dsl& dsl, const EnumeratorOptions& opts,
                                        std::size_t cap) {
  SketchEnumerator e(dsl, opts);
  std::vector<dsl::ExprPtr> out;
  while (out.size() < cap) {
    auto s = e.next();
    if (!s) break;
    out.push_back(std::move(*s));
  }
  return out;
}

}  // namespace abg::synth
