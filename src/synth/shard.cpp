#include "synth/shard.hpp"

#include <algorithm>
#include <thread>

#include "dsl/parse.hpp"
#include "obs/registry.hpp"

namespace abg::synth {

std::uint64_t bucket_rng_seed(const std::string& label, std::uint64_t seed) {
  std::uint64_t h = seed ^ 0xcbf29ce484222325ull;
  for (char c : label) h = (h ^ static_cast<std::uint64_t>(c)) * 0x100000001b3ull;
  return h;
}

distance::DistanceOptions effective_distance_options(const SynthesisOptions& opts) {
  distance::DistanceOptions dopts = opts.dopts;
  if (opts.simd != distance::Simd::kAuto) dopts.simd = opts.simd;
  return dopts;
}

void ensure_bucket_enumerator(const dsl::Dsl& dsl, const SynthesisOptions& opts,
                              BucketSearchState& st) {
  if (st.enumerator || st.exhausted) return;
  EnumeratorOptions eopts;
  eopts.unit_check = opts.unit_check;
  eopts.bucket = st.bucket.ops;
  eopts.max_holes = opts.max_holes;
  eopts.max_depth = opts.max_depth;
  eopts.max_nodes = opts.max_nodes;
  st.enumerator = std::make_unique<SketchEnumerator>(dsl, eopts);
}

void enumerate_bucket_sketches(const dsl::Dsl& dsl, const SynthesisOptions& opts,
                               BucketSearchState& st, std::size_t target,
                               const std::function<bool()>& stop) {
  static auto& c_sketches = obs::counter("synth.sketches_enumerated");
  ensure_bucket_enumerator(dsl, opts, st);
  // Always enumerate at least one sketch so an expired budget still returns
  // the best handler seen (§4.4's interrupt semantics).
  while (st.sketches.size() < target && !st.exhausted && (st.sketches.empty() || !stop())) {
    auto s = st.enumerator->next();
    if (!s) {
      st.exhausted = true;
      break;
    }
    c_sketches.add();
    st.sketches.push_back(std::move(*s));
  }
}

ScoredHandler score_bucket_pass(const dsl::Dsl& dsl, const SynthesisOptions& opts,
                                BucketSearchState& st,
                                const std::vector<trace::Segment>& working, EvalContext* ctx,
                                const std::function<bool()>& stop) {
  ScoredHandler bucket_best;
  for (const auto& sk : st.sketches) {
    // Bound by this bucket's own best, not the global one: the per-bucket
    // minimum feeds the top-k ranking and must stay exact.
    if (ctx) ctx->abandon_above = bucket_best.distance;
    auto scored =
        score_sketch(sk, working, dsl.constant_pool, opts, st.rng, &st.handlers_scored, ctx);
    if (scored.distance < bucket_best.distance) bucket_best = scored;
    if (stop() && bucket_best.valid()) break;
  }
  st.best = bucket_best;
  return bucket_best;
}

util::Result<ScoredHandler> parse_scored_handler(double distance, const std::string& sketch_text,
                                                 const std::string& handler_text) {
  ScoredHandler sh;
  sh.distance = distance;
  if (!sketch_text.empty()) {
    auto p = dsl::parse(sketch_text);
    if (!p) {
      return util::Status(util::StatusCode::kParseError,
                          "unparseable sketch text '" + sketch_text + "'");
    }
    sh.sketch = p.expr;
  }
  if (!handler_text.empty()) {
    auto p = dsl::parse(handler_text);
    if (!p) {
      return util::Status(util::StatusCode::kParseError,
                          "unparseable handler text '" + handler_text + "'");
    }
    sh.handler = p.expr;
  }
  return sh;
}

BucketCheckpoint bucket_state_to_checkpoint(const BucketSearchState& st) {
  BucketCheckpoint b;
  b.label = st.bucket.label;
  b.sketches = st.sketches.size();
  b.handlers_scored = st.handlers_scored;
  b.exhausted = st.exhausted;
  b.rng = st.rng.state();
  b.best_distance = st.best.distance;
  b.best_sketch = st.best.sketch ? dsl::to_string(*st.best.sketch) : std::string();
  b.best_handler = st.best.handler ? dsl::to_string(*st.best.handler) : std::string();
  return b;
}

util::Status bucket_state_from_checkpoint(const dsl::Dsl& dsl, const SynthesisOptions& opts,
                                          const BucketCheckpoint& ck, BucketSearchState* st) {
  st->handlers_scored = ck.handlers_scored;
  st->exhausted = ck.exhausted;
  st->rng.set_state(ck.rng);
  auto best = parse_scored_handler(ck.best_distance, ck.best_sketch, ck.best_handler);
  if (!best.ok()) return best.status().with_context("bucket " + ck.label);
  st->best = *best;
  // Sketches are re-derived, not deserialized: the SMT enumerator is
  // deterministic, so pulling the recorded count reproduces the list. This
  // intentionally does NOT count into synth.sketches_enumerated — the
  // original enumeration already did (checkpoint resume has the same rule).
  st->sketches.clear();
  st->enumerator.reset();
  if (ck.sketches > 0) {
    const bool was_exhausted = st->exhausted;
    st->exhausted = false;  // re-open for re-derivation
    ensure_bucket_enumerator(dsl, opts, *st);
    while (st->sketches.size() < ck.sketches) {
      auto s = st->enumerator->next();
      if (!s) {
        return util::Status(util::StatusCode::kParseError,
                            "bucket " + ck.label + " records " + std::to_string(ck.sketches) +
                                " sketches but the enumerator produced only " +
                                std::to_string(st->sketches.size()));
      }
      st->sketches.push_back(std::move(*s));
    }
    st->exhausted = was_exhausted;
  }
  return util::Status::ok();
}

ShardEngine::ShardEngine(dsl::Dsl dsl, std::vector<trace::Segment> segments,
                         SynthesisOptions opts)
    : dsl_(std::move(dsl)), segments_(std::move(segments)), opts_(std::move(opts)) {
  opts_.dopts = effective_distance_options(opts_);
  pool_fingerprint_ = segment_set_fingerprint(segments_);
  pool_ = std::make_unique<util::ThreadPool>(
      opts_.threads == 0 ? std::thread::hardware_concurrency() : opts_.threads);
  for (auto& b : make_buckets(dsl_)) bucket_defs_.emplace(b.label, std::move(b));
}

util::Status ShardEngine::add_bucket(const std::string& label) {
  auto it = bucket_defs_.find(label);
  if (it == bucket_defs_.end()) {
    return util::Status(util::StatusCode::kInvalidArgument,
                        "DSL '" + dsl_.name + "' has no bucket '" + label + "'");
  }
  BucketSearchState st;
  st.bucket = it->second;
  st.rng = util::Rng(bucket_rng_seed(label, opts_.seed));
  states_.erase(label);
  states_.emplace(label, std::move(st));
  return util::Status::ok();
}

util::Status ShardEngine::adopt_bucket(const BucketCheckpoint& ck) {
  auto it = bucket_defs_.find(ck.label);
  if (it == bucket_defs_.end()) {
    return util::Status(util::StatusCode::kInvalidArgument,
                        "DSL '" + dsl_.name + "' has no bucket '" + ck.label + "'");
  }
  BucketSearchState st;
  st.bucket = it->second;
  if (auto s = bucket_state_from_checkpoint(dsl_, opts_, ck, &st); !s.is_ok()) return s;
  states_.erase(ck.label);
  states_.emplace(ck.label, std::move(st));
  return util::Status::ok();
}

bool ShardEngine::has_bucket(const std::string& label) const {
  return states_.count(label) != 0;
}

util::Result<std::vector<BucketCheckpoint>> ShardEngine::run_pass(
    const std::vector<std::string>& labels, std::size_t target,
    const std::vector<std::size_t>& working_indices, const util::CancellationToken* cancel) {
  for (const auto& label : labels) {
    if (!states_.count(label)) {
      return util::Status(util::StatusCode::kInvalidArgument,
                          "shard does not own bucket '" + label + "'");
    }
  }
  std::vector<trace::Segment> working;
  for (std::size_t idx : working_indices) {
    if (idx >= segments_.size()) {
      return util::Status(util::StatusCode::kInvalidArgument,
                          "working index " + std::to_string(idx) + " out of range (pool has " +
                              std::to_string(segments_.size()) + " segments)");
    }
    working.push_back(segments_[idx]);
  }
  if (working.empty()) working = segments_;  // tiny pools: use everything
  auto stop = [cancel] { return cancel != nullptr && cancel->cancelled(); };
  pool_->parallel_for(labels.size(), [&](std::size_t i) {
    BucketSearchState& st = states_.at(labels[i]);
    enumerate_bucket_sketches(dsl_, opts_, st, target, stop);
    EvalContext ctx;
    ctx.cache = opts_.use_eval_cache ? &cache_ : nullptr;
    ctx.fingerprint = opts_.use_eval_cache ? segment_set_fingerprint(working) : 0;
    ctx.cancel = cancel;
    ctx.cache_hit_tally = &cache_hits_;
    ctx.cache_miss_tally = &cache_misses_;
    score_bucket_pass(dsl_, opts_, st, working, &ctx, stop);
  });
  std::vector<BucketCheckpoint> out;
  out.reserve(labels.size());
  for (const auto& label : labels) out.push_back(bucket_state_to_checkpoint(states_.at(label)));
  return out;
}

}  // namespace abg::synth
