// SMT-based sketch enumeration (§4.1). The search space is framed as a
// heap-indexed operator tree of bounded depth; an SMT formula (Z3, the same
// solver the paper uses) admits only sketches that
//   * type-check (bool subtrees only under a conditional's guard),
//   * unit-check with integer unit exponents (optional — disabled for the
//     Cubic run, §5.5),
//   * satisfy cheap anti-simplifiability structure (no constant-only
//     operands, canonical associativity, no cbrt/cube inverses, ...),
//   * use *exactly* a given operator subset when a bucket discriminator is
//     supplied (§4.4).
// Each model is decoded into a sketch and blocked; models that the richer
// syntactic simplifiability filter rejects are blocked without being
// emitted, and commutative duplicates are deduplicated via canonical forms.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "dsl/dsl.hpp"
#include "dsl/expr.hpp"

namespace abg::synth {

struct EnumeratorOptions {
  bool unit_check = true;
  // Exact operator-usage set (bucket discriminator). nullopt = whole DSL.
  std::optional<std::vector<dsl::Op>> bucket;
  // Bound on distinct constant holes (keeps concretization tractable).
  int max_holes = 5;
  // Override the DSL's depth/node bounds (e.g. the per-machine depth sweeps
  // of §5).
  std::optional<int> max_depth;
  std::optional<int> max_nodes;
};

class SketchEnumerator {
 public:
  SketchEnumerator(const dsl::Dsl& dsl, EnumeratorOptions opts = {});
  ~SketchEnumerator();

  SketchEnumerator(const SketchEnumerator&) = delete;
  SketchEnumerator& operator=(const SketchEnumerator&) = delete;

  // Next canonical sketch, or nullopt once the space is exhausted.
  std::optional<dsl::ExprPtr> next();

  bool exhausted() const;
  // Raw SMT models decoded (including ones rejected by the post-filter).
  std::size_t models_enumerated() const;
  // Sketches actually emitted by next().
  std::size_t sketches_emitted() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Convenience: enumerate every sketch in the (sub-)space, up to `cap`.
std::vector<dsl::ExprPtr> enumerate_all(const dsl::Dsl& dsl, const EnumeratorOptions& opts,
                                        std::size_t cap);

}  // namespace abg::synth
