// Shard-able refinement entry points (ISSUE 9). The single-process loop in
// refinement.cpp and the distributed coordinator/worker pair in src/dist/
// must run *the same* per-bucket pass — enumerate sketches to a target, then
// re-score every sketch under the current working set with the bucket-best
// abandon bound — or the distributed winner cannot be bit-identical to a
// single-process run. This header exports that pass, the per-bucket state it
// mutates, and the checkpoint conversions a worker uses to hand its state
// back to the coordinator (and to adopt a dead peer's state).
//
// Determinism contract: a bucket pass is a pure function of (bucket state at
// pass entry, enumeration target, working segment set, SynthesisOptions).
// The RNG advances sequentially across passes, so replaying a pass from a
// checkpointed entry state reproduces exactly what the original process
// would have produced — that is the whole recovery story for worker death.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "synth/buckets.hpp"
#include "synth/checkpoint.hpp"
#include "synth/enumerator.hpp"
#include "synth/eval_cache.hpp"
#include "synth/refinement.hpp"
#include "trace/trace.hpp"
#include "util/cancellation.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace abg::synth {

// Deterministic per-bucket RNG seed: every process that searches bucket
// `label` under run seed `seed` must derive the same stream (FNV-1a over the
// label, keyed by the seed). Exported so workers seed fresh buckets exactly
// as the single-process loop does.
std::uint64_t bucket_rng_seed(const std::string& label, std::uint64_t seed);

// The effective distance options for a run: SynthesisOptions::simd, when
// explicit, wins over whatever dopts carries (one knob, not two).
distance::DistanceOptions effective_distance_options(const SynthesisOptions& opts);

// Mutable per-bucket search state kept across iterations. The single-process
// loop's BucketState derives from this (adding obs/journal caches); workers
// hold these directly.
struct BucketSearchState {
  Bucket bucket;
  std::unique_ptr<SketchEnumerator> enumerator;  // created on first use
  std::vector<dsl::ExprPtr> sketches;            // enumerated so far
  ScoredHandler best;                            // best under the *current* segment set
  std::size_t handlers_scored = 0;
  bool exhausted = false;
  util::Rng rng{0};
};

// Create st.enumerator from the run options (idempotent; no-op when already
// built or the bucket is exhausted).
void ensure_bucket_enumerator(const dsl::Dsl& dsl, const SynthesisOptions& opts,
                              BucketSearchState& st);

// Enumerate until st holds `target` sketches or the bucket is exhausted,
// counting into "synth.sketches_enumerated". Always enumerates at least one
// sketch even when `stop` fires, so an expired budget still returns the best
// handler seen (§4.4's interrupt semantics).
void enumerate_bucket_sketches(const dsl::Dsl& dsl, const SynthesisOptions& opts,
                               BucketSearchState& st, std::size_t target,
                               const std::function<bool()>& stop);

// Re-score ALL of st's sketches under `working` (Algorithm 1 line 5), each
// sketch bounded by the bucket's own running best (the per-bucket minimum
// feeds the top-k ranking and must stay exact). Sets st.best and returns it.
// `stop` is polled after every sketch; once a valid best exists a fired stop
// ends the pass with best-so-far.
ScoredHandler score_bucket_pass(const dsl::Dsl& dsl, const SynthesisOptions& opts,
                                BucketSearchState& st,
                                const std::vector<trace::Segment>& working, EvalContext* ctx,
                                const std::function<bool()>& stop);

// Parse a (distance, sketch text, handler text) triple back into a
// ScoredHandler; empty texts stay null. kParseError on malformed text.
util::Result<ScoredHandler> parse_scored_handler(double distance, const std::string& sketch_text,
                                                 const std::string& handler_text);

// Snapshot / restore one bucket's state. Restore re-derives the sketch list
// by re-enumeration (the SMT enumerator is deterministic; sketches are never
// serialized) — identical to checkpoint resume in the single-process loop.
BucketCheckpoint bucket_state_to_checkpoint(const BucketSearchState& st);
util::Status bucket_state_from_checkpoint(const dsl::Dsl& dsl, const SynthesisOptions& opts,
                                          const BucketCheckpoint& ck, BucketSearchState* st);

// One worker's share of a distributed refinement search: a set of bucket
// states plus the evaluation infrastructure (thread pool, memo cache) to run
// passes over them. The coordinator drives it through add/adopt/run_pass;
// tools/abagnale_worker exposes the same surface over HTTP.
class ShardEngine {
 public:
  // The segment pool must be the full pool of the job (workers rebuild it
  // deterministically from the spec; the coordinator cross-checks via
  // pool_fingerprint()). `opts` is the job's SynthesisOptions; SIMD choice
  // is folded into the distance options once, as synthesize() does.
  ShardEngine(dsl::Dsl dsl, std::vector<trace::Segment> segments, SynthesisOptions opts);

  // Start searching `label` from scratch (fresh RNG from bucket_rng_seed).
  // kInvalidArgument when the DSL has no such bucket.
  util::Status add_bucket(const std::string& label);
  // Adopt a bucket mid-search from a checkpoint (shard reassignment after a
  // worker death). Overwrites any existing state for the label, so re-sends
  // are idempotent.
  util::Status adopt_bucket(const BucketCheckpoint& ck);
  bool has_bucket(const std::string& label) const;

  // Run one refinement pass: for each label, enumerate to `target` then
  // re-score all sketches under the working subset (`working_indices` into
  // the segment pool; empty = the whole pool, matching the tiny-pool rule in
  // synthesize()). Buckets run in parallel on the engine's pool. Returns the
  // post-pass checkpoints in input-label order.
  util::Result<std::vector<BucketCheckpoint>> run_pass(
      const std::vector<std::string>& labels, std::size_t target,
      const std::vector<std::size_t>& working_indices,
      const util::CancellationToken* cancel = nullptr);

  std::uint64_t pool_fingerprint() const { return pool_fingerprint_; }
  std::size_t segment_count() const { return segments_.size(); }
  std::uint64_t cache_hits() const { return cache_hits_.load(std::memory_order_relaxed); }
  std::uint64_t cache_misses() const { return cache_misses_.load(std::memory_order_relaxed); }

 private:
  dsl::Dsl dsl_;
  std::vector<trace::Segment> segments_;
  SynthesisOptions opts_;
  std::uint64_t pool_fingerprint_ = 0;
  std::unique_ptr<util::ThreadPool> pool_;
  EvalCache cache_;
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::map<std::string, Bucket> bucket_defs_;           // every bucket of the DSL
  std::map<std::string, BucketSearchState> states_;     // the ones this shard owns
};

}  // namespace abg::synth
