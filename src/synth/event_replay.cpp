#include "synth/event_replay.hpp"

#include <algorithm>
#include <cmath>

#include "dsl/eval.hpp"
#include "synth/concretize.hpp"
#include "synth/enumerator.hpp"

namespace abg::synth {

std::vector<double> replay_trace(const dsl::Expr& ack_handler, const dsl::Expr& loss_handler,
                                 const trace::Trace& t, const ReplayOptions& opts) {
  std::vector<double> out;
  out.reserve(t.samples.size());
  if (t.samples.empty()) return out;

  double cwnd = t.samples.front().sig.cwnd;
  const double mss = t.samples.front().sig.mss > 0 ? t.samples.front().sig.mss : 1.0;
  auto step = [&](const dsl::Expr& handler, const trace::AckSample& sample) {
    cca::Signals sig = sample.sig;
    sig.cwnd = cwnd;
    const double next = dsl::eval(handler, sig);
    if (std::isfinite(next)) {
      cwnd = std::clamp(next, opts.min_cwnd_pkts * mss, opts.max_cwnd_pkts * mss);
    }
  };
  for (const auto& sample : t.samples) {
    if (sample.loss_event) {
      step(loss_handler, sample);
    } else if (!sample.is_dup && sample.sig.acked_bytes > 0) {
      step(ack_handler, sample);
    }
    out.push_back(cwnd / mss);
  }
  return out;
}

double trace_distance(const dsl::Expr& ack_handler, const dsl::Expr& loss_handler,
                      const trace::Trace& t, distance::Metric metric,
                      const distance::DistanceOptions& dopts) {
  const auto synth = replay_trace(ack_handler, loss_handler, t);
  std::vector<double> observed;
  observed.reserve(t.samples.size());
  for (const auto& s : t.samples) {
    const double mss = s.sig.mss > 0 ? s.sig.mss : 1.0;
    observed.push_back(s.cwnd_after / mss);
  }
  return distance::compute(metric, synth, observed, dopts);
}

LossSynthesisResult synthesize_loss_handler(const dsl::Dsl& dsl, const dsl::Expr& ack_handler,
                                            const std::vector<trace::Trace>& traces,
                                            const LossSynthesisOptions& opts) {
  LossSynthesisResult result;
  result.distance = std::numeric_limits<double>::infinity();

  EnumeratorOptions eopts;
  eopts.unit_check = opts.unit_check;
  eopts.max_depth = opts.max_depth;
  eopts.max_nodes = opts.max_nodes;
  eopts.max_holes = opts.max_holes;
  SketchEnumerator enumerator(dsl, eopts);

  util::Rng rng(opts.seed);
  ConcretizeOptions copts;
  copts.budget = opts.concretize_budget;

  while (result.sketches_tried < opts.max_sketches) {
    auto sketch = enumerator.next();
    if (!sketch) break;
    ++result.sketches_tried;
    for (const auto& assign : enumerate_assignments(**sketch, dsl.constant_pool, copts, rng)) {
      const auto handler = dsl::fill_holes(*sketch, assign);
      ++result.handlers_tried;
      double d = 0.0;
      for (const auto& t : traces) {
        d += trace_distance(ack_handler, *handler, t, opts.metric, opts.dopts);
      }
      if (d < result.distance) {
        result.distance = d;
        result.handler = handler;
      }
    }
  }
  return result;
}

}  // namespace abg::synth
