// Approximate sketch concretization (§4.2): holes take values only from the
// DSL's curated constant pool. Small hole counts get the full cartesian
// product; larger ones get a random sample of assignments, keeping the work
// per sketch bounded (the paper's answer to the k^n blowup).
#pragma once

#include <vector>

#include "dsl/dsl.hpp"
#include "dsl/expr.hpp"
#include "util/rng.hpp"

namespace abg::synth {

struct ConcretizeOptions {
  // Maximum number of concrete handlers generated per sketch.
  std::size_t budget = 64;
};

// All constant assignments for the sketch's holes, capped at opts.budget
// (random sample without replacement when the cartesian product exceeds
// it). A sketch with no holes yields one empty assignment.
std::vector<std::vector<double>> enumerate_assignments(const dsl::Expr& sketch,
                                                       const std::vector<double>& pool,
                                                       const ConcretizeOptions& opts,
                                                       util::Rng& rng);

// Number of concrete handlers a sketch expands to with this pool (the
// "completions" count of §6.1), uncapped.
double completion_count(const dsl::Expr& sketch, std::size_t pool_size);

}  // namespace abg::synth
