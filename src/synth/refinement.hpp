// The synthesis refinement loop (§4.4, Algorithm 1):
//
//   while buckets not exhausted:
//     for each bucket (in parallel): sample N sketches, score them,
//       bucket-score = min distance over concretized handlers
//     keep only the top-k buckets; N *= 8; k /= 2; working segments += 2
//
// Every iteration is recorded in an IterationReport so the §6.1 / §6.2 /
// Table 4 accounting (bucket ranks, handlers scored, space explored) can be
// reproduced from a single synthesis run.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "distance/distance.hpp"
#include "dsl/dsl.hpp"
#include "dsl/expr.hpp"
#include "obs/registry.hpp"
#include "synth/buckets.hpp"
#include "synth/concretize.hpp"
#include "synth/enumerator.hpp"
#include "synth/eval_cache.hpp"
#include "trace/trace.hpp"
#include "util/cancellation.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace abg::util {
class ThreadPool;
}  // namespace abg::util

namespace abg::synth {

struct IterationReport;

struct SynthesisOptions {
  distance::Metric metric = distance::Metric::kDtw;
  distance::DistanceOptions dopts;

  int initial_samples = 16;       // N in Algorithm 1
  int initial_keep = 5;           // k in Algorithm 1
  int initial_segments = 4;       // working-set size, grows by 2 per iteration
  // After the loop, every bucket-best candidate handler is re-scored on a
  // larger diverse segment sample; the returned handler is the best under
  // that validation set. This is the guard against over-fitting a small
  // working set (§3.2's concern, applied at the end as well).
  std::size_t final_validation_segments = 12;
  int sample_growth = 8;          // N multiplier per iteration
  std::size_t concretize_budget = 48;  // handlers per sketch (§4.2)
  int max_iterations = 6;
  double timeout_s = std::numeric_limits<double>::infinity();
  std::size_t exhaustive_cap = 4000;  // sketch cap when finishing a bucket

  bool unit_check = true;
  int max_holes = 4;
  std::optional<int> max_depth;  // override the DSL's bound
  std::optional<int> max_nodes;

  std::size_t threads = 0;  // 0 = hardware concurrency
  std::uint64_t seed = 7;

  // --- Fault tolerance (ISSUE 3).
  // Optional caller-supplied cancellation. synthesize() links its own token
  // to this one, so an embedding application (or a signal handler) can
  // preempt a run; the loop unwinds with best-so-far and partial=true.
  const util::CancellationToken* cancel = nullptr;
  // When non-empty, the full search state is serialized here after every
  // completed iteration (atomic tmp+rename). With resume=true the loop first
  // restores that state and continues from the next iteration, producing
  // bit-identical results to an uninterrupted run.
  std::string checkpoint_path;
  bool resume = false;

  // --- Evaluation fast path (ISSUE 2). Both knobs change only how much
  // work is done, never the result: the selected handlers and reported
  // distances are bit-identical with them on or off (asserted by the golden
  // test in tests/test_fast_path.cpp).
  // Memoize total_distance by (canonical handler, working-set fingerprint),
  // shared across buckets and iterations ("synth.cache_hits"/"_misses").
  bool use_eval_cache = true;
  // Thread the running best distance into total_distance/DTW so hopeless
  // candidates abandon early ("distance.early_abandons",
  // "synth.distance_abandons").
  bool early_abandon = true;

  // --- Data-parallel evaluation (ISSUE 7). Like the fast-path knobs above,
  // both change only how much work is done per result, never the result the
  // refinement loop consumes (same golden test).
  // Compile each sketch to bytecode once and replay one segment across up to
  // dsl::kBatchLanes hole-assignments in lockstep instead of tree-walking
  // every concretization separately. A manifest's "fast_path": false turns
  // this off together with the cache/abandon knobs.
  bool batch_replay = true;
  // DTW kernel tier for every distance this run computes. kAuto defers to
  // ABG_SIMD and then to CPU detection (see distance::resolve_simd); an
  // explicit tier here wins over the environment. Overrides dopts.simd when
  // not kAuto, so callers configure one field, not two.
  distance::Simd simd = distance::Simd::kAuto;

  // --- Search forensics (ISSUE 6). When true AND a process-wide journal is
  // armed (obs::journal_start), this run emits one event per candidate
  // lifecycle step with full provenance. With no journal armed the cost is
  // one relaxed load per site; false opts this run out even when a journal
  // is armed (a batch can journal selected jobs only). Never changes the
  // result — the journal observes the search, it does not steer it.
  bool journal = true;

  // --- Batch engine hooks (ISSUE 4). None of these change the result; they
  // let abg::api::Engine run many jobs against shared infrastructure.
  // Non-owning executor. When set, bucket scoring and final validation run on
  // this pool (shared across jobs by the engine) instead of a fresh per-run
  // pool; `threads` is then ignored. Must outlive the synthesize() call.
  util::ThreadPool* pool = nullptr;
  // Non-owning cross-job memo cache. When set (and use_eval_cache is true),
  // it replaces the per-run cache, so a second job over the same segment
  // working sets answers its evaluations from the first job's inserts.
  // Entries are exact and keyed by (segment fingerprint, canonical handler),
  // so sharing never changes any job's result. Must outlive the call.
  EvalCache* shared_cache = nullptr;
  // Streamed progress: invoked on the synthesizing thread right after each
  // completed iteration's report is recorded (checkpoint-restored iterations
  // are not replayed). The report reference is valid only during the call.
  std::function<void(const IterationReport&)> on_iteration;

  // --- Live introspection (ISSUE 5). When non-empty, the run additionally
  // records labeled metric series carrying these labels (the engine passes
  // {job=<name>, cca=<dsl>}): synth.iterations / synth.best_distance per
  // run, and synth.handlers_scored with a `bucket` label appended per
  // bucket. The unlabeled process-wide series keep counting regardless, so
  // existing totals (and the double-accounting tests) are unaffected.
  obs::Labels obs_labels;

  // Eager validation of every knob above; called by synthesize() and by
  // every api entry point. Returns kInvalidArgument naming the first bad
  // field, so misconfiguration fails before any work instead of late (a
  // negative sample count, zero keep, or segments < 1 previously crept into
  // the loop arithmetic).
  util::Status validate() const;
};

struct ScoredHandler {
  dsl::ExprPtr sketch;   // with holes
  dsl::ExprPtr handler;  // concrete
  double distance = std::numeric_limits<double>::infinity();
  // Journal identity (obs::journal_fingerprint) of the winning hole
  // assignment; 0 when the run was not journaled (or the handler was
  // restored from a checkpoint). Lets `abg_inspect why <fingerprint>` trace
  // a selected handler back through its lifecycle events.
  std::uint64_t fingerprint = 0;

  bool valid() const { return handler != nullptr; }
};

struct BucketReport {
  std::string label;
  double score = std::numeric_limits<double>::infinity();
  std::size_t sketches_enumerated = 0;
  std::size_t handlers_scored = 0;
  bool exhausted = false;
  bool retained = false;
};

struct IterationReport {
  int n_target = 0;              // N for this iteration
  int keep = 0;                  // k for this iteration
  std::size_t segments_used = 0;
  std::vector<BucketReport> buckets;  // sorted by ascending score
  double seconds = 0.0;
  // Convergence point (ISSUE 5): the run's best distance after this
  // iteration and the cumulative memo-cache traffic up to it, so a search-
  // progress curve (paper Figure 3 style) falls out of the report series.
  double best_distance = std::numeric_limits<double>::infinity();
  std::uint64_t cache_hits = 0;    // cumulative for the run, not per-iteration
  std::uint64_t cache_misses = 0;
};

struct SynthesisResult {
  ScoredHandler best;  // distance is over the final validation set
  std::vector<IterationReport> iterations;
  std::size_t candidates_validated = 0;
  std::size_t initial_buckets = 0;
  std::size_t total_sketches = 0;
  std::size_t total_handlers_scored = 0;
  // This run's own memo-cache traffic. Unlike the process-global
  // "synth.cache_hits" obs counter, these stay per-job even when several
  // jobs share one EvalCache through SynthesisOptions::shared_cache.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  bool timed_out = false;
  // True when the run was preempted (deadline, external cancel, or injected
  // fault) and `best` is the best-so-far rather than a completed search.
  bool partial = false;
  // kOk for a completed run; the interrupt class (kTimeout/kCancelled) for a
  // partial one; a hard error (e.g. a corrupted checkpoint) otherwise.
  util::Status status;
  double seconds = 0.0;

  // Rank (1-based) of the bucket with the given label after iteration
  // `iter` (0-based), and the number of buckets scored in that iteration —
  // the "pos. after iteration i" cells of Table 4. nullopt if the bucket
  // was not scored in that iteration (already discarded).
  std::optional<std::pair<std::size_t, std::size_t>> bucket_rank(const std::string& label,
                                                                 std::size_t iter) const;
};

// Shared state for the evaluation fast path, threaded through score_sketch
// by the refinement loop. Null cache disables memoization; an infinite
// abandon_above disables early abandoning. The default-constructed context
// is equivalent to passing none.
struct EvalContext {
  EvalCache* cache = nullptr;      // shared across buckets + iterations
  std::uint64_t fingerprint = 0;   // segment_set_fingerprint(working set)
  // Candidates that cannot beat this distance may be abandoned mid-
  // evaluation. The refinement loop passes the bucket's best-so-far (not the
  // global best: bucket scores feed the top-k ranking, so each bucket's own
  // minimum must stay exact).
  double abandon_above = std::numeric_limits<double>::infinity();
  // Polled once per concretized handler; when set and fired, score_sketch
  // stops early but still returns the best handler it has already scored.
  const util::CancellationToken* cancel = nullptr;
  // Per-run cache tallies (see SynthesisResult::cache_hits). Optional; the
  // shared EvalCache's own counters are global, so attribution to a job has
  // to happen at the probe site.
  std::atomic<std::uint64_t>* cache_hit_tally = nullptr;
  std::atomic<std::uint64_t>* cache_miss_tally = nullptr;
};

// Score one sketch against a working set of segments: concretize (§4.2),
// replay every handler, return the best. `handlers_scored` is incremented
// by the number of concrete handlers evaluated (cache hits included — a hit
// is a scored handler whose distance was reused, keeping the Table 4 / §6
// accounting identical with the fast path on).
//
// With a context: candidates whose true distance is >= ctx->abandon_above
// may come back with distance = +inf instead of their exact score. The
// returned best is exact whenever it beats ctx->abandon_above, which is the
// only case the refinement loop consumes.
ScoredHandler score_sketch(const dsl::ExprPtr& sketch,
                           const std::vector<trace::Segment>& segments,
                           const std::vector<double>& constant_pool,
                           const SynthesisOptions& opts, util::Rng& rng,
                           std::size_t* handlers_scored = nullptr,
                           EvalContext* ctx = nullptr);

// Run the full refinement loop over the DSL and segment pool.
SynthesisResult synthesize(const dsl::Dsl& dsl, const std::vector<trace::Segment>& segments,
                           const SynthesisOptions& opts = {});

}  // namespace abg::synth
