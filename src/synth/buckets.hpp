// Search-space bucketization (§4.4). The bucket discriminator is the exact
// subset of DSL operators a sketch uses — the metric the paper selected
// (option 2) because it is cheap to enforce in the solver query and sketches
// sharing an operator set behave similarly. Buckets partition the sketch
// space: every sketch uses exactly one operator subset.
#pragma once

#include <string>
#include <vector>

#include "dsl/dsl.hpp"
#include "dsl/expr.hpp"

namespace abg::synth {

struct Bucket {
  std::vector<dsl::Op> ops;  // the exact operator-usage set
  std::string label;         // e.g. "{+,*,?:,<}" or "{}" for leaf-only
};

// All *feasible* operator subsets of the DSL's operators:
//   * a subset containing a comparison (<, >, %=0) must contain ?: (bool
//     expressions only occur as a conditional's guard);
//   * a subset containing ?: must contain at least one comparison;
//   * the empty subset (leaf-only sketches) is included.
// This feasibility pruning is why bucket counts are below 2^|ops|.
std::vector<Bucket> make_buckets(const dsl::Dsl& dsl);

// The bucket a sketch belongs to: its exact operator-usage set, formatted
// with the same label scheme. (Used to locate the fine-tuned handler's
// bucket for the §6.2 accuracy accounting.)
Bucket bucket_of(const dsl::Expr& sketch);

// Label for a set of operators (sorted, stable).
std::string bucket_label(const std::vector<dsl::Op>& ops);

// True iff the two op sets are equal as sets.
bool same_ops(const std::vector<dsl::Op>& a, const std::vector<dsl::Op>& b);

}  // namespace abg::synth
