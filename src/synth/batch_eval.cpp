#include "synth/batch_eval.hpp"

#include <algorithm>
#include <cmath>

#include "obs/registry.hpp"
#include "util/fault_injection.hpp"
#include "util/log.hpp"

namespace abg::synth {

void replay_batch(const dsl::Program& prog,
                  const std::vector<const std::vector<double>*>& assigns,
                  const trace::Segment& segment, const ReplayOptions& opts,
                  std::vector<std::vector<double>>* out) {
  const std::size_t n_lanes = assigns.size();
  out->assign(n_lanes, {});
  if (n_lanes == 0) return;
  // Materialize the slot-major binding matrix with fill_holes's clamp (empty
  // vector -> 1.0, short vector -> last element repeats) applied up front.
  std::vector<double> holes(prog.hole_slots * n_lanes);
  for (std::size_t slot = 0; slot < prog.hole_slots; ++slot) {
    for (std::size_t l = 0; l < n_lanes; ++l) {
      const auto& a = *assigns[l];
      holes[slot * n_lanes + l] = a.empty() ? 1.0 : a[std::min(slot, a.size() - 1)];
    }
  }

  if (segment.samples.empty()) return;
  for (std::size_t l = 0; l < n_lanes; ++l) {
    (*out)[l].reserve(segment.samples.size());
  }

  // Per-lane state and per-sample update, mirroring replay() line for line:
  // same starting window, same skip rule for duplicate ACKs, same clamp, and
  // the same hold-on-non-finite degradation (with the same counter).
  double cwnd[dsl::kBatchLanes];
  double next[dsl::kBatchLanes];
  double cwnd0 = segment.samples.front().sig.cwnd;
  const double front_mss = segment.samples.front().sig.mss;
  const double mss = front_mss > 0 ? front_mss : 1.0;
  if (!std::isfinite(cwnd0)) cwnd0 = mss;
  for (std::size_t l = 0; l < n_lanes; ++l) cwnd[l] = cwnd0;

  const double lo = opts.min_cwnd_pkts * mss;
  const double hi = opts.max_cwnd_pkts * mss;
  for (const auto& sample : segment.samples) {
    if (!sample.is_dup && sample.sig.acked_bytes > 0) {
      dsl::run_batch(prog, sample.sig, {cwnd, n_lanes}, holes, n_lanes, next);
      for (std::size_t l = 0; l < n_lanes; ++l) {
        util::fault::corrupt(&next[l], "replay.handler_output");
        if (std::isfinite(next[l])) {
          cwnd[l] = std::clamp(next[l], lo, hi);
        } else {
          static auto& c_nonfinite = obs::counter("synth.nonfinite_cwnd");
          c_nonfinite.add();
          ABG_WARN_EVERY_N(100000,
                           "replay: candidate handler produced non-finite cwnd; holding "
                           "previous window (%llu so far)",
                           static_cast<unsigned long long>(c_nonfinite.value()));
        }
      }
    }
    for (std::size_t l = 0; l < n_lanes; ++l) (*out)[l].push_back(cwnd[l] / mss);
  }
}

}  // namespace abg::synth
