// Multi-event replay and loss-handler synthesis — the generalization the
// paper's model section sketches (§3: "a comprehensive model of CCAs would
// determine handlers to update each state variable upon the occurrence of
// each event ... we believe Abagnale's technique generalizes"). Here we add
// the second most important event: the loss determination. A full-trace
// replay drives BOTH a cwnd-on-ack handler and a cwnd-on-loss handler
// through every recorded event, so a loss handler can be synthesized against
// whole traces (not just between-loss segments).
#pragma once

#include <vector>

#include "distance/distance.hpp"
#include "dsl/dsl.hpp"
#include "dsl/expr.hpp"
#include "synth/replay.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace abg::synth {

// Replay a (ack_handler, loss_handler) pair over an entire trace: loss
// samples apply the loss handler, new-data ACKs apply the ack handler,
// duplicate ACKs hold. Returns the synthesized CWND series in packets.
std::vector<double> replay_trace(const dsl::Expr& ack_handler, const dsl::Expr& loss_handler,
                                 const trace::Trace& t, const ReplayOptions& opts = {});

// Distance between a handler pair's full-trace replay and the observation.
double trace_distance(const dsl::Expr& ack_handler, const dsl::Expr& loss_handler,
                      const trace::Trace& t, distance::Metric metric,
                      const distance::DistanceOptions& dopts = {});

struct LossSynthesisOptions {
  distance::Metric metric = distance::Metric::kDtw;
  distance::DistanceOptions dopts;
  int max_depth = 3;
  int max_nodes = 5;
  int max_holes = 2;
  std::size_t max_sketches = 400;
  std::size_t concretize_budget = 32;
  bool unit_check = true;
  std::uint64_t seed = 11;
};

struct LossSynthesisResult {
  dsl::ExprPtr handler;  // best cwnd-on-loss handler
  double distance = 0.0;
  std::size_t sketches_tried = 0;
  std::size_t handlers_tried = 0;

  bool found() const { return handler != nullptr; }
};

// Given an already-synthesized ack handler, search the DSL for the loss
// handler minimizing full-trace distance. The loss-handler space is small
// (one multiplicative/BDP-style expression), so a capped exhaustive sweep
// suffices — no bucketization needed.
LossSynthesisResult synthesize_loss_handler(const dsl::Dsl& dsl, const dsl::Expr& ack_handler,
                                            const std::vector<trace::Trace>& traces,
                                            const LossSynthesisOptions& opts = {});

}  // namespace abg::synth
