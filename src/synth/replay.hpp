// Candidate-handler replay (§3.1): execute a handler expression over the
// events recorded in a trace segment — feeding it the observed signals but
// its *own* evolving CWND — to produce the "synthesized trace", then measure
// its distance to the observed CWND series. This is the stateful simulation
// step that generic PBE synthesizers cannot model (§2.2).
#pragma once

#include <vector>

#include "distance/distance.hpp"
#include "dsl/expr.hpp"
#include "trace/trace.hpp"

namespace abg::synth {

struct ReplayOptions {
  // Window clamp applied after every handler evaluation; non-finite outputs
  // hold the previous window instead.
  double min_cwnd_pkts = 1.0;
  double max_cwnd_pkts = 1e7;
};

// Replay `handler` (hole-free) over the segment, returning the synthesized
// CWND series in packets (one point per new-data ACK sample; duplicate-ACK
// samples hold the window, mirroring the recorded sender).
std::vector<double> replay(const dsl::Expr& handler, const trace::Segment& segment,
                           const ReplayOptions& opts = {});

// The observed CWND series of a segment, in packets (same sampling as
// replay(), so the two series align index-by-index before warping).
std::vector<double> observed_series_pkts(const trace::Segment& segment);

// Distance between the handler's synthesized trace and the observed one.
// `abandon_above` is forwarded to the metric (see distance::compute): when
// the bound triggers, +inf is returned instead of the exact distance.
double segment_distance(const dsl::Expr& handler, const trace::Segment& segment,
                        distance::Metric metric,
                        const distance::DistanceOptions& dopts = {},
                        const ReplayOptions& ropts = {},
                        double abandon_above = distance::kNoAbandon);

// Sum of segment distances over a working set (the per-row "DTW distance"
// of Table 2). Early abandoning: per-segment distances are non-negative, so
// the running sum is a lower bound on the total — once it reaches
// `abandon_above`, the remaining segments are skipped and +inf is returned
// ("synth.distance_abandons"). Each segment evaluation also receives the
// remaining budget so the DTW DP itself can abandon mid-matrix. With the
// default bound the result is exact and bit-identical to the seed path.
double total_distance(const dsl::Expr& handler, const std::vector<trace::Segment>& segments,
                      distance::Metric metric,
                      const distance::DistanceOptions& dopts = {},
                      const ReplayOptions& ropts = {},
                      double abandon_above = distance::kNoAbandon);

}  // namespace abg::synth
