#include "api/manifest.hpp"

#include <limits>
#include <set>
#include <utility>

#include "distance/simd.hpp"
#include "obs/json.hpp"
#include "util/csv.hpp"
#include "util/json_parse.hpp"

namespace abg::api {

namespace {

util::Status bad(const std::string& msg) {
  return util::Status(util::StatusCode::kInvalidArgument, msg);
}

// Typed field extraction. Each setter returns kInvalidArgument naming the key
// on a type mismatch; absent keys leave the default untouched.
util::Status read_int(const util::JsonValue& obj, const std::string& key, int* out) {
  const auto* v = obj.find(key);
  if (!v) return util::Status::ok();
  if (!v->is_number()) return bad("'" + key + "' must be a number");
  *out = static_cast<int>(v->as_int());
  return util::Status::ok();
}

util::Status read_size(const util::JsonValue& obj, const std::string& key, std::size_t* out) {
  const auto* v = obj.find(key);
  if (!v) return util::Status::ok();
  if (!v->is_number() || v->as_double() < 0) return bad("'" + key + "' must be a non-negative number");
  *out = static_cast<std::size_t>(v->as_int());
  return util::Status::ok();
}

util::Status read_double(const util::JsonValue& obj, const std::string& key, double* out) {
  const auto* v = obj.find(key);
  if (!v) return util::Status::ok();
  if (!v->is_number()) return bad("'" + key + "' must be a number");
  *out = v->as_double();
  return util::Status::ok();
}

util::Status read_bool(const util::JsonValue& obj, const std::string& key, bool* out) {
  const auto* v = obj.find(key);
  if (!v) return util::Status::ok();
  if (!v->is_bool()) return bad("'" + key + "' must be true or false");
  *out = v->as_bool();
  return util::Status::ok();
}

util::Status read_string(const util::JsonValue& obj, const std::string& key, std::string* out) {
  const auto* v = obj.find(key);
  if (!v) return util::Status::ok();
  if (!v->is_string()) return bad("'" + key + "' must be a string");
  *out = v->as_string();
  return util::Status::ok();
}

const std::set<std::string>& known_job_keys() {
  static const std::set<std::string> keys = {
      "name",          "traces",         "kind",
      "dsl",           "timeout_s",      "seed",
      "metric",        "max_iterations", "initial_samples",
      "concretize_budget", "max_depth",  "max_nodes",
      "max_holes",     "warmup_s",       "min_segment_samples",
      "fast_path",     "repair_traces",  "checkpoint",
      "resume",        "journal",        "simd",
      // Search-shape knobs the distributed worker protocol must carry so a
      // shard searches exactly what the submitting process would (ISSUE 9).
      "initial_keep",  "initial_segments", "final_validation_segments",
      "sample_growth", "exhaustive_cap", "unit_check"};
  return keys;
}

}  // namespace

util::Status spec_from_json(const util::JsonValue& j, JobSpec* spec) {
  if (!j.is_object()) return bad("job entry must be an object");
  for (const auto& [key, value] : j.members()) {
    (void)value;
    if (!known_job_keys().count(key)) return bad("unknown job key '" + key + "'");
  }

  // Batch jobs start from the same defaults as `abagnale_cli synthesize`, so
  // a manifest entry and the equivalent single-job invocation agree.
  auto& synth = spec->pipeline.synth;
  synth.initial_samples = 8;
  synth.concretize_budget = 24;
  synth.max_depth = 4;
  synth.max_nodes = 9;
  synth.max_holes = 3;
  synth.dopts.max_points = 128;
  synth.timeout_s = 120.0;

  if (auto st = read_string(j, "name", &spec->name); !st.is_ok()) return st;

  const auto* traces = j.find("traces");
  if (!traces || !traces->is_array() || traces->items().empty()) {
    return bad("'traces' must be a non-empty array of CSV paths");
  }
  for (const auto& t : traces->items()) {
    if (!t.is_string() || t.as_string().empty()) {
      return bad("'traces' entries must be non-empty strings");
    }
    spec->trace_paths.push_back(t.as_string());
  }

  std::string kind = "pipeline";
  if (auto st = read_string(j, "kind", &kind); !st.is_ok()) return st;
  if (kind == "pipeline") {
    spec->kind = JobSpec::Kind::kPipeline;
  } else if (kind == "mister880") {
    spec->kind = JobSpec::Kind::kMister880;
  } else {
    return bad("'kind' must be \"pipeline\" or \"mister880\", got \"" + kind + "\"");
  }

  std::string dsl;
  if (auto st = read_string(j, "dsl", &dsl); !st.is_ok()) return st;
  if (!dsl.empty()) spec->pipeline.dsl_override = dsl;

  std::string metric;
  if (auto st = read_string(j, "metric", &metric); !st.is_ok()) return st;
  if (!metric.empty()) {
    if (metric == "dtw") {
      synth.metric = distance::Metric::kDtw;
    } else if (metric == "euclidean") {
      synth.metric = distance::Metric::kEuclidean;
    } else {
      return bad("'metric' must be \"dtw\" or \"euclidean\", got \"" + metric + "\"");
    }
  }

  // "timeout_s": null = no deadline (JSON has no infinity literal; the
  // serializer emits null for an infinite deadline).
  if (const auto* v = j.find("timeout_s")) {
    if (v->is_null()) {
      synth.timeout_s = std::numeric_limits<double>::infinity();
    } else if (!v->is_number()) {
      return bad("'timeout_s' must be a number or null (null = no deadline)");
    } else {
      synth.timeout_s = v->as_double();
    }
  }
  // "seed": a decimal string carries the full u64 range; a JSON number is
  // also accepted (legacy manifests) but loses precision above 2^53.
  if (const auto* v = j.find("seed")) {
    if (v->is_string()) {
      if (!util::parse_u64(v->as_string(), &synth.seed)) {
        return bad("'seed' must be a u64 (number or decimal string)");
      }
    } else if (v->is_number()) {
      synth.seed = static_cast<std::uint64_t>(v->as_int());
    } else {
      return bad("'seed' must be a u64 (number or decimal string)");
    }
  }
  if (auto st = read_int(j, "max_iterations", &synth.max_iterations); !st.is_ok()) return st;
  if (auto st = read_int(j, "initial_samples", &synth.initial_samples); !st.is_ok()) return st;
  if (auto st = read_size(j, "concretize_budget", &synth.concretize_budget); !st.is_ok()) return st;
  // "max_depth"/"max_nodes": null = unbounded (std::nullopt); absent keeps
  // the manifest-dialect defaults above.
  if (const auto* v = j.find("max_depth"); v && v->is_null()) {
    synth.max_depth.reset();
  } else {
    int depth = *synth.max_depth;
    if (auto st = read_int(j, "max_depth", &depth); !st.is_ok()) return st;
    synth.max_depth = depth;
  }
  if (const auto* v = j.find("max_nodes"); v && v->is_null()) {
    synth.max_nodes.reset();
  } else {
    int nodes = *synth.max_nodes;
    if (auto st = read_int(j, "max_nodes", &nodes); !st.is_ok()) return st;
    synth.max_nodes = nodes;
  }
  if (auto st = read_int(j, "max_holes", &synth.max_holes); !st.is_ok()) return st;
  if (auto st = read_int(j, "initial_keep", &synth.initial_keep); !st.is_ok()) return st;
  if (auto st = read_int(j, "initial_segments", &synth.initial_segments); !st.is_ok()) return st;
  if (auto st = read_size(j, "final_validation_segments", &synth.final_validation_segments);
      !st.is_ok()) {
    return st;
  }
  if (auto st = read_int(j, "sample_growth", &synth.sample_growth); !st.is_ok()) return st;
  if (auto st = read_size(j, "exhaustive_cap", &synth.exhaustive_cap); !st.is_ok()) return st;
  if (auto st = read_bool(j, "unit_check", &synth.unit_check); !st.is_ok()) return st;
  if (auto st = read_double(j, "warmup_s", &spec->pipeline.warmup_s); !st.is_ok()) return st;
  if (auto st = read_size(j, "min_segment_samples", &spec->pipeline.min_segment_samples);
      !st.is_ok()) {
    return st;
  }

  bool fast_path = true;
  if (auto st = read_bool(j, "fast_path", &fast_path); !st.is_ok()) return st;
  synth.use_eval_cache = fast_path;
  synth.early_abandon = fast_path;
  // The batched bytecode path is part of the same "how much work, same
  // result" family, so the one manifest knob governs all three.
  synth.batch_replay = fast_path;

  // "simd": pin this job's DTW kernel tier ("scalar"/"sse2"/"avx2"/"auto").
  // Default auto defers to ABG_SIMD and CPU detection; an unknown name is a
  // manifest error, not a silent fallback.
  std::string simd_name;
  if (auto st = read_string(j, "simd", &simd_name); !st.is_ok()) return st;
  if (!simd_name.empty()) {
    const auto parsed = distance::parse_simd(simd_name);
    if (!parsed) {
      return bad("'simd' must be one of scalar/sse2/avx2/auto, got '" + simd_name + "'");
    }
    synth.simd = *parsed;
  }

  if (auto st = read_bool(j, "repair_traces", &spec->load.repair); !st.is_ok()) return st;
  if (auto st = read_string(j, "checkpoint", &synth.checkpoint_path); !st.is_ok()) return st;
  if (auto st = read_bool(j, "resume", &synth.resume); !st.is_ok()) return st;
  // "journal": false opts this job out of an armed search-forensics journal
  // (abagnale_cli --journal-out); the default participates.
  if (auto st = read_bool(j, "journal", &synth.journal); !st.is_ok()) return st;

  return util::Status::ok();
}

util::Result<JobSpec> spec_from_json(std::string_view json_text) {
  auto doc = util::parse_json(json_text);
  if (!doc.ok()) return doc.status();
  JobSpec spec;
  if (auto st = spec_from_json(*doc, &spec); !st.is_ok()) return st;
  return spec;
}

std::string spec_to_json(const JobSpec& spec) {
  const auto& synth = spec.pipeline.synth;
  obs::JsonWriter w;
  w.begin_object();
  if (!spec.name.empty()) {
    w.key("name");
    w.value(spec.name);
  }
  w.key("traces");
  w.begin_array();
  for (const auto& p : spec.trace_paths) w.value(p);
  w.end_array();
  w.key("kind");
  w.value(spec.kind == JobSpec::Kind::kMister880 ? "mister880" : "pipeline");
  if (spec.pipeline.dsl_override) {
    w.key("dsl");
    w.value(*spec.pipeline.dsl_override);
  }
  w.key("metric");
  w.value(synth.metric == distance::Metric::kEuclidean ? "euclidean" : "dtw");
  // JsonWriter renders a non-finite double as null, which is exactly the
  // dialect's "no deadline" spelling.
  w.key("timeout_s");
  w.value(synth.timeout_s);
  // Decimal string, not a JSON number: doubles can't carry a full u64, and
  // the seed must survive the coordinator→worker wire bit-exactly.
  w.key("seed");
  w.value(std::to_string(synth.seed));
  w.key("max_iterations");
  w.value(static_cast<std::int64_t>(synth.max_iterations));
  w.key("initial_samples");
  w.value(static_cast<std::int64_t>(synth.initial_samples));
  w.key("concretize_budget");
  w.value(static_cast<std::uint64_t>(synth.concretize_budget));
  w.key("max_depth");
  if (synth.max_depth) {
    w.value(static_cast<std::int64_t>(*synth.max_depth));
  } else {
    w.raw("null");
  }
  w.key("max_nodes");
  if (synth.max_nodes) {
    w.value(static_cast<std::int64_t>(*synth.max_nodes));
  } else {
    w.raw("null");
  }
  w.key("max_holes");
  w.value(static_cast<std::int64_t>(synth.max_holes));
  w.key("initial_keep");
  w.value(static_cast<std::int64_t>(synth.initial_keep));
  w.key("initial_segments");
  w.value(static_cast<std::int64_t>(synth.initial_segments));
  w.key("final_validation_segments");
  w.value(static_cast<std::uint64_t>(synth.final_validation_segments));
  w.key("sample_growth");
  w.value(static_cast<std::int64_t>(synth.sample_growth));
  w.key("exhaustive_cap");
  w.value(static_cast<std::uint64_t>(synth.exhaustive_cap));
  w.key("unit_check");
  w.value(synth.unit_check);
  w.key("warmup_s");
  w.value(spec.pipeline.warmup_s);
  w.key("min_segment_samples");
  w.value(static_cast<std::uint64_t>(spec.pipeline.min_segment_samples));
  w.key("fast_path");
  w.value(synth.use_eval_cache && synth.early_abandon && synth.batch_replay);
  if (synth.simd != distance::Simd::kAuto) {
    w.key("simd");
    w.value(distance::simd_name(synth.simd));
  }
  w.key("repair_traces");
  w.value(spec.load.repair);
  if (!synth.checkpoint_path.empty()) {
    w.key("checkpoint");
    w.value(synth.checkpoint_path);
  }
  w.key("resume");
  w.value(synth.resume);
  w.key("journal");
  w.value(synth.journal);
  w.end_object();
  return w.take();
}

namespace {

util::Result<Manifest> parse_manifest_doc(const util::JsonValue& doc) {
  if (!doc.is_object()) return bad("manifest must be a JSON object");

  static const std::set<std::string> top_keys = {"threads", "max_concurrent_jobs",
                                                "share_eval_cache", "report", "jobs"};
  for (const auto& [key, value] : doc.members()) {
    (void)value;
    if (!top_keys.count(key)) return bad("unknown manifest key '" + key + "'");
  }

  Manifest m;
  if (auto st = read_size(doc, "threads", &m.engine.threads); !st.is_ok()) return st;
  if (auto st = read_size(doc, "max_concurrent_jobs", &m.engine.max_concurrent_jobs);
      !st.is_ok()) {
    return st;
  }
  if (auto st = read_bool(doc, "share_eval_cache", &m.engine.share_eval_cache); !st.is_ok()) {
    return st;
  }
  if (auto st = read_string(doc, "report", &m.report_path); !st.is_ok()) return st;

  const auto* jobs = doc.find("jobs");
  if (!jobs || !jobs->is_array() || jobs->items().empty()) {
    return bad("'jobs' must be a non-empty array");
  }
  m.jobs.reserve(jobs->items().size());
  for (std::size_t i = 0; i < jobs->items().size(); ++i) {
    JobSpec spec;
    if (auto st = spec_from_json(jobs->items()[i], &spec); !st.is_ok()) {
      return st.with_context("jobs[" + std::to_string(i) + "]");
    }
    m.jobs.push_back(std::move(spec));
  }
  return m;
}

}  // namespace

util::Result<Manifest> parse_manifest(std::string_view json_text) {
  auto doc = util::parse_json(json_text);
  if (!doc.ok()) return doc.status();
  return parse_manifest_doc(*doc);
}

util::Result<JobSpec> parse_job_spec(std::string_view json_text) {
  return spec_from_json(json_text);
}

util::Result<Manifest> load_manifest(const std::string& path) {
  auto doc = util::load_json(path);
  if (!doc.ok()) return doc.status();
  return parse_manifest_doc(*doc).with_context(path);
}

}  // namespace abg::api
