// The public API/wire version, stamped into report metadata ("api_version")
// and matched by the versioned HTTP surface: every route the serve layer and
// the distributed worker protocol expose lives under /v1/ (unversioned
// aliases still answer, with a Deprecation header — see obs::StatusServer).
//
// Bump this only together with a new /vN route prefix; the macro is a string
// so report-meta comparisons (abg_report) stay textual.
#ifndef ABG_API_VERSION_HPP_
#define ABG_API_VERSION_HPP_

#define ABG_API_VERSION "1"

#endif  // ABG_API_VERSION_HPP_
