// Batch manifest loader: turns a JSON sweep description into EngineOptions +
// a vector of JobSpecs for `abagnale_cli --batch manifest.json`. Shape:
//
//   {
//     "threads": 8,                  // optional, 0/absent = hardware
//     "max_concurrent_jobs": 4,     // optional, 0/absent = min(4, threads)
//     "share_eval_cache": true,     // optional, default true
//     "report": "report.json",      // optional consolidated-report path
//     "jobs": [
//       {
//         "name": "reno",           // optional, auto "job-N"
//         "traces": ["a.csv", ...], // required
//         "kind": "pipeline",       // or "mister880"; default pipeline
//         "dsl": "reno",            // optional forced sub-DSL
//         "timeout_s": 120,         // null = no deadline
//         "seed": "7",              // u64; decimal string or number
//         "metric": "dtw" | "euclidean",
//         "max_iterations": 6, "initial_samples": 16,
//         "concretize_budget": 24,
//         "max_depth": 4, "max_nodes": 9,   // null = unbounded
//         "max_holes": 3, "warmup_s": 2.0, "min_segment_samples": 20,
//         "fast_path": true, "repair_traces": false,
//         "checkpoint": "state.bin", "resume": false,
//         "journal": true,          // participate in --journal-out recording
//         "simd": "auto",           // scalar | sse2 | avx2 | auto
//         "initial_keep": 4, "initial_segments": 2,
//         "final_validation_segments": 0, "sample_growth": 2,
//         "exhaustive_cap": 20000, "unit_check": true
//       }, ...
//     ]
//   }
//
// Unknown keys are rejected (a typoed budget silently using the default is
// exactly the kind of sweep bug a manifest exists to prevent).
#pragma once

#include <string>
#include <vector>

#include "api/engine.hpp"
#include "api/job.hpp"
#include "util/json_parse.hpp"
#include "util/result.hpp"

namespace abg::api {

struct Manifest {
  EngineOptions engine;
  std::vector<JobSpec> jobs;
  // Consolidated JSON run-report path; empty = no report file.
  std::string report_path;
};

// Parse a manifest from JSON text. Structural and type errors come back as
// kParseError / kInvalidArgument naming the offending job and key; JobSpec
// validation itself happens later at Engine::submit.
util::Result<Manifest> parse_manifest(std::string_view json_text);

// Parse one job-entry object (the element shape of the manifest's "jobs"
// array) from JSON text. This is the body format of `POST /jobs` in the
// serve daemon (ISSUE 8): the exact same keys and defaults as a manifest
// entry, so a job moves between batch and service submission unchanged.
util::Result<JobSpec> parse_job_spec(std::string_view json_text);

// --- The canonical JobSpec codec (ISSUE 9). --------------------------------
// Every surface that accepts a job — `abagnale_cli synthesize` flags, batch
// manifest entries, POST /v1/jobs bodies, and the coordinator→worker shard
// protocol — parses through spec_from_json and serializes through
// spec_to_json. One dialect, one set of defaults, one unknown-key rejection
// (kInvalidArgument naming the field).
//
// spec_to_json emits every knob explicitly (including the codec defaults),
// so spec_from_json(spec_to_json(s)) reproduces s exactly for any spec the
// dialect can express. timeout_s serializes as null when infinite and null
// parses back to infinity; max_depth/max_nodes serialize as null when
// unbounded. seed serializes as a decimal string (a JSON double cannot carry
// a full u64 bit-exactly; numbers are still accepted on parse for legacy
// manifests). fast_path collapses the three work-saving knobs
// (use_eval_cache / early_abandon / batch_replay) to their conjunction, as
// the parse side has always fanned one key into all three.
util::Status spec_from_json(const util::JsonValue& j, JobSpec* spec);
util::Result<JobSpec> spec_from_json(std::string_view json_text);
std::string spec_to_json(const JobSpec& spec);

// Load + parse a manifest file.
util::Result<Manifest> load_manifest(const std::string& path);

}  // namespace abg::api
