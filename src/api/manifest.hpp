// Batch manifest loader: turns a JSON sweep description into EngineOptions +
// a vector of JobSpecs for `abagnale_cli --batch manifest.json`. Shape:
//
//   {
//     "threads": 8,                  // optional, 0/absent = hardware
//     "max_concurrent_jobs": 4,     // optional, 0/absent = min(4, threads)
//     "share_eval_cache": true,     // optional, default true
//     "report": "report.json",      // optional consolidated-report path
//     "jobs": [
//       {
//         "name": "reno",           // optional, auto "job-N"
//         "traces": ["a.csv", ...], // required
//         "kind": "pipeline",       // or "mister880"; default pipeline
//         "dsl": "reno",            // optional forced sub-DSL
//         "timeout_s": 120, "seed": 7, "metric": "dtw" | "euclidean",
//         "max_iterations": 6, "initial_samples": 16,
//         "concretize_budget": 24, "max_depth": 4, "max_nodes": 9,
//         "max_holes": 3, "warmup_s": 2.0, "min_segment_samples": 20,
//         "fast_path": true, "repair_traces": false,
//         "checkpoint": "state.bin", "resume": false,
//         "journal": true           // participate in --journal-out recording
//       }, ...
//     ]
//   }
//
// Unknown keys are rejected (a typoed budget silently using the default is
// exactly the kind of sweep bug a manifest exists to prevent).
#pragma once

#include <string>
#include <vector>

#include "api/engine.hpp"
#include "api/job.hpp"
#include "util/result.hpp"

namespace abg::api {

struct Manifest {
  EngineOptions engine;
  std::vector<JobSpec> jobs;
  // Consolidated JSON run-report path; empty = no report file.
  std::string report_path;
};

// Parse a manifest from JSON text. Structural and type errors come back as
// kParseError / kInvalidArgument naming the offending job and key; JobSpec
// validation itself happens later at Engine::submit.
util::Result<Manifest> parse_manifest(std::string_view json_text);

// Parse one job-entry object (the element shape of the manifest's "jobs"
// array) from JSON text. This is the body format of `POST /jobs` in the
// serve daemon (ISSUE 8): the exact same keys and defaults as a manifest
// entry, so a job moves between batch and service submission unchanged.
util::Result<JobSpec> parse_job_spec(std::string_view json_text);

// Load + parse a manifest file.
util::Result<Manifest> load_manifest(const std::string& path);

}  // namespace abg::api
