// Compatibility wrappers: the pre-Engine free-function surface, reimplemented
// as thin one-job submissions so every call path exercises the same batch
// engine. Deprecated since API version 1 (see api/version.hpp): new code
// builds an api::JobSpec and runs it through api::Engine (or the single
// codec, api::spec_from_json). These stay so callers written against the
// original `synthesize(dsl, segments, opts)` shape keep working and so tests
// can pin wrapper/engine equivalence until removal.
#pragma once

#include <vector>

#include "dsl/dsl.hpp"
#include "synth/mister880.hpp"
#include "synth/refinement.hpp"
#include "trace/trace.hpp"

namespace abg::api {

// One-job Engine run of the refinement search (Algorithm 1) over
// pre-segmented input. Bit-identical to synth::synthesize with the same
// arguments; the pool is sized from opts.threads.
[[deprecated("build a JobSpec and run it through api::Engine")]]
synth::SynthesisResult synthesize(const dsl::Dsl& dsl,
                                  const std::vector<trace::Segment>& segments,
                                  const synth::SynthesisOptions& opts = {});

// One-job Engine run of the HotNets'21 decision-problem baseline.
[[deprecated("build a kMister880 JobSpec and run it through api::Engine")]]
synth::Mister880Result run_mister880(const dsl::Dsl& dsl,
                                     const std::vector<trace::Segment>& segments,
                                     const synth::Mister880Options& opts = {});

}  // namespace abg::api
