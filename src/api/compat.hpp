// Compatibility wrappers: the pre-Engine free-function surface, reimplemented
// as thin one-job submissions so every call path exercises the same batch
// engine. Prefer api::Engine for new code — these exist so callers written
// against the original `synthesize(dsl, segments, opts)` shape keep working
// and so tests can assert wrapper/engine equivalence.
#pragma once

#include <vector>

#include "dsl/dsl.hpp"
#include "synth/mister880.hpp"
#include "synth/refinement.hpp"
#include "trace/trace.hpp"

namespace abg::api {

// One-job Engine run of the refinement search (Algorithm 1) over
// pre-segmented input. Bit-identical to synth::synthesize with the same
// arguments; the pool is sized from opts.threads.
synth::SynthesisResult synthesize(const dsl::Dsl& dsl,
                                  const std::vector<trace::Segment>& segments,
                                  const synth::SynthesisOptions& opts = {});

// One-job Engine run of the HotNets'21 decision-problem baseline.
synth::Mister880Result run_mister880(const dsl::Dsl& dsl,
                                     const std::vector<trace::Segment>& segments,
                                     const synth::Mister880Options& opts = {});

}  // namespace abg::api
