// The batch synthesis engine (ISSUE 4 tentpole). One Engine owns the
// process's synthesis infrastructure — a work-stealing util::ThreadPool, a
// cross-job synth::EvalCache, and the obs metrics registry it reports from —
// and runs any number of submitted jobs against it concurrently:
//
//   api::Engine engine({.threads = 8, .max_concurrent_jobs = 4});
//   auto handle = engine.submit(std::move(spec));      // eager validation
//   if (!handle.ok()) die(handle.status());
//   const api::JobResult& r = handle->wait();
//
// Scheduling model: `max_concurrent_jobs` driver threads pull jobs FIFO from
// the submission queue and run the refinement loop with the shared pool
// injected (SynthesisOptions::pool). Bucket-scoring tasks from all running
// jobs land round-robin on the pool's per-worker deques and idle workers
// steal oldest-first, so a 23-CCA sweep keeps every core busy instead of
// serializing one job's cold start after another; each driver also executes
// its own job's tasks (caller-runs), so a driver can never be starved by its
// peers. Sharing the EvalCache never changes results — entries are exact and
// keyed by (segment-set fingerprint, canonical handler) — it only converts
// repeated evaluations in later jobs into lookups.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/job.hpp"
#include "synth/eval_cache.hpp"
#include "util/cancellation.hpp"
#include "util/result.hpp"
#include "util/thread_pool.hpp"

namespace abg::api {

struct EngineOptions {
  // Size of the shared scoring pool; 0 = hardware concurrency.
  std::size_t threads = 0;
  // Driver threads, i.e. jobs allowed in flight at once; 0 = min(4, pool
  // size). More drivers improve interleaving for many small jobs; fewer keep
  // per-job wall-clock closer to a standalone run.
  std::size_t max_concurrent_jobs = 0;
  // Share one EvalCache across all jobs (bit-identical results either way;
  // off restores fully isolated per-job caches).
  bool share_eval_cache = true;
};

enum class JobState { kQueued, kRunning, kDone };

// "queued" / "running" / "done" — the /jobs JSON spelling.
const char* job_state_name(JobState s);

// Point-in-time view of one job for the live status surface (ISSUE 5).
// Running jobs report the driver's relaxed-atomic progress mirror (updated
// once per refinement iteration); done jobs report their final JobResult, so
// a snapshot taken after wait_all() matches the results exactly.
struct JobSnapshot {
  std::string name;
  JobState state = JobState::kQueued;
  int iterations = 0;               // refinement iterations completed
  int planned_iterations = 0;       // SynthesisOptions::max_iterations budget
  double best_distance = std::numeric_limits<double>::infinity();
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double elapsed_s = 0.0;
  // Naive remaining-time estimate: elapsed/iterations × iterations left.
  // Negative means unknown (queued, no iterations yet, or already done).
  double eta_s = -1.0;
  bool found = false;   // meaningful once state == kDone
  int exit_class = 0;   // meaningful once state == kDone

  double cache_hit_rate() const {
    const double total = static_cast<double>(cache_hits + cache_misses);
    return total > 0 ? static_cast<double>(cache_hits) / total : 0.0;
  }
};

namespace detail {
struct JobInner;
}  // namespace detail

// Future-like view of one submitted job. Cheap to copy (shared ownership of
// the job record); outliving the Engine is safe for reading results, though
// the Engine's destructor already waits for every job to finish.
class JobHandle {
 public:
  JobHandle() = default;  // invalid until assigned from Engine::submit

  bool valid() const { return inner_ != nullptr; }
  const std::string& name() const;
  JobState state() const;

  // Non-blocking: nullptr until the job finishes, then its result.
  const JobResult* poll() const;
  // Block until the job finishes. The reference stays valid as long as any
  // handle to this job exists.
  const JobResult& wait() const;
  // Cooperatively cancel this job (queued jobs unwind as soon as a driver
  // picks them up). The job completes with the given interrupt class and
  // best-so-far results, mirroring a deadline preemption.
  void cancel(util::StatusCode reason = util::StatusCode::kCancelled) const;

 private:
  friend class Engine;
  explicit JobHandle(std::shared_ptr<detail::JobInner> inner) : inner_(std::move(inner)) {}

  std::shared_ptr<detail::JobInner> inner_;
};

class Engine {
 public:
  explicit Engine(EngineOptions opts = {});
  // Drains: waits for every submitted job to finish (cancel_all() first for
  // a prompt exit), then joins drivers and pool.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Validate the spec eagerly and enqueue it. A spec with an empty name gets
  // "job-<n>". Never blocks on other jobs.
  util::Result<JobHandle> submit(JobSpec spec);

  // All-or-nothing convenience: every spec is validated before any is
  // enqueued, so a bad manifest rejects cleanly instead of half-running.
  util::Result<std::vector<JobHandle>> submit_all(std::vector<JobSpec> specs);

  // Block until every job submitted so far has finished.
  void wait_all();

  // Fire every in-flight and queued job's cancellation token.
  void cancel_all(util::StatusCode reason = util::StatusCode::kCancelled);

  // Resolved configuration and shared state (mainly for tests/reports).
  const EngineOptions& options() const { return opts_; }
  util::ThreadPool& pool() { return pool_; }
  synth::EvalCache& eval_cache() { return cache_; }
  std::size_t jobs_submitted() const;

  // Live introspection (ISSUE 5). Both walk a copy-on-write published job
  // list — submit() republishes the vector under mu_, readers load one
  // shared_ptr and then touch only per-job atomics — so polling from the
  // status endpoint never takes mu_ and never stalls a driver mid-job.
  std::vector<JobSnapshot> jobs_snapshot() const;
  // The /jobs endpoint body: {"jobs":[{name,state,iterations,...}, ...]}.
  std::string jobs_json() const;

 private:
  void driver_loop();
  void run_job(detail::JobInner& job);

  EngineOptions opts_;  // resolved (threads/max_concurrent_jobs concrete)
  util::ThreadPool pool_;
  synth::EvalCache cache_;

  mutable std::mutex mu_;          // guards queue_, jobs_, counters
  std::condition_variable cv_;     // queue became non-empty / stopping
  std::condition_variable idle_cv_;  // a job finished (wait_all)
  std::deque<std::shared_ptr<detail::JobInner>> queue_;
  std::vector<std::shared_ptr<detail::JobInner>> jobs_;  // every submission
  // Immutable snapshot of jobs_, republished on every submit; the lock-free
  // read side of jobs_snapshot()/jobs_json().
  using JobList = std::vector<std::shared_ptr<detail::JobInner>>;
  std::atomic<std::shared_ptr<const JobList>> published_jobs_{};
  std::size_t active_ = 0;
  std::size_t submitted_ = 0;
  bool stop_ = false;

  std::vector<std::thread> drivers_;
};

}  // namespace abg::api
