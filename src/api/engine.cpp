#include "api/engine.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "api/version.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/trace_events.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace abg::api {

namespace detail {

// One submitted job's full record: spec in, result out, plus the done latch
// and the cancellation token the engine threads through the synthesis loop.
struct JobInner {
  explicit JobInner(JobSpec s)
      : spec(std::move(s)), token(spec.pipeline.synth.cancel) {}

  JobSpec spec;
  JobResult result;
  // Parent-linked to any caller-supplied token in the spec, so both the
  // engine (cancel_all, handle.cancel) and the embedding application can
  // preempt the job; the caller's token must outlive the run, as documented
  // on SynthesisOptions::cancel.
  util::CancellationToken token;

  std::atomic<JobState> state{JobState::kQueued};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;

  // Live progress mirror (ISSUE 5): written by the driver thread once per
  // refinement iteration with relaxed stores, read lock-free by
  // Engine::jobs_snapshot(). Each field is independently atomic — a reader
  // may see iteration N's count with iteration N-1's distance, which is fine
  // for a monitoring surface; the authoritative record is JobResult.
  struct Progress {
    std::atomic<int> iterations{0};
    std::atomic<double> best_distance{std::numeric_limits<double>::infinity()};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> cache_misses{0};
    std::atomic<double> elapsed_s{0.0};
  };
  Progress progress;
};

}  // namespace detail

// --- JobSpec validation ------------------------------------------------------

util::Status JobSpec::validate() const {
  auto bad = [](const std::string& msg) {
    return util::Status(util::StatusCode::kInvalidArgument, msg);
  };
  const bool has_traces = !trace_paths.empty() || !traces.empty();
  if (!has_traces && segments.empty()) {
    return bad("job has no input: add trace paths, traces, or segments");
  }
  if (!segments.empty() && has_traces) {
    return bad("pre-segmented input and raw traces are mutually exclusive");
  }
  for (const auto& p : trace_paths) {
    if (p.empty()) return bad("empty trace path");
  }
  const bool has_dsl = custom_dsl.has_value() || pipeline.dsl_override.has_value();
  if (!segments.empty() && !has_dsl) {
    return bad("pre-segmented input needs an explicit DSL (there is nothing to classify)");
  }
  if (custom_dsl && custom_dsl->name.empty()) return bad("custom_dsl has no name");
  if (auto st = pipeline.validate(); !st.is_ok()) return st.with_context("pipeline");
  if (kind == Kind::kMister880) {
    if (!has_dsl) return bad("mister880 jobs need an explicit DSL");
    if (auto st = mister880.validate(); !st.is_ok()) return st.with_context("mister880");
  }
  return util::Status::ok();
}

// --- JobHandle ---------------------------------------------------------------

const std::string& JobHandle::name() const { return inner_->result.name; }

JobState JobHandle::state() const { return inner_->state.load(std::memory_order_acquire); }

const JobResult* JobHandle::poll() const {
  if (!inner_ || inner_->state.load(std::memory_order_acquire) != JobState::kDone) {
    return nullptr;
  }
  return &inner_->result;
}

const JobResult& JobHandle::wait() const {
  std::unique_lock lk(inner_->mu);
  inner_->cv.wait(lk, [&] { return inner_->done; });
  return inner_->result;
}

void JobHandle::cancel(util::StatusCode reason) const {
  if (inner_) inner_->token.cancel(reason);
}

// --- Engine ------------------------------------------------------------------

Engine::Engine(EngineOptions opts) : opts_([&] {
      EngineOptions resolved = opts;
      if (resolved.threads == 0) {
        resolved.threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
      }
      if (resolved.max_concurrent_jobs == 0) {
        resolved.max_concurrent_jobs = std::min<std::size_t>(4, resolved.threads);
      }
      return resolved;
    }()),
    pool_(opts_.threads) {
  // Every metrics/report snapshot taken while an Engine exists names the API
  // surface it was produced under, so abg_report comparisons across versions
  // fail loudly instead of silently diffing incompatible runs.
  obs::set_report_meta("api_version", ABG_API_VERSION);
  drivers_.reserve(opts_.max_concurrent_jobs);
  for (std::size_t i = 0; i < opts_.max_concurrent_jobs; ++i) {
    drivers_.emplace_back([this] { driver_loop(); });
  }
}

Engine::~Engine() {
  wait_all();
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& d : drivers_) d.join();
}

util::Result<JobHandle> Engine::submit(JobSpec spec) {
  if (auto st = spec.validate(); !st.is_ok()) {
    return st.with_context(spec.name.empty() ? std::string("job") : "job '" + spec.name + "'");
  }
  auto inner = std::make_shared<detail::JobInner>(std::move(spec));
  {
    std::lock_guard lk(mu_);
    ++submitted_;
    if (inner->spec.name.empty()) inner->spec.name = "job-" + std::to_string(submitted_);
    inner->result.name = inner->spec.name;
    inner->result.kind = inner->spec.kind;
    queue_.push_back(inner);
    jobs_.push_back(inner);
    // Republish the job list for the lock-free status readers. Copying the
    // vector of shared_ptrs per submit is cheap next to a synthesis run.
    published_jobs_.store(std::make_shared<const JobList>(jobs_), std::memory_order_release);
  }
  static auto& c_submitted = obs::counter("api.jobs_submitted");
  c_submitted.add();
  cv_.notify_one();
  return JobHandle(std::move(inner));
}

util::Result<std::vector<JobHandle>> Engine::submit_all(std::vector<JobSpec> specs) {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (auto st = specs[i].validate(); !st.is_ok()) {
      return st.with_context("manifest job " + std::to_string(i + 1) +
                             (specs[i].name.empty() ? "" : " ('" + specs[i].name + "')"));
    }
  }
  std::vector<JobHandle> handles;
  handles.reserve(specs.size());
  for (auto& spec : specs) {
    auto h = submit(std::move(spec));
    if (!h.ok()) return h.status();  // unreachable: validated above
    handles.push_back(std::move(*h));
  }
  return handles;
}

void Engine::wait_all() {
  std::unique_lock lk(mu_);
  idle_cv_.wait(lk, [&] { return queue_.empty() && active_ == 0; });
}

void Engine::cancel_all(util::StatusCode reason) {
  std::lock_guard lk(mu_);
  for (auto& j : jobs_) j->token.cancel(reason);
}

std::size_t Engine::jobs_submitted() const {
  std::lock_guard lk(mu_);
  return submitted_;
}

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
  }
  return "unknown";
}

std::vector<JobSnapshot> Engine::jobs_snapshot() const {
  const auto list = published_jobs_.load(std::memory_order_acquire);
  std::vector<JobSnapshot> out;
  if (!list) return out;
  out.reserve(list->size());
  for (const auto& j : *list) {
    JobSnapshot s;
    s.name = j->result.name;  // fixed at submit, immutable afterwards
    s.state = j->state.load(std::memory_order_acquire);
    s.planned_iterations = j->spec.pipeline.synth.max_iterations;
    if (s.state == JobState::kDone) {
      // The kDone release store publishes the finished JobResult.
      const JobResult& r = j->result;
      s.iterations = static_cast<int>(r.convergence.size());
      if (!r.convergence.empty()) s.best_distance = r.convergence.back().best_distance;
      if (r.kind == JobSpec::Kind::kPipeline && r.pipeline.found()) {
        s.best_distance = r.pipeline.synthesis.best.distance;
      }
      s.cache_hits = r.cache_hits;
      s.cache_misses = r.cache_misses;
      s.elapsed_s = r.seconds;
      s.found = r.found();
      s.exit_class = r.exit_class();
    } else if (s.state == JobState::kRunning) {
      const auto& p = j->progress;
      s.iterations = p.iterations.load(std::memory_order_relaxed);
      s.best_distance = p.best_distance.load(std::memory_order_relaxed);
      s.cache_hits = p.cache_hits.load(std::memory_order_relaxed);
      s.cache_misses = p.cache_misses.load(std::memory_order_relaxed);
      s.elapsed_s = p.elapsed_s.load(std::memory_order_relaxed);
      if (s.iterations > 0 && s.planned_iterations > s.iterations && s.elapsed_s > 0) {
        s.eta_s = s.elapsed_s / s.iterations * (s.planned_iterations - s.iterations);
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string Engine::jobs_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("jobs");
  w.begin_array();
  for (const auto& s : jobs_snapshot()) {
    w.begin_object();
    w.key("name");
    w.value(s.name);
    w.key("state");
    w.value(job_state_name(s.state));
    w.key("iterations");
    w.value(static_cast<std::int64_t>(s.iterations));
    w.key("planned_iterations");
    w.value(static_cast<std::int64_t>(s.planned_iterations));
    w.key("best_distance");
    w.value(s.best_distance);  // +inf (no candidate yet) renders as null
    w.key("cache_hits");
    w.value(static_cast<std::uint64_t>(s.cache_hits));
    w.key("cache_misses");
    w.value(static_cast<std::uint64_t>(s.cache_misses));
    w.key("cache_hit_rate");
    w.value(s.cache_hit_rate());
    w.key("elapsed_s");
    w.value(s.elapsed_s);
    w.key("eta_s");
    w.value(s.eta_s);  // negative = unknown
    w.key("found");
    w.value(s.found);
    w.key("exit_class");
    w.value(static_cast<std::int64_t>(s.exit_class));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

void Engine::driver_loop() {
  for (;;) {
    std::shared_ptr<detail::JobInner> job;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      job = queue_.front();
      queue_.pop_front();
      ++active_;
    }
    job->state.store(JobState::kRunning, std::memory_order_release);
    run_job(*job);
    // Terminal callback fires before the done latch / kDone store, so a
    // waiter released by wait() can rely on its side effects (the serve
    // layer's durable WAL record + result file) already being on disk.
    if (job->spec.on_complete) job->spec.on_complete(job->result);
    {
      std::lock_guard lk(job->mu);
      job->done = true;
    }
    job->state.store(JobState::kDone, std::memory_order_release);
    job->cv.notify_all();
    {
      std::lock_guard lk(mu_);
      --active_;
    }
    idle_cv_.notify_all();
  }
}

void Engine::run_job(detail::JobInner& job) {
  static auto& c_completed = obs::counter("api.jobs_completed");
  util::Stopwatch clock;
  // Give the job its own trace lane: every span opened while this driver (or
  // a pool worker running this job's stolen tasks) is inside the job carries
  // the lane's pid, so the exported trace renders one Perfetto track per job
  // instead of one interleaved process soup.
  const std::uint32_t lane =
      obs::tracing_enabled() ? obs::register_lane("job " + job.spec.name) : 0;
  obs::ContextScope lane_scope(obs::SpanContext{lane, 0});
  obs::TraceSpan span("api.job " + job.spec.name, "api");
  JobResult& out = job.result;

  // Inject the shared infrastructure. The spec's own options stay authoritative
  // for everything that affects the search result; only the executor, memo
  // cache, cancellation, and progress plumbing are engine-provided.
  core::PipelineOptions popts = job.spec.pipeline;
  popts.synth.pool = &pool_;
  popts.synth.shared_cache =
      (opts_.share_eval_cache && popts.synth.use_eval_cache) ? &cache_ : nullptr;
  popts.synth.cancel = &job.token;

  // Labeled metric series for this run: {job=<name>[, cca=<dsl>]}. The synth
  // layer appends the per-bucket label itself.
  obs::Labels job_labels{{"job", job.spec.name}};
  if (job.spec.custom_dsl) {
    job_labels.emplace_back("cca", job.spec.custom_dsl->name);
  } else if (popts.dsl_override) {
    job_labels.emplace_back("cca", *popts.dsl_override);
  }
  popts.synth.obs_labels = job_labels;

  // Interpose on the per-iteration stream to keep the lock-free progress
  // mirror current, then forward to any caller-supplied callback. Runs on
  // this driver thread, so `job` and `clock` comfortably outlive it.
  const auto user_cb = job.spec.on_iteration;
  popts.synth.on_iteration = [&job, &clock, user_cb](const synth::IterationReport& rep) {
    auto& p = job.progress;
    p.iterations.fetch_add(1, std::memory_order_relaxed);
    p.best_distance.store(rep.best_distance, std::memory_order_relaxed);
    p.cache_hits.store(rep.cache_hits, std::memory_order_relaxed);
    p.cache_misses.store(rep.cache_misses, std::memory_order_relaxed);
    p.elapsed_s.store(clock.elapsed_seconds(), std::memory_order_relaxed);
    if (user_cb) user_cb(rep);
  };

  // Assemble the input traces.
  std::vector<trace::Trace> traces;
  for (const auto& path : job.spec.trace_paths) {
    auto t = trace::load_csv(path, job.spec.load);
    if (!t.ok()) {
      // A batch manifest must not silently shrink its inputs: one bad file
      // fails this job (and only this job).
      out.status = t.status().with_context(path);
      out.seconds = clock.elapsed_seconds();
      c_completed.add();
      return;
    }
    traces.push_back(std::move(*t));
  }
  for (const auto& t : job.spec.traces) traces.push_back(t);

  // Resolve pre-segmented input and the explicit-DSL paths.
  const bool pre_segmented = !job.spec.segments.empty();
  auto resolve_dsl = [&]() -> dsl::Dsl {
    if (job.spec.custom_dsl) return *job.spec.custom_dsl;
    return dsl::dsl_by_name(*popts.dsl_override);  // validated: name is curated
  };

  if (job.spec.kind == JobSpec::Kind::kMister880) {
    std::vector<trace::Segment> segments = job.spec.segments;
    if (!pre_segmented) {
      std::vector<trace::Trace> steady;
      steady.reserve(traces.size());
      for (const auto& t : traces) steady.push_back(trace::trim_warmup(t, popts.warmup_s));
      segments = trace::segment_all(steady, popts.min_segment_samples, popts.skip_first_segment);
    }
    out.segments_total = segments.size();
    out.mister880 = synth::mister880_synthesize(resolve_dsl(), segments, job.spec.mister880);
    out.status = util::Status::ok();
    out.seconds = clock.elapsed_seconds();
    obs::gauge("api.job.seconds", job_labels).set(out.seconds);
    c_completed.add();
    return;
  }

  if (pre_segmented || job.spec.custom_dsl) {
    // Direct synthesis: an explicit search space, no classification stage.
    const dsl::Dsl d = resolve_dsl();
    std::vector<trace::Segment> segments = job.spec.segments;
    if (!pre_segmented) {
      std::vector<trace::Trace> steady;
      steady.reserve(traces.size());
      for (const auto& t : traces) steady.push_back(trace::trim_warmup(t, popts.warmup_s));
      segments = trace::segment_all(steady, popts.min_segment_samples, popts.skip_first_segment);
    }
    out.pipeline.dsl_name = d.name;
    out.pipeline.segments_total = segments.size();
    out.pipeline.synthesis = synth::synthesize(d, segments, popts.synth);
  } else {
    out.pipeline = core::Abagnale(popts).run(traces);
  }
  out.segments_total = out.pipeline.segments_total;
  out.status = out.pipeline.synthesis.status;
  out.cache_hits = out.pipeline.synthesis.cache_hits;
  out.cache_misses = out.pipeline.synthesis.cache_misses;
  out.seconds = clock.elapsed_seconds();

  // Rebuild the convergence series from the recorded iteration reports
  // rather than the streamed callbacks, so checkpoint-restored iterations
  // (which are not replayed through on_iteration) are included and the
  // series always matches the final SynthesisResult.
  const auto& iters = out.pipeline.synthesis.iterations;
  out.convergence.clear();
  out.convergence.reserve(iters.size());
  double wall_ms = 0.0;
  for (std::size_t i = 0; i < iters.size(); ++i) {
    wall_ms += iters[i].seconds * 1000.0;
    out.convergence.push_back(
        {static_cast<int>(i), iters[i].best_distance, wall_ms});
  }

  obs::gauge("api.job.seconds", job_labels).set(out.seconds);
  c_completed.add();
}

}  // namespace abg::api
