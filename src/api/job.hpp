// Job description and result types for the batch synthesis engine
// (abg::api::Engine). A JobSpec is everything one synthesis run needs —
// trace source, search options, budgets, checkpointing — expressed as a
// builder so call sites read as one fluent sentence:
//
//   api::JobSpec spec = api::JobSpec()
//       .with_name("reno")
//       .add_trace_path("traces/reno_0.csv")
//       .with_dsl("reno")
//       .with_timeout(120.0);
//
// Validation is eager (Engine::submit rejects a bad spec with
// kInvalidArgument before any work starts), and every knob defaults to the
// single-job CLI behavior so a one-line spec does the expected thing.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/abagnale.hpp"
#include "dsl/dsl.hpp"
#include "synth/mister880.hpp"
#include "synth/refinement.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"
#include "util/status.hpp"

namespace abg::api {

struct JobResult;  // defined below; JobSpec::on_complete receives one

struct JobSpec {
  // What to run. kPipeline is the full Figure-1 pipeline (classify unless a
  // DSL is forced, segment, refine); kMister880 is the HotNets'21 decision-
  // problem baseline over pre-segmented input.
  enum class Kind { kPipeline, kMister880 };
  Kind kind = Kind::kPipeline;

  // Display/report label. Auto-assigned ("job-N") at submit when empty.
  std::string name;

  // Trace sources, combined in order: CSVs loaded at job start, then the
  // in-memory traces. A failed load fails the whole job (batch manifests
  // should not silently shrink their inputs).
  std::vector<std::string> trace_paths;
  std::vector<trace::Trace> traces;
  trace::LoadOptions load;

  // Pre-segmented input: when non-empty, the pipeline's trim/segment stage
  // is bypassed and these segments feed synthesis directly. Requires an
  // explicit DSL (custom_dsl or pipeline.dsl_override) since there is no
  // trace left to classify. This is the path the legacy free-function
  // wrappers (api::synthesize / api::run_mister880) use.
  std::vector<trace::Segment> segments;

  // An explicit DSL object, for callers that built their own search space;
  // takes precedence over pipeline.dsl_override.
  std::optional<dsl::Dsl> custom_dsl;

  // Full pipeline configuration (synthesis options nested inside).
  core::PipelineOptions pipeline;
  // Baseline configuration, used only when kind == kMister880.
  synth::Mister880Options mister880;

  // Streamed per-iteration progress, forwarded into
  // SynthesisOptions::on_iteration; runs on the job's driver thread.
  std::function<void(const synth::IterationReport&)> on_iteration;

  // Fired exactly once on the driver thread when the job reaches a terminal
  // state, with the full JobResult — before the done latch releases waiters.
  // The serve layer uses this to write the terminal WAL record + result file
  // so a client polling GET /jobs/<id> never sees "done" before the result
  // is durable (ISSUE 8). Keep it cheap-ish: it blocks this driver slot.
  std::function<void(const JobResult&)> on_complete;

  // --- Builder surface. -----------------------------------------------------
  JobSpec& with_name(std::string n) {
    name = std::move(n);
    return *this;
  }
  JobSpec& add_trace_path(std::string path) {
    trace_paths.push_back(std::move(path));
    return *this;
  }
  JobSpec& add_trace(trace::Trace t) {
    traces.push_back(std::move(t));
    return *this;
  }
  JobSpec& with_segments(std::vector<trace::Segment> segs) {
    segments = std::move(segs);
    return *this;
  }
  JobSpec& with_dsl(std::string dsl_name) {
    pipeline.dsl_override = std::move(dsl_name);
    return *this;
  }
  JobSpec& with_custom_dsl(dsl::Dsl d) {
    custom_dsl = std::move(d);
    return *this;
  }
  JobSpec& with_metric(distance::Metric m) {
    pipeline.synth.metric = m;
    return *this;
  }
  JobSpec& with_timeout(double seconds) {
    pipeline.synth.timeout_s = seconds;
    return *this;
  }
  JobSpec& with_seed(std::uint64_t seed) {
    pipeline.synth.seed = seed;
    return *this;
  }
  JobSpec& with_checkpoint(std::string path, bool resume = false) {
    pipeline.synth.checkpoint_path = std::move(path);
    pipeline.synth.resume = resume;
    return *this;
  }
  JobSpec& with_synthesis_options(synth::SynthesisOptions opts) {
    pipeline.synth = std::move(opts);
    return *this;
  }
  JobSpec& with_repair_traces(bool repair = true) {
    load.repair = repair;
    return *this;
  }
  JobSpec& with_iteration_callback(std::function<void(const synth::IterationReport&)> cb) {
    on_iteration = std::move(cb);
    return *this;
  }
  JobSpec& with_completion_callback(std::function<void(const JobResult&)> cb) {
    on_complete = std::move(cb);
    return *this;
  }
  JobSpec& with_kind(Kind k) {
    kind = k;
    return *this;
  }

  // Eager whole-spec validation: trace sources present, options trees valid,
  // DSL names known, segments-mode constraints honored. kInvalidArgument
  // naming the first problem; Engine::submit refuses specs that fail.
  util::Status validate() const;
};

// One point of a job's search-progress curve: the run's best distance after
// `iteration` refinement iterations and the wall-clock spent in the loop up
// to that point. Appended per completed iteration, so plotting Figure-3
// style convergence needs only the run report (ISSUE 5).
struct ConvergencePoint {
  int iteration = 0;  // 0-based refinement iteration index
  double best_distance = std::numeric_limits<double>::infinity();
  double wall_ms = 0.0;
};

// Everything one finished job produced. `status` is the job-level outcome:
// kOk for a completed search, the interrupt class for a preempted one
// (mirroring SynthesisResult::status), or the load/validation error that
// stopped the job before synthesis.
struct JobResult {
  std::string name;
  JobSpec::Kind kind = JobSpec::Kind::kPipeline;
  util::Status status;

  // kPipeline payload.
  core::PipelineResult pipeline;
  // kMister880 payload.
  synth::Mister880Result mister880;
  std::size_t segments_total = 0;

  // Per-job accounting, stable even when jobs share one EvalCache.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double seconds = 0.0;

  // Per-iteration convergence series (kPipeline jobs; empty for kMister880
  // and for jobs that failed before the loop). Rebuilt from the recorded
  // IterationReports at job completion, so checkpoint-restored iterations
  // are included too.
  std::vector<ConvergencePoint> convergence;

  bool ok() const { return status.is_ok(); }
  // Found-a-handler convenience across both kinds.
  bool found() const {
    return kind == JobSpec::Kind::kPipeline ? pipeline.found() : mister880.found();
  }
  // The CLI/run-script exit class for this job (0 ok, 5 timeout, ...).
  int exit_class() const { return util::exit_code(status.code()); }
};

}  // namespace abg::api
