#include "api/compat.hpp"

#include <utility>

#include "api/engine.hpp"

namespace abg::api {

namespace {

JobSpec one_shot_spec(const dsl::Dsl& dsl, const std::vector<trace::Segment>& segments) {
  JobSpec spec;
  spec.with_custom_dsl(dsl).with_segments(segments);
  return spec;
}

}  // namespace

synth::SynthesisResult synthesize(const dsl::Dsl& dsl,
                                  const std::vector<trace::Segment>& segments,
                                  const synth::SynthesisOptions& opts) {
  Engine engine({.threads = opts.threads, .max_concurrent_jobs = 1});
  JobSpec spec = one_shot_spec(dsl, segments);
  spec.pipeline.synth = opts;
  auto handle = engine.submit(std::move(spec));
  if (!handle.ok()) {
    synth::SynthesisResult r;
    r.status = handle.status();
    return r;
  }
  return handle->wait().pipeline.synthesis;
}

synth::Mister880Result run_mister880(const dsl::Dsl& dsl,
                                     const std::vector<trace::Segment>& segments,
                                     const synth::Mister880Options& opts) {
  Engine engine({.threads = 1, .max_concurrent_jobs = 1});
  JobSpec spec = one_shot_spec(dsl, segments);
  spec.with_kind(JobSpec::Kind::kMister880);
  spec.mister880 = opts;
  auto handle = engine.submit(std::move(spec));
  if (!handle.ok()) {
    // The baseline has no status channel; an invalid spec yields an empty
    // (not-found) result, matching the exhaustive search finding nothing.
    return synth::Mister880Result{};
  }
  return handle->wait().mister880;
}

}  // namespace abg::api
