// Nearest-reference CCA classifier — the stand-in for Gordon [51] (kernel
// CCAs) and CCAnalyzer [64] (UDP/student CCAs). Like both tools, it reduces
// classification to comparing the connection's observable CWND time series
// against reference traces of known CCAs, collected under the same
// controlled environments, and votes across connections. Its job in the
// pipeline (§3.3) is to hint which sub-DSL Abagnale should search.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "distance/distance.hpp"
#include "trace/trace.hpp"

namespace abg::classify {

struct ClassifierOptions {
  // Known CCAs to build references for (default: the 16 kernel CCAs).
  std::vector<std::string> known_ccas;
  // Environments references are collected under; must match the conditions
  // the classified traces were collected under for a fair comparison.
  std::vector<trace::Environment> environments;
  distance::Metric metric = distance::Metric::kDtw;
  distance::DistanceOptions dopts;
  // A connection whose nearest-reference distance exceeds this is Unknown.
  double unknown_threshold = 60.0;
  // Majority fraction of connections required for a definitive label.
  double majority = 0.5;
};

struct ConnectionMatch {
  std::string cca;       // nearest reference
  double distance = 0.0; // distance to it
};

struct Classification {
  // Final label: a CCA name, or "unknown".
  std::string label;
  // Closest known CCAs overall (ascending mean distance) — the
  // parenthesized hints of Table 3 that drive DSL selection.
  std::vector<std::string> closest;
  // Per-connection votes.
  std::vector<ConnectionMatch> per_connection;

  bool is_unknown() const { return label == "unknown"; }
};

class Classifier {
 public:
  explicit Classifier(ClassifierOptions opts = {});

  // Classify a set of connections (traces) from one server/CCA.
  Classification classify(const std::vector<trace::Trace>& connections) const;

  const ClassifierOptions& options() const { return opts_; }

 private:
  struct Reference {
    std::string cca;
    std::vector<std::vector<double>> series;  // CWND in packets, one per env
  };

  double distance_to_reference(const std::vector<double>& series, const Reference& ref) const;

  ClassifierOptions opts_;
  std::vector<Reference> references_;
};

// CWND-in-packets series of a trace (classifier feature).
std::vector<double> classifier_series(const trace::Trace& t);

}  // namespace abg::classify
