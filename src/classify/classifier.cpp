#include "classify/classifier.hpp"

#include <algorithm>
#include <limits>

#include "net/simulator.hpp"

namespace abg::classify {

std::vector<double> classifier_series(const trace::Trace& t) {
  std::vector<double> out;
  out.reserve(t.samples.size());
  for (const auto& s : t.samples) {
    const double mss = s.sig.mss > 0 ? s.sig.mss : 1.0;
    out.push_back(s.cwnd_after / mss);
  }
  return out;
}

Classifier::Classifier(ClassifierOptions opts) : opts_(std::move(opts)) {
  if (opts_.known_ccas.empty()) opts_.known_ccas = cca::kernel_cca_names();
  if (opts_.environments.empty()) opts_.environments = net::default_environments(3, 1001);
  for (const auto& name : opts_.known_ccas) {
    Reference ref;
    ref.cca = name;
    for (const auto& env : opts_.environments) {
      ref.series.push_back(classifier_series(net::run_connection(name, env)));
    }
    references_.push_back(std::move(ref));
  }
}

double Classifier::distance_to_reference(const std::vector<double>& series,
                                         const Reference& ref) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& r : ref.series) {
    best = std::min(best, distance::compute(opts_.metric, series, r, opts_.dopts));
  }
  return best;
}

Classification Classifier::classify(const std::vector<trace::Trace>& connections) const {
  Classification out;
  std::map<std::string, int> votes;
  std::map<std::string, double> mean_distance;

  for (const auto& conn : connections) {
    const auto series = classifier_series(conn);
    ConnectionMatch match;
    match.distance = std::numeric_limits<double>::infinity();
    for (const auto& ref : references_) {
      const double d = distance_to_reference(series, ref);
      mean_distance[ref.cca] += d;
      if (d < match.distance) {
        match.distance = d;
        match.cca = ref.cca;
      }
    }
    if (match.distance <= opts_.unknown_threshold) ++votes[match.cca];
    out.per_connection.push_back(std::move(match));
  }

  // Closest-CCA ranking by mean distance across connections.
  std::vector<std::pair<double, std::string>> ranked;
  for (auto& [name, total] : mean_distance) {
    ranked.emplace_back(total / static_cast<double>(connections.size()), name);
  }
  std::sort(ranked.begin(), ranked.end());
  for (const auto& [d, name] : ranked) out.closest.push_back(name);

  // Majority vote over confident connections.
  out.label = "unknown";
  for (const auto& [name, count] : votes) {
    if (static_cast<double>(count) >
        opts_.majority * static_cast<double>(connections.size())) {
      out.label = name;
    }
  }
  return out;
}

}  // namespace abg::classify
