// Minimal streaming JSON writer shared by the observability exporters (the
// run-report and the Chrome trace-event file). No external deps; comma
// placement is handled by the writer so exporters stay declarative.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace abg::obs {

// Escape a string for embedding inside JSON double quotes.
std::string json_escape(std::string_view s);

// Render a double the way JSON expects: finite values as shortest round-trip
// decimal, non-finite values as null (JSON has no Inf/NaN).
std::string json_number(double v);

class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  // Object key; must be followed by exactly one value/container.
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(bool v);

  // Splice a pre-serialized JSON value in verbatim (caller guarantees it is
  // well-formed). Used to attach pre-built "args" objects to trace events.
  void raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();

  std::string out_;
  // Whether the current container already holds an element (one flag per
  // nesting level).
  std::vector<bool> has_elem_;
  bool after_key_ = false;
};

}  // namespace abg::obs
