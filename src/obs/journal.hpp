// Search-forensics journal (ISSUE 6): one compact binary event per candidate
// lifecycle step — sketch emitted, candidate enumerated, cache-hit, fully
// evaluated, abandoned, selected — plus per-DTW-eval detail events (LB prune,
// row abandon, completed eval with cells spent). Each record carries full
// provenance: job, iteration, bucket, sketch hash, hole-assignment
// fingerprint, distance, DTW cells, and a nanosecond timestamp. Where the
// metrics registry answers "how many candidates were pruned", the journal
// answers "which ones, why, and how close they came".
//
// Hot-path contract:
//   - Journal off: every emission site is guarded by journal_enabled(), a
//     single relaxed atomic load. No TLS, no allocation, no branch beyond it.
//   - Journal on: the event is stamped and pushed into the calling thread's
//     private SPSC ring buffer (one relaxed/release pair, no locks). A
//     background drainer streams rings to the journal file; when a producer
//     outruns the drainer the record is dropped and counted
//     ("obs.journal_dropped" plus the per-session dropped total) — emission
//     never blocks.
//
// Provenance crosses threads the same way span context does: the refinement
// loop installs a JournalScope (job/bucket/iteration) inside each scoring
// task, so a pool worker that steals the task attributes events to the
// submitting job. No scope, no events — code that runs outside a journaled
// synthesis (the classifier, final validation) cannot pollute the funnel.
//
// File format (native endianness, record-major):
//   header : "ABGJRNL1" u32 version u32 record_size(=64)
//   records: JournalRecord[] written verbatim as they drain
//   strtab : u32 count, then per string u32 length + bytes (index = intern id)
//   trailer: "ABGJEND1" u64 record_count u64 dropped u64 strtab_offset
// The trailer is written by journal_stop(); a file without one was truncated
// mid-run and read_journal() rejects it.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace abg::obs {

enum class JournalKind : std::uint8_t {
  kSketch = 0,     // enumerator emitted a (deduped, canonical) sketch
  kEnumerated,     // a hole assignment was concretized into a candidate
  kCacheHit,       // the memo cache answered this candidate (terminal)
  kEvaluated,      // exact distance computed for this candidate (terminal)
  kAbandoned,      // candidate abandoned against the bucket bound (terminal)
  kSelected,       // bucket best of an iteration; kJournalFinal = run winner
  kLbPrune,        // one DTW eval pruned by the LB_Kim endpoint bound
  kRowAbandon,     // one DTW eval abandoned mid-DP (row minimum >= cutoff)
  kDtwEval,        // one completed DTW eval (cells = band-aware DP cells)
  kLbKeoghPrune,   // one DTW eval pruned by the LB_Keogh envelope bound
};
inline constexpr std::size_t kJournalKindCount = 10;

const char* journal_kind_name(JournalKind k);

// Record flags.
inline constexpr std::uint8_t kJournalFinal = 1;  // kSelected: the run winner

// Sentinel for "no segment": candidate- and sketch-level events are not tied
// to one segment of the working set.
inline constexpr std::uint32_t kJournalNoSegment = 0xffffffffu;

// One journal event. Trivially copyable; written to the file verbatim.
struct JournalRecord {
  std::uint64_t ts_ns = 0;      // steady-clock ns since journal_start()
  std::uint64_t candidate = 0;  // hole-assignment fingerprint (0 = none)
  std::uint64_t sketch = 0;     // canonical sketch hash (0 = none)
  std::uint64_t cells = 0;      // DTW cells spent (distance events, terminals)
  double distance = 0.0;        // meaning depends on kind (bound/exact/best)
  std::uint32_t job = 0;        // interned string id (0 = "")
  std::uint32_t bucket = 0;     // interned string id
  std::uint32_t iter = 0;       // refinement iteration
  std::uint32_t segment = kJournalNoSegment;  // index into the working set
  std::uint32_t detail = 0;     // interned string (selected handler text)
  std::uint8_t kind = 0;        // JournalKind
  std::uint8_t flags = 0;
  std::uint8_t kernel = 0;      // distance events: DTW kernel (distance::Simd)
  std::uint8_t pad = 0;
};
static_assert(sizeof(JournalRecord) == 64, "journal records are 64-byte");

struct JournalOptions {
  std::string path;                   // required: the journal file
  std::size_t ring_capacity = 8192;   // records per thread ring (512 KiB)
  std::uint32_t sample_every = 1;     // 1 = full; N = ~1/N of candidates
  int drain_interval_ms = 2;          // background drain period
};

namespace detail {
extern std::atomic<bool> g_journal_on;
}  // namespace detail

// The one relaxed load every emission site pays when journaling is off.
inline bool journal_enabled() {
  return detail::g_journal_on.load(std::memory_order_relaxed);
}

// Arm the journal: open the file, write the header, start the drainer.
// False (with *err) on I/O failure or if a journal is already running.
bool journal_start(const JournalOptions& opts, std::string* err = nullptr);

struct JournalStats {
  std::uint64_t recorded = 0;  // events accepted into rings this session
  std::uint64_t dropped = 0;   // events rejected by full rings this session
  std::uint64_t by_kind[kJournalKindCount] = {};
};

// Disarm, final-drain every ring, append the string table and trailer, and
// close the file. Call only when producers are quiescent (synthesize() has
// returned / the engine is idle): an event emitted concurrently with stop may
// be left behind in a ring and discarded by the next journal_start().
JournalStats journal_stop();

// Intern a string into the journal's string table; returns its stable id
// (0 for the empty string). Cheap but mutex-taking — callers cache the id.
std::uint32_t journal_intern(const std::string& s);

// Installs {job, bucket, iter} as the calling thread's journal provenance;
// restores the previous provenance (and candidate state) on destruction.
// Emission requires an active scope, so a run that opted out of journaling
// (SynthesisOptions::journal = false) simply never installs one.
class JournalScope {
 public:
  JournalScope(std::uint32_t job, std::uint32_t bucket, std::uint32_t iter);
  ~JournalScope();

  JournalScope(const JournalScope&) = delete;
  JournalScope& operator=(const JournalScope&) = delete;

 private:
  std::uint64_t prev_[6];  // opaque snapshot of the thread's journal TLS
};

// True when the calling thread is inside a JournalScope (journal armed).
bool journal_in_scope();

// --- Candidate lifecycle (refinement's score_sketch) ------------------------

// Begin a candidate: records which sketch/assignment the distance layer's
// events should attribute to, decides sampling, and zeroes the per-candidate
// cell tally. Pair with journal_end_candidate().
void journal_begin_candidate(std::uint64_t sketch_hash, std::uint64_t fingerprint);
void journal_end_candidate();

// True when inside a begun, sampled candidate in an active scope — the guard
// the distance layer and eval cache use.
bool journal_in_candidate();

// Current candidate's sampling decision (false outside a candidate).
bool journal_candidate_sampled();

// The working-set segment currently being evaluated (total_distance's loop).
void journal_set_segment(std::uint32_t index);

// Read and clear the per-candidate DTW cell tally (accumulated by
// journal_record_distance), for the candidate's terminal event.
std::uint64_t journal_take_cells();

// Stable fingerprint of a hole assignment under a sketch: identical across
// runs (and across fast-path on/off) whenever the enumeration order is.
std::uint64_t journal_fingerprint(std::uint64_t sketch_hash,
                                  const std::vector<double>& assignment);

// --- Emission ---------------------------------------------------------------

// Candidate-lifecycle event (kEnumerated/kCacheHit/kEvaluated/kAbandoned):
// sketch/candidate/provenance come from the thread's state. No-op unless
// journal_in_candidate().
void journal_record_candidate(JournalKind kind, double distance, std::uint64_t cells);

// Distance-layer detail event (kLbPrune/kLbKeoghPrune/kRowAbandon/kDtwEval):
// additionally charges `cells` to the candidate tally, stamps the current
// segment, and records which DTW kernel produced it (`kernel` is the numeric
// value of distance::Simd for the resolved kernel; 0 = scalar).
// No-op unless journal_in_candidate().
void journal_record_distance(JournalKind kind, double distance, std::uint64_t cells,
                             std::uint8_t kernel = 0);

// Sketch emitted by the enumerator. No-op unless journal_in_scope().
void journal_record_sketch(std::uint64_t sketch_hash);

// Selection event: a bucket best (final = false) or the run winner
// (final = true). `detail` is an interned string id (the handler text).
// No-op unless journal_in_scope().
void journal_record_selected(std::uint64_t sketch_hash, std::uint64_t fingerprint,
                             double distance, std::uint32_t detail, bool final_winner);

// --- Live summary and export ------------------------------------------------

struct JournalSummary {
  bool enabled = false;
  std::string path;
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t by_kind[kJournalKindCount] = {};
};

JournalSummary journal_summary();

// JSON rendering of journal_summary() — the StatusServer /journal route.
std::string journal_summary_json();

// When both tracing and journaling are armed, append Perfetto counter-track
// events ("search funnel" and "dtw cells") carrying the cumulative funnel on
// the calling thread's current lane. The refinement loop calls this once per
// iteration. No-op otherwise.
void journal_emit_trace_counters();

// --- Reader (abg_inspect, tests) --------------------------------------------

struct JournalFile {
  std::vector<JournalRecord> records;
  std::vector<std::string> strings;  // index = intern id; strings[0] == ""
  std::uint64_t dropped = 0;

  const std::string& str(std::uint32_t id) const {
    static const std::string empty;
    return id < strings.size() ? strings[id] : empty;
  }
};

// Parse a journal written by journal_start()/journal_stop(). False (with
// *err) on I/O failure, a bad header, or a missing/corrupt trailer.
bool read_journal(const std::string& path, JournalFile* out, std::string* err);

// Demultiplex a combined batch journal into one file per job, named
// `<path>.<job>` (job names sanitized to [A-Za-z0-9._-]). Records with no
// job attribution are skipped. Returns the paths written; on I/O failure
// stops early and reports via *err.
std::vector<std::string> split_journal_by_job(const std::string& path, std::string* err);

}  // namespace abg::obs
