// Structured JSON run-report: a snapshot of every registered metric, written
// by the CLI (--metrics-out) and next to each bench result so BENCH_*.json
// trajectories carry counter context.
//
// Shape:
//   {
//     "counters":   {"synth.handlers_scored": 1234, ...},
//     "gauges":     {"sim.queue_depth_pkts": {"last": 3, "max": 41}, ...},
//     "histograms": {"synth.iter_us": {"bounds": [...], "counts": [...],
//                                      "count": 4, "sum": ..., "min": ...,
//                                      "max": ...}, ...}
//   }
//
// When any report metadata has been set (set_report_meta), the snapshot also
// carries a "meta" object of string facts about the run environment — e.g.
// {"meta": {"simd_kernel": "avx2"}} — so downstream comparators (abg_report)
// can refuse apples-to-oranges diffs such as cross-kernel perf gates.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace abg::obs {

// Serialize the current registry snapshot.
std::string metrics_json();

// Attach a string fact to every subsequent metrics_json() snapshot. Later
// calls with the same key overwrite. Thread-safe; cheap enough for guarded
// hot-path use but callers should still only set on change.
void set_report_meta(const std::string& key, const std::string& value);

// Current metadata, sorted by key (tests, exporters).
std::vector<std::pair<std::string, std::string>> report_meta();

// Write metrics_json() to `path`. False on I/O failure.
bool write_metrics_json(const std::string& path);

// Register an atexit hook that writes the run report to `path` when the
// process exits normally. One path per process; later calls replace it.
// Used by the bench harness so every bench emits its counters without each
// binary growing exporter plumbing.
void write_metrics_json_at_exit(const std::string& path);

}  // namespace abg::obs
