#include "obs/prometheus.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>

#include "obs/registry.hpp"

namespace abg::obs {

namespace {

// Prometheus metric/label names allow [a-zA-Z0-9_:]; everything else (our
// dotted names in particular) becomes '_'. A leading digit gets one too.
std::string mangle(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

// Label values escape `\`, `"`, and newline per the exposition format.
std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string fmt_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// `{k1="v1",k2="v2"}` or "" when unlabeled; `extra` appends one more label
// (the histogram `le`).
std::string label_block(const Labels& labels, const std::string& extra_key = {},
                        const std::string& extra_val = {}) {
  if (labels.empty() && extra_key.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += mangle(k) + "=\"" + escape_label_value(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + escape_label_value(extra_val) + "\"";
  }
  out += '}';
  return out;
}

// HELP text escapes `\` and newline (exposition format 0.0.4; `"` is only
// special inside label values, not in help text).
std::string escape_help(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// Family header: an optional `# HELP` line (when the registry name was
// describe()d) followed by the `# TYPE` line, once per family. `help_name` is
// the registry name to look the help text up under — empty for synthesized
// families (the gauge "_max" mirrors) that have no registration of their own.
void family_header(std::string& out, const Snapshot& s, const std::string& family,
                   const std::string& help_name, const char* type, std::string& last_family) {
  if (family == last_family) return;
  last_family = family;
  if (!help_name.empty()) {
    if (const auto it = s.help.find(help_name); it != s.help.end()) {
      out += "# HELP " + family + " " + escape_help(it->second) + "\n";
    }
  }
  out += "# TYPE " + family + " " + type + "\n";
}

// Post-mangle collision guard. Distinct registry names can mangle to one
// family ("a.b" and "a_b" both become "abg_a_b"), and the synthesized gauge
// high-watermark family "abg_<name>_max" can collide with an explicitly
// registered "<name>_max"; either would emit duplicate # TYPE lines and
// duplicate series for one family, which strict parsers reject. Each family
// name is reserved by the first source that renders it; a later source whose
// mangled name collides gets a deterministic "_dupN" suffix instead.
struct FamilyTable {
  std::map<std::string, std::string> owner;  // family name -> source key

  std::string resolve(const std::string& base, const std::string& source) {
    std::string family = base;
    for (int n = 2;; ++n) {
      const auto [it, inserted] = owner.emplace(family, source);
      if (inserted || it->second == source) return family;
      family = base + "_dup" + std::to_string(n);
    }
  }
};

}  // namespace

std::string prometheus_text(const Snapshot& s) {
  std::string out;
  std::string last_family;
  FamilyTable families;

  for (const auto& c : s.counters) {
    const std::string family = families.resolve("abg_" + mangle(c.name), "counter:" + c.name);
    family_header(out, s, family, c.name, "counter", last_family);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, c.value);
    out += family + label_block(c.labels) + " " + buf + "\n";
  }

  last_family.clear();
  for (const auto& g : s.gauges) {
    const std::string family = families.resolve("abg_" + mangle(g.name), "gauge:" + g.name);
    family_header(out, s, family, g.name, "gauge", last_family);
    out += family + label_block(g.labels) + " " + fmt_double(g.last) + "\n";
  }
  // The high-watermark series get their own families so the TYPE lines group.
  last_family.clear();
  for (const auto& g : s.gauges) {
    const std::string family =
        families.resolve("abg_" + mangle(g.name) + "_max", "gauge_max:" + g.name);
    family_header(out, s, family, {}, "gauge", last_family);
    out += family + label_block(g.labels) + " " + fmt_double(g.max) + "\n";
  }

  last_family.clear();
  for (const auto& h : s.histograms) {
    const std::string family = families.resolve("abg_" + mangle(h.name), "hist:" + h.name);
    family_header(out, s, family, h.name, "histogram", last_family);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      char buf[32];
      std::snprintf(buf, sizeof buf, "%" PRIu64, cumulative);
      out += family + "_bucket" + label_block(h.labels, "le", fmt_double(h.bounds[i])) + " " +
             buf + "\n";
    }
    {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%" PRIu64, h.count);
      out += family + "_bucket" + label_block(h.labels, "le", "+Inf") + " " + buf + "\n";
      out += family + "_sum" + label_block(h.labels) + " " + fmt_double(h.sum) + "\n";
      out += family + "_count" + label_block(h.labels) + " " + buf + "\n";
    }
  }
  return out;
}

std::string prometheus_text() { return prometheus_text(snapshot()); }

bool write_prometheus_text(const std::string& path) {
  const std::string body = prometheus_text();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = n == body.size() && std::fclose(f) == 0;
  if (n != body.size()) std::fclose(f);
  return ok;
}

}  // namespace abg::obs
