#include "obs/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "obs/json.hpp"
#include "obs/registry.hpp"

namespace abg::obs {

namespace {
// Leaked on purpose (like the metric Registry): set_report_meta is first
// called lazily from hot paths, i.e. after main() may already have queued
// write_metrics_json_at_exit, so a destructible static here would be torn
// down before that atexit writer reads it.
std::mutex& meta_mu() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}
std::map<std::string, std::string>& meta_map() {
  static auto* m = new std::map<std::string, std::string>;
  return *m;
}
}  // namespace

void set_report_meta(const std::string& key, const std::string& value) {
  std::lock_guard lk(meta_mu());
  meta_map()[key] = value;
}

std::vector<std::pair<std::string, std::string>> report_meta() {
  std::lock_guard lk(meta_mu());
  return {meta_map().begin(), meta_map().end()};
}

std::string metrics_json() {
  const Snapshot s = snapshot();
  const auto meta = report_meta();
  JsonWriter w;
  w.begin_object();

  if (!meta.empty()) {
    w.key("meta");
    w.begin_object();
    for (const auto& [k, v] : meta) {
      w.key(k);
      w.value(v);
    }
    w.end_object();
  }

  w.key("counters");
  w.begin_object();
  for (const auto& c : s.counters) {
    w.key(c.key());
    w.value(c.value);
  }
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const auto& g : s.gauges) {
    w.key(g.key());
    w.begin_object();
    w.key("last");
    w.value(g.last);
    w.key("max");
    w.value(g.max);
    w.end_object();
  }
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& h : s.histograms) {
    w.key(h.key());
    w.begin_object();
    w.key("bounds");
    w.begin_array();
    for (double b : h.bounds) w.value(b);
    w.end_array();
    w.key("counts");
    w.begin_array();
    for (std::uint64_t c : h.counts) w.value(c);
    w.end_array();
    w.key("count");
    w.value(h.count);
    w.key("sum");
    w.value(h.sum);
    w.key("min");
    w.value(h.min);
    w.key("max");
    w.value(h.max);
    w.end_object();
  }
  w.end_object();

  w.end_object();
  return w.take();
}

bool write_metrics_json(const std::string& path) {
  const std::string body = metrics_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = n == body.size() && std::fclose(f) == 0;
  if (n != body.size()) std::fclose(f);
  return ok;
}

namespace {
std::mutex g_exit_mu;
std::string g_exit_path;  // guarded by g_exit_mu
}  // namespace

void write_metrics_json_at_exit(const std::string& path) {
  static std::once_flag once;
  {
    std::lock_guard lk(g_exit_mu);
    g_exit_path = path;
  }
  std::call_once(once, [] {
    std::atexit([] {
      std::string path;
      {
        std::lock_guard lk(g_exit_mu);
        path = g_exit_path;
      }
      if (!path.empty()) write_metrics_json(path);
    });
  });
}

}  // namespace abg::obs
