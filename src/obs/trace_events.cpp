#include "obs/trace_events.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <vector>

#include "obs/json.hpp"

namespace abg::obs {

namespace {

struct Event {
  std::string name;
  std::string args_json;
  const char* cat;
  const char* ph;  // "X" (complete), "i" (instant) or "C" (counter)
  double ts_us;
  double dur_us;
  std::uint32_t pid;  // lane: 1 = process lane, 2+ = registered lanes
  std::uint32_t tid;
};

struct Recorder {
  std::atomic<bool> enabled{false};
  std::mutex mu;
  std::vector<Event> events;
  std::map<std::uint32_t, std::string> lane_names;  // pid -> name
  // Monotonic, never reset: a lane id handed out before clear_trace_events()
  // (e.g. held by a job mid-run) must never alias a lane registered after the
  // clear, or its events would be attributed to the wrong lane.
  std::uint32_t next_lane_pid = 2;  // pid 1 is the process lane
  std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  std::atomic<std::uint32_t> next_tid{1};
};

Recorder& recorder() {
  static Recorder* r = new Recorder;  // leaked: outlive static destructors
  return *r;
}

// Small dense thread ids (the viewer lays tracks out per tid; raw pthread ids
// would scatter them).
std::uint32_t this_tid() {
  thread_local std::uint32_t tid =
      recorder().next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

// Lane 0 is shorthand for the default process lane (pid 1).
std::uint32_t lane_pid(std::uint32_t lane) { return lane == 0 ? 1 : lane; }

void append(Event e) {
  auto& r = recorder();
  std::lock_guard lk(r.mu);
  r.events.push_back(std::move(e));
}

void write_metadata_event(JsonWriter& w, std::uint32_t pid, const std::string& name) {
  w.begin_object();
  w.key("name");
  w.value("process_name");
  w.key("ph");
  w.value("M");
  w.key("pid");
  w.value(static_cast<std::uint64_t>(pid));
  w.key("args");
  w.begin_object();
  w.key("name");
  w.value(name);
  w.end_object();
  w.end_object();
}

}  // namespace

void set_tracing_enabled(bool enabled) {
  recorder().enabled.store(enabled, std::memory_order_relaxed);
}

bool tracing_enabled() { return recorder().enabled.load(std::memory_order_relaxed); }

double trace_now_us() {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   recorder().epoch)
      .count();
}

std::uint32_t register_lane(const std::string& name) {
  auto& r = recorder();
  std::lock_guard lk(r.mu);
  const std::uint32_t pid = r.next_lane_pid++;
  r.lane_names[pid] = name;
  return pid;
}

void trace_complete_event(std::string name, const char* cat, double ts_us, double dur_us,
                          std::string args_json) {
  trace_complete_event_on(current_context().lane, std::move(name), cat, ts_us, dur_us,
                          std::move(args_json));
}

void trace_complete_event_on(std::uint32_t lane, std::string name, const char* cat,
                             double ts_us, double dur_us, std::string args_json) {
  append(Event{std::move(name), std::move(args_json), cat, "X", ts_us, dur_us,
               lane_pid(lane), this_tid()});
}

void trace_instant_event(std::string name, const char* cat, std::string args_json) {
  if (!tracing_enabled()) return;
  append(Event{std::move(name), std::move(args_json), cat, "i", trace_now_us(), 0.0,
               lane_pid(current_context().lane), this_tid()});
}

void trace_counter_event(std::string name, const char* cat, std::string args_json) {
  if (!tracing_enabled()) return;
  append(Event{std::move(name), std::move(args_json), cat, "C", trace_now_us(), 0.0,
               lane_pid(current_context().lane), this_tid()});
}

void clear_trace_events() {
  auto& r = recorder();
  std::lock_guard lk(r.mu);
  r.events.clear();
  r.lane_names.clear();
}

std::size_t trace_event_count() {
  auto& r = recorder();
  std::lock_guard lk(r.mu);
  return r.events.size();
}

std::string trace_events_json() {
  auto& r = recorder();
  std::lock_guard lk(r.mu);
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  // Metadata first: name the process lane and every registered job lane so
  // Perfetto shows labeled per-job tracks instead of bare pids.
  if (!r.events.empty() || !r.lane_names.empty()) {
    write_metadata_event(w, 1, "abagnale");
  }
  for (const auto& [pid, name] : r.lane_names) {
    write_metadata_event(w, pid, name);
  }
  for (const auto& e : r.events) {
    w.begin_object();
    w.key("name");
    w.value(e.name);
    w.key("cat");
    w.value(e.cat);
    w.key("ph");
    w.value(e.ph);
    w.key("ts");
    w.value(e.ts_us);
    if (e.ph[0] == 'X') {
      w.key("dur");
      w.value(e.dur_us);
    } else if (e.ph[0] == 'i') {
      w.key("s");  // instant-event scope: thread
      w.value("t");
    }
    w.key("pid");
    w.value(static_cast<std::uint64_t>(e.pid));
    w.key("tid");
    w.value(static_cast<std::uint64_t>(e.tid));
    if (!e.args_json.empty()) {
      w.key("args");
      w.raw(e.args_json);
    }
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit");
  w.value("ms");
  w.end_object();
  return w.take();
}

bool write_trace_json(const std::string& path) {
  const std::string body = trace_events_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = n == body.size() && std::fclose(f) == 0;
  if (n != body.size()) std::fclose(f);
  return ok;
}

}  // namespace abg::obs
