#include "obs/trace_events.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

#include "obs/json.hpp"

namespace abg::obs {

namespace {

struct Event {
  std::string name;
  std::string args_json;
  const char* cat;
  const char* ph;  // "X" (complete) or "i" (instant)
  double ts_us;
  double dur_us;
  std::uint32_t tid;
};

struct Recorder {
  std::atomic<bool> enabled{false};
  std::mutex mu;
  std::vector<Event> events;
  std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  std::atomic<std::uint32_t> next_tid{1};
};

Recorder& recorder() {
  static Recorder* r = new Recorder;  // leaked: outlive static destructors
  return *r;
}

// Small dense thread ids (the viewer lays tracks out per tid; raw pthread ids
// would scatter them).
std::uint32_t this_tid() {
  thread_local std::uint32_t tid =
      recorder().next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void append(Event e) {
  auto& r = recorder();
  std::lock_guard lk(r.mu);
  r.events.push_back(std::move(e));
}

}  // namespace

void set_tracing_enabled(bool enabled) {
  recorder().enabled.store(enabled, std::memory_order_relaxed);
}

bool tracing_enabled() { return recorder().enabled.load(std::memory_order_relaxed); }

double trace_now_us() {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   recorder().epoch)
      .count();
}

void trace_complete_event(std::string name, const char* cat, double ts_us, double dur_us,
                          std::string args_json) {
  append(Event{std::move(name), std::move(args_json), cat, "X", ts_us, dur_us, this_tid()});
}

void trace_instant_event(std::string name, const char* cat, std::string args_json) {
  if (!tracing_enabled()) return;
  append(Event{std::move(name), std::move(args_json), cat, "i", trace_now_us(), 0.0,
               this_tid()});
}

void clear_trace_events() {
  auto& r = recorder();
  std::lock_guard lk(r.mu);
  r.events.clear();
}

std::size_t trace_event_count() {
  auto& r = recorder();
  std::lock_guard lk(r.mu);
  return r.events.size();
}

std::string trace_events_json() {
  auto& r = recorder();
  std::lock_guard lk(r.mu);
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const auto& e : r.events) {
    w.begin_object();
    w.key("name");
    w.value(e.name);
    w.key("cat");
    w.value(e.cat);
    w.key("ph");
    w.value(e.ph);
    w.key("ts");
    w.value(e.ts_us);
    if (e.ph[0] == 'X') {
      w.key("dur");
      w.value(e.dur_us);
    } else {
      w.key("s");  // instant-event scope: thread
      w.value("t");
    }
    w.key("pid");
    w.value(std::uint64_t{1});
    w.key("tid");
    w.value(static_cast<std::uint64_t>(e.tid));
    if (!e.args_json.empty()) {
      w.key("args");
      w.raw(e.args_json);
    }
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit");
  w.value("ms");
  w.end_object();
  return w.take();
}

bool write_trace_json(const std::string& path) {
  const std::string body = trace_events_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = n == body.size() && std::fclose(f) == 0;
  if (n != body.size()) std::fclose(f);
  return ok;
}

TraceSpan::TraceSpan(std::string name, const char* cat)
    : TraceSpan(std::move(name), cat, std::string{}) {}

TraceSpan::TraceSpan(std::string name, const char* cat, std::string args_json)
    : name_(std::move(name)),
      args_json_(std::move(args_json)),
      cat_(cat),
      start_us_(0.0),
      armed_(tracing_enabled()) {
  if (armed_) start_us_ = trace_now_us();
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  trace_complete_event(std::move(name_), cat_, start_us_, trace_now_us() - start_us_,
                       std::move(args_json_));
}

}  // namespace abg::obs
