// Process-wide metrics registry (§6's accounting as a first-class layer):
// counters, gauges, and fixed-bucket histograms, cheap enough for per-ACK and
// per-DTW-eval increments on the synthesis hot paths.
//
// Hot-path idiom — resolve the handle once, then touch only a relaxed atomic:
//
//   static auto& c = obs::counter("distance.dtw_evals");
//   c.add();
//
// Registration (name lookup) takes a mutex; increments never do. Handles are
// stable for the life of the process, so caching them in function-local
// statics is safe from any thread.
//
// Labeled families: every metric kind can also be registered with a small
// label set ({job=..., bucket=..., cca=...}), so a batch run attributes work
// to individual jobs instead of one global soup. A labeled handle is the same
// object type with the same increment cost — labels only participate in
// registration and export. Unlabeled lookups are unchanged (empty label set).
//
//   static auto& c = obs::counter("synth.iterations", {{"job", spec.name}});
//
// Cardinality is bounded: at most kMaxLabelsPerSeries labels per series
// (extras are dropped at registration), and at most kMaxSeriesPerFamily
// distinct label sets per metric name — past that, new label sets collapse
// into a single {overflow="true"} series and obs.series_overflow counts the
// collisions, so an unbounded job stream can't OOM the registry.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace abg::obs {

// One label: key -> value. A series is identified by (name, sorted labels).
using Label = std::pair<std::string, std::string>;
using Labels = std::vector<Label>;

// Cardinality limits (see the header comment).
inline constexpr std::size_t kMaxLabelsPerSeries = 4;
inline constexpr std::size_t kMaxSeriesPerFamily = 256;

// Canonical text identity of a series: `name` when unlabeled, otherwise
// `name{k1="v1",k2="v2"}` with keys in sorted order and values escaped.
// Used as the JSON-report key and by the tests.
std::string series_key(const std::string& name, const Labels& labels);

// Monotonic event count. Relaxed atomic increments: safe from any thread,
// imposes no ordering, never blocks.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  // Own cache line so unrelated counters never false-share.
  alignas(64) std::atomic<std::uint64_t> v_{0};
};

// Last-written value plus a high-watermark (e.g. bottleneck queue depth:
// `last` is the depth at the final sample, `max` the worst seen). The
// high-watermark is maintained with a CAS loop so concurrent writers can
// never lose the true max to a plain-store race.
class Gauge {
 public:
  void set(double v);
  double last() const { return last_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  void reset();

 private:
  alignas(64) std::atomic<double> last_{0.0};
  std::atomic<double> max_{0.0};
};

// Fixed-boundary histogram. `bounds` are inclusive upper edges of the first
// `bounds.size()` buckets; one overflow bucket catches everything above the
// last edge. Observation is a branchless-ish linear scan over <= ~32 edges
// plus one relaxed fetch_add — fine for per-task and per-iteration rates,
// and still cheap for per-eval rates.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  // counts()[i] pairs with bounds()[i]; the final element is the overflow
  // bucket.
  std::vector<std::uint64_t> counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  alignas(64) std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

// Exponential microsecond edges (1us .. 60s), the default for phase timers.
std::span<const double> default_time_bounds_us();

// Registry lookups: find-or-create by (name, labels). A histogram's bounds
// are fixed by the first registration of its family; later lookups with
// different bounds get the existing instance.
Counter& counter(const std::string& name);
Counter& counter(const std::string& name, const Labels& labels);
Gauge& gauge(const std::string& name);
Gauge& gauge(const std::string& name, const Labels& labels);
Histogram& histogram(const std::string& name,
                     std::span<const double> bounds = default_time_bounds_us());
Histogram& histogram(const std::string& name, std::span<const double> bounds,
                     const Labels& labels);

// Attach an optional help string to a metric family name (all series of the
// family share it). Exporters surface it — the Prometheus endpoint emits a
// `# HELP` line per exposition format 0.0.4. First registration wins;
// describing a family that never gets a series is harmless.
void describe(const std::string& name, const std::string& help);

// Point-in-time copy of every registered metric, for the exporters and tests.
// Entries are ordered name-major (all series of a family are contiguous),
// labels sorted by key within a series.
struct Snapshot {
  struct CounterData {
    std::string name;
    Labels labels;
    std::uint64_t value = 0;
    std::string key() const { return series_key(name, labels); }
  };
  struct GaugeData {
    std::string name;
    Labels labels;
    double last = 0.0;
    double max = 0.0;
    std::string key() const { return series_key(name, labels); }
  };
  struct HistogramData {
    std::string name;
    Labels labels;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::string key() const { return series_key(name, labels); }
  };
  std::vector<CounterData> counters;
  std::vector<GaugeData> gauges;
  std::vector<HistogramData> histograms;
  // Family name -> help string, for every family that was describe()d.
  std::map<std::string, std::string> help;

  // Unlabeled counter value by exact name; 0 if absent.
  std::uint64_t counter_value(const std::string& name) const;
  // Labeled counter value; labels are matched after normalization.
  std::uint64_t counter_value(const std::string& name, const Labels& labels) const;
};

Snapshot snapshot();

// Zero every registered metric (handles stay valid). For tests and for the
// CLI, which resets between subcommand setup and the measured run.
void reset_all();

}  // namespace abg::obs
