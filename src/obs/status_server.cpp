#include "obs/status_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "obs/prometheus.hpp"

namespace abg::obs {

namespace {

struct Route {
  std::string content_type;
  std::function<std::string()> body_fn;
};

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // client went away; nothing to do
    off += static_cast<std::size_t>(n);
  }
}

std::string make_response(int code, const char* reason, const std::string& content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

// Read until the end of the request headers (we ignore any body; these are
// GETs). Bounded: 8 KiB or 2 s total from accept, whichever comes first. The
// overall deadline matters because connections are served serially on one
// thread: a client that trickles bytes must not hold up other pollers (or
// stop()) for longer than the single 2 s budget.
bool read_request_head(int fd, std::string& head) {
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::seconds(2);
  char buf[1024];
  while (head.size() < 8192) {
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - clock::now());
    if (left.count() <= 0) return false;
    pollfd p{fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, static_cast<int>(left.count()));
    if (pr <= 0) return false;
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return false;
    head.append(buf, static_cast<std::size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos) return true;
  }
  return false;
}

}  // namespace

struct StatusServer::Impl {
  int listen_fd = -1;
  int wake_pipe[2] = {-1, -1};  // self-pipe: stop() writes, server thread polls
  std::thread thread;
  std::map<std::string, Route> routes;

  void serve_connection(int fd) {
    std::string head;
    if (!read_request_head(fd, head)) {
      ::close(fd);
      return;
    }
    // Request line: METHOD SP PATH SP VERSION. Strip any query string.
    const std::size_t sp1 = head.find(' ');
    const std::size_t sp2 = sp1 == std::string::npos ? sp1 : head.find(' ', sp1 + 1);
    if (sp2 == std::string::npos) {
      ::close(fd);
      return;
    }
    const std::string method = head.substr(0, sp1);
    std::string path = head.substr(sp1 + 1, sp2 - sp1 - 1);
    if (const auto q = path.find('?'); q != std::string::npos) path.resize(q);

    std::string response;
    if (method != "GET") {
      response = make_response(405, "Method Not Allowed", "text/plain", "GET only\n");
    } else if (const auto it = routes.find(path); it != routes.end()) {
      response = make_response(200, "OK", it->second.content_type, it->second.body_fn());
    } else {
      response = make_response(404, "Not Found", "text/plain", "not found\n");
    }
    write_all(fd, response);
    ::close(fd);
  }

  void run() {
    for (;;) {
      pollfd fds[2] = {{listen_fd, POLLIN, 0}, {wake_pipe[0], POLLIN, 0}};
      const int pr = ::poll(fds, 2, -1);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return;
      }
      if ((fds[1].revents & POLLIN) != 0) return;  // stop() signalled
      if ((fds[0].revents & POLLIN) == 0) continue;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      serve_connection(fd);
    }
  }
};

StatusServer::StatusServer() : impl_(new Impl) {
  impl_->routes["/healthz"] = Route{"text/plain", [] { return std::string("ok\n"); }};
  impl_->routes["/metrics"] = Route{"text/plain; version=0.0.4",
                                    [] { return prometheus_text(); }};
}

StatusServer::~StatusServer() {
  stop();
  delete impl_;
}

void StatusServer::handle(std::string path, std::string content_type,
                          std::function<std::string()> body_fn) {
  impl_->routes[std::move(path)] = Route{std::move(content_type), std::move(body_fn)};
}

bool StatusServer::start(std::uint16_t port, std::string* err) {
  auto fail = [&](const std::string& what) {
    if (err != nullptr) *err = what + ": " + std::strerror(errno);
    if (impl_->listen_fd >= 0) {
      ::close(impl_->listen_fd);
      impl_->listen_fd = -1;
    }
    for (int& fd : impl_->wake_pipe) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
    return false;
  };
  if (running_) {
    if (err != nullptr) *err = "already running";
    return false;
  }

  impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (impl_->listen_fd < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local-only by design
  addr.sin_port = htons(port);
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return fail("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(impl_->listen_fd, 16) != 0) return fail("listen");

  socklen_t len = sizeof addr;
  if (::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  if (::pipe(impl_->wake_pipe) != 0) return fail("pipe");

  impl_->thread = std::thread([this] { impl_->run(); });
  running_ = true;
  return true;
}

void StatusServer::stop() {
  if (!running_) return;
  const char b = 0;
  [[maybe_unused]] const ssize_t n = ::write(impl_->wake_pipe[1], &b, 1);
  impl_->thread.join();
  ::close(impl_->listen_fd);
  impl_->listen_fd = -1;
  for (int& fd : impl_->wake_pipe) {
    ::close(fd);
    fd = -1;
  }
  running_ = false;
}

}  // namespace abg::obs
