#include "obs/status_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/prometheus.hpp"

namespace abg::obs {

namespace {

struct Route {
  std::string content_type;
  std::function<std::string()> body_fn;
};

struct RichRoute {
  std::string method;
  std::string prefix;
  std::function<HttpResponse(const HttpRequest&)> handler;
};

const char* reason_phrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Response";
  }
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // client went away; nothing to do
    off += static_cast<std::size_t>(n);
  }
}

std::string render_response(const HttpResponse& r) {
  std::string out =
      "HTTP/1.1 " + std::to_string(r.code) + " " + reason_phrase(r.code) + "\r\n";
  out += "Content-Type: " + r.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
  for (const auto& [name, value] : r.headers) out += name + ": " + value + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += r.body;
  return out;
}

// Read until `want` bytes are buffered past the current size, within the
// per-phase deadline. Connections are served serially on one thread, so a
// client that trickles bytes must not hold up other pollers (or stop()).
bool read_until(int fd, std::string& buf, std::size_t cap,
                const std::function<bool(const std::string&)>& done,
                std::chrono::steady_clock::time_point deadline) {
  using clock = std::chrono::steady_clock;
  char tmp[2048];
  while (!done(buf)) {
    if (buf.size() >= cap) return false;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - clock::now());
    if (left.count() <= 0) return false;
    pollfd p{fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, static_cast<int>(left.count()));
    if (pr <= 0) return false;
    const ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
    if (n <= 0) return false;
    buf.append(tmp, static_cast<std::size_t>(n));
  }
  return true;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

// Parse the header block (request line + headers) out of `head`, which ends
// at the first \r\n\r\n. False on malformed requests.
bool parse_head(const std::string& head, HttpRequest* req) {
  const std::size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) return false;
  const std::string line = head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  req->method = line.substr(0, sp1);
  req->path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (const auto q = req->path.find('?'); q != std::string::npos) {
    req->query = req->path.substr(q + 1);
    req->path.resize(q);
  }
  std::size_t pos = line_end + 2;
  while (pos < head.size()) {
    const std::size_t end = head.find("\r\n", pos);
    if (end == std::string::npos || end == pos) break;  // blank line = done
    const std::string hline = head.substr(pos, end - pos);
    const std::size_t colon = hline.find(':');
    if (colon != std::string::npos) {
      std::string value = hline.substr(colon + 1);
      const std::size_t first = value.find_first_not_of(" \t");
      value = first == std::string::npos ? std::string() : value.substr(first);
      req->headers[lower(hline.substr(0, colon))] = value;
    }
    pos = end + 2;
  }
  return true;
}

bool prefix_matches(const std::string& prefix, const std::string& path) {
  if (path == prefix) return true;
  return path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
         path[prefix.size()] == '/';
}

}  // namespace

const std::string& HttpRequest::header(const std::string& lowercase_name) const {
  static const std::string kEmpty;
  const auto it = headers.find(lowercase_name);
  return it == headers.end() ? kEmpty : it->second;
}

std::string HttpRequest::query_param(const std::string& key) const {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp) {
      if (query.compare(pos, eq - pos, key) == 0) {
        return query.substr(eq + 1, amp - eq - 1);
      }
    } else if (query.compare(pos, amp - pos, key) == 0) {
      return std::string();  // bare flag, present but valueless
    }
    pos = amp + 1;
  }
  return std::string();
}

HttpResponse HttpResponse::text(int code, std::string body) {
  return HttpResponse{code, "text/plain", std::move(body), {}};
}

HttpResponse HttpResponse::json(int code, std::string body) {
  return HttpResponse{code, "application/json", std::move(body), {}};
}

HttpResponse error_response(int http_code, std::string_view code, std::string_view message,
                            double retry_after_s) {
  JsonWriter w;
  w.begin_object();
  w.key("error");
  w.begin_object();
  w.key("code");
  w.value(code);
  w.key("message");
  w.value(message);
  if (retry_after_s >= 0.0) {
    w.key("retry_after_s");
    w.value(retry_after_s);
  }
  w.end_object();
  w.end_object();
  HttpResponse resp = HttpResponse::json(http_code, w.take() + "\n");
  if (retry_after_s >= 0.0) {
    resp.headers.emplace_back(
        "Retry-After", std::to_string(static_cast<long long>(std::ceil(retry_after_s))));
  }
  return resp;
}

struct StatusServer::Impl {
  int listen_fd = -1;
  int wake_pipe[2] = {-1, -1};  // self-pipe: stop() writes, server thread polls
  std::thread thread;
  std::map<std::string, Route> routes;       // legacy GET exact-path providers
  std::vector<RichRoute> rich_routes;        // method-aware prefix handlers
  std::size_t max_body_bytes = 1 << 20;

  HttpResponse dispatch(const HttpRequest& req) {
    // Longest matching prefix among rich routes with this method wins; the
    // legacy exact-path GET table participates with prefix length == path
    // length, so it beats any shorter prefix route.
    const RichRoute* best = nullptr;
    std::set<std::string> allowed;  // methods the matched path supports
    for (const auto& r : rich_routes) {
      if (!prefix_matches(r.prefix, req.path)) continue;
      allowed.insert(r.method);
      if (r.method != req.method) continue;
      if (best == nullptr || r.prefix.size() > best->prefix.size()) best = &r;
    }
    const auto legacy = routes.find(req.path);
    if (legacy != routes.end()) allowed.insert("GET");
    if (legacy != routes.end() && req.method == "GET" &&
        (best == nullptr || best->prefix.size() < req.path.size())) {
      return HttpResponse{200, legacy->second.content_type, legacy->second.body_fn(), {}};
    }
    if (best != nullptr) return best->handler(req);
    if (!allowed.empty()) {
      // Known path, unsupported method: 405 naming what would work (ISSUE 8
      // hardening; a generic 404 here hides the route from the caller).
      std::string allow;
      for (const auto& m : allowed) allow += (allow.empty() ? "" : ", ") + m;
      HttpResponse resp = error_response(405, "method_not_allowed",
                                         req.method + " is not supported on " + req.path +
                                             " (Allow: " + allow + ")");
      resp.headers.emplace_back("Allow", allow);
      return resp;
    }
    return error_response(404, "not_found", "no route for " + req.path);
  }

  void serve_connection(int fd) {
    using clock = std::chrono::steady_clock;
    // Head: 8 KiB / 2 s budget from accept.
    std::string buf;
    const bool have_head = read_until(
        fd, buf, 8192,
        [](const std::string& b) { return b.find("\r\n\r\n") != std::string::npos; },
        clock::now() + std::chrono::seconds(2));
    if (!have_head) {
      ::close(fd);
      return;
    }
    const std::size_t head_end = buf.find("\r\n\r\n") + 4;
    HttpRequest req;
    if (!parse_head(buf.substr(0, head_end), &req)) {
      ::close(fd);
      return;
    }

    // Versioned surface (ISSUE 9): /v1/<path> is the canonical spelling of
    // every route; handlers are registered (and dispatched) on the legacy
    // unversioned path, so the prefix is stripped here. Unversioned requests
    // keep working but answer with a Deprecation header plus a Link to their
    // /v1 successor.
    const bool versioned =
        req.path == "/v1" || (req.path.size() > 3 && req.path.compare(0, 4, "/v1/") == 0);
    const std::string unversioned_path = req.path;
    if (versioned) {
      req.path = req.path.size() > 3 ? req.path.substr(3) : std::string("/");
    }

    HttpResponse resp;
    bool parsed_body = true;
    if (!req.header("transfer-encoding").empty()) {
      resp = error_response(501, "not_implemented", "chunked request bodies are not supported");
      parsed_body = false;
    } else {
      std::size_t content_length = 0;
      const std::string& cl = req.header("content-length");
      if (!cl.empty()) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(cl.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
          resp = error_response(400, "bad_request", "malformed Content-Length header");
          parsed_body = false;
        } else {
          content_length = static_cast<std::size_t>(v);
        }
      }
      if (parsed_body && content_length > max_body_bytes) {
        // Shed before reading: the declared body alone breaches the bound.
        resp = error_response(413, "payload_too_large",
                              "request body exceeds " + std::to_string(max_body_bytes) +
                                  " bytes");
        parsed_body = false;
      } else if (parsed_body) {
        // Body: own 5 s budget; cap guards a client lying low with a small
        // Content-Length then trickling more.
        std::string body = buf.substr(head_end);
        if (body.size() < content_length &&
            !read_until(
                fd, body, content_length,
                [content_length](const std::string& b) { return b.size() >= content_length; },
                clock::now() + std::chrono::seconds(5))) {
          ::close(fd);
          return;
        }
        body.resize(std::min(body.size(), content_length));
        req.body = std::move(body);
        resp = dispatch(req);
      }
    }
    if (!versioned) {
      // Deprecation (RFC 9745) + the successor link, on every unversioned
      // response — transport errors included, so clients migrating off the
      // legacy spelling hear about it no matter what they hit.
      resp.headers.emplace_back("Deprecation", "true");
      resp.headers.emplace_back("Link", "</v1" + unversioned_path + ">; rel=\"successor-version\"");
    }
    write_all(fd, render_response(resp));
    ::close(fd);
  }

  void run() {
    for (;;) {
      pollfd fds[2] = {{listen_fd, POLLIN, 0}, {wake_pipe[0], POLLIN, 0}};
      const int pr = ::poll(fds, 2, -1);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return;
      }
      if ((fds[1].revents & POLLIN) != 0) return;  // stop() signalled
      if ((fds[0].revents & POLLIN) == 0) continue;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      serve_connection(fd);
    }
  }
};

StatusServer::StatusServer() : impl_(new Impl) {
  impl_->routes["/healthz"] = Route{"text/plain", [] { return std::string("ok\n"); }};
  impl_->routes["/metrics"] = Route{"text/plain; version=0.0.4",
                                    [] { return prometheus_text(); }};
}

StatusServer::~StatusServer() {
  stop();
  delete impl_;
}

void StatusServer::handle(std::string path, std::string content_type,
                          std::function<std::string()> body_fn) {
  impl_->routes[std::move(path)] = Route{std::move(content_type), std::move(body_fn)};
}

void StatusServer::route(std::string method, std::string path_prefix,
                         std::function<HttpResponse(const HttpRequest&)> handler) {
  impl_->rich_routes.push_back(
      RichRoute{std::move(method), std::move(path_prefix), std::move(handler)});
}

bool StatusServer::start(std::uint16_t port, std::string* err) {
  auto fail = [&](const std::string& what) {
    if (err != nullptr) *err = what + ": " + std::strerror(errno);
    if (impl_->listen_fd >= 0) {
      ::close(impl_->listen_fd);
      impl_->listen_fd = -1;
    }
    for (int& fd : impl_->wake_pipe) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
    return false;
  };
  if (running_) {
    if (err != nullptr) *err = "already running";
    return false;
  }
  impl_->max_body_bytes = max_body_bytes_;

  impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (impl_->listen_fd < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local-only by design
  addr.sin_port = htons(port);
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return fail("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(impl_->listen_fd, 16) != 0) return fail("listen");

  socklen_t len = sizeof addr;
  if (::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  if (::pipe(impl_->wake_pipe) != 0) return fail("pipe");

  impl_->thread = std::thread([this] { impl_->run(); });
  running_ = true;
  return true;
}

void StatusServer::stop() {
  if (!running_) return;
  const char b = 0;
  [[maybe_unused]] const ssize_t n = ::write(impl_->wake_pipe[1], &b, 1);
  impl_->thread.join();
  ::close(impl_->listen_fd);
  impl_->listen_fd = -1;
  for (int& fd : impl_->wake_pipe) {
    ::close(fd);
    fd = -1;
  }
  running_ = false;
}

}  // namespace abg::obs
