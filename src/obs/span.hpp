// Hierarchical RAII spans with *explicit* context propagation, layered on the
// Chrome trace-event recorder. A Span is a TraceSpan that additionally knows
// (a) which trace lane it belongs to (lane == Perfetto pid, so each Engine
// job renders as its own process track) and (b) which span encloses it
// (parent id, recorded in the event args), giving per-job/per-bucket/
// per-iteration flame graphs from one batch process.
//
// Context crosses threads by value, never by ambient thread-local alone: the
// ThreadPool captures current_context() into each task at *enqueue* time and
// installs it with a ContextScope in whichever worker eventually runs the
// task. A worker that steals a task therefore attributes it to the
// submitting job's lane, and whatever context the worker happened to carry
// before is restored when the scope closes — no leakage through stolen tasks.
//
//   const auto lane = obs::register_lane("job reno");
//   obs::ContextScope scope({lane, 0});
//   obs::Span root("job reno", "api");          // parented to nothing
//   { obs::Span iter("synth.iteration", "synth"); ... }  // parented to root
//
// Disarmed cost (tracing disabled): one relaxed atomic load per Span, and a
// two-word TLS copy per ContextScope.
#pragma once

#include <cstdint>
#include <string>

namespace abg::obs {

// Propagated execution context: the trace lane (Perfetto pid; 0 means the
// default process lane) and the innermost open span id (0 means none).
struct SpanContext {
  std::uint32_t lane = 0;
  std::uint64_t span = 0;
};

// The calling thread's current context (what a Span opened now would use).
SpanContext current_context();

// Installs `ctx` as the thread's current context; restores the previous
// context on destruction. This is the only way context moves across threads.
class ContextScope {
 public:
  explicit ContextScope(SpanContext ctx);
  ~ContextScope();

  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  SpanContext prev_;
};

// Allocate a named trace lane (a Perfetto process track). The exporter emits
// a process_name metadata event for every registered lane, so a batch run
// shows one labeled lane per job. Lanes are never reused within a recording;
// clear_trace_events() drops them.
std::uint32_t register_lane(const std::string& name);

// RAII span. Arms itself only if tracing was enabled at construction. While
// open it is the thread's current context (children parent to it); on
// destruction it restores the enclosing context and records a complete event
// on its lane, with `span`/`parent` ids merged into the event args.
class Span {
 public:
  Span(std::string name, const char* cat);
  // With a pre-serialized JSON args object merged into the event args.
  Span(std::string name, const char* cat, std::string args_json);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // This span's id (0 when disarmed) — handy for cross-referencing in logs.
  std::uint64_t id() const { return id_; }

 private:
  std::string name_;
  std::string args_json_;
  const char* cat_;
  double start_us_ = 0.0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint32_t lane_ = 0;
  bool armed_ = false;
};

}  // namespace abg::obs
