#include "obs/journal.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/trace_events.hpp"

namespace abg::obs {

namespace detail {
std::atomic<bool> g_journal_on{false};
}  // namespace detail

namespace {

constexpr char kHeaderMagic[8] = {'A', 'B', 'G', 'J', 'R', 'N', 'L', '1'};
constexpr char kTrailerMagic[8] = {'A', 'B', 'G', 'J', 'E', 'N', 'D', '1'};
constexpr std::uint32_t kVersion = 1;

// One producer thread's ring. The producer owns head and the slots in
// [tail, head); the drainer owns tail. Classic SPSC: the producer's release
// store of head publishes the slot contents, the drainer's release store of
// tail publishes that the slots may be reused. Rings are created on a
// thread's first emission and never destroyed (the drainer may hold a
// pointer), exactly like metric handles.
struct Ring {
  explicit Ring(std::size_t cap) : buf(cap == 0 ? 1 : cap) {}

  std::vector<JournalRecord> buf;
  alignas(64) std::atomic<std::uint64_t> head{0};
  alignas(64) std::atomic<std::uint64_t> tail{0};
  std::atomic<std::uint64_t> dropped{0};
};

struct Journal {
  std::mutex mu;  // rings list, string table, file, lifecycle
  std::vector<std::unique_ptr<Ring>> rings;
  std::vector<std::string> strings{std::string()};  // id 0 = ""
  std::unordered_map<std::string, std::uint32_t> intern;
  JournalOptions opts;
  std::FILE* file = nullptr;
  std::thread drainer;
  std::atomic<bool> draining{false};
  std::uint64_t written = 0;  // records drained to the file (drainer only)

  // Session stats (reset by journal_start).
  std::atomic<std::uint64_t> recorded{0};
  std::atomic<std::uint64_t> by_kind[kJournalKindCount] = {};

  // Epoch as steady-clock nanoseconds; atomic so producers can read it
  // without the mutex (a stale read only shifts a timestamp, never races).
  std::atomic<std::uint64_t> epoch_ns{0};
  std::atomic<std::uint32_t> sample_every{1};
  std::atomic<std::size_t> ring_capacity{8192};
};

Journal& journal() {
  static Journal* j = new Journal;  // leaked: outlive static destructors
  return *j;
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

// Per-thread journal state: the ring, the scope provenance, and the current
// candidate. Plain TLS — provenance is installed inside each scoring task
// (JournalScope), so stolen tasks carry the submitting run's attribution.
struct Tls {
  Ring* ring = nullptr;
  std::uint32_t job = 0;
  std::uint32_t bucket = 0;
  std::uint32_t iter = 0;
  bool in_scope = false;
  bool in_candidate = false;
  bool sampled = false;
  std::uint64_t sketch = 0;
  std::uint64_t candidate = 0;
  std::uint64_t cells = 0;
  std::uint32_t segment = kJournalNoSegment;
};

thread_local Tls t_journal;

Ring& this_ring() {
  if (t_journal.ring == nullptr) {
    auto& j = journal();
    std::lock_guard lk(j.mu);
    j.rings.push_back(std::make_unique<Ring>(j.ring_capacity.load(std::memory_order_relaxed)));
    t_journal.ring = j.rings.back().get();
  }
  return *t_journal.ring;
}

void push(JournalRecord r) {
  auto& j = journal();
  r.ts_ns = steady_ns() - j.epoch_ns.load(std::memory_order_acquire);
  Ring& ring = this_ring();
  const std::uint64_t h = ring.head.load(std::memory_order_relaxed);
  if (h - ring.tail.load(std::memory_order_acquire) >= ring.buf.size()) {
    // Full: drop, never block. The drop is visible three ways — the obs
    // counter, the session stats, and the journal trailer.
    ring.dropped.fetch_add(1, std::memory_order_relaxed);
    static auto& c_dropped = counter("obs.journal_dropped");
    c_dropped.add();
    return;
  }
  ring.buf[h % ring.buf.size()] = r;
  ring.head.store(h + 1, std::memory_order_release);
  j.recorded.fetch_add(1, std::memory_order_relaxed);
  j.by_kind[r.kind].fetch_add(1, std::memory_order_relaxed);
}

// Drain every ring into the journal file. Drainer thread (and, at stop, the
// stopping thread after the drainer has joined).
void drain_all(Journal& j) {
  std::vector<Ring*> rings;
  {
    std::lock_guard lk(j.mu);
    rings.reserve(j.rings.size());
    for (const auto& r : j.rings) rings.push_back(r.get());
  }
  for (Ring* ring : rings) {
    const std::uint64_t tail = ring->tail.load(std::memory_order_relaxed);
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    for (std::uint64_t i = tail; i != head; ++i) {
      const JournalRecord& rec = ring->buf[i % ring->buf.size()];
      if (std::fwrite(&rec, sizeof rec, 1, j.file) == 1) ++j.written;
    }
    ring->tail.store(head, std::memory_order_release);
  }
}

void write_u32(std::FILE* f, std::uint32_t v) { std::fwrite(&v, sizeof v, 1, f); }
void write_u64(std::FILE* f, std::uint64_t v) { std::fwrite(&v, sizeof v, 1, f); }

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 0x100000001b3ull;
}

}  // namespace

const char* journal_kind_name(JournalKind k) {
  switch (k) {
    case JournalKind::kSketch: return "sketch";
    case JournalKind::kEnumerated: return "enumerated";
    case JournalKind::kCacheHit: return "cache_hit";
    case JournalKind::kEvaluated: return "evaluated";
    case JournalKind::kAbandoned: return "abandoned";
    case JournalKind::kSelected: return "selected";
    case JournalKind::kLbPrune: return "lb_prune";
    case JournalKind::kRowAbandon: return "row_abandon";
    case JournalKind::kDtwEval: return "dtw_eval";
    case JournalKind::kLbKeoghPrune: return "lb_keogh_prune";
  }
  return "?";
}

bool journal_start(const JournalOptions& opts, std::string* err) {
  auto& j = journal();
  std::lock_guard lk(j.mu);
  if (journal_enabled() || j.draining.load(std::memory_order_relaxed)) {
    if (err != nullptr) *err = "journal already running";
    return false;
  }
  if (opts.path.empty()) {
    if (err != nullptr) *err = "journal path must not be empty";
    return false;
  }
  std::FILE* f = std::fopen(opts.path.c_str(), "wb");
  if (f == nullptr) {
    if (err != nullptr) *err = "cannot open " + opts.path + " for writing";
    return false;
  }
  std::fwrite(kHeaderMagic, sizeof kHeaderMagic, 1, f);
  write_u32(f, kVersion);
  write_u32(f, static_cast<std::uint32_t>(sizeof(JournalRecord)));

  j.opts = opts;
  j.file = f;
  j.written = 0;
  j.recorded.store(0, std::memory_order_relaxed);
  for (auto& k : j.by_kind) k.store(0, std::memory_order_relaxed);
  j.sample_every.store(opts.sample_every == 0 ? 1 : opts.sample_every,
                       std::memory_order_relaxed);
  const std::size_t cap = opts.ring_capacity == 0 ? 1 : opts.ring_capacity;
  j.ring_capacity.store(cap, std::memory_order_relaxed);
  // Discard anything a previous session left behind in the rings (events
  // emitted after its final drain), reset the drop counts, and apply this
  // session's capacity to rings surviving from earlier sessions (producers
  // are quiescent here — the journal is disarmed — so resizing is safe).
  for (auto& r : j.rings) {
    r->tail.store(r->head.load(std::memory_order_acquire), std::memory_order_relaxed);
    r->dropped.store(0, std::memory_order_relaxed);
    if (r->buf.size() != cap) r->buf.assign(cap, JournalRecord{});
  }
  j.epoch_ns.store(steady_ns(), std::memory_order_release);

  j.draining.store(true, std::memory_order_relaxed);
  const int interval_ms = opts.drain_interval_ms < 1 ? 1 : opts.drain_interval_ms;
  j.drainer = std::thread([&j, interval_ms] {
    while (j.draining.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      drain_all(j);
    }
  });
  detail::g_journal_on.store(true, std::memory_order_release);
  return true;
}

JournalStats journal_stop() {
  auto& j = journal();
  JournalStats stats;
  if (!j.draining.load(std::memory_order_relaxed)) return stats;
  detail::g_journal_on.store(false, std::memory_order_release);
  j.draining.store(false, std::memory_order_relaxed);
  if (j.drainer.joinable()) j.drainer.join();
  drain_all(j);

  std::lock_guard lk(j.mu);
  std::uint64_t dropped = 0;
  for (const auto& r : j.rings) dropped += r->dropped.load(std::memory_order_relaxed);
  // String table + trailer.
  const long strtab_offset = std::ftell(j.file);
  write_u32(j.file, static_cast<std::uint32_t>(j.strings.size()));
  for (const auto& s : j.strings) {
    write_u32(j.file, static_cast<std::uint32_t>(s.size()));
    std::fwrite(s.data(), 1, s.size(), j.file);
  }
  std::fwrite(kTrailerMagic, sizeof kTrailerMagic, 1, j.file);
  write_u64(j.file, j.written);
  write_u64(j.file, dropped);
  write_u64(j.file, static_cast<std::uint64_t>(strtab_offset));
  std::fclose(j.file);
  j.file = nullptr;

  stats.recorded = j.recorded.load(std::memory_order_relaxed);
  stats.dropped = dropped;
  for (std::size_t i = 0; i < kJournalKindCount; ++i) {
    stats.by_kind[i] = j.by_kind[i].load(std::memory_order_relaxed);
  }
  return stats;
}

std::uint32_t journal_intern(const std::string& s) {
  if (s.empty()) return 0;
  auto& j = journal();
  std::lock_guard lk(j.mu);
  const auto it = j.intern.find(s);
  if (it != j.intern.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(j.strings.size());
  j.strings.push_back(s);
  j.intern.emplace(s, id);
  return id;
}

JournalScope::JournalScope(std::uint32_t job, std::uint32_t bucket, std::uint32_t iter) {
  Tls& t = t_journal;
  prev_[0] = (static_cast<std::uint64_t>(t.job) << 32) | t.bucket;
  prev_[1] = (static_cast<std::uint64_t>(t.iter) << 32) |
             (static_cast<std::uint64_t>(t.in_scope) << 2) |
             (static_cast<std::uint64_t>(t.in_candidate) << 1) |
             static_cast<std::uint64_t>(t.sampled);
  prev_[2] = t.sketch;
  prev_[3] = t.candidate;
  prev_[4] = t.cells;
  prev_[5] = t.segment;
  t.job = job;
  t.bucket = bucket;
  t.iter = iter;
  t.in_scope = true;
  t.in_candidate = false;
  t.sampled = false;
  t.sketch = 0;
  t.candidate = 0;
  t.cells = 0;
  t.segment = kJournalNoSegment;
}

JournalScope::~JournalScope() {
  Tls& t = t_journal;
  t.job = static_cast<std::uint32_t>(prev_[0] >> 32);
  t.bucket = static_cast<std::uint32_t>(prev_[0]);
  t.iter = static_cast<std::uint32_t>(prev_[1] >> 32);
  t.in_scope = (prev_[1] & 4) != 0;
  t.in_candidate = (prev_[1] & 2) != 0;
  t.sampled = (prev_[1] & 1) != 0;
  t.sketch = prev_[2];
  t.candidate = prev_[3];
  t.cells = prev_[4];
  t.segment = static_cast<std::uint32_t>(prev_[5]);
}

bool journal_in_scope() { return journal_enabled() && t_journal.in_scope; }

void journal_begin_candidate(std::uint64_t sketch_hash, std::uint64_t fingerprint) {
  Tls& t = t_journal;
  t.sketch = sketch_hash;
  t.candidate = fingerprint;
  t.cells = 0;
  t.segment = kJournalNoSegment;
  t.in_candidate = true;
  const std::uint32_t every = journal().sample_every.load(std::memory_order_relaxed);
  t.sampled = every <= 1 || (fingerprint % every) == 0;
}

void journal_end_candidate() {
  Tls& t = t_journal;
  t.in_candidate = false;
  t.sampled = false;
  t.sketch = 0;
  t.candidate = 0;
  t.cells = 0;
  t.segment = kJournalNoSegment;
}

bool journal_in_candidate() {
  const Tls& t = t_journal;
  return journal_enabled() && t.in_scope && t.in_candidate && t.sampled;
}

bool journal_candidate_sampled() { return t_journal.in_candidate && t_journal.sampled; }

void journal_set_segment(std::uint32_t index) { t_journal.segment = index; }

std::uint64_t journal_take_cells() {
  const std::uint64_t c = t_journal.cells;
  t_journal.cells = 0;
  return c;
}

std::uint64_t journal_fingerprint(std::uint64_t sketch_hash,
                                  const std::vector<double>& assignment) {
  std::uint64_t h = mix64(0xcbf29ce484222325ull, sketch_hash);
  for (double v : assignment) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    h = mix64(h, bits);
  }
  // A fingerprint of 0 means "none" everywhere else; remap the (vanishingly
  // unlikely) real 0.
  return h == 0 ? 1 : h;
}

void journal_record_candidate(JournalKind kind, double distance, std::uint64_t cells) {
  if (!journal_in_candidate()) return;
  const Tls& t = t_journal;
  JournalRecord r;
  r.candidate = t.candidate;
  r.sketch = t.sketch;
  r.cells = cells;
  r.distance = distance;
  r.job = t.job;
  r.bucket = t.bucket;
  r.iter = t.iter;
  r.kind = static_cast<std::uint8_t>(kind);
  push(r);
}

void journal_record_distance(JournalKind kind, double distance, std::uint64_t cells,
                             std::uint8_t kernel) {
  if (!journal_in_candidate()) return;
  Tls& t = t_journal;
  t.cells += cells;
  JournalRecord r;
  r.candidate = t.candidate;
  r.sketch = t.sketch;
  r.cells = cells;
  r.distance = distance;
  r.job = t.job;
  r.bucket = t.bucket;
  r.iter = t.iter;
  r.segment = t.segment;
  r.kind = static_cast<std::uint8_t>(kind);
  r.kernel = kernel;
  push(r);
}

void journal_record_sketch(std::uint64_t sketch_hash) {
  if (!journal_in_scope()) return;
  const Tls& t = t_journal;
  JournalRecord r;
  r.sketch = sketch_hash;
  r.job = t.job;
  r.bucket = t.bucket;
  r.iter = t.iter;
  r.kind = static_cast<std::uint8_t>(JournalKind::kSketch);
  push(r);
}

void journal_record_selected(std::uint64_t sketch_hash, std::uint64_t fingerprint,
                             double distance, std::uint32_t detail, bool final_winner) {
  if (!journal_in_scope()) return;
  const Tls& t = t_journal;
  JournalRecord r;
  r.candidate = fingerprint;
  r.sketch = sketch_hash;
  r.distance = distance;
  r.job = t.job;
  r.bucket = t.bucket;
  r.iter = t.iter;
  r.detail = detail;
  r.kind = static_cast<std::uint8_t>(JournalKind::kSelected);
  r.flags = final_winner ? kJournalFinal : 0;
  push(r);
}

JournalSummary journal_summary() {
  auto& j = journal();
  JournalSummary s;
  s.enabled = journal_enabled();
  s.recorded = j.recorded.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kJournalKindCount; ++i) {
    s.by_kind[i] = j.by_kind[i].load(std::memory_order_relaxed);
  }
  std::lock_guard lk(j.mu);
  s.path = j.draining.load(std::memory_order_relaxed) ? j.opts.path : std::string();
  for (const auto& r : j.rings) s.dropped += r->dropped.load(std::memory_order_relaxed);
  return s;
}

std::string journal_summary_json() {
  const JournalSummary s = journal_summary();
  JsonWriter w;
  w.begin_object();
  w.key("enabled");
  w.value(s.enabled);
  w.key("path");
  w.value(s.path);
  w.key("recorded");
  w.value(s.recorded);
  w.key("dropped");
  w.value(s.dropped);
  w.key("by_kind");
  w.begin_object();
  for (std::size_t i = 0; i < kJournalKindCount; ++i) {
    w.key(journal_kind_name(static_cast<JournalKind>(i)));
    w.value(s.by_kind[i]);
  }
  w.end_object();
  w.end_object();
  return w.take();
}

void journal_emit_trace_counters() {
  if (!journal_enabled() || !tracing_enabled()) return;
  const JournalSummary s = journal_summary();
  auto kind = [&s](JournalKind k) { return s.by_kind[static_cast<std::size_t>(k)]; };
  {
    JsonWriter w;
    w.begin_object();
    w.key("enumerated");
    w.value(kind(JournalKind::kEnumerated));
    w.key("cache_hit");
    w.value(kind(JournalKind::kCacheHit));
    w.key("evaluated");
    w.value(kind(JournalKind::kEvaluated));
    w.key("abandoned");
    w.value(kind(JournalKind::kAbandoned));
    w.end_object();
    trace_counter_event("search funnel", "journal", w.take());
  }
  {
    JsonWriter w;
    w.begin_object();
    w.key("lb_prune");
    w.value(kind(JournalKind::kLbPrune));
    w.key("lb_keogh_prune");
    w.value(kind(JournalKind::kLbKeoghPrune));
    w.key("row_abandon");
    w.value(kind(JournalKind::kRowAbandon));
    w.key("dtw_eval");
    w.value(kind(JournalKind::kDtwEval));
    w.end_object();
    trace_counter_event("dtw evals", "journal", w.take());
  }
}

bool read_journal(const std::string& path, JournalFile* out, std::string* err) {
  auto fail = [err](const std::string& msg) {
    if (err != nullptr) *err = msg;
    return false;
  };
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail("cannot open " + path);
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  char magic[8];
  std::uint32_t version = 0, record_size = 0;
  if (std::fread(magic, sizeof magic, 1, f) != 1 ||
      std::memcmp(magic, kHeaderMagic, sizeof magic) != 0) {
    return fail(path + ": not a journal file (bad header)");
  }
  if (std::fread(&version, sizeof version, 1, f) != 1 ||
      std::fread(&record_size, sizeof record_size, 1, f) != 1 || version != kVersion ||
      record_size != sizeof(JournalRecord)) {
    return fail(path + ": unsupported journal version/record size");
  }

  constexpr long kTrailerSize = 8 + 3 * 8;
  if (std::fseek(f, -kTrailerSize, SEEK_END) != 0) return fail(path + ": truncated journal");
  std::uint64_t count = 0, dropped = 0, strtab_offset = 0;
  if (std::fread(magic, sizeof magic, 1, f) != 1 ||
      std::memcmp(magic, kTrailerMagic, sizeof magic) != 0 ||
      std::fread(&count, sizeof count, 1, f) != 1 ||
      std::fread(&dropped, sizeof dropped, 1, f) != 1 ||
      std::fread(&strtab_offset, sizeof strtab_offset, 1, f) != 1) {
    return fail(path + ": missing trailer (journal not closed by journal_stop?)");
  }

  constexpr long kHeaderSize = 8 + 2 * 4;
  if (strtab_offset < static_cast<std::uint64_t>(kHeaderSize) ||
      (strtab_offset - kHeaderSize) != count * sizeof(JournalRecord)) {
    return fail(path + ": record count does not match the string-table offset");
  }
  out->records.resize(count);
  if (std::fseek(f, kHeaderSize, SEEK_SET) != 0 ||
      (count > 0 &&
       std::fread(out->records.data(), sizeof(JournalRecord), count, f) != count)) {
    return fail(path + ": short read of records");
  }

  std::uint32_t nstrings = 0;
  if (std::fseek(f, static_cast<long>(strtab_offset), SEEK_SET) != 0 ||
      std::fread(&nstrings, sizeof nstrings, 1, f) != 1) {
    return fail(path + ": short read of string table");
  }
  out->strings.clear();
  out->strings.reserve(nstrings);
  for (std::uint32_t i = 0; i < nstrings; ++i) {
    std::uint32_t len = 0;
    if (std::fread(&len, sizeof len, 1, f) != 1) return fail(path + ": bad string table");
    std::string s(len, '\0');
    if (len > 0 && std::fread(s.data(), 1, len, f) != len) {
      return fail(path + ": bad string table");
    }
    out->strings.push_back(std::move(s));
  }
  out->dropped = dropped;
  return true;
}

std::vector<std::string> split_journal_by_job(const std::string& path, std::string* err) {
  std::vector<std::string> written;
  JournalFile combined;
  if (!read_journal(path, &combined, err)) return written;

  std::map<std::uint32_t, std::vector<const JournalRecord*>> by_job;
  for (const auto& r : combined.records) {
    if (r.job != 0) by_job[r.job].push_back(&r);
  }
  for (const auto& [job_id, records] : by_job) {
    std::string name = combined.str(job_id);
    for (char& c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
      if (!ok) c = '_';
    }
    const std::string out_path = path + "." + name;
    std::FILE* f = std::fopen(out_path.c_str(), "wb");
    if (f == nullptr) {
      if (err != nullptr) *err = "cannot open " + out_path + " for writing";
      return written;
    }
    std::fwrite(kHeaderMagic, sizeof kHeaderMagic, 1, f);
    write_u32(f, kVersion);
    write_u32(f, static_cast<std::uint32_t>(sizeof(JournalRecord)));
    for (const JournalRecord* r : records) std::fwrite(r, sizeof *r, 1, f);
    const long strtab_offset = std::ftell(f);
    // Reuse the combined string table wholesale: intern ids stay valid and
    // the split stays a plain record filter.
    write_u32(f, static_cast<std::uint32_t>(combined.strings.size()));
    for (const auto& s : combined.strings) {
      write_u32(f, static_cast<std::uint32_t>(s.size()));
      std::fwrite(s.data(), 1, s.size(), f);
    }
    std::fwrite(kTrailerMagic, sizeof kTrailerMagic, 1, f);
    write_u64(f, records.size());
    write_u64(f, 0);
    write_u64(f, static_cast<std::uint64_t>(strtab_offset));
    if (std::fclose(f) != 0) {
      if (err != nullptr) *err = "write failed for " + out_path;
      return written;
    }
    written.push_back(out_path);
  }
  return written;
}

}  // namespace abg::obs
