#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace abg::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    double back;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) return shorter;
  }
  return buf;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elem_.empty()) {
    if (has_elem_.back()) out_ += ',';
    has_elem_.back() = true;
  }
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
  has_elem_.push_back(false);
}

void JsonWriter::end_object() {
  out_ += '}';
  has_elem_.pop_back();
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
  has_elem_.push_back(false);
}

void JsonWriter::end_array() {
  out_ += ']';
  has_elem_.pop_back();
}

void JsonWriter::key(std::string_view k) {
  comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  comma();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
}

void JsonWriter::value(double v) {
  comma();
  out_ += json_number(v);
}

void JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
}

void JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
}

void JsonWriter::raw(std::string_view json) {
  comma();
  out_ += json;
}

}  // namespace abg::obs
