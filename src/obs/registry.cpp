#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

namespace abg::obs {

namespace {

// Lock-free relaxed max update for atomic<double>.
void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

// The registry itself: name -> handle maps behind one mutex. The mutex is
// only taken on registration/snapshot/reset, never on increment. Leaked on
// purpose (never destroyed) so handles cached in function-local statics stay
// valid through static destruction order.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

}  // namespace

void Gauge::set(double v) {
  last_.store(v, std::memory_order_relaxed);
  atomic_max(max_, v);
}

void Gauge::reset() {
  last_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(bounds.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

double Histogram::max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

std::span<const double> default_time_bounds_us() {
  static const double kBounds[] = {1,    2,    5,    10,   20,   50,   100,  200,
                                   500,  1e3,  2e3,  5e3,  1e4,  2e4,  5e4,  1e5,
                                   2e5,  5e5,  1e6,  2e6,  5e6,  1e7,  3e7,  6e7};
  return kBounds;
}

Counter& counter(const std::string& name) {
  auto& r = registry();
  std::lock_guard lk(r.mu);
  auto& slot = r.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& gauge(const std::string& name) {
  auto& r = registry();
  std::lock_guard lk(r.mu);
  auto& slot = r.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& histogram(const std::string& name, std::span<const double> bounds) {
  auto& r = registry();
  std::lock_guard lk(r.mu);
  auto& slot = r.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

Snapshot snapshot() {
  auto& r = registry();
  std::lock_guard lk(r.mu);
  Snapshot s;
  for (const auto& [name, c] : r.counters) s.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : r.gauges) {
    s.gauges.emplace_back(name, std::make_pair(g->last(), g->max()));
  }
  for (const auto& [name, h] : r.histograms) {
    Snapshot::HistogramData d;
    d.name = name;
    d.bounds = h->bounds();
    d.counts = h->counts();
    d.count = h->count();
    d.sum = h->sum();
    d.min = h->min();
    d.max = h->max();
    s.histograms.push_back(std::move(d));
  }
  return s;
}

std::uint64_t Snapshot::counter_value(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

void reset_all() {
  auto& r = registry();
  std::lock_guard lk(r.mu);
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, g] : r.gauges) g->reset();
  for (auto& [name, h] : r.histograms) h->reset();
}

}  // namespace abg::obs
