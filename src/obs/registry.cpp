#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

namespace abg::obs {

namespace {

// Lock-free relaxed max update for atomic<double>.
void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

// Canonical form: labels sorted by key (ties by value), deduped by key, and
// capped at kMaxLabelsPerSeries. Sorting makes {a=1,b=2} and {b=2,a=1} the
// same series; deduping by key (first value wins, i.e. the smallest after the
// sort) keeps a repeated key like {job=a,job=b} from reaching the exporters,
// where a repeated label name is invalid exposition output.
Labels normalize_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end(),
                           [](const auto& a, const auto& b) { return a.first == b.first; }),
               labels.end());
  if (labels.size() > kMaxLabelsPerSeries) labels.resize(kMaxLabelsPerSeries);
  return labels;
}

const Labels& overflow_labels() {
  static const Labels* l = new Labels{{"overflow", "true"}};
  return *l;
}

// A series is (name, normalized labels); map ordering gives the name-major,
// label-sorted snapshot order the exporters rely on.
using SeriesKey = std::pair<std::string, Labels>;

// The registry itself: series -> handle maps behind one mutex. The mutex is
// only taken on registration/snapshot/reset, never on increment. Leaked on
// purpose (never destroyed) so handles cached in function-local statics stay
// valid through static destruction order.
struct Registry {
  std::mutex mu;
  std::map<SeriesKey, std::unique_ptr<Counter>> counters;
  std::map<SeriesKey, std::unique_ptr<Gauge>> gauges;
  std::map<SeriesKey, std::unique_ptr<Histogram>> histograms;
  // Labeled-series count per family name, for the cardinality cap.
  std::map<std::string, std::size_t> family_series;
  // Family name -> help string (describe()).
  std::map<std::string, std::string> help;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

// Find-or-create a series in `m`. When the family is at its cardinality cap,
// new label sets collapse into the {overflow="true"} series; `overflowed`
// reports that so the caller can bump obs.series_overflow after the registry
// mutex is released (counter() re-enters the same mutex).
template <typename T, typename Make>
T& find_series(std::map<SeriesKey, std::unique_ptr<T>>& m, const std::string& name,
               Labels labels, bool& overflowed, Make make) {
  auto& r = registry();
  labels = normalize_labels(std::move(labels));
  std::lock_guard lk(r.mu);
  auto it = m.find(SeriesKey{name, labels});
  if (it != m.end()) return *it->second;
  if (!labels.empty() && labels != overflow_labels() &&
      r.family_series[name] >= kMaxSeriesPerFamily) {
    overflowed = true;
    auto& slot = m[SeriesKey{name, overflow_labels()}];
    if (!slot) slot = make();
    return *slot;
  }
  if (!labels.empty()) ++r.family_series[name];
  auto& slot = m[SeriesKey{name, std::move(labels)}];
  slot = make();
  return *slot;
}

}  // namespace

std::string series_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  // Canonicalize: the caller may pass labels in any order, but the text
  // identity must be unique per series, exactly like the registry's own keys.
  const Labels norm = normalize_labels(labels);
  std::string out = name;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : norm) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    for (char c : v) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
  }
  out += '}';
  return out;
}

void Gauge::set(double v) {
  last_.store(v, std::memory_order_relaxed);
  atomic_max(max_, v);
}

void Gauge::reset() {
  last_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(bounds.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

double Histogram::max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

std::span<const double> default_time_bounds_us() {
  static const double kBounds[] = {1,    2,    5,    10,   20,   50,   100,  200,
                                   500,  1e3,  2e3,  5e3,  1e4,  2e4,  5e4,  1e5,
                                   2e5,  5e5,  1e6,  2e6,  5e6,  1e7,  3e7,  6e7};
  return kBounds;
}

Counter& counter(const std::string& name) { return counter(name, Labels{}); }

Counter& counter(const std::string& name, const Labels& labels) {
  bool overflowed = false;
  Counter& c = find_series(registry().counters, name, labels, overflowed,
                           [] { return std::make_unique<Counter>(); });
  if (overflowed) counter("obs.series_overflow").add();
  return c;
}

Gauge& gauge(const std::string& name) { return gauge(name, Labels{}); }

Gauge& gauge(const std::string& name, const Labels& labels) {
  bool overflowed = false;
  Gauge& g = find_series(registry().gauges, name, labels, overflowed,
                         [] { return std::make_unique<Gauge>(); });
  if (overflowed) counter("obs.series_overflow").add();
  return g;
}

Histogram& histogram(const std::string& name, std::span<const double> bounds) {
  return histogram(name, bounds, Labels{});
}

Histogram& histogram(const std::string& name, std::span<const double> bounds,
                     const Labels& labels) {
  bool overflowed = false;
  Histogram& h = find_series(registry().histograms, name, labels, overflowed,
                             [bounds] { return std::make_unique<Histogram>(bounds); });
  if (overflowed) counter("obs.series_overflow").add();
  return h;
}

void describe(const std::string& name, const std::string& help) {
  auto& r = registry();
  std::lock_guard lk(r.mu);
  r.help.emplace(name, help);  // first registration wins
}

Snapshot snapshot() {
  // Eagerly materialize the overflow counter (outside the lock: counter()
  // re-enters the registry mutex) so every report carries the series and an
  // exact-value gate like `--require obs.series_overflow=0` can always bind.
  {
    static Counter* overflow = [] {
      describe("obs.series_overflow", "label sets collapsed into the overflow series");
      return &counter("obs.series_overflow");
    }();
    (void)overflow;
  }
  auto& r = registry();
  std::lock_guard lk(r.mu);
  Snapshot s;
  s.help = r.help;
  for (const auto& [key, c] : r.counters) {
    s.counters.push_back(Snapshot::CounterData{key.first, key.second, c->value()});
  }
  for (const auto& [key, g] : r.gauges) {
    s.gauges.push_back(Snapshot::GaugeData{key.first, key.second, g->last(), g->max()});
  }
  for (const auto& [key, h] : r.histograms) {
    Snapshot::HistogramData d;
    d.name = key.first;
    d.labels = key.second;
    d.bounds = h->bounds();
    d.counts = h->counts();
    d.count = h->count();
    d.sum = h->sum();
    d.min = h->min();
    d.max = h->max();
    s.histograms.push_back(std::move(d));
  }
  return s;
}

std::uint64_t Snapshot::counter_value(const std::string& name) const {
  return counter_value(name, Labels{});
}

std::uint64_t Snapshot::counter_value(const std::string& name, const Labels& labels) const {
  const Labels norm = normalize_labels(labels);
  for (const auto& c : counters) {
    if (c.name == name && c.labels == norm) return c.value;
  }
  return 0;
}

void reset_all() {
  auto& r = registry();
  std::lock_guard lk(r.mu);
  for (auto& [key, c] : r.counters) c->reset();
  for (auto& [key, g] : r.gauges) g->reset();
  for (auto& [key, h] : r.histograms) h->reset();
}

}  // namespace abg::obs
