// Dependency-free embedded HTTP status listener. Serves GET requests on
// 127.0.0.1 from one background thread:
//
//   /healthz   -> "ok"
//   /metrics   -> Prometheus text exposition of the metrics registry
//   <custom>   -> any provider registered with handle() (the CLI registers
//                 /jobs with a JSON snapshot of Engine job states)
//
// Providers must be lock-free with respect to the workload they observe —
// the server thread calls them inline, so a provider that grabbed a hot
// driver lock would let a polling client stall synthesis. The built-in
// /metrics route reads relaxed-atomic snapshots only.
//
// This sits in obs (below util), so errors surface as bool + message rather
// than util::Status.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace abg::obs {

class StatusServer {
 public:
  StatusServer();
  ~StatusServer();  // stops and joins if running

  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  // Register `body_fn` for an exact request path ("/jobs"). Must be called
  // before start(). The function is invoked on the server thread per request.
  void handle(std::string path, std::string content_type,
              std::function<std::string()> body_fn);

  // Bind 127.0.0.1:port (port 0 picks an ephemeral port, see port()) and
  // start serving. False on failure with a human-readable reason in *err.
  bool start(std::uint16_t port, std::string* err = nullptr);

  // Stop accepting, close the socket, join the server thread. Idempotent.
  void stop();

  bool running() const { return running_; }

  // The actually-bound port (differs from the requested one for port 0).
  std::uint16_t port() const { return port_; }

 private:
  struct Impl;
  Impl* impl_;       // pimpl keeps <sys/socket.h> out of the header
  bool running_ = false;
  std::uint16_t port_ = 0;
};

}  // namespace abg::obs
