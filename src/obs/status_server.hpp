// Dependency-free embedded HTTP listener. Serves requests on 127.0.0.1 from
// one background thread:
//
//   /healthz   -> "ok"
//   /metrics   -> Prometheus text exposition of the metrics registry
//   <custom>   -> GET body providers registered with handle() (the CLI
//                 registers /jobs with a JSON snapshot of Engine job states),
//                 or full request handlers registered with route() — the
//                 serve daemon mounts POST /jobs, GET/DELETE /jobs/<id>, and
//                 GET /jobs/<id>/result this way (ISSUE 8).
//
// Providers must be lock-free with respect to the workload they observe —
// the server thread calls them inline, so a provider that grabbed a hot
// driver lock would let a polling client stall synthesis. The built-in
// /metrics route reads relaxed-atomic snapshots only. route() handlers run
// on the same thread; the serve layer keeps them to queue/WAL operations,
// never synthesis work.
//
// Robustness contract (ISSUE 8): request bodies are bounded
// (413 Payload Too Large past max_body_bytes), a method the matched path
// does not support earns 405 with an Allow header listing the ones it does,
// and unknown paths stay 404.
//
// This sits in obs (below util), so errors surface as bool + message rather
// than util::Status.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace abg::obs {

// One parsed request, as seen by route() handlers. Header names are
// lowercased; the query string is kept raw (no '?').
struct HttpRequest {
  std::string method;
  std::string path;
  std::string query;
  std::map<std::string, std::string> headers;
  std::string body;

  // Case-already-folded lookup; empty string when absent.
  const std::string& header(const std::string& lowercase_name) const;
  // "a=1&b=two" -> value of `key`, "" when absent (no %-decoding; the serve
  // API sticks to token-safe values).
  std::string query_param(const std::string& key) const;
};

struct HttpResponse {
  int code = 200;
  std::string content_type = "text/plain";
  std::string body;
  // Extra headers (e.g. {"Retry-After", "2"}); Content-Type/Length and
  // Connection are emitted by the server.
  std::vector<std::pair<std::string, std::string>> headers;

  static HttpResponse text(int code, std::string body);
  static HttpResponse json(int code, std::string body);
};

// The one JSON error envelope every HTTP surface answers with (ISSUE 9):
//
//   {"error": {"code": "<machine-readable>", "message": "<human-readable>",
//              "retry_after_s": <seconds>}}     // retry_after_s only when >= 0
//
// `code` is a stable machine-readable identifier (transport-level codes like
// "not_found"/"method_not_allowed" here; the serve layer maps its
// util::StatusCode taxonomy through status_code_name). A non-negative
// retry_after_s additionally emits a Retry-After header (rounded up to whole
// seconds, as the header demands).
HttpResponse error_response(int http_code, std::string_view code, std::string_view message,
                            double retry_after_s = -1.0);

class StatusServer {
 public:
  StatusServer();
  ~StatusServer();  // stops and joins if running

  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  // Register `body_fn` for GET requests on an exact path ("/jobs"). Must be
  // called before start(). Invoked on the server thread per request.
  void handle(std::string path, std::string content_type,
              std::function<std::string()> body_fn);

  // Register a full request handler for `method` on `path_prefix`: matches
  // the prefix exactly and any subpath below it ("/jobs" serves both /jobs
  // and /jobs/j-3/result; the handler reads the rest of the path from
  // HttpRequest::path). The longest matching prefix wins. Must be called
  // before start().
  void route(std::string method, std::string path_prefix,
             std::function<HttpResponse(const HttpRequest&)> handler);

  // Request-body bound; requests declaring (or trickling) more earn 413.
  void set_max_body_bytes(std::size_t n) { max_body_bytes_ = n; }
  std::size_t max_body_bytes() const { return max_body_bytes_; }

  // Bind 127.0.0.1:port (port 0 picks an ephemeral port, see port()) and
  // start serving. False on failure with a human-readable reason in *err.
  bool start(std::uint16_t port, std::string* err = nullptr);

  // Stop accepting, close the socket, join the server thread. Idempotent.
  void stop();

  bool running() const { return running_; }

  // The actually-bound port (differs from the requested one for port 0).
  std::uint16_t port() const { return port_; }

 private:
  struct Impl;
  Impl* impl_;       // pimpl keeps <sys/socket.h> out of the header
  bool running_ = false;
  std::uint16_t port_ = 0;
  std::size_t max_body_bytes_ = 1 << 20;  // 1 MiB
};

}  // namespace abg::obs
