// Prometheus text exposition (version 0.0.4) of the metrics registry, served
// by the embedded status listener at /metrics and writable to disk for CI
// artifacts. Dependency-free: renders straight from obs::snapshot().
//
// Mapping: metric names are mangled to the Prometheus charset (`.` -> `_`)
// and prefixed `abg_`; counters keep their name, a Gauge exports two series
// (`abg_<name>` = last write, `abg_<name>_max` = high-watermark), and a
// Histogram exports the conventional `_bucket{le=...}` cumulative series plus
// `_sum` and `_count`. Registry labels pass through as Prometheus labels.
#pragma once

#include <string>

namespace abg::obs {

struct Snapshot;

// Render a snapshot (or the live registry) as Prometheus text exposition.
std::string prometheus_text(const Snapshot& s);
std::string prometheus_text();

// Write prometheus_text() to `path`. False on I/O failure.
bool write_prometheus_text(const std::string& path);

}  // namespace abg::obs
