// Scoped phase timers: an RAII guard that measures a steady-clock span and
// feeds it (in microseconds) to a registry histogram on destruction. Used for
// refinement-loop iterations, per-bucket scoring, validation, and thread-pool
// queue wait.
//
//   void score_all(...) {
//     obs::Timer t(obs::histogram("synth.iter_us"));
//     ...
//   }  // observes elapsed microseconds
#pragma once

#include <chrono>

#include "obs/registry.hpp"

namespace abg::obs {

class Timer {
 public:
  explicit Timer(Histogram& h) : hist_(&h), start_(clock::now()) {}
  ~Timer() { stop(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  // Record now instead of at scope exit. Idempotent.
  void stop() {
    if (hist_ == nullptr) return;
    hist_->observe(elapsed_us());
    hist_ = nullptr;
  }

  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  Histogram* hist_;
  clock::time_point start_;
};

}  // namespace abg::obs
