// Chrome trace-event recorder (chrome://tracing / Perfetto "JSON trace
// format", complete events, ph="X"). Disabled by default: a disarmed
// TraceSpan costs one relaxed atomic load, so instrumentation can live
// permanently on the refinement loop and thread pool.
//
//   obs::set_tracing_enabled(true);
//   { obs::TraceSpan span("score bucket reno", "synth"); ... }
//   obs::write_trace_json("t.json");   // open in ui.perfetto.dev
#pragma once

#include <cstdint>
#include <string>

namespace abg::obs {

// Arm/disarm span recording process-wide. Spans already open keep the state
// they saw at construction.
void set_tracing_enabled(bool enabled);
bool tracing_enabled();

// Microseconds since the recorder's epoch (process start), the `ts` clock.
double trace_now_us();

// Append one complete event. `cat` groups events in the viewer ("synth",
// "pool", ...). args_json, when non-empty, must be a serialized JSON object
// and is embedded verbatim as the event's "args".
void trace_complete_event(std::string name, const char* cat, double ts_us, double dur_us,
                          std::string args_json = {});

// Append an instant event (ph="i"), a zero-duration marker.
void trace_instant_event(std::string name, const char* cat, std::string args_json = {});

// Drop all recorded events (tests; CLI between setup and the measured run).
void clear_trace_events();

std::size_t trace_event_count();

// Serialize as {"traceEvents": [...]} — the envelope both chrome://tracing
// and Perfetto accept.
std::string trace_events_json();

// Write trace_events_json() to `path`. False on I/O failure.
bool write_trace_json(const std::string& path);

// RAII complete-event span. Arms itself only if tracing was enabled at
// construction; records on destruction.
class TraceSpan {
 public:
  TraceSpan(std::string name, const char* cat);
  // With a pre-serialized JSON args object attached to the event.
  TraceSpan(std::string name, const char* cat, std::string args_json);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  std::string args_json_;
  const char* cat_;
  double start_us_;
  bool armed_;
};

}  // namespace abg::obs
