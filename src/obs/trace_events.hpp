// Chrome trace-event recorder (chrome://tracing / Perfetto "JSON trace
// format", complete events, ph="X"). Disabled by default: a disarmed
// TraceSpan costs one relaxed atomic load, so instrumentation can live
// permanently on the refinement loop and thread pool.
//
//   obs::set_tracing_enabled(true);
//   { obs::TraceSpan span("score bucket reno", "synth"); ... }
//   obs::write_trace_json("t.json");   // open in ui.perfetto.dev
//
// Events carry a lane (Perfetto pid): lane 0 / pid 1 is the process lane,
// and obs::register_lane() (span.hpp) allocates additional named lanes so a
// batch run renders one flame track per Engine job. The exporter synthesizes
// process_name metadata events for every registered lane.
#pragma once

#include <cstdint>
#include <string>

#include "obs/span.hpp"

namespace abg::obs {

// TraceSpan predates Span; it is the same type. New code should say Span.
using TraceSpan = Span;

// Arm/disarm span recording process-wide. Spans already open keep the state
// they saw at construction.
void set_tracing_enabled(bool enabled);
bool tracing_enabled();

// Microseconds since the recorder's epoch (process start), the `ts` clock.
double trace_now_us();

// Append one complete event on the calling thread's current lane. `cat`
// groups events in the viewer ("synth", "pool", ...). args_json, when
// non-empty, must be a serialized JSON object and is embedded verbatim as
// the event's "args".
void trace_complete_event(std::string name, const char* cat, double ts_us, double dur_us,
                          std::string args_json = {});

// Append one complete event on an explicit lane (0 = process lane). This is
// what Span uses; prefer Span unless you are bridging foreign timing data.
void trace_complete_event_on(std::uint32_t lane, std::string name, const char* cat,
                             double ts_us, double dur_us, std::string args_json = {});

// Append an instant event (ph="i"), a zero-duration marker, on the calling
// thread's current lane.
void trace_instant_event(std::string name, const char* cat, std::string args_json = {});

// Append a counter event (ph="C") on the calling thread's current lane.
// args_json must be a serialized JSON object mapping series name -> numeric
// value; Perfetto renders one stacked counter track named `name` per lane.
void trace_counter_event(std::string name, const char* cat, std::string args_json);

// Drop all recorded events and registered lane names (tests; CLI between
// setup and the measured run). Lane pids are never reused across a clear, so
// a lane id handed out earlier stays valid — its events land on the same
// (now unnamed) lane rather than aliasing a lane registered later.
void clear_trace_events();

std::size_t trace_event_count();

// Serialize as {"traceEvents": [...]} — the envelope both chrome://tracing
// and Perfetto accept.
std::string trace_events_json();

// Write trace_events_json() to `path`. False on I/O failure.
bool write_trace_json(const std::string& path);

}  // namespace abg::obs
