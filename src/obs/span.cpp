#include "obs/span.hpp"

#include <atomic>
#include <utility>

#include "obs/trace_events.hpp"

namespace abg::obs {

namespace {

thread_local SpanContext t_ctx;

// Process-wide span ids; 0 is reserved for "no span".
std::atomic<std::uint64_t> g_next_span{1};

}  // namespace

SpanContext current_context() { return t_ctx; }

ContextScope::ContextScope(SpanContext ctx) : prev_(t_ctx) { t_ctx = ctx; }

ContextScope::~ContextScope() { t_ctx = prev_; }

Span::Span(std::string name, const char* cat) : Span(std::move(name), cat, std::string{}) {}

Span::Span(std::string name, const char* cat, std::string args_json)
    : name_(std::move(name)),
      args_json_(std::move(args_json)),
      cat_(cat),
      armed_(tracing_enabled()) {
  if (!armed_) return;
  const SpanContext enclosing = t_ctx;
  lane_ = enclosing.lane;
  parent_ = enclosing.span;
  id_ = g_next_span.fetch_add(1, std::memory_order_relaxed);
  t_ctx = SpanContext{lane_, id_};
  start_us_ = trace_now_us();
}

Span::~Span() {
  if (!armed_) return;
  t_ctx = SpanContext{lane_, parent_};
  // Merge {"span":id,"parent":id} with any user args into one object.
  std::string args = "{\"span\":" + std::to_string(id_) +
                     ",\"parent\":" + std::to_string(parent_);
  if (args_json_.size() > 2) {  // non-empty object: splice past its '{'
    args += ',';
    args.append(args_json_, 1, std::string::npos);
  } else {
    args += '}';
  }
  trace_complete_event_on(lane_, std::move(name_), cat_, start_us_,
                          trace_now_us() - start_us_, std::move(args));
}

}  // namespace abg::obs
