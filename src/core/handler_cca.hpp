// HandlerCca: run a synthesized expression as an *executable CCA*. This
// closes the reverse-engineering loop — after Abagnale recovers a handler
// from traces, wrapping it here lets the simulator answer the questions the
// paper motivates (§2.1): utilization, fairness against incumbents,
// burstiness. The ack handler is the synthesized cwnd-on-ack expression;
// the loss handler defaults to multiplicative halving or can be a second
// synthesized expression (synth::synthesize_loss_handler).
#pragma once

#include "cca/cca.hpp"
#include "dsl/expr.hpp"

namespace abg::core {

class HandlerCca final : public cca::CcaInterface {
 public:
  // `ack_handler` must be hole-free. `loss_handler` may be null: the default
  // response is cwnd/2 (Reno-style), the common case for classically
  // designed CCAs.
  explicit HandlerCca(dsl::ExprPtr ack_handler, dsl::ExprPtr loss_handler = nullptr,
                      std::string name = "synthesized");

  std::string name() const override { return name_; }
  void init(double mss, double initial_cwnd) override;
  double on_ack(const cca::Signals& sig) override;
  double on_loss(const cca::Signals& sig) override;

 private:
  double clamp(double next) const;

  dsl::ExprPtr ack_handler_;
  dsl::ExprPtr loss_handler_;  // may be null
  std::string name_;
  double mss_ = 1448.0;
  double cwnd_ = 10 * 1448.0;
};

}  // namespace abg::core
