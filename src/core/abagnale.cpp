#include "core/abagnale.hpp"

#include <algorithm>
#include <cmath>

#include "dsl/known_handlers.hpp"
#include "util/log.hpp"

namespace abg::core {

util::Status PipelineOptions::validate() const {
  auto bad = [](const std::string& msg) {
    return util::Status(util::StatusCode::kInvalidArgument, msg);
  };
  if (auto st = synth.validate(); !st.is_ok()) return st;
  if (min_segment_samples < 1) return bad("min_segment_samples must be >= 1");
  if (std::isnan(warmup_s) || warmup_s < 0.0) return bad("warmup_s must be finite and >= 0");
  if (dsl_override) {
    const auto names = dsl::curated_dsl_names();
    if (std::find(names.begin(), names.end(), *dsl_override) == names.end()) {
      return bad("unknown dsl_override '" + *dsl_override + "'");
    }
  }
  return util::Status::ok();
}

std::string PipelineResult::handler_string() const {
  return found() ? dsl::to_string(*synthesis.best.handler) : "<none>";
}

std::string dsl_for_classification(const classify::Classification& c) {
  auto hint_for = [](const std::string& cca) -> std::optional<std::string> {
    for (const auto& k : dsl::all_known_handlers()) {
      if (k.cca == cca) return k.dsl_hint;
    }
    return std::nullopt;
  };
  if (!c.is_unknown()) {
    if (auto h = hint_for(c.label)) return *h;
  }
  for (const auto& close : c.closest) {
    if (auto h = hint_for(close)) return *h;
  }
  return "vegas";
}

Abagnale::Abagnale(PipelineOptions opts) : opts_(std::move(opts)) {}

PipelineResult Abagnale::run_with_dsl(const std::vector<trace::Trace>& traces,
                                      const std::string& dsl_name) const {
  PipelineResult result;
  result.dsl_name = dsl_name;
  if (auto st = opts_.validate(); !st.is_ok()) {
    result.synthesis.status = st.with_context("PipelineOptions");
    return result;
  }
  std::vector<trace::Trace> steady;
  steady.reserve(traces.size());
  for (const auto& t : traces) steady.push_back(trace::trim_warmup(t, opts_.warmup_s));
  const auto segments =
      trace::segment_all(steady, opts_.min_segment_samples, opts_.skip_first_segment);
  result.segments_total = segments.size();
  ABG_INFO("synthesizing in DSL '%s' over %zu segments from %zu traces", dsl_name.c_str(),
           segments.size(), traces.size());
  result.synthesis = synth::synthesize(dsl::dsl_by_name(dsl_name), segments, opts_.synth);
  return result;
}

PipelineResult Abagnale::run(const std::vector<trace::Trace>& traces) const {
  if (auto st = opts_.validate(); !st.is_ok()) {
    PipelineResult result;
    result.synthesis.status = st.with_context("PipelineOptions");
    return result;
  }
  if (opts_.dsl_override) {
    return run_with_dsl(traces, *opts_.dsl_override);
  }
  classify::Classifier classifier(opts_.classifier);
  auto classification = classifier.classify(traces);
  const std::string dsl_name = dsl_for_classification(classification);
  ABG_INFO("classifier: label=%s -> DSL '%s'", classification.label.c_str(), dsl_name.c_str());
  PipelineResult result = run_with_dsl(traces, dsl_name);
  result.classification = std::move(classification);
  return result;
}

}  // namespace abg::core
