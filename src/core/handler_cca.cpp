#include "core/handler_cca.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsl/eval.hpp"
#include "obs/registry.hpp"

namespace abg::core {

HandlerCca::HandlerCca(dsl::ExprPtr ack_handler, dsl::ExprPtr loss_handler, std::string name)
    : ack_handler_(std::move(ack_handler)),
      loss_handler_(std::move(loss_handler)),
      name_(std::move(name)) {
  if (!ack_handler_) throw std::invalid_argument("HandlerCca needs an ack handler");
  if (dsl::hole_count(*ack_handler_) > 0 ||
      (loss_handler_ && dsl::hole_count(*loss_handler_) > 0)) {
    throw std::invalid_argument("HandlerCca handlers must be hole-free (fill_holes first)");
  }
}

void HandlerCca::init(double mss, double initial_cwnd) {
  mss_ = mss;
  cwnd_ = initial_cwnd;
}

double HandlerCca::clamp(double next) const {
  if (!std::isfinite(next)) {
    // Hold on numeric trouble, but count it: a synthesized handler that
    // routinely produces NaN/inf is suspect even though the hold masks it.
    static auto& c_nonfinite = obs::counter("synth.nonfinite_cwnd");
    c_nonfinite.add();
    return cwnd_;
  }
  return std::clamp(next, 2.0 * mss_, 1e7 * mss_);
}

double HandlerCca::on_ack(const cca::Signals& sig) {
  cca::Signals s = sig;
  s.cwnd = cwnd_;  // the handler drives its own window state
  cwnd_ = clamp(dsl::eval(*ack_handler_, s));
  return cwnd_;
}

double HandlerCca::on_loss(const cca::Signals& sig) {
  if (loss_handler_) {
    cca::Signals s = sig;
    s.cwnd = cwnd_;
    cwnd_ = clamp(dsl::eval(*loss_handler_, s));
  } else {
    cwnd_ = clamp(cwnd_ / 2.0);
  }
  return cwnd_;
}

}  // namespace abg::core
