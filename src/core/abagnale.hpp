// The Abagnale pipeline façade (Figure 1): packet traces -> CCA classifier
// -> sub-DSL selection -> trace segmentation + diversity sampling ->
// bucketized, SMT-enumerated, distance-guided refinement loop -> the
// simplest handler expression whose synthesized trace best matches the
// observations.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "classify/classifier.hpp"
#include "synth/refinement.hpp"
#include "trace/trace.hpp"
#include "util/status.hpp"

namespace abg::core {

struct PipelineOptions {
  synth::SynthesisOptions synth;
  classify::ClassifierOptions classifier;
  // Segments shorter than this many ACK samples are dropped (§3.2).
  std::size_t min_segment_samples = 20;
  // Drop each trace's first `warmup_s` seconds (connection ramp-up): the
  // cwnd-ack handler model targets steady-state behaviour.
  double warmup_s = 2.0;
  // Additionally drop each trace's pre-first-loss segment.
  bool skip_first_segment = false;
  // Skip classification and force a curated DSL by name.
  std::optional<std::string> dsl_override;

  // Eager validation of the whole option tree (synth options included).
  // Returns kInvalidArgument naming the first bad field; called by run()/
  // run_with_dsl() and by every abg::api entry point before any work starts.
  util::Status validate() const;
};

struct PipelineResult {
  classify::Classification classification;  // empty label if overridden
  std::string dsl_name;                     // sub-DSL the search ran in
  std::size_t segments_total = 0;           // segment pool size
  synth::SynthesisResult synthesis;

  // Convenience accessors.
  bool found() const { return synthesis.best.valid(); }
  std::string handler_string() const;
  double distance() const { return synthesis.best.distance; }
};

// Map a classifier outcome to the curated sub-DSL to search (§3.3): a
// definitive label uses that CCA family's DSL; an Unknown result falls back
// to the closest known CCA's family; no hint at all defaults to the Vegas
// DSL (the broadest curated space).
std::string dsl_for_classification(const classify::Classification& c);

class Abagnale {
 public:
  explicit Abagnale(PipelineOptions opts = {});

  // Full pipeline over a set of connections collected from one CCA.
  PipelineResult run(const std::vector<trace::Trace>& traces) const;

  // Synthesis only, with an explicit DSL (used by the §6.3 DSL-impact
  // experiments and by callers that already know the family).
  PipelineResult run_with_dsl(const std::vector<trace::Trace>& traces,
                              const std::string& dsl_name) const;

  const PipelineOptions& options() const { return opts_; }

 private:
  PipelineOptions opts_;
};

}  // namespace abg::core
