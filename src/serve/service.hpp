// The crash-durable synthesis service (ISSUE 8 tentpole). One Service owns
// the persistent JobStore (WAL + per-job spec/result/checkpoint files under
// --state-dir), the bounded PendingQueue, the per-client token-bucket
// AdmissionController, and an api::Engine; mount() attaches its HTTP API to
// an obs::StatusServer:
//
//   POST   /jobs               submit (JSON job-spec body, same keys as a
//                              batch-manifest entry, or a raw trace CSV) ->
//                              202 {"id":"j-3","state":"queued"};
//                              400 bad spec, 429 rate-limited, 503 queue
//                              full or draining (both with Retry-After)
//   GET    /jobs               durable job table + queue/drain status
//   GET    /jobs/<id>          one job's state
//   GET    /jobs/<id>/result   result JSON once terminal (202 while running)
//   DELETE /jobs/<id>          cancel (queued or running)
//
// Durability contract: every acknowledged state transition is an fsync'd WAL
// record, and bulky payloads (spec, result) hit disk durably *before* the
// record naming them. Running jobs checkpoint each refinement iteration into
// the state dir via the synth/checkpoint machinery, so kill -9 at any point
// loses at most the in-flight iteration: restart with the same --state-dir
// requeues every non-terminal job ("serve.jobs_recovered" counts them) and
// resumes from the last checkpoint bit-exactly.
//
// Job deadlines ride the existing per-run watchdog: a spec's timeout_s is
// enforced by synth's DeadlineWatchdog, and an expired job lands as a
// *done* result tagged "partial": true carrying the best-so-far handler.
//
// Graceful drain (SIGTERM in the daemon): stop admitting, park queued and
// running jobs with non-terminal "suspended" records (running ones are
// cooperatively cancelled and keep their checkpoints), flush the WAL, and
// return — the next start on the same state dir picks them all back up.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "api/engine.hpp"
#include "dist/coordinator.hpp"
#include "obs/status_server.hpp"
#include "serve/admission.hpp"
#include "serve/job_store.hpp"
#include "serve/queue.hpp"
#include "util/cancellation.hpp"
#include "util/status.hpp"

namespace abg::serve {

struct ServiceOptions {
  std::string state_dir;
  std::size_t queue_depth = 16;   // pending (not-yet-running) jobs held
  AdmissionOptions admission;
  api::EngineOptions engine;
  // >0 clamps every job's timeout_s (a service should not let one client
  // park a driver thread for an unbounded run).
  double max_job_timeout_s = 0.0;
  // Non-empty dist.workers turns on distributed dispatch: jobs that
  // dist::spec_is_distributable accepts run through a dist::Coordinator over
  // this worker fleet instead of the local engine (everything else — queueing,
  // WAL records, checkpoints, cancel — behaves identically).
  dist::CoordinatorOptions dist;
};

class Service {
 public:
  explicit Service(ServiceOptions opts);
  ~Service();  // drains if still running

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Lock the state dir (kInvalidArgument when another daemon holds it),
  // recover the job table from the WAL, requeue non-terminal jobs, start
  // the engine and dispatcher. Idempotent-hostile: call once.
  util::Status start();

  // Register the /jobs HTTP surface on `server`. Call between start() and
  // server.start().
  void mount(obs::StatusServer& server);

  // Graceful drain: see header comment. Blocks until everything is parked
  // and the WAL is flushed. Safe to call twice.
  void drain_and_stop();

  // Crash simulation for the chaos suite: tear down *without* writing any
  // terminal or suspended records — from the WAL's point of view this is
  // kill -9 (running jobs stay "running", queued stay "queued"), except the
  // process survives to build a second Service on the same state dir.
  void abandon_for_test();

  // Introspection (used by the daemon and tests).
  std::size_t queue_size() const { return pending_.size(); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }
  std::uint64_t jobs_recovered() const { return jobs_recovered_; }
  JobStore& store() { return store_; }

  // HTTP handlers (public so tests can drive them without sockets).
  obs::HttpResponse handle_submit(const obs::HttpRequest& req);
  obs::HttpResponse handle_get(const obs::HttpRequest& req);
  obs::HttpResponse handle_delete(const obs::HttpRequest& req);

 private:
  void dispatcher_loop();
  void dispatch_one(const std::string& id);
  void dispatch_distributed(const std::string& id, api::JobSpec spec);
  void on_job_complete(const std::string& id, const api::JobResult& r);
  std::string jobs_list_json() const;

  ServiceOptions opts_;
  JobStore store_;
  PendingQueue pending_;
  AdmissionController admission_;
  std::unique_ptr<api::Engine> engine_;
  std::unique_ptr<dist::Coordinator> coordinator_;

  std::thread dispatcher_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> abandoned_{false};
  bool started_ = false;
  bool stopped_ = false;
  std::uint64_t jobs_recovered_ = 0;
  int lock_fd_ = -1;

  mutable std::mutex mu_;            // guards the fields below
  std::condition_variable slot_cv_;  // a driver slot freed / draining began
  std::size_t active_jobs_ = 0;
  std::uint64_t next_id_ = 1;
  std::map<std::string, api::JobHandle> handles_;  // running jobs (local engine)
  // Jobs running on the worker fleet: per-job cancellation tokens (DELETE
  // fires them) and the coordinator threads to join at drain.
  std::map<std::string, std::shared_ptr<util::CancellationToken>> dist_tokens_;
  std::vector<std::thread> dist_threads_;
  std::set<std::string> cancel_requested_;  // cancel raced dispatch
};

}  // namespace abg::serve
