#include "serve/service.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "api/manifest.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "util/durable_io.hpp"
#include "util/log.hpp"
#include "util/retry.hpp"

namespace abg::serve {

namespace {

// All error bodies use the one /v1 envelope (obs::error_response). `code` is
// the machine-readable identifier: a util::status_code_name for
// status-derived errors, or a service-level word (rate_limited/queue_full/
// draining/not_found) for admission outcomes.
obs::HttpResponse json_error(int http_code, const std::string& code, const std::string& msg) {
  return obs::error_response(http_code, code, msg);
}

// Status-derived rejection: the envelope code is the taxonomy name
// ("parse-error", "invalid-argument", ...), so clients can branch without
// string-matching the message.
obs::HttpResponse status_error(int http_code, const util::Status& st) {
  return obs::error_response(http_code, util::status_code_name(st.code()), st.to_string());
}

obs::HttpResponse shed(int http_code, const std::string& code, const std::string& msg,
                       double retry_after_s) {
  return obs::error_response(http_code, code, msg, std::max(1.0, retry_after_s));
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// The result document a client fetches from GET /jobs/<id>/result: the
// batch-report per-job object plus the service's id and the partial tag
// (true when a deadline or cancellation preempted the search and the
// payload is best-so-far rather than a completed run).
std::string job_result_json(const std::string& id, const api::JobResult& r,
                            bool partial) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("id");
  w.value(id);
  w.key("partial");
  w.value(partial);
  w.key("kind");
  w.value(r.kind == api::JobSpec::Kind::kMister880 ? "mister880" : "pipeline");
  w.key("status");
  w.value(r.status.to_string());
  w.key("exit_class");
  w.value(static_cast<std::int64_t>(r.exit_class()));
  w.key("found");
  w.value(r.found());
  if (r.kind == api::JobSpec::Kind::kPipeline && r.found()) {
    w.key("dsl");
    w.value(r.pipeline.dsl_name);
    w.key("handler");
    w.value(r.pipeline.handler_string());
    w.key("distance");
    w.value(r.pipeline.distance());
  }
  w.key("segments_total");
  w.value(static_cast<std::uint64_t>(r.segments_total));
  w.key("cache_hits");
  w.value(r.cache_hits);
  w.key("cache_misses");
  w.value(r.cache_misses);
  w.key("seconds");
  w.value(r.seconds);
  w.key("convergence");
  w.begin_array();
  for (const auto& p : r.convergence) {
    w.begin_object();
    w.key("iteration");
    w.value(static_cast<std::int64_t>(p.iteration));
    w.key("best_distance");
    w.value(p.best_distance);
    w.key("wall_ms");
    w.value(p.wall_ms);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

// "/jobs/j-3/result" -> id "j-3", rest "/result". True when the path has an
// id component at all.
bool split_job_path(const std::string& path, std::string* id, std::string* rest) {
  if (path.rfind("/jobs/", 0) != 0) return false;
  const std::string tail = path.substr(6);
  const std::size_t slash = tail.find('/');
  *id = slash == std::string::npos ? tail : tail.substr(0, slash);
  *rest = slash == std::string::npos ? std::string() : tail.substr(slash);
  return !id->empty();
}

}  // namespace

Service::Service(ServiceOptions opts)
    : opts_(std::move(opts)),
      pending_(opts_.queue_depth),
      admission_(opts_.admission) {}

Service::~Service() {
  drain_and_stop();
  if (lock_fd_ >= 0) {
    ::close(lock_fd_);
    lock_fd_ = -1;
  }
}

util::Status Service::start() {
  if (started_) {
    return util::Status(util::StatusCode::kInvalidArgument, "service already started");
  }
  if (opts_.state_dir.empty()) {
    return util::Status(util::StatusCode::kInvalidArgument, "state_dir required");
  }
  if (::mkdir(opts_.state_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return util::Status(util::StatusCode::kIoError,
                        "mkdir " + opts_.state_dir + ": " + std::strerror(errno));
  }
  // One daemon per state dir: the WAL is single-writer by construction and
  // flock makes that a hard guarantee rather than a convention.
  const std::string lock_path = opts_.state_dir + "/lock";
  lock_fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (lock_fd_ < 0) {
    return util::Status(util::StatusCode::kIoError,
                        "open " + lock_path + ": " + std::strerror(errno));
  }
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    ::close(lock_fd_);
    lock_fd_ = -1;
    return util::Status(util::StatusCode::kInvalidArgument,
                        "state dir " + opts_.state_dir +
                            " is locked by another serve process");
  }

  if (auto st = store_.open(opts_.state_dir); !st.is_ok()) return st;

  // Eager counter creation: a freshly started daemon must expose these at 0
  // so report gates (--require serve.jobs_recovered=1) can bind either way.
  static auto& c_recovered = obs::counter("serve.jobs_recovered");
  obs::counter("serve.submitted");
  obs::counter("serve.shed_queue_full");
  obs::counter("serve.jobs_done");
  obs::counter("serve.jobs_failed");
  obs::counter("serve.jobs_cancelled");
  obs::counter("serve.jobs_suspended");

  // Restart recovery: every non-terminal job goes back on the dispatch
  // queue. Whether it *resumes* (vs restarts) is decided at dispatch from
  // the checkpoint file alone — WAL progress records are advisory.
  for (const auto& rec : store_.records()) {
    if (job_phase_terminal(rec.phase)) continue;
    pending_.push_recovered(rec.id);
    c_recovered.add();
    ++jobs_recovered_;
    ABG_INFO("recovered job %s (%s%s)", rec.id.c_str(), job_phase_name(rec.phase),
             job_checkpoint_exists(store_, rec.id) ? ", has checkpoint" : "");
  }
  {
    std::lock_guard lk(mu_);
    next_id_ = store_.next_job_number();
  }

  engine_ = std::make_unique<api::Engine>(opts_.engine);
  if (!opts_.dist.workers.empty()) {
    coordinator_ = std::make_unique<dist::Coordinator>(opts_.dist);
    ABG_INFO("distributed dispatch: %zu workers attached", opts_.dist.workers.size());
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
  started_ = true;
  return util::Status::ok();
}

void Service::mount(obs::StatusServer& server) {
  server.route("POST", "/jobs",
               [this](const obs::HttpRequest& req) { return handle_submit(req); });
  server.route("GET", "/jobs",
               [this](const obs::HttpRequest& req) { return handle_get(req); });
  server.route("DELETE", "/jobs",
               [this](const obs::HttpRequest& req) { return handle_delete(req); });
}

obs::HttpResponse Service::handle_submit(const obs::HttpRequest& req) {
  if (req.path != "/jobs") return json_error(404, "not_found", "POST goes to /jobs");
  if (draining_.load(std::memory_order_acquire)) {
    return shed(503, "draining", "draining: not accepting new jobs", 5.0);
  }
  std::string client = req.header("x-abg-client");
  if (client.empty()) client = "anonymous";

  const AdmissionDecision d = admission_.admit(client);
  if (!d.admitted) {
    return shed(429, "rate_limited", "rate limit for client '" + client + "'",
                d.retry_after_s);
  }

  const std::size_t backlog = pending_.size();
  if (backlog >= pending_.capacity()) {
    static auto& c_shed = obs::counter("serve.shed_queue_full");
    c_shed.add();
    return shed(503, "queue_full",
                "queue full (" + std::to_string(backlog) + " pending)", 2.0);
  }

  if (req.body.empty()) return json_error(400, "bad_request", "empty body");

  std::string id;
  {
    std::lock_guard lk(mu_);
    id = "j-" + std::to_string(next_id_++);
  }

  // Body is either a job-spec JSON object (same keys as a batch-manifest
  // entry) or a raw trace CSV, which becomes a durably-stored trace file
  // plus a default spec pointing at it.
  std::string spec_json;
  const std::size_t first = req.body.find_first_not_of(" \t\r\n");
  if (first != std::string::npos && req.body[first] == '{') {
    spec_json = req.body;
  } else {
    if (auto st = util::atomic_write_file(store_.trace_path(id), req.body,
                                          /*durable=*/true);
        !st.is_ok()) {
      return status_error(500, st);
    }
    obs::JsonWriter w;
    w.begin_object();
    w.key("traces");
    w.begin_array();
    w.value(store_.trace_path(id));
    w.end_array();
    w.end_object();
    spec_json = w.take();
  }

  // Admission-time validation (ISSUE 8): a spec that cannot run is rejected
  // here with the reason, never enqueued to fail later.
  auto parsed = api::parse_job_spec(spec_json);
  if (!parsed.ok()) return status_error(400, parsed.status());
  if (auto st = parsed->validate(); !st.is_ok()) return status_error(400, st);

  if (auto st = store_.record_submit(id, client, spec_json); !st.is_ok()) {
    return status_error(500, st);
  }
  if (!pending_.try_push(id)) {
    // Raced to full between the check above and here; keep the durable state
    // honest about what happened to the job.
    (void)store_.record_terminal(id, JobPhase::kFailed, "queue full at enqueue", "");
    static auto& c_shed = obs::counter("serve.shed_queue_full");
    c_shed.add();
    return shed(503, "queue_full", "queue full", 2.0);
  }
  static auto& c_submitted = obs::counter("serve.submitted");
  c_submitted.add();

  obs::JsonWriter w;
  w.begin_object();
  w.key("id");
  w.value(id);
  w.key("state");
  w.value("queued");
  w.end_object();
  return obs::HttpResponse::json(202, w.take());
}

obs::HttpResponse Service::handle_get(const obs::HttpRequest& req) {
  if (req.path == "/jobs" || req.path == "/jobs/") {
    return obs::HttpResponse::json(200, jobs_list_json());
  }
  std::string id, rest;
  if (!split_job_path(req.path, &id, &rest)) return json_error(404, "not_found", "not found");
  JobRecord rec;
  if (!store_.lookup(id, &rec)) return json_error(404, "not_found", "unknown job " + id);

  if (rest == "/result") {
    if (!job_phase_terminal(rec.phase)) {
      obs::JsonWriter w;
      w.begin_object();
      w.key("id");
      w.value(id);
      w.key("state");
      w.value(job_phase_name(rec.phase));
      w.end_object();
      return obs::HttpResponse::json(202, w.take());
    }
    std::string result;
    if (read_file(store_.result_path(id), &result)) {
      return obs::HttpResponse::json(200, result);
    }
    // Terminal without a result file: cancelled before it ever ran, or a
    // failure that preceded synthesis.
    obs::JsonWriter w;
    w.begin_object();
    w.key("id");
    w.value(id);
    w.key("state");
    w.value(job_phase_name(rec.phase));
    if (!rec.error.empty()) {
      w.key("error");
      w.value(rec.error);
    }
    w.end_object();
    return obs::HttpResponse::json(200, w.take());
  }
  if (!rest.empty()) return json_error(404, "not_found", "not found");

  obs::JsonWriter w;
  w.begin_object();
  w.key("id");
  w.value(id);
  w.key("client");
  w.value(rec.client);
  w.key("state");
  w.value(job_phase_name(rec.phase));
  w.key("iterations");
  w.value(static_cast<std::int64_t>(rec.iterations));
  if (!rec.error.empty()) {
    w.key("error");
    w.value(rec.error);
  }
  w.end_object();
  return obs::HttpResponse::json(200, w.take());
}

obs::HttpResponse Service::handle_delete(const obs::HttpRequest& req) {
  std::string id, rest;
  if (!split_job_path(req.path, &id, &rest) || !rest.empty()) {
    return json_error(404, "not_found", "DELETE goes to /jobs/<id>");
  }
  JobRecord rec;
  if (!store_.lookup(id, &rec)) return json_error(404, "not_found", "unknown job " + id);
  if (job_phase_terminal(rec.phase)) {
    return json_error(409, "conflict", "job " + id + " already " + job_phase_name(rec.phase));
  }

  if (pending_.remove(id)) {
    static auto& c_cancelled = obs::counter("serve.jobs_cancelled");
    if (auto st = store_.record_terminal(id, JobPhase::kCancelled, "", "");
        !st.is_ok()) {
      return status_error(500, st);
    }
    c_cancelled.add();
    obs::JsonWriter w;
    w.begin_object();
    w.key("id");
    w.value(id);
    w.key("state");
    w.value("cancelled");
    w.end_object();
    return obs::HttpResponse::json(200, w.take());
  }

  api::JobHandle handle;
  std::shared_ptr<util::CancellationToken> dist_tok;
  bool running = false;
  {
    std::lock_guard lk(mu_);
    const auto it = handles_.find(id);
    const auto dit = dist_tokens_.find(id);
    if (it != handles_.end()) {
      handle = it->second;
      running = true;
    } else if (dit != dist_tokens_.end()) {
      dist_tok = dit->second;
      running = true;
    } else {
      // Between queue and engine (the dispatcher has it): flag it so the
      // dispatcher cancels right after submit.
      cancel_requested_.insert(id);
    }
  }
  if (dist_tok) {
    dist_tok->cancel();
  } else if (running) {
    handle.cancel();
  }

  obs::JsonWriter w;
  w.begin_object();
  w.key("id");
  w.value(id);
  w.key("state");
  w.value("cancelling");
  w.end_object();
  return obs::HttpResponse::json(202, w.take());
}

std::string Service::jobs_list_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("draining");
  w.value(draining_.load(std::memory_order_acquire));
  w.key("queue_size");
  w.value(static_cast<std::uint64_t>(pending_.size()));
  w.key("queue_capacity");
  w.value(static_cast<std::uint64_t>(pending_.capacity()));
  w.key("jobs");
  w.begin_array();
  for (const auto& rec : store_.records()) {
    w.begin_object();
    w.key("id");
    w.value(rec.id);
    w.key("client");
    w.value(rec.client);
    w.key("state");
    w.value(job_phase_name(rec.phase));
    w.key("iterations");
    w.value(static_cast<std::int64_t>(rec.iterations));
    if (!rec.error.empty()) {
      w.key("error");
      w.value(rec.error);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

void Service::dispatcher_loop() {
  for (;;) {
    const auto id = pending_.pop_wait();
    if (!id) return;
    if (abandoned_.load(std::memory_order_acquire)) continue;
    if (draining_.load(std::memory_order_acquire)) {
      (void)store_.record_suspended(*id);
      continue;
    }
    {
      // Hold jobs service-side until the engine has a free driver, so
      // cancellation of a queued job stays a queue operation instead of
      // reaching into the engine's internal FIFO.
      std::unique_lock lk(mu_);
      slot_cv_.wait(lk, [&] {
        return active_jobs_ < engine_->options().max_concurrent_jobs ||
               draining_.load(std::memory_order_acquire) ||
               abandoned_.load(std::memory_order_acquire);
      });
    }
    if (abandoned_.load(std::memory_order_acquire)) continue;
    if (draining_.load(std::memory_order_acquire)) {
      (void)store_.record_suspended(*id);
      continue;
    }
    bool cancelled_early = false;
    {
      std::lock_guard lk(mu_);
      cancelled_early = cancel_requested_.erase(*id) > 0;
    }
    if (cancelled_early) {
      static auto& c_cancelled = obs::counter("serve.jobs_cancelled");
      (void)store_.record_terminal(*id, JobPhase::kCancelled, "", "");
      c_cancelled.add();
      continue;
    }
    dispatch_one(*id);
  }
}

void Service::dispatch_one(const std::string& id) {
  std::string spec_json;
  if (!read_file(store_.spec_path(id), &spec_json)) {
    (void)store_.record_terminal(id, JobPhase::kFailed,
                                 "spec file missing: " + store_.spec_path(id), "");
    return;
  }
  auto parsed = api::parse_job_spec(spec_json);
  if (!parsed.ok()) {
    (void)store_.record_terminal(id, JobPhase::kFailed, parsed.status().to_string(), "");
    return;
  }
  api::JobSpec spec = std::move(*parsed);
  spec.name = id;
  if (opts_.max_job_timeout_s > 0 &&
      !(spec.pipeline.synth.timeout_s <= opts_.max_job_timeout_s)) {
    spec.pipeline.synth.timeout_s = opts_.max_job_timeout_s;
  }
  // Checkpoint into the state dir every iteration; resume iff a checkpoint
  // survives from a previous life of this job. The checkpoint machinery
  // self-validates (pool fingerprint + seed), so a stale file from an edited
  // spec falls back to a fresh run rather than resuming wrongly.
  spec.with_checkpoint(store_.checkpoint_path(id),
                       /*resume=*/job_checkpoint_exists(store_, id));
  auto iters = std::make_shared<std::atomic<int>>(0);
  spec.with_iteration_callback([this, id, iters](const synth::IterationReport&) {
    const int n = iters->fetch_add(1, std::memory_order_relaxed) + 1;
    (void)store_.record_progress(id, n);
  });
  if (auto st = store_.record_running(id); !st.is_ok()) {
    ABG_WARN("job %s: running record failed: %s", id.c_str(), st.to_string().c_str());
  }
  if (coordinator_ && dist::spec_is_distributable(spec)) {
    dispatch_distributed(id, std::move(spec));
    return;
  }
  spec.with_completion_callback(
      [this, id](const api::JobResult& r) { on_job_complete(id, r); });
  {
    // Count the slot before submit: the driver may finish (and decrement)
    // before submit() even returns.
    std::lock_guard lk(mu_);
    ++active_jobs_;
  }
  auto handle = engine_->submit(std::move(spec));
  if (!handle.ok()) {
    {
      std::lock_guard lk(mu_);
      --active_jobs_;
    }
    slot_cv_.notify_all();
    static auto& c_failed = obs::counter("serve.jobs_failed");
    (void)store_.record_terminal(id, JobPhase::kFailed, handle.status().to_string(), "");
    c_failed.add();
    return;
  }
  bool cancel_now = false;
  {
    std::lock_guard lk(mu_);
    handles_[id] = *handle;
    cancel_now = cancel_requested_.erase(id) > 0;
  }
  if (cancel_now) handle->cancel();
}

// Distributed jobs hold no engine driver slot, but they still count against
// active_jobs_ so the concurrency gate and drain see them; their lifecycle
// (running record, terminal record, cancel) is byte-for-byte the local one.
void Service::dispatch_distributed(const std::string& id, api::JobSpec spec) {
  auto tok = std::make_shared<util::CancellationToken>();
  bool cancel_now = false;
  {
    std::lock_guard lk(mu_);
    ++active_jobs_;
    dist_tokens_[id] = tok;
    cancel_now = cancel_requested_.erase(id) > 0;
  }
  if (cancel_now) tok->cancel();
  std::thread th([this, id, tok, spec = std::move(spec)] {
    const api::JobResult r = coordinator_->run(spec, tok.get());
    {
      std::lock_guard lk(mu_);
      dist_tokens_.erase(id);
    }
    on_job_complete(id, r);
  });
  std::lock_guard lk(mu_);
  dist_threads_.push_back(std::move(th));
}

void Service::on_job_complete(const std::string& id, const api::JobResult& r) {
  if (!abandoned_.load(std::memory_order_acquire)) {
    const bool drain_park = draining_.load(std::memory_order_acquire) &&
                            r.status.code() == util::StatusCode::kCancelled;
    // Terminal records are worth a few retries: losing one means a finished
    // job reruns from its checkpoint after the next restart — correct but
    // wasteful — so transient I/O hiccups should not be allowed to decide.
    util::Retry retry({.max_attempts = 3, .initial_backoff_s = 0.01});
    if (drain_park) {
      static auto& c_suspended = obs::counter("serve.jobs_suspended");
      const auto st = retry.run([&] { return store_.record_suspended(id); });
      if (st.is_ok()) c_suspended.add();
    } else {
      JobPhase phase;
      bool partial = false;
      switch (r.status.code()) {
        case util::StatusCode::kOk:
          phase = JobPhase::kDone;
          break;
        case util::StatusCode::kTimeout:
          // Deadline expiry is a *result*, not a failure: the watchdog
          // preempted cooperatively and the payload is best-so-far.
          phase = JobPhase::kDone;
          partial = true;
          break;
        case util::StatusCode::kCancelled:
          phase = JobPhase::kCancelled;
          partial = true;
          break;
        default:
          phase = JobPhase::kFailed;
          break;
      }
      const std::string result = job_result_json(id, r, partial);
      const std::string error =
          phase == JobPhase::kFailed ? r.status.to_string() : std::string();
      const auto st =
          retry.run([&] { return store_.record_terminal(id, phase, error, result); });
      if (!st.is_ok()) {
        ABG_WARN("job %s: terminal record failed: %s", id.c_str(),
                 st.to_string().c_str());
      } else {
        static auto& c_done = obs::counter("serve.jobs_done");
        static auto& c_failed = obs::counter("serve.jobs_failed");
        static auto& c_cancelled = obs::counter("serve.jobs_cancelled");
        (phase == JobPhase::kDone ? c_done
         : phase == JobPhase::kFailed ? c_failed
                                      : c_cancelled)
            .add();
      }
    }
  }
  {
    std::lock_guard lk(mu_);
    if (active_jobs_ > 0) --active_jobs_;
    handles_.erase(id);
    cancel_requested_.erase(id);
  }
  slot_cv_.notify_all();
}

void Service::drain_and_stop() {
  if (!started_ || stopped_) return;
  ABG_INFO("draining: admissions closed, parking %zu queued + %zu running jobs",
           pending_.size(), [this] {
             std::lock_guard lk(mu_);
             return active_jobs_;
           }());
  draining_.store(true, std::memory_order_release);
  pending_.close();
  slot_cv_.notify_all();
  // Dispatcher first: it drains the remaining queued ids into "suspended"
  // records and exits. Only then tear down the engine, so the dispatcher can
  // never touch a dead engine pointer.
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    // Distributed jobs park the same way engine jobs do: cancel the
    // coordinator token, let its thread run on_job_complete (kCancelled
    // while draining -> a suspended record), then join.
    std::vector<std::thread> threads;
    {
      std::lock_guard lk(mu_);
      for (auto& [id, tok] : dist_tokens_) tok->cancel();
      threads.swap(dist_threads_);
    }
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
  }
  if (engine_) {
    engine_->cancel_all();
    engine_.reset();  // waits for drivers; running jobs park via on_complete
  }
  store_.close();  // WAL fsync'd per record; close releases the fd
  if (lock_fd_ >= 0) {
    ::close(lock_fd_);
    lock_fd_ = -1;
  }
  stopped_ = true;
}

void Service::abandon_for_test() {
  if (!started_ || stopped_) return;
  // Kill -9 semantics: no suspended/terminal records, no compaction — the
  // WAL freezes exactly as it was. Cancellation only speeds up the teardown;
  // because `abandoned_` is set first, on_job_complete records nothing.
  abandoned_.store(true, std::memory_order_release);
  pending_.close();
  slot_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    std::vector<std::thread> threads;
    {
      std::lock_guard lk(mu_);
      for (auto& [id, tok] : dist_tokens_) tok->cancel();
      threads.swap(dist_threads_);
    }
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
  }
  if (engine_) {
    engine_->cancel_all();
    engine_.reset();
  }
  store_.close();
  if (lock_fd_ >= 0) {
    ::close(lock_fd_);
    lock_fd_ = -1;
  }
  stopped_ = true;
}

}  // namespace abg::serve
