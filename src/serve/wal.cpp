#include "serve/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/registry.hpp"
#include "util/durable_io.hpp"
#include "util/fault_injection.hpp"
#include "util/log.hpp"

namespace abg::serve {

namespace {

util::Status io_error(const std::string& what) {
  return util::Status(util::StatusCode::kIoError, what + ": " + std::strerror(errno));
}

std::string format_record(const std::string& payload) {
  char cs[17];
  std::snprintf(cs, sizeof cs, "%016llx",
                static_cast<unsigned long long>(wal_checksum(payload)));
  return std::string(cs) + " " + payload + "\n";
}

// Parse one "<checksum> <payload>" line (newline already stripped). False on
// any malformation — the caller treats that as the start of the invalid tail.
bool parse_record(std::string_view line, std::string* payload) {
  if (line.size() < 18 || line[16] != ' ') return false;
  std::uint64_t want = 0;
  for (int i = 0; i < 16; ++i) {
    const char c = line[i];
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    want = (want << 4) | static_cast<std::uint64_t>(digit);
  }
  const std::string_view body = line.substr(17);
  if (wal_checksum(body) != want) return false;
  payload->assign(body);
  return true;
}

// Shared scan: fills *records with every valid record and returns the byte
// length of the valid prefix.
std::size_t scan(const std::string& content, std::vector<std::string>* records) {
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) break;  // torn final record: no newline
    std::string payload;
    if (!parse_record(std::string_view(content).substr(pos, nl - pos), &payload)) break;
    records->push_back(std::move(payload));
    pos = nl + 1;
  }
  return pos;
}

}  // namespace

std::uint64_t wal_checksum(std::string_view payload) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  for (const char c : payload) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

Wal::~Wal() { close(); }

util::Status Wal::open(const std::string& path, std::vector<std::string>* records) {
  close();
  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      content = ss.str();
    }
  }
  records->clear();
  const std::size_t valid = scan(content, records);
  if (valid < content.size()) {
    static auto& c_torn = obs::counter("serve.wal_torn_tail");
    c_torn.add();
    ABG_WARN("wal %s: dropping %zu-byte torn tail after %zu valid records",
             path.c_str(), content.size() - valid, records->size());
  }

  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) return io_error("open wal " + path);
  if (::ftruncate(fd_, static_cast<off_t>(valid)) != 0) {
    const auto st = io_error("truncate wal " + path);
    close();
    return st;
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    const auto st = io_error("seek wal " + path);
    close();
    return st;
  }
  path_ = path;
  // Make the (possibly just-created, possibly just-truncated) log durable
  // before acknowledging recovery.
  if (valid < content.size() || content.empty()) {
    if (auto st = sync(); !st.is_ok()) return st;
  }
  return util::Status::ok();
}

util::Status Wal::append(const std::string& payload, bool durable) {
  if (fd_ < 0) return util::Status(util::StatusCode::kIoError, "wal not open");
  if (payload.find('\n') != std::string::npos) {
    return util::Status(util::StatusCode::kInvalidArgument,
                        "wal payload must be single-line");
  }
  if (util::fault::io_fail("serve.wal_append")) {
    return util::Status(util::StatusCode::kIoError,
                        "injected I/O fault appending to " + path_);
  }
  static auto& c_appends = obs::counter("serve.wal_appends");
  const std::string rec = format_record(payload);
  std::size_t off = 0;
  while (off < rec.size()) {
    const ssize_t n = ::write(fd_, rec.data() + off, rec.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error("append to wal " + path_);
    }
    off += static_cast<std::size_t>(n);
  }
  c_appends.add();
  if (durable && ::fsync(fd_) != 0) return io_error("fsync wal " + path_);
  return util::Status::ok();
}

util::Status Wal::sync() {
  if (fd_ < 0) return util::Status::ok();
  if (::fsync(fd_) != 0) return io_error("fsync wal " + path_);
  return util::Status::ok();
}

void Wal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
}

util::Result<std::vector<std::string>> Wal::replay_file(const std::string& path,
                                                        std::size_t* torn_tail_bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status(util::StatusCode::kIoError, "cannot open wal " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  std::vector<std::string> records;
  const std::size_t valid = scan(content, &records);
  if (torn_tail_bytes != nullptr) *torn_tail_bytes = content.size() - valid;
  return records;
}

}  // namespace abg::serve
