// Persistent job table for the synthesis service (ISSUE 8): every job's
// lifecycle is a chain of WAL records, with bulky payloads (spec JSON,
// result JSON, synthesis checkpoints) in per-job files the records name.
//
// Record grammar (tab-separated, single line):
//
//   submit \t <id> \t <client>       spec at spec_path(id), written durably
//                                    BEFORE this record — a submit record
//                                    always has a readable spec
//   running \t <id>
//   progress \t <id> \t <iter>       advisory (non-fsync'd); recovery never
//                                    trusts it — the checkpoint file is the
//                                    only authority on resumable progress
//   suspended \t <id>                graceful drain parked the job (non-
//                                    terminal: recovery requeues it)
//   done \t <id>                     result at result_path(id), durable
//   failed \t <id> \t <message>      before the record (same as submit)
//   cancelled \t <id>
//
// Recovery folds the chain per id: the last record wins, and any job whose
// final state is non-terminal (queued/running/suspended) is handed back to
// the service for requeueing — with resume=true iff checkpoint_path(id)
// exists on disk. After recovery the store compacts: live jobs keep their
// submit(+running) chain, terminal jobs collapse to submit+terminal, and the
// rewritten log replaces the old one via durable tmp+rename.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/wal.hpp"
#include "util/result.hpp"
#include "util/status.hpp"

namespace abg::serve {

enum class JobPhase { kQueued, kRunning, kSuspended, kDone, kFailed, kCancelled };

const char* job_phase_name(JobPhase p);  // "queued" / ... / "cancelled"
bool job_phase_terminal(JobPhase p);

class JobStore;
// True when a synthesis checkpoint file exists for `id` — the sole authority
// recovery consults when deciding to resume rather than restart a job.
bool job_checkpoint_exists(const JobStore& store, const std::string& id);

struct JobRecord {
  std::string id;       // "j-<n>", assigned by the service
  std::string client;   // submitting client id (admission key)
  JobPhase phase = JobPhase::kQueued;
  int iterations = 0;   // advisory, from progress records
  std::string error;    // terminal failure message (failed only)
};

class JobStore {
 public:
  JobStore() = default;

  JobStore(const JobStore&) = delete;
  JobStore& operator=(const JobStore&) = delete;

  // Open (or create) the store under `state_dir`, replay the WAL, compact
  // it, and leave it open for appends. After this, records() reflects every
  // job ever submitted, in submit order.
  util::Status open(const std::string& state_dir);
  void close();

  // Snapshot of all job records, submit order. Thread-safe.
  std::vector<JobRecord> records() const;
  // Single-job lookup; false when unknown. Thread-safe.
  bool lookup(const std::string& id, JobRecord* out) const;

  // Lifecycle appends. Each validates the transition, writes any payload
  // file durably first, then appends the WAL record. Thread-safe.
  util::Status record_submit(const std::string& id, const std::string& client,
                             const std::string& spec_json);
  util::Status record_running(const std::string& id);
  util::Status record_progress(const std::string& id, int iterations);
  util::Status record_suspended(const std::string& id);
  // phase must be terminal. result_json may be empty (no result file is
  // written then — e.g. a job cancelled while still queued).
  util::Status record_terminal(const std::string& id, JobPhase phase,
                               const std::string& error,
                               const std::string& result_json);

  // Per-job file locations inside the state dir.
  std::string spec_path(const std::string& id) const;
  std::string result_path(const std::string& id) const;
  std::string checkpoint_path(const std::string& id) const;
  std::string trace_path(const std::string& id) const;  // raw-CSV submissions

  // 1 + the highest numeric suffix among known "j-<n>" ids (1 when empty) —
  // the service's id allocator survives restarts through this.
  std::uint64_t next_job_number() const;

  // Rewrite the WAL to its minimal equivalent (see header comment) via
  // durable tmp+rename. Called by open(); exposed for tests.
  util::Status compact();

  const std::string& state_dir() const { return state_dir_; }
  std::string wal_path() const { return state_dir_ + "/wal.log"; }

 private:
  util::Status apply(const std::string& payload, bool durable);
  util::Status compact_locked();

  mutable std::mutex mu_;
  std::string state_dir_;
  Wal wal_;
  std::vector<std::string> order_;            // ids in submit order
  std::map<std::string, JobRecord> jobs_;     // id -> folded state
};

}  // namespace abg::serve
