// Bounded FIFO of pending job ids between the HTTP thread (producer) and
// the service dispatcher (consumer). The bound is the service's queue-depth
// admission limit: when try_push fails, the HTTP layer sheds the request
// with 503 + Retry-After instead of buffering without limit (ISSUE 8).
//
// Only ids travel through here — the durable truth about each job lives in
// the JobStore; losing this process loses nothing but the in-memory order,
// which recovery rebuilds from the WAL.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <string>

namespace abg::serve {

class PendingQueue {
 public:
  explicit PendingQueue(std::size_t capacity) : capacity_(capacity) {}

  PendingQueue(const PendingQueue&) = delete;
  PendingQueue& operator=(const PendingQueue&) = delete;

  // False when the queue is full or closed — the caller sheds.
  bool try_push(std::string job_id);

  // Capacity-exempt push for restart recovery: jobs being requeued were
  // already admitted in a previous life, so the depth bound (which protects
  // against *new* arrivals) does not apply to them.
  void push_recovered(std::string job_id);

  // Block until an id is available or the queue is closed; nullopt means
  // closed-and-drained (the dispatcher exits).
  std::optional<std::string> pop_wait();

  // Remove a queued id (cancellation before dispatch). False when absent.
  bool remove(const std::string& job_id);

  // Wake the consumer and refuse further pushes. Ids still queued stay
  // poppable (drain decides whether to pop or suspend them).
  void close();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  // Snapshot of queued ids, FIFO order (drain walks this to suspend them).
  std::deque<std::string> snapshot() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::string> items_;
  bool closed_ = false;
};

}  // namespace abg::serve
