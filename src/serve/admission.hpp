// Per-client token-bucket admission control for POST /jobs (ISSUE 8).
// Clients identify themselves with the X-Abg-Client header (absent = the
// shared "anonymous" bucket); each client's bucket refills at rate_per_s up
// to burst tokens, and a submission spends one token. A dry bucket earns
// 429 + Retry-After rounded up to when the next token lands.
//
// The clock is injectable seconds-since-start, so the unit tests drive the
// refill schedule deterministically. State is bounded: at most max_clients
// buckets are tracked, evicting the one that has been idle longest (a full
// bucket carries no memory worth keeping).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace abg::serve {

struct AdmissionOptions {
  double rate_per_s = 2.0;       // sustained submissions per second per client
  double burst = 8.0;            // bucket capacity
  std::size_t max_clients = 1024;
};

struct AdmissionDecision {
  bool admitted = true;
  double retry_after_s = 0.0;  // meaningful when !admitted
};

class AdmissionController {
 public:
  using ClockFn = std::function<double()>;  // monotonic seconds

  explicit AdmissionController(AdmissionOptions opts);
  AdmissionController(AdmissionOptions opts, ClockFn clock);

  // Try to spend one token from `client_id`'s bucket. Thread-safe.
  AdmissionDecision admit(const std::string& client_id);

  const AdmissionOptions& options() const { return opts_; }
  std::size_t tracked_clients() const;

 private:
  struct Bucket {
    double tokens = 0.0;
    double updated_s = 0.0;  // clock time of the last refill
  };

  void refill(Bucket* b, double now_s) const;

  AdmissionOptions opts_;
  ClockFn clock_;
  mutable std::mutex mu_;
  std::map<std::string, Bucket> buckets_;
};

}  // namespace abg::serve
