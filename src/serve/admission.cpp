#include "serve/admission.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/registry.hpp"

namespace abg::serve {

namespace {

AdmissionController::ClockFn steady_clock_fn() {
  const auto start = std::chrono::steady_clock::now();
  return [start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
  };
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions opts)
    : AdmissionController(std::move(opts), steady_clock_fn()) {}

AdmissionController::AdmissionController(AdmissionOptions opts, ClockFn clock)
    : opts_(std::move(opts)), clock_(std::move(clock)) {}

void AdmissionController::refill(Bucket* b, double now_s) const {
  const double dt = std::max(now_s - b->updated_s, 0.0);
  b->tokens = std::min(b->tokens + dt * opts_.rate_per_s, opts_.burst);
  b->updated_s = now_s;
}

AdmissionDecision AdmissionController::admit(const std::string& client_id) {
  static auto& c_admitted = obs::counter("serve.admitted");
  static auto& c_throttled = obs::counter("serve.throttled");
  std::lock_guard lk(mu_);
  const double now = clock_();
  auto it = buckets_.find(client_id);
  if (it == buckets_.end()) {
    if (buckets_.size() >= opts_.max_clients) {
      // Evict the longest-idle bucket; after enough idle time it is full
      // anyway, so forgetting it does not grant anyone extra budget.
      auto oldest = buckets_.begin();
      for (auto b = buckets_.begin(); b != buckets_.end(); ++b) {
        if (b->second.updated_s < oldest->second.updated_s) oldest = b;
      }
      buckets_.erase(oldest);
    }
    Bucket fresh;
    fresh.tokens = opts_.burst;
    fresh.updated_s = now;
    it = buckets_.emplace(client_id, fresh).first;
  }
  Bucket& b = it->second;
  refill(&b, now);
  if (b.tokens >= 1.0) {
    b.tokens -= 1.0;
    c_admitted.add();
    return AdmissionDecision{true, 0.0};
  }
  c_throttled.add();
  const double deficit = 1.0 - b.tokens;
  const double wait = opts_.rate_per_s > 0 ? deficit / opts_.rate_per_s : 3600.0;
  return AdmissionDecision{false, wait};
}

std::size_t AdmissionController::tracked_clients() const {
  std::lock_guard lk(mu_);
  return buckets_.size();
}

}  // namespace abg::serve
