#include "serve/queue.hpp"

#include <algorithm>

namespace abg::serve {

bool PendingQueue::try_push(std::string job_id) {
  {
    std::lock_guard lk(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(job_id));
  }
  cv_.notify_one();
  return true;
}

void PendingQueue::push_recovered(std::string job_id) {
  {
    std::lock_guard lk(mu_);
    if (closed_) return;
    items_.push_back(std::move(job_id));
  }
  cv_.notify_one();
}

std::optional<std::string> PendingQueue::pop_wait() {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return std::nullopt;
  std::string id = std::move(items_.front());
  items_.pop_front();
  return id;
}

bool PendingQueue::remove(const std::string& job_id) {
  std::lock_guard lk(mu_);
  const auto it = std::find(items_.begin(), items_.end(), job_id);
  if (it == items_.end()) return false;
  items_.erase(it);
  return true;
}

void PendingQueue::close() {
  {
    std::lock_guard lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t PendingQueue::size() const {
  std::lock_guard lk(mu_);
  return items_.size();
}

std::deque<std::string> PendingQueue::snapshot() const {
  std::lock_guard lk(mu_);
  return items_;
}

}  // namespace abg::serve
