// Crash-durable append-only write-ahead log for the synthesis service
// (ISSUE 8). One record per line:
//
//   <fnv64-hex> <payload>\n
//
// where the checksum covers the payload bytes. Appends are fsync'd by
// default, so an acknowledged record survives power loss; recovery replays
// records in order and stops at the first line that is truncated (no
// trailing newline — a torn write) or whose checksum does not match the
// payload (a partially-overwritten sector). The invalid tail is truncated on
// open, so the next append never interleaves with garbage.
//
// Payloads are single-line, tab-separated state transitions; anything bulky
// (job specs, results) lives in its own durably-written file that the WAL
// record merely names. That keeps every append one small write + one fsync.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"
#include "util/result.hpp"

namespace abg::serve {

// Checksum used for WAL records (FNV-1a 64-bit; both ends are this process,
// so collision resistance matters less than zero dependencies).
std::uint64_t wal_checksum(std::string_view payload);

class Wal {
 public:
  Wal() = default;
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Open `path` (creating it if absent), replay every valid record into
  // *records, truncate any torn/corrupt tail, and leave the log positioned
  // for append. kIoError on filesystem trouble.
  util::Status open(const std::string& path, std::vector<std::string>* records);

  // Append one record. `payload` must not contain '\n' (kInvalidArgument).
  // With durable=true (the default and what every state transition uses) the
  // record is fsync'd before returning; durable=false is for advisory
  // records (per-iteration progress) where losing the last few is harmless
  // because recovery never trusts them anyway.
  util::Status append(const std::string& payload, bool durable = true);

  // Flush+fsync anything buffered. Safe to call when closed.
  util::Status sync();

  void close();
  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  // Parse-only replay (forensics/tests): valid records in order, ignoring a
  // torn tail. *torn_tail_bytes (optional) reports how many trailing bytes
  // were unparseable.
  static util::Result<std::vector<std::string>> replay_file(
      const std::string& path, std::size_t* torn_tail_bytes = nullptr);

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace abg::serve
