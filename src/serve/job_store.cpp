#include "serve/job_store.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/durable_io.hpp"
#include "util/log.hpp"

namespace abg::serve {

namespace {

util::Status io_error(const std::string& what) {
  return util::Status(util::StatusCode::kIoError, what + ": " + std::strerror(errno));
}

util::Status ensure_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return util::Status::ok();
  return io_error("mkdir " + dir);
}

std::vector<std::string> split_tabs(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t tab = s.find('\t', pos);
    if (tab == std::string::npos) {
      out.push_back(s.substr(pos));
      return out;
    }
    out.push_back(s.substr(pos, tab - pos));
    pos = tab + 1;
  }
}

// Error messages ride inside a tab-separated single-line record; fold the
// two separators they could contain.
std::string sanitize(std::string s) {
  for (char& c : s) {
    if (c == '\t' || c == '\n') c = ' ';
  }
  return s;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

const char* job_phase_name(JobPhase p) {
  switch (p) {
    case JobPhase::kQueued: return "queued";
    case JobPhase::kRunning: return "running";
    case JobPhase::kSuspended: return "suspended";
    case JobPhase::kDone: return "done";
    case JobPhase::kFailed: return "failed";
    case JobPhase::kCancelled: return "cancelled";
  }
  return "unknown";
}

bool job_phase_terminal(JobPhase p) {
  return p == JobPhase::kDone || p == JobPhase::kFailed || p == JobPhase::kCancelled;
}

util::Status JobStore::open(const std::string& state_dir) {
  std::lock_guard lk(mu_);
  state_dir_ = state_dir;
  if (auto st = ensure_dir(state_dir_); !st.is_ok()) return st;
  if (auto st = ensure_dir(state_dir_ + "/jobs"); !st.is_ok()) return st;

  order_.clear();
  jobs_.clear();
  std::vector<std::string> records;
  if (auto st = wal_.open(state_dir_ + "/wal.log", &records); !st.is_ok()) return st;
  for (const auto& payload : records) {
    // Replay is forgiving: a record that no longer parses (version skew) is
    // skipped with a warning rather than poisoning the whole store.
    const auto fields = split_tabs(payload);
    if (fields.size() < 2) {
      ABG_WARN("wal %s: skipping malformed record '%s'", wal_.path().c_str(),
               payload.c_str());
      continue;
    }
    const std::string& kind = fields[0];
    const std::string& id = fields[1];
    auto it = jobs_.find(id);
    if (kind == "submit") {
      if (it == jobs_.end()) {
        JobRecord rec;
        rec.id = id;
        rec.client = fields.size() > 2 ? fields[2] : "";
        jobs_.emplace(id, std::move(rec));
        order_.push_back(id);
      }
      continue;
    }
    if (it == jobs_.end()) {
      ABG_WARN("wal %s: record '%s' for unknown job %s", wal_.path().c_str(),
               kind.c_str(), id.c_str());
      continue;
    }
    if (kind == "running") {
      it->second.phase = JobPhase::kRunning;
    } else if (kind == "progress") {
      if (fields.size() > 2) it->second.iterations = std::atoi(fields[2].c_str());
    } else if (kind == "suspended") {
      it->second.phase = JobPhase::kSuspended;
    } else if (kind == "done") {
      it->second.phase = JobPhase::kDone;
    } else if (kind == "failed") {
      it->second.phase = JobPhase::kFailed;
      it->second.error = fields.size() > 2 ? fields[2] : "";
    } else if (kind == "cancelled") {
      it->second.phase = JobPhase::kCancelled;
    } else {
      ABG_WARN("wal %s: skipping unknown record kind '%s'", wal_.path().c_str(),
               kind.c_str());
    }
  }
  return compact_locked();
}

void JobStore::close() {
  std::lock_guard lk(mu_);
  wal_.close();
}

std::vector<JobRecord> JobStore::records() const {
  std::lock_guard lk(mu_);
  std::vector<JobRecord> out;
  out.reserve(order_.size());
  for (const auto& id : order_) out.push_back(jobs_.at(id));
  return out;
}

bool JobStore::lookup(const std::string& id, JobRecord* out) const {
  std::lock_guard lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  *out = it->second;
  return true;
}

util::Status JobStore::record_submit(const std::string& id, const std::string& client,
                                     const std::string& spec_json) {
  std::lock_guard lk(mu_);
  if (jobs_.count(id)) {
    return util::Status(util::StatusCode::kInvalidArgument, "duplicate job id " + id);
  }
  // Spec first, durably: a submit record must never point at a missing or
  // torn spec after a crash.
  if (auto st = util::atomic_write_file(spec_path(id), spec_json, /*durable=*/true);
      !st.is_ok()) {
    return st.with_context("persisting spec for " + id);
  }
  if (auto st = wal_.append("submit\t" + id + "\t" + sanitize(client)); !st.is_ok()) {
    return st;
  }
  JobRecord rec;
  rec.id = id;
  rec.client = client;
  jobs_.emplace(id, std::move(rec));
  order_.push_back(id);
  return util::Status::ok();
}

util::Status JobStore::record_running(const std::string& id) {
  std::lock_guard lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return util::Status(util::StatusCode::kInvalidArgument, "unknown job " + id);
  }
  if (auto st = wal_.append("running\t" + id); !st.is_ok()) return st;
  it->second.phase = JobPhase::kRunning;
  return util::Status::ok();
}

util::Status JobStore::record_progress(const std::string& id, int iterations) {
  std::lock_guard lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return util::Status(util::StatusCode::kInvalidArgument, "unknown job " + id);
  }
  // Advisory: not fsync'd. Recovery decides resumability from the checkpoint
  // file itself, never from these (the checkpoint for iteration k is written
  // after the iteration-k progress callback fires, so a progress record can
  // legitimately be ahead of the durable checkpoint).
  if (auto st = wal_.append("progress\t" + id + "\t" + std::to_string(iterations),
                            /*durable=*/false);
      !st.is_ok()) {
    return st;
  }
  it->second.iterations = iterations;
  return util::Status::ok();
}

util::Status JobStore::record_suspended(const std::string& id) {
  std::lock_guard lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return util::Status(util::StatusCode::kInvalidArgument, "unknown job " + id);
  }
  if (job_phase_terminal(it->second.phase)) {
    return util::Status(util::StatusCode::kInvalidArgument,
                        "job " + id + " already terminal");
  }
  if (auto st = wal_.append("suspended\t" + id); !st.is_ok()) return st;
  it->second.phase = JobPhase::kSuspended;
  return util::Status::ok();
}

util::Status JobStore::record_terminal(const std::string& id, JobPhase phase,
                                       const std::string& error,
                                       const std::string& result_json) {
  std::lock_guard lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return util::Status(util::StatusCode::kInvalidArgument, "unknown job " + id);
  }
  if (!job_phase_terminal(phase)) {
    return util::Status(util::StatusCode::kInvalidArgument,
                        std::string("phase ") + job_phase_name(phase) + " is not terminal");
  }
  if (job_phase_terminal(it->second.phase)) {
    return util::Status(util::StatusCode::kInvalidArgument,
                        "job " + id + " already terminal");
  }
  if (!result_json.empty()) {
    // Result before record, durably — "done" in the WAL guarantees the
    // result file is complete on disk.
    if (auto st = util::atomic_write_file(result_path(id), result_json, /*durable=*/true);
        !st.is_ok()) {
      return st.with_context("persisting result for " + id);
    }
  }
  std::string payload = std::string(job_phase_name(phase)) + "\t" + id;
  if (phase == JobPhase::kFailed) payload += "\t" + sanitize(error);
  if (auto st = wal_.append(payload); !st.is_ok()) return st;
  it->second.phase = phase;
  it->second.error = phase == JobPhase::kFailed ? error : "";
  return util::Status::ok();
}

std::string JobStore::spec_path(const std::string& id) const {
  return state_dir_ + "/jobs/" + id + ".spec.json";
}

std::string JobStore::result_path(const std::string& id) const {
  return state_dir_ + "/jobs/" + id + ".result.json";
}

std::string JobStore::checkpoint_path(const std::string& id) const {
  return state_dir_ + "/jobs/" + id + ".ckpt";
}

std::string JobStore::trace_path(const std::string& id) const {
  return state_dir_ + "/jobs/" + id + ".trace.csv";
}

std::uint64_t JobStore::next_job_number() const {
  std::lock_guard lk(mu_);
  std::uint64_t next = 1;
  for (const auto& id : order_) {
    if (id.rfind("j-", 0) == 0) {
      const std::uint64_t n = std::strtoull(id.c_str() + 2, nullptr, 10);
      next = std::max(next, n + 1);
    }
  }
  return next;
}

util::Status JobStore::compact() {
  std::lock_guard lk(mu_);
  return compact_locked();
}

util::Status JobStore::compact_locked() {
  // Minimal equivalent log: submit for everyone, then one record restoring
  // each job's folded phase (and latest advisory iteration count for live
  // jobs, so a restarted dashboard is not blind until the next iteration).
  std::string out;
  for (const auto& id : order_) {
    const JobRecord& rec = jobs_.at(id);
    auto add = [&out](const std::string& payload) {
      char cs[17];
      std::snprintf(cs, sizeof cs, "%016llx",
                    static_cast<unsigned long long>(wal_checksum(payload)));
      out += std::string(cs) + " " + payload + "\n";
    };
    add("submit\t" + id + "\t" + sanitize(rec.client));
    switch (rec.phase) {
      case JobPhase::kQueued:
        break;
      case JobPhase::kRunning:
        add("running\t" + id);
        break;
      case JobPhase::kSuspended:
        add("suspended\t" + id);
        break;
      case JobPhase::kDone:
        add("done\t" + id);
        break;
      case JobPhase::kFailed:
        add("failed\t" + id + "\t" + sanitize(rec.error));
        break;
      case JobPhase::kCancelled:
        add("cancelled\t" + id);
        break;
    }
    if (!job_phase_terminal(rec.phase) && rec.iterations > 0) {
      add("progress\t" + id + "\t" + std::to_string(rec.iterations));
    }
  }
  const std::string path = wal_path();
  wal_.close();
  if (auto st = util::atomic_write_file(path, out, /*durable=*/true); !st.is_ok()) {
    return st.with_context("compacting wal");
  }
  std::vector<std::string> reread;
  return wal_.open(path, &reread);
}

// file_exists is used by the service (via checkpoint_path) — keep the helper
// visible to it without a second stat wrapper.
bool job_checkpoint_exists(const JobStore& store, const std::string& id) {
  return file_exists(store.checkpoint_path(id));
}

}  // namespace abg::serve
