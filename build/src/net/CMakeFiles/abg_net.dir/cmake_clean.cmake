file(REMOVE_RECURSE
  "CMakeFiles/abg_net.dir/duel.cpp.o"
  "CMakeFiles/abg_net.dir/duel.cpp.o.d"
  "CMakeFiles/abg_net.dir/event_queue.cpp.o"
  "CMakeFiles/abg_net.dir/event_queue.cpp.o.d"
  "CMakeFiles/abg_net.dir/link.cpp.o"
  "CMakeFiles/abg_net.dir/link.cpp.o.d"
  "CMakeFiles/abg_net.dir/receiver.cpp.o"
  "CMakeFiles/abg_net.dir/receiver.cpp.o.d"
  "CMakeFiles/abg_net.dir/signal_tracker.cpp.o"
  "CMakeFiles/abg_net.dir/signal_tracker.cpp.o.d"
  "CMakeFiles/abg_net.dir/simulator.cpp.o"
  "CMakeFiles/abg_net.dir/simulator.cpp.o.d"
  "libabg_net.a"
  "libabg_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abg_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
