file(REMOVE_RECURSE
  "libabg_net.a"
)
