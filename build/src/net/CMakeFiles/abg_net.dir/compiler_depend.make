# Empty compiler generated dependencies file for abg_net.
# This may be replaced when dependencies are built.
