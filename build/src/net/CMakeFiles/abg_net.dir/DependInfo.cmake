
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/duel.cpp" "src/net/CMakeFiles/abg_net.dir/duel.cpp.o" "gcc" "src/net/CMakeFiles/abg_net.dir/duel.cpp.o.d"
  "/root/repo/src/net/event_queue.cpp" "src/net/CMakeFiles/abg_net.dir/event_queue.cpp.o" "gcc" "src/net/CMakeFiles/abg_net.dir/event_queue.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/abg_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/abg_net.dir/link.cpp.o.d"
  "/root/repo/src/net/receiver.cpp" "src/net/CMakeFiles/abg_net.dir/receiver.cpp.o" "gcc" "src/net/CMakeFiles/abg_net.dir/receiver.cpp.o.d"
  "/root/repo/src/net/signal_tracker.cpp" "src/net/CMakeFiles/abg_net.dir/signal_tracker.cpp.o" "gcc" "src/net/CMakeFiles/abg_net.dir/signal_tracker.cpp.o.d"
  "/root/repo/src/net/simulator.cpp" "src/net/CMakeFiles/abg_net.dir/simulator.cpp.o" "gcc" "src/net/CMakeFiles/abg_net.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/abg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cca/CMakeFiles/abg_cca.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/abg_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
