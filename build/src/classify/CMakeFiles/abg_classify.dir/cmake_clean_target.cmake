file(REMOVE_RECURSE
  "libabg_classify.a"
)
