# Empty compiler generated dependencies file for abg_classify.
# This may be replaced when dependencies are built.
