file(REMOVE_RECURSE
  "CMakeFiles/abg_classify.dir/classifier.cpp.o"
  "CMakeFiles/abg_classify.dir/classifier.cpp.o.d"
  "libabg_classify.a"
  "libabg_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abg_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
