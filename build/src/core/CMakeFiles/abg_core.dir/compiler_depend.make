# Empty compiler generated dependencies file for abg_core.
# This may be replaced when dependencies are built.
