file(REMOVE_RECURSE
  "CMakeFiles/abg_core.dir/abagnale.cpp.o"
  "CMakeFiles/abg_core.dir/abagnale.cpp.o.d"
  "CMakeFiles/abg_core.dir/handler_cca.cpp.o"
  "CMakeFiles/abg_core.dir/handler_cca.cpp.o.d"
  "libabg_core.a"
  "libabg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
