file(REMOVE_RECURSE
  "libabg_core.a"
)
