# Empty compiler generated dependencies file for abg_util.
# This may be replaced when dependencies are built.
