file(REMOVE_RECURSE
  "libabg_util.a"
)
