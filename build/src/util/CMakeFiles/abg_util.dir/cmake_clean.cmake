file(REMOVE_RECURSE
  "CMakeFiles/abg_util.dir/csv.cpp.o"
  "CMakeFiles/abg_util.dir/csv.cpp.o.d"
  "CMakeFiles/abg_util.dir/log.cpp.o"
  "CMakeFiles/abg_util.dir/log.cpp.o.d"
  "CMakeFiles/abg_util.dir/rng.cpp.o"
  "CMakeFiles/abg_util.dir/rng.cpp.o.d"
  "CMakeFiles/abg_util.dir/thread_pool.cpp.o"
  "CMakeFiles/abg_util.dir/thread_pool.cpp.o.d"
  "libabg_util.a"
  "libabg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
