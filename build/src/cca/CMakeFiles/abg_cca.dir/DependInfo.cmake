
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cca/bbr.cpp" "src/cca/CMakeFiles/abg_cca.dir/bbr.cpp.o" "gcc" "src/cca/CMakeFiles/abg_cca.dir/bbr.cpp.o.d"
  "/root/repo/src/cca/cca.cpp" "src/cca/CMakeFiles/abg_cca.dir/cca.cpp.o" "gcc" "src/cca/CMakeFiles/abg_cca.dir/cca.cpp.o.d"
  "/root/repo/src/cca/cubic_family.cpp" "src/cca/CMakeFiles/abg_cca.dir/cubic_family.cpp.o" "gcc" "src/cca/CMakeFiles/abg_cca.dir/cubic_family.cpp.o.d"
  "/root/repo/src/cca/delay_family.cpp" "src/cca/CMakeFiles/abg_cca.dir/delay_family.cpp.o" "gcc" "src/cca/CMakeFiles/abg_cca.dir/delay_family.cpp.o.d"
  "/root/repo/src/cca/reno_family.cpp" "src/cca/CMakeFiles/abg_cca.dir/reno_family.cpp.o" "gcc" "src/cca/CMakeFiles/abg_cca.dir/reno_family.cpp.o.d"
  "/root/repo/src/cca/student.cpp" "src/cca/CMakeFiles/abg_cca.dir/student.cpp.o" "gcc" "src/cca/CMakeFiles/abg_cca.dir/student.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/abg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
