file(REMOVE_RECURSE
  "libabg_cca.a"
)
