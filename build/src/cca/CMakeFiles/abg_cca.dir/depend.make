# Empty dependencies file for abg_cca.
# This may be replaced when dependencies are built.
