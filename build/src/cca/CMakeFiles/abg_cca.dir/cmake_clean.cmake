file(REMOVE_RECURSE
  "CMakeFiles/abg_cca.dir/bbr.cpp.o"
  "CMakeFiles/abg_cca.dir/bbr.cpp.o.d"
  "CMakeFiles/abg_cca.dir/cca.cpp.o"
  "CMakeFiles/abg_cca.dir/cca.cpp.o.d"
  "CMakeFiles/abg_cca.dir/cubic_family.cpp.o"
  "CMakeFiles/abg_cca.dir/cubic_family.cpp.o.d"
  "CMakeFiles/abg_cca.dir/delay_family.cpp.o"
  "CMakeFiles/abg_cca.dir/delay_family.cpp.o.d"
  "CMakeFiles/abg_cca.dir/reno_family.cpp.o"
  "CMakeFiles/abg_cca.dir/reno_family.cpp.o.d"
  "CMakeFiles/abg_cca.dir/student.cpp.o"
  "CMakeFiles/abg_cca.dir/student.cpp.o.d"
  "libabg_cca.a"
  "libabg_cca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abg_cca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
