# Empty dependencies file for abg_synth.
# This may be replaced when dependencies are built.
