
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/buckets.cpp" "src/synth/CMakeFiles/abg_synth.dir/buckets.cpp.o" "gcc" "src/synth/CMakeFiles/abg_synth.dir/buckets.cpp.o.d"
  "/root/repo/src/synth/concretize.cpp" "src/synth/CMakeFiles/abg_synth.dir/concretize.cpp.o" "gcc" "src/synth/CMakeFiles/abg_synth.dir/concretize.cpp.o.d"
  "/root/repo/src/synth/enumerator.cpp" "src/synth/CMakeFiles/abg_synth.dir/enumerator.cpp.o" "gcc" "src/synth/CMakeFiles/abg_synth.dir/enumerator.cpp.o.d"
  "/root/repo/src/synth/event_replay.cpp" "src/synth/CMakeFiles/abg_synth.dir/event_replay.cpp.o" "gcc" "src/synth/CMakeFiles/abg_synth.dir/event_replay.cpp.o.d"
  "/root/repo/src/synth/mister880.cpp" "src/synth/CMakeFiles/abg_synth.dir/mister880.cpp.o" "gcc" "src/synth/CMakeFiles/abg_synth.dir/mister880.cpp.o.d"
  "/root/repo/src/synth/refinement.cpp" "src/synth/CMakeFiles/abg_synth.dir/refinement.cpp.o" "gcc" "src/synth/CMakeFiles/abg_synth.dir/refinement.cpp.o.d"
  "/root/repo/src/synth/replay.cpp" "src/synth/CMakeFiles/abg_synth.dir/replay.cpp.o" "gcc" "src/synth/CMakeFiles/abg_synth.dir/replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/abg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cca/CMakeFiles/abg_cca.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/abg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/abg_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/abg_distance.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
