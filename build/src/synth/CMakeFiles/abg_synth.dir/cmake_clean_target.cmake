file(REMOVE_RECURSE
  "libabg_synth.a"
)
