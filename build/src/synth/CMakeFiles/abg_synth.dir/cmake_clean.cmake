file(REMOVE_RECURSE
  "CMakeFiles/abg_synth.dir/buckets.cpp.o"
  "CMakeFiles/abg_synth.dir/buckets.cpp.o.d"
  "CMakeFiles/abg_synth.dir/concretize.cpp.o"
  "CMakeFiles/abg_synth.dir/concretize.cpp.o.d"
  "CMakeFiles/abg_synth.dir/enumerator.cpp.o"
  "CMakeFiles/abg_synth.dir/enumerator.cpp.o.d"
  "CMakeFiles/abg_synth.dir/event_replay.cpp.o"
  "CMakeFiles/abg_synth.dir/event_replay.cpp.o.d"
  "CMakeFiles/abg_synth.dir/mister880.cpp.o"
  "CMakeFiles/abg_synth.dir/mister880.cpp.o.d"
  "CMakeFiles/abg_synth.dir/refinement.cpp.o"
  "CMakeFiles/abg_synth.dir/refinement.cpp.o.d"
  "CMakeFiles/abg_synth.dir/replay.cpp.o"
  "CMakeFiles/abg_synth.dir/replay.cpp.o.d"
  "libabg_synth.a"
  "libabg_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abg_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
