file(REMOVE_RECURSE
  "CMakeFiles/abg_dsl.dir/dsl.cpp.o"
  "CMakeFiles/abg_dsl.dir/dsl.cpp.o.d"
  "CMakeFiles/abg_dsl.dir/eval.cpp.o"
  "CMakeFiles/abg_dsl.dir/eval.cpp.o.d"
  "CMakeFiles/abg_dsl.dir/expr.cpp.o"
  "CMakeFiles/abg_dsl.dir/expr.cpp.o.d"
  "CMakeFiles/abg_dsl.dir/known_handlers.cpp.o"
  "CMakeFiles/abg_dsl.dir/known_handlers.cpp.o.d"
  "CMakeFiles/abg_dsl.dir/parse.cpp.o"
  "CMakeFiles/abg_dsl.dir/parse.cpp.o.d"
  "CMakeFiles/abg_dsl.dir/simplify.cpp.o"
  "CMakeFiles/abg_dsl.dir/simplify.cpp.o.d"
  "CMakeFiles/abg_dsl.dir/units.cpp.o"
  "CMakeFiles/abg_dsl.dir/units.cpp.o.d"
  "libabg_dsl.a"
  "libabg_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abg_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
