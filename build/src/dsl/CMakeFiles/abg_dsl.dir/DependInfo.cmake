
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsl/dsl.cpp" "src/dsl/CMakeFiles/abg_dsl.dir/dsl.cpp.o" "gcc" "src/dsl/CMakeFiles/abg_dsl.dir/dsl.cpp.o.d"
  "/root/repo/src/dsl/eval.cpp" "src/dsl/CMakeFiles/abg_dsl.dir/eval.cpp.o" "gcc" "src/dsl/CMakeFiles/abg_dsl.dir/eval.cpp.o.d"
  "/root/repo/src/dsl/expr.cpp" "src/dsl/CMakeFiles/abg_dsl.dir/expr.cpp.o" "gcc" "src/dsl/CMakeFiles/abg_dsl.dir/expr.cpp.o.d"
  "/root/repo/src/dsl/known_handlers.cpp" "src/dsl/CMakeFiles/abg_dsl.dir/known_handlers.cpp.o" "gcc" "src/dsl/CMakeFiles/abg_dsl.dir/known_handlers.cpp.o.d"
  "/root/repo/src/dsl/parse.cpp" "src/dsl/CMakeFiles/abg_dsl.dir/parse.cpp.o" "gcc" "src/dsl/CMakeFiles/abg_dsl.dir/parse.cpp.o.d"
  "/root/repo/src/dsl/simplify.cpp" "src/dsl/CMakeFiles/abg_dsl.dir/simplify.cpp.o" "gcc" "src/dsl/CMakeFiles/abg_dsl.dir/simplify.cpp.o.d"
  "/root/repo/src/dsl/units.cpp" "src/dsl/CMakeFiles/abg_dsl.dir/units.cpp.o" "gcc" "src/dsl/CMakeFiles/abg_dsl.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/abg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cca/CMakeFiles/abg_cca.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
