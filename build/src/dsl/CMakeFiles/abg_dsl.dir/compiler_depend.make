# Empty compiler generated dependencies file for abg_dsl.
# This may be replaced when dependencies are built.
