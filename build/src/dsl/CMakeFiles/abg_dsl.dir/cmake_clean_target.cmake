file(REMOVE_RECURSE
  "libabg_dsl.a"
)
