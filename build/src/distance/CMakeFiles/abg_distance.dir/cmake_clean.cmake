file(REMOVE_RECURSE
  "CMakeFiles/abg_distance.dir/distance.cpp.o"
  "CMakeFiles/abg_distance.dir/distance.cpp.o.d"
  "libabg_distance.a"
  "libabg_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abg_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
