# Empty dependencies file for abg_distance.
# This may be replaced when dependencies are built.
