file(REMOVE_RECURSE
  "libabg_distance.a"
)
