# Empty dependencies file for abg_trace.
# This may be replaced when dependencies are built.
