file(REMOVE_RECURSE
  "CMakeFiles/abg_trace.dir/noise.cpp.o"
  "CMakeFiles/abg_trace.dir/noise.cpp.o.d"
  "CMakeFiles/abg_trace.dir/sampler.cpp.o"
  "CMakeFiles/abg_trace.dir/sampler.cpp.o.d"
  "CMakeFiles/abg_trace.dir/trace.cpp.o"
  "CMakeFiles/abg_trace.dir/trace.cpp.o.d"
  "CMakeFiles/abg_trace.dir/trace_io.cpp.o"
  "CMakeFiles/abg_trace.dir/trace_io.cpp.o.d"
  "libabg_trace.a"
  "libabg_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abg_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
