file(REMOVE_RECURSE
  "libabg_trace.a"
)
