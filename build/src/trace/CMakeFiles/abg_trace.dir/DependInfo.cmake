
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/noise.cpp" "src/trace/CMakeFiles/abg_trace.dir/noise.cpp.o" "gcc" "src/trace/CMakeFiles/abg_trace.dir/noise.cpp.o.d"
  "/root/repo/src/trace/sampler.cpp" "src/trace/CMakeFiles/abg_trace.dir/sampler.cpp.o" "gcc" "src/trace/CMakeFiles/abg_trace.dir/sampler.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/abg_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/abg_trace.dir/trace.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/abg_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/abg_trace.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/abg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cca/CMakeFiles/abg_cca.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
