# Empty dependencies file for bench_fig6_dsl_impact.
# This may be replaced when dependencies are built.
