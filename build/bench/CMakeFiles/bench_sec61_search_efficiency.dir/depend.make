# Empty dependencies file for bench_sec61_search_efficiency.
# This may be replaced when dependencies are built.
