file(REMOVE_RECURSE
  "CMakeFiles/bench_sec61_search_efficiency.dir/bench_sec61_search_efficiency.cpp.o"
  "CMakeFiles/bench_sec61_search_efficiency.dir/bench_sec61_search_efficiency.cpp.o.d"
  "bench_sec61_search_efficiency"
  "bench_sec61_search_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec61_search_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
