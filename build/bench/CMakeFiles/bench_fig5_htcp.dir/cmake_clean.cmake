file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_htcp.dir/bench_fig5_htcp.cpp.o"
  "CMakeFiles/bench_fig5_htcp.dir/bench_fig5_htcp.cpp.o.d"
  "bench_fig5_htcp"
  "bench_fig5_htcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_htcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
