# Empty dependencies file for bench_fig5_htcp.
# This may be replaced when dependencies are built.
