# Empty dependencies file for bench_fig3_metrics.
# This may be replaced when dependencies are built.
