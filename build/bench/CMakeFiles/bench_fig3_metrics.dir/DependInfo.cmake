
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_metrics.cpp" "bench/CMakeFiles/bench_fig3_metrics.dir/bench_fig3_metrics.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3_metrics.dir/bench_fig3_metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/abg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/abg_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/abg_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/abg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/abg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/abg_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/abg_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/cca/CMakeFiles/abg_cca.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/abg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
