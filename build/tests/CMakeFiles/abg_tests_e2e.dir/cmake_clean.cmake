file(REMOVE_RECURSE
  "CMakeFiles/abg_tests_e2e.dir/test_pipeline.cpp.o"
  "CMakeFiles/abg_tests_e2e.dir/test_pipeline.cpp.o.d"
  "CMakeFiles/abg_tests_e2e.dir/test_refinement.cpp.o"
  "CMakeFiles/abg_tests_e2e.dir/test_refinement.cpp.o.d"
  "abg_tests_e2e"
  "abg_tests_e2e.pdb"
  "abg_tests_e2e[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abg_tests_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
