# Empty compiler generated dependencies file for abg_tests_e2e.
# This may be replaced when dependencies are built.
