# Empty dependencies file for abg_tests_synth.
# This may be replaced when dependencies are built.
