file(REMOVE_RECURSE
  "CMakeFiles/abg_tests_synth.dir/test_duel.cpp.o"
  "CMakeFiles/abg_tests_synth.dir/test_duel.cpp.o.d"
  "CMakeFiles/abg_tests_synth.dir/test_enumerator.cpp.o"
  "CMakeFiles/abg_tests_synth.dir/test_enumerator.cpp.o.d"
  "CMakeFiles/abg_tests_synth.dir/test_extensions.cpp.o"
  "CMakeFiles/abg_tests_synth.dir/test_extensions.cpp.o.d"
  "CMakeFiles/abg_tests_synth.dir/test_simulator.cpp.o"
  "CMakeFiles/abg_tests_synth.dir/test_simulator.cpp.o.d"
  "CMakeFiles/abg_tests_synth.dir/test_synth.cpp.o"
  "CMakeFiles/abg_tests_synth.dir/test_synth.cpp.o.d"
  "abg_tests_synth"
  "abg_tests_synth.pdb"
  "abg_tests_synth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abg_tests_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
