
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cca.cpp" "tests/CMakeFiles/abg_tests_fast.dir/test_cca.cpp.o" "gcc" "tests/CMakeFiles/abg_tests_fast.dir/test_cca.cpp.o.d"
  "/root/repo/tests/test_distance.cpp" "tests/CMakeFiles/abg_tests_fast.dir/test_distance.cpp.o" "gcc" "tests/CMakeFiles/abg_tests_fast.dir/test_distance.cpp.o.d"
  "/root/repo/tests/test_dsl.cpp" "tests/CMakeFiles/abg_tests_fast.dir/test_dsl.cpp.o" "gcc" "tests/CMakeFiles/abg_tests_fast.dir/test_dsl.cpp.o.d"
  "/root/repo/tests/test_eval.cpp" "tests/CMakeFiles/abg_tests_fast.dir/test_eval.cpp.o" "gcc" "tests/CMakeFiles/abg_tests_fast.dir/test_eval.cpp.o.d"
  "/root/repo/tests/test_event_queue_stress.cpp" "tests/CMakeFiles/abg_tests_fast.dir/test_event_queue_stress.cpp.o" "gcc" "tests/CMakeFiles/abg_tests_fast.dir/test_event_queue_stress.cpp.o.d"
  "/root/repo/tests/test_expr.cpp" "tests/CMakeFiles/abg_tests_fast.dir/test_expr.cpp.o" "gcc" "tests/CMakeFiles/abg_tests_fast.dir/test_expr.cpp.o.d"
  "/root/repo/tests/test_expr_property.cpp" "tests/CMakeFiles/abg_tests_fast.dir/test_expr_property.cpp.o" "gcc" "tests/CMakeFiles/abg_tests_fast.dir/test_expr_property.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/abg_tests_fast.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/abg_tests_fast.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_parse.cpp" "tests/CMakeFiles/abg_tests_fast.dir/test_parse.cpp.o" "gcc" "tests/CMakeFiles/abg_tests_fast.dir/test_parse.cpp.o.d"
  "/root/repo/tests/test_simplify.cpp" "tests/CMakeFiles/abg_tests_fast.dir/test_simplify.cpp.o" "gcc" "tests/CMakeFiles/abg_tests_fast.dir/test_simplify.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/abg_tests_fast.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/abg_tests_fast.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_units.cpp" "tests/CMakeFiles/abg_tests_fast.dir/test_units.cpp.o" "gcc" "tests/CMakeFiles/abg_tests_fast.dir/test_units.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/abg_tests_fast.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/abg_tests_fast.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/abg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/abg_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/abg_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/abg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/abg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/abg_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/abg_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/cca/CMakeFiles/abg_cca.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/abg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
