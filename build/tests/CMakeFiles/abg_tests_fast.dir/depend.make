# Empty dependencies file for abg_tests_fast.
# This may be replaced when dependencies are built.
