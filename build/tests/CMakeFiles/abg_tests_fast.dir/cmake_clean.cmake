file(REMOVE_RECURSE
  "CMakeFiles/abg_tests_fast.dir/test_cca.cpp.o"
  "CMakeFiles/abg_tests_fast.dir/test_cca.cpp.o.d"
  "CMakeFiles/abg_tests_fast.dir/test_distance.cpp.o"
  "CMakeFiles/abg_tests_fast.dir/test_distance.cpp.o.d"
  "CMakeFiles/abg_tests_fast.dir/test_dsl.cpp.o"
  "CMakeFiles/abg_tests_fast.dir/test_dsl.cpp.o.d"
  "CMakeFiles/abg_tests_fast.dir/test_eval.cpp.o"
  "CMakeFiles/abg_tests_fast.dir/test_eval.cpp.o.d"
  "CMakeFiles/abg_tests_fast.dir/test_event_queue_stress.cpp.o"
  "CMakeFiles/abg_tests_fast.dir/test_event_queue_stress.cpp.o.d"
  "CMakeFiles/abg_tests_fast.dir/test_expr.cpp.o"
  "CMakeFiles/abg_tests_fast.dir/test_expr.cpp.o.d"
  "CMakeFiles/abg_tests_fast.dir/test_expr_property.cpp.o"
  "CMakeFiles/abg_tests_fast.dir/test_expr_property.cpp.o.d"
  "CMakeFiles/abg_tests_fast.dir/test_net.cpp.o"
  "CMakeFiles/abg_tests_fast.dir/test_net.cpp.o.d"
  "CMakeFiles/abg_tests_fast.dir/test_parse.cpp.o"
  "CMakeFiles/abg_tests_fast.dir/test_parse.cpp.o.d"
  "CMakeFiles/abg_tests_fast.dir/test_simplify.cpp.o"
  "CMakeFiles/abg_tests_fast.dir/test_simplify.cpp.o.d"
  "CMakeFiles/abg_tests_fast.dir/test_trace.cpp.o"
  "CMakeFiles/abg_tests_fast.dir/test_trace.cpp.o.d"
  "CMakeFiles/abg_tests_fast.dir/test_units.cpp.o"
  "CMakeFiles/abg_tests_fast.dir/test_units.cpp.o.d"
  "CMakeFiles/abg_tests_fast.dir/test_util.cpp.o"
  "CMakeFiles/abg_tests_fast.dir/test_util.cpp.o.d"
  "abg_tests_fast"
  "abg_tests_fast.pdb"
  "abg_tests_fast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abg_tests_fast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
