# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/abg_tests_fast[1]_include.cmake")
include("/root/repo/build/tests/abg_tests_synth[1]_include.cmake")
include("/root/repo/build/tests/abg_tests_e2e[1]_include.cmake")
