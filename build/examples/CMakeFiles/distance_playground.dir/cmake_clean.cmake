file(REMOVE_RECURSE
  "CMakeFiles/distance_playground.dir/distance_playground.cpp.o"
  "CMakeFiles/distance_playground.dir/distance_playground.cpp.o.d"
  "distance_playground"
  "distance_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
