# Empty compiler generated dependencies file for distance_playground.
# This may be replaced when dependencies are built.
