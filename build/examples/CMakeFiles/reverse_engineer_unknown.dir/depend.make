# Empty dependencies file for reverse_engineer_unknown.
# This may be replaced when dependencies are built.
