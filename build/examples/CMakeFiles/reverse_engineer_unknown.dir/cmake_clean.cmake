file(REMOVE_RECURSE
  "CMakeFiles/reverse_engineer_unknown.dir/reverse_engineer_unknown.cpp.o"
  "CMakeFiles/reverse_engineer_unknown.dir/reverse_engineer_unknown.cpp.o.d"
  "reverse_engineer_unknown"
  "reverse_engineer_unknown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reverse_engineer_unknown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
