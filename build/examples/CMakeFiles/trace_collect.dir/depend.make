# Empty dependencies file for trace_collect.
# This may be replaced when dependencies are built.
