file(REMOVE_RECURSE
  "CMakeFiles/trace_collect.dir/trace_collect.cpp.o"
  "CMakeFiles/trace_collect.dir/trace_collect.cpp.o.d"
  "trace_collect"
  "trace_collect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
