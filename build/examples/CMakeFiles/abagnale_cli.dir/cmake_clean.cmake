file(REMOVE_RECURSE
  "CMakeFiles/abagnale_cli.dir/abagnale_cli.cpp.o"
  "CMakeFiles/abagnale_cli.dir/abagnale_cli.cpp.o.d"
  "abagnale_cli"
  "abagnale_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abagnale_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
