# Empty compiler generated dependencies file for abagnale_cli.
# This may be replaced when dependencies are built.
