# Empty compiler generated dependencies file for fairness_analysis.
# This may be replaced when dependencies are built.
