// Umbrella header: the complete public surface of abagnale, the
// congestion-control reverse-engineering system (IMC'24). One include gives
// an embedding application everything it needs:
//
//   #include "abg/abagnale.hpp"
//
//   abg::api::Engine engine({.threads = 8});
//   auto handle = engine.submit(abg::api::JobSpec()
//                                   .with_name("reno")
//                                   .add_trace_path("traces/reno_0.csv")
//                                   .with_timeout(120.0));
//   if (!handle.ok()) { /* kInvalidArgument with the first bad field */ }
//   const abg::api::JobResult& r = handle->wait();
//
// Layering (stable to depend on, top to bottom):
//   abg::api    — batch Engine, JobSpec/JobResult, manifests, compat wrappers
//   abg::core   — the single-run Figure-1 pipeline (classify → segment → refine)
//   abg::synth  — refinement loop, sketch enumeration, mister880 baseline
//   abg::dsl / abg::distance / abg::trace / abg::cca / abg::net — domain types
//   abg::util / abg::obs — status/result, threading, metrics, trace events
//
// The api::synthesize / api::run_mister880 free functions are compatibility
// wrappers over a one-job Engine; new code should hold an Engine instead.
#pragma once

// Public facade (start here).
#include "api/compat.hpp"
#include "api/engine.hpp"
#include "api/job.hpp"
#include "api/manifest.hpp"

// Single-run pipeline and search internals, for callers that need
// finer-grained control than a JobSpec exposes.
#include "core/abagnale.hpp"
#include "synth/eval_cache.hpp"
#include "synth/mister880.hpp"
#include "synth/refinement.hpp"

// Domain vocabulary.
#include "classify/classifier.hpp"
#include "distance/distance.hpp"
#include "dsl/dsl.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

// Infrastructure referenced by the facade's signatures.
#include "obs/registry.hpp"
#include "util/cancellation.hpp"
#include "util/result.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"
