#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "obs/registry.hpp"
#include "trace/noise.hpp"
#include "trace/sampler.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"
#include "trace/validate.hpp"
#include "util/status.hpp"

namespace abg::trace {
namespace {

Trace make_trace(std::size_t n, const std::vector<std::size_t>& losses = {},
                 const std::vector<std::size_t>& dups = {}) {
  Trace t;
  t.cca_name = "test";
  t.env.bandwidth_bps = 10e6;
  t.env.rtt_s = 0.05;
  for (std::size_t i = 0; i < n; ++i) {
    AckSample s;
    s.sig.now = 0.01 * static_cast<double>(i);
    s.sig.mss = 1448.0;
    s.sig.cwnd = 1448.0 * (10 + static_cast<double>(i % 50));
    s.sig.acked_bytes = 1448.0;
    s.sig.rtt = 0.05;
    s.cwnd_after = s.sig.cwnd + 1448.0;
    s.ack_seq = 1448.0 * static_cast<double>(i);
    s.loss_event = std::find(losses.begin(), losses.end(), i) != losses.end();
    s.is_dup = std::find(dups.begin(), dups.end(), i) != dups.end();
    if (s.is_dup) s.sig.acked_bytes = 0.0;
    t.samples.push_back(s);
  }
  return t;
}

TEST(Trace, SeriesExtraction) {
  auto t = make_trace(5);
  EXPECT_EQ(t.cwnd_series().size(), 5u);
  EXPECT_EQ(t.time_series().size(), 5u);
  EXPECT_DOUBLE_EQ(t.time_series()[2], 0.02);
}

TEST(Trace, EnvironmentLabelIsDescriptive) {
  Environment env;
  env.bandwidth_bps = 10e6;
  env.rtt_s = 0.05;
  env.seed = 3;
  EXPECT_NE(env.label().find("10.0Mbps"), std::string::npos);
  EXPECT_NE(env.label().find("50ms"), std::string::npos);
}

TEST(Segmentation, SplitsAtRecordedLossEvents) {
  auto t = make_trace(100, {30, 60});
  auto segs = segment_trace(t, 5);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].samples.size(), 30u);
  EXPECT_EQ(segs[0].first_index, 0u);
  EXPECT_EQ(segs[1].first_index, 31u);
  EXPECT_EQ(segs[2].first_index, 61u);
}

TEST(Segmentation, DropsShortSegments) {
  auto t = make_trace(100, {3, 60});
  auto segs = segment_trace(t, 20);
  ASSERT_EQ(segs.size(), 2u);  // first 3-sample fragment dropped
}

TEST(Segmentation, NoLossYieldsSingleSegment) {
  auto t = make_trace(50);
  auto segs = segment_trace(t, 5);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].samples.size(), 50u);
}

TEST(Segmentation, InfersLossFromTripleDupAcks) {
  auto t = make_trace(100, /*losses=*/{}, /*dups=*/{40, 41, 42, 43});
  auto events = infer_loss_events(t);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], 42u);  // the third consecutive dup
  auto segs = segment_trace(t, 5, /*use_recorded_events=*/false);
  EXPECT_EQ(segs.size(), 2u);
}

TEST(Segmentation, ShortDupRunsAreNotLosses) {
  auto t = make_trace(100, {}, {40, 41});
  EXPECT_TRUE(infer_loss_events(t).empty());
}

TEST(Segmentation, SegmentAllPoolsAndSkipsFirst) {
  std::vector<Trace> traces = {make_trace(100, {50}), make_trace(100, {50})};
  EXPECT_EQ(segment_all(traces, 5).size(), 4u);
  EXPECT_EQ(segment_all(traces, 5, /*skip_first=*/true).size(), 2u);
}

TEST(Segmentation, SkipFirstKeepsLossFreeTraces) {
  std::vector<Trace> traces = {make_trace(50)};
  EXPECT_EQ(segment_all(traces, 5, /*skip_first=*/true).size(), 1u);
}

TEST(TrimWarmup, DropsEarlySamples) {
  auto t = make_trace(100);  // timestamps 0 .. 0.99
  auto trimmed = trim_warmup(t, 0.5);
  ASSERT_EQ(trimmed.samples.size(), 50u);
  EXPECT_GE(trimmed.samples.front().sig.now, 0.5);
  EXPECT_EQ(trimmed.cca_name, t.cca_name);
}

TEST(Noise, DropProbabilityThinsSamples) {
  auto t = make_trace(2000);
  NoiseConfig cfg;
  cfg.drop_sample_prob = 0.3;
  util::Rng rng(5);
  auto noisy = add_noise(t, cfg, rng);
  EXPECT_LT(noisy.samples.size(), 1600u);
  EXPECT_GT(noisy.samples.size(), 1200u);
}

TEST(Noise, RttJitterStaysPositiveAndBounded) {
  auto t = make_trace(500);
  NoiseConfig cfg;
  cfg.rtt_jitter_frac = 0.2;
  util::Rng rng(5);
  auto noisy = add_noise(t, cfg, rng);
  ASSERT_EQ(noisy.samples.size(), t.samples.size());
  for (std::size_t i = 0; i < noisy.samples.size(); ++i) {
    EXPECT_GT(noisy.samples[i].sig.rtt, 0.0);
    EXPECT_NEAR(noisy.samples[i].sig.rtt, t.samples[i].sig.rtt, 0.05 * 0.2 + 1e-9);
  }
}

TEST(Noise, TimeJitterPreservesMonotonicity) {
  auto t = make_trace(500);
  NoiseConfig cfg;
  cfg.time_jitter_s = 0.02;  // larger than the 10ms sample spacing
  util::Rng rng(5);
  auto noisy = add_noise(t, cfg, rng);
  for (std::size_t i = 1; i < noisy.samples.size(); ++i) {
    EXPECT_GT(noisy.samples[i].sig.now, noisy.samples[i - 1].sig.now);
  }
}

TEST(Noise, ZeroConfigIsIdentity) {
  auto t = make_trace(100);
  util::Rng rng(5);
  auto noisy = add_noise(t, NoiseConfig{}, rng);
  ASSERT_EQ(noisy.samples.size(), t.samples.size());
  EXPECT_DOUBLE_EQ(noisy.samples[50].cwnd_after, t.samples[50].cwnd_after);
}

TEST(TraceIo, CsvRoundTrip) {
  auto t = make_trace(20, {10}, {5});
  t.cca_name = "reno";
  t.env.seed = 77;
  auto parsed = from_csv(to_csv(t));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->cca_name, "reno");
  EXPECT_EQ(parsed->env.seed, 77u);
  ASSERT_EQ(parsed->samples.size(), t.samples.size());
  EXPECT_DOUBLE_EQ(parsed->samples[7].cwnd_after, t.samples[7].cwnd_after);
  EXPECT_EQ(parsed->samples[10].loss_event, true);
  EXPECT_EQ(parsed->samples[5].is_dup, true);
}

TEST(TraceIo, RejectsGarbage) {
  auto r = from_csv("not,a,trace\n1,2,3\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kParseError);
  EXPECT_FALSE(from_csv("").ok());
}

TEST(TraceIo, FileRoundTrip) {
  auto t = make_trace(10);
  const std::string path = testing::TempDir() + "/abg_trace_test.csv";
  ASSERT_TRUE(save_csv(t, path).is_ok());
  auto loaded = load_csv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->samples.size(), 10u);
}

TEST(TraceIo, MissingFileIsIoError) {
  auto r = load_csv(testing::TempDir() + "/does_not_exist_abg.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kIoError);
  // The context chain names the offending file.
  EXPECT_NE(r.status().message().find("does_not_exist_abg"), std::string::npos);
}

TEST(TraceIo, CorruptedMetadataIsParseError) {
  auto csv = to_csv(make_trace(5));
  const auto pos = csv.find("bw=");
  ASSERT_NE(pos, std::string::npos);
  csv.replace(pos, 4, "bw=?");  // "bw=1..." -> "bw=?..." : unparseable number
  auto r = from_csv(csv);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kParseError);
}

TEST(TraceIo, TruncatedRowRejectedStrictlyDroppedInRepair) {
  auto csv = to_csv(make_trace(6));
  // Chop the file mid-way through the final data row.
  csv.resize(csv.rfind('\n', csv.size() - 2) + 5);
  csv += "\n";
  auto strict = from_csv(csv);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), util::StatusCode::kParseError);

  const auto dropped_before = obs::counter("trace.rows_dropped").value();
  LoadOptions repair;
  repair.repair = true;
  auto repaired = from_csv(csv, repair);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->samples.size(), 5u);
  EXPECT_EQ(obs::counter("trace.rows_dropped").value(), dropped_before + 1);
}

TEST(TraceIo, NonFiniteFieldIsNumericError) {
  auto t = make_trace(5);
  t.samples[2].sig.rtt = std::numeric_limits<double>::quiet_NaN();
  auto r = from_csv(to_csv(t));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kNumericError);
}

TEST(TraceIo, NegativeCwndIsInvalidTrace) {
  auto t = make_trace(5);
  t.samples[3].sig.cwnd = -1448.0;
  auto r = from_csv(to_csv(t));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidTrace);
}

TEST(TraceIo, NonMonotonicTimeRejectedStrictlyDroppedInRepair) {
  auto t = make_trace(6);
  t.samples[4].sig.now = t.samples[1].sig.now;  // clock went backwards
  auto strict = from_csv(to_csv(t));
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), util::StatusCode::kInvalidTrace);

  LoadOptions repair;
  repair.repair = true;
  auto repaired = from_csv(to_csv(t), repair);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->samples.size(), 5u);
}

TEST(TraceIo, RepairClampsNegativeClampableFields) {
  auto t = make_trace(5);
  t.samples[1].sig.acked_bytes = -100.0;  // clampable, not fatal
  const auto repaired_before = obs::counter("trace.rows_repaired").value();
  LoadOptions repair;
  repair.repair = true;
  auto r = from_csv(to_csv(t), repair);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->samples.size(), 5u);
  EXPECT_DOUBLE_EQ(r->samples[1].sig.acked_bytes, 0.0);
  EXPECT_EQ(obs::counter("trace.rows_repaired").value(), repaired_before + 1);
}

TEST(TraceIo, EmptyAfterRepairIsInvalidTrace) {
  auto t = make_trace(1);
  t.samples[0].sig.cwnd = -1.0;  // the only row is unrepairable
  LoadOptions repair;
  repair.repair = true;
  auto r = from_csv(to_csv(t), repair);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidTrace);
}

TEST(Validate, RejectsBadEnvironment) {
  auto t = make_trace(5);
  t.env.random_loss = 1.5;  // probabilities live in [0, 1]
  auto st = validate_trace(t);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), util::StatusCode::kInvalidTrace);
}

double mean_cwnd(const Segment& s) {
  double sum = 0;
  for (const auto& x : s.samples) sum += x.cwnd_after;
  return sum / static_cast<double>(s.samples.size());
}

TEST(Sampler, SelectsRequestedCount) {
  std::vector<Trace> traces = {make_trace(300, {50, 100, 150, 200, 250})};
  auto segs = segment_all(traces, 10);
  ASSERT_GE(segs.size(), 5u);
  auto dist = [](const Segment& a, const Segment& b) {
    return std::fabs(mean_cwnd(a) - mean_cwnd(b));
  };
  util::Rng rng(1);
  auto sel = select_diverse_segments(segs, 4, dist, rng);
  EXPECT_EQ(sel.size(), 4u);
  std::set<std::size_t> uniq(sel.begin(), sel.end());
  EXPECT_EQ(uniq.size(), 4u);
}

TEST(Sampler, CapsAtPoolSize) {
  std::vector<Trace> traces = {make_trace(100, {50})};
  auto segs = segment_all(traces, 10);
  auto dist = [](const Segment&, const Segment&) { return 1.0; };
  util::Rng rng(1);
  EXPECT_EQ(select_diverse_segments(segs, 50, dist, rng).size(), segs.size());
}

TEST(Sampler, GrowIsIncremental) {
  std::vector<Trace> traces = {make_trace(400, {50, 100, 150, 200, 250, 300, 350})};
  auto segs = segment_all(traces, 10);
  auto dist = [](const Segment& a, const Segment& b) {
    return std::fabs(mean_cwnd(a) - mean_cwnd(b));
  };
  SegmentSampler sampler(&segs, dist, 9);
  sampler.grow_to(2);
  auto first = sampler.selected();
  sampler.grow_to(4);
  auto second = sampler.selected();
  ASSERT_EQ(second.size(), 4u);
  // The first two picks are preserved.
  EXPECT_EQ(std::vector<std::size_t>(second.begin(), second.begin() + 2), first);
}

TEST(Sampler, SecondPickIsFarthestFromFirst) {
  // Segments with means 10, 11, 12, ..., plus one extreme outlier.
  std::vector<Segment> segs;
  for (int i = 0; i < 6; ++i) {
    Segment s;
    for (int j = 0; j < 5; ++j) {
      AckSample a;
      a.cwnd_after = (i == 5 ? 1000.0 : 10.0 + i);
      s.samples.push_back(a);
    }
    segs.push_back(std::move(s));
  }
  auto dist = [](const Segment& a, const Segment& b) {
    return std::fabs(mean_cwnd(a) - mean_cwnd(b));
  };
  util::Rng rng(2);
  auto sel = select_diverse_segments(segs, 2, dist, rng);
  ASSERT_EQ(sel.size(), 2u);
  // Whatever the random first pick was, the greedy second pick must be the
  // outlier (or the random pick itself was the outlier and the farthest is
  // any normal one).
  const bool outlier_in = sel[0] == 5 || sel[1] == 5;
  EXPECT_TRUE(outlier_in);
}

}  // namespace
}  // namespace abg::trace
