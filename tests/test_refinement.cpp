// End-to-end synthesis tests. These run the full refinement loop on real
// simulator traces with deliberately small search bounds so the suite stays
// fast; the full-size runs live in bench/.
#include <gtest/gtest.h>

#include "dsl/known_handlers.hpp"
#include "net/simulator.hpp"
#include "synth/refinement.hpp"
#include "synth/replay.hpp"

namespace abg::synth {
namespace {

std::vector<trace::Segment> reno_segments() {
  static const auto segments = [] {
    trace::Environment env;
    env.bandwidth_bps = 10e6;
    env.rtt_s = 0.04;
    env.duration_s = 10.0;
    env.seed = 21;
    auto t = net::run_connection("reno", env);
    return trace::segment_all({trace::trim_warmup(t, 2.0)}, 20);
  }();
  return segments;
}

SynthesisOptions quick_opts() {
  SynthesisOptions o;
  o.initial_samples = 6;
  o.initial_keep = 3;
  o.initial_segments = 2;
  o.concretize_budget = 12;
  o.max_iterations = 3;
  o.exhaustive_cap = 60;
  o.max_depth = 3;
  o.max_nodes = 5;
  o.max_holes = 2;
  o.threads = 2;
  o.seed = 5;
  return o;
}

TEST(ScoreSketch, FindsBestConstantForRenoSketch) {
  auto segs = reno_segments();
  ASSERT_GE(segs.size(), 2u);
  // Sketch: cwnd + c * reno-inc; the pool contains good and bad constants.
  auto sketch = dsl::add(dsl::sig(dsl::Signal::kCwnd),
                         dsl::mul(dsl::hole(0), dsl::sig(dsl::Signal::kRenoInc)));
  SynthesisOptions opts = quick_opts();
  util::Rng rng(3);
  std::size_t scored = 0;
  auto best = score_sketch(sketch, {segs[0], segs[1]}, {0.001, 1.0, 100.0}, opts, rng, &scored);
  ASSERT_TRUE(best.valid());
  EXPECT_EQ(scored, 3u);
  // The winning constant must be the sane one.
  EXPECT_NE(dsl::to_string(*best.handler).find("1 "), std::string::npos);
}

TEST(ScoreSketch, HoleFreeSketchScoresOnce) {
  auto segs = reno_segments();
  auto handler = dsl::add(dsl::sig(dsl::Signal::kCwnd), dsl::sig(dsl::Signal::kRenoInc));
  SynthesisOptions opts = quick_opts();
  util::Rng rng(3);
  std::size_t scored = 0;
  auto best = score_sketch(handler, {segs[0]}, dsl::default_constant_pool(), opts, rng, &scored);
  EXPECT_EQ(scored, 1u);
  EXPECT_TRUE(best.valid());
}

TEST(Synthesize, RecoversRenoFamilyHandler) {
  auto segs = reno_segments();
  ASSERT_GE(segs.size(), 3u);
  auto result = synthesize(dsl::reno_dsl(), segs, quick_opts());
  ASSERT_TRUE(result.best.valid());
  // The recovered handler must track the trace at least as well as the
  // domain expert's fine-tuned expression on the final working set.
  const auto& fine_tuned = *dsl::known_handlers("reno").fine_tuned;
  const double ft = total_distance(fine_tuned, segs, distance::Metric::kDtw);
  const double got = total_distance(*result.best.handler, segs, distance::Metric::kDtw);
  EXPECT_LT(got, 3.0 * ft) << dsl::to_string(*result.best.handler);
  // Structure check: it must grow from cwnd (the Reno-variant shape).
  const auto sigs = dsl::signals_used(*result.best.handler);
  EXPECT_TRUE(std::find(sigs.begin(), sigs.end(), dsl::Signal::kCwnd) != sigs.end() ||
              std::find(sigs.begin(), sigs.end(), dsl::Signal::kRenoInc) != sigs.end());
}

TEST(Synthesize, ReportsIterations) {
  auto segs = reno_segments();
  auto result = synthesize(dsl::reno_dsl(), segs, quick_opts());
  ASSERT_FALSE(result.iterations.empty());
  const auto& it0 = result.iterations.front();
  EXPECT_EQ(it0.n_target, 6);
  EXPECT_EQ(it0.keep, 3);
  EXPECT_EQ(it0.segments_used, 2u);
  EXPECT_EQ(it0.buckets.size(), result.initial_buckets);
  // Scores ascend.
  for (std::size_t i = 1; i < it0.buckets.size(); ++i) {
    EXPECT_LE(it0.buckets[i - 1].score, it0.buckets[i].score);
  }
  // Retained set is a prefix-by-score superset of k (ties allowed).
  std::size_t retained = 0;
  for (const auto& b : it0.buckets) retained += b.retained;
  EXPECT_GE(retained, 1u);
}

TEST(Synthesize, IterationGrowsNAndShrinksK) {
  auto segs = reno_segments();
  auto result = synthesize(dsl::reno_dsl(), segs, quick_opts());
  if (result.iterations.size() >= 2) {
    EXPECT_EQ(result.iterations[1].n_target, 6 * 8);
    EXPECT_LE(result.iterations[1].keep, 3);
    EXPECT_GE(result.iterations[1].segments_used, result.iterations[0].segments_used);
    EXPECT_LE(result.iterations[1].buckets.size(), result.iterations[0].buckets.size());
  }
}

TEST(Synthesize, BucketRankLocatesTargetBucket) {
  auto segs = reno_segments();
  auto result = synthesize(dsl::reno_dsl(), segs, quick_opts());
  const auto target = bucket_of(*dsl::to_sketch(dsl::known_handlers("reno").fine_tuned));
  auto rank = result.bucket_rank(target.label, 0);
  ASSERT_TRUE(rank.has_value());
  EXPECT_GE(rank->first, 1u);
  EXPECT_LE(rank->first, rank->second);
  EXPECT_FALSE(result.bucket_rank("{nonexistent}", 0).has_value());
  EXPECT_FALSE(result.bucket_rank(target.label, 99).has_value());
}

TEST(Synthesize, TimeoutReturnsBestSoFar) {
  auto segs = reno_segments();
  SynthesisOptions opts = quick_opts();
  opts.timeout_s = 0.0;  // expire immediately after the first iteration
  auto result = synthesize(dsl::reno_dsl(), segs, opts);
  EXPECT_TRUE(result.timed_out);
  EXPECT_TRUE(result.best.valid());  // still returns the best found (§4.4)
}

TEST(Synthesize, DeterministicForSameSeed) {
  auto segs = reno_segments();
  SynthesisOptions opts = quick_opts();
  opts.threads = 3;  // determinism must hold regardless of scheduling
  auto a = synthesize(dsl::reno_dsl(), segs, opts);
  auto b = synthesize(dsl::reno_dsl(), segs, opts);
  ASSERT_TRUE(a.best.valid() && b.best.valid());
  EXPECT_EQ(dsl::to_string(*a.best.handler), dsl::to_string(*b.best.handler));
  EXPECT_DOUBLE_EQ(a.best.distance, b.best.distance);
}

TEST(Synthesize, CountsWorkDone) {
  auto segs = reno_segments();
  auto result = synthesize(dsl::reno_dsl(), segs, quick_opts());
  EXPECT_GT(result.total_sketches, 0u);
  EXPECT_GT(result.total_handlers_scored, result.total_sketches / 2);
  EXPECT_GT(result.seconds, 0.0);
}

}  // namespace
}  // namespace abg::synth
