#include <gtest/gtest.h>

#include "cca/bbr.hpp"
#include "cca/cca.hpp"
#include "cca/cubic_family.hpp"
#include "cca/delay_family.hpp"
#include "cca/reno_family.hpp"
#include "cca/student.hpp"

namespace abg::cca {
namespace {

constexpr double kMss = 1448.0;

Signals steady_signals(double cwnd_pkts, double rtt = 0.05, double min_rtt = 0.05) {
  Signals s;
  s.mss = kMss;
  s.cwnd = cwnd_pkts * kMss;
  s.acked_bytes = kMss;
  s.rtt = rtt;
  s.srtt = rtt;
  s.min_rtt = min_rtt;
  s.max_rtt = std::max(rtt, min_rtt) * 1.5;
  s.ack_rate = s.cwnd / rtt;
  s.now = 10.0;
  s.time_since_loss = 2.0;
  return s;
}

TEST(Registry, CreatesEveryRegisteredCca) {
  for (const auto& name : all_cca_names()) {
    auto cca = make_cca(name);
    ASSERT_NE(cca, nullptr) << name;
    EXPECT_EQ(cca->name(), name);
  }
}

TEST(Registry, ThrowsOnUnknownName) { EXPECT_THROW(make_cca("nope"), std::invalid_argument); }

TEST(Registry, SplitsKernelAndStudentCcas) {
  EXPECT_EQ(kernel_cca_names().size(), 16u);
  EXPECT_EQ(student_cca_names().size(), 7u);
  EXPECT_EQ(all_cca_names().size(), 23u);
}

TEST(Reno, SlowStartGrowsByAckedBytes) {
  Reno reno;
  reno.init(kMss, 10 * kMss);
  EXPECT_TRUE(reno.in_slow_start());
  auto sig = steady_signals(10);
  const double next = reno.on_ack(sig);
  EXPECT_DOUBLE_EQ(next, 11 * kMss);
}

TEST(Reno, CongestionAvoidanceAddsRenoIncrement) {
  Reno reno;
  reno.init(kMss, 10 * kMss);
  auto sig = steady_signals(10);
  reno.on_loss(sig);  // leaves cwnd == ssthresh == 5 MSS: now in CA
  sig.cwnd = 5 * kMss;
  const double before = 5 * kMss;
  const double next = reno.on_ack(sig);
  EXPECT_NEAR(next - before, kMss * kMss / before, 1e-9);
}

TEST(Reno, LossHalvesWindow) {
  Reno reno;
  reno.init(kMss, 20 * kMss);
  auto sig = steady_signals(20);
  EXPECT_DOUBLE_EQ(reno.on_loss(sig), 10 * kMss);
}

TEST(Reno, WindowNeverBelowTwoMss) {
  Reno reno;
  reno.init(kMss, 2 * kMss);
  auto sig = steady_signals(2);
  EXPECT_GE(reno.on_loss(sig), 2 * kMss);
}

TEST(Westwood, LossSetsWindowToBdp) {
  Westwood w;
  w.init(kMss, 40 * kMss);
  auto sig = steady_signals(40);
  sig.ack_rate = 20 * kMss / 0.05;  // BDP = 20 pkts
  sig.min_rtt = 0.05;
  EXPECT_NEAR(w.on_loss(sig), 20 * kMss, 1e-6);
}

TEST(Westwood, LossFallsBackToHalvingWithoutRateEstimate) {
  Westwood w;
  w.init(kMss, 40 * kMss);
  auto sig = steady_signals(40);
  sig.ack_rate = 0.0;
  EXPECT_DOUBLE_EQ(w.on_loss(sig), 20 * kMss);
}

TEST(Scalable, IncreaseProportionalToAcked) {
  Scalable s;
  s.init(kMss, 100 * kMss);
  auto sig = steady_signals(100);
  s.on_loss(sig);  // exit slow start (ssthresh = 87.5 pkts)
  sig.cwnd = 87.5 * kMss;
  const double next = s.on_ack(sig);
  EXPECT_NEAR(next - 87.5 * kMss, 0.01 * kMss, 1e-9);
}

TEST(Scalable, GentleMultiplicativeDecrease) {
  Scalable s;
  s.init(kMss, 100 * kMss);
  auto sig = steady_signals(100);
  EXPECT_NEAR(s.on_loss(sig), 87.5 * kMss, 1e-6);
}

TEST(Hybla, HighRttIncreasesFaster) {
  Hybla fast, slow;
  fast.init(kMss, 10 * kMss);
  slow.init(kMss, 10 * kMss);
  auto sig_fast = steady_signals(10, 0.2, 0.2);   // rho = 8
  auto sig_slow = steady_signals(10, 0.025, 0.025);  // rho = 1
  fast.on_loss(sig_fast);
  slow.on_loss(sig_slow);
  const double base = 5 * kMss;
  sig_fast.cwnd = sig_slow.cwnd = base;
  const double inc_fast = fast.on_ack(sig_fast) - base;
  const double inc_slow = slow.on_ack(sig_slow) - base;
  EXPECT_GT(inc_fast, 10 * inc_slow);
}

TEST(LowPriority, BacksOffOnQueueingDelayWithoutLoss) {
  LowPriority lp;
  lp.init(kMss, 20 * kMss);
  auto sig = steady_signals(20);
  lp.on_loss(sig);  // exit slow start at 10 pkts
  sig.cwnd = 10 * kMss;
  sig.min_rtt = 0.05;
  sig.max_rtt = 0.15;
  sig.rtt = 0.14;  // queueing delay way past 15% of the range
  sig.now = 20.0;
  const double next = lp.on_ack(sig);
  EXPECT_LT(next, 10 * kMss);  // backed off without a loss event
}

TEST(HighSpeed, LargerWindowsGetLargerIncrease) {
  HighSpeed hs;
  hs.init(kMss, 2000 * kMss);
  auto sig = steady_signals(2000);
  const double w = hs.on_loss(sig);  // exits slow start at ~1400 pkts
  sig.cwnd = w;
  const double inc_big = hs.on_ack(sig) - w;

  HighSpeed hs2;
  hs2.init(kMss, 20 * kMss);
  auto sig2 = steady_signals(20);
  const double w2 = hs2.on_loss(sig2);
  sig2.cwnd = w2;
  const double inc_small = hs2.on_ack(sig2) - w2;
  // a(w) scales the *per-RTT* growth (one window's worth of ACKs), so
  // compare per-RTT increments: per-ACK increase times packets per window.
  EXPECT_GT(inc_big * w / kMss, 3 * inc_small * w2 / kMss);
}

TEST(VegasQueueEstimate, ZeroAtBaseRtt) {
  auto sig = steady_signals(10, 0.05, 0.05);
  EXPECT_DOUBLE_EQ(vegas_queue_estimate(sig), 0.0);
}

TEST(VegasQueueEstimate, CountsQueuedPackets) {
  auto sig = steady_signals(10, 0.10, 0.05);
  // cwnd * (rtt - min) / (rtt * mss) = 10 * 0.05 / 0.10 = 5 packets.
  EXPECT_NEAR(vegas_queue_estimate(sig), 5.0, 1e-9);
}

TEST(Vegas, HoldsInsideAlphaBetaBand) {
  Vegas v;
  v.init(kMss, 20 * kMss);
  auto sig = steady_signals(20);
  v.on_loss(sig);  // exit slow start
  sig.cwnd = 10 * kMss;
  sig.rtt = 0.0652;  // queue estimate ~ 2.33 packets: inside [2, 4]
  sig.min_rtt = 0.05;
  const double before = sig.cwnd;
  EXPECT_DOUBLE_EQ(v.on_ack(sig), before);
}

TEST(Vegas, IncreasesWhenQueueShort) {
  Vegas v;
  v.init(kMss, 20 * kMss);
  auto sig = steady_signals(20);
  v.on_loss(sig);
  sig.cwnd = 10 * kMss;
  sig.rtt = 0.05;  // empty queue
  sig.min_rtt = 0.05;
  EXPECT_GT(v.on_ack(sig), sig.cwnd);
}

TEST(Vegas, DecreasesWhenQueueLong) {
  Vegas v;
  v.init(kMss, 20 * kMss);
  auto sig = steady_signals(20);
  v.on_loss(sig);
  sig.cwnd = 10 * kMss;
  sig.rtt = 0.2;  // queue ~ 7.5 packets > beta
  sig.min_rtt = 0.05;
  EXPECT_LT(v.on_ack(sig), sig.cwnd);
}

TEST(Veno, RandomLossGetsGentlerBackoff) {
  Veno congested, random_loss;
  congested.init(kMss, 20 * kMss);
  random_loss.init(kMss, 20 * kMss);
  auto sig_cong = steady_signals(20, 0.2, 0.05);   // long queue
  auto sig_rand = steady_signals(20, 0.05, 0.05);  // empty queue
  EXPECT_DOUBLE_EQ(congested.on_loss(sig_cong), 10 * kMss);   // halve
  EXPECT_DOUBLE_EQ(random_loss.on_loss(sig_rand), 16 * kMss); // * 0.8
}

TEST(Yeah, FastModeWhenQueueShort) {
  Yeah y;
  y.init(kMss, 20 * kMss);
  auto sig = steady_signals(20);
  const double w = y.on_loss(sig);
  sig.cwnd = w;
  sig.rtt = sig.min_rtt;  // empty queue -> fast (Scalable-style) mode
  const double inc = y.on_ack(sig) - w;
  EXPECT_NEAR(inc, 0.01 * kMss, 1e-9);
}

TEST(Illinois, IncreaseShrinksWithDelay) {
  Illinois i1, i2;
  i1.init(kMss, 20 * kMss);
  i2.init(kMss, 20 * kMss);
  auto near_empty = steady_signals(20, 0.05, 0.05);
  near_empty.max_rtt = 0.2;
  auto congested = steady_signals(20, 0.19, 0.05);
  congested.srtt = 0.19;
  congested.max_rtt = 0.2;
  i1.on_loss(near_empty);
  i2.on_loss(congested);
  near_empty.cwnd = congested.cwnd = 10 * kMss;
  const double inc_fast = i1.on_ack(near_empty) - near_empty.cwnd;
  const double inc_slow = i2.on_ack(congested) - congested.cwnd;
  EXPECT_GT(inc_fast, 5 * inc_slow);
}

TEST(Htcp, IncreaseGrowsWithTimeSinceLoss) {
  Htcp h;
  h.init(kMss, 20 * kMss);
  auto sig = steady_signals(20);
  const double w = h.on_loss(sig);
  sig.cwnd = w;
  sig.time_since_loss = 0.5;
  const double inc_early = h.on_ack(sig) - w;

  Htcp h2;
  h2.init(kMss, 20 * kMss);
  auto sig2 = steady_signals(20);
  const double w2 = h2.on_loss(sig2);
  sig2.cwnd = w2;
  sig2.time_since_loss = 5.0;
  const double inc_late = h2.on_ack(sig2) - w2;
  EXPECT_GT(inc_late, 10 * inc_early);
}

TEST(Htcp, BackoffTracksRttRatio) {
  Htcp h;
  h.init(kMss, 20 * kMss);
  auto sig = steady_signals(20);
  sig.min_rtt = 0.06;
  sig.max_rtt = 0.10;  // ratio 0.6, within [0.5, 0.8]
  EXPECT_NEAR(h.on_loss(sig), 20 * kMss * 0.6, 1e-6);
}

TEST(Bic, BinarySearchMovesTowardOldMax) {
  Bic b;
  b.init(kMss, 100 * kMss);
  auto sig = steady_signals(100);
  b.on_loss(sig);  // w_max = 100 pkts, cwnd = 80 pkts
  sig.cwnd = 80 * kMss;
  const double next = b.on_ack(sig);
  EXPECT_GT(next, 80 * kMss);
  EXPECT_LT(next, 100 * kMss);
}

TEST(Cubic, RecoversTowardWmaxAfterLoss) {
  Cubic c;
  c.init(kMss, 100 * kMss);
  auto sig = steady_signals(100);
  c.on_loss(sig);  // w_max = 100 pkts, cwnd = 70 pkts
  double cwnd = 70 * kMss;
  // Drive two seconds of ACKs; the cubic curve must climb back toward 100.
  for (int i = 0; i < 200; ++i) {
    sig.cwnd = cwnd;
    sig.now = 10.0 + i * 0.01;
    cwnd = c.on_ack(sig);
  }
  EXPECT_GT(cwnd / kMss, 85.0);
  EXPECT_LT(cwnd / kMss, 130.0);
}

TEST(Bbr, StartupExitsOnBandwidthPlateau) {
  Bbr b;
  b.init(kMss, 10 * kMss);
  EXPECT_TRUE(b.in_slow_start());
  auto sig = steady_signals(10);
  sig.ack_rate = 1e6;  // constant rate: plateau after a few ACKs
  for (int i = 0; i < 10 && b.in_slow_start(); ++i) {
    sig.now = 10.0 + i * 0.01;
    b.on_ack(sig);
  }
  EXPECT_FALSE(b.in_slow_start());
}

TEST(Bbr, ProbeBwTracksBdpWithGainCycle) {
  Bbr b;
  b.init(kMss, 10 * kMss);
  auto sig = steady_signals(10);
  sig.ack_rate = 50 * kMss / 0.05;  // BDP = 50 packets
  sig.min_rtt = 0.05;
  double lo = 1e18, hi = 0.0;
  for (int i = 0; i < 2000; ++i) {
    sig.now = 10.0 + i * 0.005;
    const double w = b.on_ack(sig);
    if (i > 500) {  // past STARTUP/DRAIN
      lo = std::min(lo, w);
      hi = std::max(hi, w);
    }
  }
  const double bdp = 50 * kMss;
  EXPECT_NEAR(hi, 2.0 * bdp * 1.25, bdp * 0.6);  // probing phase
  EXPECT_LT(lo, 2.0 * bdp);                      // draining phase dips
}

TEST(Bbr, LossBarelyMovesWindow) {
  Bbr b;
  b.init(kMss, 50 * kMss);
  auto sig = steady_signals(50);
  sig.ack_rate = 50 * kMss / 0.05;
  b.on_ack(sig);
  const double before = b.on_ack(sig);
  const double after = b.on_loss(sig);
  EXPECT_GT(after, before * 0.5);  // nothing like Reno's halving
}

TEST(Students, ConstantWindowCcasPinTheirWindow) {
  for (const char* name : {"student4", "student5"}) {
    auto s = make_cca(name);
    s->init(kMss, 10 * kMss);
    auto sig = steady_signals(10);
    EXPECT_DOUBLE_EQ(s->on_ack(sig), 2 * kMss) << name;
    EXPECT_DOUBLE_EQ(s->on_loss(sig), 2 * kMss) << name;
  }
}

TEST(Students, Student1RampsToEightyEightPackets) {
  Student1 s;
  s.init(kMss, 10 * kMss);
  auto sig = steady_signals(10);
  double w = 10 * kMss;
  for (int i = 0; i < 500; ++i) {
    sig.cwnd = w;
    w = s.on_ack(sig);
  }
  EXPECT_DOUBLE_EQ(w, 88 * kMss);
  EXPECT_DOUBLE_EQ(s.on_loss(sig), w);  // loss-agnostic
}

TEST(Students, Student3TracksDeliveryRate) {
  Student3 s;
  s.init(kMss, 10 * kMss);
  auto sig = steady_signals(10);
  sig.ack_rate = 100 * kMss / 0.05;
  sig.min_rtt = 0.05;
  EXPECT_NEAR(s.on_ack(sig), 0.8 * 100 * kMss, 1e-6);
}

TEST(Students, Student6BacksOffOnRisingGradientOncePerRtt) {
  Student6 s;
  s.init(kMss, 100 * kMss);
  auto sig = steady_signals(100);
  sig.rtt_gradient = 0.5;
  sig.now = 10.0;
  const double after1 = s.on_ack(sig);
  EXPECT_NEAR(after1, 80 * kMss, 1e-6);
  sig.cwnd = after1;
  sig.now = 10.001;  // within the same RTT: no second backoff
  EXPECT_GT(s.on_ack(sig), after1);
}

}  // namespace
}  // namespace abg::cca
