// Chaos/robustness suite for the crash-durable synthesis service (ISSUE 8):
// WAL torn-write and corrupted-record recovery, injected I/O faults during
// enqueue surfacing as clean kIoError with the queue intact, token-bucket
// admission under a deterministic clock, the HTTP job API end to end over
// loopback, and the kill-9 golden test — a job interrupted by a simulated
// crash and recovered on a second Service over the same state dir must
// produce a bit-identical result (same handler, same distance) to an
// uninterrupted run.
//
// Lives in its own executable (abg_tests_serve): it runs real (small)
// synthesis jobs, so it is slower than the fast suite.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/simulator.hpp"
#include "obs/registry.hpp"
#include "serve/admission.hpp"
#include "serve/job_store.hpp"
#include "serve/queue.hpp"
#include "serve/service.hpp"
#include "serve/wal.hpp"
#include "trace/trace_io.hpp"
#include "util/fault_injection.hpp"
#include "util/json_parse.hpp"
#include "util/status.hpp"

namespace abg::serve {
namespace {

using util::StatusCode;

struct FaultGuard {
  explicit FaultGuard(const util::fault::Config& cfg) { util::fault::set_config(cfg); }
  ~FaultGuard() { util::fault::set_config({}); }
};

std::string fresh_dir(const char* tag) {
  std::string tmpl = testing::TempDir() + "abg_serve_" + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* dir = ::mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr);
  return dir ? std::string(dir) : std::string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void append_raw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << bytes;
}

// Shared quick-synthesis fixture: a reno trace on disk plus the spec JSON
// that reverse-engineers it with small budgets. Everything is seeded, so two
// runs of this spec are deterministic.
const std::string& reno_csv() {
  static const std::string path = [] {
    trace::Environment env;
    env.bandwidth_bps = 10e6;
    env.rtt_s = 0.04;
    env.duration_s = 10.0;
    env.seed = 21;
    auto t = net::run_connection("reno", env);
    const std::string p = testing::TempDir() + "abg_serve_reno.csv";
    EXPECT_TRUE(trace::save_csv(t, p).is_ok());
    return p;
  }();
  return path;
}

std::string quick_spec_json() {
  return std::string("{\"traces\":[\"") + reno_csv() +
         "\"],\"dsl\":\"reno\",\"seed\":5,\"max_iterations\":3,"
         "\"initial_samples\":6,\"concretize_budget\":12,\"max_depth\":3,"
         "\"max_nodes\":5,\"max_holes\":2,\"timeout_s\":60}";
}

ServiceOptions quick_service_opts(const std::string& state_dir) {
  ServiceOptions o;
  o.state_dir = state_dir;
  o.engine.threads = 2;
  o.engine.max_concurrent_jobs = 1;
  o.queue_depth = 8;
  o.admission.rate_per_s = 1000.0;  // tests that want throttling override this
  o.admission.burst = 1000.0;
  return o;
}

bool wait_for(const std::function<bool()>& pred, double timeout_s = 120.0) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_s);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return true;
}

bool wait_terminal(Service& s, const std::string& id, JobRecord* out,
                   double timeout_s = 120.0) {
  const bool ok = wait_for(
      [&] {
        JobRecord rec;
        return s.store().lookup(id, &rec) && job_phase_terminal(rec.phase);
      },
      timeout_s);
  if (ok) s.store().lookup(id, out);
  return ok;
}

// --- minimal loopback HTTP client (mirrors test_status.cpp) -----------------

std::string http_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[2048];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_post(std::uint16_t port, const std::string& path,
                      const std::string& body, const std::string& extra = "") {
  return http_request(port, "POST " + path + " HTTP/1.1\r\nHost: x\r\n" + extra +
                                "Content-Length: " + std::to_string(body.size()) +
                                "\r\n\r\n" + body);
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_request(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const std::size_t p = response.find("\r\n\r\n");
  return p == std::string::npos ? std::string() : response.substr(p + 4);
}

// Pull a top-level field out of a JSON response body.
std::string json_field(const std::string& body, const std::string& key) {
  auto doc = util::parse_json(body);
  if (!doc.ok() || !doc->is_object()) return {};
  const auto* v = doc->find(key);
  if (!v) return {};
  return v->is_string() ? v->as_string() : std::string();
}

// --- WAL ---------------------------------------------------------------------

TEST(Wal, RoundTripsRecordsAcrossReopen) {
  const std::string dir = fresh_dir("wal");
  const std::string path = dir + "/wal.log";
  {
    Wal w;
    std::vector<std::string> records;
    ASSERT_TRUE(w.open(path, &records).is_ok());
    EXPECT_TRUE(records.empty());
    ASSERT_TRUE(w.append("submit\tj-1\talice").is_ok());
    ASSERT_TRUE(w.append("running\tj-1").is_ok());
    ASSERT_TRUE(w.append("progress\tj-1\t2", /*durable=*/false).is_ok());
  }
  Wal w;
  std::vector<std::string> records;
  ASSERT_TRUE(w.open(path, &records).is_ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "submit\tj-1\talice");
  EXPECT_EQ(records[2], "progress\tj-1\t2");
}

TEST(Wal, TornTailIsDroppedAndTruncatedOnOpen) {
  const std::string dir = fresh_dir("torn");
  const std::string path = dir + "/wal.log";
  {
    Wal w;
    std::vector<std::string> records;
    ASSERT_TRUE(w.open(path, &records).is_ok());
    ASSERT_TRUE(w.append("submit\tj-1\ta").is_ok());
    ASSERT_TRUE(w.append("done\tj-1").is_ok());
  }
  const std::string intact = read_file(path);
  // A torn final append: half a record, no newline.
  append_raw(path, "0123456789abcdef submit\tj-2");

  Wal w;
  std::vector<std::string> records;
  ASSERT_TRUE(w.open(path, &records).is_ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1], "done\tj-1");
  // The tail was physically truncated, so appends continue cleanly.
  EXPECT_EQ(read_file(path), intact);
  ASSERT_TRUE(w.append("submit\tj-3\tb").is_ok());
  w.close();
  std::size_t torn = 99;
  auto replayed = Wal::replay_file(path, &torn);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->size(), 3u);
  EXPECT_EQ(torn, 0u);
}

TEST(Wal, ReplayStopsAtCorruptedRecord) {
  const std::string dir = fresh_dir("corrupt");
  const std::string path = dir + "/wal.log";
  {
    Wal w;
    std::vector<std::string> records;
    ASSERT_TRUE(w.open(path, &records).is_ok());
    ASSERT_TRUE(w.append("submit\tj-1\ta").is_ok());
    ASSERT_TRUE(w.append("running\tj-1").is_ok());
    ASSERT_TRUE(w.append("done\tj-1").is_ok());
  }
  // Flip a byte inside the second record's payload: its checksum no longer
  // matches, so replay must stop there — keeping record 1, dropping 2 and 3
  // (a matching-prefix guarantee, not record skipping).
  std::string content = read_file(path);
  const std::size_t second = content.find("running");
  ASSERT_NE(second, std::string::npos);
  content[second] = 'X';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
  }
  std::size_t torn = 0;
  auto replayed = Wal::replay_file(path, &torn);
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed->size(), 1u);
  EXPECT_EQ((*replayed)[0], "submit\tj-1\ta");
  EXPECT_GT(torn, 0u);
}

TEST(Wal, RejectsMultilinePayloadsAndClosedAppends) {
  const std::string dir = fresh_dir("invalid");
  Wal w;
  std::vector<std::string> records;
  ASSERT_TRUE(w.open(dir + "/wal.log", &records).is_ok());
  EXPECT_EQ(w.append("two\nlines").code(), StatusCode::kInvalidArgument);
  w.close();
  EXPECT_EQ(w.append("after close").code(), StatusCode::kIoError);
}

// --- JobStore ----------------------------------------------------------------

TEST(JobStore, LifecyclePersistsAcrossReopenAndCompacts) {
  const std::string dir = fresh_dir("store");
  {
    JobStore store;
    ASSERT_TRUE(store.open(dir).is_ok());
    ASSERT_TRUE(store.record_submit("j-1", "alice", "{\"traces\":[\"a.csv\"]}").is_ok());
    ASSERT_TRUE(store.record_running("j-1").is_ok());
    ASSERT_TRUE(store.record_progress("j-1", 1).is_ok());
    ASSERT_TRUE(store.record_progress("j-1", 2).is_ok());
    ASSERT_TRUE(store.record_submit("j-2", "bob", "{\"traces\":[\"b.csv\"]}").is_ok());
    ASSERT_TRUE(
        store.record_terminal("j-1", JobPhase::kDone, "", "{\"found\":true}").is_ok());
    // Spec and result files were written durably before their records.
    EXPECT_EQ(read_file(store.spec_path("j-1")), "{\"traces\":[\"a.csv\"]}");
    EXPECT_EQ(read_file(store.result_path("j-1")), "{\"found\":true}");
    // Double-terminal is a transition error, not a silent overwrite.
    EXPECT_EQ(store.record_terminal("j-1", JobPhase::kFailed, "x", "").code(),
              StatusCode::kInvalidArgument);
    store.close();
  }
  JobStore store;
  ASSERT_TRUE(store.open(dir).is_ok());
  const auto recs = store.records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].id, "j-1");
  EXPECT_EQ(recs[0].client, "alice");
  EXPECT_EQ(recs[0].phase, JobPhase::kDone);
  EXPECT_EQ(recs[1].id, "j-2");
  EXPECT_EQ(recs[1].phase, JobPhase::kQueued);
  EXPECT_EQ(store.next_job_number(), 3u);

  // open() compacted: the terminal job's progress chain collapsed to
  // submit + done, and the log still replays to the same folded state.
  auto replayed = Wal::replay_file(store.wal_path());
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->size(), 3u);  // j-1 submit+done, j-2 submit
}

TEST(JobStore, InjectedIoFaultSurfacesAsCleanErrorWithQueueIntact) {
  const std::string dir = fresh_dir("fault");
  JobStore store;
  ASSERT_TRUE(store.open(dir).is_ok());
  ASSERT_TRUE(store.record_submit("j-1", "a", "{}").is_ok());

  {
    util::fault::Config cfg;
    cfg.io_fail_prob = 1.0;
    FaultGuard guard(cfg);
    const auto st = store.record_submit("j-2", "b", "{}");
    ASSERT_FALSE(st.is_ok());
    EXPECT_EQ(st.code(), StatusCode::kIoError);
  }
  // The failed submit left no half-recorded job behind...
  JobRecord rec;
  EXPECT_FALSE(store.lookup("j-2", &rec));
  EXPECT_EQ(store.records().size(), 1u);
  // ...and with faults cleared the same id admits cleanly; a reopen replays
  // a consistent log (nothing torn was acknowledged).
  ASSERT_TRUE(store.record_submit("j-2", "b", "{}").is_ok());
  store.close();
  JobStore reopened;
  ASSERT_TRUE(reopened.open(dir).is_ok());
  EXPECT_EQ(reopened.records().size(), 2u);
}

// --- PendingQueue & admission ------------------------------------------------

TEST(PendingQueue, BoundsRemovalAndClose) {
  PendingQueue q(2);
  EXPECT_TRUE(q.try_push("j-1"));
  EXPECT_TRUE(q.try_push("j-2"));
  EXPECT_FALSE(q.try_push("j-3"));  // full => shed
  EXPECT_TRUE(q.remove("j-1"));
  EXPECT_FALSE(q.remove("j-1"));
  EXPECT_EQ(q.size(), 1u);
  q.push_recovered("j-4");  // capacity-exempt
  q.push_recovered("j-5");
  EXPECT_EQ(q.size(), 3u);
  q.close();
  EXPECT_FALSE(q.try_push("j-6"));
  EXPECT_EQ(*q.pop_wait(), "j-2");  // queued ids stay poppable after close
  EXPECT_EQ(*q.pop_wait(), "j-4");
  EXPECT_EQ(*q.pop_wait(), "j-5");
  EXPECT_FALSE(q.pop_wait().has_value());  // closed and drained
}

TEST(Admission, TokenBucketRefillsOnDeterministicClock) {
  double now = 0.0;
  AdmissionOptions opts;
  opts.rate_per_s = 1.0;
  opts.burst = 2.0;
  AdmissionController ctl(opts, [&now] { return now; });

  // Burst drains, then the next submission is told exactly how long to wait.
  EXPECT_TRUE(ctl.admit("alice").admitted);
  EXPECT_TRUE(ctl.admit("alice").admitted);
  const auto denied = ctl.admit("alice");
  EXPECT_FALSE(denied.admitted);
  EXPECT_NEAR(denied.retry_after_s, 1.0, 1e-9);
  // Buckets are per client: alice's drought does not throttle bob.
  EXPECT_TRUE(ctl.admit("bob").admitted);
  // Half a token after 0.5s: still denied, with a shorter wait.
  now = 0.5;
  EXPECT_NEAR(ctl.admit("alice").retry_after_s, 0.5, 1e-9);
  now = 1.6;
  EXPECT_TRUE(ctl.admit("alice").admitted);
  EXPECT_FALSE(ctl.admit("alice").admitted);
}

TEST(Admission, EvictsLongestIdleClientAtCapacity) {
  double now = 0.0;
  AdmissionOptions opts;
  opts.rate_per_s = 1.0;
  opts.burst = 1.0;
  opts.max_clients = 2;
  AdmissionController ctl(opts, [&now] { return now; });
  EXPECT_TRUE(ctl.admit("a").admitted);
  now = 1.0;
  EXPECT_TRUE(ctl.admit("b").admitted);
  now = 2.0;
  EXPECT_TRUE(ctl.admit("c").admitted);  // evicts "a" (idle longest)
  EXPECT_EQ(ctl.tracked_clients(), 2u);
}

// --- Service over HTTP -------------------------------------------------------

TEST(ServiceHttp, SubmitRunFetchResultEndToEnd) {
  const std::string dir = fresh_dir("e2e");
  Service service(quick_service_opts(dir));
  ASSERT_TRUE(service.start().is_ok());
  EXPECT_EQ(service.jobs_recovered(), 0u);

  obs::StatusServer server;
  service.mount(server);
  std::string err;
  ASSERT_TRUE(server.start(0, &err)) << err;

  // Structurally bad and semantically bad specs are rejected at admission.
  EXPECT_NE(http_post(server.port(), "/jobs", "{nope").find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(
      http_post(server.port(), "/jobs", "{\"traces\":[\"x.csv\"],\"bogus_key\":1}")
          .find("HTTP/1.1 400"),
      std::string::npos);

  const std::string resp = http_post(server.port(), "/jobs", quick_spec_json(),
                                     "X-Abg-Client: e2e\r\n");
  ASSERT_NE(resp.find("HTTP/1.1 202"), std::string::npos) << resp;
  const std::string id = json_field(body_of(resp), "id");
  ASSERT_FALSE(id.empty());

  JobRecord rec;
  ASSERT_TRUE(wait_terminal(service, id, &rec));
  EXPECT_EQ(rec.phase, JobPhase::kDone);
  EXPECT_EQ(rec.client, "e2e");
  EXPECT_GE(rec.iterations, 1);

  const std::string status = http_get(server.port(), "/jobs/" + id);
  EXPECT_NE(status.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(body_of(status).find("\"state\":\"done\""), std::string::npos);

  const std::string result = http_get(server.port(), "/jobs/" + id + "/result");
  ASSERT_NE(result.find("HTTP/1.1 200"), std::string::npos);
  auto doc = util::parse_json(body_of(result));
  ASSERT_TRUE(doc.ok()) << body_of(result);
  EXPECT_TRUE(doc->find("found")->as_bool());
  EXPECT_FALSE(doc->find("partial")->as_bool());
  EXPECT_FALSE(doc->find("handler")->as_string().empty());

  const std::string list = http_get(server.port(), "/jobs");
  EXPECT_NE(body_of(list).find("\"id\":\"" + id + "\""), std::string::npos);

  EXPECT_NE(http_get(server.port(), "/jobs/j-999").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(
      http_request(server.port(), "DELETE /jobs/j-999 HTTP/1.1\r\nHost: x\r\n\r\n")
          .find("HTTP/1.1 404"),
      std::string::npos);

  server.stop();
  service.drain_and_stop();
}

TEST(ServiceHttp, RateLimitSheds429WithRetryAfter) {
  const std::string dir = fresh_dir("rate");
  ServiceOptions opts = quick_service_opts(dir);
  opts.admission.rate_per_s = 0.01;
  opts.admission.burst = 1.0;
  Service service(opts);
  ASSERT_TRUE(service.start().is_ok());
  obs::StatusServer server;
  service.mount(server);
  std::string err;
  ASSERT_TRUE(server.start(0, &err)) << err;

  // First request spends the only token (an invalid spec still counts: the
  // admission decision precedes validation). Second is throttled.
  EXPECT_NE(http_post(server.port(), "/jobs", "{bad").find("HTTP/1.1 400"),
            std::string::npos);
  const std::string throttled = http_post(server.port(), "/jobs", "{bad");
  EXPECT_NE(throttled.find("HTTP/1.1 429"), std::string::npos) << throttled;
  EXPECT_NE(throttled.find("Retry-After: "), std::string::npos) << throttled;
  // Distinct client => distinct bucket.
  EXPECT_NE(http_post(server.port(), "/jobs", "{bad", "X-Abg-Client: other\r\n")
                .find("HTTP/1.1 400"),
            std::string::npos);

  server.stop();
  service.drain_and_stop();
}

TEST(ServiceHttp, FullQueueSheds503WithRetryAfter) {
  const std::string dir = fresh_dir("full");
  ServiceOptions opts = quick_service_opts(dir);
  opts.queue_depth = 0;  // nothing fits: every submission sheds
  Service service(opts);
  ASSERT_TRUE(service.start().is_ok());
  obs::StatusServer server;
  service.mount(server);
  std::string err;
  ASSERT_TRUE(server.start(0, &err)) << err;

  const std::string resp = http_post(server.port(), "/jobs", quick_spec_json());
  EXPECT_NE(resp.find("HTTP/1.1 503"), std::string::npos) << resp;
  EXPECT_NE(resp.find("Retry-After: "), std::string::npos) << resp;

  server.stop();
  service.drain_and_stop();
}

TEST(ServiceHttp, RawCsvBodyBecomesAJobAndBadCsvFailsCleanly) {
  const std::string dir = fresh_dir("csv");
  Service service(quick_service_opts(dir));
  ASSERT_TRUE(service.start().is_ok());
  obs::StatusServer server;
  service.mount(server);
  std::string err;
  ASSERT_TRUE(server.start(0, &err)) << err;

  // A non-JSON body is treated as a raw trace CSV. This one is garbage, so
  // the job must fail with a tagged error — not crash, not hang, not vanish.
  const std::string resp =
      http_post(server.port(), "/jobs", "this,is,not\na,trace,file\n");
  ASSERT_NE(resp.find("HTTP/1.1 202"), std::string::npos) << resp;
  const std::string id = json_field(body_of(resp), "id");
  ASSERT_FALSE(id.empty());
  JobRecord rec;
  ASSERT_TRUE(wait_terminal(service, id, &rec));
  EXPECT_EQ(rec.phase, JobPhase::kFailed);
  EXPECT_FALSE(rec.error.empty());

  server.stop();
  service.drain_and_stop();
}

// --- Crash and drain recovery ------------------------------------------------

// The tentpole guarantee: kill -9 mid-refinement, restart on the same state
// dir, and the recovered job's final answer is bit-identical to a run that
// was never interrupted.
TEST(ServeRecovery, KilledMidRunJobResumesBitIdentically) {
  // Reference: the same spec, uninterrupted, in its own state dir.
  std::string ref_handler;
  double ref_distance = 0.0;
  {
    const std::string dir = fresh_dir("ref");
    Service service(quick_service_opts(dir));
    ASSERT_TRUE(service.start().is_ok());
    const auto resp = service.handle_submit(
        obs::HttpRequest{"POST", "/jobs", "", {}, quick_spec_json()});
    ASSERT_EQ(resp.code, 202) << resp.body;
    const std::string id = json_field(resp.body, "id");
    JobRecord rec;
    ASSERT_TRUE(wait_terminal(service, id, &rec));
    ASSERT_EQ(rec.phase, JobPhase::kDone);
    auto doc = util::parse_json(read_file(service.store().result_path(id)));
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(doc->find("found")->as_bool());
    ref_handler = doc->find("handler")->as_string();
    ref_distance = doc->find("distance")->as_double();
    service.drain_and_stop();
  }

  // Victim: same spec, crashed mid-run.
  const std::string dir = fresh_dir("victim");
  std::string id;
  {
    Service service(quick_service_opts(dir));
    ASSERT_TRUE(service.start().is_ok());
    const auto resp = service.handle_submit(
        obs::HttpRequest{"POST", "/jobs", "", {}, quick_spec_json()});
    ASSERT_EQ(resp.code, 202) << resp.body;
    id = json_field(resp.body, "id");
    // Let at least one refinement iteration land, then pull the plug.
    ASSERT_TRUE(wait_for([&] {
      JobRecord rec;
      return service.store().lookup(id, &rec) && rec.iterations >= 1;
    }));
    service.abandon_for_test();
  }
  // The frozen WAL must say the job never finished — that is what a real
  // kill -9 leaves behind.
  {
    auto replayed = Wal::replay_file(dir + "/wal.log");
    ASSERT_TRUE(replayed.ok());
    bool terminal = false;
    for (const auto& r : *replayed) {
      if (r.rfind("done\t", 0) == 0 || r.rfind("failed\t", 0) == 0 ||
          r.rfind("cancelled\t", 0) == 0 || r.rfind("suspended\t", 0) == 0) {
        terminal = true;
      }
    }
    EXPECT_FALSE(terminal);
  }

  // Restart on the same state dir: the job is requeued, resumed from its
  // checkpoint, and must land on the same answer to the last bit.
  const auto recovered_before = obs::counter("serve.jobs_recovered").value();
  Service service(quick_service_opts(dir));
  ASSERT_TRUE(service.start().is_ok());
  EXPECT_EQ(service.jobs_recovered(), 1u);
  EXPECT_EQ(obs::counter("serve.jobs_recovered").value(), recovered_before + 1);
  JobRecord rec;
  ASSERT_TRUE(wait_terminal(service, id, &rec));
  ASSERT_EQ(rec.phase, JobPhase::kDone);
  auto doc = util::parse_json(read_file(service.store().result_path(id)));
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(doc->find("found")->as_bool());
  EXPECT_EQ(doc->find("handler")->as_string(), ref_handler);
  EXPECT_EQ(doc->find("distance")->as_double(), ref_distance);  // bit-exact
  service.drain_and_stop();
}

TEST(ServeRecovery, GracefulDrainParksJobsAndRestartFinishesThem) {
  const std::string dir = fresh_dir("drain");
  std::string id1, id2;
  {
    Service service(quick_service_opts(dir));
    ASSERT_TRUE(service.start().is_ok());
    const auto r1 = service.handle_submit(
        obs::HttpRequest{"POST", "/jobs", "", {}, quick_spec_json()});
    const auto r2 = service.handle_submit(
        obs::HttpRequest{"POST", "/jobs", "", {}, quick_spec_json()});
    ASSERT_EQ(r1.code, 202);
    ASSERT_EQ(r2.code, 202);
    id1 = json_field(r1.body, "id");
    id2 = json_field(r2.body, "id");
    // Drain immediately: with one driver, at most one job started; both must
    // end up parked (suspended) or legitimately finished, never lost.
    service.drain_and_stop();
    JobRecord rec1, rec2;
    ASSERT_TRUE(service.store().lookup(id1, &rec1));
    ASSERT_TRUE(service.store().lookup(id2, &rec2));
    EXPECT_TRUE(rec1.phase == JobPhase::kSuspended || rec1.phase == JobPhase::kDone)
        << job_phase_name(rec1.phase);
    EXPECT_TRUE(rec2.phase == JobPhase::kSuspended || rec2.phase == JobPhase::kDone)
        << job_phase_name(rec2.phase);
    // Draining admissions are closed.
    const auto refused = service.handle_submit(
        obs::HttpRequest{"POST", "/jobs", "", {}, quick_spec_json()});
    EXPECT_EQ(refused.code, 503);
  }
  Service service(quick_service_opts(dir));
  ASSERT_TRUE(service.start().is_ok());
  JobRecord rec1, rec2;
  ASSERT_TRUE(wait_terminal(service, id1, &rec1));
  ASSERT_TRUE(wait_terminal(service, id2, &rec2));
  EXPECT_EQ(rec1.phase, JobPhase::kDone);
  EXPECT_EQ(rec2.phase, JobPhase::kDone);
  service.drain_and_stop();
}

TEST(Service, StateDirIsSingleWriter) {
  const std::string dir = fresh_dir("lock");
  Service first(quick_service_opts(dir));
  ASSERT_TRUE(first.start().is_ok());
  Service second(quick_service_opts(dir));
  const auto st = second.start();
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("locked"), std::string::npos);
  first.drain_and_stop();
  // Once the first holder is gone the dir is claimable again.
  Service third(quick_service_opts(dir));
  EXPECT_TRUE(third.start().is_ok());
  third.drain_and_stop();
}

}  // namespace
}  // namespace abg::serve
