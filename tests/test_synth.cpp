#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "dsl/known_handlers.hpp"
#include "dsl/simplify.hpp"
#include "dsl/units.hpp"
#include "net/simulator.hpp"
#include "synth/buckets.hpp"
#include "synth/concretize.hpp"
#include "synth/replay.hpp"

namespace abg::synth {
namespace {

trace::Segment make_segment(std::size_t n) {
  trace::Segment seg;
  for (std::size_t i = 0; i < n; ++i) {
    trace::AckSample s;
    s.sig.now = 0.05 * static_cast<double>(i);
    s.sig.mss = 1448.0;
    s.sig.cwnd = 1448.0 * (10.0 + static_cast<double>(i));
    s.sig.acked_bytes = 1448.0;
    s.sig.rtt = 0.05;
    s.sig.srtt = 0.05;
    s.sig.min_rtt = 0.05;
    s.sig.max_rtt = 0.06;
    s.sig.ack_rate = 2e5;
    s.cwnd_after = s.sig.cwnd + 1448.0;  // ground truth: +1 MSS per ACK
    seg.samples.push_back(s);
  }
  return seg;
}

TEST(Replay, ExactHandlerReproducesObservedSeries) {
  auto seg = make_segment(50);
  // Handler identical to the ground truth: cwnd + mss.
  auto h = dsl::add(dsl::sig(dsl::Signal::kCwnd), dsl::sig(dsl::Signal::kMss));
  const auto synth = replay(*h, seg);
  const auto observed = observed_series_pkts(seg);
  ASSERT_EQ(synth.size(), observed.size());
  for (std::size_t i = 0; i < synth.size(); ++i) {
    EXPECT_NEAR(synth[i], observed[i], 1e-9) << i;
  }
  EXPECT_NEAR(segment_distance(*h, seg, distance::Metric::kDtw), 0.0, 1e-9);
}

TEST(Replay, UsesItsOwnStateNotTheRecordedWindow) {
  auto seg = make_segment(50);
  // Handler that doubles: diverges from the recorded trace immediately and
  // must compound on its *own* window.
  auto h = dsl::mul(dsl::constant(2.0), dsl::sig(dsl::Signal::kCwnd));
  const auto synth = replay(*h, seg);
  EXPECT_NEAR(synth[0], 20.0, 1e-9);   // starts at 10 pkts, doubles per ACK
  EXPECT_NEAR(synth[3], 160.0, 1e-9);  // keeps compounding on its own state
}

TEST(Replay, DupAcksHoldTheWindow) {
  auto seg = make_segment(10);
  seg.samples[4].is_dup = true;
  seg.samples[4].sig.acked_bytes = 0.0;
  auto h = dsl::add(dsl::sig(dsl::Signal::kCwnd), dsl::sig(dsl::Signal::kMss));
  const auto synth = replay(*h, seg);
  EXPECT_DOUBLE_EQ(synth[4], synth[3]);
}

TEST(Replay, ClampsRunawayHandlers) {
  auto seg = make_segment(30);
  auto h = dsl::mul(dsl::sig(dsl::Signal::kCwnd), dsl::sig(dsl::Signal::kCwnd));
  ReplayOptions opts;
  opts.max_cwnd_pkts = 1000.0;
  const auto synth = replay(*h, seg, opts);
  for (double v : synth) EXPECT_LE(v, 1000.0);
}

TEST(Replay, HoldsOnNonFiniteOutput) {
  auto seg = make_segment(10);
  // cbrt(cwnd - cwnd*...): engineer a NaN via 0/0-free route: use div by
  // (rtt - rtt) -> 0 denominator -> eval yields 0, fine; instead force
  // overflow^3 -> inf.
  auto h = dsl::cube(dsl::cube(dsl::mul(dsl::sig(dsl::Signal::kCwnd),
                                        dsl::sig(dsl::Signal::kCwnd))));
  const auto synth = replay(*h, seg);
  for (double v : synth) EXPECT_TRUE(std::isfinite(v));
}

TEST(Replay, EmptySegmentYieldsEmptySeries) {
  trace::Segment seg;
  auto h = dsl::sig(dsl::Signal::kCwnd);
  EXPECT_TRUE(replay(*h, seg).empty());
}

TEST(Replay, TotalDistanceSumsSegments) {
  auto seg = make_segment(40);
  auto h = dsl::add(dsl::sig(dsl::Signal::kCwnd), dsl::constant(2896.0));  // +2 MSS
  const double one = segment_distance(*h, seg, distance::Metric::kDtw);
  const double two = total_distance(*h, {seg, seg}, distance::Metric::kDtw);
  EXPECT_NEAR(two, 2 * one, 1e-9);
}

TEST(Replay, GroundTruthHandlerBeatsWrongFamilyOnRealTraces) {
  trace::Environment env;
  env.bandwidth_bps = 10e6;
  env.rtt_s = 0.04;
  env.duration_s = 8.0;
  auto t = net::run_connection("reno", env);
  auto segs = trace::segment_all({trace::trim_warmup(t, 1.0)}, 20);
  ASSERT_FALSE(segs.empty());
  const auto& reno = *dsl::known_handlers("reno").fine_tuned;
  // A constant-window handler is the wrong family.
  auto flat = dsl::mul(dsl::constant(50.0), dsl::sig(dsl::Signal::kMss));
  EXPECT_LT(total_distance(reno, segs, distance::Metric::kDtw),
            total_distance(*flat, segs, distance::Metric::kDtw));
}

TEST(Concretize, NoHolesYieldsOneEmptyAssignment) {
  auto e = dsl::sig(dsl::Signal::kCwnd);
  util::Rng rng(1);
  auto a = enumerate_assignments(*e, {1.0, 2.0}, {}, rng);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_TRUE(a[0].empty());
}

TEST(Concretize, FullCartesianWhenSmall) {
  auto e = dsl::add(dsl::hole(0), dsl::mul(dsl::hole(1), dsl::sig(dsl::Signal::kMss)));
  util::Rng rng(1);
  ConcretizeOptions opts;
  opts.budget = 100;
  auto a = enumerate_assignments(*e, {1.0, 2.0, 3.0}, opts, rng);
  EXPECT_EQ(a.size(), 9u);
  std::set<std::pair<double, double>> seen;
  for (const auto& v : a) seen.insert({v[0], v[1]});
  EXPECT_EQ(seen.size(), 9u);
}

TEST(Concretize, BudgetCapsWithDistinctSamples) {
  // 3 holes, pool of 10: 1000 combos, budget 50.
  auto e = dsl::add(dsl::hole(0), dsl::mul(dsl::hole(1), dsl::add(dsl::hole(2),
                                                                  dsl::sig(dsl::Signal::kMss))));
  util::Rng rng(1);
  ConcretizeOptions opts;
  opts.budget = 50;
  std::vector<double> pool;
  for (int i = 1; i <= 10; ++i) pool.push_back(i);
  auto a = enumerate_assignments(*e, pool, opts, rng);
  EXPECT_EQ(a.size(), 50u);
  std::set<std::vector<double>> seen(a.begin(), a.end());
  EXPECT_EQ(seen.size(), 50u);  // without replacement
}

TEST(Concretize, CompletionCountIsPoolPowerHoles) {
  auto e = dsl::add(dsl::hole(0), dsl::hole(1));
  EXPECT_DOUBLE_EQ(completion_count(*e, 10), 100.0);
  EXPECT_DOUBLE_EQ(completion_count(*dsl::sig(dsl::Signal::kCwnd), 10), 1.0);
}

TEST(Buckets, FeasibleSubsetsOnly) {
  const auto buckets = make_buckets(dsl::reno_dsl());
  for (const auto& b : buckets) {
    const bool has_cmp = std::any_of(b.ops.begin(), b.ops.end(), [](dsl::Op o) {
      return o == dsl::Op::kLt || o == dsl::Op::kGt || o == dsl::Op::kModEq;
    });
    const bool has_cond =
        std::find(b.ops.begin(), b.ops.end(), dsl::Op::kCond) != b.ops.end();
    EXPECT_EQ(has_cmp, has_cond) << b.label;
  }
}

TEST(Buckets, CountForRenoDsl) {
  // 8 ops: {add,sub,mul,div} free (16 combos) x comparison/cond structure:
  // either no cond & no cmp (1) or cond with any non-empty cmp subset (7)
  // -> 16 * 8 = 128 buckets including the leaf-only bucket.
  EXPECT_EQ(make_buckets(dsl::reno_dsl()).size(), 128u);
}

TEST(Buckets, LabelsAreUniqueAndSorted) {
  const auto buckets = make_buckets(dsl::reno_dsl());
  std::set<std::string> labels;
  for (const auto& b : buckets) labels.insert(b.label);
  EXPECT_EQ(labels.size(), buckets.size());
}

TEST(Buckets, BucketOfMatchesMembership) {
  auto sketch = dsl::add(dsl::sig(dsl::Signal::kCwnd),
                         dsl::mul(dsl::hole(0), dsl::sig(dsl::Signal::kRenoInc)));
  const auto b = bucket_of(*sketch);
  EXPECT_TRUE(same_ops(b.ops, {dsl::Op::kAdd, dsl::Op::kMul}));
  // And that bucket exists in the partition of its DSL.
  bool found = false;
  for (const auto& cand : make_buckets(dsl::reno_dsl())) {
    if (same_ops(cand.ops, b.ops)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Buckets, EmptyBucketIsLeafOnly) {
  const auto b = bucket_of(*dsl::sig(dsl::Signal::kCwnd));
  EXPECT_TRUE(b.ops.empty());
  EXPECT_EQ(b.label, "{}");
}

TEST(Buckets, SameOpsIsOrderInsensitive) {
  EXPECT_TRUE(same_ops({dsl::Op::kMul, dsl::Op::kAdd}, {dsl::Op::kAdd, dsl::Op::kMul}));
  EXPECT_FALSE(same_ops({dsl::Op::kMul}, {dsl::Op::kAdd, dsl::Op::kMul}));
}

}  // namespace
}  // namespace abg::synth
