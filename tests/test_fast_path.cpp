// The candidate-evaluation fast path (memo cache + early-abandoning DTW)
// must be a pure work-saver: with it on or off, every per-bucket score,
// every iteration report, and the final handler must be bit-identical. The
// golden test here asserts exactly that; the unit tests cover the cache's
// exactness, its concurrent hit/miss accounting, and the rule that an
// abandoned evaluation can never displace a real best.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "dsl/simplify.hpp"
#include "net/simulator.hpp"
#include "synth/eval_cache.hpp"
#include "synth/refinement.hpp"
#include "synth/replay.hpp"
#include "util/thread_pool.hpp"

namespace abg::synth {
namespace {

std::vector<trace::Segment> reno_segments() {
  static const auto segments = [] {
    trace::Environment env;
    env.bandwidth_bps = 10e6;
    env.rtt_s = 0.04;
    env.duration_s = 10.0;
    env.seed = 21;
    auto t = net::run_connection("reno", env);
    return trace::segment_all({trace::trim_warmup(t, 2.0)}, 20);
  }();
  return segments;
}

SynthesisOptions quick_opts(bool fast_path) {
  SynthesisOptions o;
  o.initial_samples = 6;
  o.initial_keep = 3;
  o.initial_segments = 2;
  o.concretize_budget = 12;
  o.max_iterations = 3;
  o.exhaustive_cap = 60;
  o.max_depth = 3;
  o.max_nodes = 5;
  o.max_holes = 2;
  o.threads = 2;
  o.seed = 5;
  o.use_eval_cache = fast_path;
  o.early_abandon = fast_path;
  return o;
}

// --- Golden comparison: fast path off == fast path on, bit for bit. -------

TEST(FastPathGolden, SynthesisIsBitIdenticalWithFastPathOn) {
  auto segs = reno_segments();
  ASSERT_GE(segs.size(), 3u);
  const auto slow = synthesize(dsl::reno_dsl(), segs, quick_opts(false));
  const auto fast = synthesize(dsl::reno_dsl(), segs, quick_opts(true));

  ASSERT_TRUE(slow.best.valid());
  ASSERT_TRUE(fast.best.valid());
  EXPECT_EQ(dsl::to_string(*slow.best.handler), dsl::to_string(*fast.best.handler));
  EXPECT_EQ(slow.best.distance, fast.best.distance);  // exact, not approximate

  EXPECT_EQ(slow.initial_buckets, fast.initial_buckets);
  EXPECT_EQ(slow.total_sketches, fast.total_sketches);
  EXPECT_EQ(slow.total_handlers_scored, fast.total_handlers_scored);
  EXPECT_EQ(slow.candidates_validated, fast.candidates_validated);
  EXPECT_EQ(slow.timed_out, fast.timed_out);

  ASSERT_EQ(slow.iterations.size(), fast.iterations.size());
  for (std::size_t i = 0; i < slow.iterations.size(); ++i) {
    const auto& a = slow.iterations[i];
    const auto& b = fast.iterations[i];
    EXPECT_EQ(a.n_target, b.n_target);
    EXPECT_EQ(a.keep, b.keep);
    EXPECT_EQ(a.segments_used, b.segments_used);
    ASSERT_EQ(a.buckets.size(), b.buckets.size()) << "iteration " << i;
    for (std::size_t j = 0; j < a.buckets.size(); ++j) {
      EXPECT_EQ(a.buckets[j].label, b.buckets[j].label) << "iter " << i << " rank " << j;
      EXPECT_EQ(a.buckets[j].score, b.buckets[j].score) << a.buckets[j].label;
      EXPECT_EQ(a.buckets[j].sketches_enumerated, b.buckets[j].sketches_enumerated);
      EXPECT_EQ(a.buckets[j].handlers_scored, b.buckets[j].handlers_scored);
      EXPECT_EQ(a.buckets[j].exhausted, b.buckets[j].exhausted);
      EXPECT_EQ(a.buckets[j].retained, b.buckets[j].retained);
    }
  }
}

// --- Cache exactness. ------------------------------------------------------

TEST(EvalCache, CachedDistanceEqualsRecomputedDistance) {
  auto segs = reno_segments();
  ASSERT_GE(segs.size(), 2u);
  const std::vector<trace::Segment> working{segs[0], segs[1]};
  const auto fp = segment_set_fingerprint(working);

  auto sketch = dsl::add(dsl::sig(dsl::Signal::kCwnd),
                         dsl::mul(dsl::hole(0), dsl::sig(dsl::Signal::kRenoInc)));
  SynthesisOptions opts = quick_opts(true);
  EvalCache cache;
  EvalContext ctx;
  ctx.cache = &cache;
  ctx.fingerprint = fp;

  util::Rng rng(3);
  const std::vector<double> pool{0.001, 0.5, 1.0, 100.0};
  auto first = score_sketch(sketch, working, pool, opts, rng, nullptr, &ctx);
  ASSERT_TRUE(first.valid());
  EXPECT_GT(cache.size(), 0u);

  // Every cached entry must hold the distance a from-scratch evaluation of
  // its handler produces on the same working set.
  for (double c : pool) {
    const auto handler = dsl::fill_holes(sketch, {c});
    const auto canon = dsl::canonicalize(handler);
    const auto hit = cache.lookup(fp, dsl::hash_expr(*canon), *canon);
    if (!hit) continue;  // worse-than-best candidates may have been abandoned
    const double recomputed = total_distance(*handler, working, opts.metric, opts.dopts);
    EXPECT_EQ(*hit, recomputed) << dsl::to_string(*handler);
  }

  // Re-scoring the identical sketch+working set is answered from the cache
  // (for every handler the first pass stored) and returns the same best.
  util::Rng rng2(3);
  const auto hits_before = cache.hits();
  EvalContext ctx2;
  ctx2.cache = &cache;
  ctx2.fingerprint = fp;
  auto second = score_sketch(sketch, working, pool, opts, rng2, nullptr, &ctx2);
  ASSERT_TRUE(second.valid());
  EXPECT_GT(cache.hits(), hits_before);
  EXPECT_EQ(dsl::to_string(*first.handler), dsl::to_string(*second.handler));
  EXPECT_EQ(first.distance, second.distance);
}

TEST(EvalCache, KeysOnBothHandlerAndSegmentSet) {
  auto segs = reno_segments();
  ASSERT_GE(segs.size(), 2u);
  const std::vector<trace::Segment> set_a{segs[0]};
  const std::vector<trace::Segment> set_b{segs[1]};
  const auto fp_a = segment_set_fingerprint(set_a);
  const auto fp_b = segment_set_fingerprint(set_b);
  EXPECT_NE(fp_a, fp_b);

  EvalCache cache;
  const auto h1 = dsl::add(dsl::sig(dsl::Signal::kCwnd), dsl::constant(1.0));
  const auto h2 = dsl::add(dsl::sig(dsl::Signal::kCwnd), dsl::constant(2.0));
  cache.insert(fp_a, dsl::hash_expr(*h1), h1, 10.0);
  cache.insert(fp_b, dsl::hash_expr(*h1), h1, 20.0);
  cache.insert(fp_a, dsl::hash_expr(*h2), h2, 30.0);

  EXPECT_EQ(cache.lookup(fp_a, dsl::hash_expr(*h1), *h1).value(), 10.0);
  EXPECT_EQ(cache.lookup(fp_b, dsl::hash_expr(*h1), *h1).value(), 20.0);
  EXPECT_EQ(cache.lookup(fp_a, dsl::hash_expr(*h2), *h2).value(), 30.0);
  EXPECT_FALSE(cache.lookup(fp_b, dsl::hash_expr(*h2), *h2).has_value());
  // Duplicate insert: first write wins, no double entry.
  const auto size_before = cache.size();
  cache.insert(fp_a, dsl::hash_expr(*h1), h1, 99.0);
  EXPECT_EQ(cache.size(), size_before);
  EXPECT_EQ(cache.lookup(fp_a, dsl::hash_expr(*h1), *h1).value(), 10.0);
}

TEST(EvalCache, CommutativeVariantsShareOneEntry) {
  // cwnd + reno_inc and reno_inc + cwnd canonicalize identically, so one
  // cached evaluation serves both (IEEE addition is commutative).
  const auto ab = dsl::add(dsl::sig(dsl::Signal::kCwnd), dsl::sig(dsl::Signal::kRenoInc));
  const auto ba = dsl::add(dsl::sig(dsl::Signal::kRenoInc), dsl::sig(dsl::Signal::kCwnd));
  EXPECT_EQ(dsl::canonical_hash(ab), dsl::canonical_hash(ba));

  EvalCache cache;
  const auto canon_ab = dsl::canonicalize(ab);
  cache.insert(7, dsl::canonical_hash(ab), canon_ab, 4.5);
  const auto canon_ba = dsl::canonicalize(ba);
  EXPECT_EQ(cache.lookup(7, dsl::canonical_hash(ba), *canon_ba).value(), 4.5);
}

// --- Concurrent hit/miss accounting under the real thread pool. ------------

TEST(EvalCache, ConcurrentProbesCountExactlyAndStayCorrect) {
  constexpr std::size_t kKeys = 48;
  constexpr std::size_t kThreadsTasks = 16;
  constexpr std::size_t kProbesPerTask = 400;

  // Distinct canonical handlers: cwnd + k for k = 0..kKeys-1. The cached
  // value encodes the key so a cross-wired entry is detected immediately.
  std::vector<dsl::ExprPtr> handlers;
  for (std::size_t k = 0; k < kKeys; ++k) {
    handlers.push_back(
        dsl::add(dsl::sig(dsl::Signal::kCwnd), dsl::constant(static_cast<double>(k))));
  }

  EvalCache cache(8);
  std::atomic<std::uint64_t> wrong{0};
  util::ThreadPool pool(8);
  pool.parallel_for(kThreadsTasks, [&](std::size_t task) {
    util::Rng rng(task + 1);
    for (std::size_t p = 0; p < kProbesPerTask; ++p) {
      const auto k = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(kKeys) - 1));
      const std::uint64_t fp = 1000 + k % 3;  // a few segment sets in flight
      const auto& h = handlers[k];
      const double expect = static_cast<double>(k) * 1e3 + static_cast<double>(fp);
      const auto hit = cache.lookup(fp, dsl::hash_expr(*h), *h);
      if (hit) {
        if (*hit != expect) wrong.fetch_add(1);
      } else {
        cache.insert(fp, dsl::hash_expr(*h), h, expect);
      }
    }
  });

  EXPECT_EQ(wrong.load(), 0u);
  const std::uint64_t probes = kThreadsTasks * kProbesPerTask;
  EXPECT_EQ(cache.hits() + cache.misses(), probes);
  EXPECT_GT(cache.hits(), 0u);
  // At most one entry per (handler, fingerprint) pair despite racing inserts.
  EXPECT_LE(cache.size(), kKeys * 3);
  // Every key that was ever inserted now answers correctly.
  for (std::size_t k = 0; k < kKeys; ++k) {
    const std::uint64_t fp = 1000 + k % 3;
    const auto hit = cache.lookup(fp, dsl::hash_expr(*handlers[k]), *handlers[k]);
    if (hit) {
      EXPECT_EQ(*hit, static_cast<double>(k) * 1e3 + static_cast<double>(fp));
    }
  }
}

// --- Early-abandon equivalence. --------------------------------------------

TEST(EarlyAbandon, AbandonedScoreIsNeverSelectedAsBest) {
  auto segs = reno_segments();
  ASSERT_GE(segs.size(), 2u);
  const std::vector<trace::Segment> working{segs[0], segs[1]};
  auto sketch = dsl::add(dsl::sig(dsl::Signal::kCwnd),
                         dsl::mul(dsl::hole(0), dsl::sig(dsl::Signal::kRenoInc)));
  const std::vector<double> pool{0.001, 0.5, 1.0, 100.0};

  SynthesisOptions exact_opts = quick_opts(false);
  util::Rng rng_a(3);
  const auto exact = score_sketch(sketch, working, pool, exact_opts, rng_a, nullptr, nullptr);
  ASSERT_TRUE(exact.valid());

  // A bound just above the true best: the winner still computes fully (its
  // running lower bounds stay under the cutoff), every loser may abandon.
  SynthesisOptions fast_opts = quick_opts(true);
  EvalContext ctx;
  ctx.abandon_above = exact.distance * 1.0000001;
  util::Rng rng_b(3);
  const auto fast = score_sketch(sketch, working, pool, fast_opts, rng_b, nullptr, &ctx);
  ASSERT_TRUE(fast.valid());
  EXPECT_EQ(dsl::to_string(*exact.handler), dsl::to_string(*fast.handler));
  EXPECT_EQ(exact.distance, fast.distance);

  // A bound below everything: all candidates abandon, none is promoted to
  // best, and the caller sees +inf (which a `<` comparison can never keep).
  EvalContext ctx_low;
  ctx_low.abandon_above = exact.distance * 0.5;
  util::Rng rng_c(3);
  const auto none = score_sketch(sketch, working, pool, fast_opts, rng_c, nullptr, &ctx_low);
  EXPECT_FALSE(none.distance < ctx_low.abandon_above);
}

TEST(EarlyAbandon, TotalDistanceBoundIsExactOrInfinite) {
  auto segs = reno_segments();
  ASSERT_GE(segs.size(), 3u);
  const std::vector<trace::Segment> working{segs[0], segs[1], segs[2]};
  const auto handler = dsl::add(dsl::sig(dsl::Signal::kCwnd), dsl::sig(dsl::Signal::kRenoInc));
  const double exact =
      total_distance(*handler, working, distance::Metric::kDtw);
  ASSERT_TRUE(std::isfinite(exact));
  // Bound above: exact. Bound at or below: +inf, never a wrong finite value.
  EXPECT_EQ(total_distance(*handler, working, distance::Metric::kDtw, {}, {},
                           exact * 1.0000001),
            exact);
  const double abandoned =
      total_distance(*handler, working, distance::Metric::kDtw, {}, {}, exact * 0.25);
  EXPECT_TRUE(std::isinf(abandoned) || abandoned == exact);
  EXPECT_TRUE(std::isinf(
      total_distance(*handler, working, distance::Metric::kDtw, {}, {}, 0.0)));
}

}  // namespace
}  // namespace abg::synth
