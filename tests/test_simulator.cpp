#include <gtest/gtest.h>

#include <cmath>

#include "net/simulator.hpp"
#include "trace/trace.hpp"

namespace abg::net {
namespace {

trace::Environment quick_env(std::uint64_t seed = 1) {
  trace::Environment env;
  env.bandwidth_bps = 10e6;
  env.rtt_s = 0.04;
  env.duration_s = 6.0;
  env.seed = seed;
  return env;
}

TEST(Simulator, DefaultEnvironmentsSpanPaperRanges) {
  const auto envs = default_environments(6, 1);
  ASSERT_EQ(envs.size(), 6u);
  for (const auto& e : envs) {
    EXPECT_GE(e.rtt_s, 0.010);
    EXPECT_LE(e.rtt_s, 0.100);
    EXPECT_GE(e.bandwidth_bps, 5e6);
    EXPECT_LE(e.bandwidth_bps, 15e6);
  }
  EXPECT_NE(envs.front().rtt_s, envs.back().rtt_s);
}

TEST(Simulator, DeterministicForSameSeed) {
  auto a = run_connection("reno", quick_env(5));
  auto b = run_connection("reno", quick_env(5));
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); i += 97) {
    EXPECT_DOUBLE_EQ(a.samples[i].cwnd_after, b.samples[i].cwnd_after);
  }
}

TEST(Simulator, DifferentEnvironmentsProduceDifferentTraces) {
  auto a = run_connection("reno", quick_env(5));
  auto env2 = quick_env(5);
  env2.rtt_s = 0.09;
  auto b = run_connection("reno", env2);
  EXPECT_NE(a.samples.size(), b.samples.size());
}

// Parameterized sanity sweep over every registered CCA.
class SimulatesEveryCca : public ::testing::TestWithParam<std::string> {};

TEST_P(SimulatesEveryCca, ProducesSaneTrace) {
  auto t = run_connection(GetParam(), quick_env(3));
  ASSERT_GT(t.samples.size(), 100u) << GetParam();
  EXPECT_EQ(t.cca_name, GetParam());

  double prev_time = -1.0;
  for (const auto& s : t.samples) {
    EXPECT_GE(s.sig.now, prev_time);          // time monotone
    prev_time = s.sig.now;
    EXPECT_GE(s.cwnd_after, 1448.0);          // window at least 1 MSS
    EXPECT_TRUE(std::isfinite(s.cwnd_after));
    EXPECT_GE(s.sig.min_rtt, 0.0);
    EXPECT_LE(s.sig.min_rtt, s.sig.max_rtt + 1e-12);
  }
  // RTT floor: propagation + serialization.
  const auto& last = t.samples.back();
  EXPECT_GE(last.sig.min_rtt, quick_env().rtt_s * 0.99);
  EXPECT_LT(last.sig.min_rtt, quick_env().rtt_s * 2.0);
}

TEST_P(SimulatesEveryCca, AchievesSomeUtilization) {
  auto t = run_connection(GetParam(), quick_env(3));
  // Delivered bytes = final cumulative ACK; require at least 5% of capacity
  // (even student4's two-packet window beats this on a 40 ms RTT).
  const double delivered = t.samples.back().ack_seq;
  const double capacity = quick_env().bandwidth_bps / 8.0 * quick_env().duration_s;
  EXPECT_GT(delivered, 0.04 * capacity) << GetParam();
  EXPECT_LT(delivered, 1.05 * capacity) << GetParam();  // no faster than the link
}

INSTANTIATE_TEST_SUITE_P(AllCcas, SimulatesEveryCca,
                         ::testing::ValuesIn(cca::all_cca_names()),
                         [](const auto& info) { return info.param; });

TEST(Simulator, LossBasedCcasSeeLossesAndHalve) {
  auto t = run_connection("reno", quick_env(7));
  int losses = 0;
  for (const auto& s : t.samples) losses += s.loss_event;
  EXPECT_GT(losses, 2);
  // Find a loss sample and check the window fell.
  for (std::size_t i = 1; i < t.samples.size(); ++i) {
    if (t.samples[i].loss_event) {
      EXPECT_LT(t.samples[i].cwnd_after, t.samples[i - 1].cwnd_after);
      break;
    }
  }
}

TEST(Simulator, VegasConvergesWithoutLosses) {
  trace::Environment env = quick_env(2);
  env.duration_s = 10.0;
  auto t = run_connection("vegas", env);
  int losses = 0;
  for (const auto& s : t.samples) losses += s.loss_event;
  EXPECT_EQ(losses, 0);
  // Steady state: the last quarter of the trace barely moves.
  const auto series = t.cwnd_series();
  const double last = series.back();
  for (std::size_t i = series.size() * 3 / 4; i < series.size(); ++i) {
    EXPECT_NEAR(series[i], last, 3 * 1448.0);
  }
}

TEST(Simulator, RenoSawtoothOscillatesBetweenHalfAndFullBuffer) {
  trace::Environment env = quick_env(4);
  env.duration_s = 15.0;
  auto t = run_connection("reno", env);
  auto trimmed = trace::trim_warmup(t, 5.0);
  double lo = 1e18, hi = 0;
  for (const auto& s : trimmed.samples) {
    lo = std::min(lo, s.cwnd_after);
    hi = std::max(hi, s.cwnd_after);
  }
  // BDP = 10 Mb/s * 40 ms = 34.5 pkts; peak ~ 2 BDP, trough ~ peak / 2.
  EXPECT_GT(hi / lo, 1.5);
  EXPECT_LT(hi / lo, 4.0);
  EXPECT_NEAR(hi / 1448.0, 69.0, 25.0);
}

TEST(Simulator, RandomLossEnvironmentCausesMoreLossEvents) {
  auto clean = run_connection("reno", quick_env(9));
  auto env = quick_env(9);
  env.random_loss = 0.005;
  auto lossy = run_connection("reno", env);
  auto count = [](const trace::Trace& t) {
    int n = 0;
    for (const auto& s : t.samples) n += s.loss_event;
    return n;
  };
  EXPECT_GT(count(lossy), count(clean));
}

TEST(Simulator, DupAcksAreRecordedAroundLosses) {
  auto t = run_connection("reno", quick_env(3));
  int dups = 0;
  for (const auto& s : t.samples) dups += s.is_dup;
  EXPECT_GT(dups, 0);
  // Loss inference from dup-ACK runs should roughly match recorded events.
  const auto inferred = trace::infer_loss_events(t);
  int recorded = 0;
  for (const auto& s : t.samples) recorded += s.loss_event;
  EXPECT_GE(static_cast<int>(inferred.size()), recorded / 2);
}

TEST(Simulator, SignalsAreInternallyConsistent) {
  auto t = run_connection("cubic", quick_env(5));
  for (const auto& s : t.samples) {
    if (s.sig.acked_bytes > 0) {
      EXPECT_GE(s.sig.acked_bytes, 1448.0 * 0.99);
    }
    EXPECT_GE(s.sig.time_since_loss, 0.0);
    if (s.sig.ack_rate > 0) {
      EXPECT_LT(s.sig.ack_rate, 2.5 * quick_env().bandwidth_bps / 8.0);
    }
  }
}

TEST(Simulator, CollectTracesReturnsOnePerEnvironment) {
  auto envs = default_environments(3, 11);
  for (auto& e : envs) e.duration_s = 3.0;
  auto traces = collect_traces("reno", envs);
  ASSERT_EQ(traces.size(), 3u);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(traces[i].env.seed, envs[i].seed);
    EXPECT_FALSE(traces[i].empty());
  }
}

TEST(Simulator, WmaxSignalTracksWindowAtLoss) {
  auto t = run_connection("cubic", quick_env(6));
  double last_loss_cwnd = 0.0;
  for (const auto& s : t.samples) {
    if (s.loss_event) {
      last_loss_cwnd = s.sig.cwnd;  // window before the cut
    } else if (last_loss_cwnd > 0 && s.sig.acked_bytes > 0) {
      EXPECT_NEAR(s.sig.cwnd_at_loss, last_loss_cwnd, 1.0);
    }
  }
}

}  // namespace
}  // namespace abg::net
