// ISSUE 7's bit-exactness contract, enforced: the SIMD DTW kernels and the
// batched bytecode replay path must be indistinguishable from the scalar
// reference in every result that feeds selection — not approximately, but
// bit for bit. Every suite here runs in each CI SIMD matrix leg (ABG_SIMD =
// avx2/sse2/scalar), so a kernel that diverges on some host breaks the build
// on that host rather than silently reordering search winners.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "cca/signals.hpp"
#include "distance/distance.hpp"
#include "distance/simd.hpp"
#include "dsl/bytecode.hpp"
#include "dsl/eval.hpp"
#include "dsl/expr.hpp"
#include "obs/registry.hpp"
#include "synth/batch_eval.hpp"
#include "synth/refinement.hpp"
#include "synth/replay.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace abg::distance {
namespace {

std::vector<double> random_walk(util::Rng& rng, std::size_t n, double lo = -1.0,
                                double hi = 1.0) {
  std::vector<double> v(n);
  double w = rng.uniform(-10, 10);
  for (auto& x : v) x = (w += rng.uniform(lo, hi));
  return v;
}

std::vector<Simd> available_vector_kernels() {
  std::vector<Simd> out;
  if (simd_available(Simd::kSse2)) out.push_back(Simd::kSse2);
  if (simd_available(Simd::kAvx2)) out.push_back(Simd::kAvx2);
  return out;
}

// The central claim: for any input and any cutoff, every kernel returns the
// bitwise-identical exact-or-+inf result. Series lengths straddle the
// cache-block strip height (128) so strip-carry logic, partial strips, and
// single-row strips are all exercised.
TEST(KernelEquivalence, AllKernelsMatchScalarBitwise) {
  const auto kernels = available_vector_kernels();
  if (kernels.empty()) GTEST_SKIP() << "no vector ISA on this host";
  util::Rng rng(29);
  const std::size_t lengths[] = {1, 2, 3, 5, 17, 64, 100, 127, 128, 129, 200, 257, 300};
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = lengths[static_cast<std::size_t>(
        rng.uniform_int(0, std::size(lengths) - 1))];
    const std::size_t m = lengths[static_cast<std::size_t>(
        rng.uniform_int(0, std::size(lengths) - 1))];
    const auto a = random_walk(rng, n);
    const auto b = random_walk(rng, m);
    for (double frac : {0.0, 0.05, 0.1, 0.3}) {
      const double exact = dtw(a, b, frac, kNoAbandon, Simd::kScalar);
      const double cutoffs[] = {kNoAbandon,       exact * 1.1, exact,
                                exact * 0.5,      exact * 0.1, 0.0,
                                std::nextafter(exact, kNoAbandon)};
      for (double cutoff : cutoffs) {
        const double want = dtw(a, b, frac, cutoff, Simd::kScalar);
        for (Simd k : kernels) {
          const double got = dtw(a, b, frac, cutoff, k);
          // Bitwise: either both +inf or the identical double.
          EXPECT_TRUE(got == want || (std::isinf(got) && std::isinf(want)))
              << simd_name(k) << " n=" << n << " m=" << m << " frac=" << frac
              << " cutoff=" << cutoff << " want=" << want << " got=" << got;
        }
      }
    }
  }
}

TEST(KernelEquivalence, CellCountsMatchScalarWhenUnbounded) {
  // With no cutoff the kernels walk exactly the same band, so the
  // distance.dtw_cells accounting must agree — this is what makes the CI
  // cells/evals ratio gate kernel-independent.
  const auto kernels = available_vector_kernels();
  if (kernels.empty()) GTEST_SKIP() << "no vector ISA on this host";
  util::Rng rng(31);
  auto cells_for = [](std::span<const double> a, std::span<const double> b, double frac,
                      Simd k) {
    auto& c = obs::counter("distance.dtw_cells");
    const std::uint64_t before = c.value();
    dtw(a, b, frac, kNoAbandon, k);
    return c.value() - before;
  };
  for (std::size_t n : {3u, 64u, 129u, 250u}) {
    const auto a = random_walk(rng, n);
    const auto b = random_walk(rng, n + 7);
    for (double frac : {0.0, 0.1}) {
      const std::uint64_t want = cells_for(a, b, frac, Simd::kScalar);
      for (Simd k : kernels) {
        EXPECT_EQ(cells_for(a, b, frac, k), want) << simd_name(k) << " n=" << n;
      }
    }
  }
}

TEST(KernelEquivalence, PerKernelCountersAttributeTheDp) {
  // The labeled distance.dtw_evals{kernel=...} series is the counter half of
  // the per-kernel provenance (the journal byte is the other half).
  const std::vector<double> a{0.0, 1.0, 2.0, 3.0}, b{0.0, 1.0, 2.0, 4.0};
  auto& labeled = obs::counter("distance.dtw_evals", {{"kernel", "scalar"}});
  const std::uint64_t before = labeled.value();
  dtw(a, b, 0.0, kNoAbandon, Simd::kScalar);
  EXPECT_EQ(labeled.value(), before + 1);
}

// CI dispatch self-test: each matrix leg sets ABG_SIMD and asserts the
// resolved kernel is the requested one (skip-with-notice when the ISA is
// unavailable on the runner, e.g. avx2 on an older box).
TEST(SimdDispatch, ResolvedKernelMatchesAbgSimdRequest) {
  const char* env = std::getenv("ABG_SIMD");
  if (env == nullptr || *env == '\0') GTEST_SKIP() << "ABG_SIMD not set";
  const auto want = parse_simd(env);
  ASSERT_TRUE(want.has_value()) << "unparseable ABG_SIMD=" << env;
  if (*want == Simd::kAuto) GTEST_SKIP() << "ABG_SIMD=auto pins no kernel";
  if (!simd_available(*want)) {
    GTEST_SKIP() << "requested ISA " << simd_name(*want) << " unavailable on this host";
  }
  EXPECT_EQ(resolve_simd(Simd::kAuto), *want);
}

TEST(SimdDispatch, ExplicitOptionBeatsEnvironment) {
  // An explicit Simd on the call must win over ABG_SIMD.
  if (!simd_available(Simd::kSse2)) GTEST_SKIP() << "no sse2 on this host";
  EXPECT_EQ(resolve_simd(Simd::kSse2), Simd::kSse2);
  EXPECT_EQ(resolve_simd(Simd::kScalar), Simd::kScalar);
}

TEST(SimdDispatch, AlwaysResolvesToAnAvailableKernel) {
  // Requesting any tier — including ones this host lacks — must land on an
  // available kernel via the avx2 -> sse2 -> scalar fallback chain.
  for (Simd req : {Simd::kAuto, Simd::kScalar, Simd::kSse2, Simd::kAvx2}) {
    const Simd got = resolve_simd(req);
    EXPECT_NE(got, Simd::kAuto);
    EXPECT_TRUE(simd_available(got)) << simd_name(req) << " -> " << simd_name(got);
  }
}

TEST(SimdDispatch, KernelNamesRoundTrip) {
  for (Simd s : {Simd::kScalar, Simd::kSse2, Simd::kAvx2, Simd::kAuto}) {
    const auto parsed = parse_simd(simd_name(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(parse_simd("avx512").has_value());
  EXPECT_FALSE(parse_simd("").has_value());
}

}  // namespace
}  // namespace abg::distance

namespace abg::dsl {
namespace {

// Random expression generator mirroring test_expr_property's, plus holes, so
// the bytecode compiler is fuzzed over the same space the enumerator emits.
ExprPtr random_num(util::Rng& rng, int depth, bool holes);

ExprPtr random_bool(util::Rng& rng, int depth, bool holes) {
  const auto a = random_num(rng, depth - 1, holes);
  const auto b = random_num(rng, depth - 1, holes);
  switch (rng.uniform_int(0, 2)) {
    case 0: return lt(a, b);
    case 1: return gt(a, b);
    default: return mod_eq(a, b);
  }
}

ExprPtr random_num(util::Rng& rng, int depth, bool holes) {
  if (depth <= 1 || rng.chance(0.3)) {
    if (holes && rng.chance(0.2)) return hole(static_cast<int>(rng.uniform_int(0, 3)));
    if (rng.chance(0.25)) {
      static const double kConsts[] = {0.0, 1.0, -0.7, 2.5, 8.0, 0.001};
      return constant(kConsts[rng.uniform_int(0, 5)]);
    }
    return sig(static_cast<Signal>(rng.uniform_int(0, kSignalCount - 1)));
  }
  switch (rng.uniform_int(0, 6)) {
    case 0: return add(random_num(rng, depth - 1, holes), random_num(rng, depth - 1, holes));
    case 1: return sub(random_num(rng, depth - 1, holes), random_num(rng, depth - 1, holes));
    case 2: return mul(random_num(rng, depth - 1, holes), random_num(rng, depth - 1, holes));
    case 3: return div(random_num(rng, depth - 1, holes), random_num(rng, depth - 1, holes));
    case 4: return cube(random_num(rng, depth - 1, holes));
    case 5: return cbrt(random_num(rng, depth - 1, holes));
    default:
      return cond(random_bool(rng, depth - 1, holes), random_num(rng, depth - 1, holes),
                  random_num(rng, depth - 1, holes));
  }
}

cca::Signals random_signals(util::Rng& rng) {
  cca::Signals s;
  s.now = rng.uniform(0, 100);
  s.mss = 1448.0;
  s.cwnd = rng.uniform(1448.0, 1448.0 * 500);
  s.acked_bytes = rng.chance(0.2) ? 0.0 : 1448.0 * static_cast<double>(rng.uniform_int(1, 3));
  s.rtt = rng.uniform(0.001, 0.3);
  s.srtt = s.rtt;
  s.min_rtt = s.rtt * rng.uniform(0.3, 1.0);
  s.max_rtt = s.rtt * rng.uniform(1.0, 3.0);
  s.ack_rate = rng.uniform(0.0, 2e6);
  s.rtt_gradient = rng.uniform(-0.5, 0.5);
  s.time_since_loss = rng.uniform(0.0, 30.0);
  s.cwnd_at_loss = rng.uniform(1448.0, 1448.0 * 500);
  return s;
}

// NaN-tolerant bitwise equality: eval is total but not finite (overflow to
// inf, inf - inf), and both paths must produce the same stream of doubles.
::testing::AssertionResult same_double(double got, double want) {
  if (got == want || (std::isnan(got) && std::isnan(want))) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure() << "got " << got << " want " << want;
}

TEST(Bytecode, MatchesTreeWalkOnRandomExprs) {
  util::Rng rng(101);
  for (int trial = 0; trial < 500; ++trial) {
    const auto e = random_num(rng, static_cast<int>(rng.uniform_int(1, 6)), /*holes=*/true);
    std::vector<double> vals;
    const int n_vals = static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < n_vals; ++i) vals.push_back(rng.uniform(-3.0, 3.0));
    const auto filled = fill_holes(e, vals);
    const Program p = compile(*e);
    for (int s = 0; s < 4; ++s) {
      const auto sigs = random_signals(rng);
      EXPECT_TRUE(same_double(run(p, sigs, vals), eval(*filled, sigs)))
          << "expr: " << to_string(*e) << " trial " << trial;
    }
  }
}

TEST(Bytecode, BatchLanesMatchSingleLaneRuns) {
  util::Rng rng(103);
  for (int trial = 0; trial < 100; ++trial) {
    const auto e = random_num(rng, 5, /*holes=*/true);
    const Program p = compile(*e);
    const std::size_t n_lanes = static_cast<std::size_t>(rng.uniform_int(1, kBatchLanes));
    std::vector<double> lane_cwnd(n_lanes);
    std::vector<double> holes_sm(p.hole_slots * n_lanes);  // slot-major
    std::vector<std::vector<double>> per_lane(n_lanes);
    for (std::size_t l = 0; l < n_lanes; ++l) {
      lane_cwnd[l] = rng.uniform(0.0, 1448.0 * 300);
      for (std::size_t s = 0; s < p.hole_slots; ++s) {
        const double v = rng.uniform(-2.0, 2.0);
        holes_sm[s * n_lanes + l] = v;
        per_lane[l].push_back(v);
      }
    }
    const auto base = random_signals(rng);
    double out[kBatchLanes];
    run_batch(p, base, lane_cwnd, holes_sm, n_lanes, out);
    for (std::size_t l = 0; l < n_lanes; ++l) {
      cca::Signals sigs = base;
      sigs.cwnd = lane_cwnd[l];
      EXPECT_TRUE(same_double(out[l], run(p, sigs, per_lane[l])))
          << "expr: " << to_string(*e) << " lane " << l;
    }
  }
}

TEST(Bytecode, StaticallyFalseGuardKeepsHoleSlots) {
  // A hole inside a guard that eval_bool rejects statically (a non-boolean
  // condition) is never executed, but it still owns its hole slot — the
  // bindings of the holes that DO execute must not shift.
  const auto e = cond(add(hole(0), hole(1)), hole(2), hole(3));
  const std::vector<double> vals{2.0, 3.0, 4.0, 5.0};
  const Program p = compile(*e);
  EXPECT_EQ(p.hole_slots, 4u);
  const cca::Signals sigs;
  EXPECT_EQ(run(p, sigs, vals), 5.0);  // guard is false -> else branch -> hole 3
  EXPECT_EQ(run(p, sigs, vals), eval(*fill_holes(e, vals), sigs));
}

}  // namespace
}  // namespace abg::dsl

namespace abg::synth {
namespace {

trace::Segment make_segment(util::Rng& rng, std::size_t n) {
  trace::Segment seg;
  seg.cca_name = "fuzz";
  double cwnd = 10 * 1448.0;
  for (std::size_t i = 0; i < n; ++i) {
    trace::AckSample s;
    s.sig = dsl::random_signals(rng);
    s.sig.cwnd = cwnd;
    s.is_dup = rng.chance(0.1);
    cwnd = std::max(1448.0, cwnd + rng.uniform(-1448.0, 2 * 1448.0));
    s.cwnd_after = cwnd;
    seg.samples.push_back(s);
  }
  return seg;
}

TEST(BatchReplay, MatchesScalarReplayBitwise) {
  util::Rng rng(107);
  for (int trial = 0; trial < 40; ++trial) {
    const auto sketch = dsl::random_num(rng, 5, /*holes=*/true);
    const dsl::Program prog = dsl::compile(*sketch);
    const auto seg = make_segment(rng, static_cast<std::size_t>(rng.uniform_int(1, 60)));
    const std::size_t n_lanes = static_cast<std::size_t>(rng.uniform_int(1, dsl::kBatchLanes));
    std::vector<std::vector<double>> assigns(n_lanes);
    for (auto& a : assigns) {
      const int n_vals = static_cast<int>(rng.uniform_int(0, 4));
      for (int i = 0; i < n_vals; ++i) a.push_back(rng.uniform(-2.0, 2.0));
    }
    std::vector<const std::vector<double>*> lanes;
    for (const auto& a : assigns) lanes.push_back(&a);
    std::vector<std::vector<double>> got;
    replay_batch(prog, lanes, seg, {}, &got);
    ASSERT_EQ(got.size(), n_lanes);
    for (std::size_t l = 0; l < n_lanes; ++l) {
      const auto want = replay(*dsl::fill_holes(sketch, assigns[l]), seg);
      ASSERT_EQ(got[l].size(), want.size()) << "lane " << l;
      for (std::size_t i = 0; i < want.size(); ++i) {
        // Bitwise: the synthesized series feeds DTW, whose result feeds
        // selection; any ULP of drift here could reorder winners.
        EXPECT_TRUE(dsl::same_double(got[l][i], want[i]))
            << "lane " << l << " sample " << i << " sketch " << dsl::to_string(*sketch);
      }
    }
  }
}

// End-to-end invariance at the score_sketch level: the batched bytecode
// path and the scalar tree-walk path (and every available DTW kernel under
// each) must select the same winner with the bitwise-identical distance.
TEST(BatchSearch, WinnerIdenticalAcrossBatchingAndKernels) {
  util::Rng seg_rng(109);
  std::vector<trace::Segment> segments;
  for (int i = 0; i < 3; ++i) segments.push_back(make_segment(seg_rng, 40));
  const std::vector<double> pool{0.25, 0.5, 1.0, 2.0};
  const auto sketch =
      dsl::add(dsl::sig(dsl::Signal::kCwnd),
               dsl::mul(dsl::hole(0), dsl::add(dsl::sig(dsl::Signal::kRenoInc),
                                               dsl::hole(1))));

  struct Config {
    bool batch;
    distance::Simd simd;
  };
  std::vector<Config> configs{{false, distance::Simd::kScalar}, {true, distance::Simd::kScalar}};
  if (distance::simd_available(distance::Simd::kSse2)) {
    configs.push_back({true, distance::Simd::kSse2});
  }
  if (distance::simd_available(distance::Simd::kAvx2)) {
    configs.push_back({true, distance::Simd::kAvx2});
  }

  std::string want_text;
  double want_distance = 0.0;
  std::size_t want_scored = 0;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    SynthesisOptions opts;
    opts.batch_replay = configs[c].batch;
    opts.simd = configs[c].simd;
    opts.concretize_budget = 24;
    util::Rng rng(55);  // identical sampling per config
    std::size_t scored = 0;
    EvalContext ctx;  // no cache, no bound: every distance exact
    const auto best = score_sketch(sketch, segments, pool, opts, rng, &scored, &ctx);
    ASSERT_TRUE(best.valid());
    const std::string text = dsl::to_string(*best.handler);
    if (c == 0) {
      want_text = text;
      want_distance = best.distance;
      want_scored = scored;
    } else {
      EXPECT_EQ(text, want_text) << "config " << c;
      EXPECT_EQ(best.distance, want_distance) << "config " << c;  // bitwise
      EXPECT_EQ(scored, want_scored) << "config " << c;
    }
  }
}

// Same invariance with the whole fast path on: memo cache plus a finite
// abandon bound. Only results below the bound are part of the contract, so
// pin the winner (which beats the bound) rather than intermediate values.
TEST(BatchSearch, WinnerSurvivesCacheAndAbandonBound) {
  util::Rng seg_rng(113);
  std::vector<trace::Segment> segments;
  for (int i = 0; i < 2; ++i) segments.push_back(make_segment(seg_rng, 30));
  const std::vector<double> pool{0.5, 1.0, 2.0};
  const auto sketch = dsl::add(dsl::sig(dsl::Signal::kCwnd),
                               dsl::mul(dsl::hole(0), dsl::sig(dsl::Signal::kRenoInc)));

  auto run_once = [&](bool batch) {
    SynthesisOptions opts;
    opts.batch_replay = batch;
    opts.concretize_budget = 16;
    util::Rng rng(77);
    EvalCache cache;
    EvalContext ctx;
    ctx.cache = &cache;
    ctx.fingerprint = 42;
    std::size_t scored = 0;
    ScoredHandler best = score_sketch(sketch, segments, pool, opts, rng, &scored, &ctx);
    // Second pass over the same sketch must answer from the cache and keep
    // the same winner (this is how iteration re-scoring consumes it).
    util::Rng rng2(77);
    ScoredHandler again = score_sketch(sketch, segments, pool, opts, rng2, &scored, &ctx);
    EXPECT_EQ(again.distance, best.distance);
    return best;
  };
  const auto scalar = run_once(false);
  const auto batched = run_once(true);
  ASSERT_TRUE(scalar.valid());
  ASSERT_TRUE(batched.valid());
  EXPECT_EQ(dsl::to_string(*batched.handler), dsl::to_string(*scalar.handler));
  EXPECT_EQ(batched.distance, scalar.distance);  // bitwise
}

}  // namespace
}  // namespace abg::synth
