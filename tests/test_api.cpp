// Tests for the abg::api facade (batch Engine, JobSpec validation, manifest
// parsing, compat wrappers) and the work-stealing ThreadPool scheduler it
// runs on.
//
// The Scheduler* suite is deliberately Z3-free and simulator-free: CI runs
// exactly that filter under ThreadSanitizer (`abg_tests_api
// --gtest_filter='Scheduler*'`), where instrumenting the prebuilt solver is
// not an option. Keep new scheduler/concurrency tests inside that prefix and
// keep synthesis out of them.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "abg/abagnale.hpp"
#include "net/simulator.hpp"
#include "util/json_parse.hpp"

namespace abg {
namespace {

// --- Scheduler: templated parallel_for + work stealing (Z3-free). ----------

TEST(Scheduler, ParallelForRunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> counts(kN);
  pool.parallel_for(kN, [&](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(Scheduler, ParallelForHandlesEdgeSizes) {
  util::ThreadPool pool(2);
  int zero_calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++zero_calls; });
  EXPECT_EQ(zero_calls, 0);

  std::atomic<int> one_calls{0};
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    one_calls.fetch_add(1);
  });
  EXPECT_EQ(one_calls.load(), 1);

  // More work items than workers, fewer work items than workers.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(3, [&](std::size_t i) { sum.fetch_add(i + 1); });
  EXPECT_EQ(sum.load(), 6u);
}

// The old signature (`const std::function<void(std::size_t)>&`) could not
// accept a move-only callable at all — this test is a compile-time proof the
// loop is now templated, plus a runtime check that captured state survives.
TEST(Scheduler, ParallelForAcceptsMoveOnlyCallable) {
  util::ThreadPool pool(2);
  auto token = std::make_unique<int>(41);
  std::atomic<int> seen{0};
  pool.parallel_for(8, [token = std::move(token), &seen](std::size_t) {
    seen.fetch_add(*token);
  });
  EXPECT_EQ(seen.load(), 8 * 41);
}

TEST(Scheduler, ParallelForPropagatesFirstException) {
  util::ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      if (i == 13) throw std::runtime_error("boom");
      completed.fetch_add(1);
    });
    FAIL() << "expected the worker exception to rethrow on the caller";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // Every non-throwing index still ran: an exception must not strand the
  // remaining tasks (the pool would deadlock on them at destruction).
  EXPECT_EQ(completed.load(), 63);
}

TEST(Scheduler, ParallelForNestsWithoutDeadlock) {
  // A parallel_for issued from inside a pool task must complete even when
  // every worker is busy: the issuing task participates (caller-runs), so
  // progress never depends on a free worker. This is the property that lets
  // Engine drivers run jobs' loops on a fully loaded shared pool.
  util::ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32u);
}

TEST(Scheduler, ConcurrentParallelForsFromManyThreads) {
  // Several external threads driving loops on one pool, as concurrent batch
  // jobs do. Each loop's own indices must stay exact under work stealing.
  util::ThreadPool pool(4);
  constexpr int kDrivers = 6;
  constexpr std::size_t kN = 2'000;
  std::vector<std::vector<std::atomic<int>>> counts(kDrivers);
  for (auto& c : counts) c = std::vector<std::atomic<int>>(kN);
  std::vector<std::thread> drivers;
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      pool.parallel_for(kN, [&, d](std::size_t i) { counts[d][i].fetch_add(1); });
    });
  }
  for (auto& t : drivers) t.join();
  for (int d = 0; d < kDrivers; ++d) {
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(counts[d][i].load(), 1) << "driver " << d << " index " << i;
    }
  }
}

TEST(Scheduler, SubmitReturnsFutureResult) {
  util::ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  auto g = pool.submit([] { return std::string("stolen"); });
  EXPECT_EQ(f.get(), 42);
  EXPECT_EQ(g.get(), "stolen");
}

TEST(Scheduler, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&] { ran.fetch_add(1); });
    }
  }  // ~ThreadPool joins only after every queued task executed
  EXPECT_EQ(ran.load(), 200);
}

// --- Option and spec validation. -------------------------------------------

TEST(ApiValidation, SynthesisOptionsCatchesBadFields) {
  synth::SynthesisOptions ok;
  EXPECT_TRUE(ok.validate().is_ok());

  synth::SynthesisOptions o = ok;
  o.initial_samples = 0;
  EXPECT_EQ(o.validate().code(), util::StatusCode::kInvalidArgument);

  o = ok;
  o.timeout_s = -1.0;
  EXPECT_EQ(o.validate().code(), util::StatusCode::kInvalidArgument);

  o = ok;
  o.resume = true;  // no checkpoint path
  EXPECT_EQ(o.validate().code(), util::StatusCode::kInvalidArgument);

  o = ok;
  o.max_depth = 0;
  EXPECT_EQ(o.validate().code(), util::StatusCode::kInvalidArgument);
}

TEST(ApiValidation, PipelineOptionsRejectsUnknownDsl) {
  core::PipelineOptions o;
  o.dsl_override = "no-such-dsl";
  const auto st = o.validate();
  EXPECT_EQ(st.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(st.to_string().find("no-such-dsl"), std::string::npos);
}

TEST(ApiValidation, JobSpecNeedsInputAndConsistentSources) {
  EXPECT_EQ(api::JobSpec().validate().code(), util::StatusCode::kInvalidArgument);

  // Pre-segmented input without a DSL: nothing left to classify.
  api::JobSpec segs_only;
  segs_only.segments.emplace_back();
  EXPECT_EQ(segs_only.validate().code(), util::StatusCode::kInvalidArgument);
  segs_only.with_dsl("reno");
  EXPECT_TRUE(segs_only.validate().is_ok());

  // Segments and raw traces are mutually exclusive.
  segs_only.add_trace_path("x.csv");
  EXPECT_EQ(segs_only.validate().code(), util::StatusCode::kInvalidArgument);

  // mister880 requires an explicit DSL.
  api::JobSpec m;
  m.with_kind(api::JobSpec::Kind::kMister880).add_trace_path("x.csv");
  EXPECT_EQ(m.validate().code(), util::StatusCode::kInvalidArgument);
  m.with_dsl("reno");
  EXPECT_TRUE(m.validate().is_ok());
}

TEST(ApiValidation, EngineRejectsBadSpecEagerly) {
  api::Engine engine({.threads = 2, .max_concurrent_jobs = 1});
  auto h = engine.submit(api::JobSpec().with_name("broken"));  // no input
  ASSERT_FALSE(h.ok());
  EXPECT_EQ(h.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(h.status().to_string().find("broken"), std::string::npos);
  EXPECT_EQ(engine.jobs_submitted(), 0u);

  // submit_all is all-or-nothing: one bad spec rejects the whole batch.
  std::vector<api::JobSpec> specs(2);
  specs[0].segments.emplace_back();
  specs[0].with_dsl("reno");
  auto hs = engine.submit_all(std::move(specs));
  ASSERT_FALSE(hs.ok());
  EXPECT_EQ(engine.jobs_submitted(), 0u);
}

// --- Manifest parsing. ------------------------------------------------------

TEST(Manifest, ParsesEngineAndJobFields) {
  const char* text = R"({
    "threads": 8, "max_concurrent_jobs": 2, "share_eval_cache": false,
    "report": "out.json",
    "jobs": [
      {"name": "reno", "traces": ["a.csv", "b.csv"], "dsl": "reno",
       "timeout_s": 30, "seed": 11, "metric": "euclidean",
       "max_iterations": 2, "initial_samples": 4, "max_holes": 1,
       "repair_traces": true},
      {"traces": ["c.csv"], "kind": "mister880", "dsl": "cubic"}
    ]
  })";
  auto m = api::parse_manifest(text);
  ASSERT_TRUE(m.ok()) << m.status().to_string();
  EXPECT_EQ(m->engine.threads, 8u);
  EXPECT_EQ(m->engine.max_concurrent_jobs, 2u);
  EXPECT_FALSE(m->engine.share_eval_cache);
  EXPECT_EQ(m->report_path, "out.json");
  ASSERT_EQ(m->jobs.size(), 2u);

  const auto& j0 = m->jobs[0];
  EXPECT_EQ(j0.name, "reno");
  ASSERT_EQ(j0.trace_paths.size(), 2u);
  EXPECT_EQ(*j0.pipeline.dsl_override, "reno");
  EXPECT_EQ(j0.pipeline.synth.timeout_s, 30.0);
  EXPECT_EQ(j0.pipeline.synth.seed, 11u);
  EXPECT_EQ(j0.pipeline.synth.metric, distance::Metric::kEuclidean);
  EXPECT_EQ(j0.pipeline.synth.max_iterations, 2);
  EXPECT_EQ(j0.pipeline.synth.initial_samples, 4);
  EXPECT_EQ(j0.pipeline.synth.max_holes, 1);
  EXPECT_TRUE(j0.load.repair);
  EXPECT_TRUE(j0.validate().is_ok());

  EXPECT_EQ(m->jobs[1].kind, api::JobSpec::Kind::kMister880);
}

TEST(Manifest, RejectsStructuralMistakes) {
  // Unknown keys anywhere are errors, not silently ignored defaults.
  EXPECT_EQ(api::parse_manifest(R"({"jobz": []})").status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(api::parse_manifest(
                R"({"jobs": [{"traces": ["a.csv"], "timeout": 5}]})")
                .status()
                .code(),
            util::StatusCode::kInvalidArgument);
  // Type mismatches.
  EXPECT_EQ(api::parse_manifest(R"({"jobs": [{"traces": "a.csv"}]})").status().code(),
            util::StatusCode::kInvalidArgument);
  // Empty sweeps and syntax errors.
  EXPECT_EQ(api::parse_manifest(R"({"jobs": []})").status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(api::parse_manifest("{").status().code(), util::StatusCode::kParseError);
  // Error context names the offending job.
  const auto st = api::parse_manifest(R"({"jobs": [{"traces": ["a.csv"]},
                                                   {"traces": []}]})")
                      .status();
  EXPECT_NE(st.to_string().find("jobs[1]"), std::string::npos);
}

// --- Engine end-to-end (uses the synthesis loop, so Z3 territory). ----------

std::vector<trace::Segment> cca_segments(const char* cca, std::uint64_t seed) {
  trace::Environment env;
  env.bandwidth_bps = 10e6;
  env.rtt_s = 0.04;
  env.duration_s = 10.0;
  env.seed = seed;
  auto t = net::run_connection(cca, env);
  return trace::segment_all({trace::trim_warmup(t, 2.0)}, 20);
}

synth::SynthesisOptions quick_opts() {
  synth::SynthesisOptions o;
  o.initial_samples = 6;
  o.initial_keep = 3;
  o.initial_segments = 2;
  o.concretize_budget = 12;
  o.max_iterations = 2;
  o.exhaustive_cap = 60;
  o.max_depth = 3;
  o.max_nodes = 5;
  o.max_holes = 2;
  o.threads = 2;
  o.seed = 5;
  return o;
}

api::JobSpec quick_job(const std::string& name, const dsl::Dsl& d,
                       std::vector<trace::Segment> segs) {
  api::JobSpec spec;
  spec.with_name(name).with_custom_dsl(d).with_segments(std::move(segs));
  spec.pipeline.synth = quick_opts();
  return spec;
}

void expect_same_synthesis(const synth::SynthesisResult& a, const synth::SynthesisResult& b,
                           const std::string& label) {
  ASSERT_EQ(a.best.valid(), b.best.valid()) << label;
  if (a.best.valid()) {
    EXPECT_EQ(dsl::to_string(*a.best.handler), dsl::to_string(*b.best.handler)) << label;
    EXPECT_EQ(a.best.distance, b.best.distance) << label;  // exact, not approximate
  }
  EXPECT_EQ(a.total_sketches, b.total_sketches) << label;
  EXPECT_EQ(a.total_handlers_scored, b.total_handlers_scored) << label;
  EXPECT_EQ(a.candidates_validated, b.candidates_validated) << label;
  ASSERT_EQ(a.iterations.size(), b.iterations.size()) << label;
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    ASSERT_EQ(a.iterations[i].buckets.size(), b.iterations[i].buckets.size()) << label;
    for (std::size_t j = 0; j < a.iterations[i].buckets.size(); ++j) {
      EXPECT_EQ(a.iterations[i].buckets[j].label, b.iterations[i].buckets[j].label) << label;
      EXPECT_EQ(a.iterations[i].buckets[j].score, b.iterations[i].buckets[j].score)
          << label << " iter " << i << " rank " << j;
    }
  }
}

// The batch acceptance criterion: a 4-job batch on a shared pool + shared
// cache produces bit-identical results to the same 4 jobs run sequentially
// through the legacy entry point.
TEST(EngineGolden, FourJobBatchMatchesSequentialRuns) {
  struct Case {
    const char* name;
    const dsl::Dsl dsl;
    std::vector<trace::Segment> segs;
  };
  std::vector<Case> cases;
  cases.push_back({"reno-a", dsl::reno_dsl(), cca_segments("reno", 21)});
  cases.push_back({"reno-b", dsl::reno_dsl(), cca_segments("reno", 22)});
  cases.push_back({"cubic-a", dsl::cubic_dsl(), cca_segments("cubic", 23)});
  cases.push_back({"reno-c", dsl::reno_dsl(), cca_segments("reno", 24)});

  std::vector<synth::SynthesisResult> sequential;
  for (const auto& c : cases) {
    sequential.push_back(synth::synthesize(c.dsl, c.segs, quick_opts()));
  }

  api::Engine engine({.threads = 4, .max_concurrent_jobs = 2});
  std::vector<api::JobHandle> handles;
  for (const auto& c : cases) {
    auto h = engine.submit(quick_job(c.name, c.dsl, c.segs));
    ASSERT_TRUE(h.ok()) << h.status().to_string();
    handles.push_back(*h);
  }
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const api::JobResult& r = handles[i].wait();
    ASSERT_TRUE(r.ok()) << r.status.to_string();
    EXPECT_EQ(r.name, cases[i].name);
    expect_same_synthesis(sequential[i], r.pipeline.synthesis, cases[i].name);
  }
}

// Satellite 3: cross-job cache sharing. The second identical job must hit
// the shared cache (hits > 0) and still return bit-identical results to a
// fully isolated run.
TEST(EngineCacheSharing, SecondJobHitsSharedCacheWithIdenticalResults) {
  const auto segs = cca_segments("reno", 21);
  const auto isolated = synth::synthesize(dsl::reno_dsl(), segs, quick_opts());

  api::Engine engine({.threads = 2, .max_concurrent_jobs = 1});
  auto h1 = engine.submit(quick_job("first", dsl::reno_dsl(), segs));
  auto h2 = engine.submit(quick_job("second", dsl::reno_dsl(), segs));
  ASSERT_TRUE(h1.ok() && h2.ok());
  const api::JobResult& r1 = h1->wait();
  const api::JobResult& r2 = h2->wait();
  ASSERT_TRUE(r1.ok() && r2.ok());

  expect_same_synthesis(isolated, r1.pipeline.synthesis, "first");
  expect_same_synthesis(isolated, r2.pipeline.synthesis, "second");

  // Per-job attribution: the second job re-derives the same canonical
  // handlers over the same segment fingerprint, so the shared cache answers.
  EXPECT_GT(r2.cache_hits, isolated.cache_hits);
  EXPECT_GT(r2.cache_hits, 0u);
  // And with one driver the jobs ran back to back, so job 2's hits come from
  // job 1's inserts, not its own.
  EXPECT_LT(r2.cache_misses, r1.cache_misses + r1.cache_hits);
}

TEST(Engine, ShareEvalCacheOffIsolatesJobs) {
  const auto segs = cca_segments("reno", 21);
  api::Engine engine({.threads = 2, .max_concurrent_jobs = 1, .share_eval_cache = false});
  auto h1 = engine.submit(quick_job("first", dsl::reno_dsl(), segs));
  auto h2 = engine.submit(quick_job("second", dsl::reno_dsl(), segs));
  ASSERT_TRUE(h1.ok() && h2.ok());
  const api::JobResult& r1 = h1->wait();
  const api::JobResult& r2 = h2->wait();
  // Identical jobs, isolated caches: identical cache traffic, no cross-job
  // hits beyond what one run generates for itself.
  EXPECT_EQ(r1.cache_hits, r2.cache_hits);
  EXPECT_EQ(r1.cache_misses, r2.cache_misses);
  expect_same_synthesis(r1.pipeline.synthesis, r2.pipeline.synthesis, "isolated pair");
}

TEST(Engine, PollWaitAndStreamedIterations) {
  const auto segs = cca_segments("reno", 21);
  std::atomic<int> streamed{0};
  api::Engine engine({.threads = 2, .max_concurrent_jobs = 1});
  auto spec = quick_job("watched", dsl::reno_dsl(), segs);
  spec.with_iteration_callback([&](const synth::IterationReport&) { streamed.fetch_add(1); });
  auto h = engine.submit(std::move(spec));
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->valid());
  EXPECT_EQ(h->name(), "watched");

  const api::JobResult& r = h->wait();
  EXPECT_EQ(h->state(), api::JobState::kDone);
  ASSERT_NE(h->poll(), nullptr);
  EXPECT_EQ(h->poll(), &r);  // poll and wait expose the same record
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(static_cast<std::size_t>(streamed.load()),
            r.pipeline.synthesis.iterations.size());
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_EQ(r.exit_class(), 0);
}

TEST(Engine, CancelPreemptsJobWithBestSoFar) {
  const auto segs = cca_segments("reno", 21);
  api::Engine engine({.threads = 2, .max_concurrent_jobs = 1});

  // Park the driver on a long-ish first job, then cancel the queued second
  // job before it starts; it must come back cancelled, not run to completion.
  auto first = engine.submit(quick_job("long", dsl::reno_dsl(), segs));
  ASSERT_TRUE(first.ok());
  auto second = engine.submit(quick_job("cancelled", dsl::reno_dsl(), segs));
  ASSERT_TRUE(second.ok());
  second->cancel();
  const api::JobResult& r = second->wait();
  EXPECT_EQ(r.status.code(), util::StatusCode::kCancelled);
  EXPECT_TRUE(r.pipeline.synthesis.partial);
  EXPECT_EQ(r.exit_class(), util::exit_code(util::StatusCode::kCancelled));
  first->wait();
}

TEST(Engine, AutoNamesAndDestructorDrains) {
  const auto segs = cca_segments("reno", 21);
  std::string name;
  {
    api::Engine engine({.threads = 2});
    auto h = engine.submit(quick_job("", dsl::reno_dsl(), segs));
    ASSERT_TRUE(h.ok());
    name = h->name();
    EXPECT_EQ(engine.jobs_submitted(), 1u);
  }  // ~Engine waited for the job; no crash, no leak (ASan leg enforces)
  EXPECT_EQ(name, "job-1");
}

// --- Live introspection: jobs_snapshot / jobs_json / convergence series. ----

TEST(EngineStatus, SnapshotMatchesFinalResultsAfterCompletion) {
  const auto segs_reno = cca_segments("reno", 21);
  const auto segs_cubic = cca_segments("cubic", 23);
  api::Engine engine({.threads = 2, .max_concurrent_jobs = 1});
  auto h1 = engine.submit(quick_job("reno", dsl::reno_dsl(), segs_reno));
  auto h2 = engine.submit(quick_job("cubic", dsl::cubic_dsl(), segs_cubic));
  ASSERT_TRUE(h1.ok() && h2.ok());
  const api::JobResult& r1 = h1->wait();
  const api::JobResult& r2 = h2->wait();
  ASSERT_TRUE(r1.ok() && r2.ok());

  const auto snaps = engine.jobs_snapshot();
  ASSERT_EQ(snaps.size(), 2u);
  const api::JobResult* results[] = {&r1, &r2};
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    const api::JobSnapshot& s = snaps[i];
    const api::JobResult& r = *results[i];
    EXPECT_EQ(s.name, r.name);
    EXPECT_EQ(s.state, api::JobState::kDone);
    EXPECT_EQ(static_cast<std::size_t>(s.iterations), r.convergence.size());
    EXPECT_EQ(s.planned_iterations, quick_opts().max_iterations);
    EXPECT_EQ(s.cache_hits, r.cache_hits);
    EXPECT_EQ(s.cache_misses, r.cache_misses);
    EXPECT_EQ(s.elapsed_s, r.seconds);
    EXPECT_EQ(s.found, r.found());
    EXPECT_EQ(s.exit_class, r.exit_class());
    if (r.found()) {
      EXPECT_EQ(s.best_distance, r.pipeline.synthesis.best.distance);
    }
    const double total = static_cast<double>(s.cache_hits + s.cache_misses);
    if (total > 0) {
      EXPECT_DOUBLE_EQ(s.cache_hit_rate(), static_cast<double>(s.cache_hits) / total);
    }
  }
  EXPECT_STREQ(api::job_state_name(api::JobState::kDone), "done");
}

TEST(EngineStatus, JobsJsonIsValidAndMatchesSnapshot) {
  const auto segs = cca_segments("reno", 21);
  api::Engine engine({.threads = 2, .max_concurrent_jobs = 1});
  auto h = engine.submit(quick_job("status-job", dsl::reno_dsl(), segs));
  ASSERT_TRUE(h.ok());
  const api::JobResult& r = h->wait();
  ASSERT_TRUE(r.ok());

  auto doc = util::parse_json(engine.jobs_json());
  ASSERT_TRUE(doc.ok()) << doc.status().to_string();
  const util::JsonValue* jobs = doc->find("jobs");
  ASSERT_NE(jobs, nullptr);
  ASSERT_EQ(jobs->items().size(), 1u);
  const util::JsonValue& j = jobs->items()[0];
  ASSERT_NE(j.find("name"), nullptr);
  EXPECT_EQ(j.find("name")->as_string(), "status-job");
  EXPECT_EQ(j.find("state")->as_string(), "done");
  EXPECT_EQ(static_cast<std::size_t>(j.find("iterations")->as_int()), r.convergence.size());
  EXPECT_EQ(static_cast<std::uint64_t>(j.find("cache_hits")->as_int()), r.cache_hits);
  EXPECT_EQ(static_cast<std::uint64_t>(j.find("cache_misses")->as_int()), r.cache_misses);
  EXPECT_EQ(j.find("found")->as_bool(), r.found());
  EXPECT_EQ(j.find("exit_class")->as_int(), r.exit_class());
  ASSERT_NE(j.find("eta_s"), nullptr);  // present even when done (-1 = n/a)
}

TEST(EngineStatus, ConvergenceSeriesTracksIterationReports) {
  const auto segs = cca_segments("reno", 21);
  api::Engine engine({.threads = 2, .max_concurrent_jobs = 1});
  auto h = engine.submit(quick_job("conv", dsl::reno_dsl(), segs));
  ASSERT_TRUE(h.ok());
  const api::JobResult& r = h->wait();
  ASSERT_TRUE(r.ok());

  const auto& iters = r.pipeline.synthesis.iterations;
  ASSERT_FALSE(r.convergence.empty());
  ASSERT_EQ(r.convergence.size(), iters.size());
  double prev_best = std::numeric_limits<double>::infinity();
  double prev_wall = 0.0;
  for (std::size_t i = 0; i < r.convergence.size(); ++i) {
    const api::ConvergencePoint& p = r.convergence[i];
    EXPECT_EQ(p.iteration, static_cast<int>(i));
    EXPECT_EQ(p.best_distance, iters[i].best_distance);
    // Best-so-far never regresses; cumulative wall time never runs backwards.
    EXPECT_LE(p.best_distance, prev_best);
    EXPECT_GE(p.wall_ms, prev_wall);
    prev_best = p.best_distance;
    prev_wall = p.wall_ms;
  }
}

// --- Compatibility wrappers. ------------------------------------------------
// The wrappers are [[deprecated]] (build a JobSpec, run it through
// api::Engine) but must stay bit-equivalent until removal — these tests pin
// that, so they are the one sanctioned call site.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(Compat, SynthesizeWrapperMatchesDirectCall) {
  const auto segs = cca_segments("reno", 21);
  const auto direct = synth::synthesize(dsl::reno_dsl(), segs, quick_opts());
  const auto wrapped = api::synthesize(dsl::reno_dsl(), segs, quick_opts());
  expect_same_synthesis(direct, wrapped, "compat synthesize");
}

TEST(Compat, Mister880WrapperMatchesDirectCall) {
  const auto segs = cca_segments("reno", 21);
  synth::Mister880Options opts;
  opts.max_sketches = 40;
  opts.concretize_budget = 8;
  opts.max_holes = 1;
  opts.max_depth = 3;
  opts.max_nodes = 5;
  const auto direct = synth::mister880_synthesize(dsl::reno_dsl(), segs, opts);
  const auto wrapped = api::run_mister880(dsl::reno_dsl(), segs, opts);
  EXPECT_EQ(direct.found(), wrapped.found());
  EXPECT_EQ(direct.sketches_tried, wrapped.sketches_tried);
  EXPECT_EQ(direct.handlers_tried, wrapped.handlers_tried);
  if (direct.found()) {
    EXPECT_EQ(dsl::to_string(*direct.handler), dsl::to_string(*wrapped.handler));
  }
}

#pragma GCC diagnostic pop

}  // namespace
}  // namespace abg
