#include <gtest/gtest.h>

#include <cmath>

#include "distance/distance.hpp"
#include "util/rng.hpp"

namespace abg::distance {
namespace {

std::vector<double> ramp(std::size_t n, double slope = 1.0, double offset = 0.0) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = offset + slope * static_cast<double>(i);
  return v;
}

std::vector<double> sine(std::size_t n, double period, double phase = 0.0) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(2 * M_PI * (static_cast<double>(i) / period) + phase);
  }
  return v;
}

TEST(Resample, PreservesEndpoints) {
  auto r = resample(ramp(100), 10);
  ASSERT_EQ(r.size(), 10u);
  EXPECT_DOUBLE_EQ(r.front(), 0.0);
  EXPECT_DOUBLE_EQ(r.back(), 99.0);
}

TEST(Resample, UpsamplesByInterpolation) {
  std::vector<double> v{0.0, 10.0};
  auto r = resample(v, 11);
  EXPECT_NEAR(r[5], 5.0, 1e-9);
}

TEST(Resample, HandlesSingletonAndEmpty) {
  std::vector<double> one{7.0};
  auto r = resample(one, 5);
  for (double x : r) EXPECT_DOUBLE_EQ(x, 7.0);
  EXPECT_EQ(resample({}, 4).size(), 4u);
}

// Identity / symmetry / non-negativity for every metric.
class MetricProperties : public ::testing::TestWithParam<Metric> {};

TEST_P(MetricProperties, IdenticalSeriesHaveZeroDistance) {
  auto a = sine(200, 40);
  EXPECT_NEAR(compute(GetParam(), a, a), 0.0, 1e-9);
}

TEST_P(MetricProperties, IsSymmetric) {
  auto a = sine(150, 30);
  auto b = ramp(170, 0.1);
  EXPECT_NEAR(compute(GetParam(), a, b), compute(GetParam(), b, a), 1e-9);
}

TEST_P(MetricProperties, IsNonNegative) {
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a(50), b(60);
    for (auto& x : a) x = rng.uniform(0, 100);
    for (auto& x : b) x = rng.uniform(0, 100);
    EXPECT_GE(compute(GetParam(), a, b), 0.0);
  }
}

TEST_P(MetricProperties, EmptyVsEmptyIsZero) {
  EXPECT_DOUBLE_EQ(compute(GetParam(), {}, {}), 0.0);
}

TEST_P(MetricProperties, EmptyVsNonEmptyIsInfinite) {
  auto a = ramp(10);
  EXPECT_TRUE(std::isinf(compute(GetParam(), a, {})));
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricProperties, ::testing::ValuesIn(all_metrics()),
                         [](const auto& info) { return metric_name(info.param); });

TEST(Dtw, ToleratesTemporalShiftBetterThanEuclidean) {
  // Same sawtooth, quarter-period phase shift: DTW realigns, Euclidean
  // cannot (the basis of Figure 3's metric choice).
  auto a = sine(400, 80);
  auto b = sine(400, 80, M_PI / 2);
  const double d_dtw = dtw(a, b);
  const double d_euc = euclidean(a, b);
  EXPECT_LT(d_dtw, 0.3 * d_euc);
}

TEST(Dtw, DetectsAmplitudeDifference) {
  auto a = sine(200, 50);
  auto b = a;
  for (auto& x : b) x *= 3.0;
  EXPECT_GT(dtw(a, b), 0.5);
}

TEST(Dtw, BandedApproximatesFull) {
  auto a = sine(300, 60);
  auto b = sine(300, 60, 0.2);
  const double full = dtw(a, b);
  const double banded = dtw(a, b, 0.2);
  EXPECT_NEAR(banded, full, std::max(0.05, full * 0.5));
  EXPECT_GE(banded, full - 1e-12);  // band can only restrict the warp
}

TEST(Dtw, HandlesDifferentLengths) {
  auto a = ramp(100);
  auto b = resample(a, 63);
  EXPECT_LT(dtw(a, b), 1.0);
}

TEST(Euclidean, MeasuresVerticalOffset) {
  auto a = ramp(100, 1.0, 0.0);
  auto b = ramp(100, 1.0, 5.0);
  EXPECT_NEAR(euclidean(a, b), 5.0, 1e-9);
}

TEST(Manhattan, MeasuresMeanAbsoluteOffset) {
  auto a = ramp(100, 1.0, 0.0);
  auto b = ramp(100, 1.0, 3.0);
  EXPECT_NEAR(manhattan(a, b), 3.0, 1e-9);
}

TEST(Frechet, IsMaxDeviationForAlignedSeries) {
  auto a = ramp(50);
  auto b = ramp(50, 1.0, 2.0);
  EXPECT_NEAR(frechet(a, b), 2.0, 1e-9);
}

TEST(Correlation, ShapeOnlyIgnoresScale) {
  auto a = sine(100, 25);
  auto b = a;
  for (auto& x : b) x = 10 * x + 100;
  EXPECT_NEAR(correlation_distance(a, b), 0.0, 1e-9);
}

TEST(Correlation, AntiCorrelatedIsMaximal) {
  auto a = sine(100, 25);
  auto b = a;
  for (auto& x : b) x = -x;
  EXPECT_NEAR(correlation_distance(a, b), 2.0, 1e-9);
}

TEST(Correlation, ConstantVsVaryingIsMaximal) {
  std::vector<double> flat(50, 5.0);
  EXPECT_DOUBLE_EQ(correlation_distance(flat, sine(50, 10)), 2.0);
  EXPECT_DOUBLE_EQ(correlation_distance(flat, flat), 0.0);
}

TEST(Compute, ResamplesLongSeries) {
  DistanceOptions opts;
  opts.max_points = 64;
  auto a = sine(5000, 100);
  auto b = sine(5000, 100, 0.05);
  const double d = compute(Metric::kDtw, a, b, opts);
  EXPECT_TRUE(std::isfinite(d));
}

TEST(Compute, MetricNamesAreStable) {
  EXPECT_STREQ(metric_name(Metric::kDtw), "dtw");
  EXPECT_STREQ(metric_name(Metric::kEuclidean), "euclidean");
  EXPECT_EQ(all_metrics().size(), 5u);
}

}  // namespace
}  // namespace abg::distance
