#include <gtest/gtest.h>

#include <cmath>

#include "distance/distance.hpp"
#include "obs/registry.hpp"
#include "util/rng.hpp"

namespace abg::distance {
namespace {

std::vector<double> ramp(std::size_t n, double slope = 1.0, double offset = 0.0) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = offset + slope * static_cast<double>(i);
  return v;
}

std::vector<double> sine(std::size_t n, double period, double phase = 0.0) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(2 * M_PI * (static_cast<double>(i) / period) + phase);
  }
  return v;
}

TEST(Resample, PreservesEndpoints) {
  auto r = resample(ramp(100), 10);
  ASSERT_EQ(r.size(), 10u);
  EXPECT_DOUBLE_EQ(r.front(), 0.0);
  EXPECT_DOUBLE_EQ(r.back(), 99.0);
}

TEST(Resample, UpsamplesByInterpolation) {
  std::vector<double> v{0.0, 10.0};
  auto r = resample(v, 11);
  EXPECT_NEAR(r[5], 5.0, 1e-9);
}

TEST(Resample, HandlesSingletonAndEmpty) {
  std::vector<double> one{7.0};
  auto r = resample(one, 5);
  for (double x : r) EXPECT_DOUBLE_EQ(x, 7.0);
  EXPECT_EQ(resample({}, 4).size(), 4u);
}

// Identity / symmetry / non-negativity for every metric.
class MetricProperties : public ::testing::TestWithParam<Metric> {};

TEST_P(MetricProperties, IdenticalSeriesHaveZeroDistance) {
  auto a = sine(200, 40);
  EXPECT_NEAR(compute(GetParam(), a, a), 0.0, 1e-9);
}

TEST_P(MetricProperties, IsSymmetric) {
  auto a = sine(150, 30);
  auto b = ramp(170, 0.1);
  EXPECT_NEAR(compute(GetParam(), a, b), compute(GetParam(), b, a), 1e-9);
}

TEST_P(MetricProperties, IsNonNegative) {
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a(50), b(60);
    for (auto& x : a) x = rng.uniform(0, 100);
    for (auto& x : b) x = rng.uniform(0, 100);
    EXPECT_GE(compute(GetParam(), a, b), 0.0);
  }
}

TEST_P(MetricProperties, EmptyVsEmptyIsZero) {
  EXPECT_DOUBLE_EQ(compute(GetParam(), {}, {}), 0.0);
}

TEST_P(MetricProperties, EmptyVsNonEmptyIsInfinite) {
  auto a = ramp(10);
  EXPECT_TRUE(std::isinf(compute(GetParam(), a, {})));
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricProperties, ::testing::ValuesIn(all_metrics()),
                         [](const auto& info) { return metric_name(info.param); });

TEST(Dtw, ToleratesTemporalShiftBetterThanEuclidean) {
  // Same sawtooth, quarter-period phase shift: DTW realigns, Euclidean
  // cannot (the basis of Figure 3's metric choice).
  auto a = sine(400, 80);
  auto b = sine(400, 80, M_PI / 2);
  const double d_dtw = dtw(a, b);
  const double d_euc = euclidean(a, b);
  EXPECT_LT(d_dtw, 0.3 * d_euc);
}

TEST(Dtw, DetectsAmplitudeDifference) {
  auto a = sine(200, 50);
  auto b = a;
  for (auto& x : b) x *= 3.0;
  EXPECT_GT(dtw(a, b), 0.5);
}

TEST(Dtw, BandedApproximatesFull) {
  auto a = sine(300, 60);
  auto b = sine(300, 60, 0.2);
  const double full = dtw(a, b);
  const double banded = dtw(a, b, 0.2);
  EXPECT_NEAR(banded, full, std::max(0.05, full * 0.5));
  EXPECT_GE(banded, full - 1e-12);  // band can only restrict the warp
}

TEST(Dtw, HandlesDifferentLengths) {
  auto a = ramp(100);
  auto b = resample(a, 63);
  EXPECT_LT(dtw(a, b), 1.0);
}

TEST(Euclidean, MeasuresVerticalOffset) {
  auto a = ramp(100, 1.0, 0.0);
  auto b = ramp(100, 1.0, 5.0);
  EXPECT_NEAR(euclidean(a, b), 5.0, 1e-9);
}

TEST(Manhattan, MeasuresMeanAbsoluteOffset) {
  auto a = ramp(100, 1.0, 0.0);
  auto b = ramp(100, 1.0, 3.0);
  EXPECT_NEAR(manhattan(a, b), 3.0, 1e-9);
}

TEST(Frechet, IsMaxDeviationForAlignedSeries) {
  auto a = ramp(50);
  auto b = ramp(50, 1.0, 2.0);
  EXPECT_NEAR(frechet(a, b), 2.0, 1e-9);
}

TEST(Correlation, ShapeOnlyIgnoresScale) {
  auto a = sine(100, 25);
  auto b = a;
  for (auto& x : b) x = 10 * x + 100;
  EXPECT_NEAR(correlation_distance(a, b), 0.0, 1e-9);
}

TEST(Correlation, AntiCorrelatedIsMaximal) {
  auto a = sine(100, 25);
  auto b = a;
  for (auto& x : b) x = -x;
  EXPECT_NEAR(correlation_distance(a, b), 2.0, 1e-9);
}

TEST(Correlation, ConstantVsVaryingIsMaximal) {
  std::vector<double> flat(50, 5.0);
  EXPECT_DOUBLE_EQ(correlation_distance(flat, sine(50, 10)), 2.0);
  EXPECT_DOUBLE_EQ(correlation_distance(flat, flat), 0.0);
}

TEST(Compute, ResamplesLongSeries) {
  DistanceOptions opts;
  opts.max_points = 64;
  auto a = sine(5000, 100);
  auto b = sine(5000, 100, 0.05);
  const double d = compute(Metric::kDtw, a, b, opts);
  EXPECT_TRUE(std::isfinite(d));
}

TEST(Compute, MetricNamesAreStable) {
  EXPECT_STREQ(metric_name(Metric::kDtw), "dtw");
  EXPECT_STREQ(metric_name(Metric::kEuclidean), "euclidean");
  EXPECT_EQ(all_metrics().size(), 5u);
}

TEST(DtwAbandon, UnboundedMatchesDefault) {
  auto a = sine(300, 60);
  auto b = sine(300, 60, 0.4);
  EXPECT_DOUBLE_EQ(dtw(a, b), dtw(a, b, 0.0, kNoAbandon));
  EXPECT_DOUBLE_EQ(dtw(a, b, 0.2), dtw(a, b, 0.2, kNoAbandon));
}

TEST(DtwAbandon, BoundAboveTrueDistanceIsExact) {
  // A bound the true distance never reaches must not perturb the value —
  // the row-abandon check is a lower bound, never an approximation.
  auto a = sine(300, 60);
  auto b = sine(300, 60, 0.4);
  const double exact = dtw(a, b);
  EXPECT_DOUBLE_EQ(dtw(a, b, 0.0, exact * 1.0000001), exact);
  EXPECT_DOUBLE_EQ(dtw(a, b, 0.0, exact + 1.0), exact);
}

TEST(DtwAbandon, NeverReturnsAWrongFiniteValue) {
  // The contract: the result is the exact distance or +inf, nothing in
  // between — a bounded run can refuse to finish, but cannot lie.
  auto a = sine(300, 60);
  auto b = sine(300, 60, 0.4);
  const double exact = dtw(a, b);
  ASSERT_GT(exact, 0.0);
  for (double frac : {0.25, 0.5, 0.9, 1.0, 1.1}) {
    const double d = dtw(a, b, 0.0, exact * frac);
    EXPECT_TRUE(std::isinf(d) || d == exact) << "frac=" << frac << " d=" << d;
    if (std::isinf(d)) {
      EXPECT_LE(exact * frac, exact + 1e-12);  // only losers abandon
    }
  }
  EXPECT_TRUE(std::isinf(dtw(a, b, 0.0, 0.0)));  // non-positive bound: instant prune
}

TEST(DtwAbandon, RowMinimumAbandonsHopelessPair) {
  // Constant vertical gap of ~100: every DP row adds >= ~98 of path cost, so
  // a cutoff of 1.0 must trigger the per-row abandon within a few rows (the
  // endpoint LB is below the raw cutoff here, so the row check is what runs).
  auto a = sine(300, 60);
  auto b = a;
  for (auto& x : b) x += 100.0;
  EXPECT_TRUE(std::isinf(dtw(a, b, 0.0, 1.0)));
  const double exact = dtw(a, b);
  EXPECT_DOUBLE_EQ(dtw(a, b, 0.0, exact * 1.01), exact);
}

TEST(DtwAbandon, EndpointLowerBoundPrunesWithoutDp) {
  // Endpoint gap of 100 on 2+2 points: normalized lower bound is
  // 2*(|a0-b0|+|a1-b1|)/4 = 50; any cutoff below that prunes pre-DP.
  std::vector<double> a{0.0, 0.0}, b{100.0, 100.0};
  const double exact = dtw(a, b);
  EXPECT_TRUE(std::isinf(dtw(a, b, 0.0, 10.0)));
  EXPECT_DOUBLE_EQ(dtw(a, b, 0.0, exact + 1.0), exact);
}

TEST(DtwAbandon, SelectionUnderBoundMatchesExactSelection) {
  // Running-best loop, the synthesis usage pattern: threading the current
  // best as the bound must select the same winner with the same distance.
  auto ref = sine(256, 64);
  std::vector<std::vector<double>> candidates;
  for (int i = 0; i < 12; ++i) {
    candidates.push_back(sine(256, 64, 0.05 * static_cast<double>(12 - i)));
  }
  double best_exact = std::numeric_limits<double>::infinity();
  std::size_t best_exact_i = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double d = dtw(ref, candidates[i]);
    if (d < best_exact) {
      best_exact = d;
      best_exact_i = i;
    }
  }
  double best_fast = std::numeric_limits<double>::infinity();
  std::size_t best_fast_i = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double d = dtw(ref, candidates[i], 0.0, best_fast);
    if (d < best_fast) {
      best_fast = d;
      best_fast_i = i;
    }
  }
  EXPECT_EQ(best_fast_i, best_exact_i);
  EXPECT_DOUBLE_EQ(best_fast, best_exact);
}

TEST(ComputeAbandon, ThreadsBoundThroughToDtw) {
  auto a = sine(300, 60);
  auto b = sine(300, 60, 0.4);
  DistanceOptions opts;
  const double exact = compute(Metric::kDtw, a, b, opts);
  EXPECT_DOUBLE_EQ(compute(Metric::kDtw, a, b, opts, exact + 1.0), exact);
  EXPECT_TRUE(std::isinf(compute(Metric::kDtw, a, b, opts, exact * 0.5)));
  // Non-DTW metrics evaluate exactly regardless of the bound.
  const double euc = compute(Metric::kEuclidean, a, b, opts);
  EXPECT_DOUBLE_EQ(compute(Metric::kEuclidean, a, b, opts, euc * 0.01), euc);
}

TEST(LbKeogh, IsAdmissibleOnRandomSeries) {
  // The envelope bound must never exceed the true DTW distance — not just in
  // exact arithmetic but bitwise under IEEE-754 rounding (each row term is a
  // monotone subtraction below the row's true step cost, and both sides
  // accumulate row by row), because the prune cascade compares the two
  // directly. A violation here would make the cascade prune a winner.
  util::Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 120));
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 120));
    std::vector<double> a(n), b(m);
    double wa = rng.uniform(-10, 10), wb = rng.uniform(-10, 10);
    for (auto& x : a) x = (wa += rng.uniform(-1, 1));
    for (auto& x : b) x = (wb += rng.uniform(-1, 1));
    for (double frac : {0.0, 0.05, 0.2, 0.5}) {
      const double lb = lb_keogh(a, b, frac);
      const double d = dtw(a, b, frac);
      EXPECT_LE(lb, d) << "n=" << n << " m=" << m << " frac=" << frac;
    }
  }
}

TEST(LbKeogh, TightOnSeparatedConstantSeries) {
  // A constant vertical gap has every in-band step cost exactly the gap, so
  // the envelope bound equals the true distance: admissible AND attained.
  const std::vector<double> a(40, 0.0), b(40, 5.0);
  EXPECT_DOUBLE_EQ(lb_keogh(a, b), dtw(a, b));
}

TEST(LbKeogh, CascadePrunesHopelessPairBeforeTheDp) {
  // A pair LB_Kim lets through (equal endpoints) but whose banded interior
  // is far apart: the envelope cascade must prune it without running the DP,
  // counted under its own stage counter. (The band matters: an unconstrained
  // window spans b's zero endpoints and the envelope bound collapses to 0.)
  std::vector<double> a(100, 0.0), b(100, 0.0);
  for (std::size_t i = 1; i + 1 < b.size(); ++i) b[i] = 50.0;
  const double lb = lb_keogh(a, b, 0.05);
  ASSERT_GT(lb, 1.0);
  const std::uint64_t before = obs::counter("distance.lb_keogh_prunes").value();
  EXPECT_TRUE(std::isinf(dtw(a, b, 0.05, 1.0)));
  EXPECT_EQ(obs::counter("distance.lb_keogh_prunes").value(), before + 1);
}

}  // namespace
}  // namespace abg::distance
