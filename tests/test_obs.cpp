// Observability layer tests: registry primitives under concurrency, timer
// behaviour, exporter JSON validity (checked with a strict mini-parser), and
// the pipeline-level guarantees — a synthesis run populates the core
// counters, and the registry totals agree exactly with the hand-counted
// fields in SynthesisResult / Mister880Result (the double-accounting guard).
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <limits>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "json_checker.hpp"
#include "net/simulator.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/timer.hpp"
#include "obs/trace_events.hpp"
#include "synth/mister880.hpp"
#include "synth/refinement.hpp"
#include "trace/trace.hpp"

namespace abg {
namespace {

// ---- registry primitives --------------------------------------------------

TEST(ObsCounter, ConcurrentIncrementsSumExactly) {
  auto& c = obs::counter("test.concurrent");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsCounter, HandleIsStableAcrossLookups) {
  auto& a = obs::counter("test.stable");
  auto& b = obs::counter("test.stable");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(ObsGauge, TracksLastAndMax) {
  auto& g = obs::gauge("test.gauge");
  g.reset();
  g.set(5.0);
  g.set(11.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.last(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 11.0);
}

// Satellite regression test (ISSUE 5): the high-watermark must be maintained
// with a CAS loop. With a racy load-compare-store, two concurrent set()
// calls can interleave so the larger value is overwritten and the true max
// is lost; under contention from many threads each writing a distinct peak,
// the recorded max must still be the global maximum.
TEST(ObsGauge, ConcurrentSetNeverLosesMax) {
  auto& g = obs::gauge("test.gauge_mt_max");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  for (int round = 0; round < 3; ++round) {
    g.reset();
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&g, t] {
        for (int i = 0; i < kPerThread; ++i) {
          // Every thread writes an increasing sequence with a distinct
          // offset; the global max over all writes is known exactly.
          g.set(static_cast<double>(i * kThreads + t));
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_DOUBLE_EQ(g.max(), static_cast<double>((kPerThread - 1) * kThreads + kThreads - 1));
  }
}

// ---- labeled series -------------------------------------------------------

TEST(ObsLabels, SeriesKeyRendersSortedAndEscaped) {
  EXPECT_EQ(obs::series_key("m", {}), "m");
  EXPECT_EQ(obs::series_key("m", {{"job", "reno"}}), "m{job=\"reno\"}");
  // Keys sort, values escape.
  EXPECT_EQ(obs::series_key("m", {{"z", "1"}, {"a", "x\"y"}}), "m{a=\"x\\\"y\",z=\"1\"}");
}

TEST(ObsLabels, LabeledSeriesAreIndependentOfUnlabeled) {
  auto& plain = obs::counter("test.labeled_counter");
  auto& reno = obs::counter("test.labeled_counter", {{"job", "reno"}});
  auto& cubic = obs::counter("test.labeled_counter", {{"job", "cubic"}});
  plain.reset();
  reno.reset();
  cubic.reset();
  EXPECT_NE(&plain, &reno);
  EXPECT_NE(&reno, &cubic);
  plain.add(1);
  reno.add(2);
  cubic.add(3);
  const auto s = obs::snapshot();
  EXPECT_EQ(s.counter_value("test.labeled_counter"), 1u);
  EXPECT_EQ(s.counter_value("test.labeled_counter", {{"job", "reno"}}), 2u);
  EXPECT_EQ(s.counter_value("test.labeled_counter", {{"job", "cubic"}}), 3u);
}

TEST(ObsLabels, LabelOrderDoesNotSplitSeries) {
  auto& a = obs::counter("test.label_order", {{"job", "x"}, {"bucket", "b0"}});
  auto& b = obs::counter("test.label_order", {{"bucket", "b0"}, {"job", "x"}});
  EXPECT_EQ(&a, &b);
}

TEST(ObsLabels, DuplicateLabelKeysKeepFirstValue) {
  // A repeated key must collapse during normalization (first value after the
  // sort wins): the Prometheus exposition format forbids a repeated label
  // name inside one label block.
  auto& dup = obs::counter("test.label_dupkey", {{"job", "a"}, {"job", "b"}});
  auto& canon = obs::counter("test.label_dupkey", {{"job", "a"}});
  EXPECT_EQ(&dup, &canon);
  EXPECT_EQ(obs::series_key("m", {{"job", "b"}, {"job", "a"}}), "m{job=\"a\"}");
}

TEST(ObsLabels, FamilyCardinalityCapCollapsesIntoOverflowSeries) {
  obs::counter("obs.series_overflow").reset();
  // Register far more label sets than one family may hold. The first
  // kMaxSeriesPerFamily are distinct; the rest all resolve to the single
  // {overflow="true"} series.
  auto& first = obs::counter("test.cap_family", {{"job", "job-0"}});
  first.reset();
  obs::Counter* overflow_series = nullptr;
  for (std::size_t i = 1; i < obs::kMaxSeriesPerFamily + 50; ++i) {
    auto& c = obs::counter("test.cap_family", {{"job", "job-" + std::to_string(i)}});
    c.add();
    overflow_series = &c;  // the final lookups are all the overflow series
  }
  auto& direct_overflow = obs::counter("test.cap_family", {{"overflow", "true"}});
  EXPECT_EQ(overflow_series, &direct_overflow);
  EXPECT_GE(obs::counter("obs.series_overflow").value(), 50u);
  // The overflow series absorbed every post-cap increment.
  EXPECT_GE(direct_overflow.value(), 50u);
}

TEST(ObsLabels, ExcessLabelsPerSeriesAreDropped) {
  obs::Labels many;
  for (int i = 0; i < 8; ++i) {
    many.emplace_back("k" + std::to_string(i), "v");
  }
  auto& c = obs::counter("test.label_trunc", many);
  obs::Labels first_four(many.begin(), many.begin() + obs::kMaxLabelsPerSeries);
  EXPECT_EQ(&c, &obs::counter("test.label_trunc", first_four));
}

TEST(ObsHistogram, BucketBoundariesAreInclusiveUpperEdges) {
  const std::array<double, 3> bounds{1.0, 10.0, 100.0};
  obs::Histogram h(bounds);
  h.observe(0.5);    // bucket 0
  h.observe(1.0);    // bucket 0 (edge is inclusive)
  h.observe(1.5);    // bucket 1
  h.observe(10.0);   // bucket 1
  h.observe(100.0);  // bucket 2
  h.observe(101.0);  // overflow bucket
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 10.0 + 100.0 + 101.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 101.0);
}

TEST(ObsHistogram, ConcurrentObservationsSumExactly) {
  const std::array<double, 2> bounds{10.0, 100.0};
  obs::Histogram h(bounds);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * kPerThread);
  EXPECT_EQ(h.counts()[0], static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsTimer, ObservationsAreMonotoneNonNegative) {
  obs::Histogram h(obs::default_time_bounds_us());
  {
    obs::Timer t(h);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_GE(t.elapsed_us(), 0.0);
  }
  ASSERT_EQ(h.count(), 1u);
  // steady_clock: a 2 ms sleep must observe >= 2000 us.
  EXPECT_GE(h.sum(), 2000.0);
  EXPECT_GE(h.max(), h.min());
  const double first_sum = h.sum();
  {
    obs::Timer t(h);
    t.stop();
    t.stop();  // idempotent: records once
  }
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.sum(), first_sum);
}

TEST(ObsRegistry, ResetAllZeroesEverything) {
  obs::counter("test.reset_me").add(7);
  obs::gauge("test.reset_gauge").set(3.0);
  obs::histogram("test.reset_hist").observe(5.0);
  obs::reset_all();
  const auto s = obs::snapshot();
  EXPECT_EQ(s.counter_value("test.reset_me"), 0u);
  for (const auto& g : s.gauges) {
    if (g.name == "test.reset_gauge") {
      EXPECT_DOUBLE_EQ(g.last, 0.0);
      EXPECT_DOUBLE_EQ(g.max, 0.0);
    }
  }
  for (const auto& h : s.histograms) {
    if (h.name == "test.reset_hist") {
      EXPECT_EQ(h.count, 0u);
    }
  }
}

// ---- exporters ------------------------------------------------------------

TEST(ObsJson, EscapesAndNumbers) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(obs::json_number(0.5), "0.5");
  EXPECT_EQ(obs::json_number(1e300), "1e+300");
  // JSON has no Inf/NaN.
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(ObsReport, MetricsJsonRoundTripsThroughParser) {
  obs::reset_all();
  obs::counter("test.report_counter").add(42);
  obs::gauge("test.report \"gauge\"").set(1.5);  // name needing escaping
  obs::histogram("test.report_hist").observe(123.0);
  const std::string json = obs::metrics_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"test.report_counter\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(ObsTraceEvents, DisabledRecorderStaysEmpty) {
  obs::clear_trace_events();
  obs::set_tracing_enabled(false);
  { obs::TraceSpan span("ignored", "test"); }
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(ObsTraceEvents, SpansRoundTripThroughParser) {
  obs::clear_trace_events();
  obs::set_tracing_enabled(true);
  {
    obs::TraceSpan outer("outer \"span\"", "test");
    obs::TraceSpan inner("inner", "test", "{\"iter\":1}");
    obs::trace_instant_event("marker", "test");
  }
  obs::set_tracing_enabled(false);
  EXPECT_EQ(obs::trace_event_count(), 3u);
  const std::string json = obs::trace_events_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // User args survive the span-id merge (every span's args now lead with its
  // own id and its parent's; see test_spans.cpp for the id semantics).
  EXPECT_NE(json.find("\"iter\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"span\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"parent\":"), std::string::npos) << json;
  obs::clear_trace_events();
}

// ---- pipeline integration -------------------------------------------------

std::vector<trace::Segment> reno_segments() {
  trace::Environment env;
  env.bandwidth_bps = 10e6;
  env.rtt_s = 0.04;
  env.duration_s = 8.0;
  env.seed = 33;
  auto t = net::run_connection("reno", env);
  return trace::segment_all({trace::trim_warmup(t, 2.0)}, 20);
}

TEST(ObsPipeline, SimulatorPopulatesPacketCounters) {
  obs::reset_all();
  auto segs = reno_segments();
  ASSERT_FALSE(segs.empty());
  const auto s = obs::snapshot();
  EXPECT_GT(s.counter_value("sim.packets_sent"), 0u);
  EXPECT_GT(s.counter_value("sim.packets_acked"), 0u);
  EXPECT_GT(s.counter_value("sim.events"), 0u);
  EXPECT_EQ(s.counter_value("sim.connections"), 1u);
  // A sender cannot have more packets acknowledged than sent.
  EXPECT_LE(s.counter_value("sim.packets_acked"), s.counter_value("sim.packets_sent"));
}

TEST(ObsPipeline, SynthesizePopulatesCoreMetricsAndAgreesWithResult) {
  auto segs = reno_segments();
  ASSERT_GE(segs.size(), 2u);
  obs::reset_all();

  synth::SynthesisOptions opts;
  opts.initial_samples = 6;
  opts.initial_keep = 3;
  opts.initial_segments = 2;
  opts.concretize_budget = 12;
  opts.max_iterations = 2;
  opts.exhaustive_cap = 40;
  opts.max_depth = 3;
  opts.max_nodes = 5;
  opts.max_holes = 2;
  opts.threads = 2;
  opts.seed = 5;
  const auto result = synth::synthesize(dsl::reno_dsl(), segs, opts);

  const auto s = obs::snapshot();
  EXPECT_GT(s.counter_value("synth.handlers_scored"), 0u);
  EXPECT_GT(s.counter_value("synth.sketches_enumerated"), 0u);
  EXPECT_GT(s.counter_value("synth.iterations"), 0u);
  EXPECT_GT(s.counter_value("distance.dtw_evals"), 0u);
  EXPECT_GT(s.counter_value("distance.dtw_cells"), 0u);
  EXPECT_GT(s.counter_value("pool.tasks_queued"), 0u);
  EXPECT_EQ(s.counter_value("pool.tasks_queued"), s.counter_value("pool.tasks_executed"));

  // The registry and the hand-counted result fields must agree exactly —
  // this is the double-accounting guard.
  EXPECT_EQ(s.counter_value("synth.handlers_scored"), result.total_handlers_scored);
  EXPECT_EQ(s.counter_value("synth.sketches_enumerated"), result.total_sketches);
  EXPECT_EQ(s.counter_value("synth.iterations"), result.iterations.size());
  EXPECT_EQ(s.counter_value("synth.candidates_validated"), result.candidates_validated);
}

TEST(ObsPipeline, Mister880CountersAgreeWithResult) {
  auto segs = reno_segments();
  ASSERT_FALSE(segs.empty());
  obs::reset_all();

  synth::Mister880Options opts;
  opts.max_sketches = 30;
  opts.concretize_budget = 8;
  opts.max_depth = 3;
  opts.max_nodes = 4;
  opts.max_holes = 1;
  const auto result = synth::mister880_synthesize(dsl::reno_dsl(), {segs[0]}, opts);

  const auto s = obs::snapshot();
  EXPECT_GT(result.sketches_tried, 0u);
  EXPECT_EQ(s.counter_value("mister880.sketches_tried"), result.sketches_tried);
  EXPECT_EQ(s.counter_value("mister880.handlers_tried"), result.handlers_tried);
}

TEST(ObsPipeline, SynthesizeEmitsIterationSpansWhenTracingEnabled) {
  auto segs = reno_segments();
  ASSERT_GE(segs.size(), 2u);
  obs::clear_trace_events();
  obs::set_tracing_enabled(true);

  synth::SynthesisOptions opts;
  opts.initial_samples = 4;
  opts.initial_keep = 2;
  opts.initial_segments = 2;
  opts.concretize_budget = 8;
  opts.max_iterations = 2;
  opts.exhaustive_cap = 20;
  opts.max_depth = 3;
  opts.max_nodes = 4;
  opts.max_holes = 1;
  opts.threads = 2;
  const auto result = synth::synthesize(dsl::reno_dsl(), segs, opts);
  obs::set_tracing_enabled(false);

  const std::string json = obs::trace_events_json();
  EXPECT_TRUE(JsonChecker(json).valid());
  // At least one span per refinement iteration, plus bucket-scoring and
  // pool-task spans underneath.
  std::size_t iter_spans = 0;
  for (std::size_t pos = 0; (pos = json.find("\"synth.iteration\"", pos)) != std::string::npos;
       ++pos) {
    ++iter_spans;
  }
  EXPECT_GE(iter_spans, result.iterations.size());
  EXPECT_NE(json.find("\"pool.task\""), std::string::npos);
  EXPECT_NE(json.find("score "), std::string::npos);
  obs::clear_trace_events();
}

}  // namespace
}  // namespace abg
