// Observability layer tests: registry primitives under concurrency, timer
// behaviour, exporter JSON validity (checked with a strict mini-parser), and
// the pipeline-level guarantees — a synthesis run populates the core
// counters, and the registry totals agree exactly with the hand-counted
// fields in SynthesisResult / Mister880Result (the double-accounting guard).
#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <chrono>
#include <limits>
#include <string_view>
#include <thread>
#include <vector>

#include "net/simulator.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/timer.hpp"
#include "obs/trace_events.hpp"
#include "synth/mister880.hpp"
#include "synth/refinement.hpp"
#include "trace/trace.hpp"

namespace abg {
namespace {

// ---- strict JSON parser (validation only) ---------------------------------
// Small recursive-descent parser covering the full JSON grammar; used to
// prove the exporters emit well-formed documents without pulling in a JSON
// dependency.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool eof() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }
  bool eat(char c) {
    if (eof() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (!eat('"')) return false;
    while (!eof() && peek() != '"') {
      if (peek() == '\\') {
        ++pos_;
        if (eof()) return false;
        const char e = peek();
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (eof() || std::isxdigit(static_cast<unsigned char>(peek())) == 0) return false;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
                   e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(peek()) < 0x20) {
        return false;  // raw control character
      }
      ++pos_;
    }
    return eat('"');
  }

  bool number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }

  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      return eat('}');
    }
  }

  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      return eat(']');
    }
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

// ---- registry primitives --------------------------------------------------

TEST(ObsCounter, ConcurrentIncrementsSumExactly) {
  auto& c = obs::counter("test.concurrent");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsCounter, HandleIsStableAcrossLookups) {
  auto& a = obs::counter("test.stable");
  auto& b = obs::counter("test.stable");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(ObsGauge, TracksLastAndMax) {
  auto& g = obs::gauge("test.gauge");
  g.reset();
  g.set(5.0);
  g.set(11.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.last(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 11.0);
}

TEST(ObsHistogram, BucketBoundariesAreInclusiveUpperEdges) {
  const std::array<double, 3> bounds{1.0, 10.0, 100.0};
  obs::Histogram h(bounds);
  h.observe(0.5);    // bucket 0
  h.observe(1.0);    // bucket 0 (edge is inclusive)
  h.observe(1.5);    // bucket 1
  h.observe(10.0);   // bucket 1
  h.observe(100.0);  // bucket 2
  h.observe(101.0);  // overflow bucket
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 10.0 + 100.0 + 101.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 101.0);
}

TEST(ObsHistogram, ConcurrentObservationsSumExactly) {
  const std::array<double, 2> bounds{10.0, 100.0};
  obs::Histogram h(bounds);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * kPerThread);
  EXPECT_EQ(h.counts()[0], static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsTimer, ObservationsAreMonotoneNonNegative) {
  obs::Histogram h(obs::default_time_bounds_us());
  {
    obs::Timer t(h);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_GE(t.elapsed_us(), 0.0);
  }
  ASSERT_EQ(h.count(), 1u);
  // steady_clock: a 2 ms sleep must observe >= 2000 us.
  EXPECT_GE(h.sum(), 2000.0);
  EXPECT_GE(h.max(), h.min());
  const double first_sum = h.sum();
  {
    obs::Timer t(h);
    t.stop();
    t.stop();  // idempotent: records once
  }
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.sum(), first_sum);
}

TEST(ObsRegistry, ResetAllZeroesEverything) {
  obs::counter("test.reset_me").add(7);
  obs::gauge("test.reset_gauge").set(3.0);
  obs::histogram("test.reset_hist").observe(5.0);
  obs::reset_all();
  const auto s = obs::snapshot();
  EXPECT_EQ(s.counter_value("test.reset_me"), 0u);
  for (const auto& [name, lv] : s.gauges) {
    if (name == "test.reset_gauge") {
      EXPECT_DOUBLE_EQ(lv.first, 0.0);
      EXPECT_DOUBLE_EQ(lv.second, 0.0);
    }
  }
  for (const auto& h : s.histograms) {
    if (h.name == "test.reset_hist") {
      EXPECT_EQ(h.count, 0u);
    }
  }
}

// ---- exporters ------------------------------------------------------------

TEST(ObsJson, EscapesAndNumbers) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(obs::json_number(0.5), "0.5");
  EXPECT_EQ(obs::json_number(1e300), "1e+300");
  // JSON has no Inf/NaN.
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(ObsReport, MetricsJsonRoundTripsThroughParser) {
  obs::reset_all();
  obs::counter("test.report_counter").add(42);
  obs::gauge("test.report \"gauge\"").set(1.5);  // name needing escaping
  obs::histogram("test.report_hist").observe(123.0);
  const std::string json = obs::metrics_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"test.report_counter\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(ObsTraceEvents, DisabledRecorderStaysEmpty) {
  obs::clear_trace_events();
  obs::set_tracing_enabled(false);
  { obs::TraceSpan span("ignored", "test"); }
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(ObsTraceEvents, SpansRoundTripThroughParser) {
  obs::clear_trace_events();
  obs::set_tracing_enabled(true);
  {
    obs::TraceSpan outer("outer \"span\"", "test");
    obs::TraceSpan inner("inner", "test", "{\"iter\":1}");
    obs::trace_instant_event("marker", "test");
  }
  obs::set_tracing_enabled(false);
  EXPECT_EQ(obs::trace_event_count(), 3u);
  const std::string json = obs::trace_events_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"iter\":1}"), std::string::npos);
  obs::clear_trace_events();
}

// ---- pipeline integration -------------------------------------------------

std::vector<trace::Segment> reno_segments() {
  trace::Environment env;
  env.bandwidth_bps = 10e6;
  env.rtt_s = 0.04;
  env.duration_s = 8.0;
  env.seed = 33;
  auto t = net::run_connection("reno", env);
  return trace::segment_all({trace::trim_warmup(t, 2.0)}, 20);
}

TEST(ObsPipeline, SimulatorPopulatesPacketCounters) {
  obs::reset_all();
  auto segs = reno_segments();
  ASSERT_FALSE(segs.empty());
  const auto s = obs::snapshot();
  EXPECT_GT(s.counter_value("sim.packets_sent"), 0u);
  EXPECT_GT(s.counter_value("sim.packets_acked"), 0u);
  EXPECT_GT(s.counter_value("sim.events"), 0u);
  EXPECT_EQ(s.counter_value("sim.connections"), 1u);
  // A sender cannot have more packets acknowledged than sent.
  EXPECT_LE(s.counter_value("sim.packets_acked"), s.counter_value("sim.packets_sent"));
}

TEST(ObsPipeline, SynthesizePopulatesCoreMetricsAndAgreesWithResult) {
  auto segs = reno_segments();
  ASSERT_GE(segs.size(), 2u);
  obs::reset_all();

  synth::SynthesisOptions opts;
  opts.initial_samples = 6;
  opts.initial_keep = 3;
  opts.initial_segments = 2;
  opts.concretize_budget = 12;
  opts.max_iterations = 2;
  opts.exhaustive_cap = 40;
  opts.max_depth = 3;
  opts.max_nodes = 5;
  opts.max_holes = 2;
  opts.threads = 2;
  opts.seed = 5;
  const auto result = synth::synthesize(dsl::reno_dsl(), segs, opts);

  const auto s = obs::snapshot();
  EXPECT_GT(s.counter_value("synth.handlers_scored"), 0u);
  EXPECT_GT(s.counter_value("synth.sketches_enumerated"), 0u);
  EXPECT_GT(s.counter_value("synth.iterations"), 0u);
  EXPECT_GT(s.counter_value("distance.dtw_evals"), 0u);
  EXPECT_GT(s.counter_value("distance.dtw_cells"), 0u);
  EXPECT_GT(s.counter_value("pool.tasks_queued"), 0u);
  EXPECT_EQ(s.counter_value("pool.tasks_queued"), s.counter_value("pool.tasks_executed"));

  // The registry and the hand-counted result fields must agree exactly —
  // this is the double-accounting guard.
  EXPECT_EQ(s.counter_value("synth.handlers_scored"), result.total_handlers_scored);
  EXPECT_EQ(s.counter_value("synth.sketches_enumerated"), result.total_sketches);
  EXPECT_EQ(s.counter_value("synth.iterations"), result.iterations.size());
  EXPECT_EQ(s.counter_value("synth.candidates_validated"), result.candidates_validated);
}

TEST(ObsPipeline, Mister880CountersAgreeWithResult) {
  auto segs = reno_segments();
  ASSERT_FALSE(segs.empty());
  obs::reset_all();

  synth::Mister880Options opts;
  opts.max_sketches = 30;
  opts.concretize_budget = 8;
  opts.max_depth = 3;
  opts.max_nodes = 4;
  opts.max_holes = 1;
  const auto result = synth::mister880_synthesize(dsl::reno_dsl(), {segs[0]}, opts);

  const auto s = obs::snapshot();
  EXPECT_GT(result.sketches_tried, 0u);
  EXPECT_EQ(s.counter_value("mister880.sketches_tried"), result.sketches_tried);
  EXPECT_EQ(s.counter_value("mister880.handlers_tried"), result.handlers_tried);
}

TEST(ObsPipeline, SynthesizeEmitsIterationSpansWhenTracingEnabled) {
  auto segs = reno_segments();
  ASSERT_GE(segs.size(), 2u);
  obs::clear_trace_events();
  obs::set_tracing_enabled(true);

  synth::SynthesisOptions opts;
  opts.initial_samples = 4;
  opts.initial_keep = 2;
  opts.initial_segments = 2;
  opts.concretize_budget = 8;
  opts.max_iterations = 2;
  opts.exhaustive_cap = 20;
  opts.max_depth = 3;
  opts.max_nodes = 4;
  opts.max_holes = 1;
  opts.threads = 2;
  const auto result = synth::synthesize(dsl::reno_dsl(), segs, opts);
  obs::set_tracing_enabled(false);

  const std::string json = obs::trace_events_json();
  EXPECT_TRUE(JsonChecker(json).valid());
  // At least one span per refinement iteration, plus bucket-scoring and
  // pool-task spans underneath.
  std::size_t iter_spans = 0;
  for (std::size_t pos = 0; (pos = json.find("\"synth.iteration\"", pos)) != std::string::npos;
       ++pos) {
    ++iter_spans;
  }
  EXPECT_GE(iter_spans, result.iterations.size());
  EXPECT_NE(json.find("\"pool.task\""), std::string::npos);
  EXPECT_NE(json.find("score "), std::string::npos);
  obs::clear_trace_events();
}

}  // namespace
}  // namespace abg
