// Distributed refinement search (ISSUE 9): coordinator/worker sharding must
// be *bit-identical* to a single-process run — same winner, same distance,
// same per-iteration bucket scores — including after a worker dies mid-search
// and its shard is reassigned. Also covers the worker protocol's malformed-
// message behavior (clean kParseError envelopes, never a wedged worker), the
// canonical JobSpec codec round-trip, endpoint parsing, and the versioned
// /v1 HTTP surface with Deprecation headers on legacy spellings.
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.hpp"
#include "api/manifest.hpp"
#include "dist/coordinator.hpp"
#include "dist/http_client.hpp"
#include "dist/worker.hpp"
#include "dsl/dsl.hpp"
#include "net/simulator.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/status_server.hpp"
#include "synth/buckets.hpp"
#include "trace/trace_io.hpp"
#include "util/status.hpp"

namespace abg {
namespace {

// --- Shared fixture: a seeded reno trace on disk + a quick job spec. --------

const std::string& reno_csv() {
  static const std::string path = [] {
    trace::Environment env;
    env.bandwidth_bps = 10e6;
    env.rtt_s = 0.04;
    env.duration_s = 10.0;
    env.seed = 21;
    auto t = net::run_connection("reno", env);
    const std::string p = testing::TempDir() + "abg_dist_reno.csv";
    EXPECT_TRUE(trace::save_csv(t, p).is_ok());
    return p;
  }();
  return path;
}

std::string quick_spec_json() {
  return std::string("{\"traces\":[\"") + reno_csv() +
         "\"],\"dsl\":\"reno\",\"seed\":5,\"max_iterations\":3,"
         "\"initial_samples\":6,\"concretize_budget\":12,\"max_depth\":3,"
         "\"max_nodes\":5,\"max_holes\":2,\"timeout_s\":120}";
}

api::JobSpec quick_spec() {
  auto spec = api::spec_from_json(quick_spec_json());
  EXPECT_TRUE(spec.ok()) << spec.status().to_string();
  return *spec;
}

// Run the same spec through the single-process engine (the golden).
api::JobResult run_single(api::JobSpec spec) {
  api::Engine engine({.threads = 2, .max_concurrent_jobs = 1});
  auto handle = engine.submit(std::move(spec));
  EXPECT_TRUE(handle.ok()) << handle.status().to_string();
  return handle->wait();
}

// N in-process workers, each a Worker mounted on its own loopback server.
// kill(i) stops worker i's server: from the coordinator's point of view this
// is indistinguishable from kill -9 (every RPC to it fails from then on).
class Fleet {
 public:
  explicit Fleet(int n) {
    for (int i = 0; i < n; ++i) {
      auto e = std::make_unique<Entry>();
      e->worker.mount(e->server);
      std::string err;
      EXPECT_TRUE(e->server.start(0, &err)) << err;
      endpoints_.push_back({"127.0.0.1", e->server.port()});
      entries_.push_back(std::move(e));
    }
  }

  const std::vector<dist::WorkerEndpoint>& endpoints() const { return endpoints_; }
  std::uint16_t port(std::size_t i) const { return endpoints_[i].port; }
  void kill(std::size_t i) { entries_[i]->server.stop(); }

 private:
  struct Entry {
    dist::Worker worker;
    obs::StatusServer server;  // declared after worker: stops before it dies
  };
  std::vector<std::unique_ptr<Entry>> entries_;
  std::vector<dist::WorkerEndpoint> endpoints_;
};

dist::CoordinatorOptions quick_copts(const Fleet& fleet) {
  dist::CoordinatorOptions copts;
  copts.workers = fleet.endpoints();
  copts.rpc_timeout_s = 30.0;
  copts.poll_interval_s = 0.005;
  return copts;
}

// Bit-identity: winner, distance (exact double equality — the wire carries
// hex floats), and the full per-iteration bucket-level report series. Cache
// tallies are the one sanctioned divergence (per-worker caches), so they are
// deliberately not compared.
void expect_bit_identical(const api::JobResult& golden, const api::JobResult& got) {
  ASSERT_TRUE(golden.status.is_ok()) << golden.status.to_string();
  ASSERT_TRUE(got.status.is_ok()) << got.status.to_string();
  const synth::SynthesisResult& a = golden.pipeline.synthesis;
  const synth::SynthesisResult& b = got.pipeline.synthesis;
  ASSERT_TRUE(a.best.valid());
  ASSERT_TRUE(b.best.valid());
  EXPECT_EQ(dsl::to_string(*a.best.handler), dsl::to_string(*b.best.handler));
  EXPECT_EQ(dsl::to_string(*a.best.sketch), dsl::to_string(*b.best.sketch));
  EXPECT_EQ(a.best.distance, b.best.distance);
  EXPECT_EQ(golden.pipeline.dsl_name, got.pipeline.dsl_name);
  EXPECT_EQ(golden.segments_total, got.segments_total);
  EXPECT_EQ(a.initial_buckets, b.initial_buckets);
  EXPECT_EQ(a.total_sketches, b.total_sketches);
  EXPECT_EQ(a.total_handlers_scored, b.total_handlers_scored);
  EXPECT_EQ(a.candidates_validated, b.candidates_validated);

  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    const synth::IterationReport& ia = a.iterations[i];
    const synth::IterationReport& ib = b.iterations[i];
    EXPECT_EQ(ia.n_target, ib.n_target) << "iteration " << i;
    EXPECT_EQ(ia.keep, ib.keep) << "iteration " << i;
    EXPECT_EQ(ia.segments_used, ib.segments_used) << "iteration " << i;
    EXPECT_EQ(ia.best_distance, ib.best_distance) << "iteration " << i;
    ASSERT_EQ(ia.buckets.size(), ib.buckets.size()) << "iteration " << i;
    for (std::size_t k = 0; k < ia.buckets.size(); ++k) {
      const synth::BucketReport& ba = ia.buckets[k];
      const synth::BucketReport& bb = ib.buckets[k];
      EXPECT_EQ(ba.label, bb.label) << "iteration " << i << " rank " << k;
      EXPECT_EQ(ba.score, bb.score) << "bucket " << ba.label;
      EXPECT_EQ(ba.sketches_enumerated, bb.sketches_enumerated) << "bucket " << ba.label;
      EXPECT_EQ(ba.handlers_scored, bb.handlers_scored) << "bucket " << ba.label;
      EXPECT_EQ(ba.exhausted, bb.exhausted) << "bucket " << ba.label;
      EXPECT_EQ(ba.retained, bb.retained) << "bucket " << ba.label;
    }
  }
}

// --- Endpoint parsing. ------------------------------------------------------

TEST(DistEndpoints, ParsesHostPortList) {
  auto eps = dist::parse_worker_endpoints("7001,127.0.0.1:7002, 10.0.0.3:80");
  ASSERT_TRUE(eps.ok()) << eps.status().to_string();
  ASSERT_EQ(eps->size(), 3u);
  EXPECT_EQ((*eps)[0].host, "127.0.0.1");
  EXPECT_EQ((*eps)[0].port, 7001);
  EXPECT_EQ((*eps)[1].host, "127.0.0.1");
  EXPECT_EQ((*eps)[1].port, 7002);
  EXPECT_EQ((*eps)[2].host, "10.0.0.3");
  EXPECT_EQ((*eps)[2].port, 80);
}

TEST(DistEndpoints, RejectsMalformedLists) {
  for (const char* bad : {"", " ", "7001,,7002", "host:", ":7001", "127.0.0.1:0",
                          "127.0.0.1:65536", "127.0.0.1:abc"}) {
    auto eps = dist::parse_worker_endpoints(bad);
    EXPECT_FALSE(eps.ok()) << "accepted '" << bad << "'";
    if (!eps.ok()) {
      EXPECT_EQ(eps.status().code(), util::StatusCode::kInvalidArgument) << bad;
    }
  }
}

// --- The golden: 3-worker distributed run == single-process run. ------------

TEST(Dist, ThreeWorkerRunBitIdenticalToSingleProcess) {
  const api::JobSpec spec = quick_spec();
  const api::JobResult golden = run_single(spec);

  Fleet fleet(3);
  dist::Coordinator coord(quick_copts(fleet));
  const api::JobResult got = coord.run(spec);
  expect_bit_identical(golden, got);
}

TEST(Dist, RejectsNonDistributableSpecs) {
  Fleet fleet(1);
  dist::Coordinator coord(quick_copts(fleet));

  api::JobSpec in_memory;  // traces by value cannot ship to a worker
  in_memory.add_trace(net::run_connection("reno", trace::Environment{}));
  EXPECT_FALSE(dist::spec_is_distributable(in_memory));
  const api::JobResult r = coord.run(in_memory);
  EXPECT_EQ(r.status.code(), util::StatusCode::kInvalidArgument);

  EXPECT_TRUE(dist::spec_is_distributable(quick_spec()));
}

// --- Worker death: shard reassignment completes with the same winner. -------

TEST(Dist, WorkerDeathMidSearchReassignsAndMatchesWinner) {
  const api::JobSpec spec = quick_spec();
  const api::JobResult golden = run_single(spec);
  ASSERT_GE(golden.pipeline.synthesis.iterations.size(), 2u);

  // Pick a bucket that survives iteration 0's cut and kill its owner right
  // after the first merged iteration, so the dead worker is guaranteed to
  // hold live work that must move.
  const auto& first = golden.pipeline.synthesis.iterations.front();
  std::string victim_label;
  for (const auto& b : first.buckets) {
    if (b.retained) {
      victim_label = b.label;
      break;
    }
  }
  ASSERT_FALSE(victim_label.empty());
  const auto buckets = synth::make_buckets(dsl::dsl_by_name("reno"));
  std::size_t victim_index = buckets.size();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].label == victim_label) {
      victim_index = i;
      break;
    }
  }
  ASSERT_LT(victim_index, buckets.size());

  Fleet fleet(3);
  const std::size_t victim_worker = victim_index % fleet.endpoints().size();
  auto& c_reassigned = obs::counter("dist.shards_reassigned");
  auto& c_lost = obs::counter("dist.workers_lost");
  const std::uint64_t reassigned_before = c_reassigned.value();
  const std::uint64_t lost_before = c_lost.value();

  api::JobSpec dspec = spec;
  std::atomic<bool> killed{false};
  dspec.with_iteration_callback([&](const synth::IterationReport&) {
    if (!killed.exchange(true)) fleet.kill(victim_worker);
  });

  dist::CoordinatorOptions copts = quick_copts(fleet);
  copts.rpc_timeout_s = 5.0;  // a dead loopback port refuses instantly anyway
  copts.max_rpc_failures = 2;
  dist::Coordinator coord(copts);
  const api::JobResult got = coord.run(dspec);

  EXPECT_GE(c_lost.value(), lost_before + 1);
  EXPECT_GE(c_reassigned.value(), reassigned_before + 1);
  expect_bit_identical(golden, got);
}

TEST(Dist, AllWorkersLostFailsCleanly) {
  const api::JobSpec spec = quick_spec();
  Fleet fleet(2);
  api::JobSpec dspec = spec;
  std::atomic<bool> killed{false};
  dspec.with_iteration_callback([&](const synth::IterationReport&) {
    if (!killed.exchange(true)) {
      fleet.kill(0);
      fleet.kill(1);
    }
  });
  dist::CoordinatorOptions copts = quick_copts(fleet);
  copts.rpc_timeout_s = 2.0;
  copts.max_rpc_failures = 1;
  dist::Coordinator coord(copts);
  const api::JobResult got = coord.run(dspec);
  EXPECT_EQ(got.status.code(), util::StatusCode::kIoError) << got.status.to_string();
}

// --- Worker protocol: malformed messages never wedge the worker. ------------

std::string post(const Fleet& fleet, const std::string& path, const std::string& body) {
  auto r = dist::http_request("127.0.0.1", fleet.port(0), "POST", path, body, 10.0);
  EXPECT_TRUE(r.ok()) << r.status().to_string();
  return r.ok() ? std::to_string(r->code) + " " + r->body : std::string();
}

TEST(Dist, MalformedProtocolMessagesAnswerParseErrorEnvelopes) {
  Fleet fleet(1);

  // Truncated JSON body.
  std::string r = post(fleet, "/shard/load", "{\"epoch\": 1, \"spec\": {");
  EXPECT_EQ(r.compare(0, 3, "400"), 0) << r;
  EXPECT_NE(r.find("\"error\""), std::string::npos) << r;
  EXPECT_NE(r.find("parse-error"), std::string::npos) << r;

  // Wrong top-level type.
  r = post(fleet, "/shard/load", "[1,2,3]");
  EXPECT_EQ(r.compare(0, 3, "400"), 0) << r;
  EXPECT_NE(r.find("parse-error"), std::string::npos) << r;

  // Structurally valid but missing fields.
  r = post(fleet, "/shard/iterate", "{\"epoch\": 1}");
  EXPECT_EQ(r.compare(0, 3, "400"), 0) << r;
  EXPECT_NE(r.find("pass_id"), std::string::npos) << r;

  // Out-of-order: iterate before any shard is loaded.
  r = post(fleet, "/shard/iterate",
           "{\"epoch\":1,\"pass_id\":1,\"target\":4,\"buckets\":[\"{}\"]}");
  EXPECT_EQ(r.compare(0, 3, "409"), 0) << r;
  EXPECT_NE(r.find("conflict"), std::string::npos) << r;

  // A state entry with a corrupt RNG word.
  r = post(fleet, "/shard/restore",
           "{\"epoch\":1,\"states\":[{\"label\":\"{}\",\"sketches\":0,"
           "\"handlers_scored\":0,\"exhausted\":false,\"rng\":[\"x\",\"0\",\"0\","
           "\"0\",\"0\",\"0x0p+0\"],\"best_distance\":\"inf\",\"best_sketch\":\"\","
           "\"best_handler\":\"\"}]}");
  // The worker decodes the states before consulting its shard state, so a
  // corrupt payload is a parse error even with no shard loaded.
  EXPECT_EQ(r.compare(0, 3, "400"), 0) << r;
  EXPECT_NE(r.find("parse-error"), std::string::npos) << r;

  // The worker is still serviceable: a real load succeeds afterwards.
  const api::JobSpec spec = quick_spec();
  const auto buckets = synth::make_buckets(dsl::dsl_by_name("reno"));
  ASSERT_FALSE(buckets.empty());
  obs::JsonWriter w;
  w.begin_object();
  w.key("epoch");
  w.value(std::uint64_t{1});
  w.key("spec");
  w.raw(api::spec_to_json(spec));
  w.key("buckets");
  w.begin_array();
  w.value(buckets.front().label);
  w.end_array();
  w.end_object();
  r = post(fleet, "/shard/load", w.take());
  EXPECT_EQ(r.compare(0, 3, "200"), 0) << r;
  EXPECT_NE(r.find("pool_fingerprint"), std::string::npos) << r;

  // And now a corrupt restore reaches the state decoder and names the field.
  r = post(fleet, "/shard/restore",
           "{\"epoch\":1,\"states\":[{\"label\":\"" + buckets.front().label +
               "\",\"sketches\":0,\"handlers_scored\":0,\"exhausted\":false,"
               "\"rng\":[\"x\",\"0\",\"0\",\"0\",\"0\",\"0x0p+0\"],"
               "\"best_distance\":\"inf\",\"best_sketch\":\"\",\"best_handler\":\"\"}]}");
  EXPECT_EQ(r.compare(0, 3, "400"), 0) << r;
  EXPECT_NE(r.find("parse-error"), std::string::npos) << r;

  // Still serviceable: status answers idle with the loaded epoch.
  auto status = dist::http_request("127.0.0.1", fleet.port(0), "GET", "/shard/status", "", 10.0);
  ASSERT_TRUE(status.ok()) << status.status().to_string();
  EXPECT_EQ(status->code, 200);
  EXPECT_NE(status->body.find("\"idle\""), std::string::npos) << status->body;
}

// --- The versioned surface: /v1 canonical, legacy spellings deprecated. -----

TEST(Dist, V1RoutesAnswerWithoutDeprecationLegacyWithIt) {
  Fleet fleet(1);
  auto v1 = dist::http_request("127.0.0.1", fleet.port(0), "GET", "/v1/shard/status", "", 10.0);
  ASSERT_TRUE(v1.ok()) << v1.status().to_string();
  EXPECT_EQ(v1->code, 200);
  EXPECT_EQ(v1->head.find("Deprecation:"), std::string::npos) << v1->head;

  auto legacy = dist::http_request("127.0.0.1", fleet.port(0), "GET", "/shard/status", "", 10.0);
  ASSERT_TRUE(legacy.ok()) << legacy.status().to_string();
  EXPECT_EQ(legacy->code, 200);
  EXPECT_NE(legacy->head.find("Deprecation: true"), std::string::npos) << legacy->head;
  EXPECT_NE(legacy->head.find("</v1/shard/status>; rel=\"successor-version\""),
            std::string::npos)
      << legacy->head;

  // Errors use the one JSON envelope on both spellings.
  auto missing = dist::http_request("127.0.0.1", fleet.port(0), "GET", "/v1/nope", "", 10.0);
  ASSERT_TRUE(missing.ok()) << missing.status().to_string();
  EXPECT_EQ(missing->code, 404);
  EXPECT_NE(missing->body.find("\"error\""), std::string::npos) << missing->body;
  EXPECT_NE(missing->body.find("\"code\""), std::string::npos) << missing->body;
  EXPECT_NE(missing->body.find("not_found"), std::string::npos) << missing->body;
}

// --- The canonical JobSpec codec. -------------------------------------------

TEST(DistCodec, EmitParseEmitIsIdempotent) {
  const api::JobSpec spec = quick_spec();
  const std::string once = api::spec_to_json(spec);
  auto round = api::spec_from_json(once);
  ASSERT_TRUE(round.ok()) << round.status().to_string();
  EXPECT_EQ(api::spec_to_json(*round), once);
}

TEST(DistCodec, InfiniteTimeoutRoundTripsThroughNull) {
  api::JobSpec spec = quick_spec();
  spec.pipeline.synth.timeout_s = std::numeric_limits<double>::infinity();
  const std::string text = api::spec_to_json(spec);
  EXPECT_NE(text.find("\"timeout_s\":null"), std::string::npos) << text;
  auto round = api::spec_from_json(text);
  ASSERT_TRUE(round.ok()) << round.status().to_string();
  EXPECT_TRUE(std::isinf(round->pipeline.synth.timeout_s));
}

TEST(DistCodec, UnknownKeysRejectedNamingTheField) {
  auto spec = api::spec_from_json("{\"traces\":[\"t.csv\"],\"inital_samples\":8}");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(spec.status().to_string().find("inital_samples"), std::string::npos)
      << spec.status().to_string();
}

// Property-style: randomized specs survive an emit/parse round trip exactly.
TEST(DistCodec, RandomSpecsRoundTripExactly) {
  std::mt19937_64 gen(1234567);
  auto pick_int = [&gen](int lo, int hi) {
    return lo + static_cast<int>(gen() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  for (int trial = 0; trial < 64; ++trial) {
    api::JobSpec s;
    s.name = "trial-" + std::to_string(trial);
    s.trace_paths = {"a.csv", "dir/b.csv"};
    if (trial % 3 == 0) s.pipeline.dsl_override = "reno";
    auto& synth = s.pipeline.synth;
    synth.metric = (gen() & 1) ? distance::Metric::kEuclidean : distance::Metric::kDtw;
    synth.seed = gen();  // full u64 range: must survive the decimal-string wire
    synth.max_iterations = pick_int(1, 12);
    synth.initial_samples = pick_int(1, 64);
    synth.initial_keep = pick_int(1, 9);
    synth.initial_segments = pick_int(1, 16);
    synth.final_validation_segments = static_cast<std::size_t>(pick_int(1, 32));
    synth.sample_growth = pick_int(2, 10);
    synth.exhaustive_cap = static_cast<std::size_t>(pick_int(100, 8000));
    synth.unit_check = (gen() & 1) != 0;
    synth.concretize_budget = pick_int(1, 64);
    synth.max_holes = pick_int(1, 5);
    if (gen() & 1) synth.max_depth = pick_int(2, 6);
    if (gen() & 1) synth.max_nodes = pick_int(3, 12);
    synth.timeout_s = (gen() & 1) ? std::numeric_limits<double>::infinity()
                                  : static_cast<double>(pick_int(1, 600));
    const bool fast = (gen() & 1) != 0;
    synth.use_eval_cache = fast;
    synth.early_abandon = fast;
    synth.batch_replay = fast;
    if (gen() & 1) {
      synth.checkpoint_path = "ck-" + std::to_string(trial) + ".bin";
      synth.resume = (gen() & 1) != 0;
    }
    s.pipeline.warmup_s = static_cast<double>(pick_int(0, 5));
    s.pipeline.min_segment_samples = static_cast<std::size_t>(pick_int(5, 40));
    s.load.repair = (gen() & 1) != 0;

    const std::string text = api::spec_to_json(s);
    auto round = api::spec_from_json(text);
    ASSERT_TRUE(round.ok()) << trial << ": " << round.status().to_string() << "\n" << text;
    EXPECT_EQ(api::spec_to_json(*round), text) << "trial " << trial;
    EXPECT_EQ(round->pipeline.synth.seed, synth.seed) << "trial " << trial;
    EXPECT_EQ(round->pipeline.synth.initial_keep, synth.initial_keep);
    EXPECT_EQ(round->pipeline.synth.sample_growth, synth.sample_growth);
    EXPECT_EQ(round->pipeline.synth.exhaustive_cap, synth.exhaustive_cap);
    EXPECT_EQ(round->pipeline.synth.unit_check, synth.unit_check);
    EXPECT_EQ(round->pipeline.synth.final_validation_segments,
              synth.final_validation_segments);
  }
}

}  // namespace
}  // namespace abg
