// Search-forensics journal tests (ISSUE 6).
//
// The SchedulerJournal* suite is Z3-free and simulator-free on purpose: CI
// runs `abg_tests_api --gtest_filter='Scheduler*'` under ThreadSanitizer, so
// the ring-buffer SPSC protocol, the overflow path, and cross-thread
// provenance under work stealing are all raced there. Keep synthesis out of
// SchedulerJournal* tests.
//
// The JournalFunnel* suite is the golden reconciliation the acceptance bar
// demands: a full (quick-scale) reno synthesis with journaling on, whose
// funnel totals must match SynthesisResult exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "dsl/dsl.hpp"
#include "net/simulator.hpp"
#include "obs/journal.hpp"
#include "synth/refinement.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace abg {
namespace {

using obs::JournalKind;

std::uint64_t kind_count(const obs::JournalFile& jf, JournalKind k) {
  std::uint64_t n = 0;
  for (const auto& r : jf.records) {
    if (r.kind == static_cast<std::uint8_t>(k)) ++n;
  }
  return n;
}

// Arms the journal for one test and guarantees it is disarmed (and the file
// removed) even on assertion failure, so a failing test cannot wedge the
// process-wide singleton for the tests after it.
class JournalSession {
 public:
  explicit JournalSession(const std::string& name, obs::JournalOptions opts = {}) {
    opts.path = testing::TempDir() + "/" + name;
    std::string err;
    started_ = obs::journal_start(opts, &err);
    EXPECT_TRUE(started_) << err;
    path_ = opts.path;
  }
  ~JournalSession() {
    stop();
    std::remove(path_.c_str());
  }

  obs::JournalStats stop() {
    if (!stopped_) stats_ = obs::journal_stop();
    stopped_ = true;
    return stats_;
  }

  const std::string& path() const { return path_; }
  bool started() const { return started_; }

 private:
  std::string path_;
  bool started_ = false;
  bool stopped_ = false;
  obs::JournalStats stats_;
};

// --- Disarmed behavior ------------------------------------------------------

TEST(SchedulerJournal, DisarmedEmissionIsInert) {
  ASSERT_FALSE(obs::journal_enabled());
  // Every entry point must be a no-op without an armed journal: no crash, no
  // state. This is the zero-cost-when-off contract's functional half.
  obs::JournalScope scope(obs::journal_intern("job"), 0, 0);
  EXPECT_FALSE(obs::journal_in_scope());
  obs::journal_begin_candidate(1, 2);
  EXPECT_FALSE(obs::journal_in_candidate());
  obs::journal_record_candidate(JournalKind::kEnumerated, 1.0, 0);
  obs::journal_record_distance(JournalKind::kDtwEval, 1.0, 10);
  obs::journal_record_sketch(3);
  obs::journal_end_candidate();
  const auto s = obs::journal_summary();
  EXPECT_FALSE(s.enabled);
}

// --- Round trip -------------------------------------------------------------

TEST(SchedulerJournal, RoundTripPreservesRecordsAndProvenance) {
  JournalSession session("journal_roundtrip.journal");
  ASSERT_TRUE(session.started());

  const std::uint32_t job = obs::journal_intern("reno-job");
  const std::uint32_t bucket = obs::journal_intern("{+,*}");
  const std::uint32_t handler = obs::journal_intern("cwnd + reno-inc");
  {
    obs::JournalScope scope(job, bucket, 3);
    ASSERT_TRUE(obs::journal_in_scope());
    obs::journal_record_sketch(0xabcdef);
    obs::journal_begin_candidate(0xabcdef, 0x1111);
    ASSERT_TRUE(obs::journal_in_candidate());
    obs::journal_record_candidate(JournalKind::kEnumerated, 9.0, 0);
    obs::journal_set_segment(2);
    obs::journal_record_distance(JournalKind::kDtwEval, 0.25, 640);
    EXPECT_EQ(obs::journal_take_cells(), 640u);
    obs::journal_record_candidate(JournalKind::kEvaluated, 0.25, 640);
    obs::journal_end_candidate();
    obs::journal_record_selected(0xabcdef, 0x1111, 0.25, handler, /*final_winner=*/true);
  }
  EXPECT_FALSE(obs::journal_in_scope());

  const auto live = obs::journal_summary();
  EXPECT_TRUE(live.enabled);
  EXPECT_EQ(live.recorded, 5u);

  const auto stats = session.stop();
  EXPECT_EQ(stats.recorded, 5u);
  EXPECT_EQ(stats.dropped, 0u);

  obs::JournalFile jf;
  std::string err;
  ASSERT_TRUE(obs::read_journal(session.path(), &jf, &err)) << err;
  ASSERT_EQ(jf.records.size(), 5u);
  EXPECT_EQ(jf.dropped, 0u);

  for (const auto& r : jf.records) {
    EXPECT_EQ(jf.str(r.job), "reno-job");
    EXPECT_EQ(jf.str(r.bucket), "{+,*}");
    EXPECT_EQ(r.iter, 3u);
    EXPECT_EQ(r.sketch, 0xabcdefu);
  }
  EXPECT_EQ(kind_count(jf, JournalKind::kSketch), 1u);
  EXPECT_EQ(kind_count(jf, JournalKind::kEnumerated), 1u);
  EXPECT_EQ(kind_count(jf, JournalKind::kDtwEval), 1u);
  EXPECT_EQ(kind_count(jf, JournalKind::kEvaluated), 1u);
  EXPECT_EQ(kind_count(jf, JournalKind::kSelected), 1u);

  for (const auto& r : jf.records) {
    if (r.kind == static_cast<std::uint8_t>(JournalKind::kDtwEval)) {
      EXPECT_EQ(r.segment, 2u);
      EXPECT_EQ(r.cells, 640u);
      EXPECT_EQ(r.distance, 0.25);
      EXPECT_EQ(r.candidate, 0x1111u);
    }
    if (r.kind == static_cast<std::uint8_t>(JournalKind::kSelected)) {
      EXPECT_EQ(jf.str(r.detail), "cwnd + reno-inc");
      EXPECT_EQ(r.flags & obs::kJournalFinal, obs::kJournalFinal);
    }
  }
}

TEST(SchedulerJournal, ScopeRestoresOuterProvenanceAndRejectsOutOfScopeEvents) {
  JournalSession session("journal_scopes.journal");
  ASSERT_TRUE(session.started());

  // Events outside any scope are rejected — the rule that keeps the
  // classifier and final validation out of the funnel.
  obs::journal_record_sketch(7);
  obs::journal_begin_candidate(7, 8);
  EXPECT_FALSE(obs::journal_in_candidate());
  obs::journal_record_candidate(JournalKind::kEnumerated, 1.0, 0);

  const std::uint32_t outer = obs::journal_intern("outer");
  const std::uint32_t inner = obs::journal_intern("inner");
  {
    obs::JournalScope a(outer, 0, 1);
    obs::journal_begin_candidate(100, 200);
    ASSERT_TRUE(obs::journal_in_candidate());
    {
      // A nested scope (engine drivers re-scoping on a stolen task) masks the
      // outer candidate entirely and restores it on exit.
      obs::JournalScope b(inner, 0, 2);
      EXPECT_FALSE(obs::journal_in_candidate());
      obs::journal_record_sketch(300);
    }
    EXPECT_TRUE(obs::journal_in_candidate());
    obs::journal_record_candidate(JournalKind::kEvaluated, 4.0, 0);
    obs::journal_end_candidate();
  }

  const auto stats = session.stop();
  EXPECT_EQ(stats.recorded, 2u);

  obs::JournalFile jf;
  std::string err;
  ASSERT_TRUE(obs::read_journal(session.path(), &jf, &err)) << err;
  ASSERT_EQ(jf.records.size(), 2u);
  for (const auto& r : jf.records) {
    if (r.kind == static_cast<std::uint8_t>(JournalKind::kSketch)) {
      EXPECT_EQ(jf.str(r.job), "inner");
      EXPECT_EQ(r.iter, 2u);
    } else {
      EXPECT_EQ(jf.str(r.job), "outer");
      EXPECT_EQ(r.iter, 1u);
      EXPECT_EQ(r.candidate, 200u);
    }
  }
}

// --- Overflow ---------------------------------------------------------------

TEST(SchedulerJournal, RingOverflowDropsAndCountsInsteadOfBlocking) {
  obs::JournalOptions opts;
  opts.ring_capacity = 64;
  // Park the drainer well past the burst below, so the ring genuinely fills.
  opts.drain_interval_ms = 500;
  JournalSession session("journal_overflow.journal", opts);
  ASSERT_TRUE(session.started());

  constexpr std::uint64_t kBurst = 1000;
  {
    obs::JournalScope scope(obs::journal_intern("burst"), 0, 0);
    obs::journal_begin_candidate(1, 2);
    for (std::uint64_t i = 0; i < kBurst; ++i) {
      obs::journal_record_candidate(JournalKind::kEnumerated, static_cast<double>(i), 0);
    }
    obs::journal_end_candidate();
  }

  const auto stats = session.stop();
  // Emission never blocks: every event is either recorded or counted dropped.
  EXPECT_EQ(stats.recorded + stats.dropped, kBurst);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GE(stats.recorded, opts.ring_capacity);

  obs::JournalFile jf;
  std::string err;
  ASSERT_TRUE(obs::read_journal(session.path(), &jf, &err)) << err;
  EXPECT_EQ(jf.records.size(), stats.recorded);
  EXPECT_EQ(jf.dropped, stats.dropped);  // persisted in the trailer
}

// --- Attribution under work stealing ----------------------------------------

TEST(SchedulerJournal, StolenTasksAttributeToTheSubmittingJob) {
  obs::JournalOptions opts;
  opts.ring_capacity = 1 << 16;  // ample: this test asserts zero drops
  JournalSession session("journal_stealing.journal", opts);
  ASSERT_TRUE(session.started());

  // Two drivers share one pool, as concurrent Engine jobs do; each task
  // installs its own scope, so a worker that steals it self-attributes.
  constexpr std::size_t kN = 2000;
  util::ThreadPool pool(4);
  const std::uint32_t jobs[2] = {obs::journal_intern("job-a"), obs::journal_intern("job-b")};
  const std::uint32_t buckets[2] = {obs::journal_intern("{a}"), obs::journal_intern("{b}")};
  std::vector<std::thread> drivers;
  for (int d = 0; d < 2; ++d) {
    drivers.emplace_back([&, d] {
      pool.parallel_for(kN, [&, d](std::size_t i) {
        obs::JournalScope scope(jobs[d], buckets[d], static_cast<std::uint32_t>(d));
        obs::journal_begin_candidate(d + 1, i + 1);
        obs::journal_record_candidate(JournalKind::kEnumerated, static_cast<double>(i), 0);
        obs::journal_end_candidate();
      });
    });
  }
  for (auto& t : drivers) t.join();

  const auto stats = session.stop();
  ASSERT_EQ(stats.dropped, 0u);
  ASSERT_EQ(stats.recorded, 2 * kN);

  obs::JournalFile jf;
  std::string err;
  ASSERT_TRUE(obs::read_journal(session.path(), &jf, &err)) << err;
  ASSERT_EQ(jf.records.size(), 2 * kN);

  // Exactly one event per (job, index); job/bucket/iter always travel
  // together — a single cross-wired record fails the set equality.
  std::set<std::pair<std::string, std::uint64_t>> seen;
  for (const auto& r : jf.records) {
    const std::string job = jf.str(r.job);
    ASSERT_TRUE(job == "job-a" || job == "job-b") << job;
    const int d = job == "job-a" ? 0 : 1;
    EXPECT_EQ(jf.str(r.bucket), d == 0 ? "{a}" : "{b}");
    EXPECT_EQ(r.iter, static_cast<std::uint32_t>(d));
    EXPECT_EQ(r.sketch, static_cast<std::uint64_t>(d) + 1);
    EXPECT_TRUE(seen.emplace(job, r.candidate).second)
        << "duplicate event for " << job << " candidate " << r.candidate;
  }
  EXPECT_EQ(seen.size(), 2 * kN);
}

TEST(SchedulerJournal, SplitByJobDemultiplexesABatchJournal) {
  JournalSession session("journal_split.journal");
  ASSERT_TRUE(session.started());

  const std::uint32_t job_a = obs::journal_intern("alpha");
  const std::uint32_t job_b = obs::journal_intern("beta/..");  // sanitized name
  for (int i = 0; i < 3; ++i) {
    obs::JournalScope scope(job_a, 0, 0);
    obs::journal_record_sketch(10 + i);
  }
  for (int i = 0; i < 2; ++i) {
    obs::JournalScope scope(job_b, 0, 0);
    obs::journal_record_sketch(20 + i);
  }
  {
    // Job id 0 (no attribution) is skipped by the splitter.
    obs::JournalScope scope(0, 0, 0);
    obs::journal_record_sketch(30);
  }
  session.stop();

  std::string err;
  const auto parts = obs::split_journal_by_job(session.path(), &err);
  ASSERT_EQ(parts.size(), 2u) << err;

  std::uint64_t total = 0;
  for (const auto& part : parts) {
    obs::JournalFile jf;
    ASSERT_TRUE(obs::read_journal(part, &jf, &err)) << part << ": " << err;
    ASSERT_FALSE(jf.records.empty());
    const std::string job = jf.str(jf.records[0].job);
    for (const auto& r : jf.records) EXPECT_EQ(jf.str(r.job), job);
    total += jf.records.size();
    EXPECT_EQ(jf.records.size(), job == "alpha" ? 3u : 2u);
    std::remove(part.c_str());
  }
  EXPECT_EQ(total, 5u);
}

// --- Sampling ---------------------------------------------------------------

TEST(SchedulerJournal, SampleEveryThinsCandidatesDeterministically) {
  obs::JournalOptions opts;
  opts.sample_every = 4;
  JournalSession session("journal_sampled.journal", opts);
  ASSERT_TRUE(session.started());

  constexpr std::uint64_t kCandidates = 100;
  std::uint64_t expected = 0;
  {
    obs::JournalScope scope(obs::journal_intern("sampled"), 0, 0);
    for (std::uint64_t fp = 1; fp <= kCandidates; ++fp) {
      obs::journal_begin_candidate(9, fp);
      if (fp % opts.sample_every == 0) ++expected;
      EXPECT_EQ(obs::journal_candidate_sampled(), fp % opts.sample_every == 0);
      obs::journal_record_candidate(JournalKind::kEnumerated, 0.0, 0);
      obs::journal_end_candidate();
    }
  }
  const auto stats = session.stop();
  EXPECT_GT(expected, 0u);
  EXPECT_EQ(stats.recorded, expected);  // sampling is by fingerprint, not luck
}

// --- Golden funnel reconciliation (Z3; excluded from the TSan filter) -------

std::vector<trace::Segment> reno_segments() {
  static const auto segments = [] {
    trace::Environment env;
    env.bandwidth_bps = 10e6;
    env.rtt_s = 0.04;
    env.duration_s = 10.0;
    env.seed = 21;
    auto t = net::run_connection("reno", env);
    return trace::segment_all({trace::trim_warmup(t, 2.0)}, 20);
  }();
  return segments;
}

synth::SynthesisOptions quick_opts() {
  synth::SynthesisOptions o;
  o.initial_samples = 6;
  o.initial_keep = 3;
  o.initial_segments = 2;
  o.concretize_budget = 12;
  o.max_iterations = 3;
  o.exhaustive_cap = 60;
  o.max_depth = 3;
  o.max_nodes = 5;
  o.max_holes = 2;
  o.threads = 2;
  o.seed = 5;
  return o;
}

TEST(JournalFunnel, TotalsReconcileExactlyWithSynthesisResult) {
  auto segs = reno_segments();
  ASSERT_GE(segs.size(), 3u);

  obs::JournalOptions jopts;
  jopts.ring_capacity = 1 << 17;  // exact reconciliation needs zero drops
  JournalSession session("journal_funnel.journal", jopts);
  ASSERT_TRUE(session.started());

  synth::SynthesisOptions opts = quick_opts();
  opts.obs_labels = {{"job", "golden"}};
  const auto result = synth::synthesize(dsl::reno_dsl(), segs, opts);
  const auto stats = session.stop();
  ASSERT_TRUE(result.best.valid());
  ASSERT_EQ(stats.dropped, 0u);

  auto kind = [&stats](JournalKind k) { return stats.by_kind[static_cast<std::size_t>(k)]; };

  // The identities abg_inspect's `funnel --check` enforces in CI. Exact by
  // design at sample_every = 1: every scored handler journals exactly one
  // kEnumerated plus exactly one terminal event, and every enumerator sketch
  // journals one kSketch.
  EXPECT_EQ(kind(JournalKind::kEnumerated), result.total_handlers_scored);
  EXPECT_EQ(kind(JournalKind::kSketch), result.total_sketches);
  EXPECT_EQ(kind(JournalKind::kCacheHit), result.cache_hits);
  EXPECT_EQ(kind(JournalKind::kEvaluated) + kind(JournalKind::kAbandoned), result.cache_misses);
  EXPECT_EQ(kind(JournalKind::kCacheHit) + kind(JournalKind::kEvaluated) +
                kind(JournalKind::kAbandoned),
            kind(JournalKind::kEnumerated));

  obs::JournalFile jf;
  std::string err;
  ASSERT_TRUE(obs::read_journal(session.path(), &jf, &err)) << err;
  ASSERT_EQ(jf.records.size(), stats.recorded);

  // The run winner is journaled, attributed, and carries the handler text.
  const obs::JournalRecord* final_sel = nullptr;
  for (const auto& r : jf.records) {
    if (r.kind == static_cast<std::uint8_t>(JournalKind::kSelected) &&
        (r.flags & obs::kJournalFinal) != 0) {
      EXPECT_EQ(final_sel, nullptr) << "multiple final selections";
      final_sel = &r;
    }
  }
  ASSERT_NE(final_sel, nullptr);
  EXPECT_EQ(jf.str(final_sel->detail), dsl::to_string(*result.best.handler));
  EXPECT_EQ(final_sel->distance, result.best.distance);
  EXPECT_EQ(jf.str(final_sel->job), "golden");

  // Terminal events carry the exact distance/abandon semantics: evaluated
  // records are finite, abandoned records are +inf.
  for (const auto& r : jf.records) {
    if (r.kind == static_cast<std::uint8_t>(JournalKind::kEvaluated)) {
      EXPECT_TRUE(std::isfinite(r.distance));
    }
    if (r.kind == static_cast<std::uint8_t>(JournalKind::kAbandoned)) {
      EXPECT_TRUE(std::isinf(r.distance));
    }
  }
}

TEST(JournalFunnel, OptOutRunEmitsNothingWhileArmed) {
  auto segs = reno_segments();
  ASSERT_GE(segs.size(), 3u);

  JournalSession session("journal_optout.journal");
  ASSERT_TRUE(session.started());

  synth::SynthesisOptions opts = quick_opts();
  opts.journal = false;  // the per-job manifest knob
  const auto result = synth::synthesize(dsl::reno_dsl(), segs, opts);
  const auto stats = session.stop();
  ASSERT_TRUE(result.best.valid());
  EXPECT_EQ(stats.recorded, 0u);
  EXPECT_EQ(stats.dropped, 0u);
}

}  // namespace
}  // namespace abg
