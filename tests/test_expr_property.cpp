// Randomized property tests over the expression layer: generate arbitrary
// well-formed ASTs and check the invariants that the synthesis engine relies
// on — printer/parser round-trip, evaluator totality, canonicalization
// idempotence and semantics preservation, and unit-checker consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "dsl/eval.hpp"
#include "dsl/parse.hpp"
#include "dsl/simplify.hpp"
#include "dsl/units.hpp"
#include "util/rng.hpp"

namespace abg::dsl {
namespace {

// Random numeric expression of bounded depth. Constants are drawn from a
// small set including awkward values (0, negatives, non-integers).
ExprPtr random_num(util::Rng& rng, int depth);

ExprPtr random_bool(util::Rng& rng, int depth) {
  const auto a = random_num(rng, depth - 1);
  const auto b = random_num(rng, depth - 1);
  switch (rng.uniform_int(0, 2)) {
    case 0: return lt(a, b);
    case 1: return gt(a, b);
    default: return mod_eq(a, b);
  }
}

ExprPtr random_num(util::Rng& rng, int depth) {
  if (depth <= 1 || rng.chance(0.3)) {
    if (rng.chance(0.25)) {
      static const double kConsts[] = {0.0, 1.0, -0.7, 2.5, 8.0, 0.001};
      return constant(kConsts[rng.uniform_int(0, 5)]);
    }
    return sig(static_cast<Signal>(rng.uniform_int(0, kSignalCount - 1)));
  }
  switch (rng.uniform_int(0, 6)) {
    case 0: return add(random_num(rng, depth - 1), random_num(rng, depth - 1));
    case 1: return sub(random_num(rng, depth - 1), random_num(rng, depth - 1));
    case 2: return mul(random_num(rng, depth - 1), random_num(rng, depth - 1));
    case 3: return div(random_num(rng, depth - 1), random_num(rng, depth - 1));
    case 4: return cube(random_num(rng, depth - 1));
    case 5: return cbrt(random_num(rng, depth - 1));
    default:
      return cond(random_bool(rng, depth - 1), random_num(rng, depth - 1),
                  random_num(rng, depth - 1));
  }
}

cca::Signals random_signals(util::Rng& rng) {
  cca::Signals s;
  s.now = rng.uniform(0, 100);
  s.mss = 1448.0;
  s.cwnd = rng.uniform(1448.0, 1448.0 * 500);
  s.acked_bytes = rng.chance(0.2) ? 0.0 : 1448.0 * rng.uniform_int(1, 3);
  s.rtt = rng.uniform(0.001, 0.3);
  s.srtt = s.rtt;
  s.min_rtt = s.rtt * rng.uniform(0.3, 1.0);
  s.max_rtt = s.rtt * rng.uniform(1.0, 3.0);
  s.ack_rate = rng.uniform(0.0, 2e6);
  s.rtt_gradient = rng.uniform(-0.5, 0.5);
  s.time_since_loss = rng.uniform(0.0, 30.0);
  s.cwnd_at_loss = rng.uniform(1448.0, 1448.0 * 500);
  return s;
}

class ExprProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExprProperty, PrinterParserRoundTrip) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    const auto e = random_num(rng, 4);
    const std::string printed = to_string(*e);
    auto r = parse(printed);
    ASSERT_TRUE(r) << printed << " -> " << r.error;
    EXPECT_TRUE(equal(*r.expr, *e)) << printed << " reparsed as " << to_string(*r.expr);
  }
}

TEST_P(ExprProperty, EvaluatorIsTotalOnRandomInputs) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    const auto e = random_num(rng, 4);
    const auto s = random_signals(rng);
    const double v = eval(*e, s);
    // Either finite or an overflow inf; never a crash. NaN can only arise
    // from inf - inf style overflow chains.
    (void)v;
    SUCCEED();
  }
}

TEST_P(ExprProperty, CanonicalizeIsIdempotent) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    const auto e = random_num(rng, 4);
    const auto c1 = canonicalize(e);
    const auto c2 = canonicalize(c1);
    EXPECT_TRUE(equal(*c1, *c2)) << to_string(*e);
  }
}

TEST_P(ExprProperty, CanonicalizePreservesSemantics) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    const auto e = random_num(rng, 4);
    const auto c = canonicalize(e);
    for (int j = 0; j < 5; ++j) {
      const auto s = random_signals(rng);
      const double v1 = eval(*e, s);
      const double v2 = eval(*c, s);
      if (std::isfinite(v1) && std::isfinite(v2)) {
        EXPECT_NEAR(v1, v2, std::max(1e-9, std::fabs(v1) * 1e-12)) << to_string(*e);
      }
    }
  }
}

TEST_P(ExprProperty, CanonicalizePreservesStructureMetrics) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    const auto e = random_num(rng, 4);
    const auto c = canonicalize(e);
    EXPECT_EQ(depth(*e), depth(*c));
    EXPECT_EQ(node_count(*e), node_count(*c));
  }
}

TEST_P(ExprProperty, UnitCheckMatchesConcreteInferenceOnHoleFreeExprs) {
  // For expressions without holes, unit_check(bytes) must agree with
  // infer_unit_concrete returning exactly {1, 0} — except that constants are
  // dimensionless under concrete inference but polymorphic under unit_check,
  // so concrete success must imply unit_check success (never the reverse).
  util::Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    const auto e = random_num(rng, 3);
    if (hole_count(*e) > 0) continue;
    const auto concrete = infer_unit_concrete(*e);
    if (concrete && *concrete == kBytesUnit) {
      EXPECT_TRUE(unit_check(*to_sketch(e))) << to_string(*e);
    }
  }
}

TEST_P(ExprProperty, ToSketchThenFillIsStructurallyStable) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    const auto e = random_num(rng, 4);
    const auto sk = to_sketch(e);
    std::vector<double> ones(static_cast<std::size_t>(hole_count(*sk)), 1.0);
    const auto back = fill_holes(sk, ones);
    EXPECT_EQ(node_count(*e), node_count(*back));
    EXPECT_EQ(depth(*e), depth(*back));
    EXPECT_EQ(hole_count(*back), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprProperty, ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace abg::dsl
