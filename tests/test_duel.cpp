#include <gtest/gtest.h>

#include <cmath>

#include "core/handler_cca.hpp"
#include "dsl/known_handlers.hpp"
#include "dsl/parse.hpp"
#include "net/duel.hpp"

namespace abg {
namespace {

trace::Environment duel_env(double duration = 20.0) {
  trace::Environment env;
  env.bandwidth_bps = 10e6;
  env.rtt_s = 0.04;
  env.duration_s = duration;
  env.seed = 17;
  return env;
}

TEST(Duel, RenoVsRenoIsRoughlyFair) {
  auto r = net::run_two_flows("reno", "reno", duel_env(30.0), /*stagger_s=*/1.0);
  EXPECT_GT(r.jain_index(), 0.85);
  EXPECT_GT(r.throughput_a_bps, 1e6);
  EXPECT_GT(r.throughput_b_bps, 1e6);
}

TEST(Duel, CombinedThroughputBoundedByLink) {
  auto r = net::run_two_flows("reno", "cubic", duel_env());
  EXPECT_LT(r.throughput_a_bps + r.throughput_b_bps, 10.5e6);
  EXPECT_GT(r.throughput_a_bps + r.throughput_b_bps, 3e6);  // link is used
}

TEST(Duel, MismatchedCcasShareUnfairly) {
  // Reno vs BBR on a 1-BDP buffer: the model-based flow's standing queue
  // collides with the drop-tail buffer and the split is far from fair (the
  // shallow-buffer BBR interaction studied by Ware et al. [63], which the
  // paper cites as motivation for understanding CCA behaviour). The robust
  // property is *unfairness*, not which side wins: SACK-less recovery
  // punishes the burstier flow heavily.
  auto r = net::run_two_flows("reno", "bbr", duel_env(30.0), /*stagger_s=*/1.0);
  EXPECT_LT(r.jain_index(), 0.8);
  // Both flows still make progress.
  EXPECT_GT(r.throughput_a_bps, 0.1e6);
  EXPECT_GT(r.throughput_b_bps, 0.1e6);
}

TEST(Duel, TracesAreRecordedForBothFlows) {
  auto r = net::run_two_flows("reno", "vegas", duel_env());
  EXPECT_GT(r.flow_a.samples.size(), 100u);
  EXPECT_GT(r.flow_b.samples.size(), 100u);
  EXPECT_EQ(r.flow_a.cca_name, "reno");
  EXPECT_EQ(r.flow_b.cca_name, "vegas");
}

TEST(Duel, StaggeredStartDelaysFlowB) {
  auto r = net::run_two_flows("reno", "reno", duel_env(), /*stagger_s=*/5.0);
  ASSERT_FALSE(r.flow_b.samples.empty());
  EXPECT_GE(r.flow_b.samples.front().sig.now, 5.0);
}

TEST(Duel, JainIndexProperties) {
  net::DuelResult r;
  r.throughput_a_bps = 5e6;
  r.throughput_b_bps = 5e6;
  EXPECT_DOUBLE_EQ(r.jain_index(), 1.0);
  EXPECT_DOUBLE_EQ(r.share_a(), 0.5);
  r.throughput_b_bps = 0.0;
  EXPECT_NEAR(r.jain_index(), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(r.share_a(), 1.0);
}

TEST(HandlerCca, RenoExpressionBehavesLikeReno) {
  // A HandlerCca wrapping Reno's handler should split the link with real
  // Reno about evenly.
  auto reno_handler = dsl::parse("cwnd + reno-inc");
  ASSERT_TRUE(reno_handler);
  core::HandlerCca synth_reno(reno_handler.expr, nullptr, "synth-reno");
  auto real_reno = cca::make_cca("reno");
  auto r = net::run_two_flows(*real_reno, synth_reno, duel_env(30.0), 1.0);
  EXPECT_GT(r.jain_index(), 0.8);
}

TEST(HandlerCca, MeekExpressionLosesToReno) {
  // A 10x gentler additive increase cannot reclaim bandwidth after losses:
  // Reno ends up with the clear majority. (The inverse — a 10x *faster*
  // increase — does not dominate on a shallow buffer, because burst
  // overshoot converts straight into loss events.)
  auto meek = dsl::parse("cwnd + 0.1 * reno-inc");
  ASSERT_TRUE(meek);
  core::HandlerCca gentle(meek.expr, nullptr, "meek");
  auto reno = cca::make_cca("reno");
  auto r = net::run_two_flows(*reno, gentle, duel_env(30.0));
  EXPECT_GT(r.share_a(), 0.55);  // Reno wins
}

TEST(HandlerCca, CustomLossHandlerIsApplied) {
  auto ack = dsl::parse("cwnd + reno-inc");
  auto loss = dsl::parse("0.9 * cwnd");  // gentle backoff
  ASSERT_TRUE(ack && loss);
  core::HandlerCca cca_obj(ack.expr, loss.expr);
  cca_obj.init(1448.0, 20 * 1448.0);
  cca::Signals sig;
  sig.mss = 1448.0;
  sig.cwnd = 20 * 1448.0;
  EXPECT_NEAR(cca_obj.on_loss(sig), 0.9 * 20 * 1448.0, 1e-9);
}

TEST(HandlerCca, DefaultLossResponseHalves) {
  auto ack = dsl::parse("cwnd + reno-inc");
  core::HandlerCca cca_obj(ack.expr);
  cca_obj.init(1448.0, 20 * 1448.0);
  cca::Signals sig;
  sig.mss = 1448.0;
  EXPECT_NEAR(cca_obj.on_loss(sig), 10 * 1448.0, 1e-9);
}

TEST(HandlerCca, RejectsSketchesWithHoles) {
  auto sk = dsl::add(dsl::sig(dsl::Signal::kCwnd), dsl::hole(0));
  EXPECT_THROW(core::HandlerCca{sk}, std::invalid_argument);
}

TEST(HandlerCca, HoldsWindowOnNonFiniteOutput) {
  auto bad = dsl::parse("cwnd * cwnd * cwnd * cwnd");  // overflows quickly
  ASSERT_TRUE(bad);
  core::HandlerCca cca_obj(bad.expr);
  cca_obj.init(1448.0, 1e6 * 1448.0);
  cca::Signals sig;
  sig.mss = 1448.0;
  double w = 0;
  for (int i = 0; i < 5; ++i) w = cca_obj.on_ack(sig);
  EXPECT_TRUE(std::isfinite(w));
}

TEST(HandlerCca, SynthesizedBbrHandlerRunsButUnderstatesStartup) {
  // The paper's synthesized BBR expression, run as a real CCA. It keeps a
  // connection alive, but it describes *steady-state* behaviour only: with
  // no STARTUP phase, the rate-coupled window (2 * ack-rate * min-rtt)
  // bootstraps slowly — a concrete illustration of the hidden state the
  // closed form cannot carry (S5.2).
  const auto& h = dsl::known_handlers("bbr").expected_synthesized;
  core::HandlerCca bbrish(h, nullptr, "bbr-synth");
  auto t = net::run_connection(bbrish, duel_env(10.0));
  ASSERT_GT(t.samples.size(), 100u);
  const double delivered = t.samples.back().ack_seq;
  EXPECT_GT(delivered, 0.02 * 10e6 / 8 * 10.0);  // alive, but well below capacity
  EXPECT_LT(delivered, 0.9 * 10e6 / 8 * 10.0);
}

}  // namespace
}  // namespace abg
